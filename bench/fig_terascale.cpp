// Terascale extrapolation: STORM's launch-time and feasible-quantum
// curves out to 64k nodes.
//
// The paper measures 64 nodes and argues (Section 5) that every
// management mechanism is O(1) or O(log N) in machine size. This
// harness runs the *same* MM — real Ousterhout matrix, buddy
// allocator, file-transfer pipeline, QsNET latency/bandwidth model —
// over the plane-mode cluster (ClusterConfig::plane_mode), where the
// per-node NM/PL microcosm is replaced by its aggregate effect on the
// node-state plane. That drops per-node memory from an OS-scheduler
// object to a handful of plane words, which is what lets one process
// sweep 1k → 64k nodes.
//
// Outputs:
//   stdout             deterministic tables (launch curve, quantum curve)
//   --bench-json PATH  machine-readable curves + peak RSS + wall time +
//                      engine-event totals and nodes×events/s throughput
//   --max-rss-mb N     fail (exit 1) if peak RSS exceeds the budget
//   --max-wall-s N     fail (exit 1) if wall time exceeds the budget
//   --min-node-events-per-s N  fail (exit 1) below the throughput floor
//   --fast             4k-node ceiling (CI smoke); full mode: 64k
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

core::ClusterConfig terascale_config(int nodes) {
  core::ClusterConfig cfg = core::ClusterConfig::es40(nodes);
  cfg.plane_mode = true;
  cfg.storm.quantum = 1_ms;  // the paper's launch-benchmark timeslice
  return cfg;
}

struct LaunchPoint {
  int nodes;
  double send_ms;
  double execute_ms;
  double launch_ms;
};

/// Engine-event totals across every run, feeding the ROADMAP-flagged
/// nodes×events/s throughput number in the --bench-json record.
struct Throughput {
  std::uint64_t events = 0;
  std::uint64_t node_events = 0;  // Σ run-nodes × run-events

  void record(int nodes, std::uint64_t run_events) {
    events += run_events;
    node_events += static_cast<std::uint64_t>(nodes) * run_events;
  }
};

LaunchPoint launch_curve_point(int nodes, Throughput& tp,
                               bench::MetricsExport& mx) {
  sim::Simulator sim;
  core::Cluster cluster(sim, terascale_config(nodes));
  if (mx.enabled()) cluster.enable_fabric_metrics();
  if (mx.ts_enabled()) cluster.enable_timeseries(mx.ts_options());
  const core::JobId id =
      cluster.submit({.name = "noop",
                      .binary_size = 12_MB,
                      .npes = nodes * cluster.config().app_cpus_per_node});
  const bool done = cluster.run_until_all_complete(600_sec);
  tp.record(nodes, sim.events_executed());
  mx.collect(cluster.metrics());
  if (mx.ts_enabled()) mx.collect_series(cluster.timeseries()->snapshot());
  const auto& t = cluster.job(id).times();
  return LaunchPoint{nodes, done ? t.send_time().to_millis() : -1.0,
                     done ? t.execute_time().to_millis() : -1.0,
                     done ? t.launch_time().to_millis() : -1.0};
}

struct QuantumPoint {
  double quantum_ms;
  double runtime_s;
  double slowdown_pct;
};

QuantumPoint quantum_point(int nodes, sim::SimTime quantum,
                           sim::SimTime work, Throughput& tp,
                           bench::MetricsExport& mx) {
  sim::Simulator sim;
  core::ClusterConfig cfg = terascale_config(nodes);
  cfg.storm.quantum = quantum;
  cfg.storm.max_mpl = 2;
  core::Cluster cluster(sim, cfg);
  if (mx.enabled()) cluster.enable_fabric_metrics();
  if (mx.ts_enabled()) cluster.enable_timeseries(mx.ts_options());
  std::vector<core::JobId> ids;
  for (int j = 0; j < 2; ++j) {
    ids.push_back(
        cluster.submit({.name = "synth",
                        .binary_size = 1_MB,
                        .npes = nodes * cfg.app_cpus_per_node,
                        .plane_work = work}));
  }
  const bool done = cluster.run_until_all_complete(3600_sec);
  tp.record(nodes, sim.events_executed());
  mx.collect(cluster.metrics());
  if (mx.ts_enabled()) mx.collect_series(cluster.timeseries()->snapshot());
  if (!done) return QuantumPoint{quantum.to_millis(), -1.0, -1.0};
  sim::SimTime first = sim::SimTime::max(), last = sim::SimTime::zero();
  for (const auto id : ids) {
    first = std::min(first, cluster.job(id).times().first_proc_started);
    last = std::max(last, cluster.job(id).times().last_proc_exited);
  }
  const double normalized = (last - first).to_seconds() / 2.0;
  const double slowdown =
      (normalized - work.to_seconds()) / work.to_seconds() * 100.0;
  return QuantumPoint{quantum.to_millis(), normalized, slowdown};
}

}  // namespace

int main(int argc, char** argv) {
  const auto t_start = std::chrono::steady_clock::now();
  const bool fast = bench::fast_mode(argc, argv);
  const char* json_path = bench::parse_out_path(argc, argv, "--bench-json");
  const double max_rss_mb = bench::budget_flag(argc, argv, "--max-rss-mb");
  const double max_wall_s = bench::budget_flag(argc, argv, "--max-wall-s");
  const double min_nodes_evps =
      bench::budget_flag(argc, argv, "--min-node-events-per-s");
  bench::MetricsExport mx(argc, argv);

  bench::banner(
      "Terascale — launch time and feasible quantum to 64k nodes",
      "Section 5's scalability argument, extrapolated on the plane-mode "
      "cluster");

  // --- launch curve ------------------------------------------------------
  std::vector<int> node_counts = fast
      ? std::vector<int>{1024, 2048, 4096}
      : std::vector<int>{1024, 2048, 4096, 8192, 16384, 32768, 65536};
  std::printf("Launch of a do-nothing 12 MB binary (4 PEs/node):\n\n");
  bench::Table lt({"nodes", "send_ms", "execute_ms", "launch_ms"});
  lt.print_header();
  Throughput tp;
  std::vector<LaunchPoint> launches;
  for (const int n : node_counts) {
    launches.push_back(launch_curve_point(n, tp, mx));
    const LaunchPoint& p = launches.back();
    lt.cell(p.nodes);
    lt.cell(p.send_ms, 1);
    lt.cell(p.execute_ms, 1);
    lt.cell(p.launch_ms, 1);
    lt.end_row();
  }
  std::printf(
      "\n(hardware multicast + buddy-aligned ranges keep the growth "
      "logarithmic in nodes)\n");

  // --- feasible-quantum curve -------------------------------------------
  const int fq_nodes = node_counts.back();
  const sim::SimTime work = fast ? 1_sec : 5_sec;
  std::printf(
      "\nFeasible quantum at %d nodes (two MPL-2 gangs, %.0f s work/PE):\n\n",
      fq_nodes, work.to_seconds());
  bench::Table qt({"quantum_ms", "runtime_s", "slowdown_%"});
  qt.print_header();
  const double quanta_ms[] = {0.5, 1.0, 2.0, 5.0, 10.0, 50.0};
  std::vector<QuantumPoint> quanta;
  double feasible_ms = -1;
  for (const double q : quanta_ms) {
    quanta.push_back(
        quantum_point(fq_nodes, sim::SimTime::millis(q), work, tp, mx));
    const QuantumPoint& p = quanta.back();
    if (feasible_ms < 0 && p.slowdown_pct >= 0 && p.slowdown_pct <= 2.0) {
      feasible_ms = p.quantum_ms;
    }
    qt.cell(p.quantum_ms, 1);
    qt.cell(p.runtime_s, 3);
    qt.cell(p.slowdown_pct, 2);
    qt.end_row();
  }
  std::printf("\nfeasible quantum (slowdown <= 2%%) at %d nodes: %.1f ms\n",
              fq_nodes, feasible_ms);

  // --- budgets & machine-readable export --------------------------------
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  const double rss_mb = bench::peak_rss_mb();
  const double node_evps =
      wall_s > 0 ? static_cast<double>(tp.node_events) / wall_s : 0.0;
  std::fprintf(stderr,
               "terascale: peak RSS %.1f MB, wall %.1f s, "
               "%.3g node-events/s\n",
               rss_mb, wall_s, node_evps);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "--bench-json: cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"storm.terascale.v1\",\n");
    std::fprintf(f, "  \"fast\": %s,\n", fast ? "true" : "false");
    std::fprintf(f, "  \"launch_curve\": [\n");
    for (std::size_t i = 0; i < launches.size(); ++i) {
      const LaunchPoint& p = launches[i];
      std::fprintf(f,
                   "    {\"nodes\": %d, \"send_ms\": %.3f, \"execute_ms\": "
                   "%.3f, \"launch_ms\": %.3f}%s\n",
                   p.nodes, p.send_ms, p.execute_ms, p.launch_ms,
                   i + 1 < launches.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"quantum_curve_nodes\": %d,\n", fq_nodes);
    std::fprintf(f, "  \"quantum_curve\": [\n");
    for (std::size_t i = 0; i < quanta.size(); ++i) {
      const QuantumPoint& p = quanta[i];
      std::fprintf(f,
                   "    {\"quantum_ms\": %.3f, \"runtime_s\": %.4f, "
                   "\"slowdown_pct\": %.3f}%s\n",
                   p.quantum_ms, p.runtime_s, p.slowdown_pct,
                   i + 1 < quanta.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"feasible_quantum_ms\": %.3f,\n", feasible_ms);
    std::fprintf(f, "  \"events\": %llu,\n",
                 static_cast<unsigned long long>(tp.events));
    std::fprintf(f, "  \"node_events\": %llu,\n",
                 static_cast<unsigned long long>(tp.node_events));
    std::fprintf(f, "  \"node_events_per_s\": %.1f,\n", node_evps);
    std::fprintf(f, "  \"peak_rss_mb\": %.1f,\n  \"wall_s\": %.2f\n}\n",
                 rss_mb, wall_s);
    std::fclose(f);
    std::fprintf(stderr, "terascale: wrote %s\n", json_path);
  }

  int rc = mx.write();
  if (max_rss_mb > 0 && rss_mb > max_rss_mb) {
    std::fprintf(stderr, "terascale: FAIL peak RSS %.1f MB > budget %.1f MB\n",
                 rss_mb, max_rss_mb);
    rc = 1;
  }
  if (max_wall_s > 0 && wall_s > max_wall_s) {
    std::fprintf(stderr, "terascale: FAIL wall %.1f s > budget %.1f s\n",
                 wall_s, max_wall_s);
    rc = 1;
  }
  if (min_nodes_evps > 0 && node_evps < min_nodes_evps) {
    std::fprintf(stderr,
                 "terascale: FAIL %.3g node-events/s < budget %.3g\n",
                 node_evps, min_nodes_evps);
    rc = 1;
  }
  if (feasible_ms < 0) {
    std::fprintf(stderr, "terascale: FAIL no feasible quantum found\n");
    rc = 1;
  }
  for (const auto& p : launches) {
    if (p.launch_ms < 0) {
      std::fprintf(stderr, "terascale: FAIL launch at %d nodes timed out\n",
                   p.nodes);
      rc = 1;
    }
  }
  return rc;
}
