// Parallel sweep execution for the experiment harnesses.
//
// Every figure/table harness is a sweep: N independent points
// (quantum values, node counts, ...), each owning its Simulator,
// Cluster and MetricsRegistry, connected only by the order in which
// rows are printed and registries merged. SweepRunner exploits that:
// points evaluate on a `--jobs N` thread pool while commits — the
// printing and the `MetricsExport::collect` merge — run on the
// calling thread strictly in point-index order. A `--jobs 4` run
// therefore produces stdout and `--metrics` JSON byte-identical to a
// serial run (CI diffs the two); the only shared mutable state across
// points is the process-wide sim::Tracer singleton, which is
// thread-safe (src/sim/trace.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench/common.hpp"

namespace storm::bench {

class SweepRunner {
 public:
  explicit SweepRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

  /// Convenience: configure straight from `--jobs N` on the command
  /// line.
  SweepRunner(int argc, char** argv) : SweepRunner(jobs_flag(argc, argv)) {}

  int jobs() const { return jobs_; }

  /// Evaluate `point(i)` for every i in [0, n) and call
  /// `commit(i, result)` on the calling thread, strictly in point
  /// order. `point` must be safe to call concurrently from several
  /// threads (each invocation should build its own Simulator/Cluster
  /// and touch no shared state); `commit` does all the printing and
  /// merging and is never concurrent with itself. With jobs() == 1
  /// everything runs inline on the calling thread, exactly like the
  /// pre-runner serial loops. A point that throws has its exception
  /// rethrown from here (on the calling thread) after the pool winds
  /// down; remaining uncommitted points are abandoned.
  template <typename PointFn, typename CommitFn>
  void run(std::size_t n, PointFn&& point, CommitFn&& commit) const {
    using Result = std::decay_t<std::invoke_result_t<PointFn&, std::size_t>>;
    if (jobs_ == 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        Result r = point(i);
        commit(i, r);
      }
      return;
    }

    std::vector<std::optional<Result>> results(n);
    std::mutex mu;
    std::condition_variable ready;
    std::size_t next = 0;             // next unclaimed point index
    std::exception_ptr first_error;   // also stops workers claiming

    const std::size_t nworkers =
        std::min(static_cast<std::size_t>(jobs_), n);
    std::vector<std::thread> pool;
    pool.reserve(nworkers);
    for (std::size_t w = 0; w < nworkers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          std::size_t i;
          {
            const std::lock_guard<std::mutex> lock(mu);
            if (first_error != nullptr || next >= n) return;
            i = next++;
          }
          std::optional<Result> r;
          std::exception_ptr err;
          try {
            r.emplace(point(i));
          } catch (...) {
            err = std::current_exception();
          }
          {
            const std::lock_guard<std::mutex> lock(mu);
            if (err != nullptr) {
              if (first_error == nullptr) first_error = err;
            } else {
              results[i] = std::move(r);
            }
          }
          ready.notify_all();
        }
      });
    }

    std::exception_ptr failure;
    for (std::size_t i = 0; i < n; ++i) {
      std::unique_lock<std::mutex> lock(mu);
      // Wake when point i is ready — or when any point failed, since
      // the pool stops claiming then and i might never be computed.
      ready.wait(lock, [&] {
        return results[i].has_value() || first_error != nullptr;
      });
      if (!results[i].has_value()) {
        failure = first_error;
        break;
      }
      Result r = std::move(*results[i]);
      results[i].reset();
      lock.unlock();
      commit(i, r);  // in order, outside the lock: commits may be slow
    }
    for (auto& t : pool) t.join();
    if (failure != nullptr) std::rethrow_exception(failure);
  }

 private:
  int jobs_;
};

}  // namespace storm::bench
