// Figure 3: send and execute times for a 12 MB file under unloaded,
// CPU-loaded and network-loaded conditions, 1-256 processors.
//
// Paper anchor: "even in the worst-case scenario, with a
// network-loaded system, it still takes only 1.5 seconds to launch a
// 12 MB file on 256 processors."
#include "bench/common.hpp"
#include "bench/state_export.hpp"
#include "sim/stats.hpp"
#include "storm/buddy_allocator.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

enum class Load { None, Cpu, Network };

struct Cell {
  double send_ms;
  double exec_ms;
};

Cell measure(int processors, Load load, int repetitions,
             bench::MetricsExport& mx, bench::TraceExport& tx,
             bench::StateExport& sx, bench::BenchJsonExport& bx) {
  sim::Series send, exec;
  for (int rep = 0; rep < repetitions; ++rep) {
    sim::Simulator sim(0xF16'03ULL + rep * 104729);
    const int nodes =
        core::BuddyAllocator::round_up_pow2((processors + 3) / 4);
    core::ClusterConfig cfg = core::ClusterConfig::es40(nodes);
    cfg.storm.quantum = 1_ms;
    core::Cluster cluster(sim, cfg);
    if (mx.enabled()) cluster.enable_fabric_metrics();
    if (mx.ts_enabled()) cluster.enable_timeseries(mx.ts_options());
    if (tx.enabled()) cluster.enable_tracing();
    if (load == Load::Cpu) cluster.start_cpu_load();
    if (load == Load::Network) cluster.start_network_load();
    const auto id = cluster.submit(
        {.name = "noop", .binary_size = 12_MB, .npes = processors});
    const bool done = cluster.run_until_all_complete(3600_sec);
    mx.collect(cluster.metrics());
    if (mx.ts_enabled()) mx.collect_series(cluster.timeseries()->snapshot());
    if (tx.enabled()) tx.collect(cluster.tracer()->buffer());
    sx.collect(cluster);
    bx.record_run(nodes, sim.events_executed());
    if (!done) continue;
    send.add(cluster.job(id).times().send_time().to_millis());
    exec.add(cluster.job(id).times().execute_time().to_millis());
  }
  return {send.mean(), exec.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  const int reps = fast ? 1 : 3;
  bench::MetricsExport mx(argc, argv);
  bench::TraceExport tx(argc, argv);
  bench::StateExport sx(argc, argv);
  bench::BenchJsonExport bx(argc, argv, "fig03");

  bench::banner("Figure 3 — 12 MB launch under load",
                "send/execute vs processors, {unloaded, CPU-loaded, "
                "network-loaded}; anchor: <= ~1.5 s worst case at 256 PEs");

  bench::Table t({"PEs", "sendU", "execU", "sendC", "execC", "sendN",
                  "execN", "totalN"});
  t.print_header();
  for (int pes : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const Cell u = measure(pes, Load::None, reps, mx, tx, sx, bx);
    const Cell c = measure(pes, Load::Cpu, reps, mx, tx, sx, bx);
    const Cell n = measure(pes, Load::Network, reps, mx, tx, sx, bx);
    t.cell(pes);
    t.cell(u.send_ms);
    t.cell(u.exec_ms);
    t.cell(c.send_ms);
    t.cell(c.exec_ms);
    t.cell(n.send_ms);
    t.cell(n.exec_ms);
    t.cell(n.send_ms + n.exec_ms);
    t.end_row();
  }
  std::printf("\n(ms; U = unloaded, C = CPU-loaded, N = network-loaded)\n");
  int rc = mx.write();
  tx.write();
  rc |= bx.write();
  sx.write();  // last: `--state -` appends the snapshot to stdout
  return rc;
}
