// Failure-recovery experiment: a deterministic fault campaign over a
// gang-scheduled workload — node crash mid-launch, primary-MM crash
// mid-run, a seeded crash/recover schedule plus a network partition —
// measuring detection latency, kill/requeue counts and the
// requeue-to-running recovery latency, and verifying that two
// same-seed campaigns are byte-identical end to end.
//
// The paper (Section 4) measures STORM's heartbeat *detection* cost;
// this harness exercises the recovery policy built on top of it: the
// MM evicts dead nodes from the buddy trees, kills and requeues the
// jobs spanning them, shrinks in-flight multicast sets, and a hot
// standby adopts the machine when the primary itself dies.
#include <optional>
#include <vector>

#include "bench/common.hpp"
#include "bench/state_export.hpp"
#include "fabric/fault_campaign.hpp"
#include "fabric/trace_replay.hpp"
#include "fabric/trace_sink.hpp"
#include "query/invariants.hpp"
#include "sim/stats.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;
using sim::SimTime;
using sim::Task;

core::AppProgram compute_program(SimTime work) {
  return
      [work](core::AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

enum class Scenario {
  NodeCrashMidLaunch,
  MmCrashMidRun,
  SeededCampaign,
  ReplLeaderCrash,  // quorum MMs; leader dæmon dies mid-run
  ReplSplitBrain,   // one-way partition starves the leader of acks
};

const char* name_of(Scenario s) {
  switch (s) {
    case Scenario::NodeCrashMidLaunch: return "node-launch";
    case Scenario::MmCrashMidRun: return "mm-run";
    case Scenario::SeededCampaign: return "seed+part";
    case Scenario::ReplLeaderCrash: return "repl-crash";
    case Scenario::ReplSplitBrain: return "repl-split";
  }
  return "?";
}

bool replicated(Scenario s) {
  return s == Scenario::ReplLeaderCrash || s == Scenario::ReplSplitBrain;
}

struct RunResult {
  std::vector<std::uint8_t> trace;
  std::vector<SimTime> finished;
  int completed = 0;
  int aborted = 0;
  std::int64_t kills = 0;
  std::int64_t requeues = 0;
  std::int64_t failovers = 0;
  double detect_ms = 0;        // node-death detection latency (mean)
  double fo_gap_ms = 0;        // MM silence gap at failover
  double fo_resume_ms = 0;     // takeover -> scheduling resumed
  double requeue_run_ms = 0;   // kill -> replacement incarnation on CPUs
  std::int64_t elections = 0;      // quorum scenarios: term bumps won
  std::int64_t stale_aborts = 0;   // commits refused to a deposed leader
  bool all_done = false;
  std::int64_t inv_checks = 0;  // --check-invariants probe firings
  std::vector<storm::query::Violation> inv_violations;
};

core::ClusterConfig recovery_config(bool repl) {
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;  // 50 ms heartbeat
  if (repl) {
    cfg.storm.replication_enabled = true;  // quorum MMs on 0, 14, 15
  } else {
    cfg.storm.standby_mm_enabled = true;  // standby on node 15
  }
  return cfg;
}

// The workload: one big launch (the mid-transfer victim) plus a mix
// of smaller gangs. Shared between the campaign runs and the replay
// phase, which must submit the byte-identical workload.
std::vector<core::JobId> submit_workload(core::Cluster& cluster, bool fast) {
  const double w = fast ? 0.4 : 1.0;
  std::vector<core::JobId> jobs;
  jobs.push_back(cluster.submit({.name = "big",
                                 .binary_size = 12_MB,
                                 .npes = 32,  // nodes 0-7
                                 .program = compute_program(2_sec * w)}));
  jobs.push_back(cluster.submit({.name = "mid",
                                 .binary_size = 4_MB,
                                 .npes = 16,
                                 .program = compute_program(1500_ms * w)}));
  jobs.push_back(cluster.submit({.name = "small",
                                 .binary_size = 2_MB,
                                 .npes = 8,
                                 .program = compute_program(1_sec * w)}));
  jobs.push_back(cluster.submit({.name = "tiny",
                                 .binary_size = 1_MB,
                                 .npes = 4,
                                 .program = compute_program(500_ms * w)}));
  return jobs;
}

RunResult run_campaign(Scenario scenario, std::uint64_t seed, bool fast,
                       storm::bench::MetricsExport& mx,
                       storm::bench::TraceExport& tx,
                       storm::bench::StateExport& sx,
                       storm::bench::BenchJsonExport& bx,
                       bool check_inv) {
  sim::Simulator sim(seed);
  const core::ClusterConfig cfg = recovery_config(replicated(scenario));
  core::Cluster cluster(sim, cfg);
  // Fabric metrics give the msgclass-reconcile invariant something to
  // check, so --check-invariants always turns them on.
  if (mx.enabled() || check_inv) cluster.enable_fabric_metrics();
  if (mx.ts_enabled()) cluster.enable_timeseries(mx.ts_options());
  if (tx.enabled()) cluster.enable_tracing();
  // Re-run the whole invariant registry at every recovery epoch (one
  // strobe quantum): the probe sees the cluster mid-crash, mid-requeue
  // and mid-rejoin, not just at the quiesced end state. Probe reads
  // are pure, so the byte-identity comparison below still holds with
  // the probe armed.
  std::optional<query::InvariantProbe> probe;
  if (check_inv) {
    probe.emplace(cluster, cfg.storm.quantum);
    probe->arm();
  }
  auto sink = std::make_shared<fabric::StructuredTraceSink>(sim);
  cluster.fabric().push(sink);

  // Node-death detection latency: crash instants are known to the
  // campaign, declaration instants come from the MM callback.
  sim::Series detect;
  std::vector<std::pair<int, SimTime>> crash_times;
  auto watch_failures = [&](core::MachineManager& mm) {
    mm.set_failure_callback([&](int n, SimTime when) {
      for (const auto& [node, at] : crash_times) {
        if (node == n) {
          detect.add((when - at).to_millis());
          return;
        }
      }
    });
  };
  watch_failures(cluster.mm_primary());
  if (cluster.mm_standby() != nullptr) watch_failures(*cluster.mm_standby());

  fabric::FaultCampaign campaign;
  switch (scenario) {
    case Scenario::NodeCrashMidLaunch:
      // The 12 MB transfer to job a's 8-node allocation (nodes 0-7)
      // takes ~100 ms; kill one destination while chunks are in
      // flight, bring it back later.
      campaign.crash_node(5, 60_ms);
      campaign.recover_node(5, 2500_ms);
      break;
    case Scenario::MmCrashMidRun:
      campaign.crash_primary_mm(500_ms);
      break;
    case Scenario::SeededCampaign: {
      fabric::FaultCampaign::SeedSpec spec;
      spec.nodes = 16;
      spec.crashes = 2;
      spec.window_start = 300_ms;
      spec.window_end = 1500_ms;
      spec.min_downtime = 500_ms;
      spec.max_downtime = 1200_ms;
      spec.protect = {0, 15};  // both MMs
      campaign = fabric::FaultCampaign::seeded(sim::Rng(seed ^ 0xFA17), spec);
      // Plus a switch failure: nodes 8-11 unreachable for 600 ms.
      campaign.partition({8, 9, 10, 11}, 2200_ms, 2800_ms);
      break;
    }
    case Scenario::ReplLeaderCrash:
      campaign.crash_primary_mm(500_ms);
      break;
    case Scenario::ReplSplitBrain:
      // One-way failure: the followers' acks and votes toward the
      // leader are dropped while the leader's own appends still
      // arrive. The lease must expire, the majority side must elect,
      // and the starved old leader must commit nothing more.
      campaign.asym_partition({14, 15}, {0}, 500_ms, 1200_ms,
                              {fabric::MsgClass::Repl});
      break;
  }
  fabric::CampaignHooks hooks;
  hooks.crash_node = [&](int n) {
    crash_times.emplace_back(n, sim.now());
    cluster.crash_node(n);
  };
  hooks.recover_node = [&](int n) { cluster.recover_node(n); };
  hooks.crash_primary_mm = [&] { cluster.crash_mm(); };
  campaign.arm(sim, &cluster.fabric(), std::move(hooks));

  const std::vector<core::JobId> jobs = submit_workload(cluster, fast);

  RunResult r;
  r.all_done = cluster.run_until_all_complete(600_sec);
  for (const core::JobId id : jobs) {
    const core::JobState st = cluster.job(id).state();
    if (st == core::JobState::Completed) ++r.completed;
    if (st == core::JobState::Aborted) ++r.aborted;
    r.finished.push_back(cluster.job(id).times().finished);
  }
  const telemetry::MetricsRegistry& m = cluster.metrics();
  auto cval = [&](const char* n) {
    const telemetry::Counter* c = m.find_counter(n);
    return c ? c->value() : 0;
  };
  auto hmean_ms = [&](const char* n) {
    const telemetry::Histogram* h = m.find_histogram(n);
    return h != nullptr && h->count() > 0 ? h->mean() * 1e-6 : 0.0;
  };
  r.kills = cval("mm.recovery.kills");
  r.requeues = cval("mm.recovery.requeues");
  r.failovers = cval("mm.failover.count");
  r.detect_ms = detect.count() > 0 ? detect.mean() : 0.0;
  r.fo_gap_ms = hmean_ms("mm.failover.gap_ns");
  r.fo_resume_ms = hmean_ms("mm.failover.resume_ns");
  r.requeue_run_ms = hmean_ms("mm.recovery.requeue_to_run_ns");
  if (const core::ReplicationGroup* g = cluster.replication(); g != nullptr) {
    r.elections = g->elections();
    r.stale_aborts = g->stale_aborts();
  }
  r.trace = sink->bytes();
  mx.collect(m);
  if (mx.ts_enabled()) mx.collect_series(cluster.timeseries()->snapshot());
  if (tx.enabled()) tx.collect(cluster.tracer()->buffer());
  sx.collect(cluster);
  bx.record_run(cfg.nodes, sim.events_executed());
  if (probe.has_value()) {
    probe->disarm();
    r.inv_checks = probe->checks();
    r.inv_violations = probe->violations();
    // Plus a final check of the quiesced end state.
    const query::InvariantReport final_report = query::check_invariants(cluster);
    ++r.inv_checks;
    r.inv_violations.insert(r.inv_violations.end(),
                            final_report.violations.begin(),
                            final_report.violations.end());
  }
  return r;
}

/// Replay round trip: feed a recorded run's sink stream back through
/// TraceReplayer, re-arm the reconstructed fault schedule on a fresh
/// same-seed cluster (with the lockstep drop middleware ahead of the
/// new sink), and require the replay's sink stream to be byte-identical
/// to the recording.
bool replay_reproduces(const std::vector<std::uint8_t>& recorded,
                       std::uint64_t seed, bool fast) {
  const fabric::TraceReplayer replayer =
      fabric::TraceReplayer::from_bytes(recorded);

  sim::Simulator sim(seed);
  core::Cluster cluster(sim, recovery_config(/*repl=*/false));
  const std::shared_ptr<fabric::ReplayDrops> drops = replayer.middleware();
  cluster.fabric().push(drops);
  auto sink = std::make_shared<fabric::StructuredTraceSink>(sim);
  cluster.fabric().push(sink);

  fabric::FaultCampaign campaign = replayer.campaign();
  fabric::CampaignHooks hooks;
  hooks.crash_node = [&](int n) { cluster.crash_node(n); };
  hooks.recover_node = [&](int n) { cluster.recover_node(n); };
  hooks.crash_primary_mm = [&] { cluster.crash_mm(); };
  campaign.arm(sim, &cluster.fabric(), std::move(hooks));

  submit_workload(cluster, fast);
  const bool done = cluster.run_until_all_complete(600_sec);
  const bool identical = sink->bytes() == recorded;
  std::printf("\nreplay: %zu recorded ops, %zu replayed, %zu mismatches -> "
              "%s\n",
              replayer.records().size(), drops->position(),
              drops->mismatches(), identical ? "byte-identical" : "DIVERGED");
  return done && identical && drops->mismatches() == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = storm::bench::fast_mode(argc, argv);
  bool check_inv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-invariants") == 0) check_inv = true;
  }
  storm::bench::MetricsExport mx(argc, argv);
  storm::bench::TraceExport tx(argc, argv);
  storm::bench::StateExport sx(argc, argv);
  storm::bench::BenchJsonExport bx(argc, argv, "fig_recovery");

  storm::bench::banner(
      "Recovery — fault campaign over a gang-scheduled workload",
      "detection latency (Section 4) + kill/requeue recovery, MM "
      "failover, same-seed byte-identical campaigns, and trace replay");

  storm::bench::Table t({"scenario", "done", "abort", "kills", "requeue",
                         "failover", "detect_ms", "fo_gap_ms", "rq_run_ms",
                         "identical"},
                        11);
  t.print_header();

  bool all_ok = true;
  double standby_gap_ms = 0, standby_resume_ms = 0;  // hot-standby takeover
  double repl_gap_ms = 0, repl_resume_ms = 0;        // quorum-lease takeover
  std::vector<std::uint8_t> recorded;  // replay input (node-crash run)
  for (const Scenario s : {Scenario::NodeCrashMidLaunch,
                           Scenario::MmCrashMidRun,
                           Scenario::SeededCampaign,
                           Scenario::ReplLeaderCrash,
                           Scenario::ReplSplitBrain}) {
    const std::uint64_t seed = 0x57'04'2002ULL;
    const RunResult a = run_campaign(s, seed, fast, mx, tx, sx, bx, check_inv);
    const RunResult b = run_campaign(s, seed, fast, mx, tx, sx, bx, check_inv);
    const bool identical = !a.trace.empty() && a.trace == b.trace &&
                           a.finished == b.finished;
    all_ok = all_ok && a.all_done && identical && a.aborted == 0;
    if (s == Scenario::NodeCrashMidLaunch) recorded = a.trace;
    if (s == Scenario::MmCrashMidRun) {
      standby_gap_ms = a.fo_gap_ms;
      standby_resume_ms = a.fo_resume_ms;
    }
    if (s == Scenario::ReplLeaderCrash) {
      repl_gap_ms = a.fo_gap_ms;
      repl_resume_ms = a.fo_resume_ms;
    }
    if (replicated(s)) {
      // Every quorum scenario must actually fail over (one election or
      // more), and the split-brain run must refuse at least the
      // starved leader's doomed commits or elections from stale logs.
      all_ok = all_ok && a.failovers >= 1 && a.elections >= 1;
    }
    if (check_inv) {
      std::fprintf(stderr, "invariants[%s]: %lld checks, %zu violations\n",
                   name_of(s), static_cast<long long>(a.inv_checks),
                   a.inv_violations.size());
      for (const auto& v : a.inv_violations) {
        std::fprintf(stderr, "  VIOLATION %s: %s\n", v.invariant.c_str(),
                     v.detail.c_str());
      }
      all_ok = all_ok && a.inv_violations.empty() && a.inv_checks > 1 &&
               b.inv_violations.empty();
    }
    t.cell(name_of(s));
    t.cell(a.completed);
    t.cell(a.aborted);
    t.cell(static_cast<long long>(a.kills));
    t.cell(static_cast<long long>(a.requeues));
    t.cell(static_cast<long long>(a.failovers));
    t.cell(a.detect_ms);
    t.cell(a.fo_gap_ms);
    t.cell(a.requeue_run_ms);
    t.cell(identical ? "yes" : "NO");
    t.end_row();
  }

  std::printf(
      "\n(detect_ms: node-death declaration latency; fo_gap_ms: primary\n"
      " silence at standby takeover; rq_run_ms: kill -> replacement\n"
      " incarnation running; identical: two same-seed campaigns produced\n"
      " byte-identical fabric traces and finish times)\n");

  // The headline robustness comparison: the same leader-death instant
  // handled by silence-counting hot standby vs the quorum lease. The
  // lease bounds detection at repl_lease + one election stagger, so
  // the gap must come in well under the heartbeat-counting scheme.
  std::printf(
      "\nfailover gap: hot-standby %.1f ms vs quorum-lease %.1f ms "
      "(%.1fx)\nfailover resume: hot-standby %.1f ms vs quorum-lease "
      "%.1f ms\n",
      standby_gap_ms, repl_gap_ms,
      repl_gap_ms > 0 ? standby_gap_ms / repl_gap_ms : 0.0,
      standby_resume_ms, repl_resume_ms);
  bx.record_value("mm.failover.gap_ns.standby", standby_gap_ms * 1e6);
  bx.record_value("mm.failover.resume_ns.standby", standby_resume_ms * 1e6);
  bx.record_value("mm.failover.gap_ns.repl", repl_gap_ms * 1e6);
  bx.record_value("mm.failover.resume_ns.repl", repl_resume_ms * 1e6);
  all_ok = all_ok && standby_gap_ms > 0 && repl_gap_ms > 0 &&
           repl_gap_ms < standby_gap_ms;

  // `--max-failover-gap-ms <ms>`: CI budget on the quorum-lease gap.
  const double max_gap_ms =
      storm::bench::budget_flag(argc, argv, "--max-failover-gap-ms");
  bool budget_breach = false;
  if (max_gap_ms > 0 && (repl_gap_ms <= 0 || repl_gap_ms > max_gap_ms)) {
    std::fprintf(stderr, "FAIL: quorum failover gap %.1f ms > budget %.1f ms\n",
                 repl_gap_ms, max_gap_ms);
    budget_breach = true;
  }

  // Phase 4: the recorded node-crash run replays from its own sink
  // stream alone — schedule reconstruction via the Fault notes.
  const bool replay_ok =
      replay_reproduces(recorded, 0x57'04'2002ULL, fast);
  all_ok = all_ok && replay_ok;

  const int mx_rc = mx.write();
  tx.write();
  const int bench_rc = bx.write();
  sx.write();  // last: `--state -` appends the snapshot to stdout
  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: a campaign left work unfinished, aborted a job, "
                 "diverged between same-seed runs, violated an invariant, "
                 "or failed to replay\n");
    return 1;
  }
  return budget_breach ? 1 : (bench_rc | mx_rc);
}
