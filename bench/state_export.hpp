// `--state <out.json|->`: export a `storm.state.v1` cluster-state
// snapshot for statectl / CI diffing (DESIGN.md §3.5).
//
// Kept out of common.hpp on purpose: pulling the query layer (and
// through it the whole dæmon stack) into every harness translation
// unit is a compile-time cost only the harnesses that link storm_query
// should pay.
//
// Mirrors TraceExport: snapshot() is a pure read of one cluster, so
// parallel sweep workers may take one while the cluster lives and
// `adopt()` it later from the serial commit path (last adopted wins —
// collect the anchor configuration last, in point order). When the
// flag is absent every call is a no-op.
//
// With `--state -` the snapshot goes to *stdout* and write() must be
// the harness's final output, so `statectl ... --state -` can find the
// document at the end of a piped run.
//
// Usage:
//   bench::StateExport sx(argc, argv);
//   ...per run:   ...run...  sx.collect(cluster);
//   ...at exit:   sx.write();   // after every other stdout line
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "bench/common.hpp"
#include "query/snapshot.hpp"

namespace storm::bench {

class StateExport {
 public:
  struct Snapshot {
    std::string json;
  };

  StateExport(int argc, char** argv)
      : path_(parse_out_path(argc, argv, "--state")) {}
  StateExport(const StateExport&) = delete;
  StateExport& operator=(const StateExport&) = delete;

  bool enabled() const { return path_ != nullptr; }

  /// Serialise `cluster`'s state. Pure read; thread-safe against other
  /// clusters (each worker snapshots its own).
  Snapshot snapshot(core::Cluster& cluster) const {
    Snapshot s;
    if (enabled()) s.json = query::to_json(query::capture(cluster));
    return s;
  }

  /// Make `s` the snapshot write() exports (last adopted wins).
  void adopt(Snapshot&& s) {
    if (enabled() && !s.json.empty()) last_ = std::move(s);
  }

  /// snapshot() + adopt() for the common serial-harness case.
  void collect(core::Cluster& cluster) { adopt(snapshot(cluster)); }

  /// Write the snapshot. Call LAST: with `--state -` the document is
  /// appended to stdout and statectl locates it from the end.
  void write() {
    if (!enabled() || last_.json.empty()) return;
    if (std::strcmp(path_, "-") == 0) {
      std::fwrite(last_.json.data(), 1, last_.json.size(), stdout);
      return;
    }
    std::FILE* f = std::fopen(path_, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "--state: cannot open %s\n", path_);
      return;
    }
    std::fwrite(last_.json.data(), 1, last_.json.size(), f);
    std::fclose(f);
    // stderr, not stdout: golden comparisons cover stdout.
    std::fprintf(stderr, "state: wrote %s snapshot to %s\n",
                 std::string(query::kStateSchema).c_str(), path_);
  }

 private:
  const char* path_;
  Snapshot last_;
};

}  // namespace storm::bench
