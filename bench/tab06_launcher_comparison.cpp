// Tables 6 & 7: job-launch times across resource managers — the
// published measured points, our simulated baselines at those points,
// and the extrapolations to 4,096 nodes.
#include "bench/common.hpp"
#include "baselines/launchers.hpp"
#include "model/launch_model.hpp"
#include "model/literature.hpp"
#include "storm/buddy_allocator.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

double storm_launch_seconds(int nodes) {
  sim::Simulator sim(0x7AB'06ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(nodes);
  cfg.storm.quantum = 1_ms;
  core::Cluster cluster(sim, cfg);
  const auto id = cluster.submit(
      {.name = "noop", .binary_size = 12_MB, .npes = nodes * 4});
  if (!cluster.run_until_all_complete(600_sec)) return -1.0;
  return cluster.job(id).times().launch_time().to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::banner("Tables 6 & 7 — launch-time comparison across systems",
                "published measured points, simulated baselines, and "
                "4,096-node extrapolations");

  std::printf("Table 6 — at each system's published measurement point:\n\n");
  bench::Table t({"system", "nodes", "published_s", "simulated_s"}, 14);
  t.print_header();
  {
    sim::Simulator s;
    t.cell(std::string("rsh"));
    t.cell(95);
    t.cell(90.0);
    t.cell(baselines::RshLauncher{}.launch(s, 95).total.to_seconds());
    t.end_row();
  }
  {
    sim::Simulator s;
    t.cell(std::string("RMS"));
    t.cell(64);
    t.cell(5.9);
    t.cell(baselines::RmsLauncher{}.launch(s, 64).total.to_seconds());
    t.end_row();
  }
  {
    sim::Simulator s;
    t.cell(std::string("GLUnix"));
    t.cell(95);
    t.cell(1.3);
    t.cell(baselines::GlunixLauncher{}.launch(s, 95).total.to_seconds());
    t.end_row();
  }
  {
    sim::Simulator s;
    t.cell(std::string("Cplant"));
    t.cell(1010);
    t.cell(20.0);
    t.cell(
        baselines::CplantTreeLauncher{}.launch(s, 1010, 12_MB).total.to_seconds());
    t.end_row();
  }
  {
    sim::Simulator s;
    t.cell(std::string("BProc"));
    t.cell(100);
    t.cell(2.7);
    t.cell(
        baselines::BprocTreeLauncher{}.launch(s, 100, 12_MB).total.to_seconds());
    t.end_row();
  }
  t.cell(std::string("STORM"));
  t.cell(64);
  t.cell(0.11);
  t.cell(storm_launch_seconds(64));
  t.end_row();

  std::printf("\nTable 7 — extrapolated to 4,096 nodes:\n\n");
  bench::Table t7({"system", "fit", "t4096_s"}, 26);
  t7.print_header();
  for (const auto& fit : model::launcher_fits()) {
    t7.cell(fit.name);
    t7.cell(std::string(fit.logarithmic ? "a lg n + b" : "a n + b"));
    t7.cell(model::extrapolated_4096(fit), 2);
    t7.end_row();
  }
  const model::LaunchModelParams p{};
  t7.cell(std::string("STORM"));
  t7.cell(std::string("Section 3.3 model"));
  t7.cell(model::es40_launch_time(4096, p).to_seconds(), 2);
  t7.end_row();

  std::printf(
      "\n(paper Table 7: rsh 3827.10, RMS 317.67, GLUnix 49.38,"
      " Cplant 22.73,\n BProc 4.88, STORM 0.11 seconds)\n");
  return 0;
}
