// Figures 11 & 12: measured + predicted performance of the job
// launchers out to 16,384 nodes, and the Cplant/BProc times
// renormalised to STORM ( = 1.0).
#include <cmath>

#include "bench/common.hpp"
#include "baselines/launchers.hpp"
#include "model/launch_model.hpp"
#include "model/literature.hpp"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using namespace storm;

  bench::banner("Figure 11 — launcher scaling, measured fits to 16K nodes",
                "rsh/RMS/GLUnix linear; Cplant/BProc logarithmic; STORM "
                "nearly flat (seconds, log-scale in the paper)");

  const auto& fits = model::launcher_fits();
  const model::LaunchModelParams p{};

  bench::Table t({"nodes", "rsh", "RMS", "GLUnix", "Cplant", "BProc",
                  "STORM"},
                 11);
  t.print_header();
  for (int nodes = 1; nodes <= 16384; nodes *= 2) {
    t.cell(nodes);
    for (const auto& fit : fits) {
      const double v = fit.seconds_at(static_cast<double>(nodes));
      t.cell(v > 0 ? v : 0.0, 2);
    }
    t.cell(model::es40_launch_time(nodes, p).to_seconds(), 3);
    t.end_row();
  }

  std::printf(
      "\nFigure 12 — factor of STORM time (STORM = 1.0), logarithmic"
      " scalers only:\n\n");
  bench::Table f12({"nodes", "Cplant", "BProc", "STORM"}, 11);
  f12.print_header();
  for (int nodes = 1; nodes <= 4096; nodes *= 2) {
    const double storm_s =
        model::es40_launch_time(nodes, p).to_seconds();
    f12.cell(nodes);
    f12.cell(fits[3].seconds_at(nodes) / storm_s, 1);
    f12.cell(std::max(fits[4].seconds_at(nodes), 0.0) / storm_s, 1);
    f12.cell(1.0, 1);
    f12.end_row();
  }
  std::printf(
      "\n(paper: Cplant ~200x and BProc ~40x STORM at 4,096 nodes)\n");
  return 0;
}
