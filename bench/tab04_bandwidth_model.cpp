// Table 4: hardware-broadcast bandwidth (MB/s) vs machine size and
// cable length, from the ASCI Q procurement model — cross-checked
// against the packet-level replay of the ack-token protocol.
//
// Paper values (boldface = worst case per row):
//   nodes  sw   10m  20m  30m  40m  60m  80m 100m
//      4    1   319  319  319  319  284  249  222
//     16    3   319  319  309  287  251  224  202
//     64    5   312  290  270  254  225  203  185
//    256    7   273  256  241  227  204  186  170
//   1024    9   243  229  217  206  187  171  158
//   4096   11   218  207  197  188  172  159  147
#include "bench/common.hpp"
#include "net/packet_sim.hpp"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using namespace storm;

  bench::banner("Table 4 — broadcast bandwidth vs nodes x cable length",
                "analytic model (Section 3.3.2), validated <5% in the "
                "paper; here cross-checked against packet-level replay");

  const net::QsNetParams p{};
  const double cables[] = {10, 20, 30, 40, 60, 80, 100};

  bench::Table t({"nodes", "switches", "10m", "20m", "30m", "40m", "60m",
                  "80m", "100m"},
                 10);
  t.print_header();
  for (int nodes : {4, 16, 64, 256, 1024, 4096}) {
    t.cell(nodes);
    t.cell(net::FatTree::switches_crossed(nodes));
    for (double cable : cables) {
      t.cell(net::QsNet::model_broadcast_bandwidth(nodes, cable, p)
                 .to_mb_per_s(),
             0);
    }
    t.end_row();
  }

  std::printf("\nPacket-level replay cross-check (4 MB message):\n\n");
  bench::Table v({"nodes", "cable_m", "model", "replay", "delta_%"}, 10);
  v.print_header();
  for (int nodes : {4, 64, 1024, 4096}) {
    for (double cable : {10.0, 100.0}) {
      const double model =
          net::QsNet::model_broadcast_bandwidth(nodes, cable, p).to_mb_per_s();
      const double replay =
          net::replay_broadcast(4 * 1024 * 1024, nodes, cable, p)
              .payload_bandwidth.to_mb_per_s();
      v.cell(nodes);
      v.cell(cable, 0);
      v.cell(model, 1);
      v.cell(replay, 1);
      v.cell(100.0 * (replay - model) / model, 2);
      v.end_row();
    }
  }
  std::printf("\n(MB/s)\n");
  return 0;
}
