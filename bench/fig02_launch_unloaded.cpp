// Figure 2: send and execute times for a 4 MB, 8 MB, and 12 MB file
// on an unloaded system, 1-256 processors.
//
// Paper reference points (Section 3.1.1): 12 MB on the largest
// configuration launches in ~110 ms, of which ~96 ms is transfer
// (protocol bandwidth ~131 MB/s); send grows slowly with node count,
// execute grows with node count through OS skew and is independent of
// binary size.
#include "bench/common.hpp"
#include "bench/state_export.hpp"
#include "sim/stats.hpp"
#include "storm/buddy_allocator.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

struct Cell {
  double send_ms;
  double exec_ms;
};

Cell measure(int processors, sim::Bytes binary, int repetitions,
             bench::MetricsExport& mx, bench::TraceExport& tx,
             bench::StateExport& sx, bench::BenchJsonExport& bx) {
  sim::Series send, exec;
  for (int rep = 0; rep < repetitions; ++rep) {
    sim::Simulator sim(0xF16'02ULL + rep * 7919);
    const int nodes = core::BuddyAllocator::round_up_pow2(
        (processors + 3) / 4);
    core::ClusterConfig cfg = core::ClusterConfig::es40(nodes);
    cfg.storm.quantum = 1_ms;  // the paper's launch-experiment setting
    core::Cluster cluster(sim, cfg);
    if (mx.enabled()) cluster.enable_fabric_metrics();
    if (mx.ts_enabled()) cluster.enable_timeseries(mx.ts_options());
    if (tx.enabled()) cluster.enable_tracing();
    const auto id = cluster.submit(
        {.name = "noop", .binary_size = binary, .npes = processors});
    const bool done = cluster.run_until_all_complete(600_sec);
    mx.collect(cluster.metrics());
    if (mx.ts_enabled()) mx.collect_series(cluster.timeseries()->snapshot());
    if (tx.enabled()) tx.collect(cluster.tracer()->buffer());
    sx.collect(cluster);
    bx.record_run(nodes, sim.events_executed());
    if (!done) continue;
    send.add(cluster.job(id).times().send_time().to_millis());
    exec.add(cluster.job(id).times().execute_time().to_millis());
  }
  return {send.mean(), exec.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  const int reps = fast ? 1 : 3;
  bench::MetricsExport mx(argc, argv);
  bench::TraceExport tx(argc, argv);
  bench::StateExport sx(argc, argv);
  bench::BenchJsonExport bx(argc, argv, "fig02");

  bench::banner("Figure 2 — job launch times, unloaded system",
                "send/execute vs processors for 4/8/12 MB binaries; "
                "anchor: 12 MB on 256 PEs ~ 96 ms send + ~14 ms execute");

  bench::Table t({"PEs", "send4MB", "exec4MB", "send8MB", "exec8MB",
                  "send12MB", "exec12MB", "total12MB"});
  t.print_header();
  // The 12 MB / 256-PE anchor configuration is measured last, so its
  // run is the one a `--trace` export shows.
  for (int pes : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const Cell c4 = measure(pes, 4_MB, reps, mx, tx, sx, bx);
    const Cell c8 = measure(pes, 8_MB, reps, mx, tx, sx, bx);
    const Cell c12 = measure(pes, 12_MB, reps, mx, tx, sx, bx);
    t.cell(pes);
    t.cell(c4.send_ms);
    t.cell(c4.exec_ms);
    t.cell(c8.send_ms);
    t.cell(c8.exec_ms);
    t.cell(c12.send_ms);
    t.cell(c12.exec_ms);
    t.cell(c12.send_ms + c12.exec_ms);
    t.end_row();
  }
  std::printf(
      "\n(all times in ms; paper: sends proportional to size, nearly flat in"
      " PEs;\n execute grows with PEs via OS skew, independent of size)\n");
  int rc = mx.write();
  tx.write();
  rc |= bx.write();
  sx.write();  // last: `--state -` appends the snapshot to stdout
  return rc;
}
