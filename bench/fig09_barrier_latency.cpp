// Figure 9: hardware-barrier (network-conditional) latency as a
// function of node count — the scalability basis of COMPARE-AND-WRITE.
//
// Paper anchor (PSC Terascale data): latency grows by only ~2 us
// across a 384x increase in node count (≈4.5 us at small scale to
// ≈6.5 us at 768-1024 nodes).
#include "bench/common.hpp"
#include "fabric/fabric.hpp"
#include "mech/qsnet_mechanisms.hpp"

namespace {

using namespace storm;

// The CAW runs through an empty-chain MechanismFabric, exactly as the
// management plane issues it — demonstrating that the fabric is a
// strict pass-through (identical numbers to the raw mechanisms).
double simulated_caw_us(int nodes) {
  sim::Simulator sim;
  net::QsNet qsnet(sim, nodes);
  mech::QsNetMechanisms raw(qsnet);
  fabric::MechanismFabric m(sim, raw);
  for (int n = 0; n < nodes; ++n) m.write_local(n, 0, 1);
  sim::SimTime done{};
  auto probe = [&]() -> sim::Task<> {
    (void)co_await m.compare_and_write(0, net::NodeRange{0, nodes}, 0,
                                       net::Compare::GE, 1, mech::kNoWrite, 0);
    done = sim.now();
  };
  sim.spawn(probe());
  sim.run();
  return done.to_micros();
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::banner("Figure 9 — barrier / network-conditional latency vs nodes",
                "paper (PSC Terascale): ~4.5 us at small scale, +~2 us out "
                "to 1024 nodes");

  bench::Table t({"nodes", "model_us", "simulated_us"});
  t.print_header();
  for (int nodes : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double model =
        net::QsNet::model_conditional_latency(
            nodes, net::FatTree::floorplan_diameter_m(nodes),
            net::QsNetParams{})
            .to_micros();
    t.cell(nodes);
    t.cell(model, 2);
    t.cell(simulated_caw_us(nodes), 2);
    t.end_row();
  }
  std::printf(
      "\n(us; 'simulated' runs a COMPARE-AND-WRITE, i.e. conditional +"
      " nothing-to-write)\n");
  return 0;
}
