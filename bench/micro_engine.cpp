// google-benchmark microbenchmarks of the simulation engine and the
// STORM mechanisms layer: these bound how much wall-clock time the
// experiment harnesses spend per simulated event.
#include <benchmark/benchmark.h>

#include "mech/qsnet_mechanisms.hpp"
#include "sim/resources.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace {

using namespace storm;
using sim::SimTime;
using sim::Task;

void BM_ScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(SimTime::ns(i), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleAndRun);

void BM_ScheduleCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      const auto id = s.schedule_at(SimTime::ns(i), [] {});
      s.cancel(id);
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleCancel);

Task<> delay_chain(sim::Simulator* s, int hops) {
  for (int i = 0; i < hops; ++i) co_await s->delay(SimTime::ns(1));
}

void BM_CoroutineDelays(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    s.spawn(delay_chain(&s, 1000));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelays);

Task<> channel_consumer(sim::Channel<int>* ch, int n) {
  for (int i = 0; i < n; ++i) (void)co_await ch->get();
}

void BM_ChannelThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::Channel<int> ch(s);
    s.spawn(channel_consumer(&ch, 1000));
    for (int i = 0; i < 1000; ++i) ch.put(i);
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelThroughput);

Task<> caw_loop(mech::QsNetMechanisms* m, int n, int nodes) {
  for (int i = 0; i < n; ++i) {
    (void)co_await m->compare_and_write(0, net::NodeRange{0, nodes}, 0,
                                        net::Compare::GE, 0, mech::kNoWrite,
                                        0);
  }
}

void BM_CompareAndWrite64(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    net::QsNet qsnet(s, 64);
    mech::QsNetMechanisms m(qsnet);
    s.spawn(caw_loop(&m, 100, 64));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CompareAndWrite64);

void BM_FluidResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::SharedBandwidth pipe(s, sim::Bandwidth::mb_per_s(100));
    for (int i = 0; i < 64; ++i) {
      s.spawn(pipe.transfer(1'000'000));
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FluidResource);

}  // namespace

BENCHMARK_MAIN();
