// google-benchmark microbenchmarks of the simulation engine and the
// STORM mechanisms layer: these bound how much wall-clock time the
// experiment harnesses spend per simulated event.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "mech/qsnet_mechanisms.hpp"
#include "sim/resources.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using sim::SimTime;
using sim::Task;

void BM_ScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(SimTime::ns(i), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleAndRun);

void BM_ScheduleCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      const auto id = s.schedule_at(SimTime::ns(i), [] {});
      s.cancel(id);
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleCancel);

// Cancel-heavy churn on a warm arena: a standing population of
// far-future "timeout" events is repeatedly cancelled and re-armed
// (the NM watchdog pattern), so slot recycling and lazy heap cleanup
// dominate rather than first-touch allocation.
void BM_CancelChurn(benchmark::State& state) {
  constexpr int kTimers = 256;
  constexpr int kRounds = 8;
  for (auto _ : state) {
    sim::Simulator s;
    std::vector<sim::EventId> timers(kTimers);
    for (int i = 0; i < kTimers; ++i) {
      timers[i] = s.schedule_at(SimTime::sec(1000), [] {});
    }
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kTimers; ++i) {
        s.cancel(timers[i]);
        timers[i] = s.schedule_at(SimTime::sec(1000 + r), [] {});
      }
    }
    for (int i = 0; i < kTimers; ++i) s.cancel(timers[i]);
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * kTimers * kRounds);
}
BENCHMARK(BM_CancelChurn);

// Captures past InlineCallback::kInlineBytes take the heap fallback;
// this pins the cost of that path so the inline/spill boundary shows
// up in the perf trajectory.
void BM_LargeCaptureCallbacks(benchmark::State& state) {
  struct BigCapture {
    std::uint64_t payload[12];  // 96 bytes: double the inline buffer
  };
  static_assert(sizeof(BigCapture) > sim::InlineCallback::kInlineBytes);
  for (auto _ : state) {
    sim::Simulator s;
    std::uint64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      BigCapture big{};
      big.payload[0] = static_cast<std::uint64_t>(i);
      s.schedule_at(SimTime::ns(i), [big, &sum] { sum += big.payload[0]; });
    }
    s.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LargeCaptureCallbacks);

// Mixed timer workload shaped like fig04's event stream: per "node",
// a periodic strobe that re-arms itself each firing, re-arms a
// far-future timeout (cancel + schedule), and runs a few same-time
// immediate events — the MM/NM boundary pattern.
void BM_NodeManagerTimers(benchmark::State& state) {
  constexpr int kNodes = 32;
  constexpr int kBoundaries = 64;
  struct Node {
    sim::EventId timeout = sim::kInvalidEvent;
    int fired = 0;
  };
  for (auto _ : state) {
    sim::Simulator s;
    std::vector<Node> nodes(kNodes);
    for (int n = 0; n < kNodes; ++n) {
      struct Strobe {
        sim::Simulator* s;
        Node* node;
        void operator()() const {
          Node& nd = *node;
          ++nd.fired;
          if (nd.timeout != sim::kInvalidEvent) s->cancel(nd.timeout);
          nd.timeout = s->schedule_after(SimTime::ms(100), [] {});
          s->schedule_after(SimTime::zero(), [&nd] { ++nd.fired; });
          if (nd.fired < 2 * kBoundaries) {
            s->schedule_after(SimTime::ms(1), Strobe{s, node});
          }
        }
      };
      s.schedule_at(SimTime::us(n), Strobe{&s, &nodes[n]});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * kNodes * kBoundaries);
}
BENCHMARK(BM_NodeManagerTimers);

Task<> delay_chain(sim::Simulator* s, int hops) {
  for (int i = 0; i < hops; ++i) co_await s->delay(SimTime::ns(1));
}

void BM_CoroutineDelays(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    s.spawn(delay_chain(&s, 1000));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelays);

Task<> channel_consumer(sim::Channel<int>* ch, int n) {
  for (int i = 0; i < n; ++i) (void)co_await ch->get();
}

void BM_ChannelThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::Channel<int> ch(s);
    s.spawn(channel_consumer(&ch, 1000));
    for (int i = 0; i < 1000; ++i) ch.put(i);
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelThroughput);

Task<> caw_loop(mech::QsNetMechanisms* m, int n, int nodes) {
  for (int i = 0; i < n; ++i) {
    (void)co_await m->compare_and_write(0, net::NodeRange{0, nodes}, 0,
                                        net::Compare::GE, 0, mech::kNoWrite,
                                        0);
  }
}

void BM_CompareAndWrite64(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    net::QsNet qsnet(s, 64);
    mech::QsNetMechanisms m(qsnet);
    s.spawn(caw_loop(&m, 100, 64));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CompareAndWrite64);

// The periodic hot path of DESIGN §2.3, engine level: a population of
// same-phase periodic timers as one coalesced cohort (mode 1) versus
// the naive encoding it replaces — each timer a self-rearming
// schedule_after chain (mode 0). The cohort needs one heap event per
// period regardless of population.
void BM_PeriodicTimers(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const bool coalesced = state.range(1) != 0;
  constexpr int kPeriods = 64;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim::Simulator s;
    if (coalesced) {
      for (int i = 0; i < members; ++i) {
        s.schedule_periodic(SimTime::ms(1), SimTime::ms(1),
                            [&fired] { ++fired; });
      }
    } else {
      struct Rearm {
        sim::Simulator* s;
        std::uint64_t* fired;
        void operator()() const {
          ++*fired;
          s->schedule_after(SimTime::ms(1), Rearm{s, fired});
        }
      };
      for (int i = 0; i < members; ++i) {
        s.schedule_after(SimTime::ms(1), Rearm{&s, &fired});
      }
    }
    s.run(SimTime::ms(kPeriods));
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * members * kPeriods);
}
BENCHMARK(BM_PeriodicTimers)
    ->ArgNames({"members", "coalesced"})
    ->Args({1024, 0})
    ->Args({1024, 1});

core::ClusterConfig periodic_cluster_config(int nodes, bool heartbeat,
                                            bool batched) {
  core::ClusterConfig cfg = core::ClusterConfig::es40(nodes);
  cfg.storm.quantum = SimTime::ms(10);
  cfg.storm.heartbeat_enabled = heartbeat;
  cfg.storm.heartbeat_period_quanta = 5;
  cfg.storm.batched_periodic_delivery = batched;
  return cfg;
}

// One simulated second of an idle heartbeat-enabled cluster: 100
// strobe rounds + 20 heartbeat rounds fanned out to every node. With
// batching off this is the seed's per-node event-driven path; with it
// on, each round is a handful of segment sweeps plus absorb windows.
void BM_HeartbeatEpoch(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const bool batched = state.range(1) != 0;
  // Construct once: cluster setup cost is identical in both modes and
  // would dilute the delivery-path ratio. Each iteration advances the
  // steady-state simulation by one second (20 heartbeat rounds).
  sim::Simulator s;
  core::Cluster cluster(s, periodic_cluster_config(nodes, true, batched));
  s.run(SimTime::sec(1));  // warm-up past the first lagged rounds
  for (auto _ : state) {
    s.run(s.now() + SimTime::sec(1));
    benchmark::DoNotOptimize(s.events_executed());
  }
  // 20 heartbeat rounds/sim-second across the cluster.
  state.SetItemsProcessed(state.iterations() * 20 * nodes);
}
BENCHMARK(BM_HeartbeatEpoch)
    ->ArgNames({"nodes", "batched"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

// Strobe-only variant: quantum boundaries with heartbeats disabled,
// the configuration every pinned figure runs with. An idle cluster
// skips boundary work entirely, so one small everlasting job keeps
// the strobe fan-out alive while the other ~1020 nodes absorb.
void BM_StrobeSweep(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const bool batched = state.range(1) != 0;
  sim::Simulator s;
  core::Cluster cluster(s, periodic_cluster_config(nodes, false, batched));
  cluster.submit({.name = "pin",
                  .binary_size = 1 << 20,
                  .npes = 4,
                  .program = [](core::AppContext& ctx) -> Task<> {
                    co_await ctx.compute(SimTime::sec(1'000'000));
                  }});
  s.run(SimTime::sec(1));  // launch + settle into steady state
  for (auto _ : state) {
    s.run(s.now() + SimTime::sec(1));
    benchmark::DoNotOptimize(s.events_executed());
  }
  // 100 strobe rounds/sim-second across the cluster.
  state.SetItemsProcessed(state.iterations() * 100 * nodes);
}
BENCHMARK(BM_StrobeSweep)
    ->ArgNames({"nodes", "batched"})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_FluidResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::SharedBandwidth pipe(s, sim::Bandwidth::mb_per_s(100));
    for (int i = 0; i < 64; ++i) {
      s.spawn(pipe.transfer(1'000'000));
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FluidResource);

}  // namespace

BENCHMARK_MAIN();
