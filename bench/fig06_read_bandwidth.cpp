// Figure 6: read bandwidth for a 12 MB binary image from NFS, local
// disk and RAM disk, with buffers in NIC and in main memory.
//
// Paper values (MB/s):  NFS 11.4/11.2, local 31.5/30.5, RAM 120/218
// (NIC-memory / main-memory buffers).
#include "bench/common.hpp"
#include "node/machine.hpp"

namespace {

using namespace storm;
using namespace storm::sim::byte_literals;

double measure(node::FsKind kind, net::BufferPlace place) {
  sim::Simulator sim;
  node::NfsServer nfs(sim);
  node::Machine machine(sim, 0, node::MachineParams{}, nullptr, &nfs);
  node::Proc& helper = machine.os().create("helper", 0);
  const sim::Bytes bytes = 12_MB;
  sim::SimTime done{};
  auto read = [&]() -> sim::Task<> {
    co_await machine.fs(kind).read(bytes, place, &helper);
    done = sim.now();
  };
  sim.spawn(read());
  sim.run();
  return static_cast<double>(bytes) / 1e6 / done.to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::banner("Figure 6 — 12 MB image read bandwidth by filesystem",
                "paper: NFS 11.4/11.2, local 31.5/30.5, RAM 120/218 MB/s "
                "(NIC / main buffers)");

  bench::Table t({"filesystem", "NIC_mem", "main_mem"}, 14);
  t.print_header();
  for (node::FsKind kind :
       {node::FsKind::Nfs, node::FsKind::LocalDisk, node::FsKind::RamDisk}) {
    t.cell(node::to_string(kind));
    t.cell(measure(kind, net::BufferPlace::NicMemory));
    t.cell(measure(kind, net::BufferPlace::MainMemory));
    t.end_row();
  }
  std::printf(
      "\n(MB/s; the RAM-disk main-memory advantage drives STORM's buffer"
      " placement, Section 3.3.1)\n");
  return 0;
}
