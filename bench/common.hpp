// Shared utilities for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §4 and EXPERIMENTS.md).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/tracing.hpp"

namespace storm::bench {

/// Peak resident-set size of this process in MB (0 when the platform
/// has no getrusage). The terascale harness asserts a budget against
/// it; every harness reports it on stderr so stdout stays golden.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

/// `--fast` runs shortened workloads (same sweep shape, ~10x less
/// simulated work) for smoke-testing the harnesses.
inline bool fast_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) return true;
  }
  return false;
}

/// Scan argv for `<flag> <out-path>` (e.g. `--metrics x.json`,
/// `--trace y.json`). A trailing flag with no path is a usage error
/// (it used to be silently ignored), as is an empty path.
inline const char* parse_out_path(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    if (i + 1 >= argc || argv[i + 1][0] == '\0') {
      std::fprintf(stderr, "%s: %s requires an output path "
                   "(usage: %s <out.json>)\n", argv[0], flag, flag);
      std::exit(2);
    }
    return argv[i + 1];
  }
  return nullptr;
}

/// `--metrics <out.json>`: export a merged telemetry snapshot
/// (storm.metrics.v1) covering every cluster the harness ran.
inline const char* metrics_path(int argc, char** argv) {
  return parse_out_path(argc, argv, "--metrics");
}

/// Scan argv for `<flag> <value>` where value is a number; -1 when the
/// flag is absent (budgets are opt-in).
inline double budget_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return -1.0;
}

/// `--jobs N`: number of worker threads the SweepRunner
/// (bench/runner.hpp) uses for independent sweep points. Defaults to
/// 1 (serial); output is byte-identical either way.
inline int jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: --jobs requires a thread count "
                   "(usage: --jobs <N>)\n", argv[0]);
      std::exit(2);
    }
    char* end = nullptr;
    const long n = std::strtol(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0' || n < 1 || n > 1024) {
      std::fprintf(stderr, "%s: --jobs: '%s' is not a thread count in "
                   "[1, 1024]\n", argv[0], argv[i + 1]);
      std::exit(2);
    }
    return static_cast<int>(n);
  }
  return 1;
}

/// Aggregates the per-run registries of the (typically many) Clusters
/// a harness creates and writes one JSON snapshot at exit. When the
/// flags are absent every call is a no-op, so harness code can stay
/// unconditional.
///
/// Beyond `--metrics`, this is also the home of the time-resolved
/// telemetry plane (DESIGN.md §3.7):
///   --timeseries <out.json>   export merged windowed series
///                             (storm.timeseries.v1)
///   --timeseries-window <ms>  recorder window (default 10 simulated ms)
///   --watchdog "<spec>"       SLO rule, repeatable (see parse_watchdog)
///   --watchdog-fail           exit nonzero if any watchdog fired
///
/// Usage:
///   bench::MetricsExport mx(argc, argv);
///   ...per run:   if (mx.enabled()) cluster.enable_fabric_metrics();
///                 if (mx.ts_enabled())
///                   cluster.enable_timeseries(mx.ts_options());
///                 ...run...
///                 mx.collect(cluster.metrics());
///                 if (mx.ts_enabled())
///                   mx.collect_series(cluster.timeseries()->snapshot());
///   ...at exit:   rc |= mx.write();
class MetricsExport {
 public:
  MetricsExport(int argc, char** argv)
      : path_(metrics_path(argc, argv)),
        ts_path_(parse_out_path(argc, argv, "--timeseries")) {
    if (enabled()) telemetry::count_trace_lines(master_);
    if (const double win_ms = budget_flag(argc, argv, "--timeseries-window");
        win_ms > 0) {
      ts_opts_.window = sim::SimTime::millis(win_ms);
    }
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--watchdog") != 0) continue;
      if (i + 1 >= argc || argv[i + 1][0] == '\0') {
        std::fprintf(stderr, "%s: --watchdog requires a rule "
                     "(usage: --watchdog \"<metric> [sel] <cmp> <thresh>"
                     " [for N]\")\n", argv[0]);
        std::exit(2);
      }
      telemetry::WatchdogRule rule;
      std::string err;
      if (!telemetry::parse_watchdog(argv[++i], rule, &err)) {
        std::fprintf(stderr, "%s: --watchdog '%s': %s\n", argv[0], argv[i],
                     err.c_str());
        std::exit(2);
      }
      ts_opts_.watchdogs.push_back(std::move(rule));
    }
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--watchdog-fail") == 0) watchdog_fail_ = true;
    }
  }
  ~MetricsExport() {
    if (enabled()) sim::Tracer::instance().set_line_observer({});
  }
  MetricsExport(const MetricsExport&) = delete;
  MetricsExport& operator=(const MetricsExport&) = delete;

  bool enabled() const { return path_ != nullptr; }

  /// True when the harness should arm the windowed recorder on every
  /// cluster it runs: either an export path or a watchdog rule was
  /// given. Default-off, so golden stdout/metrics stay unchanged.
  bool ts_enabled() const {
    return ts_path_ != nullptr || !ts_opts_.watchdogs.empty();
  }

  /// Recorder configuration for Cluster::enable_timeseries().
  const telemetry::TimeSeriesOptions& ts_options() const { return ts_opts_; }

  void collect(const telemetry::MetricsRegistry& reg) {
    if (enabled()) master_.merge(reg);
  }

  /// Merge one run's recorder snapshot into the export. Call from the
  /// serial commit path (SweepRunner commits points in order), so the
  /// merged store is byte-identical across --jobs values.
  void collect_series(const telemetry::TimeSeriesStore& s) {
    if (ts_enabled()) ts_master_.merge(s);
  }

  /// Write the merged snapshot(s) and print the control-plane overhead
  /// headline (the paper claims resource management costs ~1% of the
  /// system; see EXPERIMENTS.md). Returns the exit-code contribution:
  /// 1 when `--watchdog-fail` was given and any watchdog fired, else 0.
  int write() {
    if (enabled()) {
      telemetry::update_overhead_ratio(master_);
      std::string json = master_.to_json();
      // Splice the process record in right after the schema line so
      // the paper-metric series themselves stay byte-identical. Golden
      // and parallel-sweep comparisons strip this one line (RSS is the
      // only nondeterministic field in the file).
      static constexpr std::string_view kSchemaLine =
          "  \"schema\": \"storm.metrics.v1\",\n";
      if (const auto pos = json.find(kSchemaLine); pos != std::string::npos) {
        char proc[64];
        std::snprintf(proc, sizeof proc,
                      "  \"proc\": {\"peak_rss_mb\": %.1f},\n", peak_rss_mb());
        json.insert(pos + kSchemaLine.size(), proc);
      }
      std::FILE* f = std::fopen(path_, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "--metrics: cannot open %s\n", path_);
      } else {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\nmetrics: wrote %zu series to %s\n", master_.size(),
                    path_);
        if (const auto* g = master_.find_gauge(telemetry::kOverheadRatioGauge);
            g != nullptr && g->ever_set()) {
          std::printf("metrics: control-plane overhead %.3f%% of fabric "
                      "bytes\n", g->value() * 100.0);
        }
      }
      // stderr, not stdout: golden comparisons cover stdout + the JSON.
      std::fprintf(stderr, "metrics: peak RSS %.1f MB\n", peak_rss_mb());
    }
    if (!ts_enabled()) return 0;
    if (ts_path_ != nullptr) {
      const std::string json = ts_master_.to_json();
      std::FILE* f = std::fopen(ts_path_, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "--timeseries: cannot open %s\n", ts_path_);
      } else {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\ntimeseries: wrote %zu points across %zu series to "
                    "%s\n", ts_master_.total_points(),
                    ts_master_.series.size(), ts_path_);
      }
    }
    if (!ts_opts_.watchdogs.empty()) {
      std::printf("watchdog: %zu breach%s\n", ts_master_.breaches.size(),
                  ts_master_.breaches.size() == 1 ? "" : "es");
      for (const auto& b : ts_master_.breaches) {
        std::printf("watchdog: BREACH [%s] window %lld value %.6g "
                    "(threshold %.6g)\n", b.rule.c_str(),
                    static_cast<long long>(b.window), b.value, b.threshold);
      }
    }
    if (watchdog_fail_ && !ts_master_.breaches.empty()) {
      std::fprintf(stderr, "watchdog: FAIL %zu breach(es) with "
                   "--watchdog-fail\n", ts_master_.breaches.size());
      return 1;
    }
    return 0;
  }

 private:
  const char* path_;
  const char* ts_path_;
  telemetry::TimeSeriesOptions ts_opts_;
  bool watchdog_fail_ = false;
  telemetry::MetricsRegistry master_;
  telemetry::TimeSeriesStore ts_master_;
};

/// `--bench-json <out.json>`: a machine-readable health record of the
/// harness run itself (schema storm.bench.v1) — wall time, peak RSS,
/// engine-event totals, and the nodes×events/s simulation throughput
/// the ROADMAP flags as the per-fig budget metric. `node_events` is
/// Σ(run nodes × run engine events): how much per-node simulation work
/// the harness got through; divided by wall time it is a
/// machine-comparable throughput an optional `--min-node-events-per-s`
/// budget can gate (CI records the number but does not enforce a floor
/// — wall clock is too machine-dependent for a hard gate there).
///
/// record_run() is thread-safe, so SweepRunner workers may call it as
/// points finish; totals are order-independent.
///
/// Usage:
///   bench::BenchJsonExport bx(argc, argv, "fig02");
///   ...per run:   bx.record_run(nodes, sim.events_executed());
///   ...at exit:   return bx.write();  // 0, or 1 if a budget failed
class BenchJsonExport {
 public:
  BenchJsonExport(int argc, char** argv, const char* bench)
      : path_(parse_out_path(argc, argv, "--bench-json")),
        bench_(bench),
        fast_(fast_mode(argc, argv)),
        min_node_events_per_s_(
            budget_flag(argc, argv, "--min-node-events-per-s")),
        t0_(std::chrono::steady_clock::now()) {}
  BenchJsonExport(const BenchJsonExport&) = delete;
  BenchJsonExport& operator=(const BenchJsonExport&) = delete;

  bool enabled() const {
    return path_ != nullptr || min_node_events_per_s_ > 0;
  }

  void record_run(int nodes, std::uint64_t events) {
    runs_.fetch_add(1, std::memory_order_relaxed);
    events_.fetch_add(events, std::memory_order_relaxed);
    node_events_.fetch_add(static_cast<std::uint64_t>(nodes) * events,
                           std::memory_order_relaxed);
    std::uint64_t seen = nodes_max_.load(std::memory_order_relaxed);
    while (seen < static_cast<std::uint64_t>(nodes) &&
           !nodes_max_.compare_exchange_weak(
               seen, static_cast<std::uint64_t>(nodes),
               std::memory_order_relaxed)) {
    }
  }

  /// Record a named scalar the harness wants CI to see (e.g. the
  /// measured MM failover gap). Emitted under "values" in the JSON,
  /// sorted by name so output is deterministic. Thread-safe; the last
  /// write to a name wins.
  void record_value(const std::string& name, double value) {
    const std::lock_guard<std::mutex> lock(values_mu_);
    values_[name] = value;
  }

  /// Write the JSON (if `--bench-json` was given) and enforce the
  /// throughput budget (if given). Returns the harness exit-code
  /// contribution: 0 ok, 1 budget failure.
  int write() const {
    if (!enabled()) return 0;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    const double rss_mb = peak_rss_mb();
    const auto node_events = node_events_.load(std::memory_order_relaxed);
    const double per_s =
        wall_s > 0 ? static_cast<double>(node_events) / wall_s : 0.0;
    if (path_ != nullptr) {
      std::FILE* f = std::fopen(path_, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "--bench-json: cannot open %s\n", path_);
        return 1;
      }
      std::fprintf(f, "{\n  \"schema\": \"storm.bench.v1\",\n");
      std::fprintf(f, "  \"bench\": \"%s\",\n", bench_);
      std::fprintf(f, "  \"fast\": %s,\n", fast_ ? "true" : "false");
      std::fprintf(f, "  \"runs\": %llu,\n",
                   static_cast<unsigned long long>(
                       runs_.load(std::memory_order_relaxed)));
      std::fprintf(f, "  \"events\": %llu,\n",
                   static_cast<unsigned long long>(
                       events_.load(std::memory_order_relaxed)));
      std::fprintf(f, "  \"nodes_max\": %llu,\n",
                   static_cast<unsigned long long>(
                       nodes_max_.load(std::memory_order_relaxed)));
      std::fprintf(f, "  \"node_events\": %llu,\n",
                   static_cast<unsigned long long>(node_events));
      std::fprintf(f, "  \"node_events_per_s\": %.1f,\n", per_s);
      {
        const std::lock_guard<std::mutex> lock(values_mu_);
        if (!values_.empty()) {
          std::fprintf(f, "  \"values\": {\n");
          std::size_t i = 0;
          for (const auto& [name, v] : values_) {
            std::fprintf(f, "    \"%s\": %.3f%s\n", name.c_str(), v,
                         ++i < values_.size() ? "," : "");
          }
          std::fprintf(f, "  },\n");
        }
      }
      std::fprintf(f, "  \"wall_s\": %.3f,\n", wall_s);
      std::fprintf(f, "  \"peak_rss_mb\": %.1f\n}\n", rss_mb);
      std::fclose(f);
      std::fprintf(stderr, "bench-json: wrote %s (%.3g node-events/s)\n",
                   path_, per_s);
    }
    if (min_node_events_per_s_ > 0 && per_s < min_node_events_per_s_) {
      std::fprintf(stderr,
                   "bench-json: FAIL %.3g node-events/s < budget %.3g\n",
                   per_s, min_node_events_per_s_);
      return 1;
    }
    return 0;
  }

 private:
  const char* path_;
  const char* bench_;
  bool fast_;
  double min_node_events_per_s_;
  std::chrono::steady_clock::time_point t0_;
  std::atomic<std::uint64_t> runs_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> node_events_{0};
  std::atomic<std::uint64_t> nodes_max_{0};
  mutable std::mutex values_mu_;
  std::map<std::string, double> values_;
};

/// `--trace <out.json>`: export a Perfetto/Chrome trace-event timeline
/// of one instrumented run plus a per-job critical-path decomposition
/// on stdout. Harnesses sweep many configurations but a timeline of
/// everything would be unreadable, so the *last* collected run wins —
/// collect the anchor configuration last. When the flag is absent every
/// call is a no-op, mirroring MetricsExport.
///
/// Usage:
///   bench::TraceExport tx(argc, argv);
///   ...per run:   if (tx.enabled()) cluster.enable_tracing();
///                 ...run...
///                 if (tx.enabled()) tx.collect(cluster.tracer()->buffer());
///   ...at exit:   tx.write();
class TraceExport {
 public:
  /// The rendered artifacts of one run's TraceBuffer. `snapshot()` is
  /// pure, so parallel sweep workers may take one while the cluster is
  /// still alive and `adopt()` it later from the serial commit path —
  /// keeping the exported timeline identical across --jobs values.
  struct Snapshot {
    std::string json;
    std::string report;
    std::size_t spans = 0;
    std::size_t dropped = 0;
  };

  TraceExport(int argc, char** argv)
      : path_(parse_out_path(argc, argv, "--trace")) {}
  TraceExport(const TraceExport&) = delete;
  TraceExport& operator=(const TraceExport&) = delete;

  bool enabled() const { return path_ != nullptr; }

  /// Render `buf` to a Perfetto JSON string plus a critical-path
  /// report covering up to kMaxReports job traces. Thread-safe.
  Snapshot snapshot(const telemetry::TraceBuffer& buf) const {
    Snapshot s;
    if (!enabled()) return s;
    s.json = telemetry::to_perfetto_json(buf);
    s.spans = buf.spans().size();
    s.dropped = buf.dropped();
    std::vector<std::uint64_t> traces;
    for (const auto& sp : buf.spans()) {
      if (sp.trace >= 2 && !sp.open()) traces.push_back(sp.trace);
    }
    std::sort(traces.begin(), traces.end());
    traces.erase(std::unique(traces.begin(), traces.end()), traces.end());
    const std::size_t shown = std::min<std::size_t>(traces.size(), kMaxReports);
    for (std::size_t i = 0; i < shown; ++i) {
      const std::uint64_t t = traces[i];
      const std::uint64_t job = (t - 2) / telemetry::kIncarnationsPerJob;
      const std::uint64_t inc = (t - 2) % telemetry::kIncarnationsPerJob;
      const auto cp = telemetry::analyze_launch(buf, t);
      char head[96];
      std::snprintf(head, sizeof head,
                    "trace: job %llu incarnation %llu critical path:\n",
                    static_cast<unsigned long long>(job),
                    static_cast<unsigned long long>(inc));
      s.report += head;
      s.report += telemetry::format_critical_path(cp);
    }
    if (traces.size() > shown) {
      char tail[64];
      std::snprintf(tail, sizeof tail, "trace: ... and %zu more job traces\n",
                    traces.size() - shown);
      s.report += tail;
    }
    return s;
  }

  /// Make `s` the timeline that write() exports (last adopted wins).
  void adopt(Snapshot&& s) {
    if (enabled() && !s.json.empty()) last_ = std::move(s);
  }

  /// snapshot() + adopt() for the common serial-harness case.
  void collect(const telemetry::TraceBuffer& buf) { adopt(snapshot(buf)); }

  /// Write the timeline JSON and print the critical-path report.
  void write() {
    if (!enabled() || last_.json.empty()) return;
    std::FILE* f = std::fopen(path_, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "--trace: cannot open %s\n", path_);
      return;
    }
    std::fwrite(last_.json.data(), 1, last_.json.size(), f);
    std::fclose(f);
    std::printf("\ntrace: wrote %zu spans to %s (load in ui.perfetto.dev)\n",
                last_.spans, path_);
    if (last_.dropped > 0) {
      std::printf("trace: buffer full, %zu spans dropped\n", last_.dropped);
    }
    std::fputs(last_.report.c_str(), stdout);
  }

 private:
  static constexpr std::size_t kMaxReports = 8;

  const char* path_;
  Snapshot last_;
};

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 12)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  void cell(const std::string& v) const { std::printf("%*s", width_, v.c_str()); }
  void cell(double v, int precision = 1) const {
    std::printf("%*.*f", width_, precision, v);
  }
  void cell(long long v) const { std::printf("%*lld", width_, v); }
  void cell(int v) const { std::printf("%*d", width_, v); }
  void end_row() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace storm::bench
