// Shared utilities for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §4 and EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace storm::bench {

/// `--fast` runs shortened workloads (same sweep shape, ~10x less
/// simulated work) for smoke-testing the harnesses.
inline bool fast_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) return true;
  }
  return false;
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 12)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  void cell(const std::string& v) const { std::printf("%*s", width_, v.c_str()); }
  void cell(double v, int precision = 1) const {
    std::printf("%*.*f", width_, precision, v);
  }
  void cell(long long v) const { std::printf("%*lld", width_, v); }
  void cell(int v) const { std::printf("%*d", width_, v); }
  void end_row() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace storm::bench
