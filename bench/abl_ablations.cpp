// Ablations of STORM's design choices (DESIGN.md §4):
//  (a) buffer placement for the launch pipeline — the min(BW_read,
//      BW_broadcast) argument of Section 3.3.1 says main memory wins;
//  (b) launch-source filesystem — RAM disk vs local disk vs NFS;
//  (c) hardware multicast vs software-tree distribution of the same
//      image on the same node count.
#include "bench/common.hpp"
#include "mech/emulated_mechanisms.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

double launch_ms(core::ClusterConfig cfg, int npes) {
  sim::Simulator sim(0xAB'1ULL);
  core::Cluster cluster(sim, cfg);
  const auto id =
      cluster.submit({.name = "noop", .binary_size = 12_MB, .npes = npes});
  if (!cluster.run_until_all_complete(3600_sec)) return -1.0;
  return cluster.job(id).times().send_time().to_millis();
}

core::ClusterConfig base_config() {
  core::ClusterConfig cfg = core::ClusterConfig::es40(64);
  cfg.storm.quantum = 1_ms;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;

  bench::banner("Ablation (a) — pipeline buffer placement",
                "Section 3.3.1: min(218, 175) = 175 via main memory beats "
                "min(120, 312) = 120 via NIC memory");
  {
    bench::Table t({"placement", "send_ms", "protocol_MBps"}, 16);
    t.print_header();
    for (auto place :
         {net::BufferPlace::MainMemory, net::BufferPlace::NicMemory}) {
      core::ClusterConfig cfg = base_config();
      cfg.storm.buffers = place;
      const double ms = launch_ms(cfg, 256);
      t.cell(std::string(place == net::BufferPlace::MainMemory ? "main memory"
                                                               : "NIC memory"));
      t.cell(ms);
      t.cell(12.0 * 1.048576 * 1000.0 / ms, 1);
      t.end_row();
    }
  }

  bench::banner("Ablation (b) — launch-source filesystem",
                "RAM disk keeps the read stage off the critical path; NFS "
                "and local disk become the pipeline bottleneck");
  {
    bench::Table t({"source_fs", "send_ms"}, 16);
    t.print_header();
    for (auto fs : {node::FsKind::RamDisk, node::FsKind::LocalDisk,
                    node::FsKind::Nfs}) {
      core::ClusterConfig cfg = base_config();
      cfg.storm.source_fs = fs;
      t.cell(node::to_string(fs));
      t.cell(launch_ms(cfg, 256));
      t.end_row();
    }
  }

  bench::banner("Ablation (c) — hardware multicast vs software tree",
                "one 12 MB image to 64 nodes: QsNET hardware broadcast vs "
                "log-tree emulation (Myrinet-class point-to-point)");
  {
    sim::Simulator sim;
    net::QsNet qsnet(sim, 64);
    mech::QsNetMechanisms hw(qsnet);
    mech::EmulatedMechanisms sw(sim, 64, mech::EmulationParams::myrinet());

    auto time_xfer = [&](mech::Mechanisms& m) {
      const sim::SimTime t0 = sim.now();
      sim::SimTime done{};
      auto probe = [&]() -> sim::Task<> {
        m.xfer_and_signal(0, net::NodeRange{0, 64}, 12_MB,
                          net::BufferPlace::MainMemory, mech::kNoEvent, 1);
        co_await m.wait_event(0, 1);
        done = sim.now();
      };
      sim.spawn(probe());
      sim.run();
      return (done - t0).to_millis();
    };

    bench::Table t({"mechanism", "xfer_ms", "speedup"}, 16);
    t.print_header();
    const double hw_ms = time_xfer(hw);
    const double sw_ms = time_xfer(sw);
    t.cell(std::string("QsNET hw"));
    t.cell(hw_ms);
    t.cell(1.0, 1);
    t.end_row();
    t.cell(std::string("sw tree"));
    t.cell(sw_ms);
    t.cell(sw_ms / hw_ms, 1);
    t.end_row();
    std::printf(
        "\n(an order of magnitude against a well-implemented pipelined tree;"
        " against\n Cplant's store-and-forward launcher the gap reaches the"
        " paper's ~hundredfold,\n see tab06 — the Section 5.1 argument)\n");
  }

  bench::banner("Ablation (d) — coscheduling policies",
                "two communicating gangs (MPL 2): gang strobes vs implicit "
                "coscheduling (spin-block) vs uncoordinated local OS");
  {
    auto run_sched = [](core::SchedulerKind kind) {
      sim::Simulator sim(0xAB'4ULL);
      core::ClusterConfig cfg = core::ClusterConfig::es40(8);
      cfg.app_cpus_per_node = 2;
      cfg.storm.scheduler = kind;
      cfg.storm.quantum = 20_ms;
      cfg.storm.max_mpl = 2;
      core::Cluster cluster(sim, cfg);
      // Coupled compute/exchange gangs: progress needs partners
      // scheduled together.
      auto program = [](core::AppContext& ctx) -> sim::Task<> {
        const int peer = ctx.rank() ^ 1;
        for (int i = 0; i < 200; ++i) {
          co_await ctx.compute(sim::SimTime::millis(5));
          if (peer < ctx.npes()) {
            co_await ctx.send(peer, 32_KB);
            co_await ctx.recv(peer);
          }
        }
      };
      std::vector<core::JobId> ids;
      for (int j = 0; j < 2; ++j) {
        ids.push_back(cluster.submit({.name = "gang" + std::to_string(j),
                                      .binary_size = 1_MB,
                                      .npes = 16,
                                      .program = program}));
      }
      if (!cluster.run_until_all_complete(3600_sec)) return -1.0;
      sim::SimTime first = sim::SimTime::max(), last = sim::SimTime::zero();
      for (auto id : ids) {
        first = std::min(first, cluster.job(id).times().first_proc_started);
        last = std::max(last, cluster.job(id).times().last_proc_exited);
      }
      return (last - first).to_seconds() / 2.0;
    };
    bench::Table t({"scheduler", "runtime/MPL_s"}, 18);
    t.print_header();
    const double gang = run_sched(core::SchedulerKind::Gang);
    const double ics = run_sched(core::SchedulerKind::ImplicitCosched);
    const double local = run_sched(core::SchedulerKind::LocalOs);
    t.cell(std::string("gang"));
    t.cell(gang, 2);
    t.end_row();
    t.cell(std::string("implicit cosched"));
    t.cell(ics, 2);
    t.end_row();
    t.cell(std::string("local OS"));
    t.cell(local, 2);
    t.end_row();
    std::printf(
        "\n(uncoordinated scheduling strands each PE waiting for descheduled"
        " partners;\n spin-block recovers some of the loss; coordinated"
        " strobes recover it all —\n the coscheduling argument that STORM's"
        " fast mechanisms make cheap)\n");
  }
  return 0;
}
