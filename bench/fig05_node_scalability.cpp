// Figure 5: node scalability of the gang scheduler — total runtime /
// MPL for 1-64 nodes, MPL 1 and 2, SWEEP3D and synthetic computation.
//
// Paper anchor: "there is no increase in runtime or overhead with the
// increase in the number of nodes beyond that caused by the
// job-launch." (50 ms quantum.)
#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "apps/sweep3d.hpp"
#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "bench/runner.hpp"
#include "bench/state_export.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

double run_jobs(int nodes, int njobs, core::AppProgram program,
                const bench::MetricsExport& mx,
                telemetry::MetricsRegistry& metrics_out,
                telemetry::TimeSeriesStore& series_out,
                const bench::TraceExport& tx,
                bench::TraceExport::Snapshot* trace_out,
                const bench::StateExport& sx,
                bench::StateExport::Snapshot* state_out,
                bench::BenchJsonExport& bx) {
  sim::Simulator sim(0xF16'05ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(nodes);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 50_ms;  // the paper's pick after Figure 4
  cfg.storm.max_mpl = 2;
  core::Cluster cluster(sim, cfg);
  if (mx.enabled()) cluster.enable_fabric_metrics();
  if (mx.ts_enabled()) cluster.enable_timeseries(mx.ts_options());
  if (tx.enabled()) cluster.enable_tracing();
  std::vector<core::JobId> ids;
  for (int j = 0; j < njobs; ++j) {
    ids.push_back(cluster.submit({.name = "app" + std::to_string(j),
                                  .binary_size = 4_MB,
                                  .npes = nodes * 2,
                                  .program = program}));
  }
  const bool done = cluster.run_until_all_complete(3600_sec);
  metrics_out.merge(cluster.metrics());
  if (mx.ts_enabled()) series_out.merge(cluster.timeseries()->snapshot());
  if (tx.enabled()) *trace_out = tx.snapshot(cluster.tracer()->buffer());
  if (sx.enabled()) *state_out = sx.snapshot(cluster);
  bx.record_run(nodes, sim.events_executed());
  if (!done) return -1.0;
  // Application-level timing, as the paper's self-timing benchmarks
  // report it (free of MM boundary rounding).
  sim::SimTime first_start = sim::SimTime::max();
  sim::SimTime last_exit = sim::SimTime::zero();
  for (auto id : ids) {
    first_start =
        std::min(first_start, cluster.job(id).times().first_proc_started);
    last_exit = std::max(last_exit, cluster.job(id).times().last_proc_exited);
  }
  return (last_exit - first_start).to_seconds() /
         static_cast<double>(njobs);
}

// Opt-in `--scale-nodes N` point: one moderately sized job on an
// N-node cluster — STORM's target shape, where most nodes are idle
// control-plane participants. This is the configuration the batched
// periodic sweeps (DESIGN §2.3) accelerate, and the one the CI
// full-sim throughput floor (--min-node-events-per-s +
// BENCH_fullsim.json) is measured on. Flag-gated so the default
// stdout stays byte-identical to the goldens.
void run_scale_point(int nodes, sim::SimTime work,
                     bench::BenchJsonExport& bx) {
  sim::Simulator sim(0xF16'05ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(nodes);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 50_ms;
  cfg.storm.max_mpl = 2;
  core::Cluster cluster(sim, cfg);
  const int npes = 2 * std::min(nodes, 128);
  cluster.submit({.name = "scale",
                  .binary_size = 4_MB,
                  .npes = npes,
                  .program = apps::synthetic_computation(work)});
  const bool done = cluster.run_until_all_complete(3600_sec);
  bx.record_run(nodes, sim.events_executed());
  std::printf("scale point: %d nodes, %d PEs, %llu engine events%s\n", nodes,
              npes, static_cast<unsigned long long>(sim.events_executed()),
              done ? "" : " (TIMED OUT)");
}

int parse_scale_nodes(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--scale-nodes") {
      return std::atoi(argv[i + 1]);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  bench::MetricsExport mx(argc, argv);
  bench::TraceExport tx(argc, argv);
  bench::StateExport sx(argc, argv);
  bench::BenchJsonExport bx(argc, argv, "fig05");

  apps::Sweep3DParams sweep;
  // Compute budget chosen so the end-to-end runtime including the
  // boundary exchanges lands on the paper's ~49 s (see fig04).
  sweep.target_runtime = fast ? 5_sec : 44_sec;
  const sim::SimTime synth_work = fast ? 5_sec : 25_sec;

  bench::banner("Figure 5 — node scalability (1-64 nodes, MPL 1 and 2)",
                "total runtime / MPL vs nodes; anchor: flat curves — no "
                "overhead growth beyond the launch");

  bench::Table t({"nodes", "sweep_mpl1", "sweep_mpl2", "synth_mpl1",
                  "synth_mpl2"});
  t.print_header();
  // One sweep point per node count, evaluated on the --jobs pool and
  // committed in order (see fig04 for the determinism argument).
  const int node_counts[] = {1, 2, 4, 8, 16, 32, 64};
  struct Row {
    double s1, s2, c1, c2;
    telemetry::MetricsRegistry metrics;
    telemetry::TimeSeriesStore series;   // merged in-run, committed serially
    bench::TraceExport::Snapshot trace;  // last run of the point
    bench::StateExport::Snapshot state;  // last run of the point
  };
  const bench::SweepRunner runner(argc, argv);
  runner.run(
      std::size(node_counts),
      [&](std::size_t ni) {
        const int nodes = node_counts[ni];
        Row row;
        row.s1 = run_jobs(nodes, 1, apps::sweep3d(sweep), mx,
                          row.metrics, row.series, tx, &row.trace, sx,
                          &row.state, bx);
        row.s2 = run_jobs(nodes, 2, apps::sweep3d(sweep), mx,
                          row.metrics, row.series, tx, &row.trace, sx,
                          &row.state, bx);
        row.c1 = run_jobs(nodes, 1, apps::synthetic_computation(synth_work),
                          mx, row.metrics, row.series, tx, &row.trace, sx,
                          &row.state, bx);
        row.c2 = run_jobs(nodes, 2, apps::synthetic_computation(synth_work),
                          mx, row.metrics, row.series, tx, &row.trace, sx,
                          &row.state, bx);
        return row;
      },
      [&](std::size_t ni, Row& row) {
        mx.collect(row.metrics);
        mx.collect_series(row.series);
        tx.adopt(std::move(row.trace));
        sx.adopt(std::move(row.state));
        t.cell(node_counts[ni]);
        t.cell(row.s1, 2);
        t.cell(row.s2, 2);
        t.cell(row.c1, 2);
        t.cell(row.c2, 2);
        t.end_row();
      });
  std::printf("\n(seconds; weak scaling: 2 PEs per node)\n");
  if (const int scale_nodes = parse_scale_nodes(argc, argv);
      scale_nodes > 0) {
    run_scale_point(scale_nodes, fast ? 5_sec : 25_sec, bx);
  }
  int rc = mx.write();
  tx.write();
  rc |= bx.write();
  sx.write();  // last: `--state -` appends the snapshot to stdout
  return rc;
}
