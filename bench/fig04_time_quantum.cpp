// Figure 4: effect of the time quantum on total runtime / MPL,
// 32 nodes / 64 PEs, quanta from 300 us to 8 s.
//
// Paper anchors: the scheduler handles quanta down to ~300 us; at 2 ms
// there is virtually no degradation over a single instance (the curve
// is flat, "(2ms, 49s)"), and runtimes grow by less than ~1 s out of
// ~50 towards 8 s quanta (launch/termination events only happen at
// timeslice boundaries).
#include <algorithm>

#include "apps/sweep3d.hpp"
#include "apps/synthetic.hpp"
#include "bench/common.hpp"
#include "bench/runner.hpp"
#include "bench/state_export.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

double run_jobs(sim::SimTime quantum, int njobs, core::AppProgram program,
                sim::SimTime limit, const bench::MetricsExport& mx,
                telemetry::MetricsRegistry& metrics_out,
                telemetry::TimeSeriesStore& series_out,
                const bench::TraceExport& tx,
                bench::TraceExport::Snapshot* trace_out,
                const bench::StateExport& sx,
                bench::StateExport::Snapshot* state_out,
                bench::BenchJsonExport& bx) {
  sim::Simulator sim(0xF16'04ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(32);
  cfg.app_cpus_per_node = 2;  // 32 nodes / 64 PEs, as in the paper
  cfg.storm.quantum = quantum;
  cfg.storm.max_mpl = 2;
  core::Cluster cluster(sim, cfg);
  if (mx.enabled()) cluster.enable_fabric_metrics();
  if (mx.ts_enabled()) cluster.enable_timeseries(mx.ts_options());
  if (tx.enabled()) cluster.enable_tracing();
  std::vector<core::JobId> ids;
  for (int j = 0; j < njobs; ++j) {
    ids.push_back(cluster.submit(
        {.name = "app" + std::to_string(j),
         .binary_size = 4_MB,
         .npes = 64,
         .program = program}));
  }
  const bool done = cluster.run_until_all_complete(limit);
  metrics_out.merge(cluster.metrics());
  if (mx.ts_enabled()) series_out.merge(cluster.timeseries()->snapshot());
  if (tx.enabled()) *trace_out = tx.snapshot(cluster.tracer()->buffer());
  if (sx.enabled()) *state_out = sx.snapshot(cluster);
  bx.record_run(32, sim.events_executed());
  if (!done) return -1.0;
  // Application-level timing, as the paper's self-timing benchmarks
  // report it (free of MM boundary rounding).
  sim::SimTime first_start = sim::SimTime::max();
  sim::SimTime last_exit = sim::SimTime::zero();
  for (auto id : ids) {
    first_start =
        std::min(first_start, cluster.job(id).times().first_proc_started);
    last_exit = std::max(last_exit, cluster.job(id).times().last_proc_exited);
  }
  return (last_exit - first_start).to_seconds() /
         static_cast<double>(njobs);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  bench::MetricsExport mx(argc, argv);
  bench::TraceExport tx(argc, argv);
  bench::StateExport sx(argc, argv);
  bench::BenchJsonExport bx(argc, argv, "fig04");

  apps::Sweep3DParams sweep;
  // Compute budget chosen so the end-to-end runtime including the
  // boundary exchanges lands on the paper's ~49 s annotation.
  sweep.target_runtime = fast ? 5_sec : 44_sec;
  const sim::SimTime synth_work = fast ? 5_sec : 49_sec;
  const sim::SimTime limit = 3600_sec;

  bench::banner("Figure 4 — effect of the time quantum (32 nodes / 64 PEs)",
                "total runtime / MPL vs quantum; anchors: usable from "
                "~300 us, flat from 2 ms ('(2ms, 49s)')");

  bench::Table t({"quantum_ms", "sweep_mpl1", "sweep_mpl2", "synth_mpl2"});
  t.print_header();

  const double quanta_ms[] = {0.3, 0.5, 1, 2, 5, 10, 20, 50,
                              100, 300, 1000, 2000, 8000};
  // One sweep point per quantum: the three runs inside a point stay
  // serial (their registries merge in s1, s2, c2 order), points
  // evaluate on the --jobs pool, and rows commit in quantum order —
  // so stdout and --metrics JSON match a serial run byte for byte.
  struct Row {
    double s1, s2, c2;
    telemetry::MetricsRegistry metrics;
    telemetry::TimeSeriesStore series;   // merged in-run, committed serially
    bench::TraceExport::Snapshot trace;  // last run of the point
    bench::StateExport::Snapshot state;  // last run of the point
  };
  const bench::SweepRunner runner(argc, argv);
  runner.run(
      std::size(quanta_ms),
      [&](std::size_t qi) {
        const auto q = sim::SimTime::millis(quanta_ms[qi]);
        Row row;
        row.s1 = run_jobs(q, 1, apps::sweep3d(sweep), limit, mx,
                          row.metrics, row.series, tx, &row.trace, sx,
                          &row.state, bx);
        row.s2 = run_jobs(q, 2, apps::sweep3d(sweep), limit, mx,
                          row.metrics, row.series, tx, &row.trace, sx,
                          &row.state, bx);
        row.c2 = run_jobs(q, 2, apps::synthetic_computation(synth_work),
                          limit, mx, row.metrics, row.series, tx, &row.trace,
                          sx, &row.state, bx);
        return row;
      },
      [&](std::size_t qi, Row& row) {
        mx.collect(row.metrics);
        mx.collect_series(row.series);
        tx.adopt(std::move(row.trace));
        sx.adopt(std::move(row.state));
        t.cell(quanta_ms[qi], 1);
        t.cell(row.s1, 2);
        t.cell(row.s2, 2);
        t.cell(row.c2, 2);
        t.end_row();
      });
  std::printf(
      "\n(seconds; runtime/MPL flat across three decades of quantum is the"
      " paper's headline scheduling result)\n");
  int rc = mx.write();
  tx.write();
  rc |= bx.write();
  sx.write();  // last: `--state -` appends the snapshot to stdout
  return rc;
}
