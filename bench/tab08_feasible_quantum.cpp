// Table 8: minimal feasible scheduling quantum (slowdown <= ~2%).
//
// Paper values: RMS 30,000 ms on 15 nodes (1.8%); SCore-D 100 ms on
// 64 nodes (2%); STORM 2 ms on 64 nodes (no observable slowdown).
//
// STORM's row is not taken from a formula: the simulated cluster runs
// two gangs of synthetic computation at each candidate quantum and the
// slowdown against a large-quantum baseline is measured.
#include <algorithm>

#include "apps/synthetic.hpp"
#include "baselines/gang_models.hpp"
#include "bench/common.hpp"
#include "bench/runner.hpp"
#include "bench/state_export.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

double normalized_runtime(sim::SimTime quantum, sim::SimTime work,
                          const bench::MetricsExport& mx,
                          telemetry::MetricsRegistry& metrics_out,
                          telemetry::TimeSeriesStore& series_out,
                          const bench::TraceExport& tx,
                          bench::TraceExport::Snapshot* trace_out,
                          const bench::StateExport& sx,
                          bench::StateExport::Snapshot* state_out) {
  sim::Simulator sim(0x7AB'08ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(32);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = quantum;
  cfg.storm.max_mpl = 2;
  core::Cluster cluster(sim, cfg);
  if (mx.enabled()) cluster.enable_fabric_metrics();
  if (mx.ts_enabled()) cluster.enable_timeseries(mx.ts_options());
  if (tx.enabled()) cluster.enable_tracing();
  std::vector<core::JobId> ids;
  for (int j = 0; j < 2; ++j) {
    ids.push_back(cluster.submit({.name = "synth",
                                  .binary_size = 1_MB,
                                  .npes = 64,
                                  .program = apps::synthetic_computation(work)}));
  }
  const bool done = cluster.run_until_all_complete(3600_sec);
  metrics_out.merge(cluster.metrics());
  if (mx.ts_enabled()) series_out.merge(cluster.timeseries()->snapshot());
  if (tx.enabled()) *trace_out = tx.snapshot(cluster.tracer()->buffer());
  if (sx.enabled()) *state_out = sx.snapshot(cluster);
  if (!done) return -1.0;
  sim::SimTime first = sim::SimTime::max(), last = sim::SimTime::zero();
  for (auto id : ids) {
    first = std::min(first, cluster.job(id).times().first_proc_started);
    last = std::max(last, cluster.job(id).times().last_proc_exited);
  }
  return (last - first).to_seconds() / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  const sim::SimTime work = fast ? 3_sec : 20_sec;
  bench::MetricsExport mx(argc, argv);
  bench::TraceExport tx(argc, argv);
  bench::StateExport sx(argc, argv);

  bench::banner("Table 8 — minimal feasible scheduling quantum",
                "RMS 30 s / SCore-D 100 ms / STORM 2 ms at <= ~2% slowdown");

  std::printf("Measured STORM slowdown (64 PEs, MPL 2, synthetic):\n\n");
  // Reference: the undisturbed per-job runtime (the work itself); the
  // normalised MPL-2 runtime converges to it as overhead vanishes.
  const double baseline = work.to_seconds();
  bench::Table t({"quantum_ms", "runtime_s", "slowdown_%"});
  t.print_header();
  double storm_feasible_ms = -1;
  // One sweep point per candidate quantum, evaluated on the --jobs
  // pool; the feasibility scan below depends on row order, so it
  // lives in the in-order commit (see fig04 for the determinism
  // argument).
  const double quanta_ms[] = {0.5, 1.0, 2.0, 5.0, 10.0, 50.0};
  struct Row {
    double runtime;
    telemetry::MetricsRegistry metrics;
    telemetry::TimeSeriesStore series;
    bench::TraceExport::Snapshot trace;
    bench::StateExport::Snapshot state;
  };
  const bench::SweepRunner runner(argc, argv);
  runner.run(
      std::size(quanta_ms),
      [&](std::size_t qi) {
        Row row;
        row.runtime = normalized_runtime(sim::SimTime::millis(quanta_ms[qi]),
                                         work, mx, row.metrics, row.series,
                                         tx, &row.trace, sx, &row.state);
        return row;
      },
      [&](std::size_t qi, Row& row) {
        mx.collect(row.metrics);
        mx.collect_series(row.series);
        tx.adopt(std::move(row.trace));
        sx.adopt(std::move(row.state));
        const double q_ms = quanta_ms[qi];
        const double slowdown = (row.runtime - baseline) / baseline * 100.0;
        if (storm_feasible_ms < 0 && slowdown <= 2.0) storm_feasible_ms = q_ms;
        t.cell(q_ms, 1);
        t.cell(row.runtime, 3);
        t.cell(slowdown, 2);
        t.end_row();
      });

  std::printf("\nTable 8 — comparison (overhead models for RMS/SCore-D):\n\n");
  bench::Table c({"system", "quantum", "slowdown_%"}, 16);
  c.print_header();
  const auto rms = baselines::GangOverheadModel::rms();
  const auto scored = baselines::GangOverheadModel::score_d();
  c.cell(std::string("RMS"));
  c.cell(std::string("30000 ms"));
  c.cell(rms.slowdown(30_sec, 15) * 100.0, 1);
  c.end_row();
  c.cell(std::string("SCore-D"));
  c.cell(std::string("100 ms"));
  c.cell(scored.slowdown(100_ms, 64) * 100.0, 1);
  c.end_row();
  c.cell(std::string("STORM"));
  c.cell(std::to_string(static_cast<int>(storm_feasible_ms)) + " ms");
  c.cell(2.0, 1);
  c.end_row();
  std::printf(
      "\n(STORM's quantum measured on the simulated cluster; two orders of"
      " magnitude\n below SCore-D, four below RMS — the paper's Table 8"
      " claim)\n");
  const int rc = mx.write();
  tx.write();
  sx.write();  // last: `--state -` appends the snapshot to stdout
  return rc;
}
