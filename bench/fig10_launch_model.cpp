// Figure 10: measured launch times (up to 64 nodes, simulated here)
// and modelled launch times (up to 16,384 nodes) for the ES40 cluster
// and an ideal-I/O-bus machine.
//
// Paper anchors: launch time is only slightly sensitive to machine
// size; a 12 MB binary launches in ~135 ms on 16,384 nodes; the two
// models converge beyond ~4,096 nodes where the network broadcast
// becomes the common bottleneck.
#include "bench/common.hpp"
#include "model/launch_model.hpp"
#include "storm/buddy_allocator.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

double measured_launch_ms(int nodes) {
  sim::Simulator sim(0xF16'10ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(nodes);
  cfg.storm.quantum = 1_ms;
  core::Cluster cluster(sim, cfg);
  const auto id = cluster.submit(
      {.name = "noop", .binary_size = 12_MB, .npes = nodes * 4});
  if (!cluster.run_until_all_complete(600_sec)) return -1.0;
  return cluster.job(id).times().launch_time().to_millis();
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::banner("Figure 10 — measured and modelled 12 MB launch times",
                "anchors: ~110 ms at 64 nodes, ~135 ms modelled at 16,384; "
                "ES40 and ideal models converge past 4,096 nodes");

  const model::LaunchModelParams p{};
  bench::Table t({"nodes", "measured_ms", "model_es40", "model_ideal"}, 14);
  t.print_header();
  for (int nodes = 1; nodes <= 16384; nodes *= 2) {
    t.cell(nodes);
    if (nodes <= 64) {
      t.cell(measured_launch_ms(nodes));
    } else {
      t.cell(std::string("-"));
    }
    t.cell(model::es40_launch_time(nodes, p).to_millis());
    t.cell(model::ideal_launch_time(nodes, p).to_millis());
    t.end_row();
  }
  std::printf("\n(ms)\n");
  return 0;
}
