// Table 5: measured/expected performance of the STORM mechanisms on
// five interconnects.
//
// Paper values:
//   Gigabit Ethernet  CAW 46 log n us     XFER n/a
//   Myrinet           CAW 20 log n us     XFER ~15n MB/s
//   Infiniband        CAW 20 log n us     XFER n/a
//   QsNET             CAW < 10 us         XFER > 150n MB/s
//   BlueGene/L        CAW < 2 us          XFER 700n MB/s
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "mech/emulated_mechanisms.hpp"
#include "mech/qsnet_mechanisms.hpp"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using namespace storm;

  bench::banner("Table 5 — STORM mechanisms across interconnects",
                "COMPARE-AND-WRITE latency and aggregate XFER-AND-SIGNAL "
                "bandwidth, hardware (QsNET) vs software trees");

  sim::Simulator sim;
  net::QsNet qsnet(sim, 1024);
  mech::QsNetMechanisms qsnet_mech(qsnet);
  mech::EmulatedMechanisms gige(sim, 1024,
                                mech::EmulationParams::gigabit_ethernet());
  mech::EmulatedMechanisms myrinet(sim, 1024, mech::EmulationParams::myrinet());
  mech::EmulatedMechanisms ib(sim, 1024, mech::EmulationParams::infiniband());

  std::vector<mech::Mechanisms*> nets = {&gige, &myrinet, &ib, &qsnet_mech};

  bench::Table t({"network", "caw64_us", "caw1024_us", "xfer64_MBps",
                  "xfer1024_MBps", "per_node"},
                 14);
  t.print_header();
  for (auto* m : nets) {
    t.cell(m->name());
    t.cell(m->caw_latency(64).to_micros(), 1);
    t.cell(m->caw_latency(1024).to_micros(), 1);
    t.cell(m->xfer_aggregate_bandwidth(64).to_mb_per_s(), 0);
    t.cell(m->xfer_aggregate_bandwidth(1024).to_mb_per_s(), 0);
    t.cell(m->xfer_aggregate_bandwidth(64).to_mb_per_s() / 64.0, 1);
    t.end_row();
  }
  std::printf(
      "\n(paper: GigE/Myrinet/IB CAW = 46/20/20 x log2(n) us; QsNET < 10 us"
      " flat;\n Myrinet xfer ~15 MB/s per node vs QsNET > 150 MB/s per"
      " node.\n BlueGene/L (CAW < 2 us, 700n MB/s) has dedicated tree-network"
      " hardware\n and needs no emulation layer — it is quoted, not"
      " simulated, here.)\n");
  return 0;
}
