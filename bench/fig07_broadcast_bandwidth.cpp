// Figure 7: hardware-broadcast bandwidth on 64 nodes as a function of
// message size, with source/destination buffers in NIC vs main memory.
//
// Paper asymptotes: 312 MB/s NIC-to-NIC, 175 MB/s through main memory
// (PCI-bound).
#include "bench/common.hpp"
#include "net/qsnet.hpp"

namespace {

using namespace storm;
using namespace storm::sim::byte_literals;

double measure(net::QsNet& qsnet, sim::Simulator& sim, sim::Bytes bytes,
               net::BufferPlace place) {
  sim::SimTime start = sim.now();
  sim::SimTime done{};
  auto bcast = [&]() -> sim::Task<> {
    co_await qsnet.broadcast(0, net::NodeRange{0, 64}, bytes, place);
    done = sim.now();
  };
  sim.spawn(bcast());
  sim.run();
  return static_cast<double>(bytes) / 1e6 / (done - start).to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::banner("Figure 7 — broadcast bandwidth vs message size (64 nodes)",
                "paper: ramps to 312 MB/s (NIC buffers) / 175 MB/s (main "
                "memory) as DMA setup is amortised");

  sim::Simulator sim;
  net::QsNet qsnet(sim, 64);

  bench::Table t({"size_KB", "NIC_mem", "main_mem"});
  t.print_header();
  for (int kb : {100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}) {
    const sim::Bytes bytes = static_cast<sim::Bytes>(kb) * 1024;
    t.cell(kb);
    t.cell(measure(qsnet, sim, bytes, net::BufferPlace::NicMemory));
    t.cell(measure(qsnet, sim, bytes, net::BufferPlace::MainMemory));
    t.end_row();
  }
  std::printf("\n(MB/s)\n");
  return 0;
}
