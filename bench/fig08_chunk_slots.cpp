// Figure 8: 12 MB send time on 64 nodes as a function of the
// file-transfer chunk size (32 KB - 1 MB) and receive-queue slot count
// (2, 4, 8, 16).
//
// Paper anchors: the protocol is almost insensitive to the slot count;
// the best configuration is 4 slots of 512 KB (~92-96 ms); more slots
// do not help because the larger footprint generates NIC-TLB misses;
// small chunks pay per-chunk overheads.
#include "bench/common.hpp"
#include "storm/cluster.hpp"

namespace {

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

double send_time_ms(sim::Bytes chunk, int slots, bench::MetricsExport& mx,
                    bench::TraceExport& tx) {
  sim::Simulator sim(0xF16'08ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(64);
  cfg.storm.quantum = 1_ms;
  cfg.storm.chunk_size = chunk;
  cfg.storm.slots = slots;
  core::Cluster cluster(sim, cfg);
  if (mx.enabled()) cluster.enable_fabric_metrics();
  if (tx.enabled()) cluster.enable_tracing();
  const auto id =
      cluster.submit({.name = "noop", .binary_size = 12_MB, .npes = 256});
  const bool done = cluster.run_until_all_complete(600_sec);
  mx.collect(cluster.metrics());
  if (tx.enabled()) tx.collect(cluster.tracer()->buffer());
  if (!done) return -1.0;
  return cluster.job(id).times().send_time().to_millis();
}

}  // namespace

int main(int argc, char** argv) {
  bench::MetricsExport mx(argc, argv);
  bench::TraceExport tx(argc, argv);
  bench::banner("Figure 8 — send time vs chunk size and slot count",
                "12 MB on 64 nodes; paper optimum: 4 slots x 512 KB "
                "(~92-96 ms), almost slot-insensitive, TLB penalty at "
                "large footprints");

  bench::Table t({"chunk_KB", "2slots", "4slots", "8slots", "16slots"});
  t.print_header();
  for (int kb : {32, 64, 128, 256, 512, 1024}) {
    t.cell(kb);
    for (int slots : {2, 4, 8, 16}) {
      t.cell(send_time_ms(static_cast<sim::Bytes>(kb) * 1024, slots, mx, tx));
    }
    t.end_row();
  }
  std::printf("\n(ms)\n");
  mx.write();
  tx.write();
  return 0;
}
