// Data distribution with the STORM file-transfer machinery: the same
// mechanisms that push binaries can push *data* files — the advantage
// the paper claims over BProc (Section 5.1: "the same mechanisms that
// STORM uses to transmit executable files can also be used to
// transmit data files").
//
// This example sweeps the data-set size and prints the achieved
// protocol bandwidth, then shows the effect of the chunk-size knob.
#include <cstdio>

#include "storm/cluster.hpp"
#include "storm/file_transfer.hpp"

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

namespace {

double transfer_ms(sim::Bytes bytes, sim::Bytes chunk, int slots) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(64);
  cfg.storm.quantum = 1_ms;
  cfg.storm.chunk_size = chunk;
  cfg.storm.slots = slots;
  core::Cluster cluster(sim, cfg);
  // A "job" whose binary is the data set and whose program exits
  // immediately: the transfer phase is the data push.
  const auto id = cluster.submit(
      {.name = "dataset", .binary_size = bytes, .npes = 256});
  if (!cluster.run_until_all_complete(3600_sec)) return -1;
  return cluster.job(id).times().send_time().to_millis();
}

}  // namespace

int main() {
  std::printf("broadcasting data sets to 64 nodes' RAM disks\n\n");
  std::printf("%12s %12s %16s\n", "size", "time_ms", "protocol_MB/s");
  for (sim::Bytes mb : {1, 4, 16, 64, 128}) {
    const sim::Bytes bytes = mb * 1_MB;
    const double ms = transfer_ms(bytes, 512_KB, 4);
    std::printf("%9lld MB %12.1f %16.1f\n", static_cast<long long>(mb), ms,
                static_cast<double>(bytes) / 1e3 / ms);
  }

  std::printf("\nchunk-size knob (64 MB data set, 4 slots):\n\n");
  std::printf("%12s %12s\n", "chunk_KB", "time_ms");
  for (int kb : {64, 256, 512, 1024}) {
    std::printf("%12d %12.1f\n", kb,
                transfer_ms(64_MB, static_cast<sim::Bytes>(kb) * 1024, 4));
  }
  std::printf(
      "\nLarge data sets stream at the steady protocol bandwidth"
      " (~131 MB/s\nper node, ~8 GB/s aggregate on 63 receivers).\n");
  return 0;
}
