// Scheduler comparison: the same bursty workload run under batch FCFS,
// batch + EASY backfilling, and gang scheduling — the three policies
// STORM supports (Section 4, "Generality of Mechanisms").
//
// The workload mixes wide long jobs and narrow short jobs, the pattern
// where FCFS head-of-line blocking hurts, EASY recovers utilisation,
// and gang scheduling additionally time-shares for responsiveness.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/synthetic.hpp"
#include "sim/stats.hpp"
#include "storm/cluster.hpp"

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

namespace {

struct Metrics {
  double makespan_s;
  double mean_turnaround_s;
  double mean_short_turnaround_s;
};

Metrics run(core::SchedulerKind kind) {
  sim::Simulator sim(42);
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.scheduler = kind;
  cfg.storm.quantum = 20_ms;
  cfg.storm.max_mpl = 2;
  core::Cluster cluster(sim, cfg);

  std::vector<core::JobId> all, shorts;
  // Alternating wide-long / narrow-short jobs, all submitted up front.
  for (int i = 0; i < 6; ++i) {
    all.push_back(cluster.submit(
        {.name = "wide-" + std::to_string(i),
         .binary_size = 4_MB,
         .npes = 48,  // 12 of 16 nodes
         .program = apps::synthetic_computation(2_sec),
         .estimated_runtime = 3_sec}));
    const auto s = cluster.submit(
        {.name = "short-" + std::to_string(i),
         .binary_size = 1_MB,
         .npes = 8,  // 2 nodes
         .program = apps::synthetic_computation(300_ms),
         .estimated_runtime = 500_ms});
    all.push_back(s);
    shorts.push_back(s);
  }

  if (!cluster.run_until_all_complete(3600_sec)) return {};

  Metrics m{};
  sim::SimTime last = sim::SimTime::zero();
  sim::Accumulator turn, short_turn;
  for (auto id : all) {
    last = std::max(last, cluster.job(id).times().finished);
    turn.add(cluster.job(id).times().turnaround().to_seconds());
  }
  for (auto id : shorts) {
    short_turn.add(cluster.job(id).times().turnaround().to_seconds());
  }
  m.makespan_s = last.to_seconds();
  m.mean_turnaround_s = turn.mean();
  m.mean_short_turnaround_s = short_turn.mean();
  return m;
}

const char* name(core::SchedulerKind k) {
  switch (k) {
    case core::SchedulerKind::BatchFcfs: return "batch FCFS";
    case core::SchedulerKind::BatchEasy: return "batch + EASY";
    case core::SchedulerKind::Gang: return "gang (MPL 2)";
    case core::SchedulerKind::BatchConservative: return "batch + conservative";
    case core::SchedulerKind::LocalOs: return "local OS";
    case core::SchedulerKind::ImplicitCosched: return "implicit cosched";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("12 jobs (6 wide x 2 s on 12/16 nodes, 6 narrow x 0.3 s) on a "
              "16-node cluster\n\n");
  std::printf("%14s %14s %18s %22s\n", "scheduler", "makespan_s",
              "mean_turnaround", "short-job turnaround");
  for (auto kind :
       {core::SchedulerKind::BatchFcfs, core::SchedulerKind::BatchEasy,
        core::SchedulerKind::BatchConservative, core::SchedulerKind::Gang}) {
    const Metrics m = run(kind);
    std::printf("%14s %14.2f %18.2f %22.2f\n", name(kind), m.makespan_s,
                m.mean_turnaround_s, m.mean_short_turnaround_s);
  }
  std::printf(
      "\nEASY pulls the narrow jobs forward past blocked wide jobs; gang\n"
      "scheduling time-shares rows so short jobs return quickly even while\n"
      "wide jobs run — the responsiveness argument of the paper's Sections\n"
      "4-5.\n");
  return 0;
}
