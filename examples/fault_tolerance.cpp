// Fault detection via the STORM mechanisms (Section 4, "Generality of
// Mechanisms"): the MM multicasts a heartbeat with XFER-AND-SIGNAL
// each period and queries receipt with COMPARE-AND-WRITE; a node that
// misses the query is isolated node-by-node.
//
// Part 1 kills two nodes at different times and reports the detection
// latency of each.
//
// Part 2 uses the control-plane fabric's FaultInjector middleware
// instead of killing hardware: gang-scheduling strobes are dropped
// with probability 0.01, and two consecutive heartbeat deliveries to a
// healthy node are swallowed. The detector tolerates a single late
// epoch (the NM dæmon shares its CPU with application PEs), so one
// lost heartbeat is absorbed — but two in a row are indistinguishable
// from death and the node is isolated. The lost strobes are
// *recovered* (each strobe carries the absolute matrix row, so the
// next one resyncs and the jobs complete), and the whole faulty run is
// deterministic: two executions with the same seed produce
// byte-identical structured traces.
//
// Part 3 walks the full recovery lifecycle: a node dies mid-run, the
// heartbeat declares it, the MM kills the gang spanning it, evicts the
// node from the buddy trees and requeues the job; a fresh incarnation
// lands on surviving nodes and completes; the dead node comes back and
// re-registers with a clean slate. The dæmons' own telemetry tells the
// same story in numbers.
#include <cstdio>
#include <string>
#include <vector>

#include "fabric/fault_injector.hpp"
#include "fabric/trace_sink.hpp"
#include "storm/cluster.hpp"
#include "storm/job.hpp"
#include "storm/machine_manager.hpp"
#include "telemetry/metrics.hpp"

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

namespace {

int part1_hardware_failures() {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(32);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;  // 50 ms heartbeat period
  core::Cluster cluster(sim, cfg);

  struct Detection {
    int node;
    double at_s;
  };
  std::vector<Detection> detections;
  cluster.mm().set_failure_callback([&](int node, sim::SimTime when) {
    detections.push_back({node, when.to_seconds()});
    std::printf("[%8.3f s] MM isolated failed node %d\n", when.to_seconds(),
                node);
  });

  std::printf("32-node cluster, 50 ms heartbeat; killing node 11 at t=1.017s "
              "and node 23 at t=2.519s\n\n");
  double killed_11 = 0, killed_23 = 0;
  sim.schedule_at(sim::SimTime::millis(1017), [&] {
    killed_11 = sim.now().to_seconds();
    std::printf("[%8.3f s] node 11 dies\n", killed_11);
    cluster.fail_node(11);
  });
  sim.schedule_at(sim::SimTime::millis(2519), [&] {
    killed_23 = sim.now().to_seconds();
    std::printf("[%8.3f s] node 23 dies\n", killed_23);
    cluster.fail_node(23);
  });

  sim.run(5_sec);

  std::printf("\n");
  if (detections.size() != 2) {
    std::fprintf(stderr, "expected 2 detections, saw %zu\n",
                 detections.size());
    return 1;
  }
  for (const auto& d : detections) {
    const double killed = d.node == 11 ? killed_11 : killed_23;
    std::printf("node %2d detected after %.0f ms\n", d.node,
                (d.at_s - killed) * 1e3);
  }
  std::printf(
      "\nDetection costs one COMPARE-AND-WRITE per period (~%.1f us on 32\n"
      "nodes) — cheap enough to run at every timeslice if desired.\n",
      cluster.mech().caw_latency(32).to_micros());
  return 0;
}

struct FaultyRun {
  std::vector<int> isolated;           // nodes the MM isolated, in order
  double isolated_at_s = 0;            // first isolation time
  int completed = 0;                   // jobs that finished
  std::int64_t strobes_dropped = 0;    // injected strobe losses
  std::int64_t heartbeats_dropped = 0;
  std::vector<std::uint8_t> trace;     // serialised structured trace
  telemetry::MetricsRegistry metrics;  // fabric aggregator snapshot
};

FaultyRun run_injected_faults() {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();

  // Middleware chain: inject faults, then record everything.
  auto inject =
      std::make_shared<fabric::FaultInjector>(sim.rng().fork(0xFAB51C));
  inject->policy(fabric::MsgClass::Strobe).drop_prob = 0.01;
  // One lost heartbeat to node 5 (forgiven), then two in a row to
  // node 9 (declared dead). The injector holds one armed drop at a
  // time, so the second target is armed after the first has fired.
  inject->drop_next_delivery(fabric::MsgClass::Heartbeat, /*node=*/5);
  sim.schedule_at(300_ms, [inject] {
    inject->drop_next_delivery(fabric::MsgClass::Heartbeat, /*node=*/9,
                               /*count=*/2);
  });
  auto sink = std::make_shared<fabric::StructuredTraceSink>(sim);
  cluster.fabric().push(inject);
  cluster.fabric().push(sink);

  FaultyRun out;
  cluster.mm().set_failure_callback([&](int node, sim::SimTime when) {
    if (out.isolated.empty()) out.isolated_at_s = when.to_seconds();
    out.isolated.push_back(node);
  });

  // A gang-scheduled workload that outlives many strobes. 8 nodes per
  // gang, so when node 9's gang is killed and requeued it can re-place
  // on the surviving half of the machine.
  auto work = [](core::AppContext& ctx) -> sim::Task<> {
    co_await ctx.compute(2_sec);
  };
  cluster.submit(
      {.name = "gang-a", .binary_size = 1_MB, .npes = 16, .program = work});
  cluster.submit(
      {.name = "gang-b", .binary_size = 1_MB, .npes = 16, .program = work});
  cluster.run_until_all_complete(120_sec);
  sim.run(sim.now() + 200_ms);  // let the post-completion heartbeat settle

  out.completed = cluster.mm().completed_count();
  out.strobes_dropped = inject->dropped(fabric::MsgClass::Strobe);
  out.heartbeats_dropped = inject->dropped(fabric::MsgClass::Heartbeat);
  out.trace = sink->bytes();
  out.metrics = cluster.metrics();
  return out;
}

int part2_injected_faults() {
  std::printf(
      "\n=== fabric fault injection: drop strobes (p=0.01) and three "
      "heartbeats ===\n\n16 nodes, two 8-node 2 s gangs, 10 ms strobes, 50 ms "
      "heartbeat; one\nheartbeat delivery to node 5 is swallowed, then two in "
      "a row to node 9.\n\n");

  const FaultyRun a = run_injected_faults();
  const FaultyRun b = run_injected_faults();

  std::printf("strobe messages dropped ........ %lld\n",
              static_cast<long long>(a.strobes_dropped));
  std::printf("heartbeat deliveries dropped ... %lld\n",
              static_cast<long long>(a.heartbeats_dropped));
  if (a.isolated != std::vector<int>{9}) {
    std::fprintf(stderr, "FAIL: expected exactly node 9 isolated (saw %zu "
                         "isolations)\n", a.isolated.size());
    return 1;
  }
  std::printf(
      "detection: node 5's single lost epoch was forgiven (a loaded NM acks\n"
      "late), but two in a row are indistinguishable from death: the MM\n"
      "isolated node 9 at t=%.3f s, evicted it and requeued its gang.\n",
      a.isolated_at_s);
  if (a.completed != 2) {
    std::fprintf(stderr, "FAIL: %d/2 jobs completed under strobe loss\n",
                 a.completed);
    return 1;
  }
  std::printf(
      "recovery: both gangs completed despite %lld lost strobes and a false\n"
      "positive — node 9 was healthy, yet its gang simply re-placed on the\n"
      "survivors; each strobe names the absolute Ousterhout row, so one\n"
      "lost timeslot switch is repaired by the next multicast.\n",
      static_cast<long long>(a.strobes_dropped));

  const bool deterministic = a.trace == b.trace &&
                             a.isolated == b.isolated &&
                             a.strobes_dropped == b.strobes_dropped &&
                             a.metrics.to_json() == b.metrics.to_json();
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: same-seed runs diverged\n");
    return 1;
  }
  std::printf(
      "determinism: two same-seed runs produced byte-identical structured\n"
      "traces (%zu records, %zu bytes).\n",
      a.trace.size() / fabric::kTraceRecordBytes, a.trace.size());

  // The fabric's metrics aggregator saw the same faults from the other
  // side: its per-class drop counters must agree with the injector's.
  const auto* strobe_drops = a.metrics.find_counter("fabric.strobe.dropped");
  if (strobe_drops == nullptr ||
      strobe_drops->value() != a.strobes_dropped) {
    std::fprintf(stderr, "FAIL: aggregator drop count disagrees with "
                         "injector\n");
    return 1;
  }
  std::printf("\ntelemetry snapshot of run A (fabric aggregator + dæmons):\n\n");
  a.metrics.print();
  return 0;
}

int part3_recovery_walkthrough() {
  std::printf(
      "\n=== recovery lifecycle: crash -> kill -> requeue -> rejoin ===\n\n"
      "16 nodes, one 16-PE gang on nodes 0-3; node 2 dies at t=0.4 s and\n"
      "returns at t=1.4 s. Policy: kill-and-requeue (restart budget 3).\n\n");

  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);

  cluster.mm().set_failure_callback([&](int node, sim::SimTime when) {
    std::printf("[%8.3f s] heartbeat declares node %d dead; MM evicts it,\n"
                "             kills and requeues the gang spanning it\n",
                when.to_seconds(), node);
  });

  const core::JobId id = cluster.submit(
      {.name = "walk",
       .binary_size = 8_MB,
       .npes = 16,  // nodes 0-3
       .program = [](core::AppContext& ctx) -> sim::Task<> {
         co_await ctx.compute(1500_ms);
       }});

  // Narrate the job's state transitions as they happen.
  sim.spawn([](sim::Simulator& s, core::Cluster& cl,
               core::JobId job) -> sim::Task<> {
    std::string last;
    for (;;) {
      const core::Job& j = cl.job(job);
      const std::string st = core::to_string(j.state());
      if (st != last) {
        std::printf("[%8.3f s] job '%s' -> %-12s (nodes [%d,%d], "
                    "incarnation %d)\n",
                    s.now().to_seconds(), j.spec().name.c_str(), st.c_str(),
                    j.nodes().first, j.nodes().last(), j.incarnation());
        last = st;
        if (j.state() == core::JobState::Completed) co_return;
      }
      co_await s.delay(5_ms);
    }
  }(sim, cluster, id));

  sim.schedule_at(400_ms, [&] {
    std::printf("[%8.3f s] node 2 dies (gang 'walk' is running on it)\n",
                sim.now().to_seconds());
    cluster.crash_node(2);
  });
  sim.schedule_at(1400_ms, [&] {
    std::printf("[%8.3f s] node 2 comes back and re-registers\n",
                sim.now().to_seconds());
    cluster.recover_node(2);
  });

  cluster.run_until_all_complete(60_sec);
  sim.run(sim.now() + 200_ms);  // let the rejoin handshake settle

  const core::Job& j = cluster.job(id);
  if (j.state() != core::JobState::Completed || j.restarts() != 1) {
    std::fprintf(stderr, "FAIL: job state %s, restarts %d (want completed/1)\n",
                 core::to_string(j.state()).c_str(), j.restarts());
    return 1;
  }

  // The same story, told by the dæmons' telemetry.
  const telemetry::MetricsRegistry& m = cluster.metrics();
  auto counter = [&](const char* name) {
    const telemetry::Counter* c = m.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };
  std::printf("\n  %-34s %8s\n", "recovery telemetry", "value");
  std::printf("  %.44s\n", "--------------------------------------------");
  const char* names[] = {"mm.recovery.kills", "mm.recovery.requeues",
                         "mm.recovery.evictions", "mm.recovery.rejoins",
                         "nm.kills", "ft.aborts"};
  for (const char* name : names) {
    std::printf("  %-34s %8lld\n", name,
                static_cast<long long>(counter(name)));
  }
  if (const telemetry::Histogram* h =
          m.find_histogram("mm.recovery.requeue_to_run_ns");
      h != nullptr && h->count() > 0) {
    std::printf("  %-34s %6.1f ms\n", "kill -> replacement running",
                h->mean() * 1e-6);
  }
  if (counter("mm.recovery.rejoins") != 1) {
    std::fprintf(stderr, "FAIL: node 2 never re-registered\n");
    return 1;
  }
  std::printf(
      "\nThe replacement incarnation never touched node 2: the eviction\n"
      "removed it from every buddy tree, and the rejoin handshake seeded\n"
      "its heartbeat word so the next detection round does not re-declare\n"
      "it dead.\n");
  return 0;
}

}  // namespace

int main() {
  if (int rc = part1_hardware_failures(); rc != 0) return rc;
  if (int rc = part2_injected_faults(); rc != 0) return rc;
  return part3_recovery_walkthrough();
}
