// Fault detection via the STORM mechanisms (Section 4, "Generality of
// Mechanisms"): the MM multicasts a heartbeat with XFER-AND-SIGNAL
// each period and queries receipt with COMPARE-AND-WRITE; a node that
// misses the query is isolated node-by-node.
//
// This example kills two nodes at different times and reports the
// detection latency of each.
#include <cstdio>
#include <vector>

#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"

using namespace storm;
using namespace storm::sim::time_literals;

int main() {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(32);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;  // 50 ms heartbeat period
  core::Cluster cluster(sim, cfg);

  struct Detection {
    int node;
    double at_s;
  };
  std::vector<Detection> detections;
  cluster.mm().set_failure_callback([&](int node, sim::SimTime when) {
    detections.push_back({node, when.to_seconds()});
    std::printf("[%8.3f s] MM isolated failed node %d\n", when.to_seconds(),
                node);
  });

  std::printf("32-node cluster, 50 ms heartbeat; killing node 11 at t=1.017s "
              "and node 23 at t=2.519s\n\n");
  double killed_11 = 0, killed_23 = 0;
  sim.schedule_at(sim::SimTime::millis(1017), [&] {
    killed_11 = sim.now().to_seconds();
    std::printf("[%8.3f s] node 11 dies\n", killed_11);
    cluster.fail_node(11);
  });
  sim.schedule_at(sim::SimTime::millis(2519), [&] {
    killed_23 = sim.now().to_seconds();
    std::printf("[%8.3f s] node 23 dies\n", killed_23);
    cluster.fail_node(23);
  });

  sim.run(5_sec);

  std::printf("\n");
  if (detections.size() != 2) {
    std::fprintf(stderr, "expected 2 detections, saw %zu\n",
                 detections.size());
    return 1;
  }
  for (const auto& d : detections) {
    const double killed = d.node == 11 ? killed_11 : killed_23;
    std::printf("node %2d detected after %.0f ms\n", d.node,
                (d.at_s - killed) * 1e3);
  }
  std::printf(
      "\nDetection costs one COMPARE-AND-WRITE per period (~%.1f us on 32\n"
      "nodes) — cheap enough to run at every timeslice if desired.\n",
      cluster.mech().caw_latency(32).to_micros());
  return 0;
}
