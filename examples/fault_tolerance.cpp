// Fault detection via the STORM mechanisms (Section 4, "Generality of
// Mechanisms"): the MM multicasts a heartbeat with XFER-AND-SIGNAL
// each period and queries receipt with COMPARE-AND-WRITE; a node that
// misses the query is isolated node-by-node.
//
// Part 1 kills two nodes at different times and reports the detection
// latency of each.
//
// Part 2 uses the control-plane fabric's FaultInjector middleware
// instead of killing hardware: gang-scheduling strobes are dropped
// with probability 0.01, and one heartbeat delivery to a healthy node
// is swallowed. The lost heartbeat is *detected* (the one-shot
// detector isolates the node), the lost strobes are *recovered* (each
// strobe carries the absolute matrix row, so the next one resyncs and
// the jobs complete), and the whole faulty run is deterministic: two
// executions with the same seed produce byte-identical structured
// traces.
#include <cstdio>
#include <vector>

#include "fabric/fault_injector.hpp"
#include "fabric/trace_sink.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "telemetry/metrics.hpp"

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

namespace {

int part1_hardware_failures() {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(32);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;  // 50 ms heartbeat period
  core::Cluster cluster(sim, cfg);

  struct Detection {
    int node;
    double at_s;
  };
  std::vector<Detection> detections;
  cluster.mm().set_failure_callback([&](int node, sim::SimTime when) {
    detections.push_back({node, when.to_seconds()});
    std::printf("[%8.3f s] MM isolated failed node %d\n", when.to_seconds(),
                node);
  });

  std::printf("32-node cluster, 50 ms heartbeat; killing node 11 at t=1.017s "
              "and node 23 at t=2.519s\n\n");
  double killed_11 = 0, killed_23 = 0;
  sim.schedule_at(sim::SimTime::millis(1017), [&] {
    killed_11 = sim.now().to_seconds();
    std::printf("[%8.3f s] node 11 dies\n", killed_11);
    cluster.fail_node(11);
  });
  sim.schedule_at(sim::SimTime::millis(2519), [&] {
    killed_23 = sim.now().to_seconds();
    std::printf("[%8.3f s] node 23 dies\n", killed_23);
    cluster.fail_node(23);
  });

  sim.run(5_sec);

  std::printf("\n");
  if (detections.size() != 2) {
    std::fprintf(stderr, "expected 2 detections, saw %zu\n",
                 detections.size());
    return 1;
  }
  for (const auto& d : detections) {
    const double killed = d.node == 11 ? killed_11 : killed_23;
    std::printf("node %2d detected after %.0f ms\n", d.node,
                (d.at_s - killed) * 1e3);
  }
  std::printf(
      "\nDetection costs one COMPARE-AND-WRITE per period (~%.1f us on 32\n"
      "nodes) — cheap enough to run at every timeslice if desired.\n",
      cluster.mech().caw_latency(32).to_micros());
  return 0;
}

struct FaultyRun {
  std::vector<int> isolated;           // nodes the MM isolated, in order
  double isolated_at_s = 0;            // first isolation time
  int completed = 0;                   // jobs that finished
  std::int64_t strobes_dropped = 0;    // injected strobe losses
  std::int64_t heartbeats_dropped = 0;
  std::vector<std::uint8_t> trace;     // serialised structured trace
  telemetry::MetricsRegistry metrics;  // fabric aggregator snapshot
};

FaultyRun run_injected_faults() {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();

  // Middleware chain: inject faults, then record everything.
  auto inject =
      std::make_shared<fabric::FaultInjector>(sim.rng().fork(0xFAB51C));
  inject->policy(fabric::MsgClass::Strobe).drop_prob = 0.01;
  inject->drop_next_delivery(fabric::MsgClass::Heartbeat, /*node=*/9);
  auto sink = std::make_shared<fabric::StructuredTraceSink>(sim);
  cluster.fabric().push(inject);
  cluster.fabric().push(sink);

  FaultyRun out;
  cluster.mm().set_failure_callback([&](int node, sim::SimTime when) {
    if (out.isolated.empty()) out.isolated_at_s = when.to_seconds();
    out.isolated.push_back(node);
  });

  // A gang-scheduled workload that outlives many strobes.
  auto work = [](core::AppContext& ctx) -> sim::Task<> {
    co_await ctx.compute(2_sec);
  };
  cluster.submit(
      {.name = "gang-a", .binary_size = 1_MB, .npes = 32, .program = work});
  cluster.submit(
      {.name = "gang-b", .binary_size = 1_MB, .npes = 32, .program = work});
  cluster.run_until_all_complete(120_sec);
  sim.run(sim.now() + 200_ms);  // let the post-completion heartbeat settle

  out.completed = cluster.mm().completed_count();
  out.strobes_dropped = inject->dropped(fabric::MsgClass::Strobe);
  out.heartbeats_dropped = inject->dropped(fabric::MsgClass::Heartbeat);
  out.trace = sink->bytes();
  out.metrics = cluster.metrics();
  return out;
}

int part2_injected_faults() {
  std::printf(
      "\n=== fabric fault injection: drop strobes (p=0.01) and one "
      "heartbeat ===\n\n16 nodes, two 2 s gang jobs (MPL 2), 10 ms strobes, "
      "50 ms heartbeat;\nheartbeat delivery to node 9 is swallowed once.\n\n");

  const FaultyRun a = run_injected_faults();
  const FaultyRun b = run_injected_faults();

  std::printf("strobe messages dropped ........ %lld\n",
              static_cast<long long>(a.strobes_dropped));
  std::printf("heartbeat deliveries dropped ... %lld\n",
              static_cast<long long>(a.heartbeats_dropped));
  if (a.isolated.empty()) {
    std::fprintf(stderr, "FAIL: lost heartbeat was not detected\n");
    return 1;
  }
  std::printf(
      "detection: MM isolated node %d at t=%.3f s after its heartbeat was\n"
      "dropped — the paper's one-shot detector cannot tell a lost epoch\n"
      "from a dead node, exactly as designed.\n",
      a.isolated.front(), a.isolated_at_s);
  if (a.completed != 2) {
    std::fprintf(stderr, "FAIL: %d/2 jobs completed under strobe loss\n",
                 a.completed);
    return 1;
  }
  std::printf(
      "recovery: both gang jobs completed despite %lld lost strobes — each\n"
      "strobe names the absolute Ousterhout row, so one lost timeslot\n"
      "switch is repaired by the next multicast.\n",
      static_cast<long long>(a.strobes_dropped));

  const bool deterministic = a.trace == b.trace &&
                             a.isolated == b.isolated &&
                             a.strobes_dropped == b.strobes_dropped &&
                             a.metrics.to_json() == b.metrics.to_json();
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: same-seed runs diverged\n");
    return 1;
  }
  std::printf(
      "determinism: two same-seed runs produced byte-identical structured\n"
      "traces (%zu records, %zu bytes).\n",
      a.trace.size() / fabric::kTraceRecordBytes, a.trace.size());

  // The fabric's metrics aggregator saw the same faults from the other
  // side: its per-class drop counters must agree with the injector's.
  const auto* strobe_drops = a.metrics.find_counter("fabric.strobe.dropped");
  if (strobe_drops == nullptr ||
      strobe_drops->value() != a.strobes_dropped) {
    std::fprintf(stderr, "FAIL: aggregator drop count disagrees with "
                         "injector\n");
    return 1;
  }
  std::printf("\ntelemetry snapshot of run A (fabric aggregator + dæmons):\n\n");
  a.metrics.print();
  return 0;
}

}  // namespace

int main() {
  if (int rc = part1_hardware_failures(); rc != 0) return rc;
  return part2_injected_faults();
}
