// Interactive cluster: the paper's motivating scenario (Table 1) — a
// long-running parallel batch job sharing the machine with short
// interactive jobs, made possible by millisecond gang-scheduling
// quanta.
//
// A SWEEP3D-like production run owns row 0 of the Ousterhout matrix;
// short interactive jobs arrive every ~2 s and are gang-scheduled into
// row 1. With a 5 ms quantum they come back at human-interaction
// latency; with a SCore-D-scale 10 s quantum they feel like batch.
#include <cstdio>
#include <vector>

#include "apps/sweep3d.hpp"
#include "apps/synthetic.hpp"
#include "sim/stats.hpp"
#include "storm/cluster.hpp"

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

namespace {

struct RunResult {
  double mean_response_s = 0;
  double batch_runtime_s = 0;
};

RunResult run(sim::SimTime quantum) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = quantum;
  cfg.storm.max_mpl = 2;
  core::Cluster cluster(sim, cfg);

  apps::Sweep3DParams sweep;
  sweep.target_runtime = 20_sec;
  const core::JobId batch = cluster.submit({.name = "sweep3d-production",
                                            .binary_size = 12_MB,
                                            .npes = 32,
                                            .program = apps::sweep3d(sweep)});

  // Interactive jobs: 300 ms of computation on 8 PEs, one every 2 s.
  std::vector<core::JobId> interactive;
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(sim::SimTime::seconds(1.0 + 2.0 * i), [&cluster, i] {
      (void)cluster.submit({.name = "interactive-" + std::to_string(i),
                            .binary_size = 2_MB,
                            .npes = 8,
                            .program = apps::synthetic_computation(
                                sim::SimTime::millis(300))});
    });
  }
  // ids 1..8 are the interactive jobs (submitted in order).
  if (!cluster.run_until_all_complete(3600_sec)) return {};

  RunResult r;
  sim::Accumulator resp;
  for (core::JobId id = 1; id <= 8; ++id) {
    resp.add(cluster.job(id).times().turnaround().to_seconds());
  }
  r.mean_response_s = resp.mean();
  r.batch_runtime_s = (cluster.job(batch).times().finished -
                       cluster.job(batch).times().launch_issued)
                          .to_seconds();
  return r;
}

}  // namespace

int main() {
  std::printf("interactive + batch workload on 16 nodes / 32 PEs, MPL 2\n");
  std::printf("8 interactive jobs (300 ms work each) against a 20 s "
              "SWEEP3D run\n\n");
  std::printf("%14s %22s %22s\n", "quantum", "mean response (s)",
              "batch runtime (s)");
  for (double q_ms : {5.0, 50.0, 1000.0, 10000.0}) {
    const RunResult r = run(sim::SimTime::millis(q_ms));
    std::printf("%11.0f ms %22.3f %22.2f\n", q_ms, r.mean_response_s,
                r.batch_runtime_s);
  }
  std::printf(
      "\nSmall quanta keep interactive response near the job's own runtime\n"
      "while the production job loses almost nothing — the capability the\n"
      "paper argues conventional gang schedulers (second-scale quanta)\n"
      "cannot provide.\n");
  return 0;
}
