// Quickstart: build the paper's 64-node ES40/QsNET cluster, launch a
// 12 MB job on all 256 processors, and print the launch breakdown —
// the experiment behind the paper's headline "110 ms" number.
//
//   $ ./examples/quickstart            # the headline experiment
//   $ ./examples/quickstart --trace    # with a dæmon-level timeline
#include <cstdio>
#include <cstring>

#include "sim/trace.hpp"
#include "storm/cluster.hpp"

using namespace storm;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      sim::Tracer::instance().enable("mm");
      sim::Tracer::instance().enable("nm");
    }
  }
  sim::Simulator sim;

  // The paper's testbed: 64 AlphaServer ES40 nodes (4 CPUs each),
  // QsNET fabric, 1 ms management timeslice for launch experiments.
  core::ClusterConfig cfg = core::ClusterConfig::es40(64);
  cfg.storm.quantum = 1_ms;
  core::Cluster cluster(sim, cfg);

  std::printf("cluster: %d nodes x %d CPUs, QsNET cable %.0f m\n",
              cfg.nodes, cfg.cpus_per_node, cluster.network().cable_length_m());

  // A do-nothing 12 MB binary on every processor.
  const core::JobId id = cluster.submit({
      .name = "hello",
      .binary_size = 12_MB,
      .npes = 256,
  });

  if (!cluster.run_until_all_complete(60_sec)) {
    std::fprintf(stderr, "job did not complete\n");
    return 1;
  }

  const auto& t = cluster.job(id).times();
  std::printf("\njob '%s' (%d PEs, 12 MB binary)\n",
              cluster.job(id).spec().name.c_str(), 256);
  std::printf("  transfer (read+broadcast+write): %8.2f ms\n",
              t.send_time().to_millis());
  std::printf("  execute (fork..exit observed):   %8.2f ms\n",
              t.execute_time().to_millis());
  std::printf("  total launch:                    %8.2f ms\n",
              t.launch_time().to_millis());
  std::printf("\n(paper, Section 3.1.1: ~96 ms transfer, ~110 ms total)\n");

  std::printf("\nfabric traffic: %.1f MB broadcast, %.1f KB point-to-point\n",
              cluster.network().bytes_broadcast() / 1e6,
              cluster.network().bytes_put() / 1e3);
  return 0;
}
