#!/usr/bin/env python3
"""Gate engine-microbenchmark medians against checked-in floors.

Reads a google-benchmark JSON report (BENCH_engine.json, produced with
--benchmark_repetitions so median aggregates exist; falls back to the
plain per-benchmark times otherwise) and bench/floors.json, then:

  1. Rescales every baseline by how the calibration benchmark moved on
     this machine (a uniformly slower CI runner shifts everything,
     including the calibration; a genuine regression does not), and
     fails any benchmark more than `max_regression` over its rescaled
     baseline.
  2. Asserts the machine-independent `min_speedup` ratios between
     paired runs — the batched periodic paths (DESIGN 2.3) must stay
     ahead of the per-node event paths they replaced.

Usage:
  scripts/check_bench_floors.py BENCH_engine.json [--floors bench/floors.json]
  scripts/check_bench_floors.py BENCH_engine.json --rebase   # rewrite baselines

Exit code 0 when every gate passes, 1 otherwise.
"""

import argparse
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_medians(report_path):
    with open(report_path) as f:
        report = json.load(f)
    medians = {}
    plain = {}
    for b in report.get("benchmarks", []):
        ns = b["real_time"] * UNIT_NS[b.get("time_unit", "ns")]
        if b.get("aggregate_name") == "median":
            medians[b["run_name"]] = ns
        elif "aggregate_name" not in b:
            plain.setdefault(b.get("run_name", b["name"]), ns)
    return medians if medians else plain


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report", help="google-benchmark JSON (BENCH_engine.json)")
    ap.add_argument("--floors", default="bench/floors.json")
    ap.add_argument("--rebase", action="store_true",
                    help="rewrite baselines_ns from this report and exit")
    args = ap.parse_args()

    with open(args.floors) as f:
        floors = json.load(f)
    medians = load_medians(args.report)
    if not medians:
        print("check_bench_floors: no benchmark entries in report")
        return 1

    if args.rebase:
        floors["baselines_ns"] = {
            name: round(ns) for name, ns in sorted(medians.items())
        }
        with open(args.floors, "w") as f:
            json.dump(floors, f, indent=2)
            f.write("\n")
        print(f"rebased {len(medians)} baselines into {args.floors}")
        return 0

    failures = []
    baselines = floors["baselines_ns"]
    cal = floors["calibration"]
    if cal not in medians or cal not in baselines:
        print(f"check_bench_floors: calibration benchmark {cal!r} missing")
        return 1
    scale = medians[cal] / baselines[cal]
    tol = 1.0 + floors["max_regression"]
    print(f"machine scale vs baseline: {scale:.2f}x "
          f"(calibration {cal}), regression tolerance {tol:.2f}x")

    for name, base_ns in baselines.items():
        got = medians.get(name)
        if got is None:
            failures.append(f"MISSING  {name}: not in report")
            continue
        limit = base_ns * scale * tol
        verdict = "ok" if got <= limit else "REGRESSED"
        print(f"{verdict:>9}  {name}: {got:,.0f} ns "
              f"(limit {limit:,.0f} ns, baseline {base_ns:,} ns)")
        if got > limit:
            failures.append(
                f"REGRESSED {name}: median {got:,.0f} ns > "
                f"{limit:,.0f} ns (baseline {base_ns:,} ns x "
                f"scale {scale:.2f} x tolerance {tol:.2f})")

    for pair in floors.get("min_speedup", []):
        fast, slow = medians.get(pair["fast"]), medians.get(pair["slow"])
        if fast is None or slow is None:
            failures.append(f"MISSING  speedup pair {pair['fast']} / "
                            f"{pair['slow']}: not in report")
            continue
        ratio = slow / fast
        verdict = "ok" if ratio >= pair["ratio"] else "TOO SLOW"
        print(f"{verdict:>9}  {pair['fast']} vs {pair['slow']}: "
              f"{ratio:.2f}x (floor {pair['ratio']:.2f}x)")
        if ratio < pair["ratio"]:
            failures.append(
                f"TOO SLOW  {pair['fast']}: only {ratio:.2f}x faster than "
                f"{pair['slow']} (floor {pair['ratio']:.2f}x)")

    if failures:
        print(f"\ncheck_bench_floors: {len(failures)} gate(s) failed:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\ncheck_bench_floors: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
