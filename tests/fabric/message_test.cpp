// Round-trip and compactness tests for the typed control-plane
// messages.
#include "fabric/message.hpp"

#include <gtest/gtest.h>

namespace storm::fabric {
namespace {

TEST(ControlMessage, StrobeRoundTrip) {
  const ControlMessage m = ControlMessage::strobe(3);
  ControlMessage::WireImage w;
  const std::size_t n = m.encode(w);
  EXPECT_EQ(n, ControlMessage::wire_size(MsgClass::Strobe));
  const ControlMessage d = ControlMessage::decode(w.data(), n);
  EXPECT_EQ(d.cls, MsgClass::Strobe);
  EXPECT_EQ(d.u.strobe.row, 3);
}

TEST(ControlMessage, HeartbeatRoundTripLargeEpoch) {
  const std::int64_t epoch = 0x1234'5678'9ABCLL;
  const ControlMessage m = ControlMessage::heartbeat(epoch);
  ControlMessage::WireImage w;
  const std::size_t n = m.encode(w);
  const ControlMessage d = ControlMessage::decode(w.data(), n);
  EXPECT_EQ(d.cls, MsgClass::Heartbeat);
  EXPECT_EQ(d.u.heartbeat.epoch, epoch);
}

TEST(ControlMessage, PrepareTransferRoundTrip) {
  const ControlMessage m =
      ControlMessage::prepare_transfer(7, 24, 512 * 1024);
  ControlMessage::WireImage w;
  const std::size_t n = m.encode(w);
  const ControlMessage d = ControlMessage::decode(w.data(), n);
  EXPECT_EQ(d.cls, MsgClass::PrepareTransfer);
  EXPECT_EQ(d.u.prepare.job, 7);
  EXPECT_EQ(d.u.prepare.chunks, 24);
  EXPECT_EQ(d.u.prepare.chunk_bytes, 512 * 1024);
}

TEST(ControlMessage, LaunchChunkRoundTrip) {
  const ControlMessage m = ControlMessage::launch_chunk(2, 13, 1 << 20);
  ControlMessage::WireImage w;
  const std::size_t n = m.encode(w);
  const ControlMessage d = ControlMessage::decode(w.data(), n);
  EXPECT_EQ(d.cls, MsgClass::LaunchChunk);
  EXPECT_EQ(d.u.chunk.job, 2);
  EXPECT_EQ(d.u.chunk.index, 13);
  EXPECT_EQ(d.u.chunk.bytes, 1 << 20);
}

TEST(ControlMessage, ReplRoundTrip) {
  const ControlMessage m =
      ControlMessage::repl(0x0102'0304, 7, 42, 0x0A0B'0C0D,
                           0x1122'3344'5566'7788LL);
  ControlMessage::WireImage w;
  const std::size_t n = m.encode(w);
  EXPECT_EQ(n, ControlMessage::wire_size(MsgClass::Repl));
  const ControlMessage d = ControlMessage::decode(w.data(), n);
  EXPECT_EQ(d.cls, MsgClass::Repl);
  EXPECT_EQ(d.u.repl.verb_from, 0x0102'0304);
  EXPECT_EQ(d.u.repl.term, 7);
  EXPECT_EQ(d.u.repl.index, 42);
  EXPECT_EQ(d.u.repl.kind_job, 0x0A0B'0C0D);
  EXPECT_EQ(d.u.repl.args, 0x1122'3344'5566'7788LL);
}

TEST(ControlMessage, EveryClassRoundTripsItsTag) {
  const ControlMessage msgs[] = {
      ControlMessage::generic(),
      ControlMessage::strobe(1),
      ControlMessage::heartbeat(2),
      ControlMessage::prepare_transfer(3, 4, 5),
      ControlMessage::launch(6),
      ControlMessage::launch_chunk(7, 8, 9),
      ControlMessage::flow_credit(10, 11),
      ControlMessage::launch_report(12),
      ControlMessage::termination_report(13),
      ControlMessage::kill(14, 1),
      ControlMessage::fault(15, 16),
      ControlMessage::repl(17, 18, 19, 20, 21),
  };
  ASSERT_EQ(std::size(msgs), static_cast<std::size_t>(kMsgClassCount));
  for (const auto& m : msgs) {
    ControlMessage::WireImage w;
    const std::size_t n = m.encode(w);
    EXPECT_LE(n, ControlMessage::kMaxWireBytes);
    const ControlMessage d = ControlMessage::decode(w.data(), n);
    EXPECT_EQ(d.cls, m.cls);
    EXPECT_EQ(d.word_a(), m.word_a());
    EXPECT_EQ(d.word_b(), m.word_b());
  }
}

TEST(ControlMessage, CompactEncoding) {
  // A strobe is one tag byte plus one 32-bit row — not a padded union.
  EXPECT_EQ(ControlMessage::wire_size(MsgClass::Strobe), 5u);
  EXPECT_EQ(ControlMessage::wire_size(MsgClass::Generic), 1u);
  EXPECT_EQ(ControlMessage::wire_size(MsgClass::PrepareTransfer), 21u);
  EXPECT_EQ(ControlMessage::wire_size(MsgClass::Kill), 9u);
  // The in-memory representation stays small too.
  EXPECT_LE(sizeof(ControlMessage), 32u);
}

TEST(ControlMessage, TraceWords) {
  EXPECT_EQ(ControlMessage::strobe(4).word_a(), 4);
  EXPECT_EQ(ControlMessage::heartbeat(99).word_a(), 99);
  EXPECT_EQ(ControlMessage::launch_chunk(5, 17, 1024).word_a(), 5);
  EXPECT_EQ(ControlMessage::launch_chunk(5, 17, 1024).word_b(), 17);
  EXPECT_EQ(ControlMessage::flow_credit(5, 8).word_b(), 8);
}

TEST(ControlMessage, ClassNames) {
  for (int c = 0; c < kMsgClassCount; ++c) {
    EXPECT_NE(to_string(static_cast<MsgClass>(c)), "?");
  }
}

}  // namespace
}  // namespace storm::fabric
