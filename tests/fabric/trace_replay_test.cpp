// TraceReplayer: parsing a recorded sink byte stream, rebuilding the
// fault schedule from its Fault notes, and replaying a faulty run to a
// byte-identical sink stream without the original fault injector.
#include "fabric/trace_replay.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/fault_campaign.hpp"
#include "fabric/fault_injector.hpp"
#include "fabric/trace_sink.hpp"
#include "storm/cluster.hpp"

namespace storm::fabric {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::JobId;
using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

core::AppProgram compute_program(SimTime work) {
  return
      [work](core::AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

TEST(TraceReplayer, FromBytesRoundTripsEveryRecordField) {
  sim::Simulator sim(1);
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.storm.quantum = 5_ms;
  Cluster cluster(sim, cfg);
  auto sink = std::make_shared<StructuredTraceSink>(sim);
  cluster.fabric().push(sink);
  cluster.submit({.binary_size = 1_MB, .npes = 8});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));

  const auto& recs = sink->records();
  ASSERT_FALSE(recs.empty());
  const TraceReplayer replayer = TraceReplayer::from_bytes(sink->bytes());
  ASSERT_EQ(replayer.records().size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const TraceRecord& a = recs[i];
    const TraceRecord& b = replayer.records()[i];
    EXPECT_EQ(a.t_ns, b.t_ns);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.component, b.component);
    EXPECT_EQ(a.flags, b.flags);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst_first, b.dst_first);
    EXPECT_EQ(a.dst_count, b.dst_count);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
  }
  // Trailing garbage smaller than one record is ignored.
  auto bytes = sink->bytes();
  bytes.resize(bytes.size() + kTraceRecordBytes / 2, 0xEE);
  EXPECT_EQ(TraceReplayer::from_bytes(bytes).records().size(), recs.size());
}

TEST(TraceReplayer, CampaignRebuildsFromFaultNotes) {
  // An armed campaign announces itself in the structured trace; the
  // replayer must reconstruct the exact schedule from the notes alone.
  sim::Simulator sim(2);
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  Cluster cluster(sim, cfg);
  auto sink = std::make_shared<StructuredTraceSink>(sim);
  cluster.fabric().push(sink);

  FaultCampaign campaign;
  campaign.crash_node(3, 40_ms);
  campaign.recover_node(3, 900_ms);
  CampaignHooks hooks;
  hooks.crash_node = [&](int n) { cluster.crash_node(n); };
  hooks.recover_node = [&](int n) { cluster.recover_node(n); };
  campaign.arm(sim, &cluster.fabric(), std::move(hooks));

  // The workload outlasts the schedule so both notes land in the sink.
  cluster.submit(
      {.binary_size = 2_MB, .npes = 16, .program = compute_program(1200_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(120_sec));

  const TraceReplayer replayer = TraceReplayer::from_bytes(sink->bytes());
  FaultCampaign rebuilt = replayer.campaign();
  const auto& ev = rebuilt.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, FaultCampaign::EventKind::CrashNode);
  EXPECT_EQ(ev[0].node, 3);
  EXPECT_EQ(ev[0].at, 40_ms);
  EXPECT_EQ(ev[1].kind, FaultCampaign::EventKind::RecoverNode);
  EXPECT_EQ(ev[1].node, 3);
  EXPECT_EQ(ev[1].at, 900_ms);
}

TEST(TraceReplayer, ReplaysDropDecisionsWithoutTheInjector) {
  // Record a run whose strobe losses come from a seeded FaultInjector;
  // replay it with ReplayDrops alone. The drops land at the same
  // positions, so the replay's sink stream is byte-identical.
  std::vector<std::uint8_t> recorded;
  std::int64_t dropped = 0;
  {
    sim::Simulator sim(3);
    auto inject = std::make_shared<FaultInjector>(sim.rng().fork(0xD0));
    inject->policy(MsgClass::Strobe).drop_prob = 0.05;
    auto sink = std::make_shared<StructuredTraceSink>(sim);
    ClusterConfig cfg = ClusterConfig::es40(8);
    cfg.app_cpus_per_node = 2;
    cfg.storm.quantum = 10_ms;
    Cluster cluster(sim, cfg);
    cluster.fabric().push(inject);
    cluster.fabric().push(sink);
    cluster.submit(
        {.binary_size = 1_MB, .npes = 16, .program = compute_program(400_ms)});
    ASSERT_TRUE(cluster.run_until_all_complete(120_sec));
    dropped = inject->total_dropped();
    recorded = sink->bytes();
  }
  ASSERT_GT(dropped, 0) << "fault load never materialised";
  ASSERT_FALSE(recorded.empty());

  const TraceReplayer replayer = TraceReplayer::from_bytes(recorded);
  sim::Simulator sim(3);
  // The recording forked the injector's rng off the master stream;
  // the replay must mirror every master-stream draw to stay on the
  // recording's timeline, so fork (and discard) the same stream.
  [[maybe_unused]] const sim::Rng mirror = sim.rng().fork(0xD0);
  const std::shared_ptr<ReplayDrops> drops = replayer.middleware();
  auto sink = std::make_shared<StructuredTraceSink>(sim);
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 10_ms;
  Cluster cluster(sim, cfg);
  cluster.fabric().push(drops);
  cluster.fabric().push(sink);
  cluster.submit(
      {.binary_size = 1_MB, .npes = 16, .program = compute_program(400_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(120_sec));

  EXPECT_EQ(drops->mismatches(), 0u);
  EXPECT_EQ(drops->position(), replayer.records().size());
  EXPECT_EQ(sink->bytes(), recorded);
}

TEST(TraceReplayer, MismatchedReplayIsCountedNotDropped) {
  // Feed a recording of one workload into a replay of a different one:
  // the replayer must flag the divergence instead of corrupting the
  // run with misapplied drops.
  std::vector<std::uint8_t> recorded;
  {
    sim::Simulator sim(4);
    ClusterConfig cfg = ClusterConfig::es40(4);
    cfg.storm.quantum = 5_ms;
    Cluster cluster(sim, cfg);
    auto sink = std::make_shared<StructuredTraceSink>(sim);
    cluster.fabric().push(sink);
    cluster.submit({.binary_size = 2_MB, .npes = 8});
    ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
    recorded = sink->bytes();
  }

  const TraceReplayer replayer = TraceReplayer::from_bytes(recorded);
  sim::Simulator sim(4);
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.storm.quantum = 5_ms;
  Cluster cluster(sim, cfg);
  const std::shared_ptr<ReplayDrops> drops = replayer.middleware();
  cluster.fabric().push(drops);
  cluster.submit({.binary_size = 1_MB, .npes = 4});  // different workload
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  EXPECT_GT(drops->mismatches(), 0u);
}

}  // namespace
}  // namespace storm::fabric
