// Tests for the recovery-oriented fabric middleware — ReorderBuffer,
// node-scoped FaultInjector silence, PartitionSimulator — and the
// deterministic fault-campaign harness that drives them.
#include "fabric/fault_campaign.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fabric/fault_injector.hpp"
#include "fabric/partition_simulator.hpp"
#include "fabric/reorder_buffer.hpp"
#include "fabric/trace_sink.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"

namespace storm::fabric {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::JobId;
using core::JobState;
using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

core::AppProgram compute_program(SimTime work) {
  return
      [work](core::AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

ClusterConfig hb_config(int nodes) {
  ClusterConfig cfg = ClusterConfig::es40(nodes);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  return cfg;
}

// --- ReorderBuffer ---------------------------------------------------------

TEST(ReorderBuffer, CommandHandlingIsOrderInsensitive) {
  // Jitter every MM->NM delivery by up to 2 ms — strobes arrive out of
  // order between nodes and between consecutive commands to one node.
  // Strobes carry the absolute matrix row and heartbeat epochs are
  // monotonic, so the gang workload must still run to completion with
  // no node falsely declared dead.
  sim::Simulator sim;
  ClusterConfig cfg = hb_config(8);
  cfg.app_cpus_per_node = 2;
  Cluster cluster(sim, cfg);
  auto reorder = std::make_shared<ReorderBuffer>(sim.rng().fork(0x0DDE));
  reorder->set_window(2_ms);
  cluster.fabric().push(reorder);

  const JobId a = cluster.submit(
      {.binary_size = 1_MB, .npes = 16, .program = compute_program(500_ms)});
  const JobId b = cluster.submit(
      {.binary_size = 1_MB, .npes = 16, .program = compute_program(500_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(120_sec));
  EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
  EXPECT_EQ(cluster.job(b).state(), JobState::Completed);
  EXPECT_GT(reorder->perturbed(), 100);
  EXPECT_TRUE(cluster.mm().failed_nodes().empty())
      << "reordered deliveries must not look like node death";
}

TEST(ReorderBuffer, ClassFilterRestrictsJitter) {
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(4));
  auto reorder = std::make_shared<ReorderBuffer>(sim.rng().fork(0x0DDF));
  reorder->set_window(1_ms);
  for (int c = 0; c < kMsgClassCount; ++c) {
    reorder->enable_class(static_cast<MsgClass>(c), false);
  }
  cluster.fabric().push(reorder);
  sim.run(1_sec);
  EXPECT_EQ(reorder->perturbed(), 0);
}

// --- node-scoped FaultInjector silence ------------------------------------

TEST(FaultInjectorSilence, SilencedNodeIsDeclaredDead) {
  // The node's dæmons are alive, but the injector blacks out all its
  // traffic: detection must declare it dead just the same.
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(8));
  auto inject = std::make_shared<FaultInjector>(sim.rng().fork(0x51EE));
  cluster.fabric().push(inject);
  sim.run(300_ms);
  ASSERT_TRUE(cluster.mm().failed_nodes().empty());
  inject->silence_node(5);
  sim.run(2_sec);
  EXPECT_EQ(cluster.mm().failed_nodes(), std::vector<int>{5});
  EXPECT_GT(inject->silence_drops(), 0);
  EXPECT_TRUE(inject->silenced(5));
  EXPECT_FALSE(inject->silenced(4));
}

TEST(FaultInjectorSilence, UnsilenceStopsTheDrops) {
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(4));
  auto inject = std::make_shared<FaultInjector>(sim.rng().fork(0x51EF));
  cluster.fabric().push(inject);
  inject->silence_node(2);
  sim.run(1_sec);
  const std::int64_t during = inject->silence_drops();
  ASSERT_GT(during, 0);
  inject->unsilence_node(2);
  sim.run(2_sec);
  EXPECT_EQ(inject->silence_drops(), during);
}

// --- asymmetric (one-way) drops -------------------------------------------

TEST(FaultInjectorOneWay, CutsOnlyTheGivenDirection) {
  // MM (node 0) -> node 5 deliveries are dropped: node 5 stops hearing
  // heartbeats, its plane word stalls, and detection declares it dead.
  // Every other node keeps tracking the epoch — the cut is directional
  // and targeted, unlike silence_node.
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(8));
  auto inject = std::make_shared<FaultInjector>(sim.rng().fork(0xA51));
  cluster.fabric().push(inject);
  sim.run(300_ms);
  ASSERT_TRUE(cluster.mm().failed_nodes().empty());
  const int id = inject->add_one_way({0}, {5});
  EXPECT_TRUE(inject->one_way_enabled(id));
  sim.run(2_sec);
  EXPECT_EQ(cluster.mm().failed_nodes(), std::vector<int>{5});
  EXPECT_GT(inject->one_way_drops(), 0);

  // Disabling the rule stops the cut (campaigns window it this way).
  inject->set_one_way_enabled(id, false);
  const std::int64_t frozen = inject->one_way_drops();
  sim.run(1_sec);
  EXPECT_EQ(inject->one_way_drops(), frozen);
}

TEST(FaultInjectorOneWay, ClassFilterRestrictsTheCut) {
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(8));
  auto inject = std::make_shared<FaultInjector>(sim.rng().fork(0xA52));
  cluster.fabric().push(inject);
  // Cut only Strobe traffic toward node 5: heartbeats still flow, so
  // nothing is declared dead and (with no job strobing) nothing is
  // dropped at all.
  inject->add_one_way({0}, {5}, {MsgClass::Strobe});
  sim.run(2_sec);
  EXPECT_TRUE(cluster.mm().failed_nodes().empty());
  EXPECT_EQ(inject->one_way_drops(), 0);
}

TEST(FaultCampaign, AsymPartitionWindowsToggleTheInjector) {
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(8));
  FaultCampaign c;
  c.asym_partition({0}, {5}, 300_ms, 1500_ms);
  EXPECT_EQ(c.arm(sim, &cluster.fabric(), CampaignHooks{}), nullptr);
  auto inj = c.one_way_injector();
  ASSERT_NE(inj, nullptr);
  sim.run(200_ms);  // before the window opens
  EXPECT_EQ(inj->one_way_drops(), 0);
  sim.run(1_sec);  // inside the window
  EXPECT_GT(inj->one_way_drops(), 0);
  EXPECT_EQ(cluster.mm().failed_nodes(), std::vector<int>{5});
  sim.run(1_sec);  // past the end: the rule is disabled again
  const std::int64_t frozen = inj->one_way_drops();
  sim.run(1_sec);
  EXPECT_EQ(inj->one_way_drops(), frozen);
}

// --- PartitionSimulator ----------------------------------------------------

TEST(PartitionSimulator, IslandedNodesDeclaredDeadDuringWindow) {
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(16));
  auto ps = std::make_shared<PartitionSimulator>(sim);
  ps->partition({12, 13, 14, 15}, 300_ms, 1500_ms);
  cluster.fabric().push(ps);

  sim.run(200_ms);
  EXPECT_FALSE(ps->active());
  EXPECT_TRUE(cluster.mm().failed_nodes().empty());
  sim.run(1_sec);
  EXPECT_TRUE(ps->active());
  sim.run(3_sec);
  EXPECT_FALSE(ps->active());
  EXPECT_GT(ps->dropped(), 0);
  const std::vector<int> expect{12, 13, 14, 15};
  EXPECT_EQ(cluster.mm().failed_nodes(), expect);
}

TEST(PartitionSimulator, IntraIslandTrafficUnaffected) {
  // A window whose island is the whole machine cuts nothing: no
  // envelope crosses the boundary.
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(4));
  auto ps = std::make_shared<PartitionSimulator>(sim);
  ps->partition({0, 1, 2, 3}, 0_ms, 5_sec);
  cluster.fabric().push(ps);
  sim.run(2_sec);
  EXPECT_EQ(ps->dropped(), 0);
  EXPECT_TRUE(cluster.mm().failed_nodes().empty());
}

// --- FaultCampaign ---------------------------------------------------------

TEST(FaultCampaign, SeededScheduleIsDeterministic) {
  FaultCampaign::SeedSpec spec;
  spec.nodes = 32;
  spec.crashes = 5;
  spec.window_start = 100_ms;
  spec.window_end = 2_sec;
  spec.min_downtime = 200_ms;
  spec.max_downtime = 800_ms;
  spec.protect = {0, 31};

  // Same seed, same schedule (fork() advances its parent, so the test
  // seeds two identical streams directly).
  auto a = FaultCampaign::seeded(sim::Rng(0xCA4DULL), spec);
  auto b = FaultCampaign::seeded(sim::Rng(0xCA4DULL), spec);
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_EQ(a.events().size(), 10u);  // 5 crashes + 5 recoveries
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
  // A different seed gives a different schedule.
  auto c = FaultCampaign::seeded(sim::Rng(0xCA4EULL), spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    if (a.events()[i].at != c.events()[i].at ||
        a.events()[i].node != c.events()[i].node) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultCampaign, SeededScheduleRespectsSpec) {
  FaultCampaign::SeedSpec spec;
  spec.nodes = 16;
  spec.crashes = 4;
  spec.window_start = 500_ms;
  spec.window_end = 1500_ms;
  spec.min_downtime = 100_ms;
  spec.max_downtime = 300_ms;
  spec.protect = {0, 7};
  sim::Simulator sim(1ULL);
  auto c = FaultCampaign::seeded(sim.rng().fork(1), spec);
  std::vector<int> crashed;
  for (const auto& ev : c.events()) {
    if (ev.kind == FaultCampaign::EventKind::CrashNode) {
      EXPECT_GE(ev.at, 500_ms);
      EXPECT_LE(ev.at, 1500_ms);
      EXPECT_NE(ev.node, 0);
      EXPECT_NE(ev.node, 7);
      for (const int seen : crashed) EXPECT_NE(ev.node, seen);
      crashed.push_back(ev.node);
    }
  }
  EXPECT_EQ(crashed.size(), 4u);
}

TEST(FaultCampaign, ArmFiresHooksAtScheduledTimes) {
  sim::Simulator sim;
  FaultCampaign c;
  c.crash_node(3, 100_ms);
  c.recover_node(3, 400_ms);
  c.crash_primary_mm(250_ms);

  struct Fired {
    SimTime at;
    int node;  // -2 = mm crash
  };
  std::vector<Fired> fired;
  CampaignHooks hooks;
  hooks.crash_node = [&](int n) { fired.push_back({sim.now(), n}); };
  hooks.recover_node = [&](int n) { fired.push_back({sim.now(), n}); };
  hooks.crash_primary_mm = [&] { fired.push_back({sim.now(), -2}); };
  EXPECT_EQ(c.arm(sim, nullptr, hooks), nullptr);  // no partitions

  sim.run(1_sec);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].at, 100_ms);
  EXPECT_EQ(fired[0].node, 3);
  EXPECT_EQ(fired[1].at, 250_ms);
  EXPECT_EQ(fired[1].node, -2);
  EXPECT_EQ(fired[2].at, 400_ms);
  EXPECT_EQ(fired[2].node, 3);
}

TEST(FaultCampaign, ArmInstallsPartitionSimulator) {
  sim::Simulator sim;
  ClusterConfig cfg = hb_config(8);
  Cluster cluster(sim, cfg);
  FaultCampaign c;
  c.partition({6, 7}, 200_ms, 900_ms);
  auto ps = c.arm(sim, &cluster.fabric(), CampaignHooks{});
  ASSERT_NE(ps, nullptr);
  sim.run(2_sec);
  EXPECT_GT(ps->dropped(), 0);
  const std::vector<int> expect{6, 7};
  EXPECT_EQ(cluster.mm().failed_nodes(), expect);
}

// --- end-to-end determinism under a full campaign --------------------------

TEST(FaultCampaign, SameSeedCampaignRunIsByteIdentical) {
  // The acceptance bar for the whole recovery stack: a campaign that
  // crashes a worker node mid-run (with later recovery) and the
  // primary MM mid-run must complete every job, and two same-seed runs
  // must produce byte-identical structured traces.
  struct Result {
    std::vector<std::uint8_t> trace;
    std::vector<SimTime> finished;
    int completed = 0;
  };
  auto run = [] {
    sim::Simulator sim(0x57'04'2002ULL);
    ClusterConfig cfg = ClusterConfig::es40(8);
    cfg.storm.quantum = 10_ms;
    cfg.storm.heartbeat_enabled = true;
    cfg.storm.heartbeat_period_quanta = 5;
    cfg.storm.standby_mm_enabled = true;
    Cluster cluster(sim, cfg);
    auto sink = std::make_shared<StructuredTraceSink>(sim);
    cluster.fabric().push(sink);

    FaultCampaign campaign;
    campaign.crash_node(2, 400_ms);     // under job a's allocation
    campaign.recover_node(2, 1800_ms);  // comes back after the requeue
    campaign.crash_primary_mm(900_ms);
    CampaignHooks hooks;
    hooks.crash_node = [&](int n) { cluster.crash_node(n); };
    hooks.recover_node = [&](int n) { cluster.recover_node(n); };
    hooks.crash_primary_mm = [&] { cluster.crash_mm(); };
    campaign.arm(sim, &cluster.fabric(), std::move(hooks));

    const JobId a = cluster.submit(
        {.binary_size = 1_MB, .npes = 16, .program = compute_program(2_sec)});
    const JobId b = cluster.submit(
        {.binary_size = 1_MB, .npes = 8, .program = compute_program(1_sec)});
    EXPECT_TRUE(cluster.run_until_all_complete(600_sec));
    Result r;
    r.completed = cluster.mm().completed_count();
    r.finished = {cluster.job(a).times().finished,
                  cluster.job(b).times().finished};
    r.trace = sink->bytes();
    EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
    EXPECT_EQ(cluster.job(b).state(), JobState::Completed);
    return r;
  };

  const Result x = run();
  const Result y = run();
  EXPECT_EQ(x.completed, 2);
  EXPECT_EQ(x.finished, y.finished);
  ASSERT_FALSE(x.trace.empty());
  EXPECT_EQ(x.trace, y.trace);
}

}  // namespace
}  // namespace storm::fabric
