// MechanismFabric middleware-chain mechanics, exercised against a mock
// mech::Mechanisms so every inner call is observable.
#include "fabric/fabric.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "fabric/fault_injector.hpp"
#include "fabric/latency_perturber.hpp"
#include "fabric/trace_sink.hpp"
#include "sim/simulator.hpp"

namespace storm::fabric {
namespace {

using namespace storm::sim::time_literals;

/// Records every inner call; no simulation semantics.
class MockMechanisms final : public mech::Mechanisms {
 public:
  std::string name() const override { return "mock"; }
  int nodes() const override { return 8; }

  void xfer_and_signal(int src, net::NodeRange dsts, sim::Bytes bytes,
                       net::BufferPlace, net::EventAddr,
                       net::EventAddr) override {
    xfers.push_back({src, dsts.first, dsts.count, bytes});
  }
  bool test_event(int, net::EventAddr) override {
    ++test_events;
    return true;
  }
  sim::Task<> wait_event(int, net::EventAddr) override {
    ++wait_events;
    co_return;
  }
  sim::Task<bool> compare_and_write(int, net::NodeRange, net::GlobalAddr,
                                    net::Compare, std::int64_t, net::GlobalAddr,
                                    std::int64_t) override {
    ++caws;
    co_return caw_result;
  }
  void write_local(int, net::GlobalAddr, std::int64_t) override {
    ++write_locals;
  }
  std::int64_t read_local(int, net::GlobalAddr) const override { return 0; }
  void signal_local(int, net::EventAddr, int) override { ++signal_locals; }
  sim::SimTime caw_latency(int) const override { return 1_us; }
  sim::Bandwidth xfer_aggregate_bandwidth(int) const override {
    return sim::Bandwidth::mb_per_s(100);
  }

  struct Xfer {
    int src;
    int dst_first;
    int dst_count;
    sim::Bytes bytes;
  };
  std::vector<Xfer> xfers;
  int test_events = 0;
  int wait_events = 0;
  int caws = 0;
  int write_locals = 0;
  int signal_locals = 0;
  bool caw_result = true;
};

/// Middleware scripted per test: applies a fixed Action to matching
/// envelopes and logs everything it sees.
class Scripted final : public Middleware {
 public:
  std::string_view name() const override { return "scripted"; }

  void apply(const Envelope& e, Action& a) override {
    seen.push_back(e);
    if (!matches(e)) return;
    if (drop) a.drop = true;
    a.duplicates += duplicates;
    a.delay += delay;
  }
  void observe(const Envelope& e, const Action& a) override {
    observed.push_back({e, a});
  }

  bool matches(const Envelope& e) const {
    if (match_op && e.op != *match_op) return false;
    if (match_node >= 0 && e.dsts.first != match_node) return false;
    return true;
  }

  // script
  std::optional<OpKind> match_op;
  int match_node = -1;
  bool drop = false;
  int duplicates = 0;
  sim::SimTime delay{};

  // log
  std::vector<Envelope> seen;
  std::vector<std::pair<Envelope, Action>> observed;
};

struct FabricFixture {
  sim::Simulator sim;
  MockMechanisms mock;
  MechanismFabric fab{sim, mock};
};

TEST(MechanismFabric, EmptyChainPassesThrough) {
  FabricFixture f;
  EXPECT_TRUE(f.fab.chain_empty());
  EXPECT_EQ(f.fab.name(), "fabric(mock)");
  EXPECT_EQ(f.fab.nodes(), 8);

  f.fab.xfer_and_signal(0, net::NodeRange{1, 4}, 64, net::BufferPlace::NicMemory,
                        mech::kNoEvent, mech::kNoEvent);
  ASSERT_EQ(f.mock.xfers.size(), 1u);
  EXPECT_EQ(f.mock.xfers[0].dst_count, 4);

  f.fab.write_local(2, 0, 7);
  EXPECT_EQ(f.mock.write_locals, 1);
  EXPECT_TRUE(f.fab.test_event(2, 0));

  bool result = false;
  auto probe = [&]() -> sim::Task<> {
    result = co_await f.fab.compare_and_write(0, net::NodeRange{0, 8}, 0,
                                              net::Compare::GE, 1,
                                              mech::kNoWrite, 0);
  };
  f.sim.spawn(probe());
  f.sim.run();
  EXPECT_TRUE(result);
  EXPECT_EQ(f.mock.caws, 1);
}

TEST(MechanismFabric, DropSuppressesXfer) {
  FabricFixture f;
  auto mw = std::make_shared<Scripted>();
  mw->match_op = OpKind::Xfer;
  mw->drop = true;
  f.fab.push(mw);

  f.fab.xfer_and_signal(Component::MM, ControlMessage::strobe(1), 0,
                        net::NodeRange{0, 8}, 64, net::BufferPlace::NicMemory,
                        1, mech::kNoEvent);
  EXPECT_TRUE(f.mock.xfers.empty());
  ASSERT_EQ(mw->observed.size(), 1u);
  EXPECT_TRUE(mw->observed[0].second.drop);
  EXPECT_EQ(mw->observed[0].first.cls(), MsgClass::Strobe);
}

TEST(MechanismFabric, DroppedCawReadsConditionNotMet) {
  FabricFixture f;
  f.mock.caw_result = true;  // the wire would say yes…
  auto mw = std::make_shared<Scripted>();
  mw->match_op = OpKind::CompareAndWrite;
  mw->drop = true;
  f.fab.push(mw);

  bool result = true;
  auto probe = [&]() -> sim::Task<> {
    result = co_await f.fab.compare_and_write(
        Component::MM, ControlMessage::heartbeat(3), 0, net::NodeRange{0, 8}, 0,
        net::Compare::GE, 1, mech::kNoWrite, 0);
  };
  f.sim.spawn(probe());
  f.sim.run();
  EXPECT_FALSE(result);        // …but the lost query reads as "not met"
  EXPECT_EQ(f.mock.caws, 0);   // and never reaches the network
}

TEST(MechanismFabric, DelayDefersXferBySimTime) {
  FabricFixture f;
  auto mw = std::make_shared<Scripted>();
  mw->match_op = OpKind::Xfer;
  mw->delay = 5_us;
  f.fab.push(mw);

  f.fab.xfer_and_signal(Component::MM, ControlMessage::strobe(0), 0,
                        net::NodeRange{0, 8}, 64, net::BufferPlace::NicMemory,
                        1, mech::kNoEvent);
  EXPECT_TRUE(f.mock.xfers.empty());  // not issued yet
  f.sim.run();
  EXPECT_EQ(f.mock.xfers.size(), 1u);
  EXPECT_EQ(f.sim.now(), sim::SimTime::micros(5));
}

TEST(MechanismFabric, DuplicateRepeatsXfer) {
  FabricFixture f;
  auto mw = std::make_shared<Scripted>();
  mw->match_op = OpKind::Xfer;
  mw->duplicates = 2;
  f.fab.push(mw);

  f.fab.xfer_and_signal(Component::MM, ControlMessage::strobe(0), 0,
                        net::NodeRange{0, 8}, 64, net::BufferPlace::NicMemory,
                        1, mech::kNoEvent);
  EXPECT_EQ(f.mock.xfers.size(), 3u);  // original + 2 duplicates
}

TEST(MechanismFabric, ChainActionsAccumulate) {
  FabricFixture f;
  auto first = std::make_shared<Scripted>();
  first->match_op = OpKind::Xfer;
  first->delay = 2_us;
  auto second = std::make_shared<Scripted>();
  second->match_op = OpKind::Xfer;
  second->delay = 3_us;
  f.fab.push(first);
  f.fab.push(second);

  f.fab.xfer_and_signal(Component::MM, ControlMessage::strobe(0), 0,
                        net::NodeRange{0, 8}, 64, net::BufferPlace::NicMemory,
                        1, mech::kNoEvent);
  f.sim.run();
  EXPECT_EQ(f.sim.now(), sim::SimTime::micros(5));  // 2 + 3 accumulated
  // Both middleware observed the *final* verdict.
  ASSERT_EQ(first->observed.size(), 1u);
  EXPECT_EQ(first->observed[0].second.delay, sim::SimTime::micros(5));
}

TEST(MechanismFabric, MulticastDeliversPerNodeAndDropsSelectively) {
  FabricFixture f;
  auto mw = std::make_shared<Scripted>();
  mw->match_op = OpKind::CommandDeliver;
  mw->match_node = 2;
  mw->drop = true;
  f.fab.push(mw);

  int wire_calls = 0;
  std::vector<int> delivered;
  auto run = [&]() -> sim::Task<> {
    co_await f.fab.multicast_command(
        Component::MM, ControlMessage::launch(42), 0, net::NodeRange{0, 4}, 64,
        [&](int, net::NodeRange, sim::Bytes) -> sim::Task<> {
          ++wire_calls;
          co_return;
        },
        [&](net::NodeRange dsts, const ControlMessage& m,
            fabric::TraceContext) {
          EXPECT_EQ(m.u.launch.job, 42);
          for (int n = dsts.first; n <= dsts.last(); ++n) {
            delivered.push_back(n);
          }
        });
  };
  f.sim.spawn(run());
  f.sim.run();

  EXPECT_EQ(wire_calls, 1);
  EXPECT_EQ(delivered, (std::vector<int>{0, 1, 3}));  // node 2 lost
  // 1 multicast envelope + 4 per-node delivery envelopes.
  EXPECT_EQ(mw->seen.size(), 5u);
}

TEST(MechanismFabric, DroppedMulticastLosesAllDeliveries) {
  FabricFixture f;
  auto mw = std::make_shared<Scripted>();
  mw->match_op = OpKind::CommandMulticast;
  mw->drop = true;
  f.fab.push(mw);

  int wire_calls = 0;
  int delivered = 0;
  auto run = [&]() -> sim::Task<> {
    co_await f.fab.multicast_command(
        Component::MM, ControlMessage::strobe(1), 0, net::NodeRange{0, 4}, 64,
        [&](int, net::NodeRange, sim::Bytes) -> sim::Task<> {
          ++wire_calls;
          co_return;
        },
        [&](net::NodeRange dsts, const ControlMessage&,
            fabric::TraceContext) { delivered += dsts.count; });
  };
  f.sim.spawn(run());
  f.sim.run();
  EXPECT_EQ(wire_calls, 0);
  EXPECT_EQ(delivered, 0);
}

TEST(MechanismFabric, LocalOpsAreObserveOnly) {
  FabricFixture f;
  auto mw = std::make_shared<Scripted>();
  mw->drop = true;  // drop *everything* the chain will let it
  f.fab.push(mw);

  // Local NIC operations still reach the inner mechanisms: fault
  // actions are not applied to them.
  f.fab.write_local(1, 0, 9);
  f.fab.signal_local(1, 0);
  EXPECT_TRUE(f.fab.test_event(1, 0));
  auto run = [&]() -> sim::Task<> { co_await f.fab.wait_event(1, 0); };
  f.sim.spawn(run());
  f.sim.run();

  EXPECT_EQ(f.mock.write_locals, 1);
  EXPECT_EQ(f.mock.signal_locals, 1);
  EXPECT_EQ(f.mock.test_events, 1);
  EXPECT_EQ(f.mock.wait_events, 1);
  // …and every one of them was observed with a clean verdict.
  ASSERT_EQ(mw->observed.size(), 4u);
  for (const auto& [e, a] : mw->observed) EXPECT_FALSE(a.drop);
}

TEST(FaultInjector, SameSeedSameDecisions) {
  // Rng has value semantics: two injectors built from copies of the
  // same stream make identical decisions. (Rng::fork advances the
  // parent, so two fork(salt) calls deliberately differ.)
  sim::Rng master(0x5707'11E5ULL);
  FaultInjector x(master);
  FaultInjector y(master);
  x.policy(MsgClass::Strobe).drop_prob = 0.3;
  y.policy(MsgClass::Strobe).drop_prob = 0.3;

  const Envelope e{OpKind::CommandMulticast, Component::MM,
                   ControlMessage::strobe(0), 0, net::NodeRange{0, 8}, 64};
  for (int i = 0; i < 200; ++i) {
    Action ax, ay;
    x.apply(e, ax);
    y.apply(e, ay);
    EXPECT_EQ(ax.drop, ay.drop);
  }
  EXPECT_EQ(x.dropped(MsgClass::Strobe), y.dropped(MsgClass::Strobe));
  EXPECT_GT(x.dropped(MsgClass::Strobe), 0);
  EXPECT_LT(x.dropped(MsgClass::Strobe), 200);
}

TEST(FaultInjector, ZeroProbabilityConsumesNoRandomness) {
  sim::Rng master(0x5707'11E5ULL);
  FaultInjector x(master);
  const Envelope e{OpKind::Xfer, Component::MM, ControlMessage::strobe(0), 0,
                   net::NodeRange{0, 8}, 64};
  for (int i = 0; i < 100; ++i) {
    Action a;
    x.apply(e, a);
    EXPECT_FALSE(a.drop);
  }
  // After 100 envelopes under all-zero policies, x's stream is
  // untouched: it still agrees decision-for-decision with a pristine
  // copy once both are given the same non-zero policy.
  FaultInjector z(master);
  x.policy(MsgClass::Strobe).drop_prob = 0.5;
  z.policy(MsgClass::Strobe).drop_prob = 0.5;
  for (int i = 0; i < 50; ++i) {
    Action ax, az;
    x.apply(e, ax);
    z.apply(e, az);
    EXPECT_EQ(ax.drop, az.drop);
  }
}

TEST(FaultInjector, TargetedDropHitsOnceOnMatchingNode) {
  sim::Simulator sim;
  FaultInjector x(sim.rng().fork(1));
  x.drop_next_delivery(MsgClass::Heartbeat, /*node=*/3);

  auto deliver = [&](MsgClass c, int node) {
    Action a;
    x.apply(Envelope{OpKind::CommandDeliver, Component::MM,
                     c == MsgClass::Heartbeat ? ControlMessage::heartbeat(0)
                                              : ControlMessage::strobe(0),
                     0, net::NodeRange{node, 1}, 0},
            a);
    return a.drop;
  };
  EXPECT_FALSE(deliver(MsgClass::Heartbeat, 2));  // wrong node
  EXPECT_FALSE(deliver(MsgClass::Strobe, 3));     // wrong class
  EXPECT_TRUE(deliver(MsgClass::Heartbeat, 3));   // armed shot fires
  EXPECT_FALSE(deliver(MsgClass::Heartbeat, 3));  // one-shot: disarmed
  EXPECT_EQ(x.dropped(MsgClass::Heartbeat), 1);
}

TEST(LatencyPerturber, ModelsAndScope) {
  sim::Simulator sim;
  LatencyPerturber p(sim.rng().fork(2));
  p.set_jitter(MsgClass::Strobe,
               {LatencyPerturber::Model::Constant, 10_us, {}});
  p.set_jitter(MsgClass::Heartbeat,
               {LatencyPerturber::Model::Uniform, 1_us, 4_us});

  Action a;
  p.apply(Envelope{OpKind::CommandMulticast, Component::MM,
                   ControlMessage::strobe(0), 0, net::NodeRange{0, 8}, 64},
          a);
  EXPECT_EQ(a.delay, sim::SimTime::micros(10));

  for (int i = 0; i < 50; ++i) {
    Action h;
    p.apply(Envelope{OpKind::CommandMulticast, Component::MM,
                     ControlMessage::heartbeat(i), 0, net::NodeRange{0, 8}, 64},
            h);
    EXPECT_GE(h.delay, sim::SimTime::micros(1));
    EXPECT_LT(h.delay, sim::SimTime::micros(5));
  }

  // Per-node deliveries are not jittered (a multicast is perturbed
  // once, not once per destination).
  Action d;
  p.apply(Envelope{OpKind::CommandDeliver, Component::MM,
                   ControlMessage::strobe(0), 0, net::NodeRange{3, 1}, 0},
          d);
  EXPECT_EQ(d.delay, sim::SimTime::zero());
}

TEST(StructuredTraceSink, RecordsVerdictsAndSerialises) {
  FabricFixture f;
  auto drop_hb = std::make_shared<Scripted>();
  drop_hb->match_op = OpKind::CompareAndWrite;
  drop_hb->drop = true;
  auto sink = std::make_shared<StructuredTraceSink>(f.sim);
  f.fab.push(drop_hb);
  f.fab.push(sink);

  f.fab.xfer_and_signal(Component::MM, ControlMessage::strobe(5), 0,
                        net::NodeRange{0, 8}, 64, net::BufferPlace::NicMemory,
                        1, mech::kNoEvent);
  auto probe = [&]() -> sim::Task<> {
    (void)co_await f.fab.compare_and_write(
        Component::MM, ControlMessage::heartbeat(3), 0, net::NodeRange{0, 8}, 0,
        net::Compare::GE, 1, mech::kNoWrite, 0);
  };
  f.sim.spawn(probe());
  f.sim.run();
  f.fab.note(Component::NM, 4, ControlMessage::launch(11));

  ASSERT_EQ(sink->records().size(), 3u);
  EXPECT_EQ(sink->count(MsgClass::Strobe), 1u);
  EXPECT_EQ(sink->count(MsgClass::Heartbeat, OpKind::CompareAndWrite), 1u);
  EXPECT_EQ(sink->dropped_count(MsgClass::Heartbeat), 1u);
  EXPECT_EQ(sink->dropped_count(MsgClass::Strobe), 0u);

  const TraceRecord& strobe = sink->records()[0];
  EXPECT_EQ(strobe.msg_class(), MsgClass::Strobe);
  EXPECT_EQ(strobe.comp(), Component::MM);
  EXPECT_EQ(strobe.a, 5);
  const TraceRecord& note = sink->records()[2];
  EXPECT_EQ(note.op_kind(), OpKind::Note);
  EXPECT_EQ(note.src, 4);
  EXPECT_EQ(note.a, 11);

  const auto bytes = sink->bytes();
  EXPECT_EQ(bytes.size(), 3 * kTraceRecordBytes);
  sink->clear();
  EXPECT_TRUE(sink->records().empty());
  EXPECT_TRUE(sink->bytes().empty());
}

TEST(StructuredTraceSink, HotPathOpsOffByDefault) {
  FabricFixture f;
  auto sink = std::make_shared<StructuredTraceSink>(f.sim);
  f.fab.push(sink);

  EXPECT_TRUE(f.fab.test_event(0, 0));
  f.fab.write_local(0, 0, 1);
  f.fab.signal_local(0, 0);
  EXPECT_TRUE(sink->records().empty());

  sink->set_recorded(OpKind::TestEvent, true);
  EXPECT_TRUE(f.fab.test_event(0, 0));
  EXPECT_EQ(sink->count(OpKind::TestEvent), 1u);
}

}  // namespace
}  // namespace storm::fabric
