// Whole-cluster properties of the fabric: a no-op middleware chain
// reproduces the raw-mechanism timings exactly, and faulty runs are
// deterministic — two executions with the same seed produce
// byte-identical structured traces.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "fabric/fault_injector.hpp"
#include "fabric/latency_perturber.hpp"
#include "fabric/trace_sink.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"

namespace storm::fabric {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::JobId;
using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

core::AppProgram compute_program(SimTime work) {
  return [work](core::AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

TEST(FabricPassThrough, NoopChainReproducesLaunchTimesExactly) {
  // The same 4 MB launch with (a) an empty chain and (b) a chain of
  // middleware that take no action must agree to the nanosecond: the
  // fabric adds decision points, never modeled time.
  auto run = [](bool with_noop_chain) {
    sim::Simulator sim;
    ClusterConfig cfg = ClusterConfig::es40(16);
    cfg.storm.quantum = 1_ms;
    Cluster cluster(sim, cfg);
    if (with_noop_chain) {
      auto inject = std::make_shared<FaultInjector>(sim.rng().fork(99));
      // All probabilities zero: decides every envelope, consumes no
      // randomness, drops nothing.
      auto perturb = std::make_shared<LatencyPerturber>(sim.rng().fork(98));
      auto sink = std::make_shared<StructuredTraceSink>(sim);
      cluster.fabric().push(inject);
      cluster.fabric().push(perturb);
      cluster.fabric().push(sink);
    }
    const JobId id = cluster.submit({.binary_size = 4_MB, .npes = 64});
    EXPECT_TRUE(cluster.run_until_all_complete(60_sec));
    return cluster.job(id).times();
  };

  const auto plain = run(false);
  const auto noop = run(true);
  EXPECT_EQ(plain.transfer_start, noop.transfer_start);
  EXPECT_EQ(plain.transfer_done, noop.transfer_done);
  EXPECT_EQ(plain.launch_issued, noop.launch_issued);
  EXPECT_EQ(plain.started, noop.started);
  EXPECT_EQ(plain.finished, noop.finished);
}

TEST(FabricPassThrough, NoopChainReproducesHeadlineLaunch) {
  // Section 3.1.1 headline (12 MB on 64 nodes: ~96 ms send, ~110 ms
  // launch) holds with a full middleware chain interposed.
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(64);
  cfg.storm.quantum = 1_ms;
  Cluster cluster(sim, cfg);
  auto inject = std::make_shared<FaultInjector>(sim.rng().fork(1));
  auto sink = std::make_shared<StructuredTraceSink>(sim);
  cluster.fabric().push(inject);
  cluster.fabric().push(sink);

  const JobId id = cluster.submit({.binary_size = 12_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const auto& t = cluster.job(id).times();
  EXPECT_NEAR(t.send_time().to_millis(), 96.0, 15.0);
  EXPECT_NEAR(t.launch_time().to_millis(), 110.0, 25.0);

  // The sink saw the whole control plane: the prepare + launch
  // multicasts, per-chunk transfers, flow-control queries.
  EXPECT_GT(sink->count(MsgClass::LaunchChunk), 0u);
  EXPECT_EQ(sink->count(MsgClass::Launch, OpKind::CommandMulticast), 1u);
  EXPECT_EQ(sink->count(MsgClass::PrepareTransfer, OpKind::CommandMulticast),
            1u);
  EXPECT_EQ(inject->total_dropped(), 0);
}

struct FaultyRun {
  std::vector<std::uint8_t> trace;
  std::vector<SimTime> finished;
  int completed = 0;
  std::int64_t strobes_dropped = 0;
};

FaultyRun faulty_gang_run(
    const std::function<void(sim::Simulator&, Cluster&)>& add_middleware) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  Cluster cluster(sim, cfg);
  add_middleware(sim, cluster);

  const JobId a = cluster.submit(
      {.binary_size = 1_MB, .npes = 16, .program = compute_program(500_ms)});
  const JobId b = cluster.submit(
      {.binary_size = 1_MB, .npes = 16, .program = compute_program(500_ms)});
  EXPECT_TRUE(cluster.run_until_all_complete(120_sec));

  FaultyRun out;
  out.completed = cluster.mm().completed_count();
  out.finished = {cluster.job(a).times().finished,
                  cluster.job(b).times().finished};
  return out;
}

TEST(FabricDeterminism, SameSeedStrobeLossIsByteIdentical) {
  auto run = [] {
    FaultyRun out;
    std::shared_ptr<FaultInjector> inject;
    std::shared_ptr<StructuredTraceSink> sink;
    out = faulty_gang_run([&](sim::Simulator& sim, Cluster& cluster) {
      inject = std::make_shared<FaultInjector>(sim.rng().fork(0xD1CE));
      inject->policy(MsgClass::Strobe).drop_prob = 0.02;
      sink = std::make_shared<StructuredTraceSink>(sim);
      cluster.fabric().push(inject);
      cluster.fabric().push(sink);
    });
    out.strobes_dropped = inject->dropped(MsgClass::Strobe);
    out.trace = sink->bytes();
    return out;
  };

  const FaultyRun x = run();
  const FaultyRun y = run();

  // The fault load was real and the jobs survived it.
  EXPECT_GT(x.strobes_dropped, 0);
  EXPECT_EQ(x.completed, 2);
  // Byte-identical traces and identical timings across same-seed runs.
  EXPECT_EQ(x.strobes_dropped, y.strobes_dropped);
  EXPECT_EQ(x.finished, y.finished);
  ASSERT_FALSE(x.trace.empty());
  EXPECT_EQ(x.trace, y.trace);
}

TEST(FabricDeterminism, SameSeedJitterIsByteIdentical) {
  auto run = [] {
    FaultyRun out;
    std::shared_ptr<StructuredTraceSink> sink;
    out = faulty_gang_run([&](sim::Simulator& sim, Cluster& cluster) {
      auto perturb = std::make_shared<LatencyPerturber>(sim.rng().fork(0xC0DE));
      perturb->set_jitter(MsgClass::Strobe,
                          {LatencyPerturber::Model::Uniform, 5_us, 50_us});
      perturb->set_jitter(MsgClass::LaunchChunk,
                          {LatencyPerturber::Model::Exponential, 0_us, 20_us});
      sink = std::make_shared<StructuredTraceSink>(sim);
      cluster.fabric().push(perturb);
      cluster.fabric().push(sink);
    });
    out.trace = sink->bytes();
    return out;
  };

  const FaultyRun x = run();
  const FaultyRun y = run();
  EXPECT_EQ(x.completed, 2);
  EXPECT_EQ(x.finished, y.finished);
  ASSERT_FALSE(x.trace.empty());
  EXPECT_EQ(x.trace, y.trace);
}

}  // namespace
}  // namespace storm::fabric
