// StructuredTraceSink echo mode: records render as readable stderr
// lines when enabled and stay silent otherwise.
#include "fabric/trace_sink.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fabric/fabric.hpp"
#include "sim/simulator.hpp"

namespace storm::fabric {
namespace {

using namespace storm::sim::time_literals;

/// No-op mechanisms: just enough to drive the fabric's observe path.
class NullMechanisms final : public mech::Mechanisms {
 public:
  std::string name() const override { return "null"; }
  int nodes() const override { return 4; }
  void xfer_and_signal(int, net::NodeRange, sim::Bytes, net::BufferPlace,
                       net::EventAddr, net::EventAddr) override {}
  bool test_event(int, net::EventAddr) override { return true; }
  sim::Task<> wait_event(int, net::EventAddr) override { co_return; }
  sim::Task<bool> compare_and_write(int, net::NodeRange, net::GlobalAddr,
                                    net::Compare, std::int64_t, net::GlobalAddr,
                                    std::int64_t) override {
    co_return true;
  }
  void write_local(int, net::GlobalAddr, std::int64_t) override {}
  std::int64_t read_local(int, net::GlobalAddr) const override { return 0; }
  void signal_local(int, net::EventAddr, int) override {}
  sim::SimTime caw_latency(int) const override { return 1_us; }
  sim::Bandwidth xfer_aggregate_bandwidth(int) const override {
    return sim::Bandwidth::mb_per_s(100);
  }
};

/// Drops everything it sees — to make the echo print DROPPED.
class DropAll final : public Middleware {
 public:
  std::string_view name() const override { return "drop-all"; }
  void apply(const Envelope&, Action& a) override { a.drop = true; }
};

struct EchoFixture {
  sim::Simulator sim;
  NullMechanisms null;
  MechanismFabric fab{sim, null};
  std::shared_ptr<StructuredTraceSink> sink =
      std::make_shared<StructuredTraceSink>(sim);

  EchoFixture() { fab.push(sink); }
};

TEST(StructuredTraceSink, EchoOffIsSilent) {
  EchoFixture f;
  testing::internal::CaptureStderr();
  f.fab.note(Component::MM, 0, ControlMessage::strobe(3));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(f.sink->records().size(), 1u);  // still recorded
}

TEST(StructuredTraceSink, EchoRendersRecordFields) {
  EchoFixture f;
  f.sink->set_echo(true);
  testing::internal::CaptureStderr();
  f.fab.note(Component::MM, 2, ControlMessage::strobe(3));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("mm"), std::string::npos) << err;
  EXPECT_NE(err.find("note"), std::string::npos) << err;
  EXPECT_NE(err.find("strobe"), std::string::npos) << err;
  EXPECT_NE(err.find("a=3"), std::string::npos) << err;  // the row
  EXPECT_EQ(err.find("DROPPED"), std::string::npos) << err;
}

TEST(StructuredTraceSink, EchoMarksDroppedOperations) {
  EchoFixture f;
  // The dropper runs before the sink; the sink's echo must show the
  // chain's final verdict.
  f.fab.clear_middleware();
  f.fab.push(std::make_shared<DropAll>());
  f.fab.push(f.sink);
  f.sink->set_echo(true);
  testing::internal::CaptureStderr();
  f.fab.xfer_and_signal(Component::FileTransfer,
                        ControlMessage::launch_chunk(1, 0, 512), 0,
                        net::NodeRange{0, 4}, 512, net::BufferPlace::NicMemory,
                        mech::kNoEvent, mech::kNoEvent);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("DROPPED"), std::string::npos) << err;
  EXPECT_NE(err.find("xfer"), std::string::npos) << err;
  ASSERT_EQ(f.sink->records().size(), 1u);
  EXPECT_TRUE(f.sink->records()[0].dropped());
}

TEST(StructuredTraceSink, RingCapacityEvictsOldestFirst) {
  EchoFixture f;
  f.sink->set_capacity(3);
  for (int row = 0; row < 5; ++row) {
    f.fab.note(Component::MM, 0, ControlMessage::strobe(row));
  }
  EXPECT_EQ(f.sink->evicted(), 2u);
  const auto& recs = f.sink->records();
  ASSERT_EQ(recs.size(), 3u);
  // records() linearizes: oldest surviving record first.
  EXPECT_EQ(recs[0].a, 2);
  EXPECT_EQ(recs[1].a, 3);
  EXPECT_EQ(recs[2].a, 4);
}

TEST(StructuredTraceSink, ShrinkingCapacityEvictsSurplusImmediately) {
  EchoFixture f;
  for (int row = 0; row < 6; ++row) {
    f.fab.note(Component::MM, 0, ControlMessage::strobe(row));
  }
  EXPECT_EQ(f.sink->evicted(), 0u);
  f.sink->set_capacity(2);
  EXPECT_EQ(f.sink->evicted(), 4u);
  const auto& recs = f.sink->records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].a, 4);
  EXPECT_EQ(recs[1].a, 5);
}

TEST(StructuredTraceSink, RingWrapKeepsBytesConsistentWithRecords) {
  EchoFixture f;
  f.sink->set_capacity(4);
  for (int row = 0; row < 11; ++row) {
    f.fab.note(Component::MM, 0, ControlMessage::strobe(row));
  }
  const auto bytes = f.sink->bytes();
  const auto& recs = f.sink->records();
  ASSERT_EQ(bytes.size(), recs.size() * kTraceRecordBytes);
  // First serialised record is the oldest survivor (row 7).
  EXPECT_EQ(recs[0].a, 7);
  f.sink->clear();
  EXPECT_EQ(f.sink->records().size(), 0u);
  EXPECT_EQ(f.sink->evicted(), 0u);
}

TEST(StructuredTraceSink, EchoToggleIsIndependentOfRecording) {
  EchoFixture f;
  f.sink->set_echo(true);
  f.sink->set_echo(false);
  testing::internal::CaptureStderr();
  f.fab.note(Component::NM, 1, ControlMessage::generic());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(f.sink->records().size(), 1u);
}

}  // namespace
}  // namespace storm::fabric
