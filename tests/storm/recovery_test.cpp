// End-to-end failure-lifecycle tests: heartbeat detection internals,
// kill-and-requeue recovery, mid-transfer crashes, node rejoin and
// hot-standby MM failover.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fabric/fault_injector.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "storm/node_manager.hpp"

namespace storm::core {
namespace {

using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

ClusterConfig recovery_config(int nodes) {
  ClusterConfig cfg = ClusterConfig::es40(nodes);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;  // 50 ms heartbeat
  return cfg;
}

AppProgram compute_program(SimTime work) {
  return [work](AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

std::int64_t counter_value(const Cluster& cluster, std::string_view name) {
  const telemetry::Counter* c = cluster.metrics().find_counter(name);
  return c ? c->value() : 0;
}

// --- detection path -------------------------------------------------------

TEST(Recovery, FailedNodesSortedAscending) {
  sim::Simulator sim;
  Cluster cluster(sim, recovery_config(16));
  sim.run(300_ms);
  cluster.crash_node(9);
  sim.run(600_ms);
  cluster.crash_node(3);
  sim.run(1500_ms);
  const std::vector<int> expect{3, 9};
  EXPECT_EQ(cluster.mm().failed_nodes(), expect)
      << "failure list must stay sorted regardless of detection order";
}

TEST(Recovery, RepeatedFailureIsIdempotent) {
  sim::Simulator sim;
  Cluster cluster(sim, recovery_config(8));
  int callbacks = 0;
  cluster.mm().set_failure_callback([&](int n, SimTime) {
    EXPECT_EQ(n, 5);
    ++callbacks;
  });
  cluster.crash_node(5);
  cluster.crash_node(5);  // second crash of a dead node: no-op
  sim.run(2_sec);         // many heartbeat rounds observe the same corpse
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(cluster.mm().failed_nodes(), std::vector<int>{5});
  EXPECT_EQ(counter_value(cluster, "mm.recovery.evictions"), 1);
}

TEST(Recovery, DroppedHeartbeatsStillFireCallback) {
  // The node is healthy, but every heartbeat *delivery* to it is lost:
  // from the MM's vantage point that is indistinguishable from death,
  // and the callback must fire all the same.
  sim::Simulator sim;
  Cluster cluster(sim, recovery_config(8));
  auto inject =
      std::make_shared<fabric::FaultInjector>(sim.rng().fork(0xBEEF));
  inject->drop_next_delivery(fabric::MsgClass::Heartbeat, /*node=*/6,
                             /*count=*/1000);
  cluster.fabric().push(inject);
  int failed_node = -1;
  cluster.mm().set_failure_callback(
      [&](int n, SimTime) { failed_node = n; });
  sim.run(2_sec);
  EXPECT_EQ(failed_node, 6);
  EXPECT_EQ(cluster.mm().failed_nodes(), std::vector<int>{6});
  EXPECT_GT(inject->dropped(fabric::MsgClass::Heartbeat), 0);
}

// --- kill-and-requeue ------------------------------------------------------

TEST(Recovery, CrashedNodeJobRequeuedAndCompletes) {
  sim::Simulator sim;
  Cluster cluster(sim, recovery_config(8));
  const JobId id = cluster.submit({.name = "victim",
                                   .binary_size = 1_MB,
                                   .npes = 16,  // 4 of 8 nodes
                                   .program = compute_program(2_sec)});
  sim.run(500_ms);
  ASSERT_EQ(cluster.job(id).state(), JobState::Running);
  // Crash a node inside the allocation (but never the MM's own node).
  const net::NodeRange alloc = cluster.job(id).nodes();
  const int victim = alloc.contains(0) ? alloc.last() : alloc.first;
  ASSERT_NE(victim, cluster.mm().node());
  cluster.crash_node(victim);

  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
  EXPECT_EQ(cluster.job(id).restarts(), 1);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.kills"), 1);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.requeues"), 1);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.evictions"), 1);
  // The replacement incarnation avoided the dead node.
  EXPECT_FALSE(cluster.job(id).nodes().contains(victim));
  // Recovery latency (requeue -> running again) was measured.
  const telemetry::Histogram* lat =
      cluster.metrics().find_histogram("mm.recovery.requeue_to_run_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 1);
}

TEST(Recovery, AbortPolicyMarksJobAborted) {
  sim::Simulator sim;
  ClusterConfig cfg = recovery_config(8);
  cfg.storm.failure_policy = FailurePolicy::Abort;
  Cluster cluster(sim, cfg);
  const JobId id = cluster.submit({.binary_size = 1_MB,
                                   .npes = 16,
                                   .program = compute_program(5_sec)});
  sim.run(500_ms);
  ASSERT_EQ(cluster.job(id).state(), JobState::Running);
  const net::NodeRange alloc = cluster.job(id).nodes();
  cluster.crash_node(alloc.contains(0) ? alloc.last() : alloc.first);
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Aborted);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.aborts"), 1);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.requeues"), 0);
}

TEST(Recovery, RestartBudgetExhaustionAborts) {
  sim::Simulator sim;
  ClusterConfig cfg = recovery_config(8);
  cfg.storm.max_job_restarts = 1;
  Cluster cluster(sim, cfg);
  const JobId id = cluster.submit({.binary_size = 1_MB,
                                   .npes = 8,  // 2 nodes
                                   .program = compute_program(10_sec)});
  // Whack-a-mole: crash a node under the current incarnation, twice.
  // The second kill exceeds the budget.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 20000 && cluster.job(id).state() != JobState::Running;
         ++i) {
      if (!sim.step()) break;
    }
    ASSERT_EQ(cluster.job(id).state(), JobState::Running) << "round " << round;
    const net::NodeRange alloc = cluster.job(id).nodes();
    const int victim =
        alloc.contains(cluster.mm().node()) ? alloc.last() : alloc.first;
    ASSERT_NE(victim, cluster.mm().node());
    cluster.crash_node(victim);
    sim.run(sim.now() + 1_sec);
  }
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Aborted);
  EXPECT_EQ(cluster.job(id).restarts(), 2);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.requeues"), 1);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.aborts"), 1);
}

TEST(Recovery, MidTransferCrashAbortsPipelineThenCompletes) {
  // Kill a destination node while its 12 MB image is still in flight:
  // the transfer pipeline must unwind (not wedge), and the requeued
  // incarnation must finish on the survivors.
  sim::Simulator sim;
  ClusterConfig cfg = recovery_config(8);
  cfg.storm.quantum = 5_ms;
  cfg.storm.heartbeat_period_quanta = 4;  // 20 ms heartbeat: fast declare
  Cluster cluster(sim, cfg);
  const JobId id = cluster.submit({.binary_size = 12_MB,
                                   .npes = 16,
                                   .program = compute_program(100_ms)});
  // A 12 MB transfer takes ~100 ms; crash mid-flight.
  for (int i = 0;
       i < 200000 && cluster.job(id).state() != JobState::Transferring; ++i) {
    ASSERT_TRUE(sim.step());
  }
  ASSERT_EQ(cluster.job(id).state(), JobState::Transferring);
  sim.run(sim.now() + 30_ms);
  const net::NodeRange alloc = cluster.job(id).nodes();
  const int victim = alloc.contains(0) ? alloc.last() : alloc.first;
  cluster.crash_node(victim);

  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
  EXPECT_GE(cluster.job(id).restarts(), 1);
  EXPECT_GE(counter_value(cluster, "ft.aborts"), 1)
      << "the in-flight pipeline must have unwound";
  EXPECT_EQ(counter_value(cluster, "ft.transfers"),
            1 + cluster.job(id).restarts());
}

// --- node recovery ---------------------------------------------------------

TEST(Recovery, RecoveredNodeRejoinsAllocator) {
  sim::Simulator sim;
  Cluster cluster(sim, recovery_config(8));
  cluster.crash_node(5);
  sim.run(1_sec);  // detected and evicted
  ASSERT_EQ(cluster.mm().failed_nodes(), std::vector<int>{5});
  cluster.recover_node(5);
  sim.run(2_sec);
  EXPECT_TRUE(cluster.mm().failed_nodes().empty());
  EXPECT_EQ(counter_value(cluster, "mm.recovery.rejoins"), 1);
  // The restored capacity is real: a full-machine job now fits.
  const JobId id = cluster.submit({.binary_size = 1_MB,
                                   .npes = 32,
                                   .program = compute_program(100_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
  EXPECT_EQ(cluster.job(id).restarts(), 0);
  // ... and the re-registered node does not get re-declared dead.
  EXPECT_TRUE(cluster.mm().failed_nodes().empty());
}

TEST(Recovery, UndetectedOutageKillsSuspectJobs) {
  // A crash/recover cycle shorter than the detection latency: the MM
  // never declares the node dead, but its dæmon state is gone, so the
  // jobs spanning it must still be restarted on rejoin.
  sim::Simulator sim;
  ClusterConfig cfg = recovery_config(8);
  cfg.storm.heartbeat_period_quanta = 50;  // 500 ms heartbeat: slow declare
  Cluster cluster(sim, cfg);
  const JobId id = cluster.submit({.binary_size = 1_MB,
                                   .npes = 16,
                                   .program = compute_program(3_sec)});
  sim.run(700_ms);
  ASSERT_EQ(cluster.job(id).state(), JobState::Running);
  const net::NodeRange alloc = cluster.job(id).nodes();
  const int victim = alloc.contains(0) ? alloc.last() : alloc.first;
  cluster.crash_node(victim);
  sim.run(sim.now() + 20_ms);  // back before anyone noticed
  ASSERT_TRUE(cluster.mm().failed_nodes().empty());
  cluster.recover_node(victim);
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
  EXPECT_GE(cluster.job(id).restarts(), 1);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.rejoins"), 0);
}

// --- hot-standby failover --------------------------------------------------

ClusterConfig standby_config(int nodes) {
  ClusterConfig cfg = recovery_config(nodes);
  cfg.storm.standby_mm_enabled = true;  // standby on the last node
  cfg.storm.standby_miss_periods = 3;
  return cfg;
}

TEST(Failover, StandbyTakesOverAfterPrimaryCrash) {
  sim::Simulator sim;
  Cluster cluster(sim, standby_config(8));
  const JobId a = cluster.submit({.binary_size = 1_MB,
                                  .npes = 16,
                                  .program = compute_program(2_sec)});
  sim.run(500_ms);
  ASSERT_EQ(cluster.job(a).state(), JobState::Running);
  ASSERT_EQ(cluster.mm().node(), 0);
  cluster.crash_mm();  // dæmon dies; its node survives

  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
  // The standby is now the active MM.
  EXPECT_EQ(cluster.mm().node(), 7);
  EXPECT_TRUE(cluster.mm_standby()->active());
  EXPECT_EQ(counter_value(cluster, "mm.failover.count"), 1);
  // Detection gap and resume latency were both measured, and the gap
  // is in the configured ballpark (3 missed 50 ms heartbeat periods).
  const telemetry::Histogram* gap =
      cluster.metrics().find_histogram("mm.failover.gap_ns");
  const telemetry::Histogram* resume =
      cluster.metrics().find_histogram("mm.failover.resume_ns");
  ASSERT_NE(gap, nullptr);
  ASSERT_NE(resume, nullptr);
  EXPECT_EQ(gap->count(), 1);
  EXPECT_EQ(resume->count(), 1);
  EXPECT_GT(SimTime::ns(static_cast<std::int64_t>(gap->mean())), 150_ms);
  EXPECT_LT(SimTime::ns(static_cast<std::int64_t>(gap->mean())), 500_ms);
}

TEST(Failover, RunningJobsSurviveFailoverWithoutRestart) {
  // A Running job's state lives on the nodes, not in the MM: the
  // standby adopts it at its existing allocation instead of killing it.
  sim::Simulator sim;
  Cluster cluster(sim, standby_config(8));
  const JobId a = cluster.submit({.binary_size = 1_MB,
                                  .npes = 16,
                                  .program = compute_program(3_sec)});
  sim.run(500_ms);
  ASSERT_EQ(cluster.job(a).state(), JobState::Running);
  cluster.crash_mm();
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
  EXPECT_EQ(cluster.job(a).restarts(), 0);
  EXPECT_EQ(counter_value(cluster, "mm.recovery.kills"), 0);
}

TEST(Failover, PrimaryNodeDeathFailsOverAndRequeues) {
  // Crash the primary's whole node mid-run: the standby takes over AND
  // declares node 0 dead, requeueing the job that spanned it.
  sim::Simulator sim;
  Cluster cluster(sim, standby_config(8));
  const JobId a = cluster.submit({.binary_size = 1_MB,
                                  .npes = 16,  // nodes 0-3
                                  .program = compute_program(2_sec)});
  sim.run(500_ms);
  ASSERT_EQ(cluster.job(a).state(), JobState::Running);
  ASSERT_TRUE(cluster.job(a).nodes().contains(0));
  cluster.crash_node(0);

  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
  EXPECT_EQ(cluster.mm().node(), 7);
  EXPECT_EQ(counter_value(cluster, "mm.failover.count"), 1);
  EXPECT_GE(cluster.job(a).restarts(), 1);
  EXPECT_FALSE(cluster.job(a).nodes().contains(0));
  std::vector<int> failed{0};
  EXPECT_EQ(cluster.mm().failed_nodes(), failed);
}

TEST(Failover, QueuedJobsSubmittedBeforeCrashStillRun) {
  sim::Simulator sim;
  ClusterConfig cfg = standby_config(8);
  cfg.app_cpus_per_node = 2;
  cfg.storm.max_mpl = 1;  // one matrix row: second job must queue
  Cluster cluster(sim, cfg);
  const JobId a = cluster.submit({.binary_size = 1_MB,
                                  .npes = 16,  // the whole machine
                                  .program = compute_program(2_sec)});
  const JobId b = cluster.submit({.binary_size = 1_MB,
                                  .npes = 16,
                                  .program = compute_program(500_ms)});
  sim.run(500_ms);
  ASSERT_EQ(cluster.job(b).state(), JobState::Queued);
  cluster.crash_mm();
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
  EXPECT_EQ(cluster.job(b).state(), JobState::Completed);
  EXPECT_EQ(cluster.mm().completed_count(), 2);
}

}  // namespace
}  // namespace storm::core
