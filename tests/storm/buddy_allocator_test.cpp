#include "storm/buddy_allocator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/random.hpp"

namespace storm::core {
namespace {

TEST(Buddy, RoundUpPow2) {
  EXPECT_EQ(BuddyAllocator::round_up_pow2(1), 1);
  EXPECT_EQ(BuddyAllocator::round_up_pow2(2), 2);
  EXPECT_EQ(BuddyAllocator::round_up_pow2(3), 4);
  EXPECT_EQ(BuddyAllocator::round_up_pow2(5), 8);
  EXPECT_EQ(BuddyAllocator::round_up_pow2(33), 64);
  EXPECT_EQ(BuddyAllocator::round_up_pow2(64), 64);
}

TEST(Buddy, FullMachineAllocation) {
  BuddyAllocator a(64);
  auto r = a.allocate(64);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 0);
  EXPECT_EQ(r->count, 64);
  EXPECT_EQ(a.free_nodes(), 0);
  EXPECT_FALSE(a.allocate(1).has_value());
  a.release(*r);
  EXPECT_EQ(a.free_nodes(), 64);
}

TEST(Buddy, AllocationsAreAlignedAndDisjoint) {
  BuddyAllocator a(64);
  std::vector<net::NodeRange> got;
  std::set<int> used;
  for (int i = 0; i < 16; ++i) {
    auto r = a.allocate(4);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->first % 4, 0) << "buddy blocks are naturally aligned";
    for (int n = r->first; n <= r->last(); ++n) {
      EXPECT_TRUE(used.insert(n).second) << "node allocated twice";
    }
    got.push_back(*r);
  }
  EXPECT_EQ(a.free_nodes(), 0);
}

TEST(Buddy, RoundsRequestUp) {
  BuddyAllocator a(64);
  auto r = a.allocate(5);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->count, 8);
  EXPECT_EQ(a.free_nodes(), 56);
}

TEST(Buddy, SplitAndCoalesce) {
  BuddyAllocator a(16);
  auto a1 = a.allocate(1);
  ASSERT_TRUE(a1);
  EXPECT_EQ(a.largest_free_block(), 8);
  a.release(*a1);
  EXPECT_EQ(a.largest_free_block(), 16) << "buddies must coalesce fully";
}

TEST(Buddy, FragmentationPreventsLargeBlocks) {
  BuddyAllocator a(16);
  auto a1 = a.allocate(1);  // takes [0]
  auto a2 = a.allocate(8);  // takes [8..15]
  ASSERT_TRUE(a1 && a2);
  // 7 nodes free in [1..7], but no free block of 8.
  EXPECT_EQ(a.free_nodes(), 7);
  EXPECT_FALSE(a.allocate(8).has_value());
  EXPECT_TRUE(a.can_allocate(4));
  EXPECT_FALSE(a.can_allocate(8));
  a.release(*a2);
  EXPECT_TRUE(a.allocate(8).has_value());
}

TEST(Buddy, LowestAddressFirst) {
  BuddyAllocator a(16);
  auto r1 = a.allocate(4);
  auto r2 = a.allocate(4);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->first, 0);
  EXPECT_EQ(r2->first, 4);
  a.release(*r1);
  auto r3 = a.allocate(4);
  ASSERT_TRUE(r3);
  EXPECT_EQ(r3->first, 0) << "freed low block is reused first";
}

TEST(Buddy, SingleNodeMachine) {
  BuddyAllocator a(1);
  auto r = a.allocate(1);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->count, 1);
  EXPECT_FALSE(a.allocate(1));
  a.release(*r);
  EXPECT_TRUE(a.allocate(1));
}

TEST(Buddy, RejectsOversizeAndInvalid) {
  BuddyAllocator a(8);
  EXPECT_FALSE(a.allocate(16).has_value());
  EXPECT_FALSE(a.allocate(0).has_value());
  EXPECT_FALSE(a.allocate(-3).has_value());
}

// Property test: random allocate/release sequences preserve the free
// count, never double-allocate, and always fully coalesce when empty.
TEST(Buddy, RandomisedInvariants) {
  sim::Rng rng(2002);
  BuddyAllocator a(64);
  std::vector<net::NodeRange> live;
  std::set<int> used;
  for (int step = 0; step < 5000; ++step) {
    const bool do_alloc = live.empty() || rng.bernoulli(0.55);
    if (do_alloc) {
      const int want = 1 << rng.below(5);  // 1..16
      auto r = a.allocate(want);
      if (r) {
        EXPECT_EQ(r->first % r->count, 0);
        for (int n = r->first; n <= r->last(); ++n) {
          ASSERT_TRUE(used.insert(n).second);
        }
        live.push_back(*r);
      } else {
        EXPECT_LT(a.largest_free_block(), want);
      }
    } else {
      const std::size_t idx = rng.below(live.size());
      const auto r = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      for (int n = r.first; n <= r.last(); ++n) used.erase(n);
      a.release(r);
    }
    int live_nodes = 0;
    for (const auto& r : live) live_nodes += r.count;
    ASSERT_EQ(a.free_nodes(), 64 - live_nodes);
  }
  for (const auto& r : live) a.release(r);
  EXPECT_EQ(a.free_nodes(), 64);
  EXPECT_EQ(a.largest_free_block(), 64) << "empty allocator fully coalesced";
}

}  // namespace
}  // namespace storm::core
