// Tests of the uncoordinated (LocalOs) and implicit-coscheduling
// policies against gang scheduling — Section 4 lists all three among
// STORM's supported algorithms.
#include <gtest/gtest.h>

#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"

namespace storm::core {
namespace {

using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

/// Two tightly-coupled gangs (per-rank compute + pairwise exchange).
AppProgram coupled_program(int iterations) {
  return [iterations](AppContext& ctx) -> Task<> {
    const int peer = ctx.rank() ^ 1;
    for (int i = 0; i < iterations; ++i) {
      co_await ctx.compute(SimTime::millis(5));
      if (peer < ctx.npes()) {
        co_await ctx.send(peer, 32_KB);
        co_await ctx.recv(peer);
      }
    }
  };
}

double run_coupled(SchedulerKind kind, int iterations = 100) {
  sim::Simulator sim(77);
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.app_cpus_per_node = 2;
  cfg.storm.scheduler = kind;
  cfg.storm.quantum = 20_ms;
  cfg.storm.max_mpl = 2;
  Cluster cluster(sim, cfg);
  std::vector<JobId> ids;
  for (int j = 0; j < 2; ++j) {
    std::string name = "g";
    name += std::to_string(j);  // separate appends: GCC PR105651 -Wrestrict
    ids.push_back(cluster.submit({.name = std::move(name),
                                  .binary_size = 1_MB,
                                  .npes = 8,
                                  .program = coupled_program(iterations)}));
  }
  if (!cluster.run_until_all_complete(3600_sec)) return -1;
  SimTime first = SimTime::max(), last = SimTime::zero();
  for (auto id : ids) {
    first = std::min(first, cluster.job(id).times().first_proc_started);
    last = std::max(last, cluster.job(id).times().last_proc_exited);
  }
  return (last - first).to_seconds() / 2.0;
}

TEST(Coscheduling, AllPoliciesComplete) {
  EXPECT_GT(run_coupled(SchedulerKind::Gang), 0.0);
  EXPECT_GT(run_coupled(SchedulerKind::LocalOs), 0.0);
  EXPECT_GT(run_coupled(SchedulerKind::ImplicitCosched), 0.0);
}

TEST(Coscheduling, GangBeatsUncoordinatedForCoupledGangs) {
  // With busy-polling receives (the era's user-level messaging), a
  // descheduled partner makes the other end burn its quantum spinning:
  // uncoordinated local scheduling pays, gang scheduling does not.
  const double gang = run_coupled(SchedulerKind::Gang);
  const double local = run_coupled(SchedulerKind::LocalOs);
  ASSERT_GT(gang, 0.0);
  ASSERT_GT(local, 0.0);
  EXPECT_GT(local, gang * 1.1)
      << "uncoordinated scheduling should strand communicating PEs";
}

TEST(Coscheduling, ImplicitRecoversMostOfTheUncoordinatedLoss) {
  // The ICS result: spin-block gets close to gang without any global
  // coordination.
  const double gang = run_coupled(SchedulerKind::Gang);
  const double ics = run_coupled(SchedulerKind::ImplicitCosched);
  const double local = run_coupled(SchedulerKind::LocalOs);
  ASSERT_GT(gang, 0.0);
  ASSERT_GT(ics, 0.0);
  ASSERT_GT(local, 0.0);
  EXPECT_LT(ics, local * 0.95);  // clearly better than pure spinning
  EXPECT_LT(ics, gang * 1.35);   // in gang's neighbourhood
}

TEST(Coscheduling, LocalOsNeedsNoStrobes) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(2);
  cfg.app_cpus_per_node = 2;
  cfg.storm.scheduler = SchedulerKind::LocalOs;
  cfg.storm.quantum = 10_ms;
  Cluster cluster(sim, cfg);
  const JobId a = cluster.submit({.binary_size = 1_MB,
                                  .npes = 4,
                                  .program = coupled_program(20)});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  (void)a;
  EXPECT_EQ(cluster.mm().strobes_issued(), 0);
}

TEST(Coscheduling, UncoupledJobsUnaffectedByPolicy) {
  // Pure-compute jobs don't care who coordinates: both policies give
  // the same throughput (within scheduling noise).
  auto run_pure = [](SchedulerKind kind) {
    sim::Simulator sim(5);
    ClusterConfig cfg = ClusterConfig::es40(2);
    cfg.app_cpus_per_node = 2;
    cfg.storm.scheduler = kind;
    cfg.storm.quantum = 10_ms;
    cfg.storm.max_mpl = 2;
    Cluster cluster(sim, cfg);
    auto prog = [](AppContext& ctx) -> Task<> {
      co_await ctx.compute(500_ms);
    };
    const JobId a = cluster.submit(
        {.binary_size = 1_MB, .npes = 4, .program = prog});
    const JobId b = cluster.submit(
        {.binary_size = 1_MB, .npes = 4, .program = prog});
    EXPECT_TRUE(cluster.run_until_all_complete(600_sec));
    return std::max(cluster.job(a).times().last_proc_exited,
                    cluster.job(b).times().last_proc_exited)
        .to_seconds();
  };
  const double gang = run_pure(SchedulerKind::Gang);
  const double local = run_pure(SchedulerKind::LocalOs);
  EXPECT_NEAR(gang, local, gang * 0.1);
}

TEST(Coscheduling, BlockingRecvModeAlsoWorks) {
  // RecvWait::Block models kernel-assisted messaging: receives yield
  // immediately. Everything still completes; uncoordinated scheduling
  // is then work-conserving and close to gang.
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.app_cpus_per_node = 2;
  cfg.storm.scheduler = SchedulerKind::LocalOs;
  cfg.storm.recv_wait = RecvWait::Block;
  cfg.storm.max_mpl = 2;
  Cluster cluster(sim, cfg);
  const JobId a = cluster.submit({.binary_size = 1_MB,
                                  .npes = 8,
                                  .program = coupled_program(50)});
  const JobId b = cluster.submit({.binary_size = 1_MB,
                                  .npes = 8,
                                  .program = coupled_program(50)});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
  EXPECT_EQ(cluster.job(b).state(), JobState::Completed);
}

TEST(Coscheduling, GangSupportsMplThree) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(2);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 10_ms;
  cfg.storm.max_mpl = 3;
  Cluster cluster(sim, cfg);
  std::vector<JobId> ids;
  for (int j = 0; j < 3; ++j) {
    ids.push_back(cluster.submit(
        {.binary_size = 1_MB,
         .npes = 4,
         .program = [](AppContext& ctx) -> Task<> {
           co_await ctx.compute(300_ms);
         }}));
  }
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  // Three gangs time-share two PEs per node: total elapsed ~ 0.9 s.
  SimTime last = SimTime::zero();
  for (auto id : ids)
    last = std::max(last, cluster.job(id).times().last_proc_exited);
  EXPECT_GT(last.to_seconds(), 0.85);
  EXPECT_LT(last.to_seconds(), 1.1);
}

TEST(Coscheduling, LoadTogglingIsIdempotent) {
  sim::Simulator sim;
  Cluster cluster(sim, ClusterConfig::es40(2));
  cluster.start_cpu_load();
  cluster.start_cpu_load();  // double start: no effect
  sim.run_for(50_ms);
  cluster.stop_cpu_load();
  sim.run_for(200_ms);
  cluster.start_network_load();
  cluster.stop_network_load();
  const JobId id = cluster.submit({.binary_size = 1_MB, .npes = 4});
  EXPECT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
}

}  // namespace
}  // namespace storm::core
