#include "storm/reservation_profile.hpp"

#include <gtest/gtest.h>

#include "storm/batch_scheduler.hpp"
#include "storm/cluster.hpp"

namespace storm::core {
namespace {

using sim::SimTime;
using namespace storm::sim::time_literals;

TEST(Profile, EmptyMachineFitsImmediately) {
  ReservationProfile p(SimTime::zero(), 8);
  EXPECT_EQ(p.earliest_fit(8, 100_sec), SimTime::zero());
  EXPECT_EQ(p.available_at(SimTime::zero()), 8);
}

TEST(Profile, WaitsForRelease) {
  ReservationProfile p(SimTime::zero(), 2);
  p.add_release(50_sec, 6);
  EXPECT_EQ(p.earliest_fit(2, 10_sec), SimTime::zero());
  EXPECT_EQ(p.earliest_fit(4, 10_sec), 50_sec);
  EXPECT_EQ(p.available_at(49_sec), 2);
  EXPECT_EQ(p.available_at(50_sec), 8);
}

TEST(Profile, ReservationConsumesWindow) {
  ReservationProfile p(SimTime::zero(), 8);
  p.reserve(SimTime::zero(), 20_sec, 6);
  EXPECT_EQ(p.available_at(10_sec), 2);
  EXPECT_EQ(p.available_at(20_sec), 8);
  // A 4-node job must wait for the reservation to end.
  EXPECT_EQ(p.earliest_fit(4, 10_sec), 20_sec);
  // A 2-node job fits right away.
  EXPECT_EQ(p.earliest_fit(2, 10_sec), SimTime::zero());
}

TEST(Profile, WindowMustFitContiguously) {
  // 4 nodes free for [0, 30), then a reservation leaves 1 free for
  // [30, 40): a 2-node 35 s job cannot start at 0.
  ReservationProfile p(SimTime::zero(), 4);
  p.reserve(30_sec, 10_sec, 3);
  EXPECT_EQ(p.earliest_fit(2, 35_sec), 40_sec);
  EXPECT_EQ(p.earliest_fit(2, 30_sec), SimTime::zero());
}

TEST(Profile, OversizeNeverFits) {
  ReservationProfile p(SimTime::zero(), 4);
  EXPECT_EQ(p.earliest_fit(8, 1_sec), SimTime::max());
}

TEST(Profile, MultipleReleasesAccumulate) {
  ReservationProfile p(SimTime::zero(), 0);
  p.add_release(10_sec, 2);
  p.add_release(20_sec, 2);
  EXPECT_EQ(p.earliest_fit(4, 5_sec), 20_sec);
  EXPECT_EQ(p.earliest_fit(2, 5_sec), 10_sec);
}

// --- conservative policy through batch_pick -------------------------------

TEST(Conservative, StartsJobsWhoseReservationIsNow) {
  const std::vector<QueuedJobInfo> q = {{1, 4, 100_sec}, {2, 4, 100_sec},
                                        {3, 4, 100_sec}};
  auto r = batch_pick(q, {}, 8, 8, SimTime::zero(), BatchPolicy::Conservative);
  EXPECT_EQ(r, (std::vector<JobId>{1, 2}));
}

TEST(Conservative, BackfillsOnlyWithoutDelayingAnyone) {
  // Head (8 nodes) reserved at t=50 when the running job ends. A 2-node
  // 10 s job finishes by t=10 < 50: backfill. A 2-node 100 s job would
  // occupy nodes through the head's reservation: refused.
  const std::vector<RunningJobInfo> running = {{4, 50_sec}};
  {
    const std::vector<QueuedJobInfo> q = {{1, 8, 100_sec}, {2, 2, 10_sec}};
    auto r =
        batch_pick(q, running, 4, 8, SimTime::zero(), BatchPolicy::Conservative);
    EXPECT_EQ(r, (std::vector<JobId>{2}));
  }
  {
    const std::vector<QueuedJobInfo> q = {{1, 8, 100_sec}, {2, 2, 100_sec}};
    auto r =
        batch_pick(q, running, 4, 8, SimTime::zero(), BatchPolicy::Conservative);
    EXPECT_TRUE(r.empty());
  }
}

TEST(Conservative, BackfillBehindBlockedHead) {
  // 4 free now, 4 more released at t=100. The head (8 nodes) is
  // reserved at t=100; a 4-node 30 s job fits entirely before that
  // reservation, so conservative backfilling starts it immediately.
  const std::vector<RunningJobInfo> running = {{4, 100_sec}};
  const std::vector<QueuedJobInfo> q = {{1, 8, 100_sec}, {2, 4, 30_sec}};
  auto r =
      batch_pick(q, running, 4, 8, SimTime::zero(), BatchPolicy::Conservative);
  EXPECT_EQ(r, (std::vector<JobId>{2}));
}

TEST(Conservative, EndToEndThroughCluster) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.storm.scheduler = SchedulerKind::BatchConservative;
  Cluster cluster(sim, cfg);
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(cluster.submit(
        {.binary_size = 1 * 1024 * 1024,
         .npes = 16,
         .program =
             [](AppContext& ctx) -> sim::Task<> {
               co_await ctx.compute(sim::SimTime::millis(200));
             },
         .estimated_runtime = 1_sec}));
  }
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  for (auto id : ids) {
    EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
  }
}

}  // namespace
}  // namespace storm::core
