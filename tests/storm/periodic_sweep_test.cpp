// Batched periodic control-plane paths (DESIGN §2.3): the dæmon-sweep
// fast path for strobe/heartbeat delivery, the vectorized MM suspect
// scan, and their equivalence with the event-driven path they replace.
#include <gtest/gtest.h>

#include <string_view>
#include <utility>
#include <vector>

#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "storm/node_manager.hpp"

namespace storm::core {
namespace {

using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

ClusterConfig hb_config(int nodes) {
  ClusterConfig cfg = ClusterConfig::es40(nodes);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;  // 50 ms heartbeat
  return cfg;
}

AppProgram compute_program(SimTime work) {
  return [work](AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

std::int64_t counter_value(const Cluster& cluster, std::string_view name) {
  const telemetry::Counter* c = cluster.metrics().find_counter(name);
  return c ? c->value() : 0;
}

TEST(PeriodicSweep, SweepsTimesPeriodApproxSimTime) {
  // The satellite contract: mm.heartbeat.sweeps counts one vectorized
  // suspect scan per heartbeat round, so sweeps x period tracks
  // simulated time (modulo the first heartbeat_miss_periods rounds,
  // whose lagged floor is still non-positive).
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(16));
  sim.run(2_sec);
  const SimTime period = 10_ms * 5;
  const std::int64_t sweeps = counter_value(cluster, "mm.heartbeat.sweeps");
  ASSERT_GT(sweeps, 0);
  const SimTime covered = period * sweeps;
  EXPECT_LE(covered, sim.now());
  EXPECT_GE(covered + period * 4, sim.now())
      << "sweeps x period must track simulated time";
}

TEST(PeriodicSweep, HeartbeatsAbsorbedOnIdleNodes) {
  // On an idle cluster every non-MM node's dæmon is quiescent when the
  // heartbeat multicast lands, so deliveries take the absorb fast path
  // and the batching is observable in the metrics.
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(16));
  sim.run(1_sec);
  const std::int64_t batched = counter_value(cluster, "nm.heartbeat.batched");
  // ~19 heartbeat rounds onto 15 absorbable nodes (the MM's own node
  // is excluded from the sweep).
  EXPECT_GT(batched, 15 * 10);
  // Every absorbed heartbeat still runs the full command bookkeeping.
  EXPECT_GE(counter_value(cluster, "nm.cmds"), batched);
}

TEST(PeriodicSweep, BatchedMatchesLegacyExactly) {
  // The byte-identity claim at test scale: the same seed, workload,
  // and crash produce identical job timing, failure detection times,
  // and command counts with the sweep on and off.
  struct Outcome {
    SimTime finished[2];
    SimTime now;
    std::vector<std::pair<int, SimTime>> failures;
    std::int64_t cmds, strobe_idle, strobe_switch, rounds;
  };
  auto run_once = [](bool batched) {
    sim::Simulator sim(0xBA7C'4ED);
    ClusterConfig cfg = hb_config(8);
    cfg.storm.batched_periodic_delivery = batched;
    Cluster cluster(sim, cfg);
    Outcome o;
    cluster.mm().set_failure_callback(
        [&o](int n, SimTime t) { o.failures.emplace_back(n, t); });
    JobId a = cluster.submit({.name = "a",
                              .binary_size = 1_MB,
                              .npes = 4,
                              .program = compute_program(120_ms)});
    JobId b = cluster.submit({.name = "b",
                              .binary_size = 1_MB,
                              .npes = 4,
                              .program = compute_program(80_ms)});
    sim.schedule_at(230_ms, [&cluster] { cluster.crash_node(6); });
    cluster.run_until_all_complete(30_sec);
    sim.run(2_sec);  // let detection settle
    o.finished[0] = cluster.job(a).times().finished;
    o.finished[1] = cluster.job(b).times().finished;
    o.now = sim.now();
    o.cmds = cluster.metrics().find_counter("nm.cmds")->value();
    o.strobe_idle = cluster.metrics().find_counter("nm.strobe.idle")->value();
    o.strobe_switch =
        cluster.metrics().find_counter("nm.strobe.switches")->value();
    o.rounds = cluster.metrics().find_counter("mm.heartbeat.rounds")->value();
    return o;
  };
  const Outcome on = run_once(true);
  const Outcome off = run_once(false);
  EXPECT_EQ(on.finished[0], off.finished[0]);
  EXPECT_EQ(on.finished[1], off.finished[1]);
  EXPECT_EQ(on.now, off.now);
  EXPECT_EQ(on.failures, off.failures)
      << "failure detection must not shift by a single tick";
  EXPECT_EQ(on.cmds, off.cmds);
  EXPECT_EQ(on.strobe_idle, off.strobe_idle);
  EXPECT_EQ(on.strobe_switch, off.strobe_switch);
  EXPECT_EQ(on.rounds, off.rounds);
}

TEST(PeriodicSweep, CrashMidAbsorbWindowIsSafe) {
  // Crash nodes at 4 µs offsets sweeping across the ~27 µs absorb
  // window that opens when the t=500 ms heartbeat lands: some crashes
  // hit before delivery, some mid-window, some after completion. All
  // must end with the node declared failed and the cluster healthy
  // (the window's completion event is cancelled, the partial slice
  // charged, and held deliveries dropped).
  sim::Simulator sim;
  Cluster cluster(sim, hb_config(32));
  std::vector<int> declared;
  cluster.mm().set_failure_callback(
      [&declared](int n, SimTime) { declared.push_back(n); });
  std::vector<int> victims;
  for (int i = 0; i < 16; ++i) {
    const int node = 3 + i;
    victims.push_back(node);
    sim.schedule_at(500_ms + SimTime::us(1 + 4 * i),
                    [&cluster, node] { cluster.crash_node(node); });
  }
  sim.run(3_sec);
  std::sort(declared.begin(), declared.end());
  EXPECT_EQ(declared, victims);
  EXPECT_EQ(cluster.mm().failed_nodes(), victims);
  // The surviving nodes keep absorbing heartbeats after the crashes.
  const std::int64_t batched_at_3s =
      counter_value(cluster, "nm.heartbeat.batched");
  sim.run(4_sec);
  EXPECT_GT(counter_value(cluster, "nm.heartbeat.batched"), batched_at_3s);
}

TEST(PeriodicSweep, LegacyKnobDisablesAbsorption) {
  sim::Simulator sim;
  ClusterConfig cfg = hb_config(8);
  cfg.storm.batched_periodic_delivery = false;
  Cluster cluster(sim, cfg);
  sim.run(1_sec);
  EXPECT_EQ(counter_value(cluster, "nm.heartbeat.batched"), 0);
  // The vectorized MM scan is independent of the delivery knob.
  EXPECT_GT(counter_value(cluster, "mm.heartbeat.sweeps"), 0);
}

}  // namespace
}  // namespace storm::core
