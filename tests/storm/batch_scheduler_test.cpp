#include "storm/batch_scheduler.hpp"

#include <gtest/gtest.h>

namespace storm::core {
namespace {

using sim::SimTime;
using namespace storm::sim::time_literals;

TEST(BatchPick, FcfsStartsInOrderWhileFitting) {
  const std::vector<QueuedJobInfo> q = {
      {1, 4, 100_sec}, {2, 4, 100_sec}, {3, 4, 100_sec}};
  auto r = batch_pick(q, {}, /*free=*/8, /*total=*/8, SimTime::zero(), false);
  EXPECT_EQ(r, (std::vector<JobId>{1, 2}));
}

TEST(BatchPick, FcfsHeadOfLineBlocking) {
  // Head needs 8, only 4 free: FCFS starts nothing, even though job 2
  // would fit.
  const std::vector<QueuedJobInfo> q = {{1, 8, 100_sec}, {2, 2, 10_sec}};
  const std::vector<RunningJobInfo> running = {{4, 50_sec}};
  auto r = batch_pick(q, running, 4, 8, SimTime::zero(), false);
  EXPECT_TRUE(r.empty());
}

TEST(BatchPick, EasyBackfillsShortJob) {
  // Head (8 nodes) blocked until the running job ends at t=50. Job 2
  // (2 nodes, 10 s) finishes before the reservation: backfill it.
  const std::vector<QueuedJobInfo> q = {{1, 8, 100_sec}, {2, 2, 10_sec}};
  const std::vector<RunningJobInfo> running = {{4, 50_sec}};
  auto r = batch_pick(q, running, 4, 8, SimTime::zero(), true);
  EXPECT_EQ(r, (std::vector<JobId>{2}));
}

TEST(BatchPick, EasyRefusesBackfillThatDelaysReservation) {
  // Job 2 would run 100 s, past the t=50 reservation, and at the
  // shadow time the head needs every node: refuse.
  const std::vector<QueuedJobInfo> q = {{1, 8, 100_sec}, {2, 2, 100_sec}};
  const std::vector<RunningJobInfo> running = {{4, 50_sec}};
  auto r = batch_pick(q, running, 4, 8, SimTime::zero(), true);
  EXPECT_TRUE(r.empty());
}

TEST(BatchPick, EasyAllowsLongBackfillInSpareNodes) {
  // Head needs 4 at the shadow time, when 4+2=6 will be free: 2 spare.
  // Job 2 (2 nodes) fits in the spare set, so even a long job may
  // backfill.
  const std::vector<QueuedJobInfo> q = {{1, 4, 100_sec}, {2, 2, 1000_sec}};
  const std::vector<RunningJobInfo> running = {{4, 50_sec}, {2, 80_sec}};
  auto r = batch_pick(q, running, 2, 8, SimTime::zero(), true);
  EXPECT_EQ(r, (std::vector<JobId>{2}));
}

TEST(BatchPick, EasyBackfillUpdatesStateBetweenCandidates) {
  // Two backfill candidates of 2 nodes each, but only 2 free after the
  // head reservation logic: the second must be refused.
  const std::vector<QueuedJobInfo> q = {
      {1, 8, 100_sec}, {2, 2, 10_sec}, {3, 2, 10_sec}};
  const std::vector<RunningJobInfo> running = {{6, 50_sec}};
  auto r = batch_pick(q, running, 2, 8, SimTime::zero(), true);
  EXPECT_EQ(r, (std::vector<JobId>{2}));
}

TEST(BatchPick, EmptyQueue) {
  auto r = batch_pick({}, {}, 8, 8, SimTime::zero(), true);
  EXPECT_TRUE(r.empty());
}

TEST(BatchPick, EverythingFitsWithBackfillToo) {
  const std::vector<QueuedJobInfo> q = {{1, 2, 10_sec}, {2, 2, 10_sec}};
  auto r = batch_pick(q, {}, 8, 8, SimTime::zero(), true);
  EXPECT_EQ(r, (std::vector<JobId>{1, 2}));
}

TEST(BatchPick, ReservationAgainstMultipleRunningJobs) {
  // Head needs 6: free rises to 2+2=4 at t=30, 4+4=8 at t=60 -> shadow
  // t=60. A 25 s backfill candidate (2 nodes) finishes before that.
  const std::vector<QueuedJobInfo> q = {{1, 6, 100_sec}, {2, 2, 25_sec}};
  const std::vector<RunningJobInfo> running = {{2, 30_sec}, {4, 60_sec}};
  auto r = batch_pick(q, running, 2, 8, SimTime::zero(), true);
  EXPECT_EQ(r, (std::vector<JobId>{2}));
}

}  // namespace
}  // namespace storm::core
