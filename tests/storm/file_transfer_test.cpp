// Protocol-level tests of the binary-distribution pipeline and the
// gang-scheduling invariants, observed from inside a running cluster.
#include "storm/file_transfer.hpp"

#include <gtest/gtest.h>

#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "storm/node_manager.hpp"

namespace storm::core {
namespace {

using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

ClusterConfig launch_config(int nodes) {
  ClusterConfig cfg = ClusterConfig::es40(nodes);
  cfg.storm.quantum = 1_ms;
  return cfg;
}

TEST(FileTransfer, ProtocolBandwidthNear131) {
  // Section 3.3.1: the observed protocol bandwidth is ~131 MB/s.
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(64));
  const JobId id = cluster.submit({.binary_size = 12_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const double mbps = 12.0 * 1.048576 /
                      cluster.job(id).times().send_time().to_seconds();
  EXPECT_NEAR(mbps, 131.0, 10.0);
}

TEST(FileTransfer, FlowControlNeverOverrunsSlots) {
  // Invariant: the written-chunks counter on every node never lags the
  // chunks the MM has *sent* by more than the slot count.
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(8));
  const JobId id = cluster.submit({.binary_size = 12_MB, .npes = 32});
  const int slots = cluster.config().storm.slots;

  // Sample during the transfer: delivered events minus written must
  // stay within the receive-queue depth.
  bool violated = false;
  for (int probe = 1; probe <= 40; ++probe) {
    sim.schedule_at(SimTime::millis(probe * 3), [&, id] {
      // Upper bound on what the sender may have pushed to the fabric.
      const auto sent_upper =
          cluster.network().bytes_broadcast() / (512 * 1024);
      for (int n = 0; n < 8; ++n) {
        const auto written = cluster.mech().read_local(n, addr_written(id));
        if (sent_upper - written > slots + 1) violated = true;
      }
    });
  }
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  EXPECT_FALSE(violated);
}

TEST(FileTransfer, AllNodesReportFullImage) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(16));
  const JobId id = cluster.submit({.binary_size = 8_MB, .npes = 64});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const int chunks = static_cast<int>(
      (8_MB + cluster.config().storm.chunk_size - 1) /
      cluster.config().storm.chunk_size);
  for (int n = 0; n < 16; ++n) {
    EXPECT_EQ(cluster.mech().read_local(n, addr_written(id)), chunks) << n;
  }
}

TEST(FileTransfer, HostAssistTlbPenalty) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(4));
  // Footprint below coverage: no penalty.
  const auto base = FileTransfer::host_assist_cost(cluster, 512_KB, 4);
  // 16 slots x 512 KB = 8 MB >> 2 MB coverage: inflated.
  const auto big = FileTransfer::host_assist_cost(cluster, 512_KB, 16);
  EXPECT_GT(big, base);
  EXPECT_NEAR(base.to_millis(),
              512.0 * 1024.0 / (1300.0 * 1e6) * 1e3, 0.01);
}

TEST(FileTransfer, SmallBinarySingleChunk) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(4));
  const JobId id = cluster.submit({.binary_size = 100_KB, .npes = 16});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
  // One chunk: send time is dominated by boundary alignment + one
  // pipeline pass, well under 10 ms.
  EXPECT_LT(cluster.job(id).times().send_time().to_millis(), 10.0);
}

TEST(Submit, RejectsOversizeAndInvalidSpecs) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(4));  // 16 PEs capacity
  EXPECT_THROW(cluster.submit({.npes = 17}), std::invalid_argument);
  EXPECT_THROW(cluster.submit({.npes = 0}), std::invalid_argument);
  EXPECT_THROW(cluster.submit({.binary_size = 0, .npes = 4}),
               std::invalid_argument);
  EXPECT_NO_THROW(cluster.submit({.npes = 16}));
}

TEST(GangInvariant, RowsNeverCoRunOnACpu) {
  // Sample the OS state of every node during an MPL-2 run: two PEs of
  // different matrix rows must never hold CPUs of the same node at the
  // same instant (one gang at a time per timeslot — the defining gang
  // property).
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 5_ms;
  Cluster cluster(sim, cfg);
  auto program = [](AppContext& ctx) -> Task<> {
    co_await ctx.compute(1_sec);
  };
  const JobId a = cluster.submit({.name = "rowA",
                                  .binary_size = 1_MB,
                                  .npes = 8,
                                  .program = program});
  const JobId b = cluster.submit({.name = "rowB",
                                  .binary_size = 1_MB,
                                  .npes = 8,
                                  .program = program});
  (void)a;
  (void)b;
  // Probe only while both gangs are certainly fully live (each PE
  // needs 1 s of CPU, so nothing can exit before ~2 s): near the end,
  // slot filling legitimately mixes rows to reuse freed CPUs.
  bool mixed = false;
  for (int probe = 0; probe < 340; ++probe) {
    sim.schedule_at(SimTime::millis(100 + probe * 5) + SimTime::us(2500),
                    [&] {
                      for (int n = 0; n < 4; ++n) {
                        const node::Proc* c0 = cluster.machine(n).os().current(0);
                        const node::Proc* c1 = cluster.machine(n).os().current(1);
                        if (c0 == nullptr || c1 == nullptr) continue;
                        const bool a0 = c0->name().find("rowA") == 0;
                        const bool b0 = c0->name().find("rowB") == 0;
                        const bool a1 = c1->name().find("rowA") == 0;
                        const bool b1 = c1->name().find("rowB") == 0;
                        if ((a0 && b1) || (b0 && a1)) mixed = true;
                      }
                    });
  }
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_FALSE(mixed) << "PEs of different timeslots ran concurrently";
}

TEST(GangInvariant, CpuTimeConservedUnderTimeSlicing) {
  // Each PE's accumulated CPU time must equal its program's work
  // regardless of how many switches happened.
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(2);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 2_ms;
  Cluster cluster(sim, cfg);
  auto program = [](AppContext& ctx) -> Task<> {
    co_await ctx.compute(500_ms);
  };
  const JobId a = cluster.submit(
      {.binary_size = 1_MB, .npes = 4, .program = program});
  const JobId b = cluster.submit(
      {.binary_size = 1_MB, .npes = 4, .program = program});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  // Both jobs completed; total elapsed ~ 2x the work plus overheads.
  const double elapsed =
      (std::max(cluster.job(a).times().finished,
                cluster.job(b).times().finished) -
       std::min(cluster.job(a).times().launch_issued,
                cluster.job(b).times().launch_issued))
          .to_seconds();
  EXPECT_GT(elapsed, 1.0);
  EXPECT_LT(elapsed, 1.15);
}

}  // namespace
}  // namespace storm::core
