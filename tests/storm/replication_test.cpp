// Quorum-replicated Machine Manager: bootstrap commits through a
// majority, a leader crash elects a follower whose MM adopts the
// machine, a minority-isolated leader commits nothing once its lease
// expires, and same-seed runs are byte-identical end to end.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fabric/fault_injector.hpp"
#include "fabric/trace_sink.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "storm/replication/replication.hpp"

namespace storm::core {
namespace {

using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

ClusterConfig repl_config(int nodes) {
  ClusterConfig cfg = ClusterConfig::es40(nodes);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;  // 50 ms heartbeat
  cfg.storm.replication_enabled = true;   // quorum MMs on 0, 14, 15
  return cfg;
}

AppProgram compute_program(SimTime work) {
  return [work](AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

std::int64_t counter_value(const Cluster& cluster, std::string_view name) {
  const telemetry::Counter* c = cluster.metrics().find_counter(name);
  return c ? c->value() : 0;
}

// --- bootstrap -------------------------------------------------------------

TEST(Replication, BootstrapCommitsPlacementsThroughQuorum) {
  sim::Simulator sim;
  Cluster cluster(sim, repl_config(16));
  const JobId a = cluster.submit({.name = "a",
                                  .binary_size = 1_MB,
                                  .npes = 16,
                                  .program = compute_program(500_ms)});
  const JobId b = cluster.submit({.name = "b",
                                  .binary_size = 1_MB,
                                  .npes = 8,
                                  .program = compute_program(300_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
  EXPECT_EQ(cluster.job(b).state(), JobState::Completed);

  ReplicationGroup* g = cluster.replication();
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->active_rank(), 0);
  EXPECT_EQ(g->elections(), 0);
  // Both placements went through the log before any bytes moved.
  EXPECT_GE(g->commits(), 2);
  EXPECT_EQ(g->stale_aborts(), 0);
  const std::vector<ReplicaStatus> st = g->status();
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0].role, ReplRole::Leader);
  EXPECT_EQ(st[0].term, 1);
  EXPECT_EQ(st[1].role, ReplRole::Follower);
  EXPECT_EQ(st[2].role, ReplRole::Follower);
  EXPECT_GE(st[0].commit, 2);
  // Committed-prefix agreement, checked via the rolling digests.
  for (const ReplicaStatus& s : st) {
    EXPECT_EQ(s.floor_index, st[0].floor_index) << "rank " << s.rank;
    EXPECT_EQ(s.floor_digest, st[0].floor_digest) << "rank " << s.rank;
  }
}

// --- leader crash ----------------------------------------------------------

TEST(Replication, LeaderCrashElectsFollowerAndJobsComplete) {
  sim::Simulator sim;
  Cluster cluster(sim, repl_config(16));
  const JobId a = cluster.submit({.name = "long",
                                  .binary_size = 1_MB,
                                  .npes = 16,
                                  .program = compute_program(2_sec)});
  sim.run(500_ms);
  ASSERT_EQ(cluster.job(a).state(), JobState::Running);
  cluster.crash_mm();  // the leader's dæmon dies; its node survives

  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  EXPECT_EQ(cluster.job(a).state(), JobState::Completed);
  EXPECT_EQ(cluster.job(a).restarts(), 0) << "Running jobs are adopted";

  ReplicationGroup* g = cluster.replication();
  ASSERT_NE(g, nullptr);
  EXPECT_NE(g->active_rank(), 0);
  EXPECT_GE(g->elections(), 1);
  EXPECT_EQ(counter_value(cluster, "mm.failover.count"), 1);
  // The quorum lease bounds the gap: one lease plus the first
  // follower's election stagger, far under the hot-standby's
  // heartbeat-counting window (150 ms and up; see recovery_test).
  const SimTime gap = g->last_failover_gap();
  EXPECT_GT(gap, SimTime{});
  EXPECT_LT(gap, 100_ms);
  // The dead rank never leads again and the survivors agree.
  const std::vector<ReplicaStatus> st = g->status();
  EXPECT_NE(st[0].role, ReplRole::Leader);
  for (const ReplicaStatus& s : st) {
    EXPECT_EQ(s.floor_digest, st[0].floor_digest) << "rank " << s.rank;
  }
}

// --- split brain -----------------------------------------------------------

TEST(Replication, MinorityIsolatedLeaderCommitsNothingAfterLease) {
  // Drop every Repl message from the followers toward the leader
  // while the leader's own sends still arrive: its lease starves, the
  // majority side elects, and the old leader's commit index freezes.
  sim::Simulator sim;
  Cluster cluster(sim, repl_config(16));
  auto inject = std::make_shared<fabric::FaultInjector>(sim::Rng{0});
  const int cut = inject->add_one_way({14, 15}, {0}, {fabric::MsgClass::Repl});
  inject->set_one_way_enabled(cut, false);
  cluster.fabric().push(inject);

  cluster.submit({.name = "long",
                  .binary_size = 1_MB,
                  .npes = 16,
                  .program = compute_program(4_sec)});
  sim.run(500_ms);
  ReplicationGroup* g = cluster.replication();
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->active_rank(), 0);
  inject->set_one_way_enabled(cut, true);

  // One lease (20 ms) later the starved leader must have abdicated;
  // nothing it logged after the cut may ever commit.
  sim.run(560_ms);
  const std::int64_t frozen = g->commit_index(0);
  EXPECT_FALSE(g->may_lead(0));
  sim.run(1190_ms);
  EXPECT_EQ(g->commit_index(0), frozen)
      << "a minority-isolated leader must not commit";
  EXPECT_NE(g->active_rank(), 0) << "the majority side must have elected";
  EXPECT_GE(g->elections(), 1);
  EXPECT_GT(inject->one_way_drops(), 0);

  // Heal the cut: the deposed leader re-follows the new term and the
  // group reconverges on one committed prefix.
  inject->set_one_way_enabled(cut, false);
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  const std::vector<ReplicaStatus> st = g->status();
  EXPECT_NE(st[0].role, ReplRole::Leader);
  for (const ReplicaStatus& s : st) {
    EXPECT_EQ(s.floor_index, st[0].floor_index) << "rank " << s.rank;
    EXPECT_EQ(s.floor_digest, st[0].floor_digest) << "rank " << s.rank;
  }
  EXPECT_EQ(g->commit_index(1), g->commit_index(0));
  EXPECT_EQ(g->commit_index(2), g->commit_index(0));
}

// --- determinism -----------------------------------------------------------

TEST(Replication, SameSeedLeaderCrashRunsAreByteIdentical) {
  auto run_once = [] {
    sim::Simulator sim(0x5704);
    Cluster cluster(sim, repl_config(16));
    auto sink = std::make_shared<fabric::StructuredTraceSink>(sim);
    cluster.fabric().push(sink);
    cluster.submit({.name = "a",
                    .binary_size = 2_MB,
                    .npes = 32,
                    .program = compute_program(1500_ms)});
    cluster.submit({.name = "b",
                    .binary_size = 1_MB,
                    .npes = 8,
                    .program = compute_program(800_ms)});
    sim.run(500_ms);
    cluster.crash_mm();
    EXPECT_TRUE(cluster.run_until_all_complete(600_sec));
    return sink->bytes();
  };
  const std::vector<std::uint8_t> a = run_once();
  const std::vector<std::uint8_t> b = run_once();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same-seed replication runs must be byte-identical";
}

}  // namespace
}  // namespace storm::core
