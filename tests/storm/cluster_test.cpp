// End-to-end tests of the STORM management plane on the simulated
// ES40/QsNET cluster: launch timing against the paper's headline
// numbers, gang-scheduling behaviour, batch policies, fault detection.
#include "storm/cluster.hpp"

#include <gtest/gtest.h>

#include "storm/machine_manager.hpp"
#include "storm/node_manager.hpp"

namespace storm::core {
namespace {

using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

ClusterConfig launch_config(int nodes) {
  // The paper's job-launching setup: 1 ms timeslice "to minimize the
  // MM overhead and expose maximal protocol performance".
  ClusterConfig cfg = ClusterConfig::es40(nodes);
  cfg.storm.quantum = 1_ms;
  return cfg;
}

AppProgram compute_program(SimTime work) {
  return [work](AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

TEST(ClusterLaunch, HeadlineTwelveMegabytesOn64Nodes) {
  // Section 3.1.1: "a 12 MB file can be launched in 110 ms ... the
  // average transfer time is 96 ms".
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(64));
  const JobId id = cluster.submit(
      {.name = "noop", .binary_size = 12_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const auto& t = cluster.job(id).times();
  EXPECT_NEAR(t.send_time().to_millis(), 96.0, 15.0);
  EXPECT_GT(t.execute_time().to_millis(), 3.0);
  EXPECT_LT(t.execute_time().to_millis(), 40.0);
  EXPECT_NEAR(t.launch_time().to_millis(), 110.0, 25.0);
}

TEST(ClusterLaunch, SendTimeProportionalToBinarySize) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(64));
  const JobId j4 = cluster.submit({.binary_size = 4_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_complete(j4, 60_sec));
  const JobId j8 = cluster.submit({.binary_size = 8_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_complete(j8, 60_sec));
  const double s4 = cluster.job(j4).times().send_time().to_millis();
  const double s8 = cluster.job(j8).times().send_time().to_millis();
  EXPECT_NEAR(s8 / s4, 2.0, 0.25);
}

TEST(ClusterLaunch, ExecuteTimeIndependentOfBinarySize) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(64));
  const JobId j4 = cluster.submit({.binary_size = 4_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_complete(j4, 60_sec));
  const JobId j12 = cluster.submit({.binary_size = 12_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_complete(j12, 60_sec));
  const double e4 = cluster.job(j4).times().execute_time().to_millis();
  const double e12 = cluster.job(j12).times().execute_time().to_millis();
  EXPECT_LT(std::abs(e12 - e4), 10.0);
}

TEST(ClusterLaunch, ExecuteTimeGrowsWithNodeCountViaSkew) {
  // Figure 2: execute times "grow more rapidly with the number of
  // nodes ... skew caused by local operating system scheduling".
  sim::Simulator sim1;
  Cluster c1(sim1, launch_config(1));
  const JobId ja = c1.submit({.binary_size = 4_MB, .npes = 4});
  ASSERT_TRUE(c1.run_until_all_complete(60_sec));

  sim::Simulator sim64;
  Cluster c64(sim64, launch_config(64));
  const JobId jb = c64.submit({.binary_size = 4_MB, .npes = 256});
  ASSERT_TRUE(c64.run_until_all_complete(60_sec));

  EXPECT_GT(c64.job(jb).times().execute_time(),
            c1.job(ja).times().execute_time());
}

TEST(ClusterLaunch, SingleNodeSinglePe) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(1));
  const JobId id = cluster.submit({.binary_size = 4_MB, .npes = 1});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
  EXPECT_GT(cluster.job(id).times().send_time().to_millis(), 10.0);
}

TEST(ClusterLaunch, CpuLoadSlowsLaunch) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(16));
  const JobId quiet = cluster.submit({.binary_size = 12_MB, .npes = 64});
  ASSERT_TRUE(cluster.run_until_complete(quiet, 120_sec));
  cluster.start_cpu_load();
  const JobId loaded = cluster.submit({.binary_size = 12_MB, .npes = 64});
  ASSERT_TRUE(cluster.run_until_complete(loaded, 600_sec));
  cluster.stop_cpu_load();
  EXPECT_GT(cluster.job(loaded).times().launch_time().to_seconds(),
            cluster.job(quiet).times().launch_time().to_seconds() * 1.5);
}

TEST(ClusterLaunch, NetworkLoadSlowsLaunchMore) {
  // Figure 3: the network-loaded launch is the worst case (~1.5 s for
  // 12 MB on the full machine).
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(64));
  const JobId quiet = cluster.submit({.binary_size = 12_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_complete(quiet, 120_sec));
  cluster.start_network_load();
  const JobId loaded = cluster.submit({.binary_size = 12_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_complete(loaded, 600_sec));
  cluster.stop_network_load();
  const double t = cluster.job(loaded).times().launch_time().to_seconds();
  EXPECT_GT(t, 0.8);
  EXPECT_LT(t, 2.5);  // "it still takes only 1.5 seconds"
}

TEST(ClusterApps, ComputeJobRunsForItsWork) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(4);
  Cluster cluster(sim, cfg);
  const JobId id = cluster.submit({.name = "synth",
                                   .binary_size = 1_MB,
                                   .npes = 16,
                                   .program = compute_program(500_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const auto& t = cluster.job(id).times();
  // started/finished are MM boundary observations, so the measured
  // interval can straddle the true 500 ms by up to a quantum each way.
  const double run = (t.finished - t.started).to_seconds();
  EXPECT_GT(run, 0.44);
  EXPECT_LT(run, 0.65);
}

TEST(ClusterApps, MessagePassingBetweenRanks) {
  sim::Simulator sim;
  Cluster cluster(sim, ClusterConfig::es40(4));
  bool rank1_got_message = false;
  auto program = [&](AppContext& ctx) -> Task<> {
    if (ctx.rank() == 0) {
      co_await ctx.compute(1_ms);
      co_await ctx.send(1, 64_KB);
    } else {
      co_await ctx.recv(0);
      rank1_got_message = true;
    }
  };
  const JobId id = cluster.submit(
      {.binary_size = 1_MB, .npes = 2, .program = program});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  EXPECT_TRUE(rank1_got_message);
  EXPECT_EQ(cluster.job(id).state(), JobState::Completed);
}

TEST(ClusterGang, TwoJobsTimeShareWithMpl2) {
  // Two identical CPU-bound jobs on the same nodes, MPL 2: each takes
  // ~2x its solo runtime, and the normalised runtime (total / MPL)
  // stays close to the solo runtime — Figure 4's flat curve.
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 20_ms;
  cfg.storm.max_mpl = 2;
  Cluster cluster(sim, cfg);
  const SimTime work = 2_sec;
  const JobId a = cluster.submit({.name = "a",
                                  .binary_size = 1_MB,
                                  .npes = 16,
                                  .program = compute_program(work)});
  const JobId b = cluster.submit({.name = "b",
                                  .binary_size = 1_MB,
                                  .npes = 16,
                                  .program = compute_program(work)});
  ASSERT_TRUE(cluster.run_until_all_complete(300_sec));
  const auto& ta = cluster.job(a).times();
  const auto& tb = cluster.job(b).times();
  const double makespan =
      (std::max(ta.finished, tb.finished) -
       std::min(ta.launch_issued, tb.launch_issued))
          .to_seconds();
  const double normalized = makespan / 2.0;
  EXPECT_GT(normalized, work.to_seconds() * 0.98);
  EXPECT_LT(normalized, work.to_seconds() * 1.15);
  EXPECT_GT(cluster.mm().strobes_issued(), 100);
}

TEST(ClusterGang, JobsProgressInterleavedNotSerially) {
  // With gang time slicing both jobs must be in flight simultaneously:
  // job B starts long before job A finishes.
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 10_ms;
  Cluster cluster(sim, cfg);
  const JobId a = cluster.submit(
      {.binary_size = 1_MB, .npes = 8, .program = compute_program(1_sec)});
  const JobId b = cluster.submit(
      {.binary_size = 1_MB, .npes = 8, .program = compute_program(1_sec)});
  ASSERT_TRUE(cluster.run_until_all_complete(300_sec));
  EXPECT_LT(cluster.job(b).times().started, cluster.job(a).times().finished);
}

TEST(ClusterGang, SmallerQuantumCostsLittle) {
  // The headline scheduling claim: 2 ms quanta with "virtually no
  // performance degradation" (< 2-3% here).
  auto run_with_quantum = [](SimTime q) {
    sim::Simulator sim;
    ClusterConfig cfg = ClusterConfig::es40(8);
    cfg.app_cpus_per_node = 2;
    cfg.storm.quantum = q;
    Cluster cluster(sim, cfg);
    const JobId a = cluster.submit(
        {.binary_size = 1_MB, .npes = 16, .program = compute_program(2_sec)});
    const JobId b = cluster.submit(
        {.binary_size = 1_MB, .npes = 16, .program = compute_program(2_sec)});
    EXPECT_TRUE(cluster.run_until_all_complete(600_sec));
    return (std::max(cluster.job(a).times().finished,
                     cluster.job(b).times().finished) -
            std::min(cluster.job(a).times().launch_issued,
                     cluster.job(b).times().launch_issued))
        .to_seconds();
  };
  const double at_2ms = run_with_quantum(2_ms);
  const double at_1s = run_with_quantum(1_sec);
  EXPECT_LT(at_2ms, at_1s * 1.03);
}

TEST(ClusterBatch, FcfsRunsHeadOfLineFirst) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.storm.scheduler = SchedulerKind::BatchFcfs;
  Cluster cluster(sim, cfg);
  // Half-fill the machine, then queue a full-machine job and a small
  // job behind it.
  const JobId big1 = cluster.submit({.binary_size = 1_MB,
                                     .npes = 16,
                                     .program = compute_program(1_sec),
                                     .estimated_runtime = 2_sec});
  const JobId big2 = cluster.submit({.binary_size = 1_MB,
                                     .npes = 32,
                                     .program = compute_program(200_ms),
                                     .estimated_runtime = 1_sec});
  const JobId small = cluster.submit({.binary_size = 1_MB,
                                      .npes = 4,
                                      .program = compute_program(100_ms),
                                      .estimated_runtime = 500_ms});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  // FCFS: small must not start before big2 (head of line).
  EXPECT_GE(cluster.job(small).times().transfer_start,
            cluster.job(big2).times().transfer_start);
  (void)big1;
}

TEST(ClusterBatch, EasyBackfillsSmallJobPastBlockedHead) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.storm.scheduler = SchedulerKind::BatchEasy;
  Cluster cluster(sim, cfg);
  const JobId big1 = cluster.submit({.binary_size = 1_MB,
                                     .npes = 16,
                                     .program = compute_program(2_sec),
                                     .estimated_runtime = 3_sec});
  const JobId big2 = cluster.submit({.binary_size = 1_MB,
                                     .npes = 32,
                                     .program = compute_program(200_ms),
                                     .estimated_runtime = 1_sec});
  const JobId small = cluster.submit({.binary_size = 1_MB,
                                      .npes = 4,
                                      .program = compute_program(100_ms),
                                      .estimated_runtime = 500_ms});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  // EASY: the small job backfills around the blocked 32-PE head.
  EXPECT_LT(cluster.job(small).times().finished,
            cluster.job(big2).times().started);
  (void)big1;
}

TEST(ClusterFault, HeartbeatDetectsKilledNode) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(16);
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_period_quanta = 5;  // 50 ms heartbeat
  Cluster cluster(sim, cfg);
  int failed_node = -1;
  SimTime detected_at = SimTime::zero();
  cluster.mm().set_failure_callback([&](int n, SimTime when) {
    failed_node = n;
    detected_at = when;
  });
  sim.run(500_ms);
  ASSERT_TRUE(cluster.mm().failed_nodes().empty());
  cluster.fail_node(7);
  const SimTime killed_at = sim.now();
  sim.run(killed_at + 2_sec);
  EXPECT_EQ(failed_node, 7);
  const double latency_ms = (detected_at - killed_at).to_millis();
  EXPECT_GT(latency_ms, 0.0);
  EXPECT_LT(latency_ms, 200.0);  // a few heartbeat periods
}

TEST(ClusterFault, NoFalsePositivesUnderLoad) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_period_quanta = 5;
  Cluster cluster(sim, cfg);
  cluster.start_cpu_load();
  bool fired = false;
  cluster.mm().set_failure_callback(
      [&](int, SimTime) { fired = true; });
  sim.run(3_sec);
  EXPECT_FALSE(fired);
}

TEST(ClusterNm, MailboxKeepsUpAtFeasibleQuanta) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 2_ms;
  Cluster cluster(sim, cfg);
  const JobId a = cluster.submit(
      {.binary_size = 1_MB, .npes = 8, .program = compute_program(500_ms)});
  const JobId b = cluster.submit(
      {.binary_size = 1_MB, .npes = 8, .program = compute_program(500_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(300_sec));
  (void)a;
  (void)b;
  for (int n = 0; n < 4; ++n) {
    EXPECT_LE(cluster.nm(n).max_mailbox_depth(), 4u)
        << "NM " << n << " fell behind at a feasible quantum";
  }
}

TEST(ClusterMisc, JobStateProgression) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(4));
  const JobId id = cluster.submit({.binary_size = 4_MB, .npes = 16});
  EXPECT_EQ(cluster.job(id).state(), JobState::Queued);
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const auto& t = cluster.job(id).times();
  EXPECT_LE(t.submit, t.transfer_start);
  EXPECT_LT(t.transfer_start, t.transfer_done);
  EXPECT_LE(t.transfer_done, t.launch_issued);
  EXPECT_LT(t.launch_issued, t.started);
  EXPECT_LE(t.started, t.finished);
}

TEST(ClusterMisc, ManySequentialJobsReuseResources) {
  sim::Simulator sim;
  Cluster cluster(sim, launch_config(4));
  for (int i = 0; i < 5; ++i) {
    const JobId id = cluster.submit({.binary_size = 1_MB, .npes = 16});
    ASSERT_TRUE(cluster.run_until_complete(id, 60_sec)) << "job " << i;
  }
  EXPECT_EQ(cluster.mm().completed_count(), 5);
  EXPECT_EQ(cluster.mm().matrix().job_count(), 0u);
}

}  // namespace
}  // namespace storm::core
