#include "storm/ousterhout_matrix.hpp"

#include <gtest/gtest.h>

namespace storm::core {
namespace {

TEST(Matrix, PlacesInLowestRowFirst) {
  OusterhoutMatrix m(8, 2);
  auto p1 = m.place(1, 8);
  ASSERT_TRUE(p1);
  EXPECT_EQ(p1->first, 0);  // row 0
  auto p2 = m.place(2, 8);
  ASSERT_TRUE(p2);
  EXPECT_EQ(p2->first, 1);  // row 1 (row 0 full)
  EXPECT_FALSE(m.place(3, 1).has_value()) << "matrix full";
}

TEST(Matrix, TwoJobsShareARow) {
  OusterhoutMatrix m(8, 2);
  auto p1 = m.place(1, 4);
  auto p2 = m.place(2, 4);
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(p1->first, 0);
  EXPECT_EQ(p2->first, 0);
  EXPECT_NE(p1->second.first, p2->second.first);
}

TEST(Matrix, RemoveFreesTheBlock) {
  OusterhoutMatrix m(8, 1);
  auto p1 = m.place(1, 8);
  ASSERT_TRUE(p1);
  EXPECT_FALSE(m.place(2, 1));
  m.remove(1);
  EXPECT_TRUE(m.place(2, 8).has_value());
}

TEST(Matrix, ActiveRows) {
  OusterhoutMatrix m(8, 4);
  EXPECT_TRUE(m.active_rows().empty());
  m.place(1, 8);
  m.place(2, 8);
  m.place(3, 8);
  EXPECT_EQ(m.active_rows(), (std::vector<int>{0, 1, 2}));
  m.remove(2);
  EXPECT_EQ(m.active_rows(), (std::vector<int>{0, 2}));
}

TEST(Matrix, JobsInRow) {
  OusterhoutMatrix m(8, 2);
  m.place(7, 4);
  m.place(9, 4);
  m.place(5, 8);
  EXPECT_EQ(m.jobs_in_row(0), (std::vector<JobId>{7, 9}));
  EXPECT_EQ(m.jobs_in_row(1), (std::vector<JobId>{5}));
}

TEST(Matrix, Occupancy) {
  OusterhoutMatrix m(8, 2);
  EXPECT_DOUBLE_EQ(m.occupancy(), 0.0);
  m.place(1, 8);
  EXPECT_DOUBLE_EQ(m.occupancy(), 0.5);
  m.place(2, 4);
  EXPECT_DOUBLE_EQ(m.occupancy(), 0.75);
}

TEST(Matrix, ContainsAndCount) {
  OusterhoutMatrix m(8, 2);
  EXPECT_FALSE(m.contains(1));
  m.place(1, 2);
  EXPECT_TRUE(m.contains(1));
  EXPECT_EQ(m.job_count(), 1u);
  m.remove(1);
  EXPECT_FALSE(m.contains(1));
}

TEST(Matrix, RoundsRequestsLikeBuddy) {
  OusterhoutMatrix m(8, 1);
  auto p = m.place(1, 3);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->second.count, 4);
}

}  // namespace
}  // namespace storm::core
