// Terascale node-state-plane tests: buddy/matrix invariants at 16k and
// 64k nodes, and the plane-mode (lean per-node) runtime against the
// full simulation at paper scale.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "storm/buddy_allocator.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "storm/ousterhout_matrix.hpp"
#include "storm/plane_runtime.hpp"
#include "storm/protocol.hpp"

namespace storm::core {
namespace {

using sim::SimTime;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

// ---------------------------------------------------------------------------
// BuddyAllocator at scale
// ---------------------------------------------------------------------------

void buddy_roundtrip(int size) {
  BuddyAllocator buddy(size);
  ASSERT_EQ(buddy.free_nodes(), size);

  // Carve the whole machine into blocks of mixed orders, verify
  // disjointness and alignment, then free in interleaved order and
  // check full coalescing.
  std::vector<net::NodeRange> blocks;
  std::vector<bool> owned(static_cast<std::size_t>(size), false);
  const int sizes[] = {1, 3, 8, 64, 1000, size / 16};
  int si = 0;
  for (;;) {
    const int want = sizes[si++ % std::size(sizes)];
    auto r = buddy.allocate(want);
    if (!r) break;
    EXPECT_GE(r->count, want);
    EXPECT_TRUE(BuddyAllocator::is_pow2(r->count));
    EXPECT_EQ(r->first % r->count, 0) << "block not naturally aligned";
    for (int n = r->first; n <= r->last(); ++n) {
      EXPECT_FALSE(owned[static_cast<std::size_t>(n)])
          << "node " << n << " double-allocated";
      owned[static_cast<std::size_t>(n)] = true;
    }
    blocks.push_back(*r);
  }
  EXPECT_GT(blocks.size(), 16u);

  // Free every other block, then re-allocate into the holes.
  for (std::size_t i = 0; i < blocks.size(); i += 2) {
    buddy.release(blocks[i]);
  }
  auto refill = buddy.allocate(1);
  ASSERT_TRUE(refill.has_value());
  buddy.release(*refill);
  for (std::size_t i = 1; i < blocks.size(); i += 2) {
    buddy.release(blocks[i]);
  }
  EXPECT_EQ(buddy.free_nodes(), size);
  EXPECT_EQ(buddy.largest_free_block(), size);
}

TEST(Terascale, BuddyRoundTrip16k) { buddy_roundtrip(16 * 1024); }
TEST(Terascale, BuddyRoundTrip64k) { buddy_roundtrip(64 * 1024); }

// ---------------------------------------------------------------------------
// OusterhoutMatrix column invariants at scale
// ---------------------------------------------------------------------------

void matrix_invariants(int nodes) {
  const int rows = 4;
  OusterhoutMatrix m(nodes, rows);

  // Fill all rows with jobs of mixed sizes; verify via the SoA cell
  // columns that no two live placements share a (row, node) slot and
  // that the visitation API agrees with a full scan.
  std::vector<JobId> placed;
  JobId next = 0;
  const int sizes[] = {nodes / 4, 17, 512, 1, nodes / 64};
  for (int si = 0;; ++si) {
    const JobId id = next++;
    if (!m.place(id, sizes[si % std::size(sizes)])) break;
    placed.push_back(id);
    if (placed.size() > 4096) break;  // plenty for the invariant
  }
  ASSERT_GT(placed.size(), 8u);

  // Column scan: each cell holds at most one job, and exactly the
  // job whose placement covers it.
  std::set<JobId> seen;
  for (int r = 0; r < rows; ++r) {
    for (const JobId id : m.row_jobs(r)) {
      EXPECT_TRUE(seen.insert(id).second)
          << "job " << id << " appears in two rows";
      auto p = m.placement(id);
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->first, r);
      for (int n = p->second.first; n <= p->second.last(); ++n) {
        EXPECT_EQ(m.cell_job(r, n), id)
            << "cell (" << r << "," << n << ") not owned by its placement";
      }
    }
  }
  EXPECT_EQ(seen.size(), placed.size());

  // Non-allocating visitation agrees with the legacy allocation API.
  const std::vector<int> legacy = m.active_rows();
  ASSERT_EQ(static_cast<int>(legacy.size()), m.active_row_count());
  for (int k = 0; k < m.active_row_count(); ++k) {
    EXPECT_EQ(m.nth_active_row(k), legacy[static_cast<std::size_t>(k)]);
  }

  // Evict a node mid-matrix, remove its jobs, verify no live cell
  // references it; then restore and verify re-placement works.
  const int victim = nodes / 2 + 1;
  for (const JobId id : std::vector<JobId>(placed)) {
    auto p = m.placement(id);
    if (p && p->second.contains(victim)) {
      m.remove(id);
      std::erase(placed, id);
    }
  }
  EXPECT_TRUE(m.evict_node(victim));
  EXPECT_TRUE(m.evicted(victim));
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(m.cell_job(r, victim), kInvalidJob);
  }
  m.restore_node(victim);
  EXPECT_FALSE(m.evicted(victim));

  for (const JobId id : placed) m.remove(id);
  EXPECT_EQ(m.occupancy(), 0.0);
  EXPECT_EQ(m.active_row_count(), 0);
}

TEST(Terascale, MatrixInvariants16k) { matrix_invariants(16 * 1024); }
TEST(Terascale, MatrixInvariants64k) { matrix_invariants(64 * 1024); }

// ---------------------------------------------------------------------------
// Plane-mode runtime vs the full simulation
// ---------------------------------------------------------------------------

ClusterConfig plane_config(int nodes, bool plane) {
  ClusterConfig cfg = ClusterConfig::es40(nodes);
  cfg.storm.quantum = 1_ms;
  cfg.plane_mode = plane;
  return cfg;
}

TEST(Terascale, PlaneModeTracksFullSimLaunch) {
  // The paper's headline launch (12 MB, 64 nodes): the lean plane
  // runtime must land near the full per-dæmon simulation — same
  // transfer pipeline, approximated NM/PL microcosm.
  auto run = [](bool plane) {
    sim::Simulator sim;
    Cluster cluster(sim, plane_config(64, plane));
    const JobId id = cluster.submit(
        {.name = "noop", .binary_size = 12_MB, .npes = 256});
    EXPECT_TRUE(cluster.run_until_all_complete(60_sec));
    return cluster.job(id).times();
  };
  const JobTimes full = run(false);
  const JobTimes lean = run(true);
  // Transfer (the dominant term) uses the real protocol in both modes.
  EXPECT_NEAR(lean.send_time().to_millis(), full.send_time().to_millis(),
              0.2 * full.send_time().to_millis());
  EXPECT_NEAR(lean.launch_time().to_millis(), full.launch_time().to_millis(),
              0.2 * full.launch_time().to_millis());
}

TEST(Terascale, PlaneModeIsDeterministic) {
  auto run = [] {
    sim::Simulator sim;
    Cluster cluster(sim, plane_config(256, true));
    const JobId id = cluster.submit(
        {.name = "noop", .binary_size = 4_MB, .npes = 512});
    EXPECT_TRUE(cluster.run_until_all_complete(60_sec));
    return cluster.job(id).times().launch_time();
  };
  const SimTime a = run();
  const SimTime b = run();
  EXPECT_EQ(a, b);
}

TEST(Terascale, PlaneModeGangWorkAccounting) {
  // Two MPL-2 gangs spanning the machine: each runs in its own
  // timeslot, so wall-clock is ~2x the per-job work and the normalized
  // runtime is within a few percent of the work itself (Table 8's
  // measurement, restated in plane mode).
  sim::Simulator sim;
  ClusterConfig cfg = plane_config(128, true);
  cfg.storm.quantum = 10_ms;
  cfg.storm.max_mpl = 2;
  Cluster cluster(sim, cfg);
  const SimTime work = 2_sec;
  std::vector<JobId> ids;
  for (int j = 0; j < 2; ++j) {
    ids.push_back(cluster.submit({.name = "synth",
                                  .binary_size = 1_MB,
                                  .npes = 128 * 4,
                                  .plane_work = work}));
  }
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  SimTime first = SimTime::max(), last = SimTime::zero();
  for (const JobId id : ids) {
    const auto& t = cluster.job(id).times();
    first = std::min(first, t.first_proc_started);
    last = std::max(last, t.last_proc_exited);
  }
  const double normalized = (last - first).to_seconds() / 2.0;
  EXPECT_GE(normalized, work.to_seconds());
  EXPECT_LT(normalized, work.to_seconds() * 1.10);
}

TEST(Terascale, PlaneModeHeartbeatAndStrobeSlots) {
  // The well-known plane slots are maintained by the lean runtime:
  // heartbeat epochs advance and the strobed row is readable across
  // the whole machine with plain word reads.
  sim::Simulator sim;
  ClusterConfig cfg = plane_config(256, true);
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 2;
  Cluster cluster(sim, cfg);
  const JobId id = cluster.submit({.name = "synth",
                                   .binary_size = 1_MB,
                                   .npes = 256,
                                   .plane_work = SimTime::ms(50)});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  ASSERT_EQ(cluster.job(id).state(), JobState::Completed);
  auto& plane = cluster.network().plane();
  EXPECT_GT(plane.word(17, kHeartbeatAddr), 0);
  EXPECT_EQ(plane.word(17, kHeartbeatAddr), plane.word(255, kHeartbeatAddr));
  EXPECT_EQ(plane.word(0, kStrobeRowAddr), plane.word(255, kStrobeRowAddr));
  EXPECT_NE(cluster.plane_runtime(), nullptr);
}

}  // namespace
}  // namespace storm::core
