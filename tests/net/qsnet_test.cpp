#include "net/qsnet.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace storm::net {
namespace {

using sim::Bandwidth;
using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

// ---------------------------------------------------------------------------
// Analytic broadcast-bandwidth model vs Table 4 of the paper.
// The paper's table was provided by Quadrics; our three-parameter fit
// (link payload rate, ack turnaround, wire delay) must land within a
// few percent on every cell.
// ---------------------------------------------------------------------------

struct Tab4Cell {
  int nodes;
  double cable_m;
  double mb_per_s;   // value printed in Table 4
  double tol_frac;   // acceptable relative error
};

class BroadcastModelTable4 : public ::testing::TestWithParam<Tab4Cell> {};

TEST_P(BroadcastModelTable4, MatchesPublishedCell) {
  const auto& c = GetParam();
  const Bandwidth bw =
      QsNet::model_broadcast_bandwidth(c.nodes, c.cable_m, QsNetParams{});
  EXPECT_NEAR(bw.to_mb_per_s(), c.mb_per_s, c.mb_per_s * c.tol_frac)
      << "nodes=" << c.nodes << " cable=" << c.cable_m;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, BroadcastModelTable4,
    ::testing::Values(
        // Corners and representative interior cells of Table 4.
        Tab4Cell{4, 10, 319, 0.02}, Tab4Cell{4, 100, 222, 0.03},
        Tab4Cell{16, 10, 319, 0.02}, Tab4Cell{16, 40, 287, 0.04},
        Tab4Cell{64, 10, 312, 0.04}, Tab4Cell{64, 100, 185, 0.04},
        Tab4Cell{256, 20, 256, 0.05}, Tab4Cell{256, 100, 170, 0.04},
        Tab4Cell{1024, 10, 243, 0.05}, Tab4Cell{1024, 60, 187, 0.04},
        Tab4Cell{4096, 10, 218, 0.05}, Tab4Cell{4096, 100, 147, 0.04}));

TEST(BroadcastModel, MonotoneInNodesAndCable) {
  const QsNetParams p{};
  for (int nodes : {4, 16, 64, 256, 1024, 4096}) {
    double prev = 1e18;
    for (double cable : {10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
      const double bw =
          QsNet::model_broadcast_bandwidth(nodes, cable, p).to_mb_per_s();
      EXPECT_LE(bw, prev + 1e-9);
      prev = bw;
    }
  }
  for (double cable : {10.0, 100.0}) {
    double prev = 1e18;
    for (int nodes : {4, 16, 64, 256, 1024, 4096}) {
      const double bw =
          QsNet::model_broadcast_bandwidth(nodes, cable, p).to_mb_per_s();
      EXPECT_LE(bw, prev + 1e-9);
      prev = bw;
    }
  }
}

TEST(BroadcastModel, PlacementCaps) {
  const QsNetParams p{};
  // Figure 7: 312 MB/s NIC-to-NIC vs 175 MB/s through main memory.
  const auto nic = QsNet::model_broadcast_bandwidth(64, 11.0, BufferPlace::NicMemory, p);
  const auto main = QsNet::model_broadcast_bandwidth(64, 11.0, BufferPlace::MainMemory, p);
  EXPECT_NEAR(nic.to_mb_per_s(), 312.0, 312 * 0.04);
  EXPECT_NEAR(main.to_mb_per_s(), 175.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Conditional (hardware barrier) latency vs Figure 9.
// ---------------------------------------------------------------------------

TEST(ConditionalLatency, MatchesFigure9Shape) {
  const QsNetParams p{};
  // ~4.5 us at trivial scale...
  const double lat1 =
      QsNet::model_conditional_latency(1, 2.0, p).to_micros();
  EXPECT_GT(lat1, 4.0);
  EXPECT_LT(lat1, 5.2);
  // ...~2 us growth out to 1024 nodes (the paper: "grows by a
  // negligible amount — about 2 us — across a 384X increase").
  const double lat1024 =
      QsNet::model_conditional_latency(1024, FatTree::floorplan_diameter_m(1024), p)
          .to_micros();
  EXPECT_GT(lat1024, lat1 + 0.5);
  EXPECT_LT(lat1024, lat1 + 3.0);
}

TEST(ConditionalLatency, MonotoneInNodes) {
  const QsNetParams p{};
  double prev = 0;
  for (int n : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double lat =
        QsNet::model_conditional_latency(n, FatTree::floorplan_diameter_m(n), p)
            .to_micros();
    EXPECT_GE(lat, prev);
    prev = lat;
  }
}

// ---------------------------------------------------------------------------
// Simulated primitives
// ---------------------------------------------------------------------------

class QsNetFixture : public ::testing::Test {
 protected:
  sim::Simulator sim;
  QsNet net{sim, 64};
};

TEST_F(QsNetFixture, PutTakesLatencyPlusTransferTime) {
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await net.put(0, 63, 1_MB);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  // 1 MiB at <= 230 MB/s (PCI-capped) is >= 4.5 ms; latency adds us.
  EXPECT_GT(done.to_millis(), 3.0);
  EXPECT_LT(done.to_millis(), 8.0);
}

TEST_F(QsNetFixture, PutLatencyScalesWithDistance) {
  SimTime near = SimTime::zero(), far = SimTime::zero();
  auto t = [&]() -> Task<> {
    SimTime t0 = sim.now();
    co_await net.put(0, 1, 0);  // zero-byte: latency only
    near = sim.now() - t0;
    t0 = sim.now();
    co_await net.put(0, 63, 0);
    far = sim.now() - t0;
  };
  sim.spawn(t());
  sim.run();
  EXPECT_GT(far, near);
}

TEST_F(QsNetFixture, BroadcastMainMemoryIsPciCapped) {
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await net.broadcast(0, NodeRange{0, 64}, 12_MB,
                           BufferPlace::MainMemory);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  // 12 MiB at 175 MB/s ~ 71.9 ms (+70 us setup).
  EXPECT_NEAR(done.to_millis(), 12.0 * 1.048576 / 175.0 * 1000.0, 1.0);
}

TEST_F(QsNetFixture, BroadcastNicMemoryIsFaster) {
  SimTime t_nic = SimTime::zero(), t_main = SimTime::zero();
  auto t = [&]() -> Task<> {
    SimTime t0 = sim.now();
    co_await net.broadcast(0, NodeRange{0, 64}, 8_MB, BufferPlace::NicMemory);
    t_nic = sim.now() - t0;
    t0 = sim.now();
    co_await net.broadcast(0, NodeRange{0, 64}, 8_MB, BufferPlace::MainMemory);
    t_main = sim.now() - t0;
  };
  sim.spawn(t());
  sim.run();
  EXPECT_LT(t_nic, t_main);
}

TEST_F(QsNetFixture, FabricLoadDegradesBroadcast) {
  SimTime unloaded = SimTime::zero(), loaded = SimTime::zero();
  auto t = [&]() -> Task<> {
    SimTime t0 = sim.now();
    co_await net.broadcast(0, NodeRange{0, 64}, 4_MB, BufferPlace::MainMemory);
    unloaded = sim.now() - t0;
    auto tok = net.add_fabric_load(9.0);
    t0 = sim.now();
    co_await net.broadcast(0, NodeRange{0, 64}, 4_MB, BufferPlace::MainMemory);
    loaded = sim.now() - t0;
  };
  sim.spawn(t());
  sim.run();
  // Weight 9 background -> rate / 10.
  EXPECT_GT(loaded.to_seconds(), unloaded.to_seconds() * 8.0);
  EXPECT_LT(loaded.to_seconds(), unloaded.to_seconds() * 12.0);
}

TEST_F(QsNetFixture, GlobalWordsDefaultToZero) {
  EXPECT_EQ(net.read_word(5, 17), 0);
  net.write_word(5, 17, 42);
  EXPECT_EQ(net.read_word(5, 17), 42);
  EXPECT_EQ(net.read_word(6, 17), 0);  // per-node storage
}

TEST_F(QsNetFixture, ConditionalTrueWhenAllSatisfy) {
  for (int n = 0; n < 64; ++n) net.write_word(n, 1, 10);
  bool result = false;
  auto t = [&]() -> Task<> {
    result = co_await net.conditional(0, NodeRange{0, 64}, 1, Compare::GE, 10);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_TRUE(result);
  EXPECT_GT(sim.now().to_micros(), 4.0);  // took the barrier latency
}

TEST_F(QsNetFixture, ConditionalFalseWhenOneLags) {
  for (int n = 0; n < 64; ++n) net.write_word(n, 1, 10);
  net.write_word(33, 1, 9);
  bool result = true;
  auto t = [&]() -> Task<> {
    result = co_await net.conditional(0, NodeRange{0, 64}, 1, Compare::GE, 10);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_FALSE(result);
}

TEST_F(QsNetFixture, ConditionalComparators) {
  net.write_word(3, 2, 5);
  auto check = [&](Compare cmp, std::int64_t operand) {
    bool r = false;
    auto t = [&]() -> Task<> {
      r = co_await net.conditional(0, NodeRange{3, 1}, 2, cmp, operand);
    };
    sim.spawn(t());
    sim.run();
    return r;
  };
  EXPECT_TRUE(check(Compare::GE, 5));
  EXPECT_FALSE(check(Compare::GE, 6));
  EXPECT_TRUE(check(Compare::LT, 6));
  EXPECT_FALSE(check(Compare::LT, 5));
  EXPECT_TRUE(check(Compare::EQ, 5));
  EXPECT_FALSE(check(Compare::EQ, 4));
  EXPECT_TRUE(check(Compare::NE, 4));
  EXPECT_FALSE(check(Compare::NE, 5));
}

TEST_F(QsNetFixture, ConditionalWriteSetsAllNodes) {
  auto t = [&]() -> Task<> {
    co_await net.conditional_write(0, NodeRange{8, 16}, 3, 77);
  };
  sim.spawn(t());
  sim.run();
  for (int n = 8; n < 24; ++n) EXPECT_EQ(net.read_word(n, 3), 77);
  EXPECT_EQ(net.read_word(7, 3), 0);
  EXPECT_EQ(net.read_word(24, 3), 0);
}

TEST_F(QsNetFixture, FailedNodeBreaksConditional) {
  for (int n = 0; n < 64; ++n) net.write_word(n, 1, 1);
  net.fail_node(20);
  bool result = true;
  auto t = [&]() -> Task<> {
    result = co_await net.conditional(0, NodeRange{0, 64}, 1, Compare::GE, 1);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_FALSE(result);
  net.recover_node(20);
  bool result2 = false;
  auto t2 = [&]() -> Task<> {
    result2 = co_await net.conditional(0, NodeRange{0, 64}, 1, Compare::GE, 1);
  };
  sim.spawn(t2());
  sim.run();
  EXPECT_TRUE(result2);
}

TEST_F(QsNetFixture, EventsCountSignals) {
  net.signal_local(4, 9, 2);
  EXPECT_TRUE(net.poll_event(4, 9));
  EXPECT_TRUE(net.poll_event(4, 9));
  EXPECT_FALSE(net.poll_event(4, 9));
}

TEST_F(QsNetFixture, WaitEventBlocksUntilSignalled) {
  SimTime woke = SimTime::zero();
  auto waiter = [&]() -> Task<> {
    co_await net.wait_event(7, 1);
    woke = sim.now();
  };
  auto signaller = [&]() -> Task<> {
    co_await sim.delay(3_ms);
    co_await net.signal_remote(0, 7, 1);
  };
  sim.spawn(waiter());
  sim.spawn(signaller());
  sim.run();
  EXPECT_GT(woke, 3_ms);            // signal latency added
  EXPECT_LT(woke, 3_ms + 10_us);
}

TEST_F(QsNetFixture, RemoteSignalToFailedNodeIsDropped) {
  net.fail_node(7);
  auto signaller = [&]() -> Task<> { co_await net.signal_remote(0, 7, 1); };
  sim.spawn(signaller());
  sim.run();
  EXPECT_FALSE(net.poll_event(7, 1));
}

TEST_F(QsNetFixture, SmallMessageBroadcastSkipsDmaSetup) {
  // Control messages (strobes, launch commands) ride the conditional
  // path: microseconds, not the 70 us DMA setup.
  SimTime t_small = SimTime::zero(), t_large = SimTime::zero();
  auto t = [&]() -> Task<> {
    SimTime t0 = sim.now();
    co_await net.broadcast(0, NodeRange{0, 64}, 64, BufferPlace::NicMemory);
    t_small = sim.now() - t0;
    t0 = sim.now();
    co_await net.broadcast(0, NodeRange{0, 64}, 64_KB,
                           BufferPlace::NicMemory);
    t_large = sim.now() - t0;
  };
  sim.spawn(t());
  sim.run();
  EXPECT_LT(t_small.to_micros(), 10.0);
  EXPECT_GT(t_large.to_micros(), 70.0);
}

TEST_F(QsNetFixture, SmallMessageLatencyScalesGently) {
  sim::Simulator s2;
  QsNet small_net(s2, 4);
  SimTime t4{};
  auto probe4 = [&]() -> Task<> {
    const SimTime t0 = s2.now();
    co_await small_net.broadcast(0, NodeRange{0, 4}, 64,
                                 BufferPlace::NicMemory);
    t4 = s2.now() - t0;
  };
  s2.spawn(probe4());
  s2.run();

  SimTime t64{};
  auto probe64 = [&]() -> Task<> {
    const SimTime t0 = sim.now();
    co_await net.broadcast(0, NodeRange{0, 64}, 64, BufferPlace::NicMemory);
    t64 = sim.now() - t0;
  };
  sim.spawn(probe64());
  sim.run();
  EXPECT_GT(t64, t4);
  EXPECT_LT(t64.to_micros(), t4.to_micros() + 2.0);
}

TEST_F(QsNetFixture, TrafficCountersAccumulate) {
  auto t = [&]() -> Task<> {
    co_await net.put(0, 1, 1000);
    co_await net.broadcast(0, NodeRange{0, 64}, 2000, BufferPlace::NicMemory);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_EQ(net.bytes_put(), 1000);
  EXPECT_EQ(net.bytes_broadcast(), 2000);
}

}  // namespace
}  // namespace storm::net
