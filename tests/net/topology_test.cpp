#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace storm::net {
namespace {

// Table 4's stage/switch columns: nodes -> (stages, switches crossed).
struct StageRow {
  int nodes;
  int stages;
  int switches;
};

class FatTreeStages : public ::testing::TestWithParam<StageRow> {};

TEST_P(FatTreeStages, MatchesTable4) {
  const auto& row = GetParam();
  EXPECT_EQ(FatTree::stages_for(row.nodes), row.stages);
  EXPECT_EQ(FatTree::switches_crossed(row.nodes), row.switches);
}

INSTANTIATE_TEST_SUITE_P(Table4, FatTreeStages,
                         ::testing::Values(StageRow{4, 1, 1},
                                           StageRow{16, 2, 3},
                                           StageRow{64, 3, 5},
                                           StageRow{256, 4, 7},
                                           StageRow{1024, 5, 9},
                                           StageRow{4096, 6, 11}));

TEST(FatTree, NonPowerOfFourRoundsUp) {
  EXPECT_EQ(FatTree::stages_for(5), 2);
  EXPECT_EQ(FatTree::stages_for(17), 3);
  EXPECT_EQ(FatTree::stages_for(65), 4);
  EXPECT_EQ(FatTree::stages_for(3), 1);
}

TEST(FatTree, SingleNode) {
  EXPECT_EQ(FatTree::stages_for(1), 1);
  EXPECT_EQ(FatTree::switches_crossed(1), 1);
}

TEST(FatTree, StagesBetweenLeaves) {
  // Same radix-4 leaf switch: 1 stage.
  EXPECT_EQ(FatTree::stages_between(0, 3), 1);
  EXPECT_EQ(FatTree::switches_between(0, 3), 1);
  // Adjacent quads: need stage 2.
  EXPECT_EQ(FatTree::stages_between(0, 4), 2);
  EXPECT_EQ(FatTree::switches_between(0, 4), 3);
  // Far apart in a 64-node system: 3 stages, 5 switches.
  EXPECT_EQ(FatTree::stages_between(0, 63), 3);
  EXPECT_EQ(FatTree::switches_between(0, 63), 5);
  // Same node: no switches.
  EXPECT_EQ(FatTree::switches_between(7, 7), 0);
}

TEST(FatTree, FloorplanDiameter) {
  // Equation 2: floor(sqrt(2 * nodes)).
  EXPECT_DOUBLE_EQ(FatTree::floorplan_diameter_m(64), 11.0);
  EXPECT_DOUBLE_EQ(FatTree::floorplan_diameter_m(4), 2.0);
  EXPECT_DOUBLE_EQ(FatTree::floorplan_diameter_m(4096), 90.0);
  EXPECT_DOUBLE_EQ(FatTree::floorplan_diameter_m(1024), 45.0);
}

TEST(NodeRange, Basics) {
  NodeRange r{4, 8};
  EXPECT_EQ(r.last(), 11);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(4));
  EXPECT_TRUE(r.contains(11));
  EXPECT_FALSE(r.contains(3));
  EXPECT_FALSE(r.contains(12));
  EXPECT_TRUE((NodeRange{0, 0}).empty());
}

TEST(FatTree, MonotoneStages) {
  int prev = 0;
  for (int n = 1; n <= 5000; ++n) {
    const int s = FatTree::stages_for(n);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace storm::net
