// NodeStatePlane: the structure-of-arrays per-node state backing
// QsNET's global memory words, failure flags and PL occupancy.
#include "net/node_state_plane.hpp"

#include <gtest/gtest.h>

namespace storm::net {
namespace {

TEST(BitWords, MaskedRangeScanBoundaries) {
  BitWords b(256);
  EXPECT_TRUE(b.none());
  b.set(63, true);
  // Word-straddling ranges: head/tail masks must clip exactly.
  EXPECT_TRUE(b.any_in(NodeRange{0, 64}));
  EXPECT_TRUE(b.any_in(NodeRange{63, 1}));
  EXPECT_TRUE(b.any_in(NodeRange{63, 2}));
  EXPECT_FALSE(b.any_in(NodeRange{0, 63}));
  EXPECT_FALSE(b.any_in(NodeRange{64, 192}));
  b.set(63, false);
  b.set(128, true);
  EXPECT_TRUE(b.any_in(NodeRange{127, 3}));
  EXPECT_FALSE(b.any_in(NodeRange{129, 64}));
  EXPECT_EQ(b.count(), 1);
  b.clear_all();
  EXPECT_TRUE(b.none());
}

TEST(NodeStatePlane, WellKnownAndBankedColumns) {
  NodeStatePlane p(1024);
  // Well-known addresses live in the dense SoA block.
  p.set_word(7, 0, 42);
  EXPECT_EQ(p.word(7, 0), 42);
  EXPECT_EQ(p.word(8, 0), 0);
  // App-defined addresses materialize a dense bank on first write;
  // reads from never-written banks are zero without allocating.
  EXPECT_EQ(p.word(1023, 500), 0);
  p.set_word(1023, 500, 7);
  EXPECT_EQ(p.word(1023, 500), 7);
  EXPECT_EQ(p.word(0, 500), 0);
}

TEST(NodeStatePlane, FillAndCompareRange) {
  NodeStatePlane p(512);
  const NodeRange r{100, 300};
  p.fill_words(r, 20, 5);
  EXPECT_EQ(p.word(100, 20), 5);
  EXPECT_EQ(p.word(399, 20), 5);
  EXPECT_EQ(p.word(99, 20), 0);
  EXPECT_EQ(p.word(400, 20), 0);
  EXPECT_TRUE(p.compare_all(r, 20, Compare::EQ, 5));
  EXPECT_TRUE(p.compare_all(r, 20, Compare::GE, 5));
  EXPECT_FALSE(p.compare_all(NodeRange{99, 301}, 20, Compare::EQ, 5));
  // Never-written address: the virtual zero column still compares.
  EXPECT_TRUE(p.compare_all(r, 21, Compare::EQ, 0));
  EXPECT_FALSE(p.compare_all(r, 21, Compare::GE, 1));
}

TEST(NodeStatePlane, FailedNodesPoisonRangeOps) {
  NodeStatePlane p(256);
  p.fill_words(NodeRange{0, 256}, 16, 1);
  EXPECT_TRUE(p.compare_all(NodeRange{0, 256}, 16, Compare::EQ, 1));
  p.set_failed(77, true);
  // A failed node never acks a conditional...
  EXPECT_FALSE(p.compare_all(NodeRange{0, 256}, 16, Compare::EQ, 1));
  EXPECT_TRUE(p.compare_all(NodeRange{78, 178}, 16, Compare::EQ, 1));
  // ...and discards writes while down.
  p.set_word(77, 16, 9);
  p.fill_words(NodeRange{0, 256}, 16, 2);
  p.set_failed(77, false);
  EXPECT_EQ(p.word(77, 16), 1) << "writes during the outage must be lost";
  EXPECT_EQ(p.word(78, 16), 2);
}

TEST(NodeStatePlane, ClearNodeWipesAllColumns) {
  NodeStatePlane p(64);
  p.set_word(5, 0, 3);
  p.set_word(5, 100, 4);
  p.set_word(6, 100, 5);
  p.clear_node(5);
  EXPECT_EQ(p.word(5, 0), 0);
  EXPECT_EQ(p.word(5, 100), 0);
  EXPECT_EQ(p.word(6, 100), 5);
}

TEST(NodeStatePlane, PlOccupancyMask) {
  NodeStatePlane p(8);
  EXPECT_FALSE(p.pl_busy(3, 0));
  p.set_pl_busy(3, 0, true);
  p.set_pl_busy(3, 63, true);
  EXPECT_TRUE(p.pl_busy(3, 0));
  EXPECT_TRUE(p.pl_busy(3, 63));
  EXPECT_FALSE(p.pl_busy(3, 1));
  EXPECT_FALSE(p.pl_busy(2, 0));
  p.set_pl_busy(3, 0, false);
  EXPECT_FALSE(p.pl_busy(3, 0));
  EXPECT_EQ(p.pl_mask(3), 1ULL << 63);
}

}  // namespace
}  // namespace storm::net
