#include "net/packet_sim.hpp"

#include <gtest/gtest.h>

namespace storm::net {
namespace {

using sim::Bytes;

TEST(PacketReplay, SinglePacketMessage) {
  const auto t = replay_broadcast(100, 64, 11.0);
  EXPECT_EQ(t.packets, 1);
  EXPECT_GT(t.total_time.to_micros(), 0.0);
}

TEST(PacketReplay, PacketCountRoundsUp) {
  const QsNetParams p{};
  EXPECT_EQ(replay_broadcast(p.mtu, 4, 10).packets, 1);
  EXPECT_EQ(replay_broadcast(p.mtu + 1, 4, 10).packets, 2);
  EXPECT_EQ(replay_broadcast(10 * p.mtu, 4, 10).packets, 10);
}

// Property: for long messages the packet-level replay must converge to
// the analytic steady-state model within 1%.
struct ConvergeCase {
  int nodes;
  double cable;
};

class ReplayVsModel : public ::testing::TestWithParam<ConvergeCase> {};

TEST_P(ReplayVsModel, SteadyStateAgreesWithin1Percent) {
  const auto& c = GetParam();
  const QsNetParams p{};
  const Bytes msg = 4 * 1024 * 1024;  // thousands of packets
  const auto replay = replay_broadcast(msg, c.nodes, c.cable, p);
  const auto model = QsNet::model_broadcast_bandwidth(c.nodes, c.cable, p);
  EXPECT_NEAR(replay.payload_bandwidth.to_mb_per_s(), model.to_mb_per_s(),
              model.to_mb_per_s() * 0.01)
      << "nodes=" << c.nodes << " cable=" << c.cable;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReplayVsModel,
    ::testing::Values(ConvergeCase{4, 10}, ConvergeCase{16, 30},
                      ConvergeCase{64, 10}, ConvergeCase{64, 100},
                      ConvergeCase{256, 40}, ConvergeCase{1024, 60},
                      ConvergeCase{4096, 100}));

TEST(PacketReplay, ShortMessagesPayLatencyProportionallyMore) {
  // Effective bandwidth must increase with message size (fixed tail
  // latency amortised) and stay below the model's steady-state value.
  const QsNetParams p{};
  const auto model = QsNet::model_broadcast_bandwidth(64, 11.0, p);
  double prev = 0;
  for (Bytes msg : {1024, 8 * 1024, 64 * 1024, 1024 * 1024}) {
    const auto r = replay_broadcast(msg, 64, 11.0, p);
    EXPECT_GE(r.payload_bandwidth.to_mb_per_s(), prev);
    EXPECT_LE(r.payload_bandwidth.to_mb_per_s(),
              model.to_mb_per_s() * 1.001);
    prev = r.payload_bandwidth.to_mb_per_s();
  }
}

TEST(PacketReplay, FirstAckBeforeTotalForMultiPacket) {
  const auto t = replay_broadcast(1024 * 1024, 64, 11.0);
  EXPECT_LT(t.first_ack, t.total_time);
}

TEST(PacketReplay, MoreSwitchesSlowTheAckLoop) {
  const auto small = replay_broadcast(1024 * 1024, 4, 50.0);
  const auto large = replay_broadcast(1024 * 1024, 4096, 50.0);
  EXPECT_GT(small.payload_bandwidth.to_mb_per_s(),
            large.payload_bandwidth.to_mb_per_s());
}

}  // namespace
}  // namespace storm::net
