// Coalesced periodic timers (the "timer wheel" of DESIGN §2.3): one
// heap event per cohort period fires every registered member, with
// exact-integer rearming, O(1) lazy cancellation, and cohort retire /
// slot reuse guarded by an epoch in the id.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace storm::sim {
namespace {

using namespace storm::sim::time_literals;

TEST(Periodic, CohortFiresAllMembersInRegistrationOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_periodic(10_us, 10_us, [&order, i] { order.push_back(i); });
  }
  sim.run(25_us);
  // Two periods (t=10, t=20), members back to back in registration
  // order inside each.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
  const PeriodicStats& st = sim.periodic_stats();
  EXPECT_EQ(st.cohort_fires, 2u);
  EXPECT_EQ(st.member_fires, 8u);
  EXPECT_EQ(st.coalesced, 6u);  // (4-1) saved events per period
}

TEST(Periodic, OneHeapEventPerPeriodRegardlessOfPopulation) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_periodic(1_ms, 1_ms, [&fired] { ++fired; });
  }
  // 1000 members, 3 periods: 1000 one-shot timers would need 3000
  // heap events; the cohort needs 3.
  const std::uint64_t events = sim.run(3500_us);
  EXPECT_EQ(fired, 3000);
  EXPECT_EQ(events, 3u);
}

TEST(Periodic, CancelMidPeriodStopsOnlyThatMember) {
  Simulator sim;
  int a = 0, b = 0;
  const PeriodicId ia =
      sim.schedule_periodic(10_us, 10_us, [&a] { ++a; });
  sim.schedule_periodic(10_us, 10_us, [&b] { ++b; });
  sim.run(25_us);  // two fires each
  EXPECT_TRUE(sim.cancel_periodic(ia));
  EXPECT_FALSE(sim.cancel_periodic(ia));  // already gone
  sim.run(45_us);  // two more periods
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 4);
}

TEST(Periodic, CancelDuringFireSkipsNotYetRunMember) {
  Simulator sim;
  int b_fires = 0;
  PeriodicId ib = kInvalidPeriodic;
  // Member 0 cancels member 1 from inside the same cohort fire:
  // member 1 must not run this period (or ever again).
  sim.schedule_periodic(10_us, 10_us,
                        [&sim, &ib] { sim.cancel_periodic(ib); });
  ib = sim.schedule_periodic(10_us, 10_us, [&b_fires] { ++b_fires; });
  sim.run(35_us);
  EXPECT_EQ(b_fires, 0);
}

TEST(Periodic, SelfCancelDuringFire) {
  Simulator sim;
  int fires = 0;
  PeriodicId id = kInvalidPeriodic;
  id = sim.schedule_periodic(10_us, 10_us, [&] {
    ++fires;
    sim.cancel_periodic(id);
  });
  sim.run(100_us);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.events_pending(), 0u);  // cohort retired, heap drained
}

TEST(Periodic, DriftFreeLongRun) {
  Simulator sim;
  // A deliberately awkward period: any floating-point rearm would
  // drift across 100k periods; exact-integer next_due += period must
  // not.
  const SimTime period = SimTime::ns(333'333);
  const SimTime first = SimTime::ns(777);
  std::uint64_t fires = 0;
  SimTime last = SimTime::zero();
  sim.schedule_periodic(period, first, [&] {
    ++fires;
    last = sim.now();
  });
  const std::uint64_t n = 100'000;
  sim.run(first + period * (n - 1));
  EXPECT_EQ(fires, n);
  EXPECT_EQ(last, first + period * (n - 1));  // zero accumulated drift
}

TEST(Periodic, LateJoinersFormTheirOwnCohort) {
  Simulator sim;
  std::vector<std::pair<SimTime, int>> log;
  sim.schedule_periodic(10_us, 10_us,
                        [&] { log.emplace_back(sim.now(), 0); });
  // Same period, different phase: must not join (its fire times
  // differ), but still fires drift-free on its own grid.
  sim.schedule_at(5_us, [&] {
    sim.schedule_periodic(10_us, 15_us,
                          [&] { log.emplace_back(sim.now(), 1); });
  });
  sim.run(30_us);
  const std::vector<std::pair<SimTime, int>> want = {
      {10_us, 0}, {15_us, 1}, {20_us, 0}, {25_us, 1}, {30_us, 0}};
  EXPECT_EQ(log, want);
}

TEST(Periodic, ScheduleFromInsideFireJoinsNextPeriod) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_periodic(10_us, 10_us, [&] {
    order.push_back(0);
    if (sim.now() == 10_us) {
      // Registered mid-fire: the firing cohort is not joinable (its
      // members vector is being walked), so this forms a sibling
      // cohort. Its event is scheduled during the member loop, the
      // original cohort re-arms after it — so at t=20 the newcomer's
      // event carries the earlier sequence number and fires first.
      sim.schedule_periodic(10_us, 20_us, [&] { order.push_back(1); });
    }
  });
  sim.run(25_us);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0}));
}

TEST(Periodic, RetiredCohortSlotIsReusedWithFreshEpoch) {
  Simulator sim;
  int old_fires = 0, new_fires = 0;
  const PeriodicId old_id =
      sim.schedule_periodic(10_us, 10_us, [&] { ++old_fires; });
  sim.run(15_us);
  EXPECT_TRUE(sim.cancel_periodic(old_id));
  // The cohort retired; a new registration reuses the slot under a
  // bumped epoch. The stale id must not be able to cancel it.
  const PeriodicId new_id =
      sim.schedule_periodic(20_us, 20_us, [&] { ++new_fires; });
  EXPECT_FALSE(sim.cancel_periodic(old_id));
  sim.run(45_us);
  EXPECT_EQ(old_fires, 1);
  EXPECT_EQ(new_fires, 2);
  EXPECT_TRUE(sim.cancel_periodic(new_id));
}

TEST(Periodic, ObserverSeesSavedEventsOnlyWhenCoalescing) {
  Simulator sim;
  static std::uint64_t saved_total;
  static int calls;
  saved_total = 0;
  calls = 0;
  sim.set_periodic_observer(
      [](void*, std::uint64_t saved) {
        saved_total += saved;
        ++calls;
      },
      nullptr);
  sim.schedule_periodic(10_us, 10_us, [] {});
  sim.run(25_us);
  EXPECT_EQ(calls, 0);  // single member: nothing coalesced
  sim.schedule_periodic(10_us, 30_us, [] {});
  sim.schedule_periodic(10_us, 30_us, [] {});
  sim.run(45_us);
  // t=30 and t=40 fire 3 members each: 2 saved per period.
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(saved_total, 4u);
  EXPECT_EQ(sim.periodic_stats().coalesced, 4u);
}

TEST(Periodic, DeterminismUnchangedAgainstPlainEvents) {
  // A cohort fire is one engine event: (time, seq) ordering against
  // plain events scheduled for the same instant follows schedule
  // order, exactly like any other event.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10_us, [&] { order.push_back(0); });
  sim.schedule_periodic(10_us, 10_us, [&] { order.push_back(1); });
  sim.schedule_at(10_us, [&] { order.push_back(2); });
  sim.run(10_us);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace storm::sim
