#include "sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace storm::sim {
namespace {

TEST(InlineCallback, DefaultIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.is_inline());
}

TEST(InlineCallback, InvokesSmallCapture) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, ExactlyInlineBytesStaysInline) {
  struct Exact {
    std::byte pad[InlineCallback::kInlineBytes - sizeof(int*)];
    int* out;
  };
  static_assert(sizeof(Exact) == InlineCallback::kInlineBytes);
  int val = 0;
  Exact capture{};
  capture.out = &val;
  InlineCallback cb([capture] { *capture.out += 7; });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(val, 7);
}

TEST(InlineCallback, OneByteOverSpillsToHeapAndStillWorks) {
  struct Spill {
    std::byte pad[InlineCallback::kInlineBytes - sizeof(int*) + 1];
    int* out;
  };
  static_assert(sizeof(Spill) > InlineCallback::kInlineBytes);
  int val = 0;
  Spill capture{};
  capture.out = &val;
  InlineCallback cb([capture] { *capture.out += 3; });
  EXPECT_FALSE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(val, 6);
}

TEST(InlineCallback, MoveTransfersInlineTarget) {
  int hits = 0;
  InlineCallback a([&hits] { ++hits; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineCallback c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MoveTransfersHeapTarget) {
  struct Big {
    std::byte pad[2 * InlineCallback::kInlineBytes];
    int* out;
  };
  int val = 0;
  Big capture{};
  capture.out = &val;
  InlineCallback a([capture] { ++*capture.out; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(b.is_inline());
  b();
  EXPECT_EQ(val, 1);
}

// A capture whose destructor is observable: non-trivial, nothrow-
// movable, small enough to stay inline. Exercises the non-trivial
// inline relocate/destroy path.
class DtorCounter {
 public:
  explicit DtorCounter(int* count) : count_(count) {}
  DtorCounter(DtorCounter&& o) noexcept : count_(std::exchange(o.count_, nullptr)) {}
  DtorCounter(const DtorCounter& o) = delete;
  DtorCounter& operator=(const DtorCounter&) = delete;
  DtorCounter& operator=(DtorCounter&&) = delete;
  ~DtorCounter() {
    if (count_ != nullptr) ++*count_;
  }
  void operator()() const {}

 private:
  int* count_;
};

TEST(InlineCallback, NonTrivialInlineCaptureDestroyedExactlyOnce) {
  int dtors = 0;
  {
    InlineCallback cb{DtorCounter(&dtors)};
    EXPECT_TRUE(cb.is_inline());
    cb();
    EXPECT_EQ(dtors, 0);
  }
  EXPECT_EQ(dtors, 1);
}

TEST(InlineCallback, NonTrivialCaptureSurvivesMoveChain) {
  int dtors = 0;
  {
    InlineCallback a{DtorCounter(&dtors)};
    InlineCallback b(std::move(a));
    InlineCallback c;
    c = std::move(b);
    EXPECT_EQ(dtors, 0);  // moved-from shells hold nothing to destroy
    c();
  }
  EXPECT_EQ(dtors, 1);
}

TEST(InlineCallback, MoveOnlyCaptureWorks) {
  auto owned = std::make_unique<int>(42);
  int seen = 0;
  InlineCallback cb([p = std::move(owned), &seen] { seen = *p; });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, ResetDestroysTarget) {
  int dtors = 0;
  InlineCallback cb{DtorCounter(&dtors)};
  cb.reset();
  EXPECT_EQ(dtors, 1);
  EXPECT_FALSE(static_cast<bool>(cb));
  cb.reset();  // idempotent
  EXPECT_EQ(dtors, 1);
}

TEST(InlineCallback, EmplaceReplacesTarget) {
  int dtors = 0;
  int hits = 0;
  InlineCallback cb{DtorCounter(&dtors)};
  cb.emplace([&hits] { ++hits; });
  EXPECT_EQ(dtors, 1);  // old target destroyed by emplace
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget) {
  int dtors = 0;
  int hits = 0;
  InlineCallback cb{DtorCounter(&dtors)};
  cb = InlineCallback([&hits] { ++hits; });
  EXPECT_EQ(dtors, 1);
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, OverAlignedCaptureSpillsToHeap) {
  struct alignas(2 * alignof(std::max_align_t)) OverAligned {
    int* out;
  };
  int val = 0;
  OverAligned capture{&val};
  InlineCallback cb([capture] { *capture.out = 9; });
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(val, 9);
}

}  // namespace
}  // namespace storm::sim
