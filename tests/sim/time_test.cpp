#include "sim/time.hpp"
#include "sim/units.hpp"

#include <gtest/gtest.h>

namespace storm::sim {
namespace {

using namespace storm::sim::time_literals;

TEST(SimTime, ConstructorsAgree) {
  EXPECT_EQ(SimTime::us(1), SimTime::ns(1000));
  EXPECT_EQ(SimTime::ms(1), SimTime::us(1000));
  EXPECT_EQ(SimTime::sec(1), SimTime::ms(1000));
  EXPECT_EQ(SimTime::seconds(1.5), SimTime::ms(1500));
  EXPECT_EQ(SimTime::millis(0.25), SimTime::us(250));
  EXPECT_EQ(SimTime::micros(2.5), SimTime::ns(2500));
}

TEST(SimTime, Literals) {
  EXPECT_EQ(5_ms, SimTime::ms(5));
  EXPECT_EQ(2.5_ms, SimTime::us(2500));
  EXPECT_EQ(300_us, SimTime::us(300));
  EXPECT_EQ(8_sec, SimTime::sec(8));
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(1_ms + 500_us, 1500_us);
  EXPECT_EQ(1_ms - 500_us, 500_us);
  EXPECT_EQ(3_ms * 4, 12_ms);
  EXPECT_EQ(12_ms / 4, 3_ms);
  EXPECT_EQ(12_ms / (3_ms), 4);
  EXPECT_EQ(10_ms * 0.5, 5_ms);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(1_us, 1_ms);
  EXPECT_GT(SimTime::max(), 100_sec * 1'000'000);
  EXPECT_EQ(SimTime::zero(), 0_ns);
  EXPECT_LE(SimTime::zero(), 0_ns);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ((1500_ms).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ((1500_us).to_millis(), 1.5);
  EXPECT_DOUBLE_EQ((1500_ns).to_micros(), 1.5);
}

TEST(SimTime, ToString) {
  EXPECT_EQ((500_ns).to_string(), "500 ns");
  EXPECT_EQ((2500_ns).to_string(), "2.500 us");
  EXPECT_EQ((1500_us).to_string(), "1.500 ms");
  EXPECT_EQ((2500_ms).to_string(), "2.500 s");
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KB, 1024);
  EXPECT_EQ(1_MB, 1024 * 1024);
  EXPECT_EQ(12_MB, Bytes{12} * 1024 * 1024);
  EXPECT_EQ(1_GB, Bytes{1} << 30);
}

TEST(Units, BandwidthTimeFor) {
  const auto bw = Bandwidth::mb_per_s(100.0);  // 1e8 B/s
  EXPECT_EQ(bw.time_for(100'000'000), SimTime::sec(1));
  EXPECT_EQ(bw.time_for(50'000'000), SimTime::ms(500));
  EXPECT_DOUBLE_EQ(bw.to_mb_per_s(), 100.0);
}

TEST(Units, BandwidthMin) {
  const auto a = Bandwidth::mb_per_s(218);
  const auto b = Bandwidth::mb_per_s(175);
  EXPECT_EQ(min(a, b).to_mb_per_s(), 175);
}

TEST(Units, BandwidthScaling) {
  const auto a = Bandwidth::mb_per_s(100) / 4.0;
  EXPECT_DOUBLE_EQ(a.to_mb_per_s(), 25.0);
  const auto b = Bandwidth::mb_per_s(100) * 2.0;
  EXPECT_DOUBLE_EQ(b.to_mb_per_s(), 200.0);
}

}  // namespace
}  // namespace storm::sim
