#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace storm::sim {
namespace {

using namespace storm::sim::time_literals;

TEST(Trigger, WaitersResumeOnFire) {
  Simulator sim;
  Trigger t(sim);
  int resumed = 0;
  auto waiter = [&]() -> Task<> {
    co_await t.wait();
    ++resumed;
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter());
  sim.run();
  EXPECT_EQ(resumed, 0);  // nothing fired yet
  t.fire();
  sim.run();
  EXPECT_EQ(resumed, 3);
}

TEST(Trigger, WaitAfterFireIsImmediate) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  SimTime when = SimTime::max();
  auto waiter = [&]() -> Task<> {
    co_await t.wait();
    when = sim.now();
  };
  sim.spawn(waiter());
  sim.run();
  EXPECT_EQ(when, SimTime::zero());
}

TEST(Trigger, DoubleFireIsIdempotent) {
  Simulator sim;
  Trigger t(sim);
  int resumed = 0;
  auto waiter = [&]() -> Task<> {
    co_await t.wait();
    ++resumed;
  };
  sim.spawn(waiter());
  t.fire();
  t.fire();
  sim.run();
  EXPECT_EQ(resumed, 1);
}

TEST(Trigger, ResetReArms) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  EXPECT_TRUE(t.fired());
  t.reset();
  EXPECT_FALSE(t.fired());
}

TEST(Signal, NotifyAllWakesOnlyCurrentWaiters) {
  Simulator sim;
  Signal s(sim);
  std::vector<int> wakes;
  auto waiter = [&](int id, int rounds) -> Task<> {
    for (int i = 0; i < rounds; ++i) {
      co_await s.wait();
      wakes.push_back(id);
    }
  };
  sim.spawn(waiter(1, 2));
  sim.spawn(waiter(2, 1));
  sim.run();
  s.notify_all();
  sim.run();
  EXPECT_EQ(wakes.size(), 2u);  // both woke once
  s.notify_all();
  sim.run();
  EXPECT_EQ(wakes.size(), 3u);  // only waiter 1 was still waiting
}

TEST(Signal, NotifyOneWakesFifo) {
  Simulator sim;
  Signal s(sim);
  std::vector<int> wakes;
  auto waiter = [&](int id) -> Task<> {
    co_await s.wait();
    wakes.push_back(id);
  };
  sim.spawn(waiter(1));
  sim.spawn(waiter(2));
  sim.run();
  EXPECT_EQ(s.waiting(), 2u);
  s.notify_one();
  sim.run();
  EXPECT_EQ(wakes, (std::vector<int>{1}));
  s.notify_one();
  sim.run();
  EXPECT_EQ(wakes, (std::vector<int>{1, 2}));
}

TEST(Semaphore, InitialCountGrantsWithoutBlocking) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int acquired = 0;
  auto worker = [&]() -> Task<> {
    co_await sem.acquire();
    ++acquired;
  };
  sim.spawn(worker());
  sim.spawn(worker());
  sim.spawn(worker());
  sim.run();
  EXPECT_EQ(acquired, 2);
  EXPECT_EQ(sem.waiting(), 1u);
  sem.release();
  sim.run();
  EXPECT_EQ(acquired, 3);
}

TEST(Semaphore, BoundsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 3);
  int active = 0, peak = 0, completed = 0;
  auto worker = [&]() -> Task<> {
    co_await sem.acquire();
    ++active;
    peak = std::max(peak, active);
    co_await sim.delay(1_ms);
    --active;
    ++completed;
    sem.release();
  };
  for (int i = 0; i < 10; ++i) sim.spawn(worker());
  sim.run();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(completed, 10);
}

TEST(Semaphore, TryAcquire) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, FifoFairness) {
  Simulator sim;
  Semaphore sem(sim, 0);
  std::vector<int> order;
  auto worker = [&](int id) -> Task<> {
    co_await sem.acquire();
    order.push_back(id);
  };
  for (int i = 0; i < 5; ++i) sim.spawn(worker(i));
  sim.run();
  sem.release(5);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, PutThenGet) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.put(42);
  int got = 0;
  auto reader = [&]() -> Task<> { got = co_await ch.get(); };
  sim.spawn(reader());
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(Channel, GetBlocksUntilPut) {
  Simulator sim;
  Channel<std::string> ch(sim);
  std::string got;
  SimTime when = SimTime::zero();
  auto reader = [&]() -> Task<> {
    got = co_await ch.get();
    when = sim.now();
  };
  sim.spawn(reader());
  sim.schedule_at(5_ms, [&] { ch.put("hello"); });
  sim.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(when, 5_ms);
}

TEST(Channel, FifoOrder) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  auto reader = [&]() -> Task<> {
    for (int i = 0; i < 5; ++i) got.push_back(co_await ch.get());
  };
  sim.spawn(reader());
  for (int i = 0; i < 5; ++i) ch.put(i);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, TryGetDoesNotStealReservedItems) {
  Simulator sim;
  Channel<int> ch(sim);
  int got = -1;
  auto reader = [&]() -> Task<> { got = co_await ch.get(); };
  sim.spawn(reader());
  sim.run();
  ch.put(1);  // reserved for the blocked reader
  EXPECT_FALSE(ch.try_get().has_value());
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST(Channel, TryGetTakesUnreservedItems) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.put(9);
  auto v = ch.try_get();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_FALSE(ch.try_get().has_value());
}

TEST(Channel, MultipleReaders) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  auto reader = [&]() -> Task<> { got.push_back(co_await ch.get()); };
  sim.spawn(reader());
  sim.spawn(reader());
  sim.run();
  ch.put(1);
  ch.put(2);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(WaitGroup, WaitsForAll) {
  Simulator sim;
  WaitGroup wg(sim);
  bool done = false;
  auto worker = [&](SimTime d) -> Task<> {
    co_await sim.delay(d);
    wg.done();
  };
  for (int i = 1; i <= 3; ++i) {
    wg.add();
    sim.spawn(worker(SimTime::ms(i)));
  }
  auto joiner = [&]() -> Task<> {
    co_await wg.wait();
    done = true;
  };
  sim.spawn(joiner());
  sim.run(2_ms);
  EXPECT_FALSE(done);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 3_ms);
}

TEST(WaitGroup, ZeroPendingFiresImmediately) {
  Simulator sim;
  WaitGroup wg(sim);
  wg.add();
  wg.done();
  bool done = false;
  auto joiner = [&]() -> Task<> {
    co_await wg.wait();
    done = true;
  };
  sim.spawn(joiner());
  sim.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace storm::sim
