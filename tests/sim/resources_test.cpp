#include "sim/resources.hpp"

#include <gtest/gtest.h>

namespace storm::sim {
namespace {

using namespace storm::sim::time_literals;

TEST(SharedBandwidth, SingleFlowFullCapacity) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(100));
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await pipe.transfer(100'000'000);  // 100 MB at 100 MB/s
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  EXPECT_NEAR(done.to_seconds(), 1.0, 1e-6);
}

TEST(SharedBandwidth, TwoEqualFlowsShareEqually) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(100));
  SimTime d1 = SimTime::zero(), d2 = SimTime::zero();
  auto t1 = [&]() -> Task<> {
    co_await pipe.transfer(50'000'000);
    d1 = sim.now();
  };
  auto t2 = [&]() -> Task<> {
    co_await pipe.transfer(50'000'000);
    d2 = sim.now();
  };
  sim.spawn(t1());
  sim.spawn(t2());
  sim.run();
  // Each gets 50 MB/s while both active: both finish at t=1s.
  EXPECT_NEAR(d1.to_seconds(), 1.0, 1e-6);
  EXPECT_NEAR(d2.to_seconds(), 1.0, 1e-6);
}

TEST(SharedBandwidth, ShortFlowFinishesThenLongSpeedsUp) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(100));
  SimTime d_short = SimTime::zero(), d_long = SimTime::zero();
  auto short_f = [&]() -> Task<> {
    co_await pipe.transfer(25'000'000);
    d_short = sim.now();
  };
  auto long_f = [&]() -> Task<> {
    co_await pipe.transfer(100'000'000);
    d_long = sim.now();
  };
  sim.spawn(short_f());
  sim.spawn(long_f());
  sim.run();
  // Shared 50/50 until short finishes at 0.5s (25MB at 50MB/s); long
  // has 75MB left, now at full 100MB/s: +0.75s => 1.25s total.
  EXPECT_NEAR(d_short.to_seconds(), 0.5, 1e-6);
  EXPECT_NEAR(d_long.to_seconds(), 1.25, 1e-6);
}

TEST(SharedBandwidth, LateArrivalSlowsExisting) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(100));
  SimTime d1 = SimTime::zero();
  auto f1 = [&]() -> Task<> {
    co_await pipe.transfer(100'000'000);
    d1 = sim.now();
  };
  auto f2 = [&]() -> Task<> {
    co_await sim.delay(500_ms);
    co_await pipe.transfer(100'000'000);
  };
  sim.spawn(f1());
  sim.spawn(f2());
  sim.run();
  // f1: 50MB in first 0.5s, then 50MB at 50MB/s => 1.5s.
  EXPECT_NEAR(d1.to_seconds(), 1.5, 1e-6);
}

TEST(SharedBandwidth, WeightedShares) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(120));
  SimTime d_heavy = SimTime::zero();
  auto heavy = [&]() -> Task<> {
    co_await pipe.transfer(80'000'000, /*weight=*/2.0);
    d_heavy = sim.now();
  };
  auto light = [&]() -> Task<> { co_await pipe.transfer(200'000'000, 1.0); };
  sim.spawn(heavy());
  sim.spawn(light());
  sim.run();
  // heavy rate = 120 * 2/3 = 80 MB/s -> 1.0s.
  EXPECT_NEAR(d_heavy.to_seconds(), 1.0, 1e-6);
}

TEST(SharedBandwidth, BackgroundLoadReducesShare) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(100));
  auto load = pipe.add_background_load(3.0);  // flow gets 1/4 of pipe
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await pipe.transfer(25'000'000);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  EXPECT_NEAR(done.to_seconds(), 1.0, 1e-6);  // 25MB at 25MB/s
}

TEST(SharedBandwidth, BackgroundLoadCloseRestoresCapacity) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(100));
  auto load = pipe.add_background_load(1.0);
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await pipe.transfer(100'000'000);
    done = sim.now();
  };
  sim.spawn(t());
  sim.schedule_at(500_ms, [&] { load.close(); });
  sim.run();
  // 25MB in the first 0.5s (50 MB/s), then 75MB at 100 MB/s => 1.25s.
  EXPECT_NEAR(done.to_seconds(), 1.25, 1e-6);
}

TEST(SharedBandwidth, ZeroByteTransferCompletesInstantly) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(100));
  bool done = false;
  auto t = [&]() -> Task<> {
    co_await pipe.transfer(0);
    done = true;
  };
  sim.spawn(t());
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(SharedBandwidth, ManySequentialTransfersConserveTime) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(10));
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    for (int i = 0; i < 10; ++i) co_await pipe.transfer(1'000'000);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  EXPECT_NEAR(done.to_seconds(), 1.0, 1e-5);
}

TEST(SharedBandwidth, CurrentShareReflectsLoad) {
  Simulator sim;
  SharedBandwidth pipe(sim, Bandwidth::mb_per_s(100));
  EXPECT_DOUBLE_EQ(pipe.current_share().to_mb_per_s(), 100.0);
  auto l1 = pipe.add_background_load(1.0);
  auto l2 = pipe.add_background_load(1.0);
  EXPECT_DOUBLE_EQ(pipe.current_share().to_mb_per_s(), 50.0);
}

}  // namespace
}  // namespace storm::sim
