#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace storm::sim {
namespace {

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Series, MeanMinMax) {
  Series s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Series, MedianOdd) {
  Series s;
  for (double v : {9.0, 1.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(Series, MedianEvenInterpolates) {
  Series s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Series, Percentiles) {
  Series s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
}

TEST(Series, PercentileCacheInvalidatedByAdd) {
  Series s;
  for (double v : {5.0, 1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);  // sorts and caches
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);    // served from the cache
  s.add(9.0);                                // must invalidate
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.5);
  // values() keeps insertion order regardless of percentile calls.
  EXPECT_EQ(s.values().front(), 5.0);
  EXPECT_EQ(s.values().back(), 0.5);
}

TEST(Series, EmptyIsSafe) {
  Series s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

}  // namespace
}  // namespace storm::sim
