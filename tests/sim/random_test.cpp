#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace storm::sim {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIndependence) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  // Child streams must differ from each other.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.next() == c2.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(7), p2(7);
  Rng a = p1.fork(5);
  Rng b = p2.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, Uniform01Bounds) {
  Rng r(3);
  for (int i = 0; i < 100'000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Moments) {
  Rng r(11);
  double sum = 0, sumsq = 0;
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform01();
    sum += u;
    sumsq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sumsq / n - (sum / n) * (sum / n), 1.0 / 12.0, 0.002);
}

TEST(Rng, BelowRangeAndCoverage) {
  Rng r(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10'000, 500);
}

TEST(Rng, BelowZeroAndOne) {
  Rng r(5);
  EXPECT_EQ(r.below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  double sum = 0, sumsq = 0;
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(std::sqrt(sumsq / n - mean * mean), 2.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng r(19);
  std::vector<double> v;
  constexpr int n = 100'001;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(r.lognormal_median(4.0, 0.5));
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  EXPECT_NEAR(v[n / 2], 4.0, 0.1);
}

TEST(Rng, ParetoMinimum) {
  Rng r(23);
  for (int i = 0; i < 10'000; ++i) ASSERT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliProbability) {
  Rng r(29);
  int hits = 0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace storm::sim
