#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace storm::sim {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer& t = Tracer::instance();
  t.disable_all();
  EXPECT_FALSE(t.is_enabled("mm"));
  EXPECT_FALSE(t.is_enabled("nm"));
}

TEST(Tracer, PerComponentEnable) {
  Tracer& t = Tracer::instance();
  t.disable_all();
  t.enable("mm");
  EXPECT_TRUE(t.is_enabled("mm"));
  EXPECT_FALSE(t.is_enabled("nm"));
  t.disable_all();
}

TEST(Tracer, EnableAllCoversEverything) {
  Tracer& t = Tracer::instance();
  t.disable_all();
  t.enable_all();
  EXPECT_TRUE(t.is_enabled("anything"));
  t.disable_all();
  EXPECT_FALSE(t.is_enabled("anything"));
}

}  // namespace
}  // namespace storm::sim
