#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace storm::sim {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer& t = Tracer::instance();
  t.disable_all();
  EXPECT_FALSE(t.is_enabled("mm"));
  EXPECT_FALSE(t.is_enabled("nm"));
}

TEST(Tracer, PerComponentEnable) {
  Tracer& t = Tracer::instance();
  t.disable_all();
  t.enable("mm");
  EXPECT_TRUE(t.is_enabled("mm"));
  EXPECT_FALSE(t.is_enabled("nm"));
  t.disable_all();
}

TEST(Tracer, EnableAllCoversEverything) {
  Tracer& t = Tracer::instance();
  t.disable_all();
  t.enable_all();
  EXPECT_TRUE(t.is_enabled("anything"));
  t.disable_all();
  EXPECT_FALSE(t.is_enabled("anything"));
}

TEST(Tracer, LineObserverSeesEmittedLinesOnly) {
  Simulator sim;
  Tracer& t = Tracer::instance();
  t.disable_all();
  t.enable("mm");
  std::vector<std::string> seen;
  t.set_line_observer([&](std::string_view c) { seen.emplace_back(c); });

  testing::internal::CaptureStderr();
  STORM_TRACE(sim, "mm", "emitted");
  STORM_TRACE(sim, "nm", "suppressed");
  testing::internal::GetCapturedStderr();

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "mm");

  // Detach: further lines are emitted but not observed.
  t.set_line_observer({});
  testing::internal::CaptureStderr();
  STORM_TRACE(sim, "mm", "unobserved");
  testing::internal::GetCapturedStderr();
  EXPECT_EQ(seen.size(), 1u);
  t.disable_all();
}

}  // namespace
}  // namespace storm::sim
