#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace storm::sim {
namespace {

using namespace storm::sim::time_literals;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_us, [&] { order.push_back(3); });
  sim.schedule_at(10_us, [&] { order.push_back(1); });
  sim.schedule_at(20_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_us);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5_us, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(10_us, [&] {
    sim.schedule_after(5_us, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 15_us);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10_us, [&] { ran = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1_us, [&] { order.push_back(1); });
  const EventId id = sim.schedule_at(2_us, [&] { order.push_back(2); });
  sim.schedule_at(3_us, [&] { order.push_back(3); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule_at(SimTime::us(i), [&] { ++count; });
  sim.run(5_us);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 5_us);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunForAdvancesRelative) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule_at(SimTime::ms(i), [&] { ++count; });
  sim.run_for(3_ms);
  EXPECT_EQ(count, 3);
  sim.run_for(3_ms);
  EXPECT_EQ(count, 6);
  EXPECT_EQ(sim.now(), 6_ms);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run(7_ms);
  EXPECT_EQ(sim.now(), 7_ms);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_us, [&] { ++count; });
  sim.schedule_at(2_us, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(SimTime::us(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, CascadingEventsAtSameTime) {
  // An event scheduling another event at the same timestamp: the new
  // one runs after everything already queued for that time.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1_us, [&] {
    order.push_back(1);
    sim.schedule_at(1_us, [&] { order.push_back(3); });
  });
  sim.schedule_at(1_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, DeterministicRngStream) {
  Simulator a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng().next(), b.rng().next());
}

TEST(Simulator, ManyEventsStress) {
  Simulator sim;
  std::uint64_t sum = 0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i)
    sim.schedule_at(SimTime::ns((i * 7919) % 1'000'000), [&sum] { ++sum; });
  sim.run();
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n));
}

}  // namespace
}  // namespace storm::sim
