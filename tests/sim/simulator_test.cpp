#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace storm::sim {
namespace {

using namespace storm::sim::time_literals;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_us, [&] { order.push_back(3); });
  sim.schedule_at(10_us, [&] { order.push_back(1); });
  sim.schedule_at(20_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_us);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5_us, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(10_us, [&] {
    sim.schedule_after(5_us, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 15_us);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10_us, [&] { ran = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1_us, [&] { order.push_back(1); });
  const EventId id = sim.schedule_at(2_us, [&] { order.push_back(2); });
  sim.schedule_at(3_us, [&] { order.push_back(3); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule_at(SimTime::us(i), [&] { ++count; });
  sim.run(5_us);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 5_us);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunForAdvancesRelative) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule_at(SimTime::ms(i), [&] { ++count; });
  sim.run_for(3_ms);
  EXPECT_EQ(count, 3);
  sim.run_for(3_ms);
  EXPECT_EQ(count, 6);
  EXPECT_EQ(sim.now(), 6_ms);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run(7_ms);
  EXPECT_EQ(sim.now(), 7_ms);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_us, [&] { ++count; });
  sim.schedule_at(2_us, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(SimTime::us(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, CascadingEventsAtSameTime) {
  // An event scheduling another event at the same timestamp: the new
  // one runs after everything already queued for that time.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1_us, [&] {
    order.push_back(1);
    sim.schedule_at(1_us, [&] { order.push_back(3); });
  });
  sim.schedule_at(1_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, DeterministicRngStream) {
  Simulator a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng().next(), b.rng().next());
}

TEST(Simulator, StaleIdFromRecycledSlotDoesNotCancel) {
  // Cancelling releases the arena slot; the next schedule reuses it.
  // The stale handle carries the old generation, so it must neither
  // report pending nor cancel the new occupant.
  Simulator sim;
  bool new_ran = false;
  const EventId stale = sim.schedule_at(10_us, [] {});
  EXPECT_TRUE(sim.cancel(stale));
  const EventId fresh = sim.schedule_at(20_us, [&] { new_ran = true; });
  ASSERT_NE(stale, fresh);  // same slot, different generation
  EXPECT_FALSE(sim.pending(stale));
  EXPECT_FALSE(sim.cancel(stale));
  EXPECT_TRUE(sim.pending(fresh));
  sim.run();
  EXPECT_TRUE(new_ran);
}

TEST(Simulator, StaleIdAfterExecutionDoesNotCancel) {
  // Execution also retires the slot: a handle to an already-fired
  // event must not affect a later event recycled into the same slot.
  Simulator sim;
  const EventId first = sim.schedule_at(1_us, [] {});
  sim.run();
  EXPECT_FALSE(sim.pending(first));
  int ran = 0;
  const EventId second = sim.schedule_at(2_us, [&] { ++ran; });
  EXPECT_FALSE(sim.cancel(first));  // stale: same slot, older generation
  EXPECT_TRUE(sim.pending(second));
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, GenerationSurvivesManyReuses) {
  Simulator sim;
  std::vector<EventId> history;
  for (int i = 0; i < 100; ++i) {
    const EventId id = sim.schedule_at(SimTime::us(i + 1), [] {});
    history.push_back(id);
    EXPECT_TRUE(sim.cancel(id));
  }
  // Every retired handle is dead, and none can cancel the live one.
  const EventId live = sim.schedule_at(1_ms, [] {});
  for (const EventId id : history) {
    EXPECT_FALSE(sim.pending(id));
    EXPECT_FALSE(sim.cancel(id));
  }
  EXPECT_TRUE(sim.pending(live));
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(Simulator, PendingFalseAfterRunPast) {
  Simulator sim;
  const EventId fired = sim.schedule_at(10_us, [] {});
  const EventId cancelled = sim.schedule_at(20_us, [] {});
  sim.cancel(cancelled);
  sim.run(1_ms);  // runs past both times
  EXPECT_FALSE(sim.pending(fired));
  EXPECT_FALSE(sim.pending(cancelled));
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.now(), 1_ms);
}

TEST(Simulator, RunCountsOnlyExecutedEvents) {
  // Cancelled same-time entries are skimmed off the heap inside run();
  // they must not count against the returned total.
  Simulator sim;
  int ran = 0;
  sim.schedule_at(5_us, [&] { ++ran; });
  const EventId a = sim.schedule_at(5_us, [&] { ++ran; });
  const EventId b = sim.schedule_at(5_us, [&] { ++ran; });
  sim.schedule_at(5_us, [&] { ++ran; });
  sim.cancel(a);
  sim.cancel(b);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, RunReturnMatchesExecutedAcrossCancellingCallbacks) {
  // An event cancelling a later same-time event mid-run must keep
  // run()'s return value equal to the growth of events_executed().
  Simulator sim;
  EventId victim = kInvalidEvent;
  sim.schedule_at(1_us, [&] { sim.cancel(victim); });
  victim = sim.schedule_at(1_us, [] {});
  sim.schedule_at(1_us, [] {});
  const std::uint64_t before = sim.events_executed();
  const std::uint64_t n = sim.run();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(sim.events_executed() - before, n);
}

TEST(Simulator, FiringEventIsNotPendingInsideItsCallback) {
  // Matches the old erase-then-call kernel: during the callback, the
  // firing event's own id is already dead.
  Simulator sim;
  EventId self = kInvalidEvent;
  bool was_pending = true;
  bool cancelled_self = true;
  self = sim.schedule_at(1_us, [&] {
    was_pending = sim.pending(self);
    cancelled_self = sim.cancel(self);
  });
  sim.run();
  EXPECT_FALSE(was_pending);
  EXPECT_FALSE(cancelled_self);
}

TEST(Simulator, EventIdsAreNeverInvalid) {
  Simulator sim;
  for (int i = 0; i < 1000; ++i) {
    const EventId id = sim.schedule_at(SimTime::us(1), [] {});
    EXPECT_NE(id, kInvalidEvent);
    sim.cancel(id);
  }
}

TEST(Simulator, ManyEventsStress) {
  Simulator sim;
  std::uint64_t sum = 0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i)
    sim.schedule_at(SimTime::ns((i * 7919) % 1'000'000), [&sum] { ++sum; });
  sim.run();
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n));
}

}  // namespace
}  // namespace storm::sim
