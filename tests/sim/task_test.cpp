#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace storm::sim {
namespace {

using namespace storm::sim::time_literals;

TEST(Task, SpawnRunsImmediately) {
  Simulator sim;
  bool ran = false;
  auto coro = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  sim.spawn(coro());
  EXPECT_TRUE(ran);  // spawn starts the task synchronously
}

TEST(Task, LazyUntilSpawned) {
  Simulator sim;
  bool ran = false;
  auto coro = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  {
    Task<> t = coro();
    EXPECT_FALSE(ran);  // not started
  }                     // destroyed without running: no leak, no run
  EXPECT_FALSE(ran);
}

TEST(Task, DelaySuspendsForSimTime) {
  Simulator sim;
  SimTime resumed = SimTime::zero();
  auto coro = [&]() -> Task<> {
    co_await sim.delay(5_ms);
    resumed = sim.now();
  };
  sim.spawn(coro());
  sim.run();
  EXPECT_EQ(resumed, 5_ms);
}

TEST(Task, SequentialDelays) {
  Simulator sim;
  std::vector<SimTime> marks;
  auto coro = [&]() -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await sim.delay(10_us);
      marks.push_back(sim.now());
    }
  };
  sim.spawn(coro());
  sim.run();
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_EQ(marks[0], 10_us);
  EXPECT_EQ(marks[1], 20_us);
  EXPECT_EQ(marks[2], 30_us);
}

TEST(Task, AwaitSubtaskPropagatesValue) {
  Simulator sim;
  int result = 0;
  auto child = [&](int x) -> Task<int> {
    co_await sim.delay(1_ms);
    co_return x * 2;
  };
  auto parent = [&]() -> Task<> {
    result = co_await child(21);
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(Task, AwaitVoidSubtask) {
  Simulator sim;
  std::vector<int> order;
  auto child = [&]() -> Task<> {
    order.push_back(1);
    co_await sim.delay(1_ms);
    order.push_back(2);
  };
  auto parent = [&]() -> Task<> {
    co_await child();
    order.push_back(3);
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Task, DeepNestingSymmetricTransfer) {
  // 50k-deep chain of immediate awaits must not blow the stack.
  Simulator sim;
  int leaf_hits = 0;
  std::function<Task<int>(int)> rec = [&](int depth) -> Task<int> {
    if (depth == 0) {
      ++leaf_hits;
      co_return 1;
    }
    co_return 1 + co_await rec(depth - 1);
  };
  int result = 0;
  auto root = [&]() -> Task<> { result = co_await rec(50'000); };
  sim.spawn(root());
  sim.run();
  EXPECT_EQ(result, 50'001);
  EXPECT_EQ(leaf_hits, 1);
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  auto child = [&]() -> Task<> {
    co_await sim.delay(1_us);
    throw std::runtime_error("boom");
  };
  auto parent = [&]() -> Task<> {
    try {
      co_await child();
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "boom";
    }
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ValueTaskWithImmediateReturn) {
  Simulator sim;
  int v = 0;
  auto child = []() -> Task<int> { co_return 7; };
  auto parent = [&]() -> Task<> { v = co_await child(); };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(v, 7);
}

TEST(Task, ManyConcurrentTasks) {
  Simulator sim;
  int completed = 0;
  auto worker = [&](int i) -> Task<> {
    co_await sim.delay(SimTime::us(i % 100));
    ++completed;
  };
  for (int i = 0; i < 1000; ++i) sim.spawn(worker(i));
  sim.run();
  EXPECT_EQ(completed, 1000);
}

TEST(Task, YieldOrdersBehindSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  auto t = [&]() -> Task<> {
    order.push_back(1);
    co_await sim.yield();
    order.push_back(3);
  };
  sim.schedule_at(SimTime::zero(), [&] { order.push_back(2); });
  sim.spawn(t());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Task, MoveSemantics) {
  Simulator sim;
  bool ran = false;
  auto coro = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  Task<> a = coro();
  Task<> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  sim.spawn(std::move(b));
  EXPECT_FALSE(b.valid());
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace storm::sim
