#!/usr/bin/env bash
# Regenerate the pinned-figure goldens from the current build.
#
# Run from the repo root after a deliberate, reviewed behaviour change:
#   bash tests/golden/regen.sh [build-dir]
#
# Captures stdout/--metrics verbatim plus a SHA-256 manifest covering
# the multi-MB --trace/--state snapshots (which are not committed).
# stderr is dropped: it carries the peak-RSS line, which varies run to
# run and is deliberately outside the byte-identity contract.
set -euo pipefail
build=${1:-build}
cd "$(dirname "$0")"

declare -A bench=(
  [fig02]=fig02_launch_unloaded
  [fig04]=fig04_time_quantum
  [fig05]=fig05_node_scalability
  [tab08]=tab08_feasible_quantum
)

for short in fig02 fig04 fig05 tab08; do
  "../../${build}/bench/${bench[$short]}" --fast \
    --metrics "$short.metrics.json" \
    --trace "$short.trace.json" \
    --state "$short.state.json" \
    > "$short.stdout.txt" 2>/dev/null
  # The "proc" line carries peak RSS — nondeterministic, outside the
  # byte-identity contract (check_golden.cmake strips it the same way).
  sed -i '/^  "proc": /d' "$short.metrics.json"
done

sha256sum fig02.* fig04.* fig05.* tab08.* > MANIFEST.sha256
rm -f ./*.trace.json ./*.state.json
echo "goldens regenerated; review the diff before committing"
