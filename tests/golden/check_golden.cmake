# Golden byte-identity check for the pinned figures (DESIGN §2.3's
# proof obligation): rerun one bench in --fast mode and require all
# four artifact kinds — stdout, --metrics, --trace, --state — to be
# byte-identical to the committed goldens.
#
#   cmake -DBENCH=<binary> -DNAME=fig05 -DGOLDEN=<tests/golden>
#         -DWORK=<scratch dir> -DJOBS=<0|N> -P check_golden.cmake
#
# stdout and metrics goldens are committed verbatim (small, and a
# broken run produces a readable diff); trace and state snapshots are
# multi-MB, so only their SHA-256 lives in MANIFEST.sha256.
#
# The bench runs with WORK as its cwd and bare output filenames: the
# "wrote ... to <path>" echo lines are part of stdout, so the names
# must match the ones used when the goldens were captured.

foreach(var BENCH NAME GOLDEN WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_golden.cmake: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED JOBS)
  set(JOBS 0)
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

set(args --fast
    --metrics ${NAME}.metrics.json
    --trace ${NAME}.trace.json
    --state ${NAME}.state.json)
if(JOBS GREATER 0)
  list(APPEND args --jobs ${JOBS})
endif()

execute_process(
  COMMAND ${BENCH} ${args}
  WORKING_DIRECTORY ${WORK}
  OUTPUT_FILE ${WORK}/${NAME}.stdout.txt
  ERROR_VARIABLE bench_stderr
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${NAME} exited with ${rc}:\n${bench_stderr}")
endif()

# `--metrics` embeds the process peak RSS on a single "proc" line —
# the one nondeterministic field in the file. Strip it before the
# compare; the goldens are committed without it (regen.sh strips too).
file(READ ${WORK}/${NAME}.metrics.json metrics_raw)
string(REGEX REPLACE "  \"proc\": [^\n]*\n" "" metrics_raw "${metrics_raw}")
file(WRITE ${WORK}/${NAME}.metrics.json "${metrics_raw}")

# Small artifacts: full byte compare for a readable failure.
foreach(kind stdout.txt metrics.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK}/${NAME}.${kind} ${GOLDEN}/${NAME}.${kind}
    RESULT_VARIABLE differs)
  if(NOT differs EQUAL 0)
    message(FATAL_ERROR
        "byte-identity broken: ${NAME}.${kind} (jobs=${JOBS}) differs from "
        "${GOLDEN}/${NAME}.${kind}; rerun tests/golden/regen.sh if the "
        "change is intentional")
  endif()
endforeach()

# Large artifacts: SHA-256 against the manifest.
file(STRINGS ${GOLDEN}/MANIFEST.sha256 manifest)
foreach(kind trace.json state.json)
  file(SHA256 ${WORK}/${NAME}.${kind} got)
  set(want "")
  foreach(line IN LISTS manifest)
    if(line MATCHES "^([0-9a-f]+)  ${NAME}\\.${kind}$")
      set(want ${CMAKE_MATCH_1})
    endif()
  endforeach()
  if(want STREQUAL "")
    message(FATAL_ERROR "MANIFEST.sha256 has no entry for ${NAME}.${kind}")
  endif()
  if(NOT got STREQUAL want)
    message(FATAL_ERROR
        "byte-identity broken: ${NAME}.${kind} (jobs=${JOBS}) sha256 ${got} "
        "!= manifest ${want}; rerun tests/golden/regen.sh if the change is "
        "intentional")
  endif()
endforeach()

message(STATUS "golden ${NAME} (jobs=${JOBS}): all four artifacts identical")
