#include "apps/workload.hpp"

#include <gtest/gtest.h>

#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"

namespace storm::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SchedulerKind;
using sim::SimTime;
using namespace storm::sim::time_literals;

TEST(WorkloadGen, Deterministic) {
  WorkloadParams p;
  p.jobs = 10;
  const auto a = generate_workload(p);
  const auto b = generate_workload(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].spec.npes, b[i].spec.npes);
    EXPECT_EQ(a[i].true_runtime, b[i].true_runtime);
  }
}

TEST(WorkloadGen, RespectsBounds) {
  WorkloadParams p;
  p.jobs = 200;
  p.min_pes = 2;
  p.max_pes = 32;
  p.min_runtime = 50_ms;
  p.max_runtime = 2_sec;
  const auto trace = generate_workload(p);
  ASSERT_EQ(trace.size(), 200u);
  SimTime prev = SimTime::zero();
  for (const auto& j : trace) {
    EXPECT_GE(j.spec.npes, 2);
    EXPECT_LE(j.spec.npes, 32);
    EXPECT_GE(j.true_runtime, 50_ms);
    EXPECT_LE(j.true_runtime, 2_sec);
    EXPECT_GE(j.arrival, prev);  // arrivals are non-decreasing
    prev = j.arrival;
    EXPECT_GT(j.spec.estimated_runtime, j.true_runtime);
  }
}

TEST(WorkloadGen, MeanInterarrivalApproximatelyHonoured) {
  WorkloadParams p;
  p.jobs = 500;
  p.mean_interarrival = 200_ms;
  const auto trace = generate_workload(p);
  const double total = trace.back().arrival.to_seconds();
  EXPECT_NEAR(total / 500.0, 0.2, 0.04);
}

TEST(WorkloadRun, CompletesAndYieldsSaneMetrics) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.storm.scheduler = SchedulerKind::BatchEasy;
  Cluster cluster(sim, cfg);
  WorkloadParams p;
  p.jobs = 12;
  p.max_pes = 16;
  p.min_runtime = 100_ms;
  p.max_runtime = 1_sec;
  p.mean_interarrival = 300_ms;
  const auto trace = generate_workload(p);
  const auto ids = run_workload(cluster, trace);
  ASSERT_EQ(ids.size(), 12u);
  const auto m = compute_metrics(cluster, trace, ids);
  EXPECT_GT(m.makespan_s, 0.5);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
  EXPECT_GE(m.mean_slowdown, 1.0);
  EXPECT_GE(m.mean_bounded_slowdown, 1.0);
  EXPECT_GE(m.mean_turnaround_s, 0.1);
}

TEST(WorkloadRun, EasyBackfillingImprovesOnFcfs) {
  // The canonical scheduling result on a head-of-line-prone trace.
  auto run = [](SchedulerKind kind) {
    sim::Simulator sim;
    ClusterConfig cfg = ClusterConfig::es40(8);
    cfg.storm.scheduler = kind;
    Cluster cluster(sim, cfg);
    WorkloadParams p;
    p.jobs = 16;
    p.min_pes = 2;
    p.max_pes = 32;
    p.min_runtime = 200_ms;
    p.max_runtime = 3_sec;
    p.mean_interarrival = 100_ms;  // bursty: queue builds up
    p.seed = 0xFEED;
    const auto trace = generate_workload(p);
    const auto ids = run_workload(cluster, trace);
    EXPECT_EQ(ids.size(), 16u);
    return compute_metrics(cluster, trace, ids);
  };
  const auto fcfs = run(SchedulerKind::BatchFcfs);
  const auto easy = run(SchedulerKind::BatchEasy);
  EXPECT_LE(easy.mean_bounded_slowdown, fcfs.mean_bounded_slowdown * 1.01);
  EXPECT_LE(easy.makespan_s, fcfs.makespan_s * 1.05);
}

}  // namespace
}  // namespace storm::apps
