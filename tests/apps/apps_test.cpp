#include <gtest/gtest.h>

#include "apps/loaders.hpp"
#include "apps/sweep3d.hpp"
#include "apps/synthetic.hpp"
#include "storm/cluster.hpp"

namespace storm::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::JobId;
using sim::SimTime;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

TEST(Sweep3dGrid, MostSquareFactorisation) {
  EXPECT_EQ(sweep3d_grid(64), (std::pair<int, int>{8, 8}));
  EXPECT_EQ(sweep3d_grid(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(sweep3d_grid(8), (std::pair<int, int>{2, 4}));
  EXPECT_EQ(sweep3d_grid(2), (std::pair<int, int>{1, 2}));
  EXPECT_EQ(sweep3d_grid(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(sweep3d_grid(12), (std::pair<int, int>{3, 4}));
}

TEST(Sweep3dIterations, MatchesTargetRuntime) {
  Sweep3DParams p;
  p.target_runtime = 48_sec;
  p.octant_work = SimTime::millis(6);
  p.octants = 8;
  EXPECT_EQ(sweep3d_iterations(p), 1000);
  const double total =
      sweep3d_iterations(p) * 8 * 0.006;
  EXPECT_NEAR(total, 48.0, 0.5);
}

TEST(Synthetic, RunsForConfiguredWork) {
  sim::Simulator sim;
  Cluster cluster(sim, ClusterConfig::es40(2));
  const JobId id = cluster.submit({.binary_size = 1_MB,
                                   .npes = 8,
                                   .program = synthetic_computation(300_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const auto& t = cluster.job(id).times();
  EXPECT_GT((t.finished - t.launch_issued).to_millis(), 300.0);
  EXPECT_LT((t.finished - t.launch_issued).to_millis(), 420.0);
}

TEST(Synthetic, GranularBurstsEquivalentToSingle) {
  auto run = [](core::AppProgram prog) {
    sim::Simulator sim;
    Cluster cluster(sim, ClusterConfig::es40(2));
    const JobId id = cluster.submit(
        {.binary_size = 1_MB, .npes = 4, .program = std::move(prog)});
    EXPECT_TRUE(cluster.run_until_all_complete(60_sec));
    return (cluster.job(id).times().finished -
            cluster.job(id).times().launch_issued)
        .to_seconds();
  };
  const double single = run(synthetic_computation(400_ms));
  const double bursts = run(synthetic_computation(400_ms, 10_ms));
  EXPECT_NEAR(single, bursts, 0.05);
}

TEST(Sweep3d, SmallRunCompletesOnGrid) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.app_cpus_per_node = 4;
  Cluster cluster(sim, cfg);
  Sweep3DParams p;
  p.target_runtime = 500_ms;
  p.octant_work = SimTime::millis(4);
  const JobId id = cluster.submit(
      {.binary_size = 1_MB, .npes = 16, .program = sweep3d(p)});
  ASSERT_TRUE(cluster.run_until_all_complete(120_sec));
  const auto& t = cluster.job(id).times();
  const double run = (t.finished - t.launch_issued).to_seconds();
  // Wavefront skew and exchanges add a modest overhead over the pure
  // compute time.
  EXPECT_GT(run, 0.5);
  EXPECT_LT(run, 1.0);
}

TEST(Sweep3d, ScalesWeaklyAcrossNodes) {
  // Fixed per-PE work: runtime should be nearly flat in node count
  // (Figure 5's observation).
  auto run_nodes = [](int nodes) {
    sim::Simulator sim;
    ClusterConfig cfg = ClusterConfig::es40(nodes);
    cfg.app_cpus_per_node = 2;
    Cluster cluster(sim, cfg);
    Sweep3DParams p;
    p.target_runtime = 400_ms;
    p.octant_work = SimTime::millis(4);
    const JobId id = cluster.submit(
        {.binary_size = 1_MB, .npes = nodes * 2, .program = sweep3d(p)});
    EXPECT_TRUE(cluster.run_until_all_complete(300_sec));
    return (cluster.job(id).times().finished -
            cluster.job(id).times().launch_issued)
        .to_seconds();
  };
  const double n2 = run_nodes(2);
  const double n16 = run_nodes(16);
  EXPECT_LT(n16, n2 * 1.4);
}

TEST(Loaders, PingPongCompletes) {
  sim::Simulator sim;
  Cluster cluster(sim, ClusterConfig::es40(2));
  const JobId id = cluster.submit(
      {.binary_size = 1_MB, .npes = 8, .program = network_pingpong(100)});
  ASSERT_TRUE(cluster.run_until_all_complete(120_sec));
  EXPECT_EQ(cluster.job(id).state(), core::JobState::Completed);
  // 8 ranks -> 4 pairs; each round moves a message each way.
  EXPECT_GE(cluster.network().bytes_put(), 4 * 100 * 2 * 64_KB);
}

TEST(Loaders, OddRankCountStillTerminates) {
  sim::Simulator sim;
  ClusterConfig cfg = ClusterConfig::es40(2);
  cfg.app_cpus_per_node = 3;
  Cluster cluster(sim, cfg);
  const JobId id = cluster.submit(
      {.binary_size = 1_MB, .npes = 5, .program = network_pingpong(10)});
  ASSERT_TRUE(cluster.run_until_all_complete(120_sec));
  EXPECT_EQ(cluster.job(id).state(), core::JobState::Completed);
}

}  // namespace
}  // namespace storm::apps
