#include <gtest/gtest.h>

#include "model/launch_model.hpp"
#include "model/literature.hpp"

namespace storm::model {
namespace {

TEST(LaunchModel, HeadlineAnchors) {
  LaunchModelParams p;
  // On 64 nodes the ES40 transfer is host-capped at 131 MB/s:
  // 12 MB / 131 MB/s + 15 ms ~ 111 ms.
  EXPECT_NEAR(es40_launch_time(64, p).to_millis(), 111.0, 3.0);
  // Section 3.3.2: "A 12 MB binary can be launched in 135 ms on
  // 16,384 nodes".
  EXPECT_NEAR(es40_launch_time(16384, p).to_millis(), 135.0, 12.0);
}

TEST(LaunchModel, Es40CapActiveAtSmallScale) {
  LaunchModelParams p;
  // Below ~4096 nodes the I/O bus (131 MB/s) is the bottleneck.
  EXPECT_NEAR(es40_transfer_bandwidth(64, p).to_mb_per_s(), 131.0, 1e-9);
  EXPECT_NEAR(es40_transfer_bandwidth(1024, p).to_mb_per_s(), 131.0, 1e-9);
  // The ideal machine is faster everywhere the network exceeds 131.
  EXPECT_GT(ideal_transfer_bandwidth(64, p).to_mb_per_s(), 250.0);
}

TEST(LaunchModel, ModelsConvergeBeyond4096Nodes) {
  // "Both models converge with networks larger than 4,096 nodes
  // because ... they share the same bottleneck."
  LaunchModelParams p;
  const double es40 = es40_launch_time(16384, p).to_millis();
  const double ideal = ideal_launch_time(16384, p).to_millis();
  EXPECT_NEAR(es40, ideal, es40 * 0.12);
  // At 64 nodes they must differ markedly.
  EXPECT_GT(es40_launch_time(64, p).to_millis(),
            ideal_launch_time(64, p).to_millis() * 1.4);
}

TEST(LaunchModel, MonotoneInNodes) {
  LaunchModelParams p;
  double prev = 0;
  for (int n = 1; n <= 16384; n *= 2) {
    const double t = es40_launch_time(n, p).to_millis();
    EXPECT_GE(t, prev - 1e-9);
    prev = t;
  }
}

TEST(Literature, Table7Extrapolations) {
  // Table 7's published 4,096-node values.
  struct Expected {
    const char* name;
    double seconds;
  };
  const Expected expected[] = {{"rsh", 3827.10},
                               {"RMS", 316.48},
                               {"GLUnix", 49.38},
                               {"Cplant", 22.73},
                               {"BProc", 4.87}};
  const auto& fits = launcher_fits();
  ASSERT_EQ(fits.size(), 5u);
  for (std::size_t i = 0; i < fits.size(); ++i) {
    EXPECT_EQ(fits[i].name, expected[i].name);
    EXPECT_NEAR(extrapolated_4096(fits[i]), expected[i].seconds,
                expected[i].seconds * 0.005)
        << fits[i].name;
  }
}

TEST(Literature, FitsReproduceMeasuredAnchors) {
  const auto& fits = launcher_fits();
  // rsh: 90 s at 95 nodes; GLUnix: 1.3 s at 95; RMS: 5.9 s at 64;
  // Cplant: 20 s at 1010; BProc: 2.7 s at 100.
  EXPECT_NEAR(fits[0].seconds_at(95), 90.0, 1.5);
  EXPECT_NEAR(fits[1].seconds_at(64), 5.9, 0.3);
  EXPECT_NEAR(fits[2].seconds_at(95), 1.3, 0.2);
  EXPECT_NEAR(fits[3].seconds_at(1010), 20.0, 0.5);
  EXPECT_NEAR(fits[4].seconds_at(100), 2.7, 0.3);
}

TEST(Literature, StormBeatsEveryBaselineAt4096) {
  LaunchModelParams p;
  const double storm_s = es40_launch_time(4096, p).to_seconds();
  for (const auto& fit : launcher_fits()) {
    EXPECT_GT(extrapolated_4096(fit) / storm_s, 30.0) << fit.name;
  }
}

TEST(Literature, ScalingClasses) {
  const auto& fits = launcher_fits();
  EXPECT_FALSE(fits[0].logarithmic);  // rsh
  EXPECT_FALSE(fits[1].logarithmic);  // RMS
  EXPECT_FALSE(fits[2].logarithmic);  // GLUnix
  EXPECT_TRUE(fits[3].logarithmic);   // Cplant
  EXPECT_TRUE(fits[4].logarithmic);   // BProc
}

}  // namespace
}  // namespace storm::model
