#include "node/filesystem.hpp"

#include <gtest/gtest.h>

#include "node/machine.hpp"

namespace storm::node {
namespace {

using net::BufferPlace;
using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

// Figure 6: read bandwidth of a 12 MB image per filesystem/placement.
struct Fig6Cell {
  FsKind kind;
  BufferPlace place;
  double mb_per_s;
};

class Figure6Read : public ::testing::TestWithParam<Fig6Cell> {};

TEST_P(Figure6Read, BandwidthMatchesPaper) {
  const auto& cell = GetParam();
  sim::Simulator sim;
  NfsServer nfs(sim);
  Machine m(sim, 0, MachineParams{}, nullptr, &nfs);
  SimTime done = SimTime::zero();
  const sim::Bytes bytes = 12_MB;
  auto t = [&]() -> Task<> {
    co_await m.fs(cell.kind).read(bytes, cell.place, nullptr);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  const double mbps = static_cast<double>(bytes) / 1e6 / done.to_seconds();
  // Within 5% of the paper's figure (per-op latency costs a little).
  EXPECT_NEAR(mbps, cell.mb_per_s, cell.mb_per_s * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, Figure6Read,
    ::testing::Values(
        Fig6Cell{FsKind::Nfs, BufferPlace::NicMemory, 11.4},
        Fig6Cell{FsKind::Nfs, BufferPlace::MainMemory, 11.2},
        Fig6Cell{FsKind::LocalDisk, BufferPlace::NicMemory, 31.5},
        Fig6Cell{FsKind::LocalDisk, BufferPlace::MainMemory, 30.5},
        Fig6Cell{FsKind::RamDisk, BufferPlace::NicMemory, 120.0},
        Fig6Cell{FsKind::RamDisk, BufferPlace::MainMemory, 218.0}));

TEST(Filesystem, RamDiskMainMemoryBeatsNicMemory) {
  // The crux of the Section 3.3.1 placement argument.
  sim::Simulator sim;
  Machine m(sim, 0, MachineParams{}, nullptr, nullptr);
  SimTime t_main = SimTime::zero(), t_nic = SimTime::zero();
  auto t = [&]() -> Task<> {
    SimTime t0 = sim.now();
    co_await m.fs(FsKind::RamDisk).read(12_MB, BufferPlace::MainMemory, nullptr);
    t_main = sim.now() - t0;
    t0 = sim.now();
    co_await m.fs(FsKind::RamDisk).read(12_MB, BufferPlace::NicMemory, nullptr);
    t_nic = sim.now() - t0;
  };
  sim.spawn(t());
  sim.run();
  EXPECT_LT(t_main, t_nic);
}

TEST(Filesystem, NfsServerSharedByConcurrentClients) {
  // Two machines demand-paging from the same NFS server: the server
  // pipe is wide enough here, so per-client protocol limits dominate;
  // with 16 clients the server (90 MB/s) becomes the bottleneck.
  sim::Simulator sim;
  NfsServer nfs(sim);
  std::vector<std::unique_ptr<Machine>> machines;
  for (int i = 0; i < 16; ++i)
    machines.push_back(
        std::make_unique<Machine>(sim, i, MachineParams{}, nullptr, &nfs));
  int finished = 0;
  SimTime last = SimTime::zero();
  auto reader = [&](int i) -> Task<> {
    co_await machines[i]->fs(FsKind::Nfs).read(12_MB, BufferPlace::MainMemory,
                                               nullptr);
    ++finished;
    last = sim.now();
  };
  for (int i = 0; i < 16; ++i) sim.spawn(reader(i));
  sim.run();
  EXPECT_EQ(finished, 16);
  // 16 clients * 12 MiB = 201 MB through a 90 MB/s server: >= 2.2 s,
  // i.e. well above the single-client 1.12 s — the nonscalability the
  // paper attributes to shared-filesystem distribution.
  EXPECT_GT(last.to_seconds(), 2.0);
}

TEST(Filesystem, WriteIsCpuWorkOnWriter) {
  sim::Simulator sim;
  Machine m(sim, 0, MachineParams{}, nullptr, nullptr);
  Proc& writer = m.os().create("nm", 0);
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await m.fs(FsKind::RamDisk).write(4_MB, writer);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  // 4 MiB at 400 MB/s ~ 10.5 ms, charged as CPU time.
  EXPECT_NEAR(done.to_millis(), 10.5, 1.0);
  EXPECT_GT(writer.cpu_time().to_millis(), 9.0);
}

TEST(Filesystem, WriteContendsWithCpuLoad) {
  sim::Simulator sim;
  MachineParams mp;
  mp.os.cpus = 1;
  Machine m(sim, 0, mp, nullptr, nullptr);
  Proc& writer = m.os().create("nm", 0);
  Proc& spinner = m.os().create("spin", 0);
  SimTime done = SimTime::zero();
  auto spin = [&]() -> Task<> { co_await spinner.compute(1000_sec); };
  auto t = [&]() -> Task<> {
    co_await sim.delay(1_ms);
    co_await m.fs(FsKind::RamDisk).write(4_MB, writer);
    done = sim.now();
  };
  sim.spawn(spin());
  sim.spawn(t());
  sim.run(5_sec);
  // Sharing one CPU with a spinner: much slower than the 10.5 ms
  // uncontended write.
  EXPECT_GT(done.to_millis(), 20.0);
}

TEST(Filesystem, HelperAssistLengthensLoadedChunkedReads) {
  // The launch protocol reads the image 512 KB at a time; unloaded,
  // each chunk's helper cost overlaps the DMA, but when the helper's
  // CPU is saturated the per-chunk dispatch waits dominate and the
  // read slows down markedly.
  sim::Simulator sim;
  MachineParams mp;
  mp.os.cpus = 1;
  Machine m(sim, 0, mp, nullptr, nullptr);
  Proc& helper = m.os().create("helper", 0);
  Proc& spinner = m.os().create("spin", 0);
  SimTime t_quiet = SimTime::zero(), t_loaded = SimTime::zero();
  constexpr int kChunks = 24;  // 12 MB in 512 KB chunks
  auto read_all = [&]() -> Task<> {
    for (int i = 0; i < kChunks; ++i) {
      co_await m.fs(FsKind::RamDisk).read(512_KB, BufferPlace::MainMemory,
                                          &helper);
    }
  };
  auto spin = [&]() -> Task<> { co_await spinner.compute(1000_sec); };
  auto t = [&]() -> Task<> {
    SimTime t0 = sim.now();
    co_await read_all();
    t_quiet = sim.now() - t0;
    sim.spawn(spin());
    co_await sim.delay(1_ms);
    t0 = sim.now();
    co_await read_all();
    t_loaded = sim.now() - t0;
  };
  sim.spawn(t());
  sim.run(60_sec);
  EXPECT_GT(t_loaded.to_seconds(), t_quiet.to_seconds() * 1.3);
}

TEST(Filesystem, ZeroByteOpsComplete) {
  sim::Simulator sim;
  Machine m(sim, 0, MachineParams{}, nullptr, nullptr);
  Proc& w = m.os().create("w", 0);
  bool done = false;
  auto t = [&]() -> Task<> {
    co_await m.fs(FsKind::RamDisk).read(0, BufferPlace::MainMemory, nullptr);
    co_await m.fs(FsKind::RamDisk).write(0, w);
    done = true;
  };
  sim.spawn(t());
  sim.run();
  EXPECT_TRUE(done);
}

TEST(FsKindNames, ToString) {
  EXPECT_EQ(to_string(FsKind::Nfs), "NFS");
  EXPECT_EQ(to_string(FsKind::LocalDisk), "Local (ext2)");
  EXPECT_EQ(to_string(FsKind::RamDisk), "RAM (ext2)");
}

}  // namespace
}  // namespace storm::node
