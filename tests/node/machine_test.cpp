#include "node/machine.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace storm::node {
namespace {

using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;

TEST(Machine, DefaultsMatchEs40) {
  sim::Simulator sim;
  Machine m(sim, 3, MachineParams{}, nullptr, nullptr);
  EXPECT_EQ(m.id(), 3);
  EXPECT_EQ(m.os().cpus(), 4);  // AlphaServer ES40: 4 CPUs/node
}

TEST(Machine, ForkCostIsPositiveAndVariable) {
  sim::Simulator sim;
  Machine m(sim, 0, MachineParams{}, nullptr, nullptr);
  sim::Accumulator acc;
  for (int i = 0; i < 1000; ++i) acc.add(m.sample_fork_cost().to_millis());
  EXPECT_GT(acc.min(), 0.0);
  EXPECT_GT(acc.stddev(), 0.0);
  // Median ~ fork_median + exec_overhead ~ 2 ms.
  EXPECT_GT(acc.mean(), 1.0);
  EXPECT_LT(acc.mean(), 4.0);
}

TEST(Machine, DistinctMachinesHaveIndependentNoise) {
  sim::Simulator sim;
  Machine a(sim, 0, MachineParams{}, nullptr, nullptr);
  Machine b(sim, 1, MachineParams{}, nullptr, nullptr);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.sample_fork_cost() == b.sample_fork_cost()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Machine, SameSeedReproducesForkCosts) {
  sim::Simulator s1(7), s2(7);
  Machine a(s1, 0, MachineParams{}, nullptr, nullptr);
  Machine b(s2, 0, MachineParams{}, nullptr, nullptr);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(a.sample_fork_cost(), b.sample_fork_cost());
}

TEST(Machine, FilesystemReadsDoNotPerturbPciModel) {
  // Figure 6's read rates were measured with the launch pipeline live,
  // so the model composes read and broadcast caps with min() rather
  // than making reads contend on the PCI resource (Section 3.3.1).
  sim::Simulator sim;
  net::QsNet qsnet(sim, 4);
  Machine m(sim, 2, MachineParams{}, &qsnet, nullptr);
  double share_during = 0;
  auto reader = [&]() -> Task<> {
    co_await m.fs(FsKind::RamDisk).read(storm::sim::operator""_MB(12ULL),
                                        net::BufferPlace::MainMemory, nullptr);
  };
  sim.spawn(reader());
  sim.schedule_at(10_ms, [&] {
    share_during = qsnet.pci(2).share_with(1.0).to_mb_per_s();
  });
  sim.run();
  EXPECT_NEAR(share_during, 230.0, 1.0);
}

TEST(Machine, AllThreeFilesystemsDistinct) {
  sim::Simulator sim;
  NfsServer nfs(sim);
  Machine m(sim, 0, MachineParams{}, nullptr, &nfs);
  EXPECT_LT(m.fs(FsKind::Nfs).nominal_read_bw(net::BufferPlace::MainMemory)
                .to_mb_per_s(),
            m.fs(FsKind::LocalDisk)
                .nominal_read_bw(net::BufferPlace::MainMemory)
                .to_mb_per_s());
  EXPECT_LT(m.fs(FsKind::LocalDisk)
                .nominal_read_bw(net::BufferPlace::MainMemory)
                .to_mb_per_s(),
            m.fs(FsKind::RamDisk)
                .nominal_read_bw(net::BufferPlace::MainMemory)
                .to_mb_per_s());
}

}  // namespace
}  // namespace storm::node
