#include "node/os_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace storm::node {
namespace {

using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;

OsParams quiet_params() {
  // Deterministic-ish parameters for unit tests: negligible noise.
  OsParams p;
  p.context_switch = SimTime::zero();
  p.dispatch_noise_median = SimTime::ns(1);
  p.dispatch_noise_sigma = 0.0;
  p.wakeup_grab_median = SimTime::us(100);
  p.wakeup_grab_sigma = 0.0;
  return p;
}

struct Fixture : ::testing::Test {
  sim::Simulator sim;
  OsScheduler os{sim, quiet_params(), sim.rng().fork(1)};
};

TEST_F(Fixture, SoleProcessRunsUninterrupted) {
  Proc& p = os.create("worker", 0);
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await p.compute(10_ms);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  EXPECT_NEAR(done.to_millis(), 10.0, 0.01);
  EXPECT_NEAR(p.cpu_time().to_millis(), 10.0, 0.01);
}

TEST_F(Fixture, SequentialComputesAccumulate) {
  Proc& p = os.create("worker", 0);
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    for (int i = 0; i < 5; ++i) co_await p.compute(2_ms);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  EXPECT_NEAR(done.to_millis(), 10.0, 0.05);
}

TEST_F(Fixture, TwoProcessesShareOneCpu) {
  Proc& a = os.create("a", 0);
  Proc& b = os.create("b", 0);
  SimTime done_a = SimTime::zero(), done_b = SimTime::zero();
  auto ta = [&]() -> Task<> {
    co_await a.compute(50_ms);
    done_a = sim.now();
  };
  auto tb = [&]() -> Task<> {
    co_await b.compute(50_ms);
    done_b = sim.now();
  };
  sim.spawn(ta());
  sim.spawn(tb());
  sim.run();
  // 100 ms of total work on one CPU: both finish near 100 ms.
  EXPECT_GT(std::max(done_a, done_b).to_millis(), 99.0);
  EXPECT_LT(std::max(done_a, done_b).to_millis(), 102.0);
  // Round-robin: the loser cannot finish a whole tick before the other
  // starts, so the first finisher lands well past 50 ms.
  EXPECT_GT(std::min(done_a, done_b).to_millis(), 50.0);
}

TEST_F(Fixture, ProcessesOnDifferentCpusDontContend) {
  Proc& a = os.create("a", 0);
  Proc& b = os.create("b", 1);
  SimTime done_a = SimTime::zero(), done_b = SimTime::zero();
  auto ta = [&]() -> Task<> {
    co_await a.compute(10_ms);
    done_a = sim.now();
  };
  auto tb = [&]() -> Task<> {
    co_await b.compute(10_ms);
    done_b = sim.now();
  };
  sim.spawn(ta());
  sim.spawn(tb());
  sim.run();
  EXPECT_NEAR(done_a.to_millis(), 10.0, 0.05);
  EXPECT_NEAR(done_b.to_millis(), 10.0, 0.05);
}

TEST_F(Fixture, SuspendPausesProgress) {
  Proc& p = os.create("app", 0);
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await p.compute(10_ms);
    done = sim.now();
  };
  sim.spawn(t());
  sim.schedule_at(4_ms, [&] { p.set_suspended(true); });
  sim.schedule_at(24_ms, [&] { p.set_suspended(false); });
  sim.run();
  // 4 ms of progress, 20 ms suspended, 6 ms to finish: ~30 ms.
  EXPECT_NEAR(done.to_millis(), 30.0, 0.1);
  EXPECT_NEAR(p.cpu_time().to_millis(), 10.0, 0.1);
}

TEST_F(Fixture, SuspendBeforeComputeDefersStart) {
  Proc& p = os.create("app", 0);
  p.set_suspended(true);
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await p.compute(5_ms);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run(20_ms);
  EXPECT_EQ(done, SimTime::zero());  // still suspended
  p.set_suspended(false);
  sim.run();
  EXPECT_NEAR(done.to_millis(), 25.0, 0.1);
}

TEST_F(Fixture, SuspendedReadyProcessIsDequeued) {
  Proc& a = os.create("a", 0);
  Proc& b = os.create("b", 0);
  SimTime done_b = SimTime::zero();
  auto ta = [&]() -> Task<> { co_await a.compute(100_ms); };
  auto tb = [&]() -> Task<> {
    co_await b.compute(10_ms);
    done_b = sim.now();
  };
  sim.spawn(ta());
  sim.spawn(tb());
  // b starts queued behind a (the 100 us wakeup grab hands it the CPU
  // shortly after t=0); suspending a leaves b running alone, so b
  // completes its 10 ms of work without further interruption.
  sim.schedule_at(1_ms, [&] { a.set_suspended(true); });
  sim.run(50_ms);
  EXPECT_GT(done_b.to_millis(), 9.9);
  EXPECT_LT(done_b.to_millis(), 11.5);
}

TEST_F(Fixture, WakeupGrabPreemptsIncumbent) {
  Proc& hog = os.create("hog", 0);
  Proc& daemon = os.create("daemon", 0);
  SimTime daemon_done = SimTime::zero();
  auto th = [&]() -> Task<> { co_await hog.compute(10_sec); };
  auto td = [&]() -> Task<> {
    co_await sim.delay(5_ms);  // wake up mid-hog
    co_await daemon.compute(100_us);
    daemon_done = sim.now();
  };
  sim.spawn(th());
  sim.spawn(td());
  sim.run(1_sec);
  // Grab delay is a deterministic 100 us in quiet_params, so the
  // daemon runs at ~5.1 ms + service, far before the hog finishes.
  EXPECT_GT(daemon_done, 5_ms);
  EXPECT_LT(daemon_done.to_millis(), 5.5);
}

TEST_F(Fixture, PenaltyChargedOnNextDispatch) {
  Proc& p = os.create("app", 0);
  p.add_penalty(2_ms);
  SimTime done = SimTime::zero();
  auto t = [&]() -> Task<> {
    co_await p.compute(10_ms);
    done = sim.now();
  };
  sim.spawn(t());
  sim.run();
  EXPECT_NEAR(done.to_millis(), 12.0, 0.05);
}

TEST_F(Fixture, CpuTimeExcludesWaitTime) {
  Proc& a = os.create("a", 0);
  Proc& b = os.create("b", 0);
  auto ta = [&]() -> Task<> { co_await a.compute(20_ms); };
  auto tb = [&]() -> Task<> { co_await b.compute(20_ms); };
  sim.spawn(ta());
  sim.spawn(tb());
  sim.run();
  EXPECT_NEAR(a.cpu_time().to_millis(), 20.0, 0.1);
  EXPECT_NEAR(b.cpu_time().to_millis(), 20.0, 0.1);
  EXPECT_GT(sim.now().to_millis(), 39.9);
}

TEST_F(Fixture, ZeroWorkComputeReturnsImmediately) {
  Proc& p = os.create("app", 0);
  bool done = false;
  auto t = [&]() -> Task<> {
    co_await p.compute(SimTime::zero());
    done = true;
  };
  sim.spawn(t());
  EXPECT_TRUE(done);
}

TEST_F(Fixture, ManyProcessesRoundRobinFairly) {
  constexpr int kProcs = 8;
  std::vector<Proc*> procs;
  std::vector<SimTime> done(kProcs);
  for (int i = 0; i < kProcs; ++i)
    {
    std::string name = "p";
    name += std::to_string(i);  // separate appends: GCC PR105651 -Wrestrict
    procs.push_back(&os.create(name, 0));
  }
  auto t = [&](int i) -> Task<> {
    co_await procs[i]->compute(10_ms);
    done[i] = sim.now();
  };
  for (int i = 0; i < kProcs; ++i) sim.spawn(t(i));
  sim.run();
  // All processes complete within ~80 ms total; with a 10 ms tick each
  // finishes in the final two rounds, i.e. after 60 ms.
  for (int i = 0; i < kProcs; ++i) {
    EXPECT_GT(done[i].to_millis(), 60.0);
    EXPECT_LT(done[i].to_millis(), 82.0);
  }
}

TEST_F(Fixture, CurrentAndQueueDepthIntrospection) {
  Proc& a = os.create("a", 0);
  Proc& b = os.create("b", 0);
  auto ta = [&]() -> Task<> { co_await a.compute(5_ms); };
  auto tb = [&]() -> Task<> { co_await b.compute(5_ms); };
  sim.spawn(ta());
  sim.spawn(tb());
  sim.run(1_ms);
  // One of the two holds the CPU (the wakeup grab may already have
  // rotated them); the other waits.
  EXPECT_TRUE(os.current(0) == &a || os.current(0) == &b);
  EXPECT_EQ(os.queue_depth(0), 1u);
  sim.run();
  EXPECT_EQ(os.current(0), nullptr);
  EXPECT_EQ(os.queue_depth(0), 0u);
}

}  // namespace
}  // namespace storm::node
