#include "mech/qsnet_mechanisms.hpp"

#include <gtest/gtest.h>

#include "mech/emulated_mechanisms.hpp"

namespace storm::mech {
namespace {

using net::NodeRange;
using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

class QsNetMechFixture : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::QsNet qsnet{sim, 64};
  QsNetMechanisms mech{qsnet};
};

TEST_F(QsNetMechFixture, Identity) {
  EXPECT_EQ(mech.name(), "QsNET");
  EXPECT_EQ(mech.nodes(), 64);
}

TEST_F(QsNetMechFixture, XferSignalsRemoteAndLocalEvents) {
  mech.xfer_and_signal(0, NodeRange{1, 8}, 64_KB,
                       BufferPlace::MainMemory, /*remote_ev=*/3,
                       /*local_done=*/4);
  // Non-blocking: nothing has been delivered yet at t=0.
  EXPECT_FALSE(mech.test_event(1, 3));
  EXPECT_FALSE(mech.test_event(0, 4));
  sim.run();
  for (int n = 1; n <= 8; ++n) EXPECT_TRUE(mech.test_event(n, 3));
  EXPECT_FALSE(mech.test_event(9, 3));  // outside the set
  EXPECT_TRUE(mech.test_event(0, 4));   // local completion
}

TEST_F(QsNetMechFixture, XferWithoutEventsIsSilent) {
  mech.xfer_and_signal(0, NodeRange{1, 4}, 1_KB, BufferPlace::MainMemory,
                       kNoEvent, kNoEvent);
  sim.run();
  EXPECT_FALSE(mech.test_event(1, 0));
  EXPECT_FALSE(mech.test_event(0, 0));
}

TEST_F(QsNetMechFixture, WaitEventBlocksUntilXferCompletes) {
  SimTime woke = SimTime::zero();
  auto waiter = [&]() -> Task<> {
    co_await mech.wait_event(0, 7);
    woke = sim.now();
  };
  sim.spawn(waiter());
  mech.xfer_and_signal(0, NodeRange{1, 32}, 1_MB, BufferPlace::MainMemory,
                       kNoEvent, /*local_done=*/7);
  sim.run();
  // 1 MiB at 175 MB/s ~ 6 ms.
  EXPECT_GT(woke.to_millis(), 5.0);
  EXPECT_LT(woke.to_millis(), 8.0);
}

TEST_F(QsNetMechFixture, CompareAndWriteWritesOnlyWhenTrue) {
  for (int n = 0; n < 64; ++n) mech.write_local(n, 1, 5);
  bool r = false;
  auto t = [&]() -> Task<> {
    r = co_await mech.compare_and_write(0, NodeRange{0, 64}, 1,
                                        net::Compare::GE, 5, 2, 99);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_TRUE(r);
  for (int n = 0; n < 64; ++n) EXPECT_EQ(mech.read_local(n, 2), 99);

  // Now a failing condition: no write may happen.
  mech.write_local(13, 1, 4);
  bool r2 = true;
  auto t2 = [&]() -> Task<> {
    r2 = co_await mech.compare_and_write(0, NodeRange{0, 64}, 1,
                                         net::Compare::GE, 5, 2, 111);
  };
  sim.spawn(t2());
  sim.run();
  EXPECT_FALSE(r2);
  for (int n = 0; n < 64; ++n) EXPECT_EQ(mech.read_local(n, 2), 99);
}

TEST_F(QsNetMechFixture, CompareWithoutWrite) {
  for (int n = 0; n < 16; ++n) mech.write_local(n, 3, n);
  bool r = true;
  auto t = [&]() -> Task<> {
    r = co_await mech.compare_and_write(0, NodeRange{0, 16}, 3,
                                        net::Compare::GE, 8, kNoWrite, 0);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_FALSE(r);  // nodes 0..7 are below 8
}

TEST_F(QsNetMechFixture, CawLatencyUnder10Microseconds) {
  // Table 5: QsNET COMPARE-AND-WRITE < 10 us.
  EXPECT_LT(mech.caw_latency(64).to_micros(), 10.0);
  EXPECT_LT(mech.caw_latency(4).to_micros(), 10.0);
}

TEST_F(QsNetMechFixture, XferAggregateBandwidthScalesLinearly) {
  // Table 5: QsNET XFER-AND-SIGNAL > 150n MB/s.
  const double per_node_64 =
      mech.xfer_aggregate_bandwidth(64).to_mb_per_s() / 64;
  EXPECT_GT(per_node_64, 150.0);
}

// ---------------------------------------------------------------------------
// Emulated mechanisms (Table 5's software-tree networks)
// ---------------------------------------------------------------------------

TEST(EmulatedMech, Table5CawLatencies) {
  sim::Simulator sim;
  struct Row {
    EmulationParams p;
    double unit_us;  // Table 5: unit * log2(n)
  };
  for (const auto& row :
       {Row{EmulationParams::gigabit_ethernet(), 46.0},
        Row{EmulationParams::myrinet(), 20.0},
        Row{EmulationParams::infiniband(), 20.0}}) {
    EmulatedMechanisms m(sim, 1024, row.p);
    for (int n : {2, 16, 64, 1024}) {
      const double expected = row.unit_us * std::log2(static_cast<double>(n));
      EXPECT_NEAR(m.caw_latency(n).to_micros(), expected, expected * 0.01)
          << row.p.name << " n=" << n;
    }
  }
}

TEST(EmulatedMech, MyrinetXferAggregateIs15n) {
  sim::Simulator sim;
  EmulatedMechanisms m(sim, 256, EmulationParams::myrinet());
  // Table 5: ~15n MB/s.
  EXPECT_NEAR(m.xfer_aggregate_bandwidth(64).to_mb_per_s() / 64, 15.0, 0.5);
}

TEST(EmulatedMech, CawSemanticsMatchHardware) {
  sim::Simulator sim;
  EmulatedMechanisms m(sim, 16, EmulationParams::myrinet());
  for (int n = 0; n < 16; ++n) m.write_local(n, 1, 7);
  bool r = false;
  auto t = [&]() -> Task<> {
    r = co_await m.compare_and_write(0, NodeRange{0, 16}, 1, net::Compare::EQ,
                                     7, 2, 42);
  };
  sim.spawn(t());
  sim.run();
  EXPECT_TRUE(r);
  for (int n = 0; n < 16; ++n) EXPECT_EQ(m.read_local(n, 2), 42);
}

TEST(EmulatedMech, XferDeliversAndSignals) {
  sim::Simulator sim;
  EmulatedMechanisms m(sim, 8, EmulationParams::gigabit_ethernet());
  m.xfer_and_signal(0, NodeRange{0, 8}, 1_MB, BufferPlace::MainMemory, 5,
                    kNoEvent);
  sim.run();
  for (int n = 0; n < 8; ++n) EXPECT_TRUE(m.test_event(n, 5));
  // 1 MiB at 100/2 = 50 MB/s ~ 21 ms.
  EXPECT_GT(sim.now().to_millis(), 15.0);
}

TEST(EmulatedMech, SlowerThanHardwareAtScale) {
  // The architectural claim: the hardware path beats log-tree software
  // emulation, increasingly so at scale.
  sim::Simulator sim;
  net::QsNet qsnet(sim, 1024);
  QsNetMechanisms hw(qsnet);
  EmulatedMechanisms sw(sim, 1024, EmulationParams::myrinet());
  for (int n : {16, 64, 256, 1024}) {
    EXPECT_LT(hw.caw_latency(n), sw.caw_latency(n)) << n;
  }
  EXPECT_GT(hw.xfer_aggregate_bandwidth(1024).to_mb_per_s(),
            sw.xfer_aggregate_bandwidth(1024).to_mb_per_s());
}

TEST(EmulatedMech, TreeDepthLogarithmic) {
  sim::Simulator sim;
  EmulatedMechanisms m(sim, 4096, EmulationParams::myrinet());
  EXPECT_EQ(m.tree_depth(1), 1);
  EXPECT_EQ(m.tree_depth(2), 1);
  EXPECT_EQ(m.tree_depth(4), 2);
  EXPECT_EQ(m.tree_depth(1024), 10);
  EXPECT_EQ(m.tree_depth(4096), 12);
}

}  // namespace
}  // namespace storm::mech
