#include <gtest/gtest.h>

#include "baselines/gang_models.hpp"
#include "baselines/launchers.hpp"

namespace storm::baselines {
namespace {

using sim::SimTime;
using namespace storm::sim::byte_literals;

// Each baseline must land near its published measurement (Table 6).

TEST(Launchers, RshMatchesPublished95Nodes) {
  sim::Simulator sim;
  const auto r = RshLauncher{}.launch(sim, 95);
  EXPECT_NEAR(r.total.to_seconds(), 90.0, 2.0);
}

TEST(Launchers, RmsMatchesPublished64Nodes) {
  sim::Simulator sim;
  const auto r = RmsLauncher{}.launch(sim, 64);
  EXPECT_NEAR(r.total.to_seconds(), 5.9, 0.3);
}

TEST(Launchers, GlunixMatchesPublished95Nodes) {
  sim::Simulator sim;
  const auto r = GlunixLauncher{}.launch(sim, 95);
  EXPECT_NEAR(r.total.to_seconds(), 1.3, 0.15);
}

TEST(Launchers, CplantMatchesPublished1010Nodes) {
  sim::Simulator sim;
  const auto r = CplantTreeLauncher{}.launch(sim, 1010, 12_MB);
  EXPECT_NEAR(r.total.to_seconds(), 20.0, 2.0);
}

TEST(Launchers, BprocMatchesPublished100Nodes) {
  sim::Simulator sim;
  const auto r = BprocTreeLauncher{}.launch(sim, 100, 12_MB);
  EXPECT_NEAR(r.total.to_seconds(), 2.7, 0.4);
}

TEST(Launchers, SerialSystemsScaleLinearly) {
  sim::Simulator s1, s2;
  const double t64 = RshLauncher{}.launch(s1, 64).total.to_seconds();
  const double t128 = RshLauncher{}.launch(s2, 128).total.to_seconds();
  EXPECT_NEAR(t128 / t64, 2.0, 0.1);
}

TEST(Launchers, TreeSystemsScaleLogarithmically) {
  sim::Simulator s1, s2;
  const double t64 = BprocTreeLauncher{}.launch(s1, 64, 12_MB).total.to_seconds();
  const double t4096 =
      BprocTreeLauncher{}.launch(s2, 4096, 12_MB).total.to_seconds();
  // 6 levels -> 12 levels: 2x, not 64x.
  EXPECT_NEAR(t4096 / t64, 2.0, 0.15);
}

TEST(Launchers, NfsDemandPagingIsNonScalable) {
  sim::Simulator s1, s2;
  NfsDemandPageLauncher nfs;
  const double t4 = nfs.launch(s1, 4, 12_MB).total.to_seconds();
  const double t64 = nfs.launch(s2, 64, 12_MB).total.to_seconds();
  // 64 clients through one server: the server pipe dominates.
  EXPECT_GT(t64, t4 * 4.0);
}

TEST(Launchers, OneNodeEdgeCases) {
  sim::Simulator s1, s2, s3;
  EXPECT_GT(RshLauncher{}.launch(s1, 1).total.to_seconds(), 0.9);
  EXPECT_GT(CplantTreeLauncher{}.launch(s2, 1, 12_MB).total.to_seconds(), 0.0);
  EXPECT_GE(BprocTreeLauncher{}.launch(s3, 1, 12_MB).total.to_seconds(), 0.0);
}

// --- Table 8: minimal feasible quanta --------------------------------------

TEST(GangModels, Table8FeasibleQuanta) {
  // RMS: 1.8% at 30 s on 15 nodes.
  EXPECT_NEAR(GangOverheadModel::rms().slowdown(SimTime::sec(30), 15), 0.018,
              0.002);
  // SCore-D: 2% at 100 ms on 64 nodes.
  EXPECT_NEAR(GangOverheadModel::score_d().slowdown(SimTime::ms(100), 64),
              0.02, 0.002);
  // STORM: at 2 ms the overhead is ~2%, and at the paper's favoured
  // 50 ms it is negligible.
  EXPECT_LE(GangOverheadModel::storm().slowdown(SimTime::ms(2), 64), 0.021);
  EXPECT_LT(GangOverheadModel::storm().slowdown(SimTime::ms(50), 64), 0.001);
}

TEST(GangModels, MinFeasibleQuantumOrdering) {
  const double target = 0.02;
  const double rms =
      GangOverheadModel::rms().min_feasible_quantum(target, 64).to_millis();
  const double scored =
      GangOverheadModel::score_d().min_feasible_quantum(target, 64).to_millis();
  const double storm =
      GangOverheadModel::storm().min_feasible_quantum(target, 64).to_millis();
  EXPECT_GT(rms, 10'000.0);            // tens of seconds
  EXPECT_NEAR(scored, 100.0, 20.0);    // ~100 ms
  EXPECT_LE(storm, 2.5);               // ~2 ms
  // Two orders of magnitude between each tier, as the paper claims.
  EXPECT_GT(scored / storm, 30.0);
  EXPECT_GT(rms / scored, 30.0);
}

}  // namespace
}  // namespace storm::baselines
