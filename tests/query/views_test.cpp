// Canned operator views: every view renders from live tables, renders
// *identically* from a snapshot round trip (the statectl contract),
// and the spans --job filter works.
#include <gtest/gtest.h>

#include <string>

#include "query/snapshot.hpp"
#include "query/tables.hpp"
#include "query/views.hpp"
#include "sim/simulator.hpp"
#include "storm/cluster.hpp"
#include "telemetry/timeseries.hpp"

namespace storm::query {
namespace {

using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

TEST(Views, NamesAreStable) {
  const std::vector<std::string> expect{
      "summary", "nodes",   "queue", "matrix", "failures",
      "replication", "spans", "metrics", "top",    "watch"};
  EXPECT_EQ(view_names(), expect);
}

TEST(Views, UnknownViewSetsError) {
  const TableSet t;
  std::string err;
  const std::string out = render_view("bogus", t, ViewOptions{}, &err);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(err.empty());
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(Views, EveryViewRendersLiveAndFromSnapshotIdentically) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();
  cluster.enable_tracing();
  cluster.submit({.name = "first", .binary_size = 1_MB, .npes = 16});
  cluster.submit({.name = "second", .binary_size = 2_MB, .npes = 32});
  sim.run(200_ms);
  cluster.crash_node(12);  // give `failures` something to show
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));

  const TableSet live = live_tables(cluster);
  StateSnapshot parsed;
  std::string err;
  ASSERT_TRUE(from_json(to_json(capture(cluster)), parsed, &err)) << err;
  const TableSet from_file = parsed.tables();

  for (const std::string& name : view_names()) {
    std::string live_err, file_err;
    const std::string a = render_view(name, live, ViewOptions{}, &live_err);
    const std::string b =
        render_view(name, from_file, ViewOptions{}, &file_err);
    EXPECT_TRUE(live_err.empty()) << name << ": " << live_err;
    EXPECT_TRUE(file_err.empty()) << name << ": " << file_err;
    EXPECT_FALSE(a.empty()) << name;
    EXPECT_EQ(a.back(), '\n') << name;
    // The statectl contract: a view cannot tell a live cluster from a
    // parsed storm.state.v1 file.
    EXPECT_EQ(a, b) << name;
  }
}

TEST(Views, SummaryAndQueueShowTheRun) {
  sim::Simulator sim;
  core::Cluster cluster(sim, core::ClusterConfig::es40(8));
  cluster.submit({.name = "payload", .binary_size = 1_MB, .npes = 16});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const TableSet t = live_tables(cluster);
  std::string err;

  const std::string summary = render_view("summary", t, ViewOptions{}, &err);
  EXPECT_NE(summary.find("8 nodes"), std::string::npos) << summary;
  EXPECT_NE(summary.find("gang"), std::string::npos) << summary;

  const std::string queue = render_view("queue", t, ViewOptions{}, &err);
  EXPECT_NE(queue.find("payload"), std::string::npos) << queue;
  EXPECT_NE(queue.find("completed"), std::string::npos) << queue;
}

TEST(Views, SummaryShowsPeriodicLineOnlyWhenBatchingRan) {
  // Without heartbeats (and no coalesced timers) the batched-periodic
  // counters never register, and the summary must not change.
  {
    sim::Simulator sim;
    core::Cluster cluster(sim, core::ClusterConfig::es40(8));
    sim.run(100_ms);
    std::string err;
    const std::string summary =
        render_view("summary", live_tables(cluster), ViewOptions{}, &err);
    EXPECT_EQ(summary.find("periodic:"), std::string::npos) << summary;
  }
  // A heartbeat cluster sweeps and absorbs; the line appears.
  {
    sim::Simulator sim;
    core::ClusterConfig cfg = core::ClusterConfig::es40(8);
    cfg.storm.quantum = 10_ms;
    cfg.storm.heartbeat_enabled = true;
    cfg.storm.heartbeat_period_quanta = 5;
    core::Cluster cluster(sim, cfg);
    sim.run(1_sec);
    std::string err;
    const std::string summary =
        render_view("summary", live_tables(cluster), ViewOptions{}, &err);
    EXPECT_NE(summary.find("periodic:"), std::string::npos) << summary;
    EXPECT_NE(summary.find("mm sweep(s)"), std::string::npos) << summary;
    EXPECT_NE(summary.find("absorbed"), std::string::npos) << summary;
  }
}

TEST(Views, NodesViewCollapsesUniformRuns) {
  sim::Simulator sim;
  core::Cluster cluster(sim, core::ClusterConfig::es40(64));
  const TableSet t = live_tables(cluster);
  std::string err;
  const std::string out = render_view("nodes", t, ViewOptions{}, &err);
  // 64 identical idle nodes → one sinfo-style collapsed line.
  EXPECT_NE(out.find("0-63"), std::string::npos) << out;
  EXPECT_NE(out.find("up"), std::string::npos) << out;
}

TEST(Views, FailuresViewShowsCrashAndRestart) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);
  const core::JobId id = cluster.submit(
      {.name = "victim", .binary_size = 1_MB, .npes = 32,
       .program = [](core::AppContext& ctx) -> sim::Task<> {
         co_await ctx.compute(2_sec);
       }});
  sim.run(500_ms);
  // Crash inside the allocation, but never the MM's own node.
  const net::NodeRange alloc = cluster.job(id).nodes();
  const int victim = alloc.contains(0) ? alloc.last() : alloc.first;
  cluster.crash_node(victim);
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));

  const TableSet t = live_tables(cluster);
  std::string err;
  const std::string out = render_view("failures", t, ViewOptions{}, &err);
  EXPECT_NE(out.find(std::to_string(victim)), std::string::npos) << out;
  EXPECT_NE(out.find("victim"), std::string::npos) << out;
}

TEST(Views, ReplicationViewShowsRolesOrDisabledLine) {
  // Replication off: a fixed line, identical live and from a snapshot
  // (which omits the table entirely).
  {
    sim::Simulator sim;
    core::Cluster cluster(sim, core::ClusterConfig::es40(8));
    std::string err;
    const std::string out =
        render_view("replication", live_tables(cluster), ViewOptions{}, &err);
    EXPECT_EQ(out, "replication disabled\n");
  }
  // Replication on: one row per replica with roles and terms.
  {
    sim::Simulator sim;
    core::ClusterConfig cfg = core::ClusterConfig::es40(16);
    cfg.storm.quantum = 10_ms;
    cfg.storm.replication_enabled = true;
    core::Cluster cluster(sim, cfg);
    cluster.submit({.name = "payload", .binary_size = 1_MB, .npes = 16});
    ASSERT_TRUE(cluster.run_until_all_complete(60_sec));

    const TableSet live = live_tables(cluster);
    std::string err;
    const std::string out =
        render_view("replication", live, ViewOptions{}, &err);
    EXPECT_NE(out.find("leader"), std::string::npos) << out;
    EXPECT_NE(out.find("follower"), std::string::npos) << out;

    StateSnapshot parsed;
    ASSERT_TRUE(from_json(to_json(capture(cluster)), parsed, &err)) << err;
    EXPECT_EQ(parsed.replicas.size(), 3u);
    const std::string from_file =
        render_view("replication", parsed.tables(), ViewOptions{}, &err);
    EXPECT_EQ(out, from_file);
  }
}

TEST(Views, SpansJobFilter) {
  sim::Simulator sim;
  core::Cluster cluster(sim, core::ClusterConfig::es40(8));
  cluster.enable_tracing();
  cluster.submit({.name = "a", .binary_size = 1_MB, .npes = 8});
  cluster.submit({.name = "b", .binary_size = 1_MB, .npes = 8});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const TableSet t = live_tables(cluster);
  std::string err;

  const std::string all = render_view("spans", t, ViewOptions{}, &err);
  ViewOptions job0;
  job0.job = 0;
  const std::string only0 = render_view("spans", t, job0, &err);
  EXPECT_FALSE(only0.empty());
  EXPECT_LT(only0.size(), all.size());  // the filter drops job 1's spans

  ViewOptions absent;
  absent.job = 99;
  const std::string none = render_view("spans", t, absent, &err);
  EXPECT_NE(none.find("no spans"), std::string::npos) << none;
}

TEST(Views, TimeseriesViewsRenderLiveAndFromSnapshotIdentically) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();
  cluster.enable_timeseries({});
  cluster.submit({.name = "payload", .binary_size = 4_MB, .npes = 32});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));

  const TableSet live = live_tables(cluster);
  EXPECT_FALSE(live.timeseries.rows().empty());
  StateSnapshot parsed;
  std::string err;
  ASSERT_TRUE(from_json(to_json(capture(cluster)), parsed, &err)) << err;
  EXPECT_FALSE(parsed.timeseries.empty());

  for (const char* name : {"top", "watch", "metrics"}) {
    const std::string a = render_view(name, live, ViewOptions{}, &err);
    const std::string b =
        render_view(name, parsed.tables(), ViewOptions{}, &err);
    EXPECT_TRUE(err.empty()) << name << ": " << err;
    EXPECT_EQ(a, b) << name;
  }
  const std::string top = render_view("top", live, ViewOptions{}, &err);
  EXPECT_NE(top.find("timeseries: windows"), std::string::npos) << top;
  EXPECT_NE(top.find("fabric.bytes.payload"), std::string::npos) << top;

  // --prefix narrows the series list; --top caps it.
  ViewOptions narrowed;
  narrowed.prefix = "fabric.";
  narrowed.top = 2;
  const std::string few = render_view("top", live, narrowed, &err);
  EXPECT_NE(few.find("(prefix fabric.)"), std::string::npos) << few;
  EXPECT_LT(few.size(), top.size());
}

TEST(Views, TimeseriesViewsHintWhenRecorderOff) {
  sim::Simulator sim;
  core::Cluster cluster(sim, core::ClusterConfig::es40(4));
  cluster.enable_fabric_metrics();
  cluster.submit({.name = "a", .binary_size = 1_MB, .npes = 8});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const TableSet t = live_tables(cluster);
  std::string err;
  for (const char* name : {"top", "watch"}) {
    const std::string out = render_view(name, t, ViewOptions{}, &err);
    EXPECT_NE(out.find("no timeseries"), std::string::npos) << out;
  }
  // `metrics` reads the cumulative metrics table, which works without
  // the recorder.
  const std::string m = render_view("metrics", t, ViewOptions{}, &err);
  EXPECT_NE(m.find("fabric.bytes.payload"), std::string::npos) << m;
}

TEST(Views, SpansHintWhenTracingDisabled) {
  sim::Simulator sim;
  core::Cluster cluster(sim, core::ClusterConfig::es40(4));
  const TableSet t = live_tables(cluster);
  std::string err;
  const std::string out = render_view("spans", t, ViewOptions{}, &err);
  EXPECT_NE(out.find("tracing"), std::string::npos) << out;
}

}  // namespace
}  // namespace storm::query
