// Live tables against cluster ground truth, and the zero-copy
// contract: a Relation built once keeps seeing the cluster's current
// state on every re-scan.
#include <gtest/gtest.h>

#include <vector>

#include "query/tables.hpp"
#include "sim/simulator.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "telemetry/tracing.hpp"

namespace storm::query {
namespace {

using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;
using sim::SimTime;
using sim::Task;

core::AppProgram compute_program(SimTime work) {
  return [work](core::AppContext& ctx) -> Task<> {
    co_await ctx.compute(work);
  };
}

TEST(Tables, MetaMatchesConfig) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  core::Cluster cluster(sim, cfg);
  const ClusterMeta m = live_meta(cluster);
  EXPECT_EQ(m.nodes, 16);
  EXPECT_EQ(m.pls_per_node, cluster.pls_per_node());
  EXPECT_FALSE(m.plane_mode);
  EXPECT_EQ(m.scheduler, "gang");
  EXPECT_EQ(m.quantum_ns, (10_ms).raw_ns());
  EXPECT_EQ(m.seed, cfg.seed);
  EXPECT_EQ(m.mm_node, 0);
  EXPECT_FALSE(m.standby_active);
  EXPECT_EQ(m.queued, 0);
  EXPECT_EQ(m.completed, 0);
}

TEST(Tables, NodeTableCoversEveryNode) {
  sim::Simulator sim;
  core::Cluster cluster(sim, core::ClusterConfig::es40(8));
  const TableSet t = live_tables(cluster);
  EXPECT_EQ(t.nodes.count(), 8u);
  int expect = 0;
  t.nodes.for_each([&](const NodeRow& n) {
    EXPECT_EQ(n.node, expect++);  // scan order: node id
    EXPECT_FALSE(n.failed);
    EXPECT_EQ(n.pl_busy, 0);
    EXPECT_EQ(n.matrix_cells, 0);
  });
}

TEST(Tables, JobLifecycleAndMatrixPlacement) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(8);
  cfg.storm.quantum = 10_ms;
  core::Cluster cluster(sim, cfg);
  const core::JobId id = cluster.submit({.name = "work",
                                         .binary_size = 1_MB,
                                         .npes = 16,  // 4 nodes
                                         .program = compute_program(1_sec)});
  sim.run(500_ms);  // mid-run: transferring done, job on CPUs

  const TableSet t = live_tables(cluster);
  const auto jrow = t.jobs.first();
  ASSERT_TRUE(jrow.has_value());
  EXPECT_EQ(jrow->id, id);
  EXPECT_EQ(jrow->name, "work");
  EXPECT_TRUE(occupies_resources(jrow->state));
  ASSERT_TRUE(jrow->placed);
  EXPECT_EQ(jrow->node_count, 4);
  // Job-recorded allocation and matrix placement agree.
  EXPECT_EQ(jrow->placement_row, jrow->row);
  EXPECT_EQ(jrow->placement_first, jrow->first_node);
  EXPECT_EQ(jrow->placement_count, jrow->node_count);
  // The matrix_slots table holds exactly the placement's cells.
  EXPECT_EQ(t.matrix_slots.count(), 4u);
  t.matrix_slots.for_each([&](const MatrixSlotRow& s) {
    EXPECT_EQ(s.job, id);
    EXPECT_EQ(s.row, jrow->placement_row);
    EXPECT_GE(s.node, jrow->placement_first);
    EXPECT_LT(s.node, jrow->placement_first + jrow->placement_count);
  });
  // Node rows see the same occupancy from the plane side.
  const std::size_t owning = t.nodes.count(
      [](const NodeRow& n) { return n.matrix_cells > 0; });
  EXPECT_EQ(owning, 4u);

  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  // Same TableSet, rescanned: the relations are zero-copy views, so
  // the completed state is visible without rebuilding them.
  const auto done = t.jobs.first();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, core::JobState::Completed);
  EXPECT_FALSE(done->placed);
  EXPECT_EQ(t.matrix_slots.count(), 0u);
  EXPECT_GT(done->finished_ns, done->started_ns);
  // meta is a value snapshot, NOT live — rebuild to refresh.
  EXPECT_EQ(t.meta.completed, 0);
  EXPECT_EQ(live_meta(cluster).completed, 1);
}

TEST(Tables, CrashedNodeShowsAllFlags) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);
  sim.run(200_ms);
  cluster.crash_node(9);
  sim.run(1_sec);  // heartbeat slack passes; MM declares the death

  const TableSet t = live_tables(cluster);
  const auto nine = t.nodes
                        .where([](const NodeRow& n) { return n.node == 9; })
                        .first();
  ASSERT_TRUE(nine.has_value());
  EXPECT_TRUE(nine->failed);     // plane ground truth
  EXPECT_TRUE(nine->crashed);    // crash model
  EXPECT_TRUE(nine->mm_failed);  // declared by the MM
  EXPECT_TRUE(nine->evicted);    // removed from the buddy trees
  EXPECT_EQ(nine->pl_busy, 0);
  EXPECT_EQ(t.nodes.count([](const NodeRow& n) { return n.failed; }), 1u);
}

TEST(Tables, IncarnationsTrackRequeues) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);
  const core::JobId id = cluster.submit({.name = "victim",
                                         .binary_size = 1_MB,
                                         .npes = 32,  // 8 nodes: 0-7
                                         .program = compute_program(2_sec)});
  sim.run(500_ms);
  ASSERT_TRUE(cluster.job(id).state() == core::JobState::Running);
  // Crash inside the allocation, but never the MM's own node.
  const net::NodeRange alloc = cluster.job(id).nodes();
  const int victim = alloc.contains(0) ? alloc.last() : alloc.first;
  cluster.crash_node(victim);
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));

  const TableSet t = live_tables(cluster);
  const auto j = t.jobs.first();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->restarts, 1);
  EXPECT_EQ(j->incarnation, 1);
  // One row per incarnation; only the last is current, none live
  // (the job is terminal).
  EXPECT_EQ(t.incarnations.count(), 2u);
  t.incarnations.for_each([&](const IncarnationRow& i) {
    EXPECT_EQ(i.job, id);
    EXPECT_EQ(i.current, i.inc == 1);
    EXPECT_FALSE(i.live);
    EXPECT_EQ(i.trace, telemetry::job_trace_id(static_cast<int>(i.job),
                                               i.inc));
  });
}

TEST(Tables, MetricsAndSpansTables) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(8);
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();
  cluster.enable_tracing();
  cluster.submit({.name = "noop", .binary_size = 1_MB, .npes = 8});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));

  const TableSet t = live_tables(cluster);
  EXPECT_GT(t.metrics.count(), 0u);
  // Registry scan order: name-sorted within each kind; all kinds typed.
  t.metrics.for_each([&](const MetricRow& m) {
    EXPECT_TRUE(m.kind == "counter" || m.kind == "gauge" ||
                m.kind == "histogram")
        << m.name;
  });
  EXPECT_TRUE(t.metrics.any([](const MetricRow& m) {
    return m.kind == "counter" && m.name == "fabric.launch.wire_ops" &&
           m.count > 0;
  }));
  EXPECT_GT(t.spans.count(), 0u);
  // Spans scan in buffer (id) order; closed spans have an end.
  t.spans.for_each([&](const SpanRow& s) {
    if (!s.open()) {
      EXPECT_GE(s.t_end_ns, s.t_start_ns);
    }
  });
}

TEST(Tables, SpansEmptyWithoutTracer) {
  sim::Simulator sim;
  core::Cluster cluster(sim, core::ClusterConfig::es40(4));
  const TableSet t = live_tables(cluster);
  EXPECT_EQ(t.spans.count(), 0u);
}

}  // namespace
}  // namespace storm::query
