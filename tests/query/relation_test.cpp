// Relation<Row> combinator semantics: composition, determinism, early
// exit, and the materialization points (order_by / join / group_by).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "query/relation.hpp"

namespace storm::query {
namespace {

struct Item {
  int id;
  std::string group;
  int value;
};

Relation<Item> fixture() {
  return Relation<Item>::of({
      {0, "a", 5},
      {1, "b", 3},
      {2, "a", 7},
      {3, "c", 1},
      {4, "b", 4},
  });
}

TEST(Relation, OfAndRows) {
  const auto r = fixture();
  EXPECT_EQ(r.count(), 5u);
  const auto rows = r.rows();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[2].group, "a");
}

TEST(Relation, DefaultIsEmpty) {
  const Relation<Item> r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_FALSE(r.first().has_value());
}

TEST(Relation, WhereFilters) {
  const auto r = fixture().where([](const Item& i) { return i.value > 3; });
  EXPECT_EQ(r.count(), 3u);
  EXPECT_EQ(r.count([](const Item& i) { return i.group == "a"; }), 2u);
}

TEST(Relation, SelectProjects) {
  const auto vals = fixture().select<int>(
      [](const Item& i) { return i.value * 2; });
  EXPECT_EQ(vals.rows(), (std::vector<int>{10, 6, 14, 2, 8}));
}

TEST(Relation, OrderByIsStable) {
  // Two rows share group "a" and two share "b": a stable sort keyed on
  // group alone must keep each pair in scan order.
  const auto sorted = fixture().order_by<std::string>(
      [](const Item& i) { return i.group; });
  std::vector<int> ids;
  sorted.for_each([&](const Item& i) { ids.push_back(i.id); });
  EXPECT_EQ(ids, (std::vector<int>{0, 2, 1, 4, 3}));
}

TEST(Relation, JoinMatchesKeys) {
  struct Label {
    std::string group;
    std::string text;
  };
  const auto labels = Relation<Label>::of({{"a", "alpha"}, {"b", "beta"}});
  const auto joined = fixture().join<Label, std::string>(
      labels, [](const Item& i) { return i.group; },
      [](const Label& l) { return l.group; });
  std::vector<std::pair<int, std::string>> got;
  joined.for_each([&](const std::pair<Item, Label>& p) {
    got.emplace_back(p.first.id, p.second.text);
  });
  // Group "c" has no label row — inner join drops it; output is in
  // left-scan order.
  const std::vector<std::pair<int, std::string>> expect{
      {0, "alpha"}, {1, "beta"}, {2, "alpha"}, {4, "beta"}};
  EXPECT_EQ(got, expect);
}

TEST(Relation, EarlyExitStopsScan) {
  int visited = 0;
  fixture().scan([&](const Item&) {
    ++visited;
    return visited < 2;
  });
  EXPECT_EQ(visited, 2);

  // first() visits exactly one row.
  visited = 0;
  const Relation<Item> counted(
      [base = fixture(), &visited](const Relation<Item>::Visit& v) {
        base.scan([&](const Item& i) {
          ++visited;
          return v(i);
        });
      });
  const auto f = counted.first();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->id, 0);
  EXPECT_EQ(visited, 1);
}

TEST(Relation, EarlyExitPropagatesThroughJoin) {
  const auto right = Relation<int>::of({1, 2, 3});
  const auto joined = fixture().join<int, int>(
      right, [](const Item&) { return 1; }, [](const int& x) { return x; });
  // Every left row matches right row 1 → 5 pairs; take only the first.
  std::size_t seen = 0;
  joined.scan([&](const std::pair<Item, int>&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1u);
}

TEST(Relation, AnyAllFold) {
  const auto r = fixture();
  EXPECT_TRUE(r.any([](const Item& i) { return i.value == 7; }));
  EXPECT_FALSE(r.any([](const Item& i) { return i.value == 99; }));
  EXPECT_TRUE(r.all([](const Item& i) { return i.value >= 1; }));
  EXPECT_FALSE(r.all([](const Item& i) { return i.value >= 2; }));
  const int total = r.fold<int>(
      0, [](int& acc, const Item& i) { acc += i.value; });
  EXPECT_EQ(total, 20);
}

TEST(Relation, GroupByAccumulatesInKeyOrder) {
  const auto groups = fixture().group_by<std::string, int>(
      [](const Item& i) { return i.group; }, 0,
      [](int& acc, const Item& i) { acc += i.value; });
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at("a"), 12);
  EXPECT_EQ(groups.at("b"), 7);
  EXPECT_EQ(groups.at("c"), 1);
  // std::map iteration: deterministic key order.
  std::vector<std::string> keys;
  for (const auto& [k, v] : groups) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Relation, PipelinesReScanEachUse) {
  const auto r = fixture();
  const auto filtered = r.where([](const Item& i) { return i.value > 0; });
  EXPECT_EQ(filtered.count(), 5u);
  EXPECT_EQ(filtered.count(), 5u);  // no caching between scans
}

}  // namespace
}  // namespace storm::query
