// The invariant registry: clean runs (small, fault campaign, 16k-node
// plane mode) pass; a deliberately corrupted TableSet makes each of
// the thirteen invariants fire — proving every check has teeth.
//
// Corruptions are synthetic TableSets built with Relation::of — the
// cluster proper has no mutators that can produce these states, which
// is the point.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/invariants.hpp"
#include "query/tables.hpp"
#include "sim/simulator.hpp"
#include "storm/cluster.hpp"

namespace storm::query {
namespace {

using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;
using sim::SimTime;
using sim::Task;

core::AppProgram compute_program(SimTime work) {
  return [work](core::AppContext& ctx) -> Task<> {
    co_await ctx.compute(work);
  };
}

// --- synthetic-TableSet helpers -------------------------------------------

TableSet synth() {
  TableSet t;
  t.meta.nodes = 8;
  t.meta.pls_per_node = 8;
  t.meta.scheduler = "gang";
  t.meta.max_job_restarts = 2;
  t.meta.matrix_rows = 2;
  return t;
}

JobRow running_job(core::JobId id, int row, int first, int count) {
  JobRow j;
  j.id = id;
  j.name = "j" + std::to_string(id);
  j.state = core::JobState::Running;
  j.row = row;
  j.first_node = first;
  j.node_count = count;
  j.placed = true;
  j.placement_row = row;
  j.placement_first = first;
  j.placement_count = count;
  return j;
}

/// check_invariants(t) must fail, and every violation must come from
/// the one expected invariant (no collateral damage from the
/// corruption leaking into other checks).
void expect_only(const TableSet& t, const std::string& name,
                 std::size_t at_least = 1) {
  const InvariantReport report = check_invariants(t);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.violations.size(), at_least) << report.summary();
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.invariant, name) << v.detail;
  }
}

TEST(Invariants, CleanSyntheticTableSetPasses) {
  const TableSet t = synth();
  const InvariantReport report = check_invariants(t);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.invariants_run, 13);
  EXPECT_EQ(report.summary(), "ok (13 invariants)");
}

// --- one corruption per invariant -----------------------------------------

TEST(Invariants, SlotOwnerLiveFires) {
  // (a) a cell owned by a job nobody knows.
  TableSet t = synth();
  t.matrix_slots = Relation<MatrixSlotRow>::of({{0, 3, 7}});
  expect_only(t, "slot-owner-live");

  // (b) a cell owned by a terminal job.
  t = synth();
  JobRow done = running_job(1, 0, 2, 2);
  done.state = core::JobState::Completed;
  done.placed = false;
  t.meta.completed = 1;
  t.jobs = Relation<JobRow>::of({done});
  t.matrix_slots = Relation<MatrixSlotRow>::of({{0, 2, 1}});
  expect_only(t, "slot-owner-live");

  // (c) a cell outside its owner's recorded placement.
  t = synth();
  t.jobs = Relation<JobRow>::of({running_job(1, 0, 0, 2)});
  t.matrix_slots =
      Relation<MatrixSlotRow>::of({{0, 0, 1}, {0, 1, 1}, {0, 5, 1}});
  expect_only(t, "slot-owner-live");
}

TEST(Invariants, PlacementAllocationAgreeFires) {
  // (a) job record and matrix placement diverge.
  TableSet t = synth();
  JobRow skewed = running_job(1, 0, 0, 4);
  skewed.placement_first = 2;  // matrix says nodes 2+4, job says 0+4
  t.jobs = Relation<JobRow>::of({skewed});
  expect_only(t, "placement-allocation-agree");

  // (b) gang scheduling: a resource-owning job with no placement.
  t = synth();
  JobRow floating = running_job(2, 0, 0, 4);
  floating.placed = false;
  t.jobs = Relation<JobRow>::of({floating});
  expect_only(t, "placement-allocation-agree");

  // (b') ...which the locally-scheduled foils are allowed to do.
  t.meta.scheduler = "local-os";
  EXPECT_TRUE(check_invariants(t).ok());
}

TEST(Invariants, LiveAllocationsDisjointFires) {
  TableSet t = synth();
  t.jobs = Relation<JobRow>::of(
      {running_job(1, 0, 0, 4), running_job(2, 0, 2, 4)});
  expect_only(t, "live-allocations-disjoint");

  // Different rows: timesharing the same nodes is legal.
  t.jobs = Relation<JobRow>::of(
      {running_job(1, 0, 0, 4), running_job(2, 1, 2, 4)});
  EXPECT_TRUE(check_invariants(t).ok());

  // The uncoordinated foils share nodes by design.
  t.jobs = Relation<JobRow>::of(
      {running_job(1, 0, 0, 4), running_job(2, 0, 2, 4)});
  t.meta.scheduler = "implicit-cosched";
  EXPECT_TRUE(check_invariants(t).ok());
}

TEST(Invariants, FailedNodePlIdleFires) {
  TableSet t = synth();
  NodeRow dead;
  dead.node = 3;
  dead.failed = true;
  dead.pl_mask = 0b101;
  dead.pl_busy = 2;
  t.nodes = Relation<NodeRow>::of({dead});
  expect_only(t, "failed-node-pl-idle");
}

TEST(Invariants, EvictedNodeUnusedFires) {
  // (a) an evicted node still owning matrix cells.
  TableSet t = synth();
  NodeRow gone;
  gone.node = 1;
  gone.evicted = true;
  gone.matrix_cells = 2;
  t.nodes = Relation<NodeRow>::of({gone});
  expect_only(t, "evicted-node-unused");

  // (b) a live placement spanning an evicted node.
  t = synth();
  gone.matrix_cells = 0;
  t.nodes = Relation<NodeRow>::of({gone});
  t.jobs = Relation<JobRow>::of({running_job(1, 0, 0, 4)});  // spans node 1
  expect_only(t, "evicted-node-unused");
}

TEST(Invariants, HeartbeatFreshFires) {
  TableSet t = synth();
  t.meta.heartbeat_enabled = true;
  t.meta.heartbeat_miss_periods = 2;  // slack = 3
  t.meta.hb_epoch = 20;
  NodeRow fresh;      // within slack: fine
  fresh.node = 0;
  fresh.heartbeat = 19;
  NodeRow stale;      // lags by 10 > 3 and was never declared dead
  stale.node = 1;
  stale.heartbeat = 10;
  NodeRow unjoined;   // word 0: not in the protocol yet, skipped
  unjoined.node = 2;
  NodeRow declared;   // suspect: skipped (the failure path covers it)
  declared.node = 3;
  declared.heartbeat = 1;
  declared.mm_failed = true;
  t.nodes = Relation<NodeRow>::of({fresh, stale, unjoined, declared});
  const InvariantReport report = check_invariants(t);
  ASSERT_EQ(report.violations.size(), 1u) << report.summary();
  EXPECT_EQ(report.violations[0].invariant, "heartbeat-fresh");
  EXPECT_NE(report.violations[0].detail.find("node 1"), std::string::npos);
}

TEST(Invariants, QueueAccountingFires) {
  TableSet t = synth();
  JobRow queued;
  queued.id = 1;
  queued.name = "q";
  JobRow done;
  done.id = 2;
  done.name = "d";
  done.state = core::JobState::Completed;
  t.jobs = Relation<JobRow>::of({queued, done});
  t.meta.queued = 2;     // MM thinks two queued; table holds one
  t.meta.completed = 0;  // MM missed the completion
  expect_only(t, "queue-accounting", 2);

  // After a failover the completed counter is rebuilt from scratch and
  // exempt; the queue-length check still applies.
  t.meta.standby_active = true;
  expect_only(t, "queue-accounting", 1);
}

TEST(Invariants, JobLifecycleFires) {
  // (a) restart budget blown (cap is max_job_restarts + 1 = 3).
  TableSet t = synth();
  JobRow churner;
  churner.id = 1;
  churner.name = "churner";
  churner.state = core::JobState::Aborted;  // killed for good
  churner.restarts = 4;
  t.meta.completed = 1;
  t.jobs = Relation<JobRow>::of({churner});
  expect_only(t, "job-lifecycle");

  // (b) non-monotone lifecycle timestamps on a completed job.
  t = synth();
  JobRow warped;
  warped.id = 2;
  warped.name = "warped";
  warped.state = core::JobState::Completed;
  warped.submit_ns = 100;
  warped.transfer_start_ns = 50;    // precedes submit
  warped.first_proc_started_ns = 100;
  warped.last_proc_exited_ns = 50;  // exit precedes start
  t.meta.completed = 1;
  t.jobs = Relation<JobRow>::of({warped});
  expect_only(t, "job-lifecycle", 2);
}

TEST(Invariants, MetricsSaneFires) {
  TableSet t = synth();
  MetricRow neg{.name = "bad.counter", .kind = "counter", .count = -1};
  MetricRow inverted{.name = "bad.hist1", .kind = "histogram",
                     .count = 3, .sum = 9, .min = 5, .max = 2};
  MetricRow impossible{.name = "bad.hist2", .kind = "histogram",
                       .count = 2, .sum = 100, .min = 1, .max = 10};
  t.metrics = Relation<MetricRow>::of({neg, inverted, impossible});
  expect_only(t, "metrics-sane", 3);
}

TEST(Invariants, MsgClassReconcileFires) {
  TableSet t = synth();
  MetricRow wire{.name = "fabric.launch.wire_ops", .kind = "counter",
                 .count = 10};
  MetricRow delivered{.name = "fabric.launch.delivered", .kind = "counter",
                      .count = 4};  // 6 wire ops unaccounted for
  t.metrics = Relation<MetricRow>::of({wire, delivered});
  expect_only(t, "msgclass-reconcile");
}

ReplicaRow replica(int rank, const std::string& role, std::int64_t term,
                   std::int64_t commit, std::int64_t floor_index,
                   std::uint64_t floor_digest) {
  ReplicaRow r;
  r.rank = rank;
  r.node = rank == 0 ? 0 : 16 - 3 + rank;
  r.role = role;
  r.term = term;
  r.commit = commit;
  r.applied = commit;
  r.log_size = commit;
  r.floor_index = floor_index;
  r.floor_digest = floor_digest;
  return r;
}

TEST(Invariants, AtMostOneLeaderPerTermFires) {
  // Split brain as the query layer would see it: two replicas both
  // claiming term 3.
  TableSet t = synth();
  t.replicas = Relation<ReplicaRow>::of({replica(0, "leader", 3, 5, 4, 0xAB),
                                         replica(1, "leader", 3, 5, 4, 0xAB),
                                         replica(2, "follower", 3, 4, 4, 0xAB)});
  expect_only(t, "at-most-one-leader-per-term");

  // Leaders of *different* terms can transiently coexist in a sample
  // (the old one has not heard of its deposition yet): legal.
  t.replicas = Relation<ReplicaRow>::of({replica(0, "leader", 2, 5, 4, 0xAB),
                                         replica(1, "leader", 3, 5, 4, 0xAB),
                                         replica(2, "follower", 3, 4, 4, 0xAB)});
  EXPECT_TRUE(check_invariants(t).ok());
}

TEST(Invariants, CommittedPrefixAgreementFires) {
  // (a) same floor, different digests: the logs diverged inside the
  // committed prefix.
  TableSet t = synth();
  t.replicas = Relation<ReplicaRow>::of({replica(0, "leader", 2, 6, 4, 0xAB),
                                         replica(1, "follower", 2, 4, 4, 0xCD),
                                         replica(2, "follower", 2, 5, 4, 0xAB)});
  expect_only(t, "committed-prefix-agreement");

  // (b) replicas reporting different floors: the sample itself is
  // inconsistent.
  t.replicas = Relation<ReplicaRow>::of({replica(0, "leader", 2, 6, 4, 0xAB),
                                         replica(1, "follower", 2, 4, 3, 0xAB)});
  expect_only(t, "committed-prefix-agreement");

  // Agreement passes.
  t.replicas = Relation<ReplicaRow>::of({replica(0, "leader", 2, 6, 4, 0xAB),
                                         replica(1, "follower", 2, 4, 4, 0xAB),
                                         replica(2, "follower", 2, 5, 4, 0xAB)});
  EXPECT_TRUE(check_invariants(t).ok());
}

TEST(Invariants, TimeseriesSaneFires) {
  // (a) a window whose end precedes its start.
  TableSet t = synth();
  SeriesPointRow bad;
  bad.window = 3;
  bad.t_start_ns = 40'000'000;
  bad.t_end_ns = 30'000'000;
  bad.name = "fabric.strobe.delivered";
  bad.kind = "counter";
  bad.delta = 5;
  t.timeseries = Relation<SeriesPointRow>::of({bad});
  expect_only(t, "timeseries-sane");

  // (b) a counter that ran backwards.
  bad.t_end_ns = 50'000'000;
  bad.delta = -1;
  t.timeseries = Relation<SeriesPointRow>::of({bad});
  expect_only(t, "timeseries-sane");

  // (c) a histogram window with non-monotone quantiles.
  SeriesPointRow h;
  h.window = 0;
  h.t_start_ns = 0;
  h.t_end_ns = 10'000'000;
  h.name = "fabric.latency.strobe";
  h.kind = "histogram";
  h.count = 4;
  h.sum = 100;
  h.p50 = 96.0;
  h.p90 = 24.0;
  h.p99 = 96.0;
  t = synth();
  t.timeseries = Relation<SeriesPointRow>::of({h});
  expect_only(t, "timeseries-sane");

  // (d) rows out of time-major order.
  SeriesPointRow a = bad;
  a.delta = 1;
  SeriesPointRow b = a;
  b.window = 2;
  b.t_start_ns = 20'000'000;
  b.t_end_ns = 30'000'000;
  t = synth();
  t.timeseries = Relation<SeriesPointRow>::of({a, b});
  expect_only(t, "timeseries-sane");

  // (e) a breach with no rule.
  t = synth();
  t.breaches = Relation<BreachRow>::of({{"", "x", 0, 0, 1.0, 2.0}});
  expect_only(t, "timeseries-sane");

  // A well-formed point passes.
  t = synth();
  a.window = 1;
  a.t_start_ns = 10'000'000;
  a.t_end_ns = 20'000'000;
  t.timeseries = Relation<SeriesPointRow>::of({a, b});
  EXPECT_TRUE(check_invariants(t).ok());
}

// --- clean live runs -------------------------------------------------------

TEST(Invariants, CleanRunPasses) {
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();
  cluster.submit({.name = "a", .binary_size = 1_MB, .npes = 16,
                  .program = compute_program(200_ms)});
  cluster.submit({.name = "b", .binary_size = 1_MB, .npes = 32,
                  .program = compute_program(100_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const InvariantReport report = check_invariants(cluster);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Invariants, ProbeHoldsAcrossFaultCampaign) {
  // fig_recovery in miniature: crash the victim's first node mid-run,
  // let the heartbeat declare it, requeue, rejoin — with the full
  // registry asserted every recovery epoch (one probe per quantum).
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16);
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();
  const core::JobId id =
      cluster.submit({.name = "victim", .binary_size = 1_MB, .npes = 32,
                      .program = compute_program(2_sec)});

  InvariantProbe probe(cluster, 10_ms);
  probe.arm();
  sim.run(500_ms);
  ASSERT_EQ(cluster.job(id).state(), core::JobState::Running);
  // Crash inside the allocation, but never the MM's own node.
  const net::NodeRange alloc = cluster.job(id).nodes();
  const int victim = alloc.contains(0) ? alloc.last() : alloc.first;
  cluster.crash_node(victim);
  sim.run(1_sec);
  cluster.recover_node(victim);
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  probe.disarm();

  EXPECT_GT(probe.checks(), 100);
  EXPECT_TRUE(probe.violations().empty())
      << probe.violations()[0].invariant << ": "
      << probe.violations()[0].detail;
  EXPECT_EQ(cluster.job(id).restarts(), 1);
  const InvariantReport final_report = check_invariants(cluster);
  EXPECT_TRUE(final_report.ok()) << final_report.summary();
}

TEST(Invariants, TerascalePlaneModePasses) {
  // The 16k-node acceptance run: plane-mode cluster, full launch of a
  // 12 MB binary on every node, invariants checked mid-flight and at
  // the end. The registry sees plane words, not NM/PL objects, and
  // must hold in both worlds.
  sim::Simulator sim;
  core::ClusterConfig cfg = core::ClusterConfig::es40(16384);
  cfg.plane_mode = true;
  cfg.storm.quantum = 1_ms;
  core::Cluster cluster(sim, cfg);
  const core::JobId id = cluster.submit(
      {.name = "noop", .binary_size = 12_MB,
       .npes = 16384 * cfg.app_cpus_per_node});

  InvariantProbe probe(cluster, 100_ms);
  probe.arm();
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));
  probe.disarm();

  EXPECT_GT(probe.checks(), 0);
  EXPECT_TRUE(probe.violations().empty())
      << probe.violations()[0].invariant << ": "
      << probe.violations()[0].detail;
  EXPECT_EQ(cluster.job(id).state(), core::JobState::Completed);
  const InvariantReport report = check_invariants(cluster);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(live_tables(cluster).meta.plane_mode);
}

}  // namespace
}  // namespace storm::query
