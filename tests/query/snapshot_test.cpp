// storm.state.v1 snapshots: JSON reader units, capture → to_json →
// from_json round trips, same-seed byte-identity, and snapshot
// location inside mixed bench output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/json.hpp"
#include "query/snapshot.hpp"
#include "query/tables.hpp"
#include "sim/simulator.hpp"
#include "storm/cluster.hpp"

namespace storm::query {
namespace {

using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

// --- json reader units ----------------------------------------------------

TEST(Json, ScalarsAndExactIntegers) {
  json::Value v;
  ASSERT_TRUE(json::parse("  {\"a\": 9223372036854775807, \"b\": -4, "
                          "\"c\": 1.5, \"d\": true, \"e\": null, "
                          "\"f\": \"hi\\n\\\"there\\\"\", \"g\": 2e3}  ",
                          v));
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->integral);
  EXPECT_EQ(a->as_int(), 9223372036854775807LL);  // survives exactly
  EXPECT_EQ(v.find("b")->as_int(), -4);
  EXPECT_FALSE(v.find("c")->integral);
  EXPECT_DOUBLE_EQ(v.find("c")->as_double(), 1.5);
  EXPECT_TRUE(v.find("d")->boolean);
  EXPECT_TRUE(v.find("e")->is_null());
  EXPECT_EQ(v.find("f")->string, "hi\n\"there\"");
  EXPECT_FALSE(v.find("g")->integral);  // exponent → not exact
  EXPECT_DOUBLE_EQ(v.find("g")->as_double(), 2000.0);
}

TEST(Json, ArraysAndNesting) {
  json::Value v;
  ASSERT_TRUE(json::parse("[1, [2, {\"k\": [3]}], []]", v));
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_EQ(v.array[0].as_int(), 1);
  EXPECT_EQ(v.array[1].array[1].find("k")->array[0].as_int(), 3);
  EXPECT_TRUE(v.array[2].array.empty());
}

TEST(Json, MalformedInputsError) {
  const char* bad[] = {
      "",          "{",        "[1,]",      "{\"a\" 1}", "{\"a\": }",
      "tru",       "\"unterminated",        "{\"a\": 1} extra",
      "[1 2]",     "01",       "+1",
  };
  for (const char* text : bad) {
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse(text, v, &err)) << "accepted: " << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(Json, DuplicateKeysFirstWins) {
  json::Value v;
  ASSERT_TRUE(json::parse("{\"k\": 1, \"k\": 2}", v));
  EXPECT_EQ(v.find("k")->as_int(), 1);  // find() returns first match
}

// --- round trips ----------------------------------------------------------

core::ClusterConfig test_config(std::uint64_t seed = 42) {
  core::ClusterConfig cfg = core::ClusterConfig::es40(8);
  cfg.seed = seed;
  return cfg;
}

std::string run_and_snapshot(std::uint64_t seed) {
  sim::Simulator sim;
  core::Cluster cluster(sim, test_config(seed));
  cluster.enable_fabric_metrics();
  cluster.enable_tracing();
  cluster.submit({.name = "noop", .binary_size = 1_MB, .npes = 16});
  cluster.submit({.name = "noop2", .binary_size = 2_MB, .npes = 8});
  EXPECT_TRUE(cluster.run_until_all_complete(60_sec));
  return to_json(capture(cluster));
}

TEST(Snapshot, RoundTripPreservesEveryTable) {
  sim::Simulator sim;
  core::Cluster cluster(sim, test_config());
  cluster.enable_fabric_metrics();
  cluster.enable_tracing();
  cluster.submit({.name = "noop", .binary_size = 1_MB, .npes = 16});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));

  const StateSnapshot a = capture(cluster);
  const std::string json_a = to_json(a);
  StateSnapshot b;
  std::string err;
  ASSERT_TRUE(from_json(json_a, b, &err)) << err;
  EXPECT_EQ(b.meta.nodes, a.meta.nodes);
  EXPECT_EQ(b.meta.seed, a.meta.seed);
  EXPECT_EQ(b.meta.completed, a.meta.completed);
  EXPECT_EQ(b.nodes.size(), a.nodes.size());
  EXPECT_EQ(b.jobs.size(), a.jobs.size());
  EXPECT_EQ(b.incarnations.size(), a.incarnations.size());
  EXPECT_EQ(b.matrix_slots.size(), a.matrix_slots.size());
  EXPECT_EQ(b.metrics.size(), a.metrics.size());
  EXPECT_EQ(b.spans.size(), a.spans.size());
  // The strongest check: re-serialising the parsed snapshot is
  // byte-identical, so no field was lost or re-formatted.
  EXPECT_EQ(to_json(b), json_a);
}

TEST(Snapshot, SameSeedRunsAreByteIdentical) {
  EXPECT_EQ(run_and_snapshot(7), run_and_snapshot(7));
}

TEST(Snapshot, DifferentSeedsDiffer) {
  EXPECT_NE(run_and_snapshot(7), run_and_snapshot(8));
}

TEST(Snapshot, FromJsonRejectsWrongSchema) {
  StateSnapshot s;
  std::string err;
  EXPECT_FALSE(from_json("{\"schema\": \"storm.metrics.v1\"}", s, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(from_json("not json", s, &err));
  EXPECT_FALSE(from_json("[]", s, &err));
}

TEST(Snapshot, TablesViewMatchesVectors) {
  sim::Simulator sim;
  core::Cluster cluster(sim, test_config());
  cluster.submit({.name = "noop", .binary_size = 1_MB, .npes = 8});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const StateSnapshot s = capture(cluster);
  const TableSet t = s.tables();
  EXPECT_EQ(t.nodes.count(), s.nodes.size());
  EXPECT_EQ(t.jobs.count(), s.jobs.size());
  EXPECT_EQ(t.meta.nodes, s.meta.nodes);
  // tables() is self-contained: scanning after the snapshot copy
  // would dangle if it captured references. (Scoped copy below.)
  Relation<JobRow> jobs;
  {
    const StateSnapshot scoped = s;
    jobs = scoped.tables().jobs;
  }
  EXPECT_EQ(jobs.count(), s.jobs.size());
}

// --- find_state_json ------------------------------------------------------

TEST(Snapshot, FindStateJsonInMixedOutput) {
  // A bench with `--state -` prints its tables first and the snapshot
  // last; find_state_json returns everything from the marker on.
  const std::string snap = run_and_snapshot(3);
  const std::string mixed =
      "bench banner\ntable row 1\ntable row 2\n" + snap;
  const std::string_view found = find_state_json(mixed);
  EXPECT_EQ(std::string(found), snap);
}

TEST(Snapshot, FindStateJsonPicksLastSnapshot) {
  const std::string a = run_and_snapshot(3);
  const std::string b = run_and_snapshot(4);
  const std::string mixed = a + "\nmore text\n" + b;
  EXPECT_EQ(std::string(find_state_json(mixed)), b);
}

TEST(Snapshot, FindStateJsonEmptyWhenAbsent) {
  EXPECT_TRUE(find_state_json("no snapshot here").empty());
  EXPECT_TRUE(find_state_json("").empty());
}

}  // namespace
}  // namespace storm::query
