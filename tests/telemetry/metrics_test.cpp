// MetricsRegistry primitives: histogram bucket boundaries, merge
// semantics, span timing, JSON export stability and the trace-line
// hook.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace storm::telemetry {
namespace {

using namespace storm::sim::time_literals;

TEST(Histogram, BucketBoundaries) {
  // Bucket 0: non-positive samples.
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(-1), 0);
  EXPECT_EQ(Histogram::bucket_of(std::int64_t{-1} << 40), 0);
  // Bucket i (i >= 1) covers [2^(i-1), 2^i): exact powers of two open
  // a new bucket, their predecessors close the previous one.
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of((std::int64_t{1} << 47) - 1), 47);
  EXPECT_EQ(Histogram::bucket_of(std::int64_t{1} << 47), 48);
  // Overflow: everything at or above 2^48 lands in the last bucket.
  EXPECT_EQ(Histogram::bucket_of((std::int64_t{1} << 48) - 1), 48);
  EXPECT_EQ(Histogram::bucket_of(std::int64_t{1} << 48), 49);
  EXPECT_EQ(Histogram::bucket_of(std::int64_t{1} << 62),
            Histogram::kOverflowBucket);
}

TEST(Histogram, BucketLoIsInverseOfBucketOf) {
  for (int i = 1; i < Histogram::kOverflowBucket; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(i)), i);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(i) - 1), i - 1);
  }
  EXPECT_EQ(Histogram::bucket_lo(0), 0);
}

TEST(Histogram, RecordTracksMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.record(10);
  h.record(1000);
  h.record(0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 1010);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 1010.0 / 3.0);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_of(10)), 1);
  EXPECT_EQ(h.bucket_count(0), 1);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.record(4);
  b.record(1024);
  b.record(2);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.sum(), 1030);
  EXPECT_EQ(a.min(), 2);
  EXPECT_EQ(a.max(), 1024);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3);
}

TEST(Registry, InstrumentsAreStableAndIdempotent) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x");
  Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(reg.find_counter("x")->value(), 3);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, MergeSemantics) {
  MetricsRegistry a, b;
  a.counter("c").add(1);
  b.counter("c").add(2);
  b.gauge("g").set(7.0);
  a.gauge("g").set(3.0);
  b.histogram("h").record(5);
  a.merge(b);
  EXPECT_EQ(a.find_counter("c")->value(), 3);
  // Gauges: the merged-in (later) run's sample wins.
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 7.0);
  EXPECT_EQ(a.find_histogram("h")->count(), 1);
}

TEST(Registry, JsonIsSortedAndStable) {
  MetricsRegistry a;
  a.counter("zeta").add(1);
  a.counter("alpha").add(2);
  a.gauge("mid").set(0.25);
  a.histogram("lat").record(3);
  const std::string j1 = a.to_json();
  // Same content inserted in a different order serialises identically.
  MetricsRegistry b;
  b.histogram("lat").record(3);
  b.counter("alpha").add(2);
  b.gauge("mid").set(0.25);
  b.counter("zeta").add(1);
  EXPECT_EQ(j1, b.to_json());
  EXPECT_NE(j1.find("\"schema\": \"storm.metrics.v1\""), std::string::npos);
  EXPECT_LT(j1.find("\"alpha\""), j1.find("\"zeta\""));
  // Histogram buckets export as [lo, count] pairs; 3 lives in [2, 4).
  EXPECT_NE(j1.find("\"buckets\": [[2, 1]]"), std::string::npos);
}

TEST(Registry, EmptyJsonIsWellFormed) {
  MetricsRegistry reg;
  const std::string j = reg.to_json();
  EXPECT_NE(j.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(j.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(j.find("\"histograms\": {}"), std::string::npos);
}

TEST(Gauge, SetMaxKeepsHighWaterMark) {
  Gauge g;
  EXPECT_FALSE(g.ever_set());
  g.set_max(2.0);
  g.set_max(5.0);
  g.set_max(3.0);
  EXPECT_TRUE(g.ever_set());
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(Span, RecordsSimulatedDuration) {
  sim::Simulator sim;
  MetricsRegistry reg;
  Histogram& h = reg.histogram("span_ns");
  {
    Span span(sim, h);
    sim.run(25_us);  // empty queue: the clock jumps to `until`
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), (25_us).raw_ns());
}

TEST(OverheadRatio, ComputedFromByteCounters) {
  MetricsRegistry reg;
  update_overhead_ratio(reg);  // no counters: no gauge appears
  EXPECT_EQ(reg.find_gauge(kOverheadRatioGauge), nullptr);
  reg.counter(kControlBytesCounter).add(100);
  reg.counter(kPayloadBytesCounter).add(900);
  update_overhead_ratio(reg);
  ASSERT_NE(reg.find_gauge(kOverheadRatioGauge), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge(kOverheadRatioGauge)->value(), 0.1);
}

TEST(TraceLines, CountedPerComponent) {
  sim::Simulator sim;
  MetricsRegistry reg;
  auto& tracer = sim::Tracer::instance();
  tracer.disable_all();
  tracer.enable("mm");
  count_trace_lines(reg);

  testing::internal::CaptureStderr();
  STORM_TRACE(sim, "mm", "one");
  STORM_TRACE(sim, "mm", "two");
  STORM_TRACE(sim, "nm", "suppressed: component disabled");
  testing::internal::GetCapturedStderr();

  ASSERT_NE(reg.find_counter("trace.lines.mm"), nullptr);
  EXPECT_EQ(reg.find_counter("trace.lines.mm")->value(), 2);
  EXPECT_EQ(reg.find_counter("trace.lines.nm"), nullptr);

  // Detached observer: no further counting.
  tracer.set_line_observer({});
  testing::internal::CaptureStderr();
  STORM_TRACE(sim, "mm", "three");
  testing::internal::GetCapturedStderr();
  EXPECT_EQ(reg.find_counter("trace.lines.mm")->value(), 2);
  tracer.disable_all();
}

}  // namespace
}  // namespace storm::telemetry
