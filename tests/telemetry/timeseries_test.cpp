// TimeSeriesRecorder: windowed counter deltas, histogram sketch
// quantiles at bucket boundaries, sparse (empty windows record
// nothing), retention-ring wraparound, store merge alignment, watchdog
// episode semantics, the in-progress tail window in snapshot(), and
// the SweepRunner byte-identity contract (serial vs --jobs 4).
#include "telemetry/timeseries.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace storm::telemetry {
namespace {

using namespace storm::sim::time_literals;

// --- watchdog rule grammar ----------------------------------------------

TEST(ParseWatchdog, AcceptsTheDocumentedForms) {
  WatchdogRule r;
  ASSERT_TRUE(parse_watchdog("fabric.overhead.ratio > 0.01 for 3", r));
  EXPECT_EQ(r.metric, "fabric.overhead.ratio");
  EXPECT_EQ(r.select, WatchdogRule::Select::Auto);
  EXPECT_EQ(r.cmp, WatchdogRule::Cmp::GT);
  EXPECT_DOUBLE_EQ(r.threshold, 0.01);
  EXPECT_EQ(r.windows, 3);
  EXPECT_EQ(r.spec, "fabric.overhead.ratio > 0.01 for 3");

  ASSERT_TRUE(parse_watchdog("mm.failover.gap_ns p99 > 5e7", r));
  EXPECT_EQ(r.select, WatchdogRule::Select::Quantile);
  EXPECT_DOUBLE_EQ(r.q, 0.99);
  EXPECT_EQ(r.windows, 1);

  ASSERT_TRUE(parse_watchdog("x rate >= 10", r));
  EXPECT_EQ(r.select, WatchdogRule::Select::Rate);
  EXPECT_EQ(r.cmp, WatchdogRule::Cmp::GE);

  ASSERT_TRUE(parse_watchdog("y delta < 5 for 2 windows", r));
  EXPECT_EQ(r.select, WatchdogRule::Select::Delta);
  EXPECT_EQ(r.cmp, WatchdogRule::Cmp::LT);
  EXPECT_EQ(r.windows, 2);

  ASSERT_TRUE(parse_watchdog("z value <= 1.5", r));
  EXPECT_EQ(r.select, WatchdogRule::Select::Value);
  EXPECT_EQ(r.cmp, WatchdogRule::Cmp::LE);

  ASSERT_TRUE(parse_watchdog("h p50 > 1", r));
  EXPECT_DOUBLE_EQ(r.q, 0.50);
}

TEST(ParseWatchdog, RejectsMalformedSpecs) {
  WatchdogRule r;
  std::string err;
  for (const char* bad : {"", "metric", "metric >", "metric > nan-ish",
                          "metric ?? 5", "metric p0 > 1", "metric p100 > 1",
                          "metric > 1 for 0", "metric > 1 for x",
                          "metric > 1 trailing-garbage"}) {
    err.clear();
    EXPECT_FALSE(parse_watchdog(bad, r, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

// --- recorder windows ---------------------------------------------------

TEST(TimeSeriesRecorder, CounterDeltasAreSparsePerWindow) {
  sim::Simulator sim;
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.window = 10_ms;
  TimeSeriesRecorder rec(sim, reg, opts);
  rec.arm();

  // Window 0: +3 at t=3ms. Window 2: +1 at t=25ms. Windows 1 and 3
  // are quiet and must not produce points.
  sim.schedule_after(3_ms, [&] { reg.counter("c").add(3); });
  sim.schedule_after(25_ms, [&] { reg.counter("c").add(1); });
  sim.run(40_ms);

  const TimeSeriesStore s = rec.snapshot();
  ASSERT_EQ(s.series.count("c"), 1u);
  const Series& c = s.series.at("c");
  EXPECT_EQ(c.kind, SeriesKind::Counter);
  ASSERT_EQ(c.points.size(), 2u);
  EXPECT_EQ(c.points[0].window, 0);
  EXPECT_EQ(c.points[0].delta, 3);
  EXPECT_EQ(c.points[1].window, 2);
  EXPECT_EQ(c.points[1].delta, 1);
  EXPECT_EQ(s.last_window, 3);
  EXPECT_EQ(s.window_ns, (10_ms).raw_ns());

  // rate(): delta over the window span, per second.
  double rate0 = -1.0;
  s.visit_points([&](const TimeSeriesStore::PointView& pv) {
    if (pv.window == 0) rate0 = pv.rate();
    return true;
  });
  EXPECT_DOUBLE_EQ(rate0, 300.0);  // 3 per 10 ms
}

TEST(TimeSeriesRecorder, EmptyWindowsProduceNoPoints) {
  sim::Simulator sim;
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.window = 10_ms;
  TimeSeriesRecorder rec(sim, reg, opts);
  rec.arm();
  sim.run(100_ms);
  const TimeSeriesStore s = rec.snapshot();
  EXPECT_EQ(s.total_points(), 0u);
  EXPECT_EQ(s.last_window, 9);
  EXPECT_EQ(rec.windows_recorded(), 10);
}

TEST(TimeSeriesRecorder, HistogramSketchAtBucketBoundaries) {
  sim::Simulator sim;
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.window = 10_ms;
  TimeSeriesRecorder rec(sim, reg, opts);
  rec.arm();

  // Window 0: samples pinned to log2 bucket edges. 1024 opens bucket
  // 11 ([1024, 2048)); 1023 closes bucket 10.
  sim.schedule_after(1_ms, [&] {
    Histogram& h = reg.histogram("lat");
    h.record(1023);
    h.record(1024);
    h.record(1024);
    h.record(4096);
  });
  // Window 1: one more sample in bucket 11 — the point must hold only
  // this window's delta, not the cumulative counts.
  sim.schedule_after(15_ms, [&] { reg.histogram("lat").record(2047); });
  sim.run(20_ms);

  const TimeSeriesStore s = rec.snapshot();
  const Series& lat = s.series.at("lat");
  EXPECT_EQ(lat.kind, SeriesKind::Histogram);
  ASSERT_EQ(lat.points.size(), 2u);

  const SeriesPoint& w0 = lat.points[0];
  EXPECT_EQ(w0.count, 4);
  EXPECT_EQ(w0.sum, 1023 + 1024 + 1024 + 4096);
  ASSERT_EQ(w0.buckets.size(), 3u);
  EXPECT_EQ(w0.buckets[0].bucket, Histogram::bucket_of(1023));
  EXPECT_EQ(w0.buckets[0].delta, 1);
  EXPECT_EQ(w0.buckets[1].bucket, Histogram::bucket_of(1024));
  EXPECT_EQ(w0.buckets[1].delta, 2);
  EXPECT_EQ(w0.buckets[2].bucket, Histogram::bucket_of(4096));
  EXPECT_EQ(w0.buckets[2].delta, 1);
  // Quantiles use the bucket representative 1.5 * bucket_lo: rank 2
  // (p50 of 4) lands in bucket 11, rank 4 (p99) in 4096's bucket.
  EXPECT_DOUBLE_EQ(w0.quantile(0.50), 1.5 * 1024);
  EXPECT_DOUBLE_EQ(w0.quantile(0.99), 1.5 * 4096);
  // p<=1/count clamps to the first sample's bucket.
  EXPECT_DOUBLE_EQ(w0.quantile(0.01), 1.5 * 512);

  const SeriesPoint& w1 = lat.points[1];
  EXPECT_EQ(w1.window, 1);
  EXPECT_EQ(w1.count, 1);
  ASSERT_EQ(w1.buckets.size(), 1u);
  EXPECT_EQ(w1.buckets[0].bucket, Histogram::bucket_of(2047));
  EXPECT_EQ(w1.buckets[0].delta, 1);
}

TEST(TimeSeriesRecorder, RetentionRingDropsOldWindows) {
  sim::Simulator sim;
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.window = 10_ms;
  opts.retention = 4;
  TimeSeriesRecorder rec(sim, reg, opts);
  rec.arm();
  for (int w = 0; w < 10; ++w) {
    sim.schedule_after(sim::SimTime::ms(10 * w + 5),
                       [&] { reg.counter("c").add(1); });
  }
  sim.run(100_ms);
  const TimeSeriesStore s = rec.snapshot();
  EXPECT_EQ(s.first_window, 6);
  EXPECT_EQ(s.last_window, 9);
  EXPECT_EQ(s.dropped_windows, 6);
  ASSERT_EQ(s.series.at("c").points.size(), 4u);
  EXPECT_EQ(s.series.at("c").points.front().window, 6);
}

TEST(TimeSeriesRecorder, DerivedOverheadRatioSeries) {
  sim::Simulator sim;
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.window = 10_ms;
  TimeSeriesRecorder rec(sim, reg, opts);
  rec.arm();
  sim.schedule_after(2_ms, [&] {
    reg.counter(kControlBytesCounter).add(25);
    reg.counter(kPayloadBytesCounter).add(75);
  });
  sim.run(10_ms);
  const TimeSeriesStore s = rec.snapshot();
  ASSERT_EQ(s.series.count(std::string(kOverheadRatioGauge)), 1u);
  const Series& ratio = s.series.at(std::string(kOverheadRatioGauge));
  EXPECT_EQ(ratio.kind, SeriesKind::Gauge);
  ASSERT_EQ(ratio.points.size(), 1u);
  EXPECT_DOUBLE_EQ(ratio.points[0].value, 0.25);
}

TEST(TimeSeriesRecorder, SnapshotIncludesTailWindowWithoutCommitting) {
  sim::Simulator sim;
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.window = 10_ms;
  TimeSeriesRecorder rec(sim, reg, opts);
  rec.arm();
  sim.schedule_after(42_ms, [&] { reg.counter("c").add(7); });
  sim.run(45_ms);

  // Four full windows committed; the tail (window 4, clamped to 45 ms)
  // only appears in the snapshot.
  EXPECT_EQ(rec.windows_recorded(), 4);
  const TimeSeriesStore s = rec.snapshot();
  EXPECT_EQ(s.last_window, 4);
  EXPECT_EQ(s.end_ns, (45_ms).raw_ns());
  const Series& c = s.series.at("c");
  ASSERT_EQ(c.points.size(), 1u);
  EXPECT_EQ(c.points[0].window, 4);
  EXPECT_EQ(c.points[0].delta, 7);
  bool saw_tail = false;
  s.visit_points([&](const TimeSeriesStore::PointView& pv) {
    saw_tail = true;
    EXPECT_EQ(pv.t_start_ns, (40_ms).raw_ns());
    EXPECT_EQ(pv.t_end_ns, (45_ms).raw_ns());  // clamped, not 50 ms
    return true;
  });
  EXPECT_TRUE(saw_tail);

  // The tail diff did not advance recorder state: the committed tick
  // at 50 ms still sees the whole delta.
  sim.run(50_ms);
  const TimeSeriesStore s2 = rec.snapshot();
  ASSERT_EQ(s2.series.at("c").points.size(), 1u);
  EXPECT_EQ(s2.series.at("c").points[0].delta, 7);
}

// --- merge --------------------------------------------------------------

TEST(TimeSeriesStore, MergeAlignsOnAbsoluteWindows) {
  TimeSeriesStore a, b;
  a.window_ns = b.window_ns = 10'000'000;
  a.first_window = 0;
  a.last_window = 2;
  a.end_ns = 30'000'000;
  b.first_window = 1;
  b.last_window = 3;
  b.end_ns = 40'000'000;

  Series& ca = a.series["c"];
  ca.kind = SeriesKind::Counter;
  ca.points.push_back({.window = 0, .delta = 1});
  ca.points.push_back({.window = 2, .delta = 5});
  Series& cb = b.series["c"];
  cb.kind = SeriesKind::Counter;
  cb.points.push_back({.window = 2, .delta = 10});
  cb.points.push_back({.window = 3, .delta = 2});

  Series& ha = a.series["h"];
  ha.kind = SeriesKind::Histogram;
  ha.points.push_back(
      {.window = 1, .count = 2, .sum = 100, .buckets = {{4, 2}}});
  Series& hb = b.series["h"];
  hb.kind = SeriesKind::Histogram;
  hb.points.push_back(
      {.window = 1, .count = 3, .sum = 50, .buckets = {{3, 1}, {4, 2}}});

  Series& ga = a.series["g"];
  ga.kind = SeriesKind::Gauge;
  ga.points.push_back({.window = 2, .value = 1.0});
  Series& gb = b.series["g"];
  gb.kind = SeriesKind::Gauge;
  gb.points.push_back({.window = 2, .value = 9.0});

  b.breaches.push_back({"rule", "c", 3, 40'000'000, 12.0, 10.0});

  a.merge(b);
  EXPECT_EQ(a.first_window, 0);
  EXPECT_EQ(a.last_window, 3);
  EXPECT_EQ(a.end_ns, 40'000'000);

  const auto& c = a.series.at("c").points;
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[1].delta, 15);  // 5 + 10 on window 2
  EXPECT_EQ(c[2].delta, 2);

  const auto& h = a.series.at("h").points;
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0].count, 5);
  EXPECT_EQ(h[0].sum, 150);
  ASSERT_EQ(h[0].buckets.size(), 2u);
  EXPECT_EQ(h[0].buckets[0].bucket, 3);
  EXPECT_EQ(h[0].buckets[0].delta, 1);
  EXPECT_EQ(h[0].buckets[1].delta, 4);  // 2 + 2

  // Gauge merge mirrors Gauge::merge: the merged-in value wins.
  EXPECT_DOUBLE_EQ(a.series.at("g").points[0].value, 9.0);
  ASSERT_EQ(a.breaches.size(), 1u);
  EXPECT_EQ(a.breaches[0].rule, "rule");
}

// --- watchdogs ----------------------------------------------------------

TEST(TimeSeriesRecorder, WatchdogFiresOncePerEpisode) {
  sim::Simulator sim;
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.window = 10_ms;
  WatchdogRule rule;
  ASSERT_TRUE(parse_watchdog("c rate > 50 for 2", rule));
  opts.watchdogs.push_back(rule);
  TimeSeriesRecorder rec(sim, reg, opts);
  rec.arm();

  // Breaching windows 0-3 (one episode: fires once, when the streak
  // reaches 2 at window 1), quiet 4-5, breaching 6-7 (second episode,
  // fires at window 7).
  for (const int w : {0, 1, 2, 3, 6, 7}) {
    sim.schedule_after(sim::SimTime::ms(10 * w + 5),
                       [&] { reg.counter("c").add(1); });
  }
  sim.run(80_ms);

  const TimeSeriesStore s = rec.snapshot();
  ASSERT_EQ(s.breaches.size(), 2u);
  EXPECT_EQ(s.breaches[0].window, 1);
  EXPECT_EQ(s.breaches[0].t_ns, (20_ms).raw_ns());
  EXPECT_DOUBLE_EQ(s.breaches[0].value, 100.0);
  EXPECT_EQ(s.breaches[1].window, 7);
  EXPECT_EQ(rec.breach_count(), 2u);
  // Fired breaches bump the watchdog.breaches counter, so they show
  // up in the next window's own series.
  EXPECT_EQ(reg.counter("watchdog.breaches").value(), 2);
}

// --- the --jobs N contract ----------------------------------------------

TimeSeriesStore run_point(std::size_t i) {
  sim::Simulator sim(0x7135 + i);
  MetricsRegistry reg;
  TimeSeriesOptions opts;
  opts.window = 10_ms;
  TimeSeriesRecorder rec(sim, reg, opts);
  rec.arm();
  for (int k = 0; k < 25; ++k) {
    sim.schedule_after(sim::SimTime::ms(3 * k + static_cast<int>(i % 5)),
                       [&reg, k, i] {
                         reg.counter("work.items").add(k + 1);
                         reg.histogram("work.latency_ns")
                             .record(1000 * (k + 1) * static_cast<int>(i + 1));
                         reg.gauge("work.depth").set(static_cast<double>(k));
                       });
  }
  sim.run(90_ms);
  return rec.snapshot();
}

TEST(TimeSeriesStore, SerialAndParallelSweepsSerialiseIdentically) {
  constexpr std::size_t kPoints = 6;
  const auto sweep = [&](int jobs) {
    TimeSeriesStore master;
    const bench::SweepRunner runner(jobs);
    runner.run(
        kPoints, [](std::size_t i) { return run_point(i); },
        [&](std::size_t, TimeSeriesStore& s) { master.merge(s); });
    return master.to_json();
  };
  const std::string serial = sweep(1);
  const std::string parallel = sweep(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("storm.timeseries.v1"), std::string::npos);
}

}  // namespace
}  // namespace storm::telemetry
