// MetricsAggregator middleware: per-class fabric counters, latency
// histograms, overhead accounting and same-seed determinism, exercised
// through whole-cluster runs.
#include "telemetry/aggregator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fabric/fault_injector.hpp"
#include "fabric/trace_sink.hpp"
#include "storm/cluster.hpp"
#include "telemetry/metrics.hpp"

namespace storm::telemetry {
namespace {

using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

// 8 ES40 nodes x 4 app CPUs; a 4 MB binary in default 512 KB chunks
// makes exactly 8 chunk xfers, received once per node.
constexpr int kNodes = 8;
constexpr int kChunks = 8;

struct RunResult {
  MetricsRegistry metrics;
  std::shared_ptr<fabric::StructuredTraceSink> sink;
  bool completed = false;
};

RunResult run_cluster(std::uint64_t seed) {
  sim::Simulator sim(seed);
  core::ClusterConfig cfg = core::ClusterConfig::es40(kNodes);
  cfg.storm.quantum = 10_ms;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();
  RunResult out;
  out.sink = std::make_shared<fabric::StructuredTraceSink>(sim);
  cluster.fabric().push(out.sink);
  cluster.submit({.name = "app", .binary_size = 4_MB, .npes = kNodes * 4});
  out.completed = cluster.run_until_all_complete(600_sec);
  out.metrics = cluster.metrics();
  return out;
}

TEST(MetricsAggregator, CountsAgreeWithStructuredTrace) {
  const RunResult r = run_cluster(0x7E1E'01ULL);
  ASSERT_TRUE(r.completed);

  using fabric::MsgClass;
  using fabric::OpKind;
  for (MsgClass c : {MsgClass::Strobe, MsgClass::Launch,
                     MsgClass::PrepareTransfer, MsgClass::LaunchChunk}) {
    const std::string base = "fabric." + std::string(to_string(c)) + ".";
    const Counter* delivered = r.metrics.find_counter(base + "delivered");
    const Counter* multicasts = r.metrics.find_counter(base + "multicasts");
    const Counter* xfers = r.metrics.find_counter(base + "xfers");
    ASSERT_NE(delivered, nullptr) << base;
    EXPECT_EQ(static_cast<std::size_t>(delivered->value()),
              r.sink->count(c, OpKind::CommandDeliver))
        << base;
    EXPECT_EQ(static_cast<std::size_t>(multicasts->value()),
              r.sink->count(c, OpKind::CommandMulticast))
        << base;
    EXPECT_EQ(static_cast<std::size_t>(xfers->value()),
              r.sink->count(c, OpKind::Xfer))
        << base;
  }
  // Each multicast fans out to every allocated node.
  EXPECT_EQ(r.metrics.find_counter("fabric.strobe.delivered")->value(),
            r.metrics.find_counter("fabric.strobe.multicasts")->value() *
                kNodes);
}

TEST(MetricsAggregator, FileTransferAndDaemonInstruments) {
  const RunResult r = run_cluster(0x7E1E'02ULL);
  ASSERT_TRUE(r.completed);

  EXPECT_EQ(r.metrics.find_counter("ft.transfers")->value(), 1);
  EXPECT_EQ(r.metrics.find_counter("ft.chunks")->value(), kChunks);
  EXPECT_EQ(r.metrics.find_counter("fabric.chunk.xfers")->value(), kChunks);
  // Every node writes every chunk to its RAM disk.
  EXPECT_EQ(r.metrics.find_counter("nm.chunks")->value(), kChunks * kNodes);
  EXPECT_EQ(r.metrics.find_histogram("nm.chunk.write_ns")->count(),
            kChunks * kNodes);
  // The image itself is the only payload on the fabric.
  EXPECT_EQ(r.metrics.find_counter(kPayloadBytesCounter)->value(),
            static_cast<std::int64_t>(4_MB));

  // Pipeline-stage histograms saw every chunk and measured real time.
  for (const char* h : {"ft.read_ns", "ft.assist_ns", "ft.bcast_ns"}) {
    const Histogram* hist = r.metrics.find_histogram(h);
    ASSERT_NE(hist, nullptr) << h;
    EXPECT_EQ(hist->count(), kChunks) << h;
    EXPECT_GT(hist->sum(), 0) << h;
  }

  // MM boundary work ran and sampled the matrix gauges.
  EXPECT_GT(r.metrics.find_histogram("mm.boundary_ns")->count(), 0);
  ASSERT_NE(r.metrics.find_gauge("mm.matrix.occupancy"), nullptr);
  EXPECT_TRUE(r.metrics.find_gauge("mm.matrix.occupancy")->ever_set());
  EXPECT_EQ(r.metrics.find_counter("mm.jobs.completed")->value(), 1);
  EXPECT_GT(r.metrics.find_counter("nm.cmds")->value(), 0);
}

TEST(MetricsAggregator, StrobeLatencyHistogramIsPopulated) {
  const RunResult r = run_cluster(0x7E1E'03ULL);
  ASSERT_TRUE(r.completed);
  const Histogram* lat = r.metrics.find_histogram("fabric.latency.strobe");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(),
            r.metrics.find_counter("fabric.strobe.delivered")->value());
  // Hardware multicast delivery is fast but never free.
  EXPECT_GT(lat->min(), 0);
  EXPECT_LT(lat->max(), (1_ms).raw_ns());
}

TEST(MetricsAggregator, OverheadRatioIsSmallButNonzero) {
  const RunResult r = run_cluster(0x7E1E'04ULL);
  ASSERT_TRUE(r.completed);
  MetricsRegistry reg = r.metrics;
  update_overhead_ratio(reg);
  const Gauge* g = reg.find_gauge(kOverheadRatioGauge);
  ASSERT_NE(g, nullptr);
  EXPECT_GT(g->value(), 0.0);
  // A single unloaded launch: management traffic is a sliver of the
  // 4 MB image (the paper's ~1% resource-management claim).
  EXPECT_LT(g->value(), 0.05);
}

TEST(MetricsAggregator, SameSeedRunsSerialiseIdentically) {
  const RunResult a = run_cluster(0x7E1E'05ULL);
  const RunResult b = run_cluster(0x7E1E'05ULL);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
  const RunResult c = run_cluster(0x7E1E'06ULL);
  ASSERT_TRUE(c.completed);
  // Different seed: OS-noise sampling shifts at least one histogram.
  EXPECT_NE(a.metrics.to_json(), c.metrics.to_json());
}

TEST(MetricsAggregator, DropCountersMatchFaultInjector) {
  sim::Simulator sim(0x7E1E'07ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(kNodes);
  cfg.storm.quantum = 10_ms;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();
  auto inject =
      std::make_shared<fabric::FaultInjector>(sim.rng().fork(0xFA117));
  inject->policy(fabric::MsgClass::Strobe).drop_prob = 0.05;
  cluster.fabric().push(inject);

  auto work = [](core::AppContext& ctx) -> sim::Task<> {
    co_await ctx.compute(2_sec);
  };
  cluster.submit({.name = "gang",
                  .binary_size = 1_MB,
                  .npes = kNodes * 4,
                  .program = work});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));

  const std::int64_t injected = inject->dropped(fabric::MsgClass::Strobe);
  ASSERT_GT(injected, 0) << "fault injector never fired; weaken the seed?";
  EXPECT_EQ(cluster.metrics().find_counter("fabric.strobe.dropped")->value(),
            injected);
}

TEST(MetricsAggregator, CawRetriesCountFlowControlPolls) {
  // Tiny receive window (2 slots) with many chunks forces the sender
  // to repeat flow-control queries; each repeat of the same query is a
  // retry on the `credit` class.
  sim::Simulator sim(0x7E1E'08ULL);
  core::ClusterConfig cfg = core::ClusterConfig::es40(kNodes);
  cfg.storm.quantum = 10_ms;
  cfg.storm.slots = 2;
  core::Cluster cluster(sim, cfg);
  cluster.enable_fabric_metrics();
  cluster.submit({.name = "app", .binary_size = 8_MB, .npes = kNodes * 4});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));

  const Counter* caw = cluster.metrics().find_counter("fabric.credit.caw");
  ASSERT_NE(caw, nullptr);
  EXPECT_GT(caw->value(), 0);
  const Counter* retries =
      cluster.metrics().find_counter("fabric.credit.caw_retries");
  const Counter* polls = cluster.metrics().find_counter("ft.flow_polls");
  ASSERT_NE(retries, nullptr);
  ASSERT_NE(polls, nullptr);
  // Every failed poll re-issues the identical query: the aggregator's
  // consecutive-duplicate detection must see at least those.
  EXPECT_GE(retries->value(), polls->value());
}

}  // namespace
}  // namespace storm::telemetry
