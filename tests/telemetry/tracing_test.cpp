// Causal tracing: context propagation through a full middleware chain,
// span nesting across NM descheduling, same-seed byte-identity of the
// trace buffer under parallel sweeps, and the launch critical path
// against the paper's analytic model (Eq. 3).
#include "telemetry/tracing.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bench/runner.hpp"
#include "fabric/fault_injector.hpp"
#include "fabric/latency_perturber.hpp"
#include "fabric/reorder_buffer.hpp"
#include "fabric/trace_sink.hpp"
#include "model/launch_model.hpp"
#include "storm/cluster.hpp"

namespace storm::telemetry {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::JobId;
using sim::SimTime;
using sim::Task;
using namespace storm::sim::time_literals;
using namespace storm::sim::byte_literals;

core::AppProgram compute_program(SimTime work) {
  return
      [work](core::AppContext& ctx) -> Task<> { co_await ctx.compute(work); };
}

/// Count closed spans of `kind`; for each, `visit(span, parent)` with
/// parent nullptr for roots.
template <typename Fn>
int for_each_closed(const TraceBuffer& buf, SpanKind kind, Fn&& visit) {
  int n = 0;
  for (const SpanRecord& s : buf.spans()) {
    if (s.span_kind() != kind || s.open()) continue;
    ++n;
    visit(s, s.parent != 0 ? buf.find(s.parent) : nullptr);
  }
  return n;
}

TEST(CausalTracing, ContextSurvivesFullMiddlewareChain) {
  // A seeded campaign of strobe loss, command jitter, and delivery
  // reordering between the dæmons: the trace context stamped by the MM
  // must still arrive at every NM span, and the chunk-cause harvested
  // from the XFER envelopes must still parent the NM chunk writes.
  sim::Simulator sim(0x7ACE'01ULL);
  ClusterConfig cfg = ClusterConfig::es40(8);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 10_ms;
  cfg.storm.heartbeat_enabled = true;
  cfg.storm.heartbeat_period_quanta = 5;
  Cluster cluster(sim, cfg);
  cluster.enable_tracing();
  auto inject =
      std::make_shared<fabric::FaultInjector>(sim.rng().fork(0x7ACE));
  inject->policy(fabric::MsgClass::Strobe).drop_prob = 0.02;
  auto perturb =
      std::make_shared<fabric::LatencyPerturber>(sim.rng().fork(0x7ACF));
  auto reorder =
      std::make_shared<fabric::ReorderBuffer>(sim.rng().fork(0x7AD0));
  reorder->set_window(30_us);
  auto sink = std::make_shared<fabric::StructuredTraceSink>(sim);
  cluster.fabric().push(inject);
  cluster.fabric().push(perturb);
  cluster.fabric().push(reorder);
  cluster.fabric().push(sink);

  cluster.submit(
      {.binary_size = 2_MB, .npes = 16, .program = compute_program(300_ms)});
  cluster.submit(
      {.binary_size = 1_MB, .npes = 8, .program = compute_program(200_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(120_sec));
  ASSERT_NE(cluster.tracer(), nullptr);
  const TraceBuffer& buf = cluster.tracer()->buffer();
  EXPECT_GT(reorder->perturbed(), 0);
  EXPECT_EQ(buf.dropped(), 0u);

  // Every NM launch handler span is parented on the MM's launch-issue
  // span — the context crossed the (jittered, reordered) wire.
  const int launches =
      for_each_closed(buf, SpanKind::NmLaunch,
                      [&](const SpanRecord& s, const SpanRecord* parent) {
                        ASSERT_NE(parent, nullptr) << "orphan NM launch span";
                        EXPECT_EQ(parent->span_kind(), SpanKind::MmLaunchIssue);
                        EXPECT_EQ(parent->trace, s.trace);
                      });
  EXPECT_GE(launches, 2);  // one per job at least

  // Every chunk write is parented on the exact broadcast that carried
  // its bytes (context harvested from the XFER envelope).
  const int chunks =
      for_each_closed(buf, SpanKind::NmChunk,
                      [&](const SpanRecord& s, const SpanRecord* parent) {
                        ASSERT_NE(parent, nullptr) << "orphan chunk span";
                        EXPECT_EQ(parent->span_kind(), SpanKind::FtBcast);
                        EXPECT_EQ(parent->trace, s.trace);
                        EXPECT_EQ(parent->b, s.b);  // same chunk index
                      });
  EXPECT_GT(chunks, 0);

  // Cross-node parenting produced flow edges.
  EXPECT_FALSE(buf.flows().empty());
}

TEST(CausalTracing, SpanNestingSurvivesNmDescheduling) {
  // With two gangs time-slicing on every node, the NM coroutine is
  // repeatedly descheduled while a launch handler's span is open. The
  // RAII span must close with its handler, strictly containing the
  // fork span it caused.
  sim::Simulator sim(0x7ACE'02ULL);
  ClusterConfig cfg = ClusterConfig::es40(4);
  cfg.app_cpus_per_node = 2;
  cfg.storm.quantum = 5_ms;
  Cluster cluster(sim, cfg);
  cluster.enable_tracing();
  cluster.submit(
      {.binary_size = 1_MB, .npes = 8, .program = compute_program(100_ms)});
  cluster.submit(
      {.binary_size = 1_MB, .npes = 8, .program = compute_program(100_ms)});
  ASSERT_TRUE(cluster.run_until_all_complete(60_sec));
  const TraceBuffer& buf = cluster.tracer()->buffer();

  const int forks = for_each_closed(
      buf, SpanKind::PlFork, [&](const SpanRecord& s, const SpanRecord* parent) {
        ASSERT_NE(parent, nullptr) << "orphan fork span";
        EXPECT_EQ(parent->span_kind(), SpanKind::NmLaunch);
        // The handler span closed cleanly despite the descheduling,
        // and causality holds: it opened before the fork it caused
        // (the fork itself may outlive the handler — the launcher
        // runs on its own process).
        EXPECT_FALSE(parent->open());
        EXPECT_LE(parent->t_start_ns, s.t_start_ns);
      });
  EXPECT_GT(forks, 0);

  // The launch handlers themselves nest inside their job's root span.
  for_each_closed(
      buf, SpanKind::NmLaunch,
      [&](const SpanRecord& s, const SpanRecord*) {
        const SpanRecord* root = nullptr;
        for (const SpanRecord& r : buf.spans()) {
          if (r.trace == s.trace && r.span_kind() == SpanKind::JobLaunch) {
            root = &r;
            break;
          }
        }
        ASSERT_NE(root, nullptr);
        EXPECT_LE(root->t_start_ns, s.t_start_ns);
      });
}

TEST(CausalTracing, TraceBufferBytesIdenticalAcrossSweepJobs) {
  // The fig04-style contract extended to traces: evaluating sweep
  // points on a --jobs 4 pool must yield TraceBuffer byte images
  // identical to the serial run, point for point.
  auto sweep = [](int jobs) {
    std::vector<std::vector<std::uint8_t>> images(4);
    const bench::SweepRunner runner(jobs);
    runner.run(
        images.size(),
        [](std::size_t i) {
          sim::Simulator sim(0x7ACE'03ULL + i);
          ClusterConfig cfg = ClusterConfig::es40(4);
          cfg.storm.quantum = 5_ms;
          Cluster cluster(sim, cfg);
          cluster.enable_tracing();
          cluster.submit({.binary_size = 1_MB, .npes = 8});
          EXPECT_TRUE(cluster.run_until_all_complete(60_sec));
          return cluster.tracer()->buffer().bytes();
        },
        [&](std::size_t i, std::vector<std::uint8_t>& bytes) {
          images[i] = std::move(bytes);
        });
    return images;
  };

  const auto serial = sweep(1);
  const auto pooled = sweep(4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], pooled[i]) << "sweep point " << i;
  }
}

TEST(CausalTracing, Fig02CriticalPathMatchesLaunchModel) {
  // The fig02 anchor (12 MB, 256 PEs on 64 nodes, 1 ms quantum): the
  // critical path of the job's trace must agree with the paper's
  // Eq. 3 launch model — transfer term from the analytic bandwidth
  // model, execute term from the run itself — within 5%.
  sim::Simulator sim(0xF16'02ULL);
  ClusterConfig cfg = ClusterConfig::es40(64);
  cfg.storm.quantum = 1_ms;
  Cluster cluster(sim, cfg);
  cluster.enable_tracing();
  const JobId id = cluster.submit({.binary_size = 12_MB, .npes = 256});
  ASSERT_TRUE(cluster.run_until_all_complete(600_sec));

  const TraceBuffer& buf = cluster.tracer()->buffer();
  const LaunchCriticalPath cp = analyze_launch(buf, job_trace_id(0, 0));
  ASSERT_GT(cp.spans, 0);
  ASSERT_GT(cp.total_ns, 0);

  model::LaunchModelParams p;
  p.exec_time = cluster.job(id).times().execute_time();
  const double model_ms = model::es40_launch_time(64, p).to_millis();
  const double cp_ms = static_cast<double>(cp.total_ns) * 1e-6;
  EXPECT_NEAR(cp_ms, model_ms, model_ms * 0.05)
      << format_critical_path(cp);

  // The decomposition is sane: the broadcast dominates (the 131 MB/s
  // host-serialisation bound), segments cover the whole path, and the
  // cluster genuinely overlapped work along it.
  std::int64_t sum = 0;
  for (const std::int64_t ns : cp.per_kind_ns) sum += ns;
  EXPECT_EQ(sum, cp.total_ns);
  EXPECT_GT(cp.kind_ns(SpanKind::FtBcast), cp.total_ns / 2);
  EXPECT_GT(cp.overlap_factor, 1.0);
}

}  // namespace
}  // namespace storm::telemetry
