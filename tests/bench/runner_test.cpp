#include "bench/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace storm::bench {
namespace {

TEST(SweepRunner, SerialRunsInline) {
  const SweepRunner runner(1);
  const auto main_thread = std::this_thread::get_id();
  std::vector<std::size_t> committed;
  runner.run(
      5,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), main_thread);
        return i * 10;
      },
      [&](std::size_t i, std::size_t& r) {
        EXPECT_EQ(r, i * 10);
        committed.push_back(i);
      });
  EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepRunner, CommitsInIndexOrderDespiteOutOfOrderCompletion) {
  const SweepRunner runner(4);
  // Early points sleep longest, so later points finish first; commits
  // must still arrive in index order, on the calling thread.
  const auto main_thread = std::this_thread::get_id();
  std::vector<std::size_t> committed;
  runner.run(
      8,
      [](std::size_t i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
        return i;
      },
      [&](std::size_t i, std::size_t& r) {
        EXPECT_EQ(std::this_thread::get_id(), main_thread);
        EXPECT_EQ(r, i);
        committed.push_back(i);
      });
  EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SweepRunner, EveryPointEvaluatedExactlyOnce) {
  const SweepRunner runner(4);
  std::atomic<int> evaluations{0};
  std::vector<bool> seen(100, false);
  runner.run(
      100,
      [&](std::size_t i) {
        evaluations.fetch_add(1);
        return i;
      },
      [&](std::size_t i, std::size_t& r) {
        EXPECT_EQ(i, r);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
      });
  EXPECT_EQ(evaluations.load(), 100);
  for (bool s : seen) EXPECT_TRUE(s);
}

// The determinism contract behind `--jobs`: each point runs its own
// same-seeded Simulator, and the committed row stream plus the merged
// metrics registry are byte-identical to a serial run.
struct SimPoint {
  std::string trace;
  telemetry::MetricsRegistry metrics;
};

SimPoint run_sim_point(std::size_t i) {
  SimPoint out;
  sim::Simulator sim(0xBEEF + static_cast<std::uint64_t>(i));
  telemetry::Counter& events = out.metrics.counter("test.events");
  telemetry::Histogram& gaps = out.metrics.histogram("test.gaps");
  sim::SimTime last = sim::SimTime::zero();
  for (int k = 0; k < 50; ++k) {
    const auto t =
        sim::SimTime::ns(static_cast<std::int64_t>(sim.rng().next() % 10'000));
    if (t < sim.now()) continue;
    sim.schedule_at(t, [&, t] {
      events.add(1);
      gaps.record(t - last);
      last = t;
      out.trace += std::to_string(t.raw_ns()) + ";";
    });
  }
  sim.run();
  out.metrics.gauge("test.last_ns").set(static_cast<double>(last.raw_ns()));
  return out;
}

TEST(SweepRunner, SameSeedSerialVsJobs4ByteIdentical) {
  const std::size_t kPoints = 12;
  auto run_all = [&](int jobs) {
    const SweepRunner runner(jobs);
    std::string rows;
    telemetry::MetricsRegistry master;
    runner.run(kPoints, run_sim_point, [&](std::size_t i, SimPoint& p) {
      rows += "[";
      rows += std::to_string(i);
      rows += "]";
      rows += p.trace;
      rows += "\n";
      master.merge(p.metrics);
    });
    return std::make_pair(rows, master.to_json());
  };
  const auto [serial_rows, serial_json] = run_all(1);
  const auto [parallel_rows, parallel_json] = run_all(4);
  EXPECT_EQ(serial_rows, parallel_rows);
  EXPECT_EQ(serial_json, parallel_json);
  EXPECT_NE(serial_rows.find("[11]"), std::string::npos);
}

TEST(SweepRunner, PointExceptionRethrownOnCallingThread) {
  const SweepRunner runner(4);
  std::vector<std::size_t> committed;
  EXPECT_THROW(
      runner.run(
          16,
          [](std::size_t i) -> std::size_t {
            if (i == 3) throw std::runtime_error("point 3 failed");
            return i;
          },
          [&](std::size_t i, std::size_t&) { committed.push_back(i); }),
      std::runtime_error);
  // Only a prefix of points before the failure may have committed.
  for (std::size_t k = 0; k < committed.size(); ++k) {
    EXPECT_EQ(committed[k], k);
    EXPECT_LT(committed[k], 3u);
  }
}

TEST(SweepRunner, MoreJobsThanPoints) {
  const SweepRunner runner(16);
  std::vector<std::size_t> committed;
  runner.run(
      3, [](std::size_t i) { return i; },
      [&](std::size_t i, std::size_t&) { committed.push_back(i); });
  EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SweepRunner, JobsFlagParsesAndDefaults) {
  const char* argv1[] = {"prog", "--jobs", "4"};
  EXPECT_EQ(jobs_flag(3, const_cast<char**>(argv1)), 4);
  const char* argv2[] = {"prog", "--fast"};
  EXPECT_EQ(jobs_flag(2, const_cast<char**>(argv2)), 1);
}

TEST(SweepRunner, ZeroPointsIsANoOp) {
  const SweepRunner runner(4);
  runner.run(
      0, [](std::size_t i) { return i; },
      [&](std::size_t, std::size_t&) { FAIL() << "no points to commit"; });
}

}  // namespace
}  // namespace storm::bench
