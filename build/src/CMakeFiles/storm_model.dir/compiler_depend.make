# Empty compiler generated dependencies file for storm_model.
# This may be replaced when dependencies are built.
