file(REMOVE_RECURSE
  "libstorm_model.a"
)
