file(REMOVE_RECURSE
  "CMakeFiles/storm_model.dir/model/launch_model.cpp.o"
  "CMakeFiles/storm_model.dir/model/launch_model.cpp.o.d"
  "CMakeFiles/storm_model.dir/model/literature.cpp.o"
  "CMakeFiles/storm_model.dir/model/literature.cpp.o.d"
  "libstorm_model.a"
  "libstorm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
