file(REMOVE_RECURSE
  "CMakeFiles/storm_apps.dir/apps/loaders.cpp.o"
  "CMakeFiles/storm_apps.dir/apps/loaders.cpp.o.d"
  "CMakeFiles/storm_apps.dir/apps/sweep3d.cpp.o"
  "CMakeFiles/storm_apps.dir/apps/sweep3d.cpp.o.d"
  "CMakeFiles/storm_apps.dir/apps/synthetic.cpp.o"
  "CMakeFiles/storm_apps.dir/apps/synthetic.cpp.o.d"
  "CMakeFiles/storm_apps.dir/apps/workload.cpp.o"
  "CMakeFiles/storm_apps.dir/apps/workload.cpp.o.d"
  "libstorm_apps.a"
  "libstorm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
