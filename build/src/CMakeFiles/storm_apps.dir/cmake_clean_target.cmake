file(REMOVE_RECURSE
  "libstorm_apps.a"
)
