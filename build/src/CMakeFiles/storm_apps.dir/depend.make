# Empty dependencies file for storm_apps.
# This may be replaced when dependencies are built.
