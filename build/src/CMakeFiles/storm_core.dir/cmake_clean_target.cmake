file(REMOVE_RECURSE
  "libstorm_core.a"
)
