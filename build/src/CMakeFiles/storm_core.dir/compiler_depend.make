# Empty compiler generated dependencies file for storm_core.
# This may be replaced when dependencies are built.
