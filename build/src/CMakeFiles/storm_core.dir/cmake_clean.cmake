file(REMOVE_RECURSE
  "CMakeFiles/storm_core.dir/storm/batch_scheduler.cpp.o"
  "CMakeFiles/storm_core.dir/storm/batch_scheduler.cpp.o.d"
  "CMakeFiles/storm_core.dir/storm/buddy_allocator.cpp.o"
  "CMakeFiles/storm_core.dir/storm/buddy_allocator.cpp.o.d"
  "CMakeFiles/storm_core.dir/storm/cluster.cpp.o"
  "CMakeFiles/storm_core.dir/storm/cluster.cpp.o.d"
  "CMakeFiles/storm_core.dir/storm/file_transfer.cpp.o"
  "CMakeFiles/storm_core.dir/storm/file_transfer.cpp.o.d"
  "CMakeFiles/storm_core.dir/storm/job.cpp.o"
  "CMakeFiles/storm_core.dir/storm/job.cpp.o.d"
  "CMakeFiles/storm_core.dir/storm/machine_manager.cpp.o"
  "CMakeFiles/storm_core.dir/storm/machine_manager.cpp.o.d"
  "CMakeFiles/storm_core.dir/storm/node_manager.cpp.o"
  "CMakeFiles/storm_core.dir/storm/node_manager.cpp.o.d"
  "CMakeFiles/storm_core.dir/storm/ousterhout_matrix.cpp.o"
  "CMakeFiles/storm_core.dir/storm/ousterhout_matrix.cpp.o.d"
  "CMakeFiles/storm_core.dir/storm/reservation_profile.cpp.o"
  "CMakeFiles/storm_core.dir/storm/reservation_profile.cpp.o.d"
  "libstorm_core.a"
  "libstorm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
