
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storm/batch_scheduler.cpp" "src/CMakeFiles/storm_core.dir/storm/batch_scheduler.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/batch_scheduler.cpp.o.d"
  "/root/repo/src/storm/buddy_allocator.cpp" "src/CMakeFiles/storm_core.dir/storm/buddy_allocator.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/buddy_allocator.cpp.o.d"
  "/root/repo/src/storm/cluster.cpp" "src/CMakeFiles/storm_core.dir/storm/cluster.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/cluster.cpp.o.d"
  "/root/repo/src/storm/file_transfer.cpp" "src/CMakeFiles/storm_core.dir/storm/file_transfer.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/file_transfer.cpp.o.d"
  "/root/repo/src/storm/job.cpp" "src/CMakeFiles/storm_core.dir/storm/job.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/job.cpp.o.d"
  "/root/repo/src/storm/machine_manager.cpp" "src/CMakeFiles/storm_core.dir/storm/machine_manager.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/machine_manager.cpp.o.d"
  "/root/repo/src/storm/node_manager.cpp" "src/CMakeFiles/storm_core.dir/storm/node_manager.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/node_manager.cpp.o.d"
  "/root/repo/src/storm/ousterhout_matrix.cpp" "src/CMakeFiles/storm_core.dir/storm/ousterhout_matrix.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/ousterhout_matrix.cpp.o.d"
  "/root/repo/src/storm/reservation_profile.cpp" "src/CMakeFiles/storm_core.dir/storm/reservation_profile.cpp.o" "gcc" "src/CMakeFiles/storm_core.dir/storm/reservation_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/storm_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
