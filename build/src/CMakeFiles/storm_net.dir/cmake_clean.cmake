file(REMOVE_RECURSE
  "CMakeFiles/storm_net.dir/net/packet_sim.cpp.o"
  "CMakeFiles/storm_net.dir/net/packet_sim.cpp.o.d"
  "CMakeFiles/storm_net.dir/net/qsnet.cpp.o"
  "CMakeFiles/storm_net.dir/net/qsnet.cpp.o.d"
  "libstorm_net.a"
  "libstorm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
