file(REMOVE_RECURSE
  "libstorm_net.a"
)
