
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/packet_sim.cpp" "src/CMakeFiles/storm_net.dir/net/packet_sim.cpp.o" "gcc" "src/CMakeFiles/storm_net.dir/net/packet_sim.cpp.o.d"
  "/root/repo/src/net/qsnet.cpp" "src/CMakeFiles/storm_net.dir/net/qsnet.cpp.o" "gcc" "src/CMakeFiles/storm_net.dir/net/qsnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
