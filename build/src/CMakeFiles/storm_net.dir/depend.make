# Empty dependencies file for storm_net.
# This may be replaced when dependencies are built.
