# Empty compiler generated dependencies file for storm_baselines.
# This may be replaced when dependencies are built.
