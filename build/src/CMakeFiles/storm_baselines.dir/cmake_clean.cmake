file(REMOVE_RECURSE
  "CMakeFiles/storm_baselines.dir/baselines/gang_models.cpp.o"
  "CMakeFiles/storm_baselines.dir/baselines/gang_models.cpp.o.d"
  "CMakeFiles/storm_baselines.dir/baselines/launchers.cpp.o"
  "CMakeFiles/storm_baselines.dir/baselines/launchers.cpp.o.d"
  "libstorm_baselines.a"
  "libstorm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
