file(REMOVE_RECURSE
  "libstorm_baselines.a"
)
