# Empty compiler generated dependencies file for storm_mech.
# This may be replaced when dependencies are built.
