file(REMOVE_RECURSE
  "CMakeFiles/storm_mech.dir/mech/emulated_mechanisms.cpp.o"
  "CMakeFiles/storm_mech.dir/mech/emulated_mechanisms.cpp.o.d"
  "CMakeFiles/storm_mech.dir/mech/qsnet_mechanisms.cpp.o"
  "CMakeFiles/storm_mech.dir/mech/qsnet_mechanisms.cpp.o.d"
  "libstorm_mech.a"
  "libstorm_mech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_mech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
