file(REMOVE_RECURSE
  "libstorm_mech.a"
)
