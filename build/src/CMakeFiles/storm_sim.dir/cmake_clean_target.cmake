file(REMOVE_RECURSE
  "libstorm_sim.a"
)
