# Empty compiler generated dependencies file for storm_sim.
# This may be replaced when dependencies are built.
