file(REMOVE_RECURSE
  "CMakeFiles/storm_sim.dir/sim/sim.cpp.o"
  "CMakeFiles/storm_sim.dir/sim/sim.cpp.o.d"
  "libstorm_sim.a"
  "libstorm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
