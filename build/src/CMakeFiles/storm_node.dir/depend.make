# Empty dependencies file for storm_node.
# This may be replaced when dependencies are built.
