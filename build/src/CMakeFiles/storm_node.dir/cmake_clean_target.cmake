file(REMOVE_RECURSE
  "libstorm_node.a"
)
