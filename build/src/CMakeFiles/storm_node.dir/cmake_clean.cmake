file(REMOVE_RECURSE
  "CMakeFiles/storm_node.dir/node/filesystem.cpp.o"
  "CMakeFiles/storm_node.dir/node/filesystem.cpp.o.d"
  "CMakeFiles/storm_node.dir/node/machine.cpp.o"
  "CMakeFiles/storm_node.dir/node/machine.cpp.o.d"
  "CMakeFiles/storm_node.dir/node/os_scheduler.cpp.o"
  "CMakeFiles/storm_node.dir/node/os_scheduler.cpp.o.d"
  "libstorm_node.a"
  "libstorm_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
