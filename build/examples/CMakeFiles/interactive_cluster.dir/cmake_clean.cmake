file(REMOVE_RECURSE
  "CMakeFiles/interactive_cluster.dir/interactive_cluster.cpp.o"
  "CMakeFiles/interactive_cluster.dir/interactive_cluster.cpp.o.d"
  "interactive_cluster"
  "interactive_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
