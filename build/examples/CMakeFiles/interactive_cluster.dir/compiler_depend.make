# Empty compiler generated dependencies file for interactive_cluster.
# This may be replaced when dependencies are built.
