# Empty compiler generated dependencies file for data_broadcast.
# This may be replaced when dependencies are built.
