file(REMOVE_RECURSE
  "CMakeFiles/data_broadcast.dir/data_broadcast.cpp.o"
  "CMakeFiles/data_broadcast.dir/data_broadcast.cpp.o.d"
  "data_broadcast"
  "data_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
