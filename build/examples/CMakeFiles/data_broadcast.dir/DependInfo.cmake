
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/data_broadcast.cpp" "examples/CMakeFiles/data_broadcast.dir/data_broadcast.cpp.o" "gcc" "examples/CMakeFiles/data_broadcast.dir/data_broadcast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/storm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
