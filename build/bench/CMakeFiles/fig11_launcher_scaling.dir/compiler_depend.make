# Empty compiler generated dependencies file for fig11_launcher_scaling.
# This may be replaced when dependencies are built.
