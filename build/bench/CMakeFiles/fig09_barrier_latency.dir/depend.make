# Empty dependencies file for fig09_barrier_latency.
# This may be replaced when dependencies are built.
