file(REMOVE_RECURSE
  "CMakeFiles/fig09_barrier_latency.dir/fig09_barrier_latency.cpp.o"
  "CMakeFiles/fig09_barrier_latency.dir/fig09_barrier_latency.cpp.o.d"
  "fig09_barrier_latency"
  "fig09_barrier_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_barrier_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
