file(REMOVE_RECURSE
  "CMakeFiles/tab06_launcher_comparison.dir/tab06_launcher_comparison.cpp.o"
  "CMakeFiles/tab06_launcher_comparison.dir/tab06_launcher_comparison.cpp.o.d"
  "tab06_launcher_comparison"
  "tab06_launcher_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_launcher_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
