# Empty dependencies file for tab06_launcher_comparison.
# This may be replaced when dependencies are built.
