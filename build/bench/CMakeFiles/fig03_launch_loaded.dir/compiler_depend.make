# Empty compiler generated dependencies file for fig03_launch_loaded.
# This may be replaced when dependencies are built.
