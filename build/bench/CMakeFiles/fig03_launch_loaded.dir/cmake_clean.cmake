file(REMOVE_RECURSE
  "CMakeFiles/fig03_launch_loaded.dir/fig03_launch_loaded.cpp.o"
  "CMakeFiles/fig03_launch_loaded.dir/fig03_launch_loaded.cpp.o.d"
  "fig03_launch_loaded"
  "fig03_launch_loaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_launch_loaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
