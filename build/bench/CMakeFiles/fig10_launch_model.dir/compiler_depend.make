# Empty compiler generated dependencies file for fig10_launch_model.
# This may be replaced when dependencies are built.
