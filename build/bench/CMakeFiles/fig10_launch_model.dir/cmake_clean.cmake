file(REMOVE_RECURSE
  "CMakeFiles/fig10_launch_model.dir/fig10_launch_model.cpp.o"
  "CMakeFiles/fig10_launch_model.dir/fig10_launch_model.cpp.o.d"
  "fig10_launch_model"
  "fig10_launch_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_launch_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
