file(REMOVE_RECURSE
  "CMakeFiles/tab08_feasible_quantum.dir/tab08_feasible_quantum.cpp.o"
  "CMakeFiles/tab08_feasible_quantum.dir/tab08_feasible_quantum.cpp.o.d"
  "tab08_feasible_quantum"
  "tab08_feasible_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab08_feasible_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
