# Empty compiler generated dependencies file for tab08_feasible_quantum.
# This may be replaced when dependencies are built.
