# Empty dependencies file for abl_ablations.
# This may be replaced when dependencies are built.
