file(REMOVE_RECURSE
  "CMakeFiles/abl_ablations.dir/abl_ablations.cpp.o"
  "CMakeFiles/abl_ablations.dir/abl_ablations.cpp.o.d"
  "abl_ablations"
  "abl_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
