# Empty dependencies file for fig08_chunk_slots.
# This may be replaced when dependencies are built.
