file(REMOVE_RECURSE
  "CMakeFiles/fig08_chunk_slots.dir/fig08_chunk_slots.cpp.o"
  "CMakeFiles/fig08_chunk_slots.dir/fig08_chunk_slots.cpp.o.d"
  "fig08_chunk_slots"
  "fig08_chunk_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_chunk_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
