# Empty dependencies file for fig05_node_scalability.
# This may be replaced when dependencies are built.
