file(REMOVE_RECURSE
  "CMakeFiles/tab04_bandwidth_model.dir/tab04_bandwidth_model.cpp.o"
  "CMakeFiles/tab04_bandwidth_model.dir/tab04_bandwidth_model.cpp.o.d"
  "tab04_bandwidth_model"
  "tab04_bandwidth_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_bandwidth_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
