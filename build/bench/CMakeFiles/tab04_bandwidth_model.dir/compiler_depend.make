# Empty compiler generated dependencies file for tab04_bandwidth_model.
# This may be replaced when dependencies are built.
