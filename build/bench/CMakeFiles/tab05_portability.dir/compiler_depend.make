# Empty compiler generated dependencies file for tab05_portability.
# This may be replaced when dependencies are built.
