file(REMOVE_RECURSE
  "CMakeFiles/tab05_portability.dir/tab05_portability.cpp.o"
  "CMakeFiles/tab05_portability.dir/tab05_portability.cpp.o.d"
  "tab05_portability"
  "tab05_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
