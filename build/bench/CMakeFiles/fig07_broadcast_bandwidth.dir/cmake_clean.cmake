file(REMOVE_RECURSE
  "CMakeFiles/fig07_broadcast_bandwidth.dir/fig07_broadcast_bandwidth.cpp.o"
  "CMakeFiles/fig07_broadcast_bandwidth.dir/fig07_broadcast_bandwidth.cpp.o.d"
  "fig07_broadcast_bandwidth"
  "fig07_broadcast_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_broadcast_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
