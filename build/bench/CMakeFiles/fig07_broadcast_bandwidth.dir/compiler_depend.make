# Empty compiler generated dependencies file for fig07_broadcast_bandwidth.
# This may be replaced when dependencies are built.
