# Empty dependencies file for fig04_time_quantum.
# This may be replaced when dependencies are built.
