file(REMOVE_RECURSE
  "CMakeFiles/fig04_time_quantum.dir/fig04_time_quantum.cpp.o"
  "CMakeFiles/fig04_time_quantum.dir/fig04_time_quantum.cpp.o.d"
  "fig04_time_quantum"
  "fig04_time_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_time_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
