# Empty compiler generated dependencies file for fig06_read_bandwidth.
# This may be replaced when dependencies are built.
