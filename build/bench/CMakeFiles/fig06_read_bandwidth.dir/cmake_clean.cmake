file(REMOVE_RECURSE
  "CMakeFiles/fig06_read_bandwidth.dir/fig06_read_bandwidth.cpp.o"
  "CMakeFiles/fig06_read_bandwidth.dir/fig06_read_bandwidth.cpp.o.d"
  "fig06_read_bandwidth"
  "fig06_read_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_read_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
