# Empty dependencies file for fig02_launch_unloaded.
# This may be replaced when dependencies are built.
