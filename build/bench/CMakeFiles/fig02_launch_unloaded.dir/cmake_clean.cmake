file(REMOVE_RECURSE
  "CMakeFiles/fig02_launch_unloaded.dir/fig02_launch_unloaded.cpp.o"
  "CMakeFiles/fig02_launch_unloaded.dir/fig02_launch_unloaded.cpp.o.d"
  "fig02_launch_unloaded"
  "fig02_launch_unloaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_launch_unloaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
