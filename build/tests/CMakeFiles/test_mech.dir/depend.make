# Empty dependencies file for test_mech.
# This may be replaced when dependencies are built.
