file(REMOVE_RECURSE
  "CMakeFiles/test_mech.dir/mech/mechanisms_test.cpp.o"
  "CMakeFiles/test_mech.dir/mech/mechanisms_test.cpp.o.d"
  "test_mech"
  "test_mech.pdb"
  "test_mech[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
