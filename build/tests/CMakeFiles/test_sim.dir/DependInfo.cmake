
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/resources_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/resources_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/resources_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/stats_test.cpp.o.d"
  "/root/repo/tests/sim/sync_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/sync_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/sync_test.cpp.o.d"
  "/root/repo/tests/sim/task_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/task_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/task_test.cpp.o.d"
  "/root/repo/tests/sim/time_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/time_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/time_test.cpp.o.d"
  "/root/repo/tests/sim/trace_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
