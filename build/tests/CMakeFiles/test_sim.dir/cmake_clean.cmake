file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/random_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/random_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/resources_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/resources_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/stats_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/stats_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/sync_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/sync_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/task_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/task_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/time_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/time_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/trace_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/trace_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
