# Empty dependencies file for test_storm.
# This may be replaced when dependencies are built.
