
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storm/batch_scheduler_test.cpp" "tests/CMakeFiles/test_storm.dir/storm/batch_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/test_storm.dir/storm/batch_scheduler_test.cpp.o.d"
  "/root/repo/tests/storm/buddy_allocator_test.cpp" "tests/CMakeFiles/test_storm.dir/storm/buddy_allocator_test.cpp.o" "gcc" "tests/CMakeFiles/test_storm.dir/storm/buddy_allocator_test.cpp.o.d"
  "/root/repo/tests/storm/cluster_test.cpp" "tests/CMakeFiles/test_storm.dir/storm/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_storm.dir/storm/cluster_test.cpp.o.d"
  "/root/repo/tests/storm/coscheduling_test.cpp" "tests/CMakeFiles/test_storm.dir/storm/coscheduling_test.cpp.o" "gcc" "tests/CMakeFiles/test_storm.dir/storm/coscheduling_test.cpp.o.d"
  "/root/repo/tests/storm/file_transfer_test.cpp" "tests/CMakeFiles/test_storm.dir/storm/file_transfer_test.cpp.o" "gcc" "tests/CMakeFiles/test_storm.dir/storm/file_transfer_test.cpp.o.d"
  "/root/repo/tests/storm/ousterhout_matrix_test.cpp" "tests/CMakeFiles/test_storm.dir/storm/ousterhout_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/test_storm.dir/storm/ousterhout_matrix_test.cpp.o.d"
  "/root/repo/tests/storm/reservation_profile_test.cpp" "tests/CMakeFiles/test_storm.dir/storm/reservation_profile_test.cpp.o" "gcc" "tests/CMakeFiles/test_storm.dir/storm/reservation_profile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/storm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_mech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
