file(REMOVE_RECURSE
  "CMakeFiles/test_storm.dir/storm/batch_scheduler_test.cpp.o"
  "CMakeFiles/test_storm.dir/storm/batch_scheduler_test.cpp.o.d"
  "CMakeFiles/test_storm.dir/storm/buddy_allocator_test.cpp.o"
  "CMakeFiles/test_storm.dir/storm/buddy_allocator_test.cpp.o.d"
  "CMakeFiles/test_storm.dir/storm/cluster_test.cpp.o"
  "CMakeFiles/test_storm.dir/storm/cluster_test.cpp.o.d"
  "CMakeFiles/test_storm.dir/storm/coscheduling_test.cpp.o"
  "CMakeFiles/test_storm.dir/storm/coscheduling_test.cpp.o.d"
  "CMakeFiles/test_storm.dir/storm/file_transfer_test.cpp.o"
  "CMakeFiles/test_storm.dir/storm/file_transfer_test.cpp.o.d"
  "CMakeFiles/test_storm.dir/storm/ousterhout_matrix_test.cpp.o"
  "CMakeFiles/test_storm.dir/storm/ousterhout_matrix_test.cpp.o.d"
  "CMakeFiles/test_storm.dir/storm/reservation_profile_test.cpp.o"
  "CMakeFiles/test_storm.dir/storm/reservation_profile_test.cpp.o.d"
  "test_storm"
  "test_storm.pdb"
  "test_storm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
