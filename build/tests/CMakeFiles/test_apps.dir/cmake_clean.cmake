file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/apps_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/apps_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/workload_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/workload_test.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
