# Empty compiler generated dependencies file for test_node.
# This may be replaced when dependencies are built.
