file(REMOVE_RECURSE
  "CMakeFiles/test_node.dir/node/filesystem_test.cpp.o"
  "CMakeFiles/test_node.dir/node/filesystem_test.cpp.o.d"
  "CMakeFiles/test_node.dir/node/machine_test.cpp.o"
  "CMakeFiles/test_node.dir/node/machine_test.cpp.o.d"
  "CMakeFiles/test_node.dir/node/os_scheduler_test.cpp.o"
  "CMakeFiles/test_node.dir/node/os_scheduler_test.cpp.o.d"
  "test_node"
  "test_node.pdb"
  "test_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
