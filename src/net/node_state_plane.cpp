#include "net/node_state_plane.hpp"

#include <cassert>

namespace storm::net {

NodeStatePlane::NodeStatePlane(int nodes)
    : nodes_(nodes),
      wk_(static_cast<std::size_t>(kWellKnownWords) * nodes, 0),
      failed_(nodes),
      pl_busy_(nodes, 0) {
  assert(nodes >= 1);
}

std::int64_t NodeStatePlane::word(int node, GlobalAddr addr) const {
  assert(node >= 0 && node < nodes_);
  if (well_known(addr)) {
    return wk_[static_cast<std::size_t>(addr) * nodes_ + node];
  }
  const auto it = banks_.find(addr);
  return it == banks_.end() ? 0 : it->second[node];
}

void NodeStatePlane::set_word(int node, GlobalAddr addr, std::int64_t value) {
  assert(node >= 0 && node < nodes_);
  if (failed_.test(node)) return;  // a dead NIC discards writes
  if (well_known(addr)) {
    wk_[static_cast<std::size_t>(addr) * nodes_ + node] = value;
    return;
  }
  auto it = banks_.find(addr);
  if (it == banks_.end()) {
    it = banks_.emplace(addr, std::vector<std::int64_t>(nodes_, 0)).first;
  }
  it->second[node] = value;
}

void NodeStatePlane::fill_words(NodeRange r, GlobalAddr addr,
                                std::int64_t value) {
  if (r.empty()) return;
  assert(r.first >= 0 && r.last() < nodes_);
  std::int64_t* col;
  if (well_known(addr)) {
    col = wk_.data() + static_cast<std::size_t>(addr) * nodes_;
  } else {
    auto it = banks_.find(addr);
    if (it == banks_.end()) {
      it = banks_.emplace(addr, std::vector<std::int64_t>(nodes_, 0)).first;
    }
    col = it->second.data();
  }
  if (!failed_.any_in(r)) {
    // Common case: no dead node in the range — one straight fill.
    for (int n = r.first; n <= r.last(); ++n) col[n] = value;
    return;
  }
  for (int n = r.first; n <= r.last(); ++n) {
    if (!failed_.test(n)) col[n] = value;
  }
}

bool NodeStatePlane::compare_all(NodeRange r, GlobalAddr addr, Compare cmp,
                                 std::int64_t operand) const {
  if (r.empty()) return true;
  assert(r.first >= 0 && r.last() < nodes_);
  if (failed_.any_in(r)) return false;  // dead nodes never ack
  const std::int64_t* col = nullptr;
  if (well_known(addr)) {
    col = wk_.data() + static_cast<std::size_t>(addr) * nodes_;
  } else {
    const auto it = banks_.find(addr);
    if (it == banks_.end()) {
      // Never-written bank: every word reads 0.
      return compare(0, cmp, operand);
    }
    col = it->second.data();
  }
  for (int n = r.first; n <= r.last(); ++n) {
    if (!compare(col[n], cmp, operand)) return false;
  }
  return true;
}

void NodeStatePlane::clear_node(int node) {
  assert(node >= 0 && node < nodes_);
  for (GlobalAddr a = 0; a < kWellKnownWords; ++a) {
    wk_[static_cast<std::size_t>(a) * nodes_ + node] = 0;
  }
  for (auto& [addr, bank] : banks_) bank[node] = 0;
}

}  // namespace storm::net
