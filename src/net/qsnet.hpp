// Flow-level model of the Quadrics QsNET (Elan3 / Elite, as deployed
// on the paper's 64-node AlphaServer ES40 cluster).
//
// What is modelled, and against which paper datum it is calibrated:
//  * hardware multicast with circuit-switched 320-byte packets and
//    ack-token flow control  -> Table 4 bandwidths, Figure 7 curves
//  * network conditionals (hardware barrier / global AND)
//                            -> Figure 9 latency scaling
//  * remote DMA PUT, remote event signalling, remote queues
//  * the PCI 64/33 I/O bus on each host (175 MB/s broadcast path to
//    main memory vs 312 MB/s NIC-to-NIC)  -> Figure 7
//  * background-traffic degradation of collectives -> Figure 3
//
// Transfers use sampled-rate timing: the effective bandwidth is
// computed from the analytic packet model plus the current contention
// weights when the transfer starts, and contention tokens are held for
// its duration. The STORM file-transfer protocol moves data in
// 512 KB-ish chunks, so rates are re-sampled every few milliseconds —
// more than responsive enough for the experiments, and it keeps the
// event count per 12 MB launch in the hundreds instead of the 39k
// packets the real NIC moves. A true packet-level simulator
// (net/packet_sim.hpp) cross-validates this model in the tests and in
// the Table 4 bench.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/node_state_plane.hpp"
#include "net/topology.hpp"
#include "sim/resources.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/units.hpp"

namespace storm::net {

/// Where a DMA source/destination buffer lives (Section 3.3.1 studies
/// this choice: reading is faster into main memory, broadcasting is
/// faster from NIC memory; STORM picks main memory by the min() rule).
enum class BufferPlace { MainMemory, NicMemory };

struct QsNetParams {
  // --- packet/link layer (Section 3.3.2) ---
  sim::Bytes mtu = 320;                      // payload bytes per packet
  sim::Bandwidth link_payload_bw =
      sim::Bandwidth::mb_per_s(319.2);       // peak per-link payload rate
  sim::SimTime switch_flow_through = sim::SimTime::ns(35);
  sim::SimTime wire_delay_per_m = sim::SimTime::ns(4);
  sim::SimTime ack_base = sim::SimTime::ns(580);  // src/dst NIC turnaround

  // --- host I/O bus (Figures 6/7) ---
  sim::Bandwidth pci_bcast_main = sim::Bandwidth::mb_per_s(175);
  sim::Bandwidth bcast_nic_peak = sim::Bandwidth::mb_per_s(312);
  sim::Bandwidth pci_total = sim::Bandwidth::mb_per_s(230);

  // --- collective setup / software overheads ---
  sim::SimTime bcast_setup = sim::SimTime::us(70);   // DMA+tree setup (Fig 7 ramp)
  sim::SimTime p2p_latency = sim::SimTime::micros(3.0);
  sim::SimTime barrier_base = sim::SimTime::micros(4.4);   // Fig 9 y-intercept
  sim::SimTime barrier_per_stage = sim::SimTime::ns(200);  // combining overhead
  sim::SimTime event_signal_latency = sim::SimTime::micros(2.0);
  sim::SimTime caw_write_extra = sim::SimTime::micros(2.0);
};

class QsNet {
 public:
  /// `cable_m < 0` selects the paper's floor-plan diameter estimate.
  QsNet(sim::Simulator& sim, int nodes, QsNetParams params = {},
        double cable_m = -1.0);

  sim::Simulator& simulator() { return sim_; }
  int nodes() const { return tree_.nodes(); }
  double cable_length_m() const { return cable_m_; }
  const QsNetParams& params() const { return params_; }

  // ------------------------------------------------------------------
  // Analytic model (shared with bench/tab04 and model/launch_model)
  // ------------------------------------------------------------------

  /// Steady-state hardware-broadcast payload bandwidth for a multicast
  /// spanning `nodes` leaves with worst-case cable length `cable_m`.
  /// This is the ASCI Q procurement model of Section 3.3.2: packet i+1
  /// may only be injected after packet i's ack token has returned from
  /// the farthest leaf, so the per-packet cycle is
  ///   max(mtu / link_rate, ack_base + 2*(switches*35ns + L*wire)).
  static sim::Bandwidth model_broadcast_bandwidth(int nodes, double cable_m,
                                                  const QsNetParams& p);

  /// As above but capped by the buffer-placement bottleneck (PCI for
  /// main-memory buffers, NIC-memory peak otherwise).
  static sim::Bandwidth model_broadcast_bandwidth(int nodes, double cable_m,
                                                  BufferPlace place,
                                                  const QsNetParams& p);

  /// Hardware-barrier / network-conditional latency (Figure 9).
  static sim::SimTime model_conditional_latency(int nodes, double cable_m,
                                                const QsNetParams& p);

  /// Nominal broadcast bandwidth on *this* network for a destination
  /// set of `set_nodes` nodes (uses this network's cable length).
  sim::Bandwidth broadcast_bandwidth(int set_nodes, BufferPlace place) const {
    return model_broadcast_bandwidth(set_nodes, cable_m_, place, params_);
  }

  sim::SimTime conditional_latency(int set_nodes) const {
    return model_conditional_latency(set_nodes, cable_m_, params_);
  }

  // ------------------------------------------------------------------
  // Data movement
  // ------------------------------------------------------------------

  /// Point-to-point RDMA PUT of `bytes` from src to dst.
  sim::Task<> put(int src, int dst, sim::Bytes bytes,
                  BufferPlace dst_place = BufferPlace::MainMemory);

  /// Messages at or below this size skip DMA/TLB setup (control path).
  static constexpr sim::Bytes kSmallMessage = 16 * 1024;

  /// Hardware multicast PUT to every node in `dsts` (atomic: in this
  /// fault-free fabric model delivery is all-or-nothing by
  /// construction; fault injection drops the whole multicast).
  sim::Task<> broadcast(int src, NodeRange dsts, sim::Bytes bytes,
                        BufferPlace place = BufferPlace::MainMemory);

  // ------------------------------------------------------------------
  // Global memory + network conditional (COMPARE-AND-WRITE substrate)
  // ------------------------------------------------------------------

  void write_word(int node, GlobalAddr addr, std::int64_t value);
  std::int64_t read_word(int node, GlobalAddr addr) const;

  /// Evaluate `word[addr] cmp operand` on every node of `dsts`;
  /// true iff the condition holds on all of them. Takes the hardware
  /// conditional latency. Failed (down) nodes make the result false.
  sim::Task<bool> conditional(int src, NodeRange dsts, GlobalAddr addr,
                              Compare cmp, std::int64_t operand);

  /// The write half of COMPARE-AND-WRITE: atomically set word[addr] on
  /// all nodes in the set (used only after a true conditional).
  sim::Task<> conditional_write(int src, NodeRange dsts, GlobalAddr addr,
                                std::int64_t value);

  // ------------------------------------------------------------------
  // NIC events (TEST-EVENT substrate) — counting semantics
  // ------------------------------------------------------------------

  void signal_local(int node, EventAddr ev, int count = 1);
  sim::Task<> signal_remote(int src, int dst, EventAddr ev);
  /// Block until the event has been signalled at least once; consumes
  /// one signal.
  sim::Task<> wait_event(int node, EventAddr ev);
  bool poll_event(int node, EventAddr ev);

  /// Deliver the per-destination event signals of a completed
  /// multicast. With no hook installed this walks the range signalling
  /// each live node's semaphore (the classic N-event fan-out); a plane
  /// runtime installs a hook to absorb the whole range as ONE batched
  /// range event instead of N heap entries.
  void deliver_remote_signals(int src, NodeRange dsts, EventAddr ev);

  /// Hook return value `true` means the range was absorbed (no
  /// per-node signals are generated).
  using RangeSignalHook = std::function<bool(int src, NodeRange, EventAddr)>;
  void set_range_signal_hook(RangeSignalHook hook) {
    range_signal_hook_ = std::move(hook);
  }

  // ------------------------------------------------------------------
  // Load & faults
  // ------------------------------------------------------------------

  /// Inject sustained background fabric load (the paper's
  /// network-loaded scenario: pairwise p2p traffic on all 256
  /// processes). Weight 1.0 ~ one saturating p2p stream crossing the
  /// fabric's upper stages.
  sim::SharedBandwidth::LoadHandle add_fabric_load(double weight) {
    return fabric_.add_background_load(weight);
  }

  /// Per-node PCI load (e.g. a NIC-driven filesystem read in flight).
  sim::SharedBandwidth& pci(int node) { return *pci_[node]; }

  /// Mark a node as failed: it stops acking conditionals and receives
  /// no data (used by the heartbeat / fault-detection experiments).
  void fail_node(int node) { plane_.set_failed(node, true); }
  void recover_node(int node) { plane_.set_failed(node, false); }
  bool node_failed(int node) const { return plane_.failed(node); }
  /// Wipe a node's NIC-resident global-memory words (recovery: the
  /// restarted NM re-registers against a clean slate).
  void clear_words(int node) { plane_.clear_node(node); }

  /// The structure-of-arrays per-node state behind this NIC's global
  /// memory words and failure flags (DESIGN.md §2.2).
  NodeStatePlane& plane() { return plane_; }
  const NodeStatePlane& plane() const { return plane_; }

  /// Total payload bytes moved through the fabric (diagnostics).
  std::int64_t bytes_broadcast() const { return bytes_broadcast_; }
  std::int64_t bytes_put() const { return bytes_put_; }

 private:
  sim::Semaphore& event_sem(int node, EventAddr ev);

  sim::Simulator& sim_;
  FatTree tree_;
  QsNetParams params_;
  double cable_m_;

  // Contention accounting. The fabric pipe models the shared upper
  // stages that a circuit-switched multicast must reserve end-to-end;
  // point-to-point traffic contends per destination link instead (a
  // fat tree provides full bisection for disjoint pairs).
  sim::SharedBandwidth fabric_;
  std::vector<std::unique_ptr<sim::SharedBandwidth>> link_in_;
  std::vector<std::unique_ptr<sim::SharedBandwidth>> pci_;

  // All per-node words and failure flags live in the flat plane;
  // event semaphores stay per-node maps (they hold waiter queues, not
  // scannable state, and only a handful of nodes ever wait).
  NodeStatePlane plane_;
  std::vector<std::unordered_map<EventAddr, std::unique_ptr<sim::Semaphore>>>
      events_;
  RangeSignalHook range_signal_hook_;

  std::int64_t bytes_broadcast_ = 0;
  std::int64_t bytes_put_ = 0;
};

}  // namespace storm::net
