// Packet-level replay of a QsNET hardware multicast.
//
// The flow-level model in QsNet::model_broadcast_bandwidth collapses
// the per-packet ack-token protocol into a steady-state cycle time.
// This module walks the same protocol packet by packet — injection,
// per-switch flow-through, wire propagation, ack-token return, the
// single-outstanding-packet window — and reports the exact finish
// time. Tests and the Table 4 bench cross-check the two against each
// other (they must agree to < 1% for multi-packet messages).
#pragma once

#include "net/qsnet.hpp"

namespace storm::net {

struct PacketTrace {
  int packets = 0;                 // number of MTU-sized packets
  sim::SimTime first_ack;          // ack return of the first packet
  sim::SimTime total_time;         // last byte delivered at every leaf
  sim::Bandwidth payload_bandwidth;  // message bytes / total_time
};

/// Replay the multicast of `message` bytes to a set spanning `nodes`
/// leaves with worst-case cable `cable_m`.
PacketTrace replay_broadcast(sim::Bytes message, int nodes, double cable_m,
                             const QsNetParams& p = {});

}  // namespace storm::net
