#include "net/packet_sim.hpp"

#include <algorithm>
#include <cassert>

namespace storm::net {

using sim::Bytes;
using sim::SimTime;

PacketTrace replay_broadcast(Bytes message, int nodes, double cable_m,
                             const QsNetParams& p) {
  assert(message > 0 && nodes >= 1);
  const int switches = nodes > 1 ? FatTree::switches_crossed(nodes) : 0;

  const SimTime t_tx = p.link_payload_bw.time_for(p.mtu);
  const SimTime one_way = p.switch_flow_through * switches +
                          p.wire_delay_per_m * static_cast<std::int64_t>(cable_m);
  // Ack token: leaf turnaround + the round trip through the tree.
  const SimTime t_ack = p.ack_base + 2 * one_way;

  const int packets =
      static_cast<int>((message + p.mtu - 1) / p.mtu);

  PacketTrace out;
  out.packets = packets;

  SimTime inject = SimTime::zero();   // injection start of current packet
  SimTime last_ack = SimTime::zero();
  for (int i = 0; i < packets; ++i) {
    // Single-outstanding-packet window: packet i may start only after
    // the link is free AND packet i-1's ack token has returned.
    if (i > 0) {
      const SimTime link_free = inject + t_tx;
      inject = std::max(link_free, last_ack);
    }
    last_ack = inject + t_ack;
    if (i == 0) out.first_ack = last_ack;
  }
  // The message is complete when the last packet's final byte arrives
  // at the farthest leaf.
  out.total_time = inject + t_tx + one_way;
  out.payload_bandwidth = sim::Bandwidth::bytes_per_s(
      static_cast<double>(message) / out.total_time.to_seconds());
  return out;
}

}  // namespace storm::net
