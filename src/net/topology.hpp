// Quaternary fat-tree topology model of the QsNET.
//
// The Elite switch used by QsNET is an 8-port crossbar wired as a
// 4-up/4-down quaternary fat tree: a network of N nodes needs
// ceil(log4 N) stages, and a worst-case route (or a broadcast that
// must reach every leaf) crosses 2*stages - 1 switches. The paper's
// scalability model (Section 3.3.2, Table 4) additionally estimates
// the maximum cable length from the machine-room floor plan:
// diameter(nodes) = floor(sqrt(2 * nodes)) metres (Equation 2).
#pragma once

#include <cassert>
#include <cmath>

namespace storm::net {

/// A contiguous range of node ids — the natural shape of both a buddy
/// allocation and a QsNET hardware-multicast destination set.
struct NodeRange {
  int first = 0;
  int count = 0;

  constexpr bool empty() const { return count <= 0; }
  constexpr int last() const { return first + count - 1; }
  constexpr bool contains(int node) const {
    return node >= first && node <= last();
  }
  friend constexpr bool operator==(NodeRange, NodeRange) = default;
};

class FatTree {
 public:
  /// Number of switch stages needed for `nodes` leaves (radix-4 tree).
  static constexpr int stages_for(int nodes) {
    assert(nodes >= 1);
    int stages = 1;
    int reach = 4;
    while (reach < nodes) {
      reach *= 4;
      ++stages;
    }
    return stages;
  }

  /// Switches crossed by a worst-case route (up to the top, back down).
  static constexpr int switches_crossed(int nodes) {
    return 2 * stages_for(nodes) - 1;
  }

  /// Stages that a route between two specific leaves must ascend:
  /// the lowest stage whose radix-4 subtree contains both.
  static constexpr int stages_between(int a, int b) {
    if (a == b) return 0;
    int stage = 1;
    int radix = 4;
    while (a / radix != b / radix) {
      radix *= 4;
      ++stage;
    }
    return stage;
  }

  static constexpr int switches_between(int a, int b) {
    if (a == b) return 0;
    return 2 * stages_between(a, b) - 1;
  }

  /// Equation 2: conservative machine floor-plan diameter in metres.
  static double floorplan_diameter_m(int nodes) {
    return std::floor(std::sqrt(2.0 * static_cast<double>(nodes)));
  }

  explicit FatTree(int nodes) : nodes_(nodes), stages_(stages_for(nodes)) {
    assert(nodes >= 1);
  }

  int nodes() const { return nodes_; }
  int stages() const { return stages_; }
  int max_switches() const { return 2 * stages_ - 1; }

 private:
  int nodes_;
  int stages_;
};

}  // namespace storm::net
