#include "net/qsnet.hpp"

#include <algorithm>
#include <cassert>

namespace storm::net {

using sim::Bandwidth;
using sim::Bytes;
using sim::SimTime;
using sim::Task;

QsNet::QsNet(sim::Simulator& sim, int nodes, QsNetParams params, double cable_m)
    : sim_(sim),
      tree_(nodes),
      params_(params),
      cable_m_(cable_m >= 0 ? cable_m : FatTree::floorplan_diameter_m(nodes)),
      fabric_(sim, params_.link_payload_bw, "qsnet-fabric"),
      plane_(nodes),
      events_(nodes) {
  pci_.reserve(nodes);
  link_in_.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    pci_.push_back(std::make_unique<sim::SharedBandwidth>(
        sim, params_.pci_total, "pci-" + std::to_string(i)));
    link_in_.push_back(std::make_unique<sim::SharedBandwidth>(
        sim, params_.link_payload_bw, "link-" + std::to_string(i)));
  }
}

Bandwidth QsNet::model_broadcast_bandwidth(int nodes, double cable_m,
                                           const QsNetParams& p) {
  assert(nodes >= 1);
  const int switches = nodes > 1 ? FatTree::switches_crossed(nodes) : 0;
  const double t_tx =
      static_cast<double>(p.mtu) / p.link_payload_bw.to_bytes_per_s();
  const double t_ack =
      p.ack_base.to_seconds() +
      2.0 * (switches * p.switch_flow_through.to_seconds() +
             cable_m * p.wire_delay_per_m.to_seconds());
  const double cycle = std::max(t_tx, t_ack);
  return Bandwidth::bytes_per_s(static_cast<double>(p.mtu) / cycle);
}

Bandwidth QsNet::model_broadcast_bandwidth(int nodes, double cable_m,
                                           BufferPlace place,
                                           const QsNetParams& p) {
  const Bandwidth wire = model_broadcast_bandwidth(nodes, cable_m, p);
  const Bandwidth cap = place == BufferPlace::MainMemory ? p.pci_bcast_main
                                                         : p.bcast_nic_peak;
  return sim::min(wire, cap);
}

SimTime QsNet::model_conditional_latency(int nodes, double cable_m,
                                         const QsNetParams& p) {
  const int stages = nodes > 1 ? FatTree::stages_for(nodes) : 0;
  const int switches = nodes > 1 ? FatTree::switches_crossed(nodes) : 0;
  return p.barrier_base + p.barrier_per_stage * stages +
         2 * (p.switch_flow_through * switches +
              p.wire_delay_per_m * static_cast<std::int64_t>(cable_m));
}

Task<> QsNet::put(int src, int dst, Bytes bytes, BufferPlace dst_place) {
  assert(src >= 0 && src < nodes() && dst >= 0 && dst < nodes());
  bytes_put_ += bytes;
  const int switches = FatTree::switches_between(src, dst);
  const SimTime latency = params_.p2p_latency +
                          params_.switch_flow_through * switches +
                          params_.wire_delay_per_m *
                              static_cast<std::int64_t>(cable_m_);
  if (bytes <= 0 || plane_.failed(dst)) {
    co_await sim_.delay(latency);
    co_return;
  }
  // Sampled effective rate: the destination's ingress link (disjoint
  // point-to-point pairs get full bisection through the fat tree),
  // further capped by its PCI bus when landing in main memory, and by
  // injected background fabric load (the network-loaded scenario).
  Bandwidth rate = link_in_[dst]->share_with(1.0);
  if (fabric_.active_weight() > 0) {
    rate = rate / (1.0 + fabric_.active_weight());
  }
  if (dst_place == BufferPlace::MainMemory) {
    rate = sim::min(rate, pci_[dst]->share_with(1.0));
  }
  auto link_tok = link_in_[dst]->add_background_load(1.0);
  auto pci_tok = dst_place == BufferPlace::MainMemory
                     ? pci_[dst]->add_background_load(1.0)
                     : sim::SharedBandwidth::LoadHandle{};
  co_await sim_.delay(latency + rate.time_for(bytes));
}

Task<> QsNet::broadcast(int src, NodeRange dsts, Bytes bytes,
                        BufferPlace place) {
  assert(!dsts.empty());
  assert(dsts.first >= 0 && dsts.last() < nodes());
  bytes_broadcast_ += bytes;
  // Small control messages (gang-scheduling strobes, launch commands)
  // ride the same path as the hardware conditional: no DMA descriptor
  // or NIC-TLB setup, just the tree traversal.
  if (bytes <= kSmallMessage) {
    co_await sim_.delay(conditional_latency(dsts.count) +
                        params_.link_payload_bw.time_for(bytes));
    co_return;
  }
  // Nominal steady bandwidth for this destination-set size...
  Bandwidth rate = broadcast_bandwidth(dsts.count, place);
  // ...degraded by contending fabric traffic: a circuit-switched
  // multicast needs every branch of the tree free, so it advances at
  // its share of the most-loaded stage.
  const double w = fabric_.active_weight();
  if (w > 0) rate = rate / (1.0 + w);
  // Source-side PCI contention (reading the payload out of host
  // memory) also throttles a main-memory broadcast.
  if (place == BufferPlace::MainMemory) {
    rate = sim::min(rate, pci_[src]->share_with(1.0));
  }
  auto tok = fabric_.add_background_load(1.0);
  co_await sim_.delay(params_.bcast_setup + rate.time_for(bytes));
}

void QsNet::write_word(int node, GlobalAddr addr, std::int64_t value) {
  plane_.set_word(node, addr, value);  // the plane discards dead-NIC writes
}

std::int64_t QsNet::read_word(int node, GlobalAddr addr) const {
  return plane_.word(node, addr);
}

Task<bool> QsNet::conditional(int src, NodeRange dsts, GlobalAddr addr,
                              Compare cmp, std::int64_t operand) {
  (void)src;
  co_await sim_.delay(conditional_latency(dsts.count));
  co_return plane_.compare_all(dsts, addr, cmp, operand);
}

Task<> QsNet::conditional_write(int src, NodeRange dsts, GlobalAddr addr,
                                std::int64_t value) {
  (void)src;
  co_await sim_.delay(params_.caw_write_extra);
  plane_.fill_words(dsts, addr, value);
}

sim::Semaphore& QsNet::event_sem(int node, EventAddr ev) {
  auto& slot = events_[node][ev];
  if (!slot) slot = std::make_unique<sim::Semaphore>(sim_, 0);
  return *slot;
}

void QsNet::signal_local(int node, EventAddr ev, int count) {
  if (plane_.failed(node)) return;  // a dead NIC discards local events
  event_sem(node, ev).release(static_cast<std::size_t>(count));
}

Task<> QsNet::signal_remote(int src, int dst, EventAddr ev) {
  (void)src;
  co_await sim_.delay(params_.event_signal_latency);
  if (!plane_.failed(dst)) signal_local(dst, ev);
}

void QsNet::deliver_remote_signals(int src, NodeRange dsts, EventAddr ev) {
  if (range_signal_hook_ && range_signal_hook_(src, dsts, ev)) return;
  for (int n = dsts.first; n <= dsts.last(); ++n) {
    if (!plane_.failed(n)) signal_local(n, ev);
  }
}

Task<> QsNet::wait_event(int node, EventAddr ev) {
  co_await event_sem(node, ev).acquire();
}

bool QsNet::poll_event(int node, EventAddr ev) {
  return event_sem(node, ev).try_acquire();
}

}  // namespace storm::net
