// The node-state plane: one flat structure-of-arrays for all per-node
// NIC-resident state, indexed by node id (DESIGN.md §2.2).
//
// Before this existed, every per-node datum lived in a per-object
// member — one unordered_map of global-memory words per node, one
// std::vector<bool> of failure flags, per-launcher busy booleans —
// so a COMPARE-AND-WRITE over a 64k-node partition cost 64k hash
// lookups and a hardware multicast cost 64k heap entries. The plane
// turns each of those into a linear scan over contiguous arrays:
//
//   * global-memory words: the well-known control addresses (heartbeat
//     epoch, strobe row stamp — everything below kWellKnownWords) are
//     direct columns `wk_[addr * nodes + node]`; higher, app-defined
//     addresses hash *once per address* into a dense per-address bank
//     of one word per node.
//   * failed flags: bit-packed words (BitWords), so "does this range
//     contain a dead node" is a masked 64-bit scan, not N bool loads.
//   * Program-Launcher slots: one busy bitmask word per node.
//
// Range operations (fill_words, compare_all) sweep a contiguous node
// range inside a single call — the batched-range-event substrate the
// engine-level multicast and the MM's heartbeat/strobe rounds use.
//
// Determinism contract: the plane stores exactly the values the old
// per-node maps stored, reads of unwritten words return 0, and range
// sweeps visit nodes in ascending order — so replacing the maps is
// invisible to event timing, RNG consumption, and therefore to every
// byte of the figure reproductions.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"

namespace storm::net {

/// Per-node NIC-resident global memory word address and event id.
using GlobalAddr = int;
using EventAddr = int;

/// Comparison operators supported by the network conditional.
enum class Compare { GE, LT, EQ, NE };

/// True iff `lhs cmp rhs`.
constexpr bool compare(std::int64_t lhs, Compare cmp, std::int64_t rhs) {
  switch (cmp) {
    case Compare::GE: return lhs >= rhs;
    case Compare::LT: return lhs < rhs;
    case Compare::EQ: return lhs == rhs;
    case Compare::NE: return lhs != rhs;
  }
  return false;
}

/// A bit-packed flag array with masked range queries — the
/// std::vector<bool> replacement for failed/evicted node flags.
class BitWords {
 public:
  BitWords() = default;
  explicit BitWords(int n) : bits_(n), words_((n + 63) / 64, 0) {}

  int size() const { return bits_; }

  bool test(int i) const {
    return (words_[static_cast<std::size_t>(i) >> 6] >> (i & 63)) & 1u;
  }
  void set(int i, bool v) {
    const std::uint64_t m = 1ULL << (i & 63);
    if (v) {
      words_[static_cast<std::size_t>(i) >> 6] |= m;
    } else {
      words_[static_cast<std::size_t>(i) >> 6] &= ~m;
    }
  }

  /// Any bit set in [r.first, r.last()]? One masked 64-bit word scan.
  bool any_in(NodeRange r) const {
    if (r.empty()) return false;
    std::size_t w0 = static_cast<std::size_t>(r.first) >> 6;
    const std::size_t w1 = static_cast<std::size_t>(r.last()) >> 6;
    std::uint64_t head = ~0ULL << (r.first & 63);
    const std::uint64_t tail = ~0ULL >> (63 - (r.last() & 63));
    if (w0 == w1) return (words_[w0] & head & tail) != 0;
    if ((words_[w0] & head) != 0) return true;
    for (std::size_t w = w0 + 1; w < w1; ++w) {
      if (words_[w] != 0) return true;
    }
    return (words_[w1] & tail) != 0;
  }

  bool none() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  int count() const {
    int c = 0;
    for (const std::uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  void clear_all() { words_.assign(words_.size(), 0); }

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

class NodeStatePlane {
 public:
  /// Addresses below this are well-known control slots with dedicated
  /// columns (kHeartbeatAddr = 0, kStrobeRowAddr = 1, ...); the STORM
  /// job address map deliberately starts above it (kJobAddrBase = 16).
  static constexpr GlobalAddr kWellKnownWords = 8;
  /// Launcher slots per node trackable in one busy-mask word.
  static constexpr int kMaxPlSlots = 64;

  explicit NodeStatePlane(int nodes);

  int nodes() const { return nodes_; }

  // --- global-memory words ------------------------------------------------

  /// Read word `addr` on `node`; unwritten words read 0.
  std::int64_t word(int node, GlobalAddr addr) const;
  /// Write word `addr` on `node`. A failed node's NIC discards writes.
  void set_word(int node, GlobalAddr addr, std::int64_t value);
  /// Batched range write: word `addr` := `value` on every live node of
  /// `r`, in one linear sweep (failed nodes discard, as set_word).
  void fill_words(NodeRange r, GlobalAddr addr, std::int64_t value);
  /// The network-conditional kernel: true iff every node of `r` is
  /// live and satisfies `word[addr] cmp operand`. Early-exits on the
  /// first failing node, in ascending order.
  bool compare_all(NodeRange r, GlobalAddr addr, Compare cmp,
                   std::int64_t operand) const;
  /// Wipe every word of one node (NIC recovery: clean slate).
  void clear_node(int node);

  /// Direct column access for vectorized sweeps (well-known addresses
  /// only): `column(addr)[node]`.
  const std::int64_t* column(GlobalAddr addr) const {
    return wk_.data() + static_cast<std::size_t>(addr) * nodes_;
  }

  // --- failed flags (bit-packed) ------------------------------------------

  void set_failed(int node, bool v) { failed_.set(node, v); }
  bool failed(int node) const { return failed_.test(node); }
  bool any_failed_in(NodeRange r) const { return failed_.any_in(r); }
  const BitWords& failed_bits() const { return failed_; }

  // --- Program-Launcher slot occupancy ------------------------------------

  bool pl_busy(int node, int slot) const {
    return (pl_busy_[node] >> slot) & 1u;
  }
  void set_pl_busy(int node, int slot, bool v) {
    const std::uint64_t m = 1ULL << slot;
    if (v) {
      pl_busy_[node] |= m;
    } else {
      pl_busy_[node] &= ~m;
    }
  }
  std::uint64_t pl_mask(int node) const { return pl_busy_[node]; }

 private:
  bool well_known(GlobalAddr addr) const {
    return addr >= 0 && addr < kWellKnownWords;
  }

  int nodes_;
  // Well-known word columns, address-major: wk_[addr * nodes_ + node].
  std::vector<std::int64_t> wk_;
  // Dense per-address banks for app-defined addresses (>= 8): one hash
  // per *address*, then node-indexed. Created lazily on first write.
  std::unordered_map<GlobalAddr, std::vector<std::int64_t>> banks_;
  BitWords failed_;
  std::vector<std::uint64_t> pl_busy_;
};

}  // namespace storm::net
