// `storm.state.v1`: the deterministic JSON image of a TableSet.
//
// capture() materializes the live relations into vectors; to_json()
// serialises them with the same rules the metrics/trace exporters
// follow — fixed table and column order, entries in scan order (node
// id, job id, (job, inc), (row, node), registry name order, span id),
// integers exact, doubles via %.10g — so two same-seed runs export
// byte-identical snapshots and CI can diff them like it already diffs
// `--metrics` and `--trace` files.
//
// from_json() loads a snapshot back into a StateSnapshot whose
// tables() view is a TableSet over the materialized rows: every view
// and invariant then runs identically on a live cluster and on a file.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "query/rows.hpp"

namespace storm::core {
class Cluster;
}

namespace storm::query {

inline constexpr std::string_view kStateSchema = "storm.state.v1";

struct StateSnapshot {
  ClusterMeta meta;
  std::vector<NodeRow> nodes;
  std::vector<JobRow> jobs;
  std::vector<IncarnationRow> incarnations;
  std::vector<MatrixSlotRow> matrix_slots;
  std::vector<MetricRow> metrics;
  std::vector<SpanRow> spans;
  // Written (and required on parse) only when non-empty: snapshots
  // from replication-disabled runs stay byte-identical to pre-
  // replication goldens.
  std::vector<ReplicaRow> replicas;
  // Same contract as `replicas`: present only when the time-series
  // recorder was armed (DESIGN.md §3.7), so recorder-off snapshots
  // keep their pre-§3.7 bytes.
  std::vector<SeriesPointRow> timeseries;
  std::vector<BreachRow> breaches;

  /// Relations over the materialized rows (copies them; the returned
  /// TableSet is self-contained and outlives this snapshot).
  TableSet tables() const;
};

/// Materialize the cluster's live tables.
StateSnapshot capture(core::Cluster& cluster);

/// Serialise to `storm.state.v1` (deterministic; see header comment).
std::string to_json(const StateSnapshot& s);

/// Parse a `storm.state.v1` document. Returns false and sets *err on
/// malformed input or schema mismatch.
bool from_json(std::string_view text, StateSnapshot& out,
               std::string* err = nullptr);

/// Locate the last `storm.state.v1` document inside mixed text — a
/// bench run with `--state -` appends the snapshot to its stdout, so
/// `statectl` pipelines scan backwards for it. Returns the document
/// substring, or empty if none found.
std::string_view find_state_json(std::string_view text);

}  // namespace storm::query
