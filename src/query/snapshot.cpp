#include "query/snapshot.hpp"

#include <cstdio>

#include "query/json.hpp"
#include "query/tables.hpp"
#include "storm/cluster.hpp"

namespace storm::query {
namespace {

// --- writing ---------------------------------------------------------------

void esc(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void put(std::string& out, std::int64_t v) { out += std::to_string(v); }
void put(std::string& out, std::uint64_t v) { out += std::to_string(v); }
void put(std::string& out, int v) { out += std::to_string(v); }
void put(std::string& out, bool v) { out += v ? "true" : "false"; }
void put(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}
void put(std::string& out, const std::string& v) { esc(out, v); }

template <typename... Cells>
void row(std::string& out, bool& first, const Cells&... cells) {
  out += first ? "\n      [" : ",\n      [";
  first = false;
  bool inner = true;
  (((inner ? void() : void(out += ',')), put(out, cells), inner = false), ...);
  out += ']';
}

void table_head(std::string& out, bool& first_table, std::string_view name,
                std::initializer_list<std::string_view> columns) {
  out += first_table ? "\n    " : ",\n    ";
  first_table = false;
  esc(out, name);
  out += ": {\"columns\": [";
  bool first = true;
  for (const std::string_view c : columns) {
    if (!first) out += ", ";
    first = false;
    esc(out, c);
  }
  out += "], \"rows\": [";
}

void table_tail(std::string& out, bool rows_empty) {
  out += rows_empty ? "]}" : "\n    ]}";
}

// --- reading ---------------------------------------------------------------

/// Verifies a table object's "columns" matches the writer's layout and
/// hands each row's cell array to `load`.
bool load_table(const json::Value& tables, std::string_view name,
                std::initializer_list<std::string_view> columns,
                const std::function<bool(const json::Array&)>& load,
                std::string* err) {
  const auto set_err = [&](const std::string& what) {
    if (err != nullptr) *err = "table '" + std::string(name) + "': " + what;
    return false;
  };
  const json::Value* t = tables.find(name);
  if (t == nullptr || !t->is_object()) return set_err("missing");
  const json::Value* cols = t->find("columns");
  const json::Value* rows = t->find("rows");
  if (cols == nullptr || !cols->is_array() || rows == nullptr ||
      !rows->is_array()) {
    return set_err("malformed");
  }
  if (cols->array.size() != columns.size()) return set_err("column mismatch");
  std::size_t i = 0;
  for (const std::string_view want : columns) {
    if (!cols->array[i].is_string() || cols->array[i].string != want) {
      return set_err("column mismatch");
    }
    ++i;
  }
  for (const json::Value& r : rows->array) {
    if (!r.is_array() || r.array.size() != columns.size()) {
      return set_err("row arity mismatch");
    }
    if (!load(r.array)) return set_err("bad cell value");
  }
  return true;
}

bool cell_int(const json::Value& v, std::int64_t& out) {
  if (!v.is_number()) return false;
  out = v.as_int();
  return true;
}
bool cell_int(const json::Value& v, int& out) {
  std::int64_t wide = 0;
  if (!cell_int(v, wide)) return false;
  out = static_cast<int>(wide);
  return true;
}
bool cell_uint(const json::Value& v, std::uint64_t& out) {
  if (!v.is_number()) return false;
  out = v.as_uint();
  return true;
}
bool cell_bool(const json::Value& v, bool& out) {
  if (!v.is_bool()) return false;
  out = v.boolean;
  return true;
}
bool cell_str(const json::Value& v, std::string& out) {
  if (!v.is_string()) return false;
  out = v.string;
  return true;
}

bool job_state_from_string(std::string_view s, core::JobState& out) {
  using core::JobState;
  for (const JobState st :
       {JobState::Queued, JobState::Transferring, JobState::Ready,
        JobState::Launching, JobState::Running, JobState::Completed,
        JobState::Aborted}) {
    if (core::to_string(st) == s) {
      out = st;
      return true;
    }
  }
  return false;
}

}  // namespace

TableSet StateSnapshot::tables() const {
  TableSet t;
  t.meta = meta;
  t.nodes = Relation<NodeRow>::of(nodes);
  t.jobs = Relation<JobRow>::of(jobs);
  t.incarnations = Relation<IncarnationRow>::of(incarnations);
  t.matrix_slots = Relation<MatrixSlotRow>::of(matrix_slots);
  t.metrics = Relation<MetricRow>::of(metrics);
  t.spans = Relation<SpanRow>::of(spans);
  t.replicas = Relation<ReplicaRow>::of(replicas);
  t.timeseries = Relation<SeriesPointRow>::of(timeseries);
  t.breaches = Relation<BreachRow>::of(breaches);
  return t;
}

StateSnapshot capture(core::Cluster& cluster) {
  const TableSet live = live_tables(cluster);
  StateSnapshot s;
  s.meta = live.meta;
  s.nodes = live.nodes.rows();
  s.jobs = live.jobs.rows();
  s.incarnations = live.incarnations.rows();
  s.matrix_slots = live.matrix_slots.rows();
  s.metrics = live.metrics.rows();
  s.spans = live.spans.rows();
  s.replicas = live.replicas.rows();
  s.timeseries = live.timeseries.rows();
  s.breaches = live.breaches.rows();
  return s;
}

std::string to_json(const StateSnapshot& s) {
  std::string out;
  out.reserve(4096 + 64 * (s.nodes.size() + s.jobs.size() + s.spans.size() +
                           s.matrix_slots.size() + s.metrics.size()));
  out += "{\n  \"schema\": \"";
  out += kStateSchema;
  out += "\",\n  \"meta\": {";
  const ClusterMeta& m = s.meta;
  out += "\"nodes\": " + std::to_string(m.nodes);
  out += ", \"pls_per_node\": " + std::to_string(m.pls_per_node);
  out += ", \"plane_mode\": ";
  put(out, m.plane_mode);
  out += ", \"scheduler\": ";
  esc(out, m.scheduler);
  out += ", \"quantum_ns\": " + std::to_string(m.quantum_ns);
  out += ", \"heartbeat_enabled\": ";
  put(out, m.heartbeat_enabled);
  out += ", \"heartbeat_miss_periods\": " +
         std::to_string(m.heartbeat_miss_periods);
  out += ", \"max_job_restarts\": " + std::to_string(m.max_job_restarts);
  out += ", \"seed\": " + std::to_string(m.seed);
  out += ", \"sim_ns\": " + std::to_string(m.sim_ns);
  out += ", \"mm_node\": " + std::to_string(m.mm_node);
  out += ", \"standby_active\": ";
  put(out, m.standby_active);
  out += ", \"hb_epoch\": " + std::to_string(m.hb_epoch);
  out += ", \"queued\": " + std::to_string(m.queued);
  out += ", \"completed\": " + std::to_string(m.completed);
  out += ", \"strobes\": " + std::to_string(m.strobes);
  out += ", \"matrix_rows\": " + std::to_string(m.matrix_rows);
  out += "},\n  \"tables\": {";

  bool first_table = true;
  {
    table_head(out, first_table, "nodes",
               {"node", "failed", "crashed", "evicted", "mm_failed", "epoch",
                "heartbeat", "strobe_row", "pl_mask", "pl_busy",
                "matrix_cells"});
    bool first = true;
    for (const NodeRow& r : s.nodes) {
      row(out, first, r.node, r.failed, r.crashed, r.evicted, r.mm_failed,
          r.epoch, r.heartbeat, r.strobe_row, r.pl_mask, r.pl_busy,
          r.matrix_cells);
    }
    table_tail(out, s.nodes.empty());
  }
  {
    table_head(out, first_table, "jobs",
               {"id", "name", "state", "npes", "binary_bytes", "pes_per_node",
                "row", "first_node", "node_count", "placed", "placement_row",
                "placement_first", "placement_count", "incarnation",
                "restarts", "submit_ns", "transfer_start_ns",
                "transfer_done_ns", "launch_issued_ns", "started_ns",
                "finished_ns", "last_requeue_ns", "first_proc_started_ns",
                "last_proc_exited_ns"});
    bool first = true;
    for (const JobRow& r : s.jobs) {
      row(out, first, r.id, r.name, core::to_string(r.state), r.npes,
          r.binary_bytes, r.pes_per_node, r.row, r.first_node, r.node_count,
          r.placed, r.placement_row, r.placement_first, r.placement_count,
          r.incarnation, r.restarts, r.submit_ns, r.transfer_start_ns,
          r.transfer_done_ns, r.launch_issued_ns, r.started_ns, r.finished_ns,
          r.last_requeue_ns, r.first_proc_started_ns, r.last_proc_exited_ns);
    }
    table_tail(out, s.jobs.empty());
  }
  {
    table_head(out, first_table, "incarnations",
               {"job", "inc", "current", "live", "trace"});
    bool first = true;
    for (const IncarnationRow& r : s.incarnations) {
      row(out, first, r.job, r.inc, r.current, r.live, r.trace);
    }
    table_tail(out, s.incarnations.empty());
  }
  {
    table_head(out, first_table, "matrix_slots", {"row", "node", "job"});
    bool first = true;
    for (const MatrixSlotRow& r : s.matrix_slots) {
      row(out, first, r.row, r.node, r.job);
    }
    table_tail(out, s.matrix_slots.empty());
  }
  {
    table_head(out, first_table, "metrics",
               {"name", "kind", "count", "value", "sum", "min", "max"});
    bool first = true;
    for (const MetricRow& r : s.metrics) {
      row(out, first, r.name, r.kind, r.count, r.value, r.sum, r.min, r.max);
    }
    table_tail(out, s.metrics.empty());
  }
  if (!s.replicas.empty()) {
    // Conditional on purpose: see the StateSnapshot field comment.
    table_head(out, first_table, "replicas",
               {"rank", "node", "role", "term", "commit", "applied",
                "log_size", "lease_ns", "floor_index", "floor_digest"});
    bool first = true;
    for (const ReplicaRow& r : s.replicas) {
      row(out, first, r.rank, r.node, r.role, r.term, r.commit, r.applied,
          r.log_size, r.lease_ns, r.floor_index, r.floor_digest);
    }
    table_tail(out, s.replicas.empty());
  }
  if (!s.timeseries.empty()) {
    // Conditional like `replicas`: only recorder-armed runs write it.
    table_head(out, first_table, "timeseries",
               {"window", "t_start_ns", "t_end_ns", "name", "kind", "delta",
                "value", "count", "sum", "p50", "p90", "p99"});
    bool first = true;
    for (const SeriesPointRow& r : s.timeseries) {
      row(out, first, r.window, r.t_start_ns, r.t_end_ns, r.name, r.kind,
          r.delta, r.value, r.count, r.sum, r.p50, r.p90, r.p99);
    }
    table_tail(out, s.timeseries.empty());
  }
  if (!s.breaches.empty()) {
    table_head(out, first_table, "breaches",
               {"rule", "metric", "window", "t_ns", "value", "threshold"});
    bool first = true;
    for (const BreachRow& r : s.breaches) {
      row(out, first, r.rule, r.metric, r.window, r.t_ns, r.value,
          r.threshold);
    }
    table_tail(out, s.breaches.empty());
  }
  {
    table_head(out, first_table, "spans",
               {"trace", "span", "parent", "t_start_ns", "t_end_ns", "node",
                "kind", "a", "b"});
    bool first = true;
    for (const SpanRow& r : s.spans) {
      row(out, first, r.trace, r.span, r.parent, r.t_start_ns, r.t_end_ns,
          r.node, r.kind, r.a, r.b);
    }
    table_tail(out, s.spans.empty());
  }

  out += "\n  }\n}\n";
  return out;
}

bool from_json(std::string_view text, StateSnapshot& out, std::string* err) {
  out = StateSnapshot{};
  json::Value doc;
  if (!json::parse(text, doc, err)) return false;
  const auto set_err = [&](const char* what) {
    if (err != nullptr) *err = what;
    return false;
  };
  if (!doc.is_object()) return set_err("not an object");
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kStateSchema) {
    return set_err("schema is not storm.state.v1");
  }
  const json::Value* meta = doc.find("meta");
  if (meta == nullptr || !meta->is_object()) return set_err("missing meta");
  {
    ClusterMeta& m = out.meta;
    const auto geti = [&](std::string_view k, auto& dst) {
      const json::Value* v = meta->find(k);
      return v != nullptr && cell_int(*v, dst);
    };
    const auto getb = [&](std::string_view k, bool& dst) {
      const json::Value* v = meta->find(k);
      return v != nullptr && cell_bool(*v, dst);
    };
    std::int64_t queued = 0;
    const json::Value* sched = meta->find("scheduler");
    const json::Value* seed = meta->find("seed");
    if (!geti("nodes", m.nodes) || !geti("pls_per_node", m.pls_per_node) ||
        !getb("plane_mode", m.plane_mode) || sched == nullptr ||
        !sched->is_string() || !geti("quantum_ns", m.quantum_ns) ||
        !getb("heartbeat_enabled", m.heartbeat_enabled) ||
        !geti("heartbeat_miss_periods", m.heartbeat_miss_periods) ||
        !geti("max_job_restarts", m.max_job_restarts) || seed == nullptr ||
        !seed->is_number() || !geti("sim_ns", m.sim_ns) ||
        !geti("mm_node", m.mm_node) ||
        !getb("standby_active", m.standby_active) ||
        !geti("hb_epoch", m.hb_epoch) || !geti("queued", queued) ||
        !geti("completed", m.completed) || !geti("strobes", m.strobes) ||
        !geti("matrix_rows", m.matrix_rows)) {
      return set_err("malformed meta");
    }
    m.scheduler = sched->string;
    m.seed = seed->as_uint();
    m.queued = queued;
  }
  const json::Value* tables = doc.find("tables");
  if (tables == nullptr || !tables->is_object()) {
    return set_err("missing tables");
  }

  bool ok = load_table(
      *tables, "nodes",
      {"node", "failed", "crashed", "evicted", "mm_failed", "epoch",
       "heartbeat", "strobe_row", "pl_mask", "pl_busy", "matrix_cells"},
      [&](const json::Array& c) {
        NodeRow r;
        if (!cell_int(c[0], r.node) || !cell_bool(c[1], r.failed) ||
            !cell_bool(c[2], r.crashed) || !cell_bool(c[3], r.evicted) ||
            !cell_bool(c[4], r.mm_failed) || !cell_int(c[5], r.epoch) ||
            !cell_int(c[6], r.heartbeat) || !cell_int(c[7], r.strobe_row) ||
            !cell_uint(c[8], r.pl_mask) || !cell_int(c[9], r.pl_busy) ||
            !cell_int(c[10], r.matrix_cells)) {
          return false;
        }
        out.nodes.push_back(std::move(r));
        return true;
      },
      err);
  ok = ok && load_table(
                 *tables, "jobs",
                 {"id", "name", "state", "npes", "binary_bytes",
                  "pes_per_node", "row", "first_node", "node_count", "placed",
                  "placement_row", "placement_first", "placement_count",
                  "incarnation", "restarts", "submit_ns", "transfer_start_ns",
                  "transfer_done_ns", "launch_issued_ns", "started_ns",
                  "finished_ns", "last_requeue_ns", "first_proc_started_ns",
                  "last_proc_exited_ns"},
                 [&](const json::Array& c) {
                   JobRow r;
                   std::string state;
                   if (!cell_int(c[0], r.id) || !cell_str(c[1], r.name) ||
                       !cell_str(c[2], state) ||
                       !job_state_from_string(state, r.state) ||
                       !cell_int(c[3], r.npes) ||
                       !cell_int(c[4], r.binary_bytes) ||
                       !cell_int(c[5], r.pes_per_node) ||
                       !cell_int(c[6], r.row) ||
                       !cell_int(c[7], r.first_node) ||
                       !cell_int(c[8], r.node_count) ||
                       !cell_bool(c[9], r.placed) ||
                       !cell_int(c[10], r.placement_row) ||
                       !cell_int(c[11], r.placement_first) ||
                       !cell_int(c[12], r.placement_count) ||
                       !cell_int(c[13], r.incarnation) ||
                       !cell_int(c[14], r.restarts) ||
                       !cell_int(c[15], r.submit_ns) ||
                       !cell_int(c[16], r.transfer_start_ns) ||
                       !cell_int(c[17], r.transfer_done_ns) ||
                       !cell_int(c[18], r.launch_issued_ns) ||
                       !cell_int(c[19], r.started_ns) ||
                       !cell_int(c[20], r.finished_ns) ||
                       !cell_int(c[21], r.last_requeue_ns) ||
                       !cell_int(c[22], r.first_proc_started_ns) ||
                       !cell_int(c[23], r.last_proc_exited_ns)) {
                     return false;
                   }
                   out.jobs.push_back(std::move(r));
                   return true;
                 },
                 err);
  ok = ok && load_table(*tables, "incarnations",
                        {"job", "inc", "current", "live", "trace"},
                        [&](const json::Array& c) {
                          IncarnationRow r;
                          if (!cell_int(c[0], r.job) ||
                              !cell_int(c[1], r.inc) ||
                              !cell_bool(c[2], r.current) ||
                              !cell_bool(c[3], r.live) ||
                              !cell_uint(c[4], r.trace)) {
                            return false;
                          }
                          out.incarnations.push_back(r);
                          return true;
                        },
                        err);
  ok = ok && load_table(*tables, "matrix_slots", {"row", "node", "job"},
                        [&](const json::Array& c) {
                          MatrixSlotRow r;
                          if (!cell_int(c[0], r.row) ||
                              !cell_int(c[1], r.node) ||
                              !cell_int(c[2], r.job)) {
                            return false;
                          }
                          out.matrix_slots.push_back(r);
                          return true;
                        },
                        err);
  ok = ok &&
       load_table(*tables, "metrics",
                  {"name", "kind", "count", "value", "sum", "min", "max"},
                  [&](const json::Array& c) {
                    MetricRow r;
                    if (!cell_str(c[0], r.name) || !cell_str(c[1], r.kind) ||
                        !cell_int(c[2], r.count) || !c[3].is_number() ||
                        !cell_int(c[4], r.sum) || !cell_int(c[5], r.min) ||
                        !cell_int(c[6], r.max)) {
                      return false;
                    }
                    r.value = c[3].as_double();
                    out.metrics.push_back(std::move(r));
                    return true;
                  },
                  err);
  // Optional table: written only by replication-enabled runs.
  if (ok && tables->find("replicas") != nullptr) {
    ok = load_table(*tables, "replicas",
                    {"rank", "node", "role", "term", "commit", "applied",
                     "log_size", "lease_ns", "floor_index", "floor_digest"},
                    [&](const json::Array& c) {
                      ReplicaRow r;
                      if (!cell_int(c[0], r.rank) ||
                          !cell_int(c[1], r.node) ||
                          !cell_str(c[2], r.role) ||
                          !cell_int(c[3], r.term) ||
                          !cell_int(c[4], r.commit) ||
                          !cell_int(c[5], r.applied) ||
                          !cell_int(c[6], r.log_size) ||
                          !cell_int(c[7], r.lease_ns) ||
                          !cell_int(c[8], r.floor_index) ||
                          !cell_uint(c[9], r.floor_digest)) {
                        return false;
                      }
                      out.replicas.push_back(std::move(r));
                      return true;
                    },
                    err);
  }
  // Optional tables: written only by recorder-armed runs (§3.7).
  if (ok && tables->find("timeseries") != nullptr) {
    ok = load_table(*tables, "timeseries",
                    {"window", "t_start_ns", "t_end_ns", "name", "kind",
                     "delta", "value", "count", "sum", "p50", "p90", "p99"},
                    [&](const json::Array& c) {
                      SeriesPointRow r;
                      if (!cell_int(c[0], r.window) ||
                          !cell_int(c[1], r.t_start_ns) ||
                          !cell_int(c[2], r.t_end_ns) ||
                          !cell_str(c[3], r.name) ||
                          !cell_str(c[4], r.kind) ||
                          !cell_int(c[5], r.delta) || !c[6].is_number() ||
                          !cell_int(c[7], r.count) ||
                          !cell_int(c[8], r.sum) || !c[9].is_number() ||
                          !c[10].is_number() || !c[11].is_number()) {
                        return false;
                      }
                      r.value = c[6].as_double();
                      r.p50 = c[9].as_double();
                      r.p90 = c[10].as_double();
                      r.p99 = c[11].as_double();
                      out.timeseries.push_back(std::move(r));
                      return true;
                    },
                    err);
  }
  if (ok && tables->find("breaches") != nullptr) {
    ok = load_table(*tables, "breaches",
                    {"rule", "metric", "window", "t_ns", "value", "threshold"},
                    [&](const json::Array& c) {
                      BreachRow r;
                      if (!cell_str(c[0], r.rule) ||
                          !cell_str(c[1], r.metric) ||
                          !cell_int(c[2], r.window) ||
                          !cell_int(c[3], r.t_ns) || !c[4].is_number() ||
                          !c[5].is_number()) {
                        return false;
                      }
                      r.value = c[4].as_double();
                      r.threshold = c[5].as_double();
                      out.breaches.push_back(std::move(r));
                      return true;
                    },
                    err);
  }
  ok = ok && load_table(*tables, "spans",
                        {"trace", "span", "parent", "t_start_ns", "t_end_ns",
                         "node", "kind", "a", "b"},
                        [&](const json::Array& c) {
                          SpanRow r;
                          if (!cell_uint(c[0], r.trace) ||
                              !cell_uint(c[1], r.span) ||
                              !cell_uint(c[2], r.parent) ||
                              !cell_int(c[3], r.t_start_ns) ||
                              !cell_int(c[4], r.t_end_ns) ||
                              !cell_int(c[5], r.node) ||
                              !cell_int(c[6], r.kind) ||
                              !cell_int(c[7], r.a) || !cell_int(c[8], r.b)) {
                            return false;
                          }
                          out.spans.push_back(r);
                          return true;
                        },
                        err);
  return ok;
}

std::string_view find_state_json(std::string_view text) {
  const std::string marker =
      "{\n  \"schema\": \"" + std::string(kStateSchema) + "\"";
  const std::size_t pos = text.rfind(marker);
  if (pos == std::string_view::npos) return {};
  return text.substr(pos);
}

}  // namespace storm::query
