// Live tables: the cluster's state as relations (DESIGN.md §3.5).
//
// `live_tables(cluster)` returns a TableSet whose relations scan the
// real structures — NodeStatePlane words and flag bits, the
// cluster-owned job table, the active MM's Ousterhout matrix, the
// MetricsRegistry maps, the CausalTracer's TraceBuffer — *at each
// scan*, never a shadow copy. Re-running a query after the simulation
// advanced sees the new state for free; building the TableSet costs a
// handful of scalar reads (the ClusterMeta header).
//
// Zero-copy contract: the relations borrow the Cluster. They are valid
// only while it lives, and scanning them mid-event is legal — every
// backing accessor is a pure read (no allocation in the plane or
// matrix paths, no simulated time, no RNG).
#pragma once

#include "query/rows.hpp"

namespace storm::core {
class Cluster;
}

namespace storm::query {

/// Sample the scalar meta header from a live cluster.
ClusterMeta live_meta(core::Cluster& cluster);

/// Build the six live relations + meta. The TableSet borrows
/// `cluster`; meta is sampled now, relations read at scan time.
TableSet live_tables(core::Cluster& cluster);

}  // namespace storm::query
