// Invariants-as-queries (DESIGN.md §3.5): a registry of named
// predicates over a TableSet, each expressed with the relational
// combinators, so the same checks run against a live cluster from
// tests, against a parsed `storm.state.v1` snapshot from `statectl
// check`, and periodically *inside* a simulation via InvariantProbe.
//
// Formulation note — declared vs ground truth. The state plane's
// failed bit is what the NIC knows the instant a node dies; the MM's
// failed list and the matrix's evicted bits are what the management
// plane has *declared*, which lags detection by design (heartbeat
// slack) and can disagree under partition (a declared-dead node is
// physically alive and its PLs legitimately busy). Invariants
// therefore pair each consequence with the authority that implies it:
// plane-failed implies idle PLs; matrix-evicted implies no cells.
// Between a crash and its declaration the matrix may reference a dead
// node — that window is correct behaviour, not a violation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "query/rows.hpp"
#include "sim/time.hpp"

namespace storm::core {
class Cluster;
}

namespace storm::query {

struct Violation {
  std::string invariant;
  std::string detail;
};

struct InvariantReport {
  int invariants_run = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// "ok (N invariants)" or one line per violation.
  std::string summary() const;
};

struct Invariant {
  std::string name;
  std::string description;
  std::function<void(const TableSet&, std::vector<Violation>&)> check;
};

/// The built-in invariant registry (fixed order).
const std::vector<Invariant>& invariant_registry();

/// Run every registered invariant against `t`.
InvariantReport check_invariants(const TableSet& t);

/// Convenience: build live tables and check them.
InvariantReport check_invariants(core::Cluster& cluster);

/// Periodic in-simulation checker: once armed, re-runs
/// check_invariants over the live tables every `period` of simulated
/// time and accumulates violations (the first kMaxViolations kept).
/// Probe events are pure reads — they never touch cluster state,
/// consume randomness, or alter the relative order of other events, so
/// arming a probe preserves a run's output byte-for-byte.
class InvariantProbe {
 public:
  static constexpr std::size_t kMaxViolations = 64;

  InvariantProbe(core::Cluster& cluster, sim::SimTime period);
  ~InvariantProbe();

  /// Schedule the first check at now + period (idempotent).
  void arm();
  /// Stop rescheduling (a pending event becomes a no-op).
  void disarm();

  std::int64_t checks() const;
  const std::vector<Violation>& violations() const;
  bool ok() const { return violations().empty(); }

 private:
  struct State;
  static void schedule(const std::shared_ptr<State>& st);

  std::shared_ptr<State> state_;
};

}  // namespace storm::query
