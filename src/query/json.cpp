#include "query/json.hpp"

#include <cctype>
#include <cstdlib>

namespace storm::query::json {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  bool run(Value& out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    if (err_ != nullptr && err_->empty()) {
      *err_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out.kind = Value::Kind::Null;
        return literal("null") || fail("bad literal");
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case '"':
        out.kind = Value::Kind::String;
        return string(out.string);
      case '[':
        return array(out, depth);
      case '{':
        return object(out, depth);
      default:
        return number(out);
    }
  }

  bool string(std::string& out) {
    if (!eat('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Snapshots only emit \u00XX for control bytes; decode the
            // BMP code point as a raw byte when it fits, else '?'.
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') {
                v |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                v |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                v |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            out += v < 256 ? static_cast<char>(v) : '?';
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool number(Value& out) {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ - digits > 1 && text_[digits] == '0') {
      return fail("leading zero");  // strict JSON: 01 is not a number
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return fail("expected value");
    char* end = nullptr;
    out.kind = Value::Kind::Number;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    if (integral) {
      out.integral = true;
      out.integer = std::strtoll(token.c_str(), nullptr, 10);
    }
    return true;
  }

  bool array(Value& out, int depth) {
    eat('[');
    out.kind = Value::Kind::Array;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      Value v;
      skip_ws();
      if (!value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
  }

  bool object(Value& out, int depth) {
    eat('{');
    out.kind = Value::Kind::Object;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      Value v;
      skip_ws();
      if (!value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* err_;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* err) {
  if (err != nullptr) err->clear();
  return Parser(text, err).run(out);
}

}  // namespace storm::query::json
