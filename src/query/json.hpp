// A minimal JSON reader for the query layer: just enough to load
// `storm.state.v1` snapshots back into a TableSet (statectl, CI
// round-trip tests). Recursive descent, no dependencies.
//
// Integers are kept exact: a numeric token with no fraction/exponent
// is parsed into int64 alongside the double, so 64-bit counters and
// timestamps survive a round trip bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace storm::query::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;  // exact when the token was integral
  bool integral = false;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup (first match), or nullptr.
  const Value* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::int64_t as_int() const {
    return integral ? integer : static_cast<std::int64_t>(number);
  }
  std::uint64_t as_uint() const {
    return integral ? static_cast<std::uint64_t>(integer)
                    : static_cast<std::uint64_t>(number);
  }
  double as_double() const { return number; }
};

using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/// Parse one JSON document (leading/trailing whitespace allowed).
/// Returns false and sets *err (if given) on malformed input.
bool parse(std::string_view text, Value& out, std::string* err = nullptr);

}  // namespace storm::query::json
