// Row types of the queryable state plane (DESIGN.md §3.5): one struct
// per table, plus the ClusterMeta header every TableSet carries.
//
// Each row is a plain value — the *relations* over them are what stay
// zero-copy (tables.hpp scans the live cluster structures and
// manufactures rows on the fly; snapshot.hpp materializes the same
// rows into vectors). Keeping the row types shared between the live
// and snapshot paths is the whole point: an invariant or a canned view
// written against these structs runs unchanged on a live Cluster and
// on a parsed `storm.state.v1` file.
#pragma once

#include <cstdint>
#include <string>

#include "query/relation.hpp"
#include "storm/job.hpp"

namespace storm::query {

/// True for states in which a job's current incarnation owns cluster
/// resources (a matrix placement, NIC words, possibly busy PLs).
constexpr bool occupies_resources(core::JobState s) {
  switch (s) {
    case core::JobState::Transferring:
    case core::JobState::Ready:
    case core::JobState::Launching:
    case core::JobState::Running:
      return true;
    case core::JobState::Queued:
    case core::JobState::Completed:
    case core::JobState::Aborted:
      return false;
  }
  return false;
}

/// Scalar cluster-level facts sampled when a TableSet is built. Unlike
/// the relations (live scans), this is a value snapshot — rebuild the
/// TableSet to refresh it.
struct ClusterMeta {
  int nodes = 0;
  int pls_per_node = 0;
  bool plane_mode = false;
  std::string scheduler;  // to_string(SchedulerKind)
  std::int64_t quantum_ns = 0;
  bool heartbeat_enabled = false;
  int heartbeat_miss_periods = 0;
  int max_job_restarts = 0;
  std::uint64_t seed = 0;
  std::int64_t sim_ns = 0;     // simulated clock at sample time
  int mm_node = -1;            // node hosting the ACTIVE MM
  bool standby_active = false; // a standby MM has taken over
  std::int64_t hb_epoch = 0;   // active MM's heartbeat epoch counter
  std::int64_t queued = 0;     // active MM queue length
  std::int64_t completed = 0;  // jobs observed terminal by the MM
  std::int64_t strobes = 0;    // strobes issued by the active MM
  int matrix_rows = 0;         // Ousterhout matrix MPL
};

/// One cluster node: state-plane flags and words, crash-model state,
/// and its column's footprint in the Ousterhout matrix.
///
/// Authority note (invariants depend on it): `failed` is the NIC
/// ground truth — the plane bit the fabric flips the instant a node
/// crashes. `mm_failed` and `evicted` are the management plane's
/// *declared* knowledge, which lags detection by design and can
/// disagree with ground truth under partition (a declared-dead node
/// may be physically alive and still own busy PLs).
struct NodeRow {
  int node = 0;
  bool failed = false;     // state-plane failed bit (NIC ground truth)
  bool crashed = false;    // crash-model flag (full-sim mode)
  bool evicted = false;    // evicted from the matrix buddy trees
  bool mm_failed = false;  // on the active MM's declared-dead list
  int epoch = 0;           // bumped per crash of this node
  std::int64_t heartbeat = 0;   // plane word kHeartbeatAddr
  std::int64_t strobe_row = 0;  // plane word kStrobeRowAddr
  std::uint64_t pl_mask = 0;    // Program-Launcher busy bitmask
  int pl_busy = 0;              // popcount(pl_mask)
  int matrix_cells = 0;         // occupied matrix cells in this column
};

/// One submitted job. Allocation appears twice on purpose: row /
/// first_node / node_count are what the *job* records
/// (Job::set_allocation), placement_* is what the *matrix* holds
/// (OusterhoutMatrix::placement) — the placement-allocation-agree
/// invariant checks they never diverge while the job is live.
struct JobRow {
  core::JobId id = 0;
  std::string name;
  core::JobState state = core::JobState::Queued;
  int npes = 0;
  std::int64_t binary_bytes = 0;
  int pes_per_node = 1;
  int row = 0;         // job-recorded timeslot
  int first_node = 0;  // job-recorded allocation
  int node_count = 0;
  bool placed = false;  // currently holds a matrix placement
  int placement_row = -1;
  int placement_first = -1;
  int placement_count = 0;
  int incarnation = 0;
  int restarts = 0;
  // MM-observed + app-side timestamps, ns (0 = not reached yet).
  std::int64_t submit_ns = 0;
  std::int64_t transfer_start_ns = 0;
  std::int64_t transfer_done_ns = 0;
  std::int64_t launch_issued_ns = 0;
  std::int64_t started_ns = 0;
  std::int64_t finished_ns = 0;
  std::int64_t last_requeue_ns = 0;
  std::int64_t first_proc_started_ns = 0;
  std::int64_t last_proc_exited_ns = 0;

  bool terminal() const {
    return state == core::JobState::Completed ||
           state == core::JobState::Aborted;
  }
};

/// One incarnation of a job (kill-and-requeue bumps it). `live` means
/// this incarnation is the current one AND in a state that owns
/// cluster resources (Transferring/Ready/Launching/Running) — the
/// unit the slot-sharing invariant quantifies over.
struct IncarnationRow {
  core::JobId job = 0;
  int inc = 0;
  bool current = false;
  bool live = false;
  std::uint64_t trace = 0;  // telemetry::job_trace_id(job, inc)
};

/// One occupied Ousterhout matrix cell.
struct MatrixSlotRow {
  int row = 0;
  int node = 0;
  core::JobId job = core::kInvalidJob;
};

/// One registry instrument, flattened: kind selects which fields are
/// meaningful (counter → count; gauge → value; histogram → count /
/// sum / min / max).
struct MetricRow {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  std::int64_t count = 0;
  double value = 0.0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
};

/// One MM replica of the quorum-replication group (empty relation when
/// replication is disabled — the snapshot then omits the table
/// entirely, keeping pre-replication goldens byte-identical).
/// `floor_index` is the group-wide minimum commit at sample time and
/// `floor_digest` this replica's state-machine digest at that index:
/// the committed-prefix-agreement invariant requires every replica's
/// digest to agree there.
struct ReplicaRow {
  int rank = 0;
  int node = 0;
  std::string role;  // to_string(ReplRole)
  std::int64_t term = 0;
  std::int64_t commit = 0;
  std::int64_t applied = 0;
  std::int64_t log_size = 0;
  std::int64_t lease_ns = 0;  // remaining lease (live leaders only)
  std::int64_t floor_index = 0;
  std::uint64_t floor_digest = 0;
};

/// One recorded window of one time series (DESIGN.md §3.7): the
/// flattened form of a telemetry::TimeSeriesStore point. `kind`
/// selects the meaningful fields — counter → delta + value (rate/s),
/// gauge → value, histogram → count / sum / p50 / p90 / p99 (ns).
/// Window bounds ride per-row so ClusterMeta (and with it the
/// unconditional part of storm.state.v1) stays untouched.
struct SeriesPointRow {
  std::int64_t window = 0;
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = 0;
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  std::int64_t delta = 0;
  double value = 0.0;  // gauge sample, or counter rate per second
  std::int64_t count = 0;
  std::int64_t sum = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// One fired watchdog rule (first window of a breach episode).
struct BreachRow {
  std::string rule;
  std::string metric;
  std::int64_t window = 0;
  std::int64_t t_ns = 0;
  double value = 0.0;
  double threshold = 0.0;
};

/// One causal-tracing span (mirrors telemetry::SpanRecord; `kind` is
/// the raw SpanKind value — views map it to its name).
struct SpanRow {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = -1;
  int node = -1;
  int kind = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;

  bool open() const { return t_end_ns < 0; }
};

/// The tables plus the meta header. Built either live
/// (tables.hpp: relations scan the cluster at each use) or from a
/// snapshot (snapshot.hpp: relations over materialized vectors); every
/// consumer — views, invariants, tests — takes a TableSet and cannot
/// tell the difference.
struct TableSet {
  ClusterMeta meta;
  Relation<NodeRow> nodes;
  Relation<JobRow> jobs;
  Relation<IncarnationRow> incarnations;
  Relation<MatrixSlotRow> matrix_slots;
  Relation<MetricRow> metrics;
  Relation<SpanRow> spans;
  Relation<ReplicaRow> replicas;  // empty unless replication is enabled
  // Both empty unless enable_timeseries() armed the flight recorder —
  // like `replicas`, the snapshot omits the tables entirely then.
  Relation<SeriesPointRow> timeseries;
  Relation<BreachRow> breaches;
};

}  // namespace storm::query
