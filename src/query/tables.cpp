#include "query/tables.hpp"

#include <algorithm>

#include "net/qsnet.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "storm/protocol.hpp"
#include "storm/replication/replication.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/tracing.hpp"

namespace storm::query {
namespace {

NodeRow node_row(core::Cluster& c, int n) {
  const net::NodeStatePlane& plane = c.network().plane();
  core::MachineManager& mm = c.mm();
  const core::OusterhoutMatrix& matrix = mm.matrix();
  NodeRow r;
  r.node = n;
  r.failed = plane.failed(n);
  r.crashed = c.node_crashed(n);
  r.evicted = matrix.evicted(n);
  const auto& dead = mm.failed_nodes();  // sorted ascending
  r.mm_failed = std::binary_search(dead.begin(), dead.end(), n);
  r.epoch = c.node_epoch(n);
  r.heartbeat = plane.word(n, core::kHeartbeatAddr);
  r.strobe_row = plane.word(n, core::kStrobeRowAddr);
  r.pl_mask = plane.pl_mask(n);
  r.pl_busy = __builtin_popcountll(r.pl_mask);
  int cells = 0;
  for (int row = 0; row < matrix.rows(); ++row) {
    if (matrix.cell_job(row, n) != core::kInvalidJob) ++cells;
  }
  r.matrix_cells = cells;
  return r;
}

JobRow job_row(core::Cluster& c, core::JobId id) {
  const core::Job& j = c.job(id);
  JobRow r;
  r.id = id;
  r.name = j.spec().name;
  r.state = j.state();
  r.npes = j.spec().npes;
  r.binary_bytes = static_cast<std::int64_t>(j.spec().binary_size);
  r.pes_per_node = j.pes_per_node();
  r.row = j.row();
  r.first_node = j.nodes().first;
  r.node_count = j.nodes().count;
  if (const auto p = c.mm().matrix().placement(id)) {
    r.placed = true;
    r.placement_row = p->first;
    r.placement_first = p->second.first;
    r.placement_count = p->second.count;
  }
  r.incarnation = j.incarnation();
  r.restarts = j.restarts();
  const core::JobTimes& t = j.times();
  r.submit_ns = t.submit.raw_ns();
  r.transfer_start_ns = t.transfer_start.raw_ns();
  r.transfer_done_ns = t.transfer_done.raw_ns();
  r.launch_issued_ns = t.launch_issued.raw_ns();
  r.started_ns = t.started.raw_ns();
  r.finished_ns = t.finished.raw_ns();
  r.last_requeue_ns = t.last_requeue.raw_ns();
  r.first_proc_started_ns = t.first_proc_started.raw_ns();
  r.last_proc_exited_ns = t.last_proc_exited.raw_ns();
  return r;
}

}  // namespace

ClusterMeta live_meta(core::Cluster& cluster) {
  const core::ClusterConfig& cfg = cluster.config();
  core::MachineManager& mm = cluster.mm();
  ClusterMeta m;
  m.nodes = cfg.nodes;
  m.pls_per_node = cluster.pls_per_node();
  m.plane_mode = cfg.plane_mode;
  m.scheduler = std::string(core::to_string(cfg.storm.scheduler));
  m.quantum_ns = cfg.storm.quantum.raw_ns();
  m.heartbeat_enabled = cfg.storm.heartbeat_enabled;
  m.heartbeat_miss_periods = cfg.storm.heartbeat_miss_periods;
  m.max_job_restarts = cfg.storm.max_job_restarts;
  m.seed = cfg.seed;
  m.sim_ns = cluster.sim().now().raw_ns();
  m.mm_node = mm.node();
  m.standby_active = cluster.mm_standby() != nullptr &&
                     cluster.mm_standby()->active();
  m.hb_epoch = mm.heartbeat_epoch();
  m.queued = static_cast<std::int64_t>(mm.queued_count());
  m.completed = mm.completed_count();
  m.strobes = mm.strobes_issued();
  m.matrix_rows = mm.matrix().rows();
  return m;
}

TableSet live_tables(core::Cluster& cluster) {
  core::Cluster* c = &cluster;
  TableSet t;
  t.meta = live_meta(cluster);

  t.nodes = Relation<NodeRow>([c](const Relation<NodeRow>::Visit& v) {
    const int n = c->config().nodes;
    for (int i = 0; i < n; ++i) {
      if (!v(node_row(*c, i))) return;
    }
  });

  t.jobs = Relation<JobRow>([c](const Relation<JobRow>::Visit& v) {
    const int n = static_cast<int>(c->job_count());
    for (core::JobId id = 0; id < n; ++id) {
      if (!v(job_row(*c, id))) return;
    }
  });

  t.incarnations =
      Relation<IncarnationRow>([c](const Relation<IncarnationRow>::Visit& v) {
        const int n = static_cast<int>(c->job_count());
        for (core::JobId id = 0; id < n; ++id) {
          const core::Job& j = c->job(id);
          for (int inc = 0; inc <= j.incarnation(); ++inc) {
            IncarnationRow r;
            r.job = id;
            r.inc = inc;
            r.current = inc == j.incarnation();
            r.live = r.current && occupies_resources(j.state());
            r.trace = telemetry::job_trace_id(id, inc);
            if (!v(r)) return;
          }
        }
      });

  t.matrix_slots =
      Relation<MatrixSlotRow>([c](const Relation<MatrixSlotRow>::Visit& v) {
        const core::OusterhoutMatrix& m = c->mm().matrix();
        for (int row = 0; row < m.rows(); ++row) {
          for (int node = 0; node < m.nodes(); ++node) {
            const core::JobId j = m.cell_job(row, node);
            if (j == core::kInvalidJob) continue;
            if (!v(MatrixSlotRow{row, node, j})) return;
          }
        }
      });

  t.metrics = Relation<MetricRow>([c](const Relation<MetricRow>::Visit& v) {
    const telemetry::MetricsRegistry& reg = c->metrics();
    bool go = true;
    reg.for_each_counter(
        [&](const std::string& name, const telemetry::Counter& m) {
          if (!go) return;
          MetricRow r;
          r.name = name;
          r.kind = "counter";
          r.count = m.value();
          go = v(r);
        });
    if (!go) return;
    reg.for_each_gauge([&](const std::string& name,
                           const telemetry::Gauge& m) {
      if (!go) return;
      MetricRow r;
      r.name = name;
      r.kind = "gauge";
      r.value = m.value();
      go = v(r);
    });
    if (!go) return;
    reg.for_each_histogram(
        [&](const std::string& name, const telemetry::Histogram& m) {
          if (!go) return;
          MetricRow r;
          r.name = name;
          r.kind = "histogram";
          r.count = m.count();
          r.sum = m.sum();
          r.min = m.min();
          r.max = m.max();
          go = v(r);
        });
  });

  t.replicas =
      Relation<ReplicaRow>([c](const Relation<ReplicaRow>::Visit& v) {
        const core::ReplicationGroup* g = c->replication();
        if (g == nullptr) return;  // replication disabled: empty table
        for (const core::ReplicaStatus& s : g->status()) {
          ReplicaRow r;
          r.rank = s.rank;
          r.node = s.node;
          r.role = std::string(core::to_string(s.role));
          r.term = s.term;
          r.commit = s.commit;
          r.applied = s.applied;
          r.log_size = s.log_size;
          r.lease_ns = s.lease_ns;
          r.floor_index = s.floor_index;
          r.floor_digest = s.floor_digest;
          if (!v(r)) return;
        }
      });

  t.timeseries =
      Relation<SeriesPointRow>([c](const Relation<SeriesPointRow>::Visit& v) {
        const telemetry::TimeSeriesRecorder* rec = c->timeseries();
        if (rec == nullptr) return;  // recorder off: empty table
        const telemetry::TimeSeriesStore s = rec->snapshot();
        s.visit_points([&](const telemetry::TimeSeriesStore::PointView& pv) {
          SeriesPointRow r;
          r.window = pv.window;
          r.t_start_ns = pv.t_start_ns;
          r.t_end_ns = pv.t_end_ns;
          r.name = *pv.name;
          r.kind = std::string(telemetry::to_string(pv.kind));
          switch (pv.kind) {
            case telemetry::SeriesKind::Counter:
              r.delta = pv.point->delta;
              r.value = pv.rate();
              break;
            case telemetry::SeriesKind::Gauge:
              r.value = pv.point->value;
              break;
            case telemetry::SeriesKind::Histogram:
              r.count = pv.point->count;
              r.sum = pv.point->sum;
              r.p50 = pv.point->quantile(0.50);
              r.p90 = pv.point->quantile(0.90);
              r.p99 = pv.point->quantile(0.99);
              break;
          }
          return v(r);
        });
      });

  t.breaches = Relation<BreachRow>([c](const Relation<BreachRow>::Visit& v) {
    const telemetry::TimeSeriesRecorder* rec = c->timeseries();
    if (rec == nullptr) return;
    const telemetry::TimeSeriesStore s = rec->snapshot();
    for (const telemetry::WatchdogBreach& b : s.breaches) {
      if (!v(BreachRow{b.rule, b.metric, b.window, b.t_ns, b.value,
                       b.threshold})) {
        return;
      }
    }
  });

  t.spans = Relation<SpanRow>([c](const Relation<SpanRow>::Visit& v) {
    const telemetry::CausalTracer* tracer = c->tracer();
    if (tracer == nullptr) return;
    for (const telemetry::SpanRecord& s : tracer->buffer().spans()) {
      SpanRow r;
      r.trace = s.trace;
      r.span = s.span;
      r.parent = s.parent;
      r.t_start_ns = s.t_start_ns;
      r.t_end_ns = s.t_end_ns;
      r.node = s.node;
      r.kind = s.kind;
      r.a = s.a;
      r.b = s.b;
      if (!v(r)) return;
    }
  });

  return t;
}

}  // namespace storm::query
