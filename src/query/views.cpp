#include "query/views.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>

#include "telemetry/tracing.hpp"

namespace storm::query {
namespace {

/// Minimal aligned text table (left-justified columns, two-space gap).
class Text {
 public:
  explicit Text(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  bool empty() const { return rows_.empty(); }

  std::string str() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) {
      width[i] = header_[i].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], r[i].size());
      }
    }
    std::string out;
    const auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        out += r[i];
        if (i + 1 < r.size()) {
          out.append(width[i] - r[i].size() + 2, ' ');
        }
      }
      out += '\n';
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
    return out;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string ms(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

std::string node_range(int first, int count) {
  if (count <= 0) return "-";
  if (count == 1) return std::to_string(first);
  return std::to_string(first) + "-" + std::to_string(first + count - 1);
}

std::string node_state(const NodeRow& n) {
  // Most severe first; "up" when nothing is wrong.
  if (n.failed && n.evicted) return "failed+evicted";
  if (n.failed && n.mm_failed) return "failed+declared";
  if (n.failed) return "failed";
  if (n.crashed) return "crashed";
  if (n.evicted) return "evicted";
  if (n.mm_failed) return "declared-dead";
  return "up";
}

std::string view_summary(const TableSet& t) {
  const ClusterMeta& m = t.meta;
  std::string out;
  out += "cluster:   " + std::to_string(m.nodes) + " nodes, " +
         std::to_string(m.pls_per_node) + " PLs/node, scheduler " +
         m.scheduler + (m.plane_mode ? ", plane mode" : "") + "\n";
  out += "sim time:  " + ms(m.sim_ns) + " ms (quantum " + ms(m.quantum_ns) +
         " ms, seed " + std::to_string(m.seed) + ")\n";
  out += "mm:        node " + std::to_string(m.mm_node) +
         (m.standby_active ? " (standby, after failover)" : " (primary)") +
         ", " + std::to_string(m.strobes) + " strobes, heartbeat epoch " +
         std::to_string(m.hb_epoch) + "\n";
  const auto by_state = t.jobs.group_by<std::string, int>(
      [](const JobRow& j) { return core::to_string(j.state); }, 0,
      [](int& acc, const JobRow&) { ++acc; });
  out += "jobs:      " + std::to_string(t.jobs.count());
  for (const auto& [state, n] : by_state) {
    out += ", " + std::to_string(n) + " " + state;
  }
  out += "\n";
  out += "queue:     " + std::to_string(m.queued) + " waiting, " +
         std::to_string(m.completed) + " completed\n";
  const std::size_t down =
      t.nodes.count([](const NodeRow& n) { return n.failed || n.crashed; });
  out += "health:    " + std::to_string(down) + " node(s) down, " +
         std::to_string(t.nodes.count(
             [](const NodeRow& n) { return n.evicted; })) +
         " evicted\n";
  // Batched periodic paths (DESIGN §2.3). The counters register
  // lazily on first use, so the line only appears once a sweep,
  // absorbed heartbeat, or coalesced timer fire has happened.
  const auto counter = [&t](const char* name) -> std::int64_t {
    const auto row = t.metrics
                         .where([name](const MetricRow& r) {
                           return r.name == name;
                         })
                         .first();
    return row ? row->count : 0;
  };
  const std::int64_t hb_batched = counter("nm.heartbeat.batched");
  const std::int64_t hb_sweeps = counter("mm.heartbeat.sweeps");
  const std::int64_t coalesced = counter("sim.timer.coalesced");
  if (hb_batched > 0 || hb_sweeps > 0 || coalesced > 0) {
    out += "periodic:  " + std::to_string(hb_sweeps) + " mm sweep(s), " +
           std::to_string(hb_batched) + " heartbeat(s) absorbed, " +
           std::to_string(coalesced) + " timer event(s) coalesced\n";
  }
  return out;
}

std::string view_nodes(const TableSet& t) {
  // sinfo-style: collapse consecutive nodes with identical display
  // state into one range line.
  struct Key {
    std::string state;
    int pl_busy;
    int cells;
    std::int64_t heartbeat;
    std::int64_t strobe_row;
    bool operator==(const Key&) const = default;
  };
  Text table({"NODES", "COUNT", "STATE", "PLBUSY", "CELLS", "HB", "ROW"});
  int run_first = -1;
  int run_last = -1;
  Key run_key;
  const auto flush = [&] {
    if (run_first < 0) return;
    table.add({node_range(run_first, run_last - run_first + 1),
               std::to_string(run_last - run_first + 1), run_key.state,
               std::to_string(run_key.pl_busy), std::to_string(run_key.cells),
               std::to_string(run_key.heartbeat),
               std::to_string(run_key.strobe_row)});
  };
  t.nodes.for_each([&](const NodeRow& n) {
    const Key key{node_state(n), n.pl_busy, n.matrix_cells, n.heartbeat,
                  n.strobe_row};
    if (run_first >= 0 && key == run_key && n.node == run_last + 1) {
      run_last = n.node;
      return;
    }
    flush();
    run_first = run_last = n.node;
    run_key = key;
  });
  flush();
  return table.str();
}

std::string view_queue(const TableSet& t) {
  Text table({"JOBID", "NAME", "STATE", "NPES", "NODES", "ROW", "INC",
              "SUBMIT_MS", "START_MS", "FINISH_MS"});
  t.jobs.for_each([&](const JobRow& j) {
    const bool allocated = j.placed || occupies_resources(j.state) ||
                           j.terminal();
    table.add({std::to_string(j.id), j.name, core::to_string(j.state),
               std::to_string(j.npes),
               allocated && j.node_count > 0
                   ? node_range(j.first_node, j.node_count)
                   : "-",
               j.placed ? std::to_string(j.placement_row) : "-",
               std::to_string(j.incarnation), ms(j.submit_ns),
               j.started_ns > 0 ? ms(j.started_ns) : "-",
               j.finished_ns > 0 ? ms(j.finished_ns) : "-"});
  });
  return table.str();
}

std::string view_matrix(const TableSet& t) {
  // One line per timeslot: which jobs occupy it and how full it is.
  struct RowAgg {
    std::map<core::JobId, std::pair<int, int>> jobs;  // job -> (min, max)
    int cells = 0;
  };
  const auto rows = t.matrix_slots.group_by<int, RowAgg>(
      [](const MatrixSlotRow& s) { return s.row; }, RowAgg{},
      [](RowAgg& acc, const MatrixSlotRow& s) {
        auto [it, fresh] = acc.jobs.try_emplace(
            s.job, std::pair<int, int>{s.node, s.node});
        if (!fresh) {
          it->second.first = std::min(it->second.first, s.node);
          it->second.second = std::max(it->second.second, s.node);
        }
        ++acc.cells;
      });
  Text table({"ROW", "JOBS", "CELLS", "OCC%"});
  for (int row = 0; row < t.meta.matrix_rows; ++row) {
    const auto it = rows.find(row);
    std::string jobs = "-";
    int cells = 0;
    if (it != rows.end()) {
      jobs.clear();
      for (const auto& [job, range] : it->second.jobs) {
        if (!jobs.empty()) jobs += " ";
        jobs += std::to_string(job) + "@" +
                node_range(range.first, range.second - range.first + 1);
      }
      cells = it->second.cells;
    }
    char occ[16];
    std::snprintf(occ, sizeof(occ), "%.1f",
                  t.meta.nodes > 0
                      ? 100.0 * static_cast<double>(cells) / t.meta.nodes
                      : 0.0);
    table.add({std::to_string(row), jobs, std::to_string(cells), occ});
  }
  return table.str();
}

std::string view_failures(const TableSet& t) {
  std::string out;
  Text nodes({"NODE", "STATE", "EPOCH", "HB", "PLBUSY"});
  t.nodes
      .where([](const NodeRow& n) {
        return n.failed || n.crashed || n.evicted || n.mm_failed ||
               n.epoch > 0;
      })
      .for_each([&](const NodeRow& n) {
        nodes.add({std::to_string(n.node), node_state(n),
                   std::to_string(n.epoch), std::to_string(n.heartbeat),
                   std::to_string(n.pl_busy)});
      });
  out += nodes.empty() ? std::string("no node failures\n") : nodes.str();

  Text jobs({"JOBID", "NAME", "STATE", "RESTARTS", "LAST_REQUEUE_MS"});
  t.jobs
      .where([](const JobRow& j) {
        return j.restarts > 0 || j.state == core::JobState::Aborted;
      })
      .for_each([&](const JobRow& j) {
        jobs.add({std::to_string(j.id), j.name, core::to_string(j.state),
                  std::to_string(j.restarts),
                  j.last_requeue_ns > 0 ? ms(j.last_requeue_ns) : "-"});
      });
  if (!jobs.empty()) {
    out += "\n";
    out += jobs.str();
  }
  if (t.meta.standby_active) {
    out += "\nmm: standby on node " + std::to_string(t.meta.mm_node) +
           " is active (failover occurred)\n";
  }
  return out;
}

std::string view_replication(const TableSet& t) {
  // Fixed line when the table is empty so the view renders identically
  // on a live replication-disabled cluster and on a snapshot that
  // omits the table.
  if (t.replicas.count() == 0) return "replication disabled\n";
  Text table({"RANK", "NODE", "ROLE", "TERM", "COMMIT", "APPLIED", "LOG",
              "LEASE_MS"});
  t.replicas.for_each([&](const ReplicaRow& r) {
    table.add({std::to_string(r.rank), std::to_string(r.node), r.role,
               std::to_string(r.term), std::to_string(r.commit),
               std::to_string(r.applied), std::to_string(r.log_size),
               r.lease_ns > 0 ? ms(r.lease_ns) : "-"});
  });
  return table.str();
}

std::string view_spans(const TableSet& t, const ViewOptions& opt) {
  Relation<SpanRow> spans = t.spans;
  if (opt.job >= 0) {
    const std::uint64_t lo = telemetry::job_trace_id(opt.job, 0);
    const std::uint64_t hi =
        telemetry::job_trace_id(opt.job, 0) + telemetry::kIncarnationsPerJob;
    spans = spans.where(
        [lo, hi](const SpanRow& s) { return s.trace >= lo && s.trace < hi; });
  }
  Text table({"T_START_US", "DUR_US", "NODE", "KIND", "TRACE", "SPAN",
              "PARENT", "A", "B"});
  spans
      .order_by<std::pair<std::int64_t, std::uint64_t>>(
          [](const SpanRow& s) { return std::pair(s.t_start_ns, s.span); })
      .for_each([&](const SpanRow& s) {
        table.add(
            {us(s.t_start_ns),
             s.open() ? std::string("open") : us(s.t_end_ns - s.t_start_ns),
             s.node < 0 ? std::string("-") : std::to_string(s.node),
             std::string(telemetry::to_string(
                 static_cast<telemetry::SpanKind>(s.kind))),
             std::to_string(s.trace), std::to_string(s.span),
             std::to_string(s.parent), std::to_string(s.a),
             std::to_string(s.b)});
      });
  if (table.empty()) {
    return opt.job >= 0 ? "no spans for job " + std::to_string(opt.job) +
                              " (was tracing enabled?)\n"
                        : "no spans (was tracing enabled?)\n";
  }
  return table.str();
}

std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool has_prefix(const std::string& name, const std::string& prefix) {
  return prefix.empty() || name.compare(0, prefix.size(), prefix) == 0;
}

/// ASCII sparkline: one glyph per window, '.' = no data, '_' = zero,
/// then a 8-level ramp scaled to the series maximum.
std::string sparkline(const std::vector<double>& vals) {
  static constexpr char kRamp[] = "_:-=+*#%@";
  double mx = 0.0;
  for (const double v : vals) {
    if (v == v && v > mx) mx = v;
  }
  std::string out;
  out.reserve(vals.size());
  for (const double v : vals) {
    if (v != v) {  // NaN: window absent from this series
      out += '.';
      continue;
    }
    int lvl = 0;
    if (mx > 0.0 && v > 0.0) {
      lvl = 1 + std::min(7, static_cast<int>(v / mx * 8.0));
    }
    out += kRamp[lvl];
  }
  return out;
}

/// Per-series rollup of the timeseries table, plus the window span.
struct SeriesAgg {
  std::string kind;
  std::int64_t total = 0;     // counter Σdelta / histogram Σcount
  double last = 0.0;          // counter rate / gauge value / hist p99
  std::map<std::int64_t, double> trend;  // window -> plotted value
  std::map<std::int64_t, double> cell;   // window -> watch-view value
};

struct TsRollup {
  std::map<std::string, SeriesAgg> series;
  std::int64_t w_min = 0;
  std::int64_t w_max = -1;
  std::int64_t window_ns = 0;  // longest observed span (tail is shorter)
};

TsRollup rollup_timeseries(const TableSet& t, const std::string& prefix) {
  TsRollup r;
  t.timeseries.for_each([&](const SeriesPointRow& p) {
    if (r.w_max < 0) {
      r.w_min = r.w_max = p.window;
    } else {
      r.w_min = std::min(r.w_min, p.window);
      r.w_max = std::max(r.w_max, p.window);
    }
    r.window_ns = std::max(r.window_ns, p.t_end_ns - p.t_start_ns);
    if (!has_prefix(p.name, prefix)) return;
    SeriesAgg& a = r.series[p.name];
    a.kind = p.kind;
    if (p.kind == "counter") {
      a.total += p.delta;
      a.last = p.value;  // rate/s
      a.trend[p.window] = static_cast<double>(p.delta);
      a.cell[p.window] = static_cast<double>(p.delta);
    } else if (p.kind == "gauge") {
      a.last = p.value;
      a.trend[p.window] = p.value;
      a.cell[p.window] = p.value;
    } else {  // histogram: plot the per-window p99
      a.total += p.count;
      a.last = p.p99;
      a.trend[p.window] = p.p99;
      a.cell[p.window] = static_cast<double>(p.count);
    }
  });
  return r;
}

/// Activity orders series in top/watch: how much happened, not how
/// large the values are (gauges rank by how often they moved).
double activity(const SeriesAgg& a) {
  if (a.kind == "gauge") return static_cast<double>(a.trend.size());
  return static_cast<double>(a.total);
}

std::vector<std::pair<std::string, const SeriesAgg*>> ranked(
    const TsRollup& r, int top) {
  std::vector<std::pair<std::string, const SeriesAgg*>> v;
  v.reserve(r.series.size());
  for (const auto& [name, a] : r.series) v.emplace_back(name, &a);
  std::stable_sort(v.begin(), v.end(), [](const auto& x, const auto& y) {
    const double ax = activity(*x.second);
    const double ay = activity(*y.second);
    if (ax != ay) return ax > ay;
    return x.first < y.first;
  });
  if (top > 0 && static_cast<int>(v.size()) > top) {
    v.resize(static_cast<std::size_t>(top));
  }
  return v;
}

constexpr const char* kNoTimeseries =
    "no timeseries (arm the recorder with --timeseries/--watchdog on the "
    "bench run)\n";

std::string breach_section(const TableSet& t) {
  if (t.breaches.count() == 0) return {};
  Text table({"RULE", "METRIC", "WINDOW", "T_MS", "VALUE", "THRESHOLD"});
  t.breaches.for_each([&](const BreachRow& b) {
    table.add({b.rule, b.metric, std::to_string(b.window), ms(b.t_ns),
               fmt_g(b.value), fmt_g(b.threshold)});
  });
  return "\nwatchdog breaches:\n" + table.str();
}

std::string view_top(const TableSet& t, const ViewOptions& opt) {
  const TsRollup r = rollup_timeseries(t, opt.prefix);
  if (r.w_max < 0) return kNoTimeseries;
  const int span = opt.windows > 0 ? opt.windows : 20;
  const std::int64_t w_lo = std::max(r.w_min, r.w_max - span + 1);
  std::string out = "timeseries: windows " + std::to_string(r.w_min) + ".." +
                    std::to_string(r.w_max) + " of " + ms(r.window_ns) +
                    " ms, " + std::to_string(r.series.size()) + " series" +
                    (opt.prefix.empty() ? "" : " (prefix " + opt.prefix + ")") +
                    ", trend " + std::to_string(w_lo) + ".." +
                    std::to_string(r.w_max) + "\n";
  Text table({"SERIES", "KIND", "TOTAL", "LAST", "TREND"});
  for (const auto& [name, a] : ranked(r, opt.top)) {
    std::vector<double> vals;
    vals.reserve(static_cast<std::size_t>(r.w_max - w_lo + 1));
    for (std::int64_t w = w_lo; w <= r.w_max; ++w) {
      const auto it = a->trend.find(w);
      vals.push_back(it != a->trend.end()
                         ? it->second
                         : std::numeric_limits<double>::quiet_NaN());
    }
    table.add({name, a->kind,
               a->kind == "gauge" ? fmt_g(a->last) : std::to_string(a->total),
               fmt_g(a->last), sparkline(vals)});
  }
  if (table.empty()) {
    return out + "no series match prefix '" + opt.prefix + "'\n" +
           breach_section(t);
  }
  return out + table.str() + breach_section(t);
}

std::string view_watch(const TableSet& t, const ViewOptions& opt) {
  const TsRollup r = rollup_timeseries(t, opt.prefix);
  if (r.w_max < 0) return kNoTimeseries;
  const int span = opt.windows > 0 ? opt.windows : 20;
  const std::int64_t w_lo = std::max(r.w_min, r.w_max - span + 1);
  // Time-major: one row per window, a column for each of the most
  // active series (counters/histograms show per-window counts, gauges
  // their sampled value).
  constexpr int kColumns = 4;
  const auto cols = ranked(r, kColumns);
  std::vector<std::string> header = {"WINDOW", "T_MS"};
  for (const auto& [name, a] : cols) header.push_back(name);
  header.emplace_back("BREACHES");
  // Breach marks by window.
  std::map<std::int64_t, int> breaches;
  t.breaches.for_each(
      [&](const BreachRow& b) { ++breaches[b.window]; });
  Text table(std::move(header));
  for (std::int64_t w = w_lo; w <= r.w_max; ++w) {
    std::vector<std::string> row = {std::to_string(w),
                                    ms(w * r.window_ns)};
    for (const auto& [name, a] : cols) {
      const auto it = a->cell.find(w);
      row.push_back(it != a->cell.end() ? fmt_g(it->second) : "-");
    }
    const auto bit = breaches.find(w);
    row.push_back(bit != breaches.end()
                      ? "!" + std::to_string(bit->second)
                      : "-");
    table.add(std::move(row));
  }
  return table.str() + breach_section(t);
}

std::string view_metrics(const TableSet& t, const ViewOptions& opt) {
  // Top-k cumulative counters/gauges by value — the quick "what did
  // this run do" ranking (the time-resolved story lives in top/watch).
  struct Entry {
    std::string name;
    std::string kind;
    double value;
  };
  std::vector<Entry> entries;
  t.metrics.for_each([&](const MetricRow& m) {
    if (!has_prefix(m.name, opt.prefix)) return;
    if (m.kind == "counter") {
      entries.push_back({m.name, m.kind, static_cast<double>(m.count)});
    } else if (m.kind == "gauge") {
      entries.push_back({m.name, m.kind, m.value});
    }
  });
  if (entries.empty()) {
    return opt.prefix.empty()
               ? "no counters or gauges recorded\n"
               : "no counters or gauges match prefix '" + opt.prefix + "'\n";
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.value != b.value) return a.value > b.value;
                     return a.name < b.name;
                   });
  if (opt.top > 0 && static_cast<int>(entries.size()) > opt.top) {
    entries.resize(static_cast<std::size_t>(opt.top));
  }
  Text table({"NAME", "KIND", "VALUE"});
  for (const Entry& e : entries) {
    table.add({e.name, e.kind,
               e.kind == "counter"
                   ? std::to_string(static_cast<std::int64_t>(e.value))
                   : fmt_g(e.value)});
  }
  return table.str();
}

}  // namespace

const std::vector<std::string>& view_names() {
  static const std::vector<std::string> names = {
      "summary", "nodes", "queue", "matrix", "failures", "replication",
      "spans", "metrics", "top", "watch"};
  return names;
}

std::string render_view(std::string_view name, const TableSet& t,
                        const ViewOptions& opt, std::string* err) {
  if (name == "summary") return view_summary(t);
  if (name == "nodes") return view_nodes(t);
  if (name == "queue") return view_queue(t);
  if (name == "matrix") return view_matrix(t);
  if (name == "failures") return view_failures(t);
  if (name == "replication") return view_replication(t);
  if (name == "spans") return view_spans(t, opt);
  if (name == "metrics") return view_metrics(t, opt);
  if (name == "top") return view_top(t, opt);
  if (name == "watch") return view_watch(t, opt);
  if (err != nullptr) {
    *err = "unknown view '" + std::string(name) + "'";
  }
  return {};
}

}  // namespace storm::query
