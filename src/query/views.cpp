#include "query/views.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "telemetry/tracing.hpp"

namespace storm::query {
namespace {

/// Minimal aligned text table (left-justified columns, two-space gap).
class Text {
 public:
  explicit Text(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  bool empty() const { return rows_.empty(); }

  std::string str() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) {
      width[i] = header_[i].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], r[i].size());
      }
    }
    std::string out;
    const auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        out += r[i];
        if (i + 1 < r.size()) {
          out.append(width[i] - r[i].size() + 2, ' ');
        }
      }
      out += '\n';
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
    return out;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string ms(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

std::string node_range(int first, int count) {
  if (count <= 0) return "-";
  if (count == 1) return std::to_string(first);
  return std::to_string(first) + "-" + std::to_string(first + count - 1);
}

std::string node_state(const NodeRow& n) {
  // Most severe first; "up" when nothing is wrong.
  if (n.failed && n.evicted) return "failed+evicted";
  if (n.failed && n.mm_failed) return "failed+declared";
  if (n.failed) return "failed";
  if (n.crashed) return "crashed";
  if (n.evicted) return "evicted";
  if (n.mm_failed) return "declared-dead";
  return "up";
}

std::string view_summary(const TableSet& t) {
  const ClusterMeta& m = t.meta;
  std::string out;
  out += "cluster:   " + std::to_string(m.nodes) + " nodes, " +
         std::to_string(m.pls_per_node) + " PLs/node, scheduler " +
         m.scheduler + (m.plane_mode ? ", plane mode" : "") + "\n";
  out += "sim time:  " + ms(m.sim_ns) + " ms (quantum " + ms(m.quantum_ns) +
         " ms, seed " + std::to_string(m.seed) + ")\n";
  out += "mm:        node " + std::to_string(m.mm_node) +
         (m.standby_active ? " (standby, after failover)" : " (primary)") +
         ", " + std::to_string(m.strobes) + " strobes, heartbeat epoch " +
         std::to_string(m.hb_epoch) + "\n";
  const auto by_state = t.jobs.group_by<std::string, int>(
      [](const JobRow& j) { return core::to_string(j.state); }, 0,
      [](int& acc, const JobRow&) { ++acc; });
  out += "jobs:      " + std::to_string(t.jobs.count());
  for (const auto& [state, n] : by_state) {
    out += ", " + std::to_string(n) + " " + state;
  }
  out += "\n";
  out += "queue:     " + std::to_string(m.queued) + " waiting, " +
         std::to_string(m.completed) + " completed\n";
  const std::size_t down =
      t.nodes.count([](const NodeRow& n) { return n.failed || n.crashed; });
  out += "health:    " + std::to_string(down) + " node(s) down, " +
         std::to_string(t.nodes.count(
             [](const NodeRow& n) { return n.evicted; })) +
         " evicted\n";
  // Batched periodic paths (DESIGN §2.3). The counters register
  // lazily on first use, so the line only appears once a sweep,
  // absorbed heartbeat, or coalesced timer fire has happened.
  const auto counter = [&t](const char* name) -> std::int64_t {
    const auto row = t.metrics
                         .where([name](const MetricRow& r) {
                           return r.name == name;
                         })
                         .first();
    return row ? row->count : 0;
  };
  const std::int64_t hb_batched = counter("nm.heartbeat.batched");
  const std::int64_t hb_sweeps = counter("mm.heartbeat.sweeps");
  const std::int64_t coalesced = counter("sim.timer.coalesced");
  if (hb_batched > 0 || hb_sweeps > 0 || coalesced > 0) {
    out += "periodic:  " + std::to_string(hb_sweeps) + " mm sweep(s), " +
           std::to_string(hb_batched) + " heartbeat(s) absorbed, " +
           std::to_string(coalesced) + " timer event(s) coalesced\n";
  }
  return out;
}

std::string view_nodes(const TableSet& t) {
  // sinfo-style: collapse consecutive nodes with identical display
  // state into one range line.
  struct Key {
    std::string state;
    int pl_busy;
    int cells;
    std::int64_t heartbeat;
    std::int64_t strobe_row;
    bool operator==(const Key&) const = default;
  };
  Text table({"NODES", "COUNT", "STATE", "PLBUSY", "CELLS", "HB", "ROW"});
  int run_first = -1;
  int run_last = -1;
  Key run_key;
  const auto flush = [&] {
    if (run_first < 0) return;
    table.add({node_range(run_first, run_last - run_first + 1),
               std::to_string(run_last - run_first + 1), run_key.state,
               std::to_string(run_key.pl_busy), std::to_string(run_key.cells),
               std::to_string(run_key.heartbeat),
               std::to_string(run_key.strobe_row)});
  };
  t.nodes.for_each([&](const NodeRow& n) {
    const Key key{node_state(n), n.pl_busy, n.matrix_cells, n.heartbeat,
                  n.strobe_row};
    if (run_first >= 0 && key == run_key && n.node == run_last + 1) {
      run_last = n.node;
      return;
    }
    flush();
    run_first = run_last = n.node;
    run_key = key;
  });
  flush();
  return table.str();
}

std::string view_queue(const TableSet& t) {
  Text table({"JOBID", "NAME", "STATE", "NPES", "NODES", "ROW", "INC",
              "SUBMIT_MS", "START_MS", "FINISH_MS"});
  t.jobs.for_each([&](const JobRow& j) {
    const bool allocated = j.placed || occupies_resources(j.state) ||
                           j.terminal();
    table.add({std::to_string(j.id), j.name, core::to_string(j.state),
               std::to_string(j.npes),
               allocated && j.node_count > 0
                   ? node_range(j.first_node, j.node_count)
                   : "-",
               j.placed ? std::to_string(j.placement_row) : "-",
               std::to_string(j.incarnation), ms(j.submit_ns),
               j.started_ns > 0 ? ms(j.started_ns) : "-",
               j.finished_ns > 0 ? ms(j.finished_ns) : "-"});
  });
  return table.str();
}

std::string view_matrix(const TableSet& t) {
  // One line per timeslot: which jobs occupy it and how full it is.
  struct RowAgg {
    std::map<core::JobId, std::pair<int, int>> jobs;  // job -> (min, max)
    int cells = 0;
  };
  const auto rows = t.matrix_slots.group_by<int, RowAgg>(
      [](const MatrixSlotRow& s) { return s.row; }, RowAgg{},
      [](RowAgg& acc, const MatrixSlotRow& s) {
        auto [it, fresh] = acc.jobs.try_emplace(
            s.job, std::pair<int, int>{s.node, s.node});
        if (!fresh) {
          it->second.first = std::min(it->second.first, s.node);
          it->second.second = std::max(it->second.second, s.node);
        }
        ++acc.cells;
      });
  Text table({"ROW", "JOBS", "CELLS", "OCC%"});
  for (int row = 0; row < t.meta.matrix_rows; ++row) {
    const auto it = rows.find(row);
    std::string jobs = "-";
    int cells = 0;
    if (it != rows.end()) {
      jobs.clear();
      for (const auto& [job, range] : it->second.jobs) {
        if (!jobs.empty()) jobs += " ";
        jobs += std::to_string(job) + "@" +
                node_range(range.first, range.second - range.first + 1);
      }
      cells = it->second.cells;
    }
    char occ[16];
    std::snprintf(occ, sizeof(occ), "%.1f",
                  t.meta.nodes > 0
                      ? 100.0 * static_cast<double>(cells) / t.meta.nodes
                      : 0.0);
    table.add({std::to_string(row), jobs, std::to_string(cells), occ});
  }
  return table.str();
}

std::string view_failures(const TableSet& t) {
  std::string out;
  Text nodes({"NODE", "STATE", "EPOCH", "HB", "PLBUSY"});
  t.nodes
      .where([](const NodeRow& n) {
        return n.failed || n.crashed || n.evicted || n.mm_failed ||
               n.epoch > 0;
      })
      .for_each([&](const NodeRow& n) {
        nodes.add({std::to_string(n.node), node_state(n),
                   std::to_string(n.epoch), std::to_string(n.heartbeat),
                   std::to_string(n.pl_busy)});
      });
  out += nodes.empty() ? std::string("no node failures\n") : nodes.str();

  Text jobs({"JOBID", "NAME", "STATE", "RESTARTS", "LAST_REQUEUE_MS"});
  t.jobs
      .where([](const JobRow& j) {
        return j.restarts > 0 || j.state == core::JobState::Aborted;
      })
      .for_each([&](const JobRow& j) {
        jobs.add({std::to_string(j.id), j.name, core::to_string(j.state),
                  std::to_string(j.restarts),
                  j.last_requeue_ns > 0 ? ms(j.last_requeue_ns) : "-"});
      });
  if (!jobs.empty()) {
    out += "\n";
    out += jobs.str();
  }
  if (t.meta.standby_active) {
    out += "\nmm: standby on node " + std::to_string(t.meta.mm_node) +
           " is active (failover occurred)\n";
  }
  return out;
}

std::string view_replication(const TableSet& t) {
  // Fixed line when the table is empty so the view renders identically
  // on a live replication-disabled cluster and on a snapshot that
  // omits the table.
  if (t.replicas.count() == 0) return "replication disabled\n";
  Text table({"RANK", "NODE", "ROLE", "TERM", "COMMIT", "APPLIED", "LOG",
              "LEASE_MS"});
  t.replicas.for_each([&](const ReplicaRow& r) {
    table.add({std::to_string(r.rank), std::to_string(r.node), r.role,
               std::to_string(r.term), std::to_string(r.commit),
               std::to_string(r.applied), std::to_string(r.log_size),
               r.lease_ns > 0 ? ms(r.lease_ns) : "-"});
  });
  return table.str();
}

std::string view_spans(const TableSet& t, const ViewOptions& opt) {
  Relation<SpanRow> spans = t.spans;
  if (opt.job >= 0) {
    const std::uint64_t lo = telemetry::job_trace_id(opt.job, 0);
    const std::uint64_t hi =
        telemetry::job_trace_id(opt.job, 0) + telemetry::kIncarnationsPerJob;
    spans = spans.where(
        [lo, hi](const SpanRow& s) { return s.trace >= lo && s.trace < hi; });
  }
  Text table({"T_START_US", "DUR_US", "NODE", "KIND", "TRACE", "SPAN",
              "PARENT", "A", "B"});
  spans
      .order_by<std::pair<std::int64_t, std::uint64_t>>(
          [](const SpanRow& s) { return std::pair(s.t_start_ns, s.span); })
      .for_each([&](const SpanRow& s) {
        table.add(
            {us(s.t_start_ns),
             s.open() ? std::string("open") : us(s.t_end_ns - s.t_start_ns),
             s.node < 0 ? std::string("-") : std::to_string(s.node),
             std::string(telemetry::to_string(
                 static_cast<telemetry::SpanKind>(s.kind))),
             std::to_string(s.trace), std::to_string(s.span),
             std::to_string(s.parent), std::to_string(s.a),
             std::to_string(s.b)});
      });
  if (table.empty()) {
    return opt.job >= 0 ? "no spans for job " + std::to_string(opt.job) +
                              " (was tracing enabled?)\n"
                        : "no spans (was tracing enabled?)\n";
  }
  return table.str();
}

}  // namespace

const std::vector<std::string>& view_names() {
  static const std::vector<std::string> names = {
      "summary", "nodes", "queue", "matrix", "failures", "replication",
      "spans"};
  return names;
}

std::string render_view(std::string_view name, const TableSet& t,
                        const ViewOptions& opt, std::string* err) {
  if (name == "summary") return view_summary(t);
  if (name == "nodes") return view_nodes(t);
  if (name == "queue") return view_queue(t);
  if (name == "matrix") return view_matrix(t);
  if (name == "failures") return view_failures(t);
  if (name == "replication") return view_replication(t);
  if (name == "spans") return view_spans(t, opt);
  if (err != nullptr) {
    *err = "unknown view '" + std::string(name) + "'";
  }
  return {};
}

}  // namespace storm::query
