// Canned operator views over a TableSet — the squeue/sinfo-style
// surface `statectl` renders. Every view is a pure function of the
// TableSet (deterministic output), built from the relational
// combinators, and works identically on live tables and parsed
// snapshots.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "query/rows.hpp"

namespace storm::query {

struct ViewOptions {
  int job = -1;       // spans view: restrict to this job's incarnations
  int top = 12;       // top/metrics views: max series/instruments shown
  int windows = 20;   // top/watch views: trailing windows rendered
  std::string prefix; // top/watch/metrics views: metric-name filter
};

/// Names of the canned views, in display order.
const std::vector<std::string>& view_names();

/// Render view `name` ("summary", "nodes", "queue", "matrix",
/// "failures", "replication", "spans", "metrics", "top", "watch") of
/// `t`. Returns empty and sets *err for an unknown view.
std::string render_view(std::string_view name, const TableSet& t,
                        const ViewOptions& opt, std::string* err = nullptr);

}  // namespace storm::query
