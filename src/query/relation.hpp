// Typed relational combinators over the cluster's live state
// (DESIGN.md §3.5).
//
// A Relation<Row> is a re-runnable scan: invoking it walks the backing
// store *at call time* and pushes rows to a visitor, so a relation
// built over the node-state plane or the job table is zero-copy — no
// shadow copy of the cluster exists, and re-scanning after the
// simulation advanced sees the new state. Combinators (where / select /
// join / group_by / order_by) compose by wrapping scans; only the
// operators that fundamentally need materialization (order_by's sort,
// join's build side, group_by's accumulation) buy storage, and only
// for the duration of one scan.
//
// Determinism contract: a relation scans its backing store in a fixed
// order (node id, job id, registry name order, span id), group_by
// accumulates into an ordered map, and order_by uses a stable sort —
// so every pipeline built from these combinators yields rows in an
// order that depends only on the cluster state, never on hashing or
// allocation addresses. That is what lets the `storm.state.v1`
// snapshot (snapshot.hpp) promise byte-identical exports for
// same-seed runs.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace storm::query {

template <typename Row>
class Relation {
 public:
  /// Row visitor: return false to stop the scan early (count-limited
  /// views, existence tests).
  using Visit = std::function<bool(const Row&)>;
  /// A scan pushes rows, honouring the visitor's early exit.
  using Scan = std::function<void(const Visit&)>;

  Relation() : scan_([](const Visit&) {}) {}
  explicit Relation(Scan scan) : scan_(std::move(scan)) {}

  /// A relation over materialized rows (snapshot-backed tables, test
  /// fixtures). The vector is shared by value-copied relations.
  static Relation of(std::vector<Row> rows) {
    auto store = std::make_shared<const std::vector<Row>>(std::move(rows));
    return Relation([store](const Visit& v) {
      for (const Row& r : *store) {
        if (!v(r)) return;
      }
    });
  }

  void scan(const Visit& v) const { scan_(v); }

  void for_each(const std::function<void(const Row&)>& f) const {
    scan_([&](const Row& r) {
      f(r);
      return true;
    });
  }

  // --- composition --------------------------------------------------------

  /// Filter: rows satisfying `pred`.
  Relation where(std::function<bool(const Row&)> pred) const {
    return Relation([parent = scan_, pred = std::move(pred)](const Visit& v) {
      parent([&](const Row& r) { return pred(r) ? v(r) : true; });
    });
  }

  /// Projection to another row type.
  template <typename Out>
  Relation<Out> select(std::function<Out(const Row&)> proj) const {
    return Relation<Out>(
        [parent = scan_,
         proj = std::move(proj)](const typename Relation<Out>::Visit& v) {
          parent([&](const Row& r) { return v(proj(r)); });
        });
  }

  /// Stable sort by key at scan time (materializes one scan's rows).
  template <typename Key>
  Relation order_by(std::function<Key(const Row&)> key) const {
    return Relation([parent = scan_, key = std::move(key)](const Visit& v) {
      std::vector<Row> rows;
      parent([&](const Row& r) {
        rows.push_back(r);
        return true;
      });
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Row& a, const Row& b) {
                         return key(a) < key(b);
                       });
      for (const Row& r : rows) {
        if (!v(r)) return;
      }
    });
  }

  /// Hash join: pairs (left, right) for every key match. The right
  /// side is materialized into an ordered multimap at scan time, so
  /// output order is left-scan order, then right key-insertion order —
  /// deterministic for deterministic inputs.
  template <typename Other, typename Key>
  Relation<std::pair<Row, Other>> join(
      const Relation<Other>& right, std::function<Key(const Row&)> left_key,
      std::function<Key(const Other&)> right_key) const {
    using Out = std::pair<Row, Other>;
    return Relation<Out>([left = scan_, right, left_key = std::move(left_key),
                          right_key = std::move(right_key)](
                             const typename Relation<Out>::Visit& v) {
      std::multimap<Key, Other> build;
      right.for_each(
          [&](const Other& r) { build.emplace(right_key(r), r); });
      bool go = true;
      left([&](const Row& l) {
        auto [lo, hi] = build.equal_range(left_key(l));
        for (auto it = lo; it != hi && go; ++it) {
          go = v(Out(l, it->second));
        }
        return go;
      });
    });
  }

  // --- consumers ----------------------------------------------------------

  std::vector<Row> rows() const {
    std::vector<Row> out;
    for_each([&](const Row& r) { out.push_back(r); });
    return out;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for_each([&](const Row&) { ++n; });
    return n;
  }

  std::size_t count(std::function<bool(const Row&)> pred) const {
    return where(std::move(pred)).count();
  }

  /// First row in scan order, if any (stops the scan immediately).
  std::optional<Row> first() const {
    std::optional<Row> out;
    scan_([&](const Row& r) {
      out = r;
      return false;
    });
    return out;
  }

  bool any(const std::function<bool(const Row&)>& pred) const {
    bool hit = false;
    scan_([&](const Row& r) {
      hit = pred(r);
      return !hit;
    });
    return hit;
  }

  bool all(const std::function<bool(const Row&)>& pred) const {
    return !any([&](const Row& r) { return !pred(r); });
  }

  /// Left fold over the scan.
  template <typename Acc>
  Acc fold(Acc acc, const std::function<void(Acc&, const Row&)>& f) const {
    for_each([&](const Row& r) { f(acc, r); });
    return acc;
  }

  /// Grouped aggregation into an ordered map (deterministic iteration).
  template <typename Key, typename Acc>
  std::map<Key, Acc> group_by(
      const std::function<Key(const Row&)>& key, const Acc& init,
      const std::function<void(Acc&, const Row&)>& f) const {
    std::map<Key, Acc> groups;
    for_each([&](const Row& r) {
      auto [it, fresh] = groups.try_emplace(key(r), init);
      (void)fresh;
      f(it->second, r);
    });
    return groups;
  }

 private:
  Scan scan_;
};

}  // namespace storm::query
