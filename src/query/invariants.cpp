#include "query/invariants.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "fabric/message.hpp"
#include "query/tables.hpp"
#include "sim/simulator.hpp"
#include "storm/cluster.hpp"

namespace storm::query {
namespace {

std::string job_label(const JobRow& j) {
  return "job " + std::to_string(j.id) + " (" + j.name + ")";
}

bool suspect(const NodeRow& n) {
  return n.failed || n.crashed || n.evicted || n.mm_failed;
}

bool ranges_overlap(int first_a, int count_a, int first_b, int count_b) {
  return first_a < first_b + count_b && first_b < first_a + count_a;
}

// "No two live incarnations share a matrix slot": every occupied cell
// is owned by a job that exists, is in a resource-owning state, and
// whose recorded placement covers exactly that cell.
void slot_owner_live(const TableSet& t, std::vector<Violation>& out) {
  const auto joined = t.matrix_slots.join<JobRow, int>(
      t.jobs, [](const MatrixSlotRow& s) { return s.job; },
      [](const JobRow& j) { return j.id; });
  std::size_t matched = 0;
  joined.for_each([&](const std::pair<MatrixSlotRow, JobRow>& p) {
    const auto& [slot, job] = p;
    ++matched;
    if (!occupies_resources(job.state)) {
      out.push_back({"slot-owner-live",
                     "cell (" + std::to_string(slot.row) + ", " +
                         std::to_string(slot.node) + ") owned by " +
                         job_label(job) + " in state " +
                         core::to_string(job.state)});
    } else if (!job.placed || slot.row != job.placement_row ||
               slot.node < job.placement_first ||
               slot.node >= job.placement_first + job.placement_count) {
      out.push_back({"slot-owner-live",
                     "cell (" + std::to_string(slot.row) + ", " +
                         std::to_string(slot.node) +
                         ") outside the placement of " + job_label(job)});
    }
  });
  if (matched != t.matrix_slots.count()) {
    t.matrix_slots
        .where([&](const MatrixSlotRow& s) {
          return !t.jobs.any([&](const JobRow& j) { return j.id == s.job; });
        })
        .for_each([&](const MatrixSlotRow& s) {
          out.push_back({"slot-owner-live",
                         "cell (" + std::to_string(s.row) + ", " +
                             std::to_string(s.node) + ") owned by unknown job " +
                             std::to_string(s.job)});
        });
  }
}

// The job-recorded allocation and the matrix placement never diverge,
// and (gang scheduling) a resource-owning job always holds a placement.
void placement_allocation_agree(const TableSet& t,
                                std::vector<Violation>& out) {
  t.jobs.where([](const JobRow& j) { return j.placed; })
      .for_each([&](const JobRow& j) {
        if (j.row != j.placement_row || j.first_node != j.placement_first ||
            j.node_count != j.placement_count) {
          out.push_back(
              {"placement-allocation-agree",
               job_label(j) + " records allocation (row " +
                   std::to_string(j.row) + ", nodes " +
                   std::to_string(j.first_node) + "+" +
                   std::to_string(j.node_count) + ") but the matrix holds (row " +
                   std::to_string(j.placement_row) + ", nodes " +
                   std::to_string(j.placement_first) + "+" +
                   std::to_string(j.placement_count) + ")"});
        }
      });
  if (t.meta.scheduler == "gang") {
    t.jobs
        .where([](const JobRow& j) {
          return occupies_resources(j.state) && !j.placed;
        })
        .for_each([&](const JobRow& j) {
          out.push_back({"placement-allocation-agree",
                         job_label(j) + " is " + core::to_string(j.state) +
                             " but holds no matrix placement"});
        });
  }
}

// Live allocations in the same timeslot are disjoint. Skipped for the
// locally-scheduled foils (LocalOs / implicit coscheduling), whose
// whole point is uncoordinated node sharing.
void live_allocations_disjoint(const TableSet& t,
                               std::vector<Violation>& out) {
  if (t.meta.scheduler == "local-os" ||
      t.meta.scheduler == "implicit-cosched") {
    return;
  }
  const std::vector<JobRow> live =
      t.jobs
          .where([](const JobRow& j) {
            return occupies_resources(j.state) && j.node_count > 0;
          })
          .rows();
  for (std::size_t a = 0; a < live.size(); ++a) {
    for (std::size_t b = a + 1; b < live.size(); ++b) {
      if (live[a].row != live[b].row) continue;
      if (ranges_overlap(live[a].first_node, live[a].node_count,
                         live[b].first_node, live[b].node_count)) {
        out.push_back({"live-allocations-disjoint",
                       job_label(live[a]) + " and " + job_label(live[b]) +
                           " overlap in row " + std::to_string(live[a].row)});
      }
    }
  }
}

// Plane-failed (NIC ground truth) implies idle Program Launchers: a
// dead node's PEs died with it.
void failed_node_pl_idle(const TableSet& t, std::vector<Violation>& out) {
  t.nodes
      .where([](const NodeRow& n) { return n.failed && n.pl_busy > 0; })
      .for_each([&](const NodeRow& n) {
        out.push_back({"failed-node-pl-idle",
                       "node " + std::to_string(n.node) + " is failed but " +
                           std::to_string(n.pl_busy) +
                           " launcher slot(s) are busy"});
      });
}

// Matrix-evicted (declared knowledge) implies the node owns no cells
// and no live placement spans it. The window between a crash and its
// heartbeat declaration is legitimate and not covered here — that is
// exactly why this keys on `evicted`, not on the plane bit.
void evicted_node_unused(const TableSet& t, std::vector<Violation>& out) {
  const std::vector<NodeRow> evicted =
      t.nodes.where([](const NodeRow& n) { return n.evicted; }).rows();
  if (evicted.empty()) return;
  for (const NodeRow& n : evicted) {
    if (n.matrix_cells > 0) {
      out.push_back({"evicted-node-unused",
                     "node " + std::to_string(n.node) + " is evicted but owns " +
                         std::to_string(n.matrix_cells) + " matrix cell(s)"});
    }
  }
  t.jobs
      .where([](const JobRow& j) {
        return occupies_resources(j.state) && j.placed;
      })
      .for_each([&](const JobRow& j) {
        for (const NodeRow& n : evicted) {
          if (n.node >= j.placement_first &&
              n.node < j.placement_first + j.placement_count) {
            out.push_back({"evicted-node-unused",
                           job_label(j) + "'s placement spans evicted node " +
                               std::to_string(n.node)});
          }
        }
      });
}

// Every clean node's heartbeat word tracks the MM's epoch within the
// configured miss slack (+1 for the round whose multicast is still in
// flight). Nodes with word 0 have not joined the heartbeat protocol
// yet (startup, or a recovery wipe before the next round) and are
// skipped, as are suspects.
void heartbeat_fresh(const TableSet& t, std::vector<Violation>& out) {
  if (!t.meta.heartbeat_enabled || t.meta.hb_epoch <= 0) return;
  const std::int64_t slack = t.meta.heartbeat_miss_periods + 1;
  const std::int64_t epoch = t.meta.hb_epoch;
  t.nodes
      .where([&](const NodeRow& n) {
        return !suspect(n) && n.heartbeat > 0 &&
               epoch - n.heartbeat > slack;
      })
      .for_each([&](const NodeRow& n) {
        out.push_back(
            {"heartbeat-fresh",
             "node " + std::to_string(n.node) + " heartbeat word " +
                 std::to_string(n.heartbeat) + " lags epoch " +
                 std::to_string(epoch) + " beyond the slack of " +
                 std::to_string(slack) + " without being declared dead"});
      });
}

// The MM's queue length equals the number of Queued jobs, and (until a
// failover rebuilds MM-local counters) its completed count equals the
// number of terminal jobs.
void queue_accounting(const TableSet& t, std::vector<Violation>& out) {
  const std::int64_t queued = static_cast<std::int64_t>(
      t.jobs.count([](const JobRow& j) {
        return j.state == core::JobState::Queued;
      }));
  if (queued != t.meta.queued) {
    out.push_back({"queue-accounting",
                   "MM queue holds " + std::to_string(t.meta.queued) +
                       " job(s) but " + std::to_string(queued) +
                       " job(s) are Queued"});
  }
  if (!t.meta.standby_active) {
    const std::int64_t terminal = static_cast<std::int64_t>(
        t.jobs.count([](const JobRow& j) { return j.terminal(); }));
    if (terminal != t.meta.completed) {
      out.push_back({"queue-accounting",
                     "MM observed " + std::to_string(t.meta.completed) +
                         " terminal job(s) but the job table holds " +
                         std::to_string(terminal)});
    }
  }
}

// Timestamps of a completed job are monotone through the lifecycle and
// the restart budget is honoured.
void job_lifecycle(const TableSet& t, std::vector<Violation>& out) {
  const int restart_cap = t.meta.max_job_restarts + 1;  // final kill may
                                                        // bump once more
  t.jobs.for_each([&](const JobRow& j) {
    if (j.restarts > restart_cap) {
      out.push_back({"job-lifecycle",
                     job_label(j) + " has " + std::to_string(j.restarts) +
                         " restarts, over the budget of " +
                         std::to_string(t.meta.max_job_restarts)});
    }
    if (j.state != core::JobState::Completed) return;
    const std::pair<const char*, std::int64_t> chain[] = {
        {"submit", j.submit_ns},
        {"transfer_start", j.transfer_start_ns},
        {"transfer_done", j.transfer_done_ns},
        {"launch_issued", j.launch_issued_ns},
        {"started", j.started_ns},
        {"finished", j.finished_ns},
    };
    std::int64_t prev = 0;
    const char* prev_name = "zero";
    for (const auto& [name, ns] : chain) {
      if (ns == 0) continue;  // stage not reached / not recorded
      if (ns < prev) {
        out.push_back({"job-lifecycle",
                       job_label(j) + ": " + name + " (" +
                           std::to_string(ns) + " ns) precedes " + prev_name +
                           " (" + std::to_string(prev) + " ns)"});
      }
      prev = ns;
      prev_name = name;
    }
    if (j.first_proc_started_ns > 0 && j.last_proc_exited_ns > 0 &&
        j.last_proc_exited_ns < j.first_proc_started_ns) {
      out.push_back({"job-lifecycle",
                     job_label(j) + ": last PE exit precedes first PE start"});
    }
  });
}

// Counters are non-negative; histogram count/sum/min/max are mutually
// consistent.
void metrics_sane(const TableSet& t, std::vector<Violation>& out) {
  t.metrics.for_each([&](const MetricRow& m) {
    if (m.kind == "counter") {
      if (m.count < 0) {
        out.push_back({"metrics-sane",
                       "counter " + m.name + " is negative (" +
                           std::to_string(m.count) + ")"});
      }
      return;
    }
    if (m.kind != "histogram") return;
    if (m.count < 0) {
      out.push_back({"metrics-sane", "histogram " + m.name +
                                         " has negative count"});
      return;
    }
    if (m.count == 0) return;
    if (m.min > m.max || m.sum < m.count * m.min ||
        m.sum > m.count * m.max) {
      out.push_back({"metrics-sane",
                     "histogram " + m.name + " is inconsistent (count " +
                         std::to_string(m.count) + ", sum " +
                         std::to_string(m.sum) + ", min " +
                         std::to_string(m.min) + ", max " +
                         std::to_string(m.max) + ")"});
    }
  });
}

// The time-series flight recorder (§3.7) must emit windows that are
// physically possible: positive window spans, non-negative counter
// deltas and sketch counts, monotone quantiles, and a time-major scan
// order (the order visit_points/the snapshot writer guarantee).
void timeseries_sane(const TableSet& t, std::vector<Violation>& out) {
  std::int64_t prev_window = std::numeric_limits<std::int64_t>::min();
  t.timeseries.for_each([&](const SeriesPointRow& r) {
    if (r.t_end_ns <= r.t_start_ns) {
      out.push_back({"timeseries-sane",
                     "series " + r.name + " window " +
                         std::to_string(r.window) + " has non-positive span"});
    }
    if (r.window < prev_window) {
      out.push_back({"timeseries-sane",
                     "series " + r.name + " window " +
                         std::to_string(r.window) +
                         " breaks time-major scan order"});
    }
    prev_window = r.window;
    if (r.kind == "counter" && r.delta < 0) {
      out.push_back({"timeseries-sane",
                     "counter " + r.name + " window " +
                         std::to_string(r.window) + " has negative delta (" +
                         std::to_string(r.delta) + ")"});
    }
    if (r.kind == "histogram") {
      if (r.count <= 0) {
        out.push_back({"timeseries-sane",
                       "histogram " + r.name + " window " +
                           std::to_string(r.window) +
                           " recorded without samples"});
      } else if (r.p50 > r.p90 || r.p90 > r.p99) {
        out.push_back({"timeseries-sane",
                       "histogram " + r.name + " window " +
                           std::to_string(r.window) +
                           " has non-monotone quantiles"});
      }
    }
  });
  t.breaches.for_each([&](const BreachRow& b) {
    if (b.rule.empty() || b.metric.empty()) {
      out.push_back({"timeseries-sane",
                     "breach at window " + std::to_string(b.window) +
                         " lacks a rule or metric"});
    }
  });
}

// Per MsgClass, the fabric outcome counters partition the observed
// wire ops exactly: wire_ops == delivered + multicasts + xfers + caw +
// dropped (see MetricsAggregator).
void msgclass_reconcile(const TableSet& t, std::vector<Violation>& out) {
  const std::map<std::string, std::int64_t> counters =
      t.metrics
          .where([](const MetricRow& m) { return m.kind == "counter"; })
          .group_by<std::string, std::int64_t>(
              [](const MetricRow& m) { return m.name; }, 0,
              [](std::int64_t& acc, const MetricRow& m) { acc = m.count; });
  const auto get = [&](const std::string& name) {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  for (int c = 0; c < fabric::kMsgClassCount; ++c) {
    const std::string base =
        "fabric." +
        std::string(fabric::to_string(static_cast<fabric::MsgClass>(c))) +
        ".";
    const auto it = counters.find(base + "wire_ops");
    if (it == counters.end()) continue;  // class saw no traffic
    const std::int64_t wire = it->second;
    const std::int64_t outcomes = get(base + "delivered") +
                                  get(base + "multicasts") +
                                  get(base + "xfers") + get(base + "caw") +
                                  get(base + "dropped");
    if (wire != outcomes) {
      out.push_back({"msgclass-reconcile",
                     base + "wire_ops is " + std::to_string(wire) +
                         " but delivered+multicasts+xfers+caw+dropped is " +
                         std::to_string(outcomes)});
    }
  }
}

// At most one replica calls itself leader in any term: the lease rules
// (a grant is withheld until the granter's old lease has provably
// expired, and repl_election_base > repl_lease) make two same-term
// leaders impossible by construction; this checks the construction.
// Empty `replicas` table (replication disabled) trivially holds.
void at_most_one_leader_per_term(const TableSet& t,
                                 std::vector<Violation>& out) {
  const std::map<std::int64_t, std::int64_t> leaders =
      t.replicas.where([](const ReplicaRow& r) { return r.role == "leader"; })
          .group_by<std::int64_t, std::int64_t>(
              [](const ReplicaRow& r) { return r.term; }, 0,
              [](std::int64_t& acc, const ReplicaRow&) { ++acc; });
  for (const auto& [term, count] : leaders) {
    if (count > 1) {
      out.push_back({"at-most-one-leader-per-term",
                     std::to_string(count) + " replicas claim leadership of term " +
                         std::to_string(term)});
    }
  }
}

// Every replica's state machine agrees on the committed prefix: at the
// group-wide commit floor, all rolling digests are identical. A
// divergence means two replicas applied different entries at the same
// index — the one thing a replicated log must never do.
void committed_prefix_agreement(const TableSet& t,
                                std::vector<Violation>& out) {
  const std::vector<ReplicaRow> reps = t.replicas.rows();
  if (reps.size() < 2) return;
  const ReplicaRow& ref = reps.front();
  for (std::size_t i = 1; i < reps.size(); ++i) {
    if (reps[i].floor_index != ref.floor_index) {
      out.push_back({"committed-prefix-agreement",
                     "replica " + std::to_string(reps[i].rank) +
                         " reports commit floor " +
                         std::to_string(reps[i].floor_index) +
                         " but replica " + std::to_string(ref.rank) +
                         " reports " + std::to_string(ref.floor_index)});
      continue;
    }
    if (reps[i].floor_digest != ref.floor_digest) {
      out.push_back({"committed-prefix-agreement",
                     "replicas " + std::to_string(ref.rank) + " and " +
                         std::to_string(reps[i].rank) +
                         " disagree on the committed prefix at index " +
                         std::to_string(ref.floor_index)});
    }
  }
}

}  // namespace

const std::vector<Invariant>& invariant_registry() {
  static const std::vector<Invariant> registry = {
      {"slot-owner-live",
       "every occupied matrix cell belongs to a live, placed incarnation",
       slot_owner_live},
      {"placement-allocation-agree",
       "job-recorded allocations match matrix placements",
       placement_allocation_agree},
      {"live-allocations-disjoint",
       "no two live incarnations share a matrix slot",
       live_allocations_disjoint},
      {"failed-node-pl-idle",
       "a plane-failed node has zero PL occupancy", failed_node_pl_idle},
      {"evicted-node-unused",
       "an evicted node owns no matrix cells and no live placement",
       evicted_node_unused},
      {"heartbeat-fresh",
       "clean nodes' heartbeat words track the MM epoch within the slack",
       heartbeat_fresh},
      {"queue-accounting",
       "MM queue length and completion count match the job table",
       queue_accounting},
      {"job-lifecycle",
       "job timestamps are monotone and restart budgets are honoured",
       job_lifecycle},
      {"metrics-sane", "counters and histograms are internally consistent",
       metrics_sane},
      {"msgclass-reconcile",
       "per-class fabric outcome counters partition the wire ops",
       msgclass_reconcile},
      {"at-most-one-leader-per-term",
       "no two replicas claim leadership of the same term",
       at_most_one_leader_per_term},
      {"committed-prefix-agreement",
       "all replicas' state machines agree at the group commit floor",
       committed_prefix_agreement},
      {"timeseries-sane",
       "recorded windows have positive spans, non-negative deltas, and "
       "monotone quantiles",
       timeseries_sane},
  };
  return registry;
}

InvariantReport check_invariants(const TableSet& t) {
  InvariantReport report;
  for (const Invariant& inv : invariant_registry()) {
    inv.check(t, report.violations);
    ++report.invariants_run;
  }
  return report;
}

InvariantReport check_invariants(core::Cluster& cluster) {
  return check_invariants(live_tables(cluster));
}

std::string InvariantReport::summary() const {
  if (ok()) {
    return "ok (" + std::to_string(invariants_run) + " invariants)";
  }
  std::string out;
  for (const Violation& v : violations) {
    out += v.invariant + ": " + v.detail + "\n";
  }
  return out;
}

// --- InvariantProbe --------------------------------------------------------

struct InvariantProbe::State {
  core::Cluster* cluster;
  sim::SimTime period;
  bool armed = false;
  std::int64_t checks = 0;
  std::vector<Violation> violations;
};

InvariantProbe::InvariantProbe(core::Cluster& cluster, sim::SimTime period)
    : state_(std::make_shared<State>()) {
  state_->cluster = &cluster;
  state_->period = period;
}

InvariantProbe::~InvariantProbe() { disarm(); }

void InvariantProbe::schedule(const std::shared_ptr<State>& st) {
  st->cluster->sim().schedule_after(st->period, [st] {
    if (!st->armed) return;
    const InvariantReport report = check_invariants(*st->cluster);
    ++st->checks;
    for (const Violation& v : report.violations) {
      if (st->violations.size() >= kMaxViolations) break;
      st->violations.push_back(v);
    }
    schedule(st);
  });
}

void InvariantProbe::arm() {
  if (state_->armed) return;
  state_->armed = true;
  schedule(state_);
}

void InvariantProbe::disarm() { state_->armed = false; }

std::int64_t InvariantProbe::checks() const { return state_->checks; }

const std::vector<Violation>& InvariantProbe::violations() const {
  return state_->violations;
}

}  // namespace storm::query
