#include "model/literature.hpp"

#include <cmath>

namespace storm::model {

namespace {
double lg(double n) { return std::log2(n); }

double rsh_fit(double n) { return 0.934 * n + 1.266; }
double rms_fit(double n) { return 0.077 * n + 1.092; }
double glunix_fit(double n) { return 0.012 * n + 0.228; }
double cplant_fit(double n) { return 1.379 * lg(n) + 6.177; }
double bproc_fit(double n) { return 0.413 * lg(n) - 0.084; }
}  // namespace

const std::vector<LauncherFit>& launcher_fits() {
  static const std::vector<LauncherFit> fits = {
      {"rsh", rsh_fit, "90 s, minimal job, 95 nodes [17]", false},
      {"RMS", rms_fit, "5.9 s, 12 MB job, 64 nodes [14]", false},
      {"GLUnix", glunix_fit, "1.3 s, minimal job, 95 nodes [17]", false},
      {"Cplant", cplant_fit, "20 s, 12 MB job, 1010 nodes [7]", true},
      {"BProc", bproc_fit, "2.7 s, 12 MB job, 100 nodes [19]", true},
  };
  return fits;
}

double extrapolated_4096(const LauncherFit& fit) {
  return fit.seconds_at(4096.0);
}

}  // namespace storm::model
