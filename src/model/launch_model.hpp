// The paper's analytic launch-time model (Section 3.3.2, Figure 10).
//
// Equation 3:  T_launch(nodes) = 12 MB / BW_transfer(nodes) + T_exec
// Equation 4:  BW_transfer^ES40(nodes)  = min(131 MB/s, BW_bcast(nodes))
// Equation 5:  BW_transfer^ideal(nodes) = BW_bcast(nodes)
//
// where BW_bcast(nodes) is the hardware-broadcast model of Table 4
// evaluated at the floor-plan cable length of Equation 2. The 131 MB/s
// cap is the measured host-serialisation bound of the ES40's I/O path.
#pragma once

#include "net/qsnet.hpp"

namespace storm::model {

struct LaunchModelParams {
  sim::Bytes binary = 12 * 1024 * 1024;
  sim::Bandwidth es40_io_cap = sim::Bandwidth::mb_per_s(131.0);
  sim::SimTime exec_time = sim::SimTime::millis(15.0);
  net::QsNetParams net{};
};

/// Equation 4 / 5 transfer bandwidths.
sim::Bandwidth es40_transfer_bandwidth(int nodes, const LaunchModelParams& p);
sim::Bandwidth ideal_transfer_bandwidth(int nodes, const LaunchModelParams& p);

/// Equation 3, for both machine models.
sim::SimTime es40_launch_time(int nodes, const LaunchModelParams& p);
sim::SimTime ideal_launch_time(int nodes, const LaunchModelParams& p);

}  // namespace storm::model
