#include "model/launch_model.hpp"

namespace storm::model {

using net::FatTree;
using net::QsNet;
using sim::Bandwidth;
using sim::SimTime;

namespace {
Bandwidth bcast_bw(int nodes, const LaunchModelParams& p) {
  return QsNet::model_broadcast_bandwidth(
      nodes, FatTree::floorplan_diameter_m(nodes), p.net);
}
}  // namespace

Bandwidth es40_transfer_bandwidth(int nodes, const LaunchModelParams& p) {
  return sim::min(p.es40_io_cap, bcast_bw(nodes, p));
}

Bandwidth ideal_transfer_bandwidth(int nodes, const LaunchModelParams& p) {
  return bcast_bw(nodes, p);
}

SimTime es40_launch_time(int nodes, const LaunchModelParams& p) {
  return es40_transfer_bandwidth(nodes, p).time_for(p.binary) + p.exec_time;
}

SimTime ideal_launch_time(int nodes, const LaunchModelParams& p) {
  return ideal_transfer_bandwidth(nodes, p).time_for(p.binary) + p.exec_time;
}

}  // namespace storm::model
