// Published job-launch measurements and the paper's extrapolation fits
// (Tables 6-7, Figures 11-12).
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace storm::model {

struct LauncherFit {
  std::string name;
  /// t(n) in seconds; n = nodes.
  double (*seconds_at)(double n);
  /// The measured data point the paper cites.
  std::string measured_note;
  bool logarithmic;  // log vs linear scaling class
};

/// The six systems of Table 6, with Table 7's fits:
///   rsh     t = 0.934 n + 1.266
///   RMS     t = 0.077 n + 1.092
///   GLUnix  t = 0.012 n + 0.228
///   Cplant  t = 1.379 lg n + 6.177
///   BProc   t = 0.413 lg n - 0.084
///   STORM   (the Section 3.3 model; exposed via model/launch_model)
const std::vector<LauncherFit>& launcher_fits();

/// Table 7: the fit evaluated at 4096 nodes, in seconds.
double extrapolated_4096(const LauncherFit& fit);

}  // namespace storm::model
