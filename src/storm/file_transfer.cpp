#include "storm/file_transfer.hpp"

#include <algorithm>

#include "storm/cluster.hpp"
#include "telemetry/metrics.hpp"

namespace storm::core {

using fabric::Component;
using fabric::ControlMessage;
using mech::kNoEvent;
using mech::kNoWrite;
using net::Compare;
using net::NodeRange;
using sim::Bytes;
using sim::SimTime;
using sim::Task;

SimTime FileTransfer::host_assist_cost(const Cluster& cluster, Bytes chunk,
                                       int slots) {
  const auto& mp = cluster.config().machine;
  const double footprint_mb =
      static_cast<double>(chunk) * slots / (1024.0 * 1024.0);
  const double excess = std::max(0.0, footprint_mb - mp.nic_tlb_coverage_mb);
  const double factor = 1.0 + mp.tlb_penalty_per_mb * excess;
  return mp.host_bcast_assist.time_for(chunk) * factor;
}

Task<TransferStats> FileTransfer::send(Cluster& cluster, Job& job) {
  auto& sim = cluster.sim();
  auto& fab = cluster.fabric();
  const auto& sp = cluster.config().storm;
  const JobId id = job.id();
  const Bytes total = job.spec().binary_size;
  const Bytes chunk = sp.chunk_size;
  const int nchunks = static_cast<int>((total + chunk - 1) / chunk);
  const NodeRange alloc = job.nodes();
  const int mm = cluster.mm_node();

  // Arm the receive loops (NMs allocate the remote-queue slots).
  co_await cluster.multicast_command(
      Component::FileTransfer, alloc,
      ControlMessage::prepare_transfer(id, nchunks, chunk));

  // The MM's own node, when part of the allocation, receives the image
  // through the same NIC loopback path at the same pipeline rate
  // (footnote 3's "does not include the source node" is about the
  // aggregate-bandwidth accounting, not the protocol structure), so
  // the whole allocation is one destination set.
  const NodeRange remote = alloc;

  const SimTime t0 = sim.now();
  auto& fs = cluster.machine(mm).fs(sp.source_fs);
  auto& helper = cluster.mm_helper();

  // Per-stage pipeline timings: the calibration table in the header
  // becomes measurable instead of a comment.
  telemetry::MetricsRegistry& m = cluster.metrics();
  telemetry::Counter& mt_transfers = m.counter("ft.transfers");
  telemetry::Counter& mt_chunks = m.counter("ft.chunks");
  telemetry::Counter& mt_flow_polls = m.counter("ft.flow_polls");
  telemetry::Histogram& mt_read = m.histogram("ft.read_ns");
  telemetry::Histogram& mt_assist = m.histogram("ft.assist_ns");
  telemetry::Histogram& mt_bcast = m.histogram("ft.bcast_ns");
  telemetry::Histogram& mt_stall = m.histogram("ft.stall_ns");
  mt_transfers.add(1);

  sim::Semaphore slot_sem(sim, static_cast<std::size_t>(sp.slots));
  sim::Channel<int> ready(sim);

  // Producer: read chunks from the source filesystem into the
  // multi-buffer, at most `slots` ahead of the sender.
  auto producer = [&]() -> Task<> {
    for (int i = 0; i < nchunks; ++i) {
      co_await slot_sem.acquire();
      const Bytes sz = std::min<Bytes>(chunk, total - static_cast<Bytes>(i) * chunk);
      const SimTime t_read = sim.now();
      co_await fs.read(sz, sp.buffers, &helper);
      mt_read.record(sim.now() - t_read);
      ready.put(i);
    }
  };
  sim.spawn(producer());

  // Sender: flow control, host assist, hardware multicast.
  for (int n = 0; n < nchunks; ++n) {
    const int i = co_await ready.get();
    const Bytes sz = std::min<Bytes>(chunk, total - static_cast<Bytes>(i) * chunk);

    // Global flow control: slot (i mod slots) may be reused only after
    // every node has written chunk i - slots (COMPARE-AND-WRITE).
    if (i >= sp.slots) {
      const SimTime t_stall = sim.now();
      while (!co_await fab.compare_and_write(
          Component::FileTransfer,
          ControlMessage::flow_credit(id, i - sp.slots + 1), mm, remote,
          addr_written(id), Compare::GE, i - sp.slots + 1, kNoWrite, 0)) {
        mt_flow_polls.add(1);
        co_await sim.delay(sp.flow_control_poll);
      }
      mt_stall.record(sim.now() - t_stall);
    }

    // Host lightweight process: NIC TLB servicing + file access. This
    // serialises against the producer's read assist on the same
    // process — the paper's 131 MB/s bottleneck.
    const SimTime t_assist = sim.now();
    co_await helper.compute(host_assist_cost(cluster, sz, sp.slots));
    mt_assist.record(sim.now() - t_assist);

    const SimTime t_bcast = sim.now();
    fab.xfer_and_signal(Component::FileTransfer,
                        ControlMessage::launch_chunk(id, i, sz), mm, remote,
                        sz, sp.buffers, ev_chunk(id), ev_chunk_sent(id));
    co_await fab.wait_event(mm, ev_chunk_sent(id));
    mt_bcast.record(sim.now() - t_bcast);
    mt_chunks.add(1);
    slot_sem.release();
  }

  // Completion: all nodes have written the full image.
  {
    const SimTime t_stall = sim.now();
    while (!co_await fab.compare_and_write(
        Component::FileTransfer, ControlMessage::flow_credit(id, nchunks), mm,
        remote, addr_written(id), Compare::GE, nchunks, kNoWrite, 0)) {
      mt_flow_polls.add(1);
      co_await sim.delay(sp.flow_control_poll);
    }
    mt_stall.record(sim.now() - t_stall);
  }

  TransferStats stats;
  stats.chunks = nchunks;
  stats.bytes = total;
  stats.duration = sim.now() - t0;
  co_return stats;
}

}  // namespace storm::core
