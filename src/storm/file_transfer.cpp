#include "storm/file_transfer.hpp"

#include <algorithm>
#include <vector>

#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace storm::core {

using fabric::Component;
using fabric::ControlMessage;
using mech::kNoEvent;
using mech::kNoWrite;
using net::Compare;
using net::NodeRange;
using sim::Bytes;
using sim::SimTime;
using sim::Task;
using telemetry::SpanKind;
using telemetry::TraceSpan;

SimTime FileTransfer::host_assist_cost(const Cluster& cluster, Bytes chunk,
                                       int slots) {
  const auto& mp = cluster.config().machine;
  const double footprint_mb =
      static_cast<double>(chunk) * slots / (1024.0 * 1024.0);
  const double excess = std::max(0.0, footprint_mb - mp.nic_tlb_coverage_mb);
  const double factor = 1.0 + mp.tlb_penalty_per_mb * excess;
  return mp.host_bcast_assist.time_for(chunk) * factor;
}

namespace {

/// The contiguous subranges of `alloc` that exclude every node the MM
/// has declared dead (`failed` sorted ascending). The hardware
/// multicast and the flow-control conditional both take contiguous
/// sets, so a shrunk destination set is a list of ranges.
std::vector<NodeRange> live_subranges(NodeRange alloc,
                                      const std::vector<int>& failed) {
  std::vector<NodeRange> out;
  int start = alloc.first;
  for (int n = alloc.first; n <= alloc.last(); ++n) {
    if (std::binary_search(failed.begin(), failed.end(), n)) {
      if (n > start) out.push_back(NodeRange{start, n - start});
      start = n + 1;
    }
  }
  if (start <= alloc.last()) {
    out.push_back(NodeRange{start, alloc.last() - start + 1});
  }
  return out;
}

}  // namespace

Task<TransferStats> FileTransfer::send(Cluster& cluster, MachineManager& owner,
                                       Job& job) {
  auto& sim = cluster.sim();
  auto& fab = cluster.fabric();
  const auto& sp = cluster.config().storm;
  const JobId id = job.id();
  const int inc = job.incarnation();
  const Bytes total = job.spec().binary_size;
  const Bytes chunk = sp.chunk_size;
  const int nchunks = static_cast<int>((total + chunk - 1) / chunk);
  const NodeRange alloc = job.nodes();
  const int src = owner.node();

  // The pipeline dies with its incarnation or its MM.
  auto dead = [&] { return owner.crashed() || job.incarnation() != inc; };

  telemetry::CausalTracer* tr = cluster.tracer();
  TraceSpan xfer_span;
  if (tr != nullptr) {
    xfer_span = tr->begin(SpanKind::FtTransfer, src,
                          tr->job_root(id, inc, src), id, nchunks);
  }

  // Arm the receive loops (NMs allocate the remote-queue slots).
  co_await cluster.multicast_command(
      Component::FileTransfer, src, alloc,
      ControlMessage::prepare_transfer(id, nchunks, chunk, inc),
      xfer_span.context());

  // The MM's own node, when part of the allocation, receives the image
  // through the same NIC loopback path at the same pipeline rate
  // (footnote 3's "does not include the source node" is about the
  // aggregate-bandwidth accounting, not the protocol structure), so
  // the whole allocation is one destination set — minus any nodes
  // already declared dead.
  std::vector<NodeRange> live = live_subranges(alloc, owner.failed_nodes());

  const SimTime t0 = sim.now();
  auto& fs = cluster.machine(src).fs(sp.source_fs);
  auto& helper = owner.helper();

  // Per-stage pipeline timings: the calibration table in the header
  // becomes measurable instead of a comment.
  telemetry::MetricsRegistry& m = cluster.metrics();
  telemetry::Counter& mt_transfers = m.counter("ft.transfers");
  telemetry::Counter& mt_chunks = m.counter("ft.chunks");
  telemetry::Counter& mt_flow_polls = m.counter("ft.flow_polls");
  telemetry::Counter& mt_retries = m.counter("ft.retries");
  telemetry::Counter& mt_shrinks = m.counter("ft.shrinks");
  telemetry::Counter& mt_aborts = m.counter("ft.aborts");
  telemetry::Histogram& mt_read = m.histogram("ft.read_ns");
  telemetry::Histogram& mt_assist = m.histogram("ft.assist_ns");
  telemetry::Histogram& mt_bcast = m.histogram("ft.bcast_ns");
  telemetry::Histogram& mt_stall = m.histogram("ft.stall_ns");
  mt_transfers.add(1);

  sim::Semaphore slot_sem(sim, static_cast<std::size_t>(sp.slots));
  sim::Channel<int> ready(sim);
  bool abort = false;
  sim::Trigger producer_done(sim);

  // Producer: read chunks from the source filesystem into the
  // multi-buffer, at most `slots` ahead of the sender.
  auto producer = [&]() -> Task<> {
    for (int i = 0; i < nchunks; ++i) {
      co_await slot_sem.acquire();
      if (abort) break;
      const Bytes sz =
          std::min<Bytes>(chunk, total - static_cast<Bytes>(i) * chunk);
      TraceSpan read_span;
      if (tr != nullptr) {
        read_span = tr->begin(SpanKind::FtRead, src, xfer_span.context(),
                              id, i);
      }
      const SimTime t_read = sim.now();
      co_await fs.read(sz, sp.buffers, &helper);
      if (abort) break;
      read_span.end();
      mt_read.record(sim.now() - t_read);
      ready.put(i);
    }
    producer_done.fire();
  };
  sim.spawn(producer());

  // Wait until every live destination has written `through` chunks.
  // A stall past the timeout re-derives the live set from the MM's
  // failure list (mid-transfer crash: shrink, don't wedge) and backs
  // off exponentially while a failure is suspected but not declared.
  auto poll_written = [&](int through,
                          fabric::TraceContext stall_ctx) -> Task<> {
    SimTime backoff = sp.flow_control_poll;
    SimTime stall_start = sim.now();
    for (;;) {
      if (dead()) co_return;
      bool ok = true;
      for (const NodeRange r : live) {
        if (!co_await fab.compare_and_write(
                Component::FileTransfer,
                ControlMessage::flow_credit(id, through), src, r,
                addr_written(id, inc), Compare::GE, through, kNoWrite, 0,
                stall_ctx)) {
          ok = false;
          break;
        }
      }
      if (ok || dead()) co_return;
      // Counts *failed* polls: every one forces an identical re-query,
      // which the fabric aggregator sees as a caw_retry.
      mt_flow_polls.add(1);
      if (sim.now() - stall_start > sp.transfer_stall_timeout) {
        std::vector<NodeRange> fresh =
            live_subranges(alloc, owner.failed_nodes());
        if (fresh != live) {
          live = std::move(fresh);
          mt_shrinks.add(1);
          stall_start = sim.now();
          backoff = sp.flow_control_poll;
          continue;
        }
        mt_retries.add(1);
        backoff = std::min(backoff * 2, sp.transfer_max_backoff);
      }
      co_await sim.delay(backoff);
    }
  };

  TransferStats stats;
  stats.bytes = total;

  // Sender: flow control, host assist, hardware multicast.
  for (int n = 0; n < nchunks && !abort; ++n) {
    if (dead()) break;
    const int i = co_await ready.get();
    const Bytes sz =
        std::min<Bytes>(chunk, total - static_cast<Bytes>(i) * chunk);

    // Global flow control: slot (i mod slots) may be reused only after
    // every node has written chunk i - slots (COMPARE-AND-WRITE).
    if (i >= sp.slots) {
      TraceSpan stall_span;
      if (tr != nullptr) {
        stall_span = tr->begin(SpanKind::FtStall, src, xfer_span.context(),
                               id, i);
      }
      const SimTime t_stall = sim.now();
      co_await poll_written(i - sp.slots + 1, stall_span.context());
      mt_stall.record(sim.now() - t_stall);
      if (dead()) break;
    }

    // Host lightweight process: NIC TLB servicing + file access. This
    // serialises against the producer's read assist on the same
    // process — the paper's 131 MB/s bottleneck.
    TraceSpan assist_span;
    if (tr != nullptr) {
      assist_span = tr->begin(SpanKind::FtAssist, src, xfer_span.context(),
                              id, i);
    }
    const SimTime t_assist = sim.now();
    co_await helper.compute(host_assist_cost(cluster, sz, sp.slots));
    mt_assist.record(sim.now() - t_assist);
    assist_span.end();
    if (dead()) break;

    TraceSpan bcast_span;
    if (tr != nullptr) {
      bcast_span = tr->begin(SpanKind::FtBcast, src, xfer_span.context(),
                             id, i);
    }
    const SimTime t_bcast = sim.now();
    for (const NodeRange r : live) {
      fab.xfer_and_signal(Component::FileTransfer,
                          ControlMessage::launch_chunk(id, i, sz), src, r, sz,
                          sp.buffers, ev_chunk(id, inc),
                          ev_chunk_sent(id, inc), bcast_span.context());
    }
    // One completion event per subrange multicast.
    for (std::size_t k = 0; k < live.size(); ++k) {
      co_await fab.wait_event(src, ev_chunk_sent(id, inc));
    }
    bcast_span.end();
    mt_bcast.record(sim.now() - t_bcast);
    mt_chunks.add(1);
    ++stats.chunks;
    slot_sem.release();
  }

  if (dead()) {
    // Unwind: flood the producer's flow-control slots so it drains and
    // exits, then report the partial transfer.
    abort = true;
    slot_sem.release(static_cast<std::size_t>(nchunks));
    co_await producer_done.wait();
    mt_aborts.add(1);
    stats.aborted = true;
    stats.duration = sim.now() - t0;
    co_return stats;
  }

  // Completion: all surviving nodes have written the full image.
  {
    TraceSpan stall_span;
    if (tr != nullptr) {
      stall_span = tr->begin(SpanKind::FtStall, src, xfer_span.context(),
                             id, nchunks);
    }
    const SimTime t_stall = sim.now();
    co_await poll_written(nchunks, stall_span.context());
    mt_stall.record(sim.now() - t_stall);
  }

  stats.aborted = dead();
  stats.duration = sim.now() - t0;
  co_return stats;
}

}  // namespace storm::core
