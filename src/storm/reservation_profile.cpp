#include "storm/reservation_profile.hpp"

#include <algorithm>
#include <cassert>

namespace storm::core {

using sim::SimTime;

ReservationProfile::ReservationProfile(SimTime now, int free_now)
    : now_(now) {
  steps_.push_back(Step{now, free_now});
}

void ReservationProfile::add_release(SimTime when, int nodes) {
  if (when < now_) when = now_;
  // Insert a step boundary at `when` if missing, then raise
  // availability from there on.
  std::size_t i = 0;
  while (i < steps_.size() && steps_[i].time < when) ++i;
  if (i == steps_.size() || steps_[i].time != when) {
    const int prev = steps_[i - 1].available;
    steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i),
                  Step{when, prev});
  }
  for (std::size_t k = i; k < steps_.size(); ++k) {
    steps_[k].available += nodes;
  }
}

int ReservationProfile::available_at(SimTime t) const {
  int avail = steps_.front().available;
  for (const Step& s : steps_) {
    if (s.time > t) break;
    avail = s.available;
  }
  return avail;
}

SimTime ReservationProfile::earliest_fit(int nodes, SimTime duration) const {
  // Candidate start times are step boundaries.
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const SimTime start = std::max(steps_[i].time, now_);
    const SimTime end = start + duration;
    bool fits = true;
    for (std::size_t k = 0; k < steps_.size(); ++k) {
      const SimTime seg_start = steps_[k].time;
      const SimTime seg_end =
          k + 1 < steps_.size() ? steps_[k + 1].time : SimTime::max();
      if (seg_end <= start) continue;
      if (seg_start >= end) break;
      if (steps_[k].available < nodes) {
        fits = false;
        break;
      }
    }
    if (fits) return start;
  }
  return SimTime::max();  // cannot fit (request larger than machine)
}

void ReservationProfile::reserve(SimTime start, SimTime duration, int nodes) {
  const SimTime end = start + duration;
  // Ensure boundaries exist at start and end.
  auto ensure_step = [&](SimTime t) {
    std::size_t i = 0;
    while (i < steps_.size() && steps_[i].time < t) ++i;
    if (i == steps_.size() || steps_[i].time != t) {
      const int prev = steps_[i - 1].available;
      steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i),
                    Step{t, prev});
    }
  };
  ensure_step(start);
  if (end < SimTime::max()) ensure_step(end);
  for (auto& s : steps_) {
    if (s.time >= start && (end == SimTime::max() || s.time < end)) {
      s.available -= nodes;
      assert(s.available >= 0 && "over-reservation");
    }
  }
}

}  // namespace storm::core
