// The Node Manager (NM): one dæmon per compute node (Table 2).
//
// Responsibilities (Section 2.1): finding available PLs for a job
// launch, receiving the file fragments the MM broadcasts, scheduling
// and descheduling local processes on gang-scheduling strobes,
// detecting PL/application termination, and — on the recovery path —
// cancelling the local PEs of a killed job incarnation.
//
// The NM is itself a simulated OS process pinned to the node's dæmon
// CPU, so every microsecond it spends writing fragments or enacting a
// strobe is real CPU time that contends with co-located work — the
// effect the CPU-loaded experiment of Figure 3 measures.
//
// Crash model: crash() kills everything the dæmon knows (run lists,
// fork/exit counters, in-flight receive loops) and cancels the local
// PEs' CPU work; restart() brings the dæmon back with a clean slate,
// ready to re-register with the MM through the heartbeat protocol.
#pragma once

#include <unordered_map>
#include <vector>

#include "node/machine.hpp"
#include "storm/protocol.hpp"
#include "telemetry/tracing.hpp"

namespace storm::telemetry {
class Counter;
class Gauge;
class Histogram;
}

namespace storm::core {

class Cluster;
class ProgramLauncher;

struct StormParams;  // defined in cluster.hpp

class NodeManager {
 public:
  NodeManager(Cluster& cluster, int node);
  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  /// Spawn the command-processing loop.
  void start();
  /// Node crash: discard all local dæmon state, cancel local PE work,
  /// and ignore commands until restart(). In-flight receive loops see
  /// the epoch bump and abandon their chunks.
  void crash();
  /// Recovery: come back with a clean slate (crash() wiped it).
  void restart();
  /// Legacy name for crash().
  void stop() { crash(); }
  bool stopped() const { return stopped_; }

  int node() const { return node_; }
  sim::Channel<fabric::TracedCommand>& mailbox() { return mailbox_; }
  node::Proc& proc() { return *proc_; }

  int current_row() const { return current_row_; }

  /// When the last MM command arrived — the standby MM's liveness
  /// signal for the primary (heartbeats reach every node).
  sim::SimTime last_cmd_time() const { return last_cmd_time_; }

  /// Deepest the command queue has ever been — the overload indicator
  /// for quanta below the feasibility floor (Section 3.2.1).
  std::size_t max_mailbox_depth() const { return max_depth_; }

  // --- callbacks from ProgramLauncher ---------------------------------
  void register_pe(Job& job, int incarnation, int rank, node::Proc* proc);
  void on_forked(Job& job, int incarnation);
  void on_exit(Job& job, int incarnation, int rank);

  // --- batched periodic sweep (DESIGN §2.3) ---------------------------
  /// Command delivery entry point used by Cluster::deliver_command.
  /// Normally a mailbox put; while an absorb window is open the command
  /// is held and flushed into the mailbox when the window closes — the
  /// dæmon would have been mid-compute either way, so the command is
  /// first looked at at the same instant as on the event-driven path.
  void deliver(fabric::TracedCommand tc);

  /// True when the dæmon is parked on an empty mailbox with nothing
  /// else able to touch its CPU: a strobe or heartbeat may then be
  /// absorbed without waking the coroutine/run-queue machinery.
  bool can_absorb_periodic();

  /// Absorb one Strobe/Heartbeat at the current time. Performs exactly
  /// the event-driven path's bookkeeping (metrics, span begin, one
  /// dispatch-noise RNG draw from the node's OS stream) and schedules a
  /// single completion event at t + cost + dispatch overhead — where
  /// the event-driven path would have spent three events and a full
  /// dispatch/finish cycle.
  void absorb_periodic(const fabric::TracedCommand& tc);

 private:
  sim::Task<> run();
  sim::Task<> receive_file(JobId job, int incarnation, int chunks,
                           sim::Bytes chunk_size);
  sim::Task<> handle_launch(Job& job, int incarnation,
                            fabric::TraceContext ctx);
  void handle_kill(JobId job, int incarnation);
  void enact_row(int row);
  void complete_window();

  struct LocalPe {
    Job* job;
    int incarnation;
    int rank;
    int cpu;
    int row;
    node::Proc* proc;
    bool exited = false;
  };

  Cluster& cluster_;
  int node_;
  node::Proc* proc_ = nullptr;
  sim::Channel<fabric::TracedCommand> mailbox_;
  bool stopped_ = false;
  int crash_epoch_ = 0;  // bumped per crash; receive loops snapshot it
  int current_row_ = 0;
  std::size_t max_depth_ = 0;
  sim::SimTime last_cmd_time_{};

  std::vector<LocalPe> pes_;
  std::unordered_map<JobId, int> forked_;
  std::unordered_map<JobId, int> exited_;

  // Absorb-window state: one periodic command being serviced on the
  // fast path. Commands arriving mid-window queue in window_pending_
  // (the event-driven dæmon would have been computing; its mailbox
  // backlog is only ever *observed* when the window ends).
  bool windowed_ = false;
  sim::SimTime window_start_{};
  sim::EventId window_ev_ = sim::kInvalidEvent;
  fabric::ControlMessage window_cmd_{};
  telemetry::TraceSpan window_span_;
  std::vector<fabric::TracedCommand> window_pending_;
  int active_receives_ = 0;  // in-flight receive_file coroutines

  // Cluster-wide telemetry instruments, shared by every NM (per-node
  // series would explode the registry at 64+ nodes; the aggregate is
  // what the overhead analysis wants).
  telemetry::Counter* mt_cmds_ = nullptr;            // nm.cmds
  telemetry::Counter* mt_strobe_switch_ = nullptr;   // nm.strobe.switches
  telemetry::Counter* mt_strobe_idle_ = nullptr;     // nm.strobe.idle
  telemetry::Counter* mt_chunks_ = nullptr;          // nm.chunks
  telemetry::Counter* mt_kills_ = nullptr;           // nm.kills
  telemetry::Histogram* mt_chunk_wait_ = nullptr;    // nm.chunk.wait_ns
  telemetry::Histogram* mt_chunk_write_ = nullptr;   // nm.chunk.write_ns
  telemetry::Gauge* mt_mailbox_depth_ = nullptr;     // nm.mailbox.max_depth
  // Lazily resolved on the first absorbed heartbeat: heartbeats are
  // off in the pinned figures and the registry serialises every
  // registered series, so eager registration would change --metrics.
  telemetry::Counter* mt_hb_batched_ = nullptr;      // nm.heartbeat.batched
};

/// The Program Launcher (PL): one dæmon per potential process — number
/// of app CPUs x desired multiprogramming level (Table 2). Forks and
/// supervises exactly one application process at a time, reporting its
/// termination back to the NM.
class ProgramLauncher {
 public:
  /// `index` is this PL's position in the node's pool — its bit in the
  /// node-state plane's per-node PL occupancy mask.
  ProgramLauncher(Cluster& cluster, int node, int cpu, int slot, int index);

  int node() const { return node_; }
  int cpu() const { return cpu_; }
  bool busy() const;

  /// Fork + exec the given rank of `job`; runs its program to
  /// completion and notifies the NM. Spawned by the NM. If the job's
  /// incarnation is killed (or the node crashes) mid-launch, the PL
  /// abandons the fork without registering or reporting. `ctx` is the
  /// NM's launch-command span (invalid when tracing is off).
  sim::Task<> launch(Job& job, int rank, fabric::TraceContext ctx = {});

  /// Node crash: abort any in-flight fork/notify CPU work so the
  /// launch coroutine observes the epoch bump and bails out.
  void cancel();

 private:
  void set_busy(bool v);

  Cluster& cluster_;
  int node_;
  int cpu_;
  int index_;
  node::Proc* proc_ = nullptr;
};

}  // namespace storm::core
