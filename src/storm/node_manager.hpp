// The Node Manager (NM): one dæmon per compute node (Table 2).
//
// Responsibilities (Section 2.1): finding available PLs for a job
// launch, receiving the file fragments the MM broadcasts, scheduling
// and descheduling local processes on gang-scheduling strobes, and
// detecting PL/application termination.
//
// The NM is itself a simulated OS process pinned to the node's dæmon
// CPU, so every microsecond it spends writing fragments or enacting a
// strobe is real CPU time that contends with co-located work — the
// effect the CPU-loaded experiment of Figure 3 measures.
#pragma once

#include <unordered_map>
#include <vector>

#include "node/machine.hpp"
#include "storm/protocol.hpp"

namespace storm::telemetry {
class Counter;
class Gauge;
class Histogram;
}

namespace storm::core {

class Cluster;
class ProgramLauncher;

struct StormParams;  // defined in cluster.hpp

class NodeManager {
 public:
  NodeManager(Cluster& cluster, int node);
  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  /// Spawn the command-processing loop.
  void start();
  /// Stop processing (fault injection). The dæmon drains nothing more.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  int node() const { return node_; }
  sim::Channel<fabric::ControlMessage>& mailbox() { return mailbox_; }
  node::Proc& proc() { return *proc_; }

  int current_row() const { return current_row_; }

  /// Deepest the command queue has ever been — the overload indicator
  /// for quanta below the feasibility floor (Section 3.2.1).
  std::size_t max_mailbox_depth() const { return max_depth_; }

  // --- callbacks from ProgramLauncher ---------------------------------
  void register_pe(Job& job, int rank, node::Proc* proc);
  void on_forked(Job& job);
  void on_exit(Job& job, int rank);

 private:
  sim::Task<> run();
  sim::Task<> receive_file(JobId job, int chunks, sim::Bytes chunk_size);
  sim::Task<> handle_launch(Job& job);
  void enact_row(int row);

  struct LocalPe {
    Job* job;
    int rank;
    int cpu;
    int row;
    node::Proc* proc;
    bool exited = false;
  };

  Cluster& cluster_;
  int node_;
  node::Proc* proc_ = nullptr;
  sim::Channel<fabric::ControlMessage> mailbox_;
  bool stopped_ = false;
  int current_row_ = 0;
  bool gang_switching_seen_ = false;
  std::size_t max_depth_ = 0;

  std::vector<LocalPe> pes_;
  std::unordered_map<JobId, int> forked_;
  std::unordered_map<JobId, int> exited_;

  // Cluster-wide telemetry instruments, shared by every NM (per-node
  // series would explode the registry at 64+ nodes; the aggregate is
  // what the overhead analysis wants).
  telemetry::Counter* mt_cmds_ = nullptr;            // nm.cmds
  telemetry::Counter* mt_strobe_switch_ = nullptr;   // nm.strobe.switches
  telemetry::Counter* mt_strobe_idle_ = nullptr;     // nm.strobe.idle
  telemetry::Counter* mt_chunks_ = nullptr;          // nm.chunks
  telemetry::Histogram* mt_chunk_wait_ = nullptr;    // nm.chunk.wait_ns
  telemetry::Histogram* mt_chunk_write_ = nullptr;   // nm.chunk.write_ns
  telemetry::Gauge* mt_mailbox_depth_ = nullptr;     // nm.mailbox.max_depth
};

/// The Program Launcher (PL): one dæmon per potential process — number
/// of app CPUs x desired multiprogramming level (Table 2). Forks and
/// supervises exactly one application process at a time, reporting its
/// termination back to the NM.
class ProgramLauncher {
 public:
  ProgramLauncher(Cluster& cluster, int node, int cpu, int slot);

  int node() const { return node_; }
  int cpu() const { return cpu_; }
  bool busy() const { return busy_; }

  /// Fork + exec the given rank of `job`; runs its program to
  /// completion and notifies the NM. Spawned by the NM.
  sim::Task<> launch(Job& job, int rank);

 private:
  Cluster& cluster_;
  int node_;
  int cpu_;
  node::Proc* proc_ = nullptr;
  bool busy_ = false;
};

}  // namespace storm::core
