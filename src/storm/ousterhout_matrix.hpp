// The Ousterhout scheduling matrix: rows are timeslots, columns are
// nodes. Gang scheduling walks the rows round-robin; every process of
// a job lives in exactly one row, so "activate row r" coschedules
// every gang assigned to that timeslot (Ousterhout '82, as adopted by
// the paper's gang scheduler).
//
// Placement uses one buddy allocator per row, which implements the
// buddy-based packing schemes of Feitelson [11] in their simplest
// form: first row (lowest timeslot) whose buddy tree can host the
// request wins.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/node_state_plane.hpp"
#include "storm/buddy_allocator.hpp"
#include "storm/job.hpp"

namespace storm::core {

class OusterhoutMatrix {
 public:
  /// `nodes` must be a power of two; `rows` is the maximum
  /// multiprogramming level (MPL).
  OusterhoutMatrix(int nodes, int rows);

  int nodes() const { return nodes_; }
  int rows() const { return static_cast<int>(rows_.size()); }

  /// Place a job needing `count` nodes into the lowest row with a
  /// suitable buddy block. Returns (row, range).
  std::optional<std::pair<int, net::NodeRange>> place(JobId job, int count);

  /// Remove a previously placed job, freeing its block.
  void remove(JobId job);

  bool contains(JobId job) const { return placements_.contains(job); }

  /// Allocation of a placed job, if any (row, range).
  std::optional<std::pair<int, net::NodeRange>> placement(JobId job) const;

  /// Take a dead node out of circulation: reserve its size-1 block in
  /// every row so no future placement touches it. The caller must have
  /// removed every job spanning the node first. Idempotent; returns
  /// false if the node's block is still held by some placement.
  bool evict_node(int node);

  /// Undo evict_node() once the node re-registers with a clean slate.
  void restore_node(int node);

  bool evicted(int node) const;

  /// Adopt a job at an exact (row, range) — the failover path, where a
  /// standby MM rebuilds the matrix from surviving jobs' recorded
  /// allocations rather than re-packing them. Returns false if the
  /// block is not free in that row.
  bool place_at(JobId job, int row, net::NodeRange range);

  /// Rows that currently hold at least one job, in row order.
  std::vector<int> active_rows() const;

  /// Jobs placed in a given row.
  std::vector<JobId> jobs_in_row(int row) const;

  // --- non-allocating visitation (the strobe hot path) --------------------
  // These read cached storage maintained incrementally by
  // place/remove/place_at, so a strobe round at 64k nodes does zero
  // heap work: count the active rows, pick the k-th, walk its jobs.

  /// Number of rows currently holding at least one job.
  int active_row_count() const { return active_row_count_; }

  /// The k-th active row in ascending row order (k < active_row_count()).
  int nth_active_row(int k) const;

  /// Jobs placed in `row`, sorted ascending — a reference to cached
  /// storage, valid until the next place/remove/place_at.
  const std::vector<JobId>& row_jobs(int row) const { return row_jobs_[row]; }

  /// The job occupying matrix cell (row, node), or kInvalidJob — the
  /// flat structure-of-arrays matrix columns.
  JobId cell_job(int row, int node) const {
    return cell_job_[static_cast<std::size_t>(row) * nodes_ + node];
  }

  /// Number of distinct jobs placed.
  std::size_t job_count() const { return placements_.size(); }

  /// Fraction of (row, node) cells occupied — a packing-quality metric.
  double occupancy() const;

  /// Unallocated (row, node) cells across all buddy trees — the
  /// complement of occupancy() in absolute node-slot units, sampled by
  /// the `mm.matrix.free_node_slots` telemetry gauge.
  int free_node_slots() const;

 private:
  struct Placement {
    int row;
    net::NodeRange range;
  };

  void fill_cells(int row, net::NodeRange range, JobId job);
  void add_row_job(int row, JobId job);
  void drop_row_job(int row, JobId job);

  int nodes_;
  std::vector<std::unique_ptr<BuddyAllocator>> rows_;
  std::unordered_map<JobId, Placement> placements_;
  net::BitWords evicted_;
  // Flat row-major cell ownership: cell_job_[row * nodes_ + node].
  std::vector<JobId> cell_job_;
  // Per-row sorted job lists + live count of non-empty rows, kept in
  // sync by place/remove/place_at so strobe-path queries never allocate.
  std::vector<std::vector<JobId>> row_jobs_;
  int active_row_count_ = 0;
};

}  // namespace storm::core
