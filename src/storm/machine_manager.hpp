// The Machine Manager (MM): one per cluster, on the management node.
//
// Owns resource allocation (buddy tree / Ousterhout matrix), global
// scheduling decisions (gang strobes or batch queue + backfilling),
// binary distribution, and heartbeat-based fault detection. Exactly as
// the paper describes, the MM "can issue commands and receive the
// notification of events only at the beginning of a timeslice": its
// main loop wakes once per quantum and performs all observation
// through COMPARE-AND-WRITE over the partitions' NIC-resident state.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "storm/ousterhout_matrix.hpp"
#include "storm/protocol.hpp"

namespace storm::telemetry {
class Counter;
class Gauge;
class Histogram;
}

namespace storm::core {

class Cluster;

class MachineManager {
 public:
  explicit MachineManager(Cluster& cluster);
  MachineManager(const MachineManager&) = delete;
  MachineManager& operator=(const MachineManager&) = delete;

  void start();

  JobId submit(JobSpec spec);
  Job& job(JobId id) { return *jobs_[id]; }
  const Job& job(JobId id) const { return *jobs_[id]; }
  std::size_t job_count() const { return jobs_.size(); }

  bool all_done() const;
  int completed_count() const { return completed_; }
  std::size_t queued_count() const { return queue_.size(); }

  OusterhoutMatrix& matrix() { return *matrix_; }

  /// Strobes issued so far (gang-scheduling diagnostics).
  std::int64_t strobes_issued() const { return strobes_; }

  // --- fault detection ---------------------------------------------------
  using FailureCallback = std::function<void(int node, sim::SimTime when)>;
  void set_failure_callback(FailureCallback cb) { on_failure_ = std::move(cb); }
  const std::vector<int>& failed_nodes() const { return failed_; }

 private:
  sim::Task<> run();
  sim::Task<> boundary_work();
  sim::Task<> transfer_binary(Job& job);
  sim::Task<> observe_jobs();
  sim::Task<> issue_launches();
  void allocate_queued();
  sim::Task<> strobe();
  sim::Task<> heartbeat_round();
  net::NodeRange compute_nodes() const;

  Cluster& cluster_;
  node::Proc* proc_ = nullptr;
  std::unique_ptr<OusterhoutMatrix> matrix_;

  std::vector<std::unique_ptr<Job>> jobs_;
  std::deque<JobId> queue_;            // awaiting allocation
  std::vector<JobId> transferring_;    // binary en route
  std::vector<JobId> ready_;           // awaiting launch slot
  std::vector<JobId> launching_;       // waiting for all-forked
  std::vector<JobId> running_;         // waiting for all-exited
  std::vector<bool> transfer_flag_;    // transfer task -> MM loop

  int completed_ = 0;
  std::int64_t slice_ = 0;
  std::int64_t strobes_ = 0;

  std::int64_t hb_epoch_ = 0;
  std::vector<int> failed_;
  FailureCallback on_failure_;

  // Telemetry instruments (owned by the cluster registry; resolved
  // once in the constructor so the per-boundary path never does a
  // name lookup).
  telemetry::Histogram* mt_boundary_ = nullptr;  // mm.boundary_ns
  telemetry::Counter* mt_strobes_ = nullptr;     // mm.strobes
  telemetry::Counter* mt_launches_ = nullptr;    // mm.launches
  telemetry::Counter* mt_completed_ = nullptr;   // mm.jobs.completed
  telemetry::Counter* mt_heartbeats_ = nullptr;  // mm.heartbeat.rounds
  telemetry::Gauge* mt_occupancy_ = nullptr;     // mm.matrix.occupancy
  telemetry::Gauge* mt_free_slots_ = nullptr;    // mm.matrix.free_node_slots
};

}  // namespace storm::core
