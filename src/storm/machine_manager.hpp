// The Machine Manager (MM): one per cluster, on the management node.
//
// Owns resource allocation (buddy tree / Ousterhout matrix), global
// scheduling decisions (gang strobes or batch queue + backfilling),
// binary distribution, heartbeat-based fault detection, and — since
// the robustness work — the failure *recovery* policy: on a declared
// node death the MM evicts the node from every buddy tree, kills and
// (per policy) requeues the jobs spanning it, and re-strobes the
// surviving partition. Exactly as the paper describes, the MM "can
// issue commands and receive the notification of events only at the
// beginning of a timeslice": its main loop wakes once per quantum and
// performs all observation through COMPARE-AND-WRITE over the
// partitions' NIC-resident state.
//
// A second MM can be instantiated as a hot standby on another node.
// It shadows the primary through the fabric (every MM command —
// strobe or heartbeat — lands on its own node's NM) and declares the
// primary dead when no command has arrived for a configurable number
// of heartbeat periods; it then rebuilds its allocation state from
// the cluster-owned job table and resumes time-slicing.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "fabric/message.hpp"
#include "storm/ousterhout_matrix.hpp"
#include "storm/protocol.hpp"
#include "storm/replication/replication.hpp"

namespace storm::telemetry {
class Counter;
class Gauge;
class Histogram;
}

namespace storm::core {

class Cluster;

class MachineManager {
 public:
  /// `node` hosts the MM dæmon and its helper process; `standby`
  /// instances start passive and only begin scheduling after failover.
  MachineManager(Cluster& cluster, int node, bool standby = false);
  MachineManager(const MachineManager&) = delete;
  MachineManager& operator=(const MachineManager&) = delete;

  void start();

  /// Admit a freshly created job (the Cluster owns the job table).
  void enqueue(JobId id);

  Job& job(JobId id);
  const Job& job(JobId id) const;
  std::size_t job_count() const;

  /// True once every submitted job is terminal (Completed or Aborted).
  bool all_done() const;
  /// Jobs this MM has observed reaching a terminal state.
  int completed_count() const { return completed_; }
  std::size_t queued_count() const { return queue_.size(); }

  OusterhoutMatrix& matrix() { return *matrix_; }

  int node() const { return node_; }
  node::Proc& helper() { return *helper_; }

  /// Strobes issued so far (gang-scheduling diagnostics).
  std::int64_t strobes_issued() const { return strobes_; }

  /// Heartbeat epochs multicast so far — the reference value the query
  /// layer's heartbeat-lag invariant compares plane words against.
  std::int64_t heartbeat_epoch() const { return hb_epoch_; }

  // --- crash / failover --------------------------------------------------
  /// Kill the MM dæmon (its node may survive): in-flight boundary work
  /// is cancelled and the loop never wakes again.
  void crash();
  bool crashed() const { return crashed_; }
  /// True once this MM is the one issuing commands (always for the
  /// primary; after failover for a standby).
  bool active() const { return active_; }

  /// Join a quorum-replication group as `rank` (called by the Cluster
  /// before start()). Every state-changing command then commits
  /// through the group before its effects are enacted, the boundary
  /// loop only runs while this rank holds the lease, and a standby
  /// instance adopts on the group's takeover trigger instead of
  /// silence detection.
  void attach_replication(ReplicationGroup* group, int rank) {
    repl_ = group;
    repl_rank_ = rank;
  }

  /// Called by the Cluster when a crashed node comes back: restore it
  /// to the allocator if its death had been detected, or kill the
  /// suspect jobs spanning it after an undetected outage.
  void handle_node_recovered(int node);

  // --- fault detection ---------------------------------------------------
  using FailureCallback = std::function<void(int node, sim::SimTime when)>;
  void set_failure_callback(FailureCallback cb) { on_failure_ = std::move(cb); }
  /// Nodes declared dead, ascending. FileTransfer consults this to
  /// shrink a stalled multicast set to the survivors.
  const std::vector<int>& failed_nodes() const { return failed_; }

 private:
  // The TraceContext parameters carry the enclosing boundary/failover
  // span when tracing is enabled (invalid otherwise — zero cost).
  sim::Task<> run();
  sim::Task<> boundary_work();
  sim::Task<> transfer_binary(Job& job);
  sim::Task<> observe_jobs(fabric::TraceContext ctx);
  sim::Task<> issue_launches(fabric::TraceContext ctx);
  sim::Task<> allocate_queued();
  sim::Task<> strobe(fabric::TraceContext ctx = {});
  /// Commit one command through the replication group. Only called
  /// when replication is attached; false means this replica lost the
  /// lease and the caller must not enact the command.
  sim::Task<bool> commit_command(EntryKind kind, JobId job,
                                 std::int64_t args);
  sim::Task<> heartbeat_round(fabric::TraceContext ctx);
  /// Probe `range` with one GE-floor COMPARE-AND-WRITE; on failure
  /// bisect down to the failing node(s) and declare them, ascending.
  sim::Task<> verify_alive(net::NodeRange range, std::int64_t floor_epoch,
                           fabric::TraceContext ctx, std::vector<int>& fresh);
  net::NodeRange compute_nodes() const;

  // Recovery internals.
  sim::Task<> kill_job(Job& job);
  sim::Task<> handle_node_failures(const std::vector<int>& fresh);
  sim::Task<> node_rejoin(int node);
  void mark_terminal(Job& job, JobState st);

  // Hot-standby internals.
  sim::Task<> standby_watch();
  sim::Task<> failover();

  Cluster& cluster_;
  int node_;
  bool standby_;
  bool active_;
  bool crashed_ = false;
  ReplicationGroup* repl_ = nullptr;
  int repl_rank_ = 0;
  node::Proc* proc_ = nullptr;
  node::Proc* helper_ = nullptr;
  std::unique_ptr<OusterhoutMatrix> matrix_;

  std::deque<JobId> queue_;            // awaiting allocation
  std::vector<JobId> transferring_;    // binary en route
  std::vector<JobId> ready_;           // awaiting launch slot
  std::vector<JobId> launching_;       // waiting for all-forked
  std::vector<JobId> running_;         // waiting for all-exited
  std::vector<bool> transfer_flag_;    // transfer task -> MM loop

  int completed_ = 0;
  std::int64_t slice_ = 0;
  std::int64_t strobes_ = 0;

  std::int64_t hb_epoch_ = 0;
  std::vector<int> failed_;  // kept sorted ascending
  FailureCallback on_failure_;

  // Telemetry instruments (owned by the cluster registry; resolved
  // once in the constructor so the per-boundary path never does a
  // name lookup).
  telemetry::Histogram* mt_boundary_ = nullptr;  // mm.boundary_ns
  telemetry::Counter* mt_strobes_ = nullptr;     // mm.strobes
  telemetry::Counter* mt_launches_ = nullptr;    // mm.launches
  telemetry::Counter* mt_completed_ = nullptr;   // mm.jobs.completed
  telemetry::Counter* mt_heartbeats_ = nullptr;  // mm.heartbeat.rounds
  // Lazily resolved on the first vectorized suspect sweep: heartbeats
  // are off in the pinned figures, and the registry serialises every
  // registered series (eager registration would change --metrics).
  telemetry::Counter* mt_hb_sweeps_ = nullptr;   // mm.heartbeat.sweeps
  telemetry::Gauge* mt_occupancy_ = nullptr;     // mm.matrix.occupancy
  telemetry::Gauge* mt_free_slots_ = nullptr;    // mm.matrix.free_node_slots

  // Recovery / failover instruments.
  telemetry::Counter* mt_kills_ = nullptr;       // mm.recovery.kills
  telemetry::Counter* mt_requeues_ = nullptr;    // mm.recovery.requeues
  telemetry::Counter* mt_aborts_ = nullptr;      // mm.recovery.aborts
  telemetry::Counter* mt_evictions_ = nullptr;   // mm.recovery.evictions
  telemetry::Counter* mt_rejoins_ = nullptr;     // mm.recovery.rejoins
  telemetry::Histogram* mt_requeue_run_ = nullptr;  // mm.recovery.requeue_to_run_ns
  telemetry::Counter* mt_fo_count_ = nullptr;    // mm.failover.count
  telemetry::Histogram* mt_fo_gap_ = nullptr;    // mm.failover.gap_ns
  telemetry::Histogram* mt_fo_resume_ = nullptr; // mm.failover.resume_ns
};

}  // namespace storm::core
