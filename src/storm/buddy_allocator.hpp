// Buddy-tree processor allocation (Feitelson's packing scheme, the
// algorithm the paper's MM uses for space allocation: "the MM ...
// attempts to allocate processors to it using a buddy tree
// algorithm").
//
// Nodes form a complete binary tree over a power-of-two range;
// requests are rounded up to the next power of two and satisfied by a
// free block of that order, splitting larger blocks on demand and
// coalescing buddies on release. Allocations are therefore always
// contiguous, naturally aligned node ranges — exactly the destination
// sets the QsNET hardware multicast wants.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/topology.hpp"

namespace storm::core {

class BuddyAllocator {
 public:
  /// `size` must be a power of two (>= 1).
  explicit BuddyAllocator(int size);

  int size() const { return size_; }
  int free_nodes() const { return free_nodes_; }

  /// Fraction of the tree's nodes currently allocated (including buddy
  /// rounding) — the occupancy a telemetry gauge samples per row.
  double occupancy() const {
    return 1.0 - static_cast<double>(free_nodes_) /
                     static_cast<double>(size_);
  }

  /// Allocate at least `count` nodes (rounded up to a power of two).
  /// Returns the naturally-aligned range, or nullopt if fragmentation
  /// or occupancy makes it impossible.
  std::optional<net::NodeRange> allocate(int count);

  /// Release a range previously returned by allocate().
  void release(net::NodeRange range);

  /// Carve the exact buddy-aligned block `range` out of the free
  /// lists, splitting larger blocks as needed. Used by the recovery
  /// path: evicting a failed node reserves its size-1 block in every
  /// row, and a failover MM re-adopts surviving jobs at their old
  /// addresses. Returns false (no change) if any part of the range is
  /// currently allocated. Release with release().
  bool reserve_range(net::NodeRange range);

  /// Largest request currently satisfiable (0 if full).
  int largest_free_block() const;

  /// True iff a request for `count` nodes would succeed right now.
  bool can_allocate(int count) const {
    return round_up_pow2(count) <= largest_free_block();
  }

  static int round_up_pow2(int v);
  static bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

 private:
  int order_of(int block_size) const;

  int size_;
  int orders_;      // number of block orders (size 1 .. size_)
  int free_nodes_;
  // free_[k] = sorted list of first-node indices of free blocks of
  // size 2^k. Kept sorted so allocation is deterministic (lowest
  // address first, like the classic implementation).
  std::vector<std::vector<int>> free_;
};

}  // namespace storm::core
