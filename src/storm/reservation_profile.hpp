// A step-function of free nodes over future time — the data structure
// behind profile-based (conservative) backfilling: every queued job
// gets a reservation carved out of the earliest window that fits it,
// and may start immediately iff its window starts now.
#pragma once

#include <vector>

#include "sim/time.hpp"

namespace storm::core {

class ReservationProfile {
 public:
  /// Start with `free_now` nodes free from `now` on.
  ReservationProfile(sim::SimTime now, int free_now);

  /// Add a future release of `nodes` at `when` (a running job's
  /// estimated end).
  void add_release(sim::SimTime when, int nodes);

  /// Earliest time >= now() at which `nodes` are simultaneously free
  /// for the whole window [t, t + duration).
  sim::SimTime earliest_fit(int nodes, sim::SimTime duration) const;

  /// Carve `nodes` out of [start, start + duration).
  void reserve(sim::SimTime start, sim::SimTime duration, int nodes);

  /// Free nodes at a given instant.
  int available_at(sim::SimTime t) const;

  sim::SimTime now() const { return now_; }

 private:
  struct Step {
    sim::SimTime time;
    int available;  // free nodes from this time until the next step
  };

  // Steps sorted by time; the last step extends to infinity.
  std::vector<Step> steps_;
  sim::SimTime now_;
};

}  // namespace storm::core
