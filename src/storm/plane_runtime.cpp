#include "storm/plane_runtime.hpp"

#include <algorithm>
#include <cassert>

#include "node/filesystem.hpp"
#include "storm/cluster.hpp"
#include "storm/protocol.hpp"

namespace storm::core {

using fabric::ControlMessage;
using fabric::MsgClass;
using net::NodeRange;
using sim::SimTime;

namespace {

/// splitmix64 finaliser: decorrelates the (job, incarnation, node,
/// rank) coordinates into an Rng seed without touching any shared
/// random stream — plane-mode fork sampling is reproducible and
/// order-independent.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

PlaneRuntime::PlaneRuntime(Cluster& cluster) : cluster_(cluster) {}

SimTime PlaneRuntime::sample_fork(JobId job, int inc, int node, int k) const {
  const auto& cfg = cluster_.config();
  std::uint64_t s = mix(cfg.seed ^ (0xF0'44ULL + static_cast<std::uint64_t>(job)));
  s = mix(s ^ (static_cast<std::uint64_t>(inc) << 48) ^
          (static_cast<std::uint64_t>(node) << 8) ^
          static_cast<std::uint64_t>(k));
  sim::Rng rng(s);
  const auto& mp = cfg.machine;
  return SimTime::seconds(rng.lognormal_median(mp.fork_median.to_seconds(),
                                               mp.fork_sigma)) +
         mp.exec_overhead;
}

void PlaneRuntime::deliver(NodeRange dsts, const ControlMessage& msg,
                           fabric::TraceContext ctx) {
  (void)ctx;  // plane-mode deliveries are not traced per node
  if (dsts.empty()) return;
  auto& sim = cluster_.sim();
  const StormParams& sp = cluster_.config().storm;
  switch (msg.cls) {
    case MsgClass::Heartbeat: {
      // Every NM acknowledges after 5µs of dæmon CPU: one event fills
      // the whole range's heartbeat slots with the new epoch.
      const std::int64_t epoch = msg.u.heartbeat.epoch;
      sim.schedule_after(SimTime::us(5), [this, dsts, epoch] {
        cluster_.network().plane().fill_words(dsts, kHeartbeatAddr, epoch);
      });
      break;
    }
    case MsgClass::Strobe:
      handle_strobe(dsts, msg.u.strobe.row);
      break;
    case MsgClass::Launch:
      handle_launch(dsts, msg.u.launch.job, msg.u.launch.incarnation);
      break;
    case MsgClass::PrepareTransfer: {
      const JobId id = msg.u.prepare.job;
      const int inc = msg.u.prepare.incarnation;
      const auto fs = node::FsParams::ram_disk();
      Sink& s = sinks_[id * kMaxIncarnations + inc];
      if (s.job != id || s.inc != inc) s = Sink{};
      s.job = id;
      s.inc = inc;
      s.write_cost =
          fs.op_latency + fs.write_bw.time_for(msg.u.prepare.chunk_bytes);
      // The NM spends nm_cmd_cost before its receive loop is armed;
      // chunks landing earlier queue behind pipe_free.
      s.subs.push_back(
          SinkSub{dsts, 0, sim.now() + sp.nm_cmd_cost});
      break;
    }
    case MsgClass::Kill: {
      const JobId id = msg.u.kill.job;
      const int inc = msg.u.kill.incarnation;
      if (auto it = gangs_.find(id);
          it != gangs_.end() && it->second.inc == inc) {
        gangs_.erase(it);
      }
      sinks_.erase(id * kMaxIncarnations + inc);
      break;
    }
    default:
      break;  // not an NM command class
  }
}

void PlaneRuntime::handle_strobe(NodeRange dsts, int row) {
  const StormParams& sp = cluster_.config().storm;
  // A timeslot switch costs the coordinated multi-context-switch on
  // every node; an idle strobe just the bookkeeping. Only live gangs
  // make the switch non-trivial (do-nothing launch jobs exit within a
  // quantum and are not tracked here).
  const bool switching = row != current_row_ && !gangs_.empty();
  const SimTime cost =
      switching ? sp.nm_strobe_switch_cost : sp.nm_cmd_cost;
  cluster_.sim().schedule_after(
      cost, [this, dsts, row] { enact(dsts, row); });
}

void PlaneRuntime::enact(NodeRange dsts, int row) {
  current_row_ = row;
  cluster_.network().plane().fill_words(dsts, kStrobeRowAddr, row);
  const SimTime t = cluster_.sim().now();
  for (auto& [id, g] : gangs_) {
    if (!g.started) continue;
    if (g.row == row) {
      activate(id, g, t);
    } else {
      deactivate(g, t);
    }
  }
}

void PlaneRuntime::activate(JobId id, GangJob& g, SimTime t) {
  if (g.active) return;
  g.active = true;
  g.activated_at = t;
  if (g.ever_suspended) {
    g.remaining = g.remaining + cluster_.config().machine.switch_penalty;
  }
  ++g.epoch;
  schedule_completion(id, g);
}

void PlaneRuntime::deactivate(GangJob& g, SimTime t) {
  if (!g.active) return;
  const SimTime ran = t - g.activated_at;
  g.remaining = ran < g.remaining ? g.remaining - ran : SimTime::zero();
  g.active = false;
  g.ever_suspended = true;
  ++g.epoch;  // a pending completion event is now stale
}

void PlaneRuntime::schedule_completion(JobId id, GangJob& g) {
  cluster_.sim().schedule_after(
      g.remaining, [this, id, epoch = g.epoch] { complete(id, epoch); });
}

void PlaneRuntime::complete(JobId id, std::uint64_t epoch) {
  const auto it = gangs_.find(id);
  if (it == gangs_.end()) return;
  GangJob& g = it->second;
  if (g.epoch != epoch || !g.active) return;
  Job& j = cluster_.job(id);
  const int inc = g.inc;
  const NodeRange span = g.span;
  gangs_.erase(it);
  if (inc != j.incarnation()) return;
  const SimTime now = cluster_.sim().now();
  j.times().last_proc_exited = std::max(j.times().last_proc_exited, now);
  // Each PL detects its child's exit and reports; the last report
  // closes addr_done for the whole span.
  cluster_.sim().schedule_after(
      cluster_.config().storm.pl_notify_cost, [this, id, inc, span] {
        if (cluster_.job(id).incarnation() != inc) return;
        cluster_.network().plane().fill_words(span, addr_done(id, inc), 1);
      });
}

void PlaneRuntime::handle_launch(NodeRange dsts, JobId id, int inc) {
  Job& j = cluster_.job(id);
  if (inc != j.incarnation()) return;  // stale: killed in flight
  auto& sim = cluster_.sim();
  const StormParams& sp = cluster_.config().storm;
  const SimTime t0 = sim.now() + sp.nm_cmd_cost;  // NM command handling

  // Ranks are front-loaded over the allocation; nodes past `split` are
  // buddy-rounding surplus and report launched+done straight away.
  const int used =
      (j.spec().npes + j.pes_per_node() - 1) / j.pes_per_node();
  const int split = j.nodes().first + used;
  if (const int tail_first = std::max(dsts.first, split);
      tail_first <= dsts.last()) {
    const NodeRange tail{tail_first, dsts.last() - tail_first + 1};
    sim.schedule_after(t0 - sim.now(), [this, id, inc, tail] {
      if (cluster_.job(id).incarnation() != inc) return;
      auto& plane = cluster_.network().plane();
      plane.fill_words(tail, addr_launched(id, inc), 1);
      plane.fill_words(tail, addr_done(id, inc), 1);
    });
  }
  const int rank_last = std::min(dsts.last(), split - 1);
  if (rank_last < dsts.first) return;
  const NodeRange span{dsts.first, rank_last - dsts.first + 1};

  // Fork+exec skew across the span: the MM observes addr_launched only
  // through an all-of conditional, so one fill at the latest fork is
  // indistinguishable from per-node writes at their own times.
  SimTime min_fork = SimTime::max();
  SimTime max_fork = SimTime::zero();
  for (int n = span.first; n <= span.last(); ++n) {
    const int nranks = j.ranks_on_node(n);
    for (int k = 0; k < nranks; ++k) {
      const SimTime f = sample_fork(id, inc, n, k);
      min_fork = std::min(min_fork, f);
      max_fork = std::max(max_fork, f);
    }
  }

  sim.schedule_after(t0 + min_fork - sim.now(), [this, id, inc] {
    Job& jb = cluster_.job(id);
    if (jb.incarnation() != inc) return;
    if (jb.times().first_proc_started == SimTime::zero()) {
      jb.times().first_proc_started = cluster_.sim().now();
    }
  });

  const SimTime work = j.spec().plane_work;
  sim.schedule_after(
      t0 + max_fork - sim.now(), [this, id, inc, span, work] {
        Job& jb = cluster_.job(id);
        if (jb.incarnation() != inc) return;
        auto& sim2 = cluster_.sim();
        cluster_.network().plane().fill_words(span, addr_launched(id, inc),
                                              1);
        if (work == SimTime::zero()) {
          // Do-nothing program: the PEs exit as soon as they exist.
          jb.times().last_proc_exited =
              std::max(jb.times().last_proc_exited, sim2.now());
          sim2.schedule_after(cluster_.config().storm.pl_notify_cost,
                              [this, id, inc, span] {
                                if (cluster_.job(id).incarnation() != inc) {
                                  return;
                                }
                                cluster_.network().plane().fill_words(
                                    span, addr_done(id, inc), 1);
                              });
          return;
        }
        // Gang work accounting starts once every PE is up (the skew is
        // lognormal-thin next to plane_work).
        GangJob& g = gangs_[id];
        g = GangJob{};
        g.inc = inc;
        g.row = jb.row();
        g.span = span;
        g.remaining = work;
        g.started = true;
        g.ever_suspended = jb.row() != current_row_;
        if (!g.ever_suspended) activate(id, g, sim2.now());
      });
}

bool PlaneRuntime::on_remote_signal(int src, NodeRange dsts,
                                    net::EventAddr ev) {
  (void)src;
  if (ev < kJobEventBase) return false;
  const int rel = ev - kJobEventBase;
  if (rel % kEventsPerJob != 0) return false;  // not an ev_chunk signal
  const auto it = sinks_.find(rel / kEventsPerJob);
  if (it == sinks_.end()) return false;
  Sink& s = it->second;
  SinkSub* sub = nullptr;
  for (auto& cand : s.subs) {
    if (cand.range.first == dsts.first) {
      sub = &cand;
      break;
    }
  }
  if (sub == nullptr) {
    for (auto& cand : s.subs) {
      if (cand.range.contains(dsts.first)) {
        sub = &cand;
        break;
      }
    }
  }
  if (sub == nullptr) return false;

  // Every destination receives the multicast chunk simultaneously and
  // drains its RAM-disk write pipe at the same rate, so the subrange
  // advances in lockstep: one completion event fills addr_written.
  auto& sim = cluster_.sim();
  const int chunk = sub->next_chunk++;
  const SimTime done =
      std::max(sim.now(), sub->pipe_free) + s.write_cost;
  sub->pipe_free = done;
  const JobId id = s.job;
  const int inc = s.inc;
  const NodeRange range = sub->range;
  sim.schedule_after(done - sim.now(), [this, id, inc, range, chunk] {
    if (cluster_.job(id).incarnation() != inc) return;
    cluster_.network().plane().fill_words(range, addr_written(id, inc),
                                          chunk + 1);
  });
  return true;
}

}  // namespace storm::core
