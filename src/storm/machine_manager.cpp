#include "storm/machine_manager.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "storm/batch_scheduler.hpp"
#include "storm/cluster.hpp"
#include "storm/file_transfer.hpp"
#include "telemetry/metrics.hpp"

namespace storm::core {

using fabric::Component;
using fabric::ControlMessage;
using mech::kNoWrite;
using net::Compare;
using net::NodeRange;
using sim::SimTime;
using sim::Task;

MachineManager::MachineManager(Cluster& cluster) : cluster_(cluster) {
  const auto& cfg = cluster_.config();
  assert(BuddyAllocator::is_pow2(cfg.nodes) &&
         "the buddy allocator requires a power-of-two node count");
  const bool time_shared = cfg.storm.scheduler == SchedulerKind::Gang ||
                           is_locally_scheduled(cfg.storm.scheduler);
  const int rows = time_shared ? cfg.storm.max_mpl : 1;
  matrix_ = std::make_unique<OusterhoutMatrix>(cfg.nodes, rows);
  const int daemon_cpu = cfg.cpus_per_node - 1;
  proc_ = &cluster_.machine(cluster_.mm_node())
               .os()
               .create("mm", daemon_cpu);

  telemetry::MetricsRegistry& m = cluster_.metrics();
  mt_boundary_ = &m.histogram("mm.boundary_ns");
  mt_strobes_ = &m.counter("mm.strobes");
  mt_launches_ = &m.counter("mm.launches");
  mt_completed_ = &m.counter("mm.jobs.completed");
  mt_heartbeats_ = &m.counter("mm.heartbeat.rounds");
  mt_occupancy_ = &m.gauge("mm.matrix.occupancy");
  mt_free_slots_ = &m.gauge("mm.matrix.free_node_slots");
}

void MachineManager::start() { cluster_.sim().spawn(run()); }

JobId MachineManager::submit(JobSpec spec) {
  const auto& cfg = cluster_.config();
  if (spec.npes < 1 ||
      spec.npes > cfg.nodes * cfg.app_cpus_per_node) {
    throw std::invalid_argument(
        "JobSpec.npes (" + std::to_string(spec.npes) +
        ") outside machine capacity (" +
        std::to_string(cfg.nodes * cfg.app_cpus_per_node) + " PEs)");
  }
  if (spec.binary_size <= 0) {
    throw std::invalid_argument("JobSpec.binary_size must be positive");
  }
  if (!spec.program) spec.program = do_nothing_program();
  const JobId id = static_cast<JobId>(jobs_.size());
  jobs_.push_back(std::make_unique<Job>(id, std::move(spec)));
  jobs_.back()->times().submit = cluster_.sim().now();
  queue_.push_back(id);
  transfer_flag_.push_back(false);
  return id;
}

bool MachineManager::all_done() const {
  return completed_ == static_cast<int>(jobs_.size());
}

NodeRange MachineManager::compute_nodes() const {
  return NodeRange{0, cluster_.config().nodes};
}

Task<> MachineManager::run() {
  const SimTime q = cluster_.config().storm.quantum;
  for (;;) {
    co_await boundary_work();
    // Sleep to the next boundary on the absolute quantum grid (the
    // boundary work itself takes time; never drift).
    const SimTime now = cluster_.sim().now();
    const std::int64_t k = now / q + 1;
    co_await cluster_.sim().delay(q * k - now);
  }
}

Task<> MachineManager::boundary_work() {
  const StormParams& sp = cluster_.config().storm;
  telemetry::Span span(cluster_.sim(), *mt_boundary_);
  co_await proc_->compute(sp.mm_boundary_cost);
  co_await observe_jobs();
  allocate_queued();
  co_await issue_launches();
  co_await strobe();
  if (sp.heartbeat_enabled && slice_ % sp.heartbeat_period_quanta == 0) {
    co_await heartbeat_round();
  }
  ++slice_;
  mt_occupancy_->set(matrix_->occupancy());
  mt_free_slots_->set(static_cast<double>(matrix_->free_node_slots()));
}

Task<> MachineManager::observe_jobs() {
  auto& fab = cluster_.fabric();
  const int mm = cluster_.mm_node();
  const SimTime now = cluster_.sim().now();

  // Terminations first: they free resources for this boundary's
  // allocation pass.
  for (auto it = running_.begin(); it != running_.end();) {
    Job& j = job(*it);
    const bool done = co_await fab.compare_and_write(
        Component::MM, ControlMessage::termination_report(j.id()), mm,
        j.nodes(), addr_done(j.id()), Compare::EQ, 1, kNoWrite, 0);
    if (done) {
      j.set_state(JobState::Completed);
      j.times().finished = cluster_.sim().now();
      matrix_->remove(j.id());
      ++completed_;
      mt_completed_->add(1);
      fab.note(Component::MM, mm, ControlMessage::termination_report(j.id()));
      it = running_.erase(it);
    } else {
      ++it;
    }
  }

  for (auto it = launching_.begin(); it != launching_.end();) {
    Job& j = job(*it);
    const bool started = co_await fab.compare_and_write(
        Component::MM, ControlMessage::launch_report(j.id()), mm, j.nodes(),
        addr_launched(j.id()), Compare::EQ, 1, kNoWrite, 0);
    if (started) {
      j.set_state(JobState::Running);
      j.times().started = cluster_.sim().now();
      // A short job may have forked *and* exited inside one quantum
      // (the do-nothing launch benchmarks always do): check
      // termination in the same boundary rather than waiting another
      // full timeslice.
      const bool done = co_await fab.compare_and_write(
          Component::MM, ControlMessage::termination_report(j.id()), mm,
          j.nodes(), addr_done(j.id()), Compare::EQ, 1, kNoWrite, 0);
      if (done) {
        j.set_state(JobState::Completed);
        j.times().finished = cluster_.sim().now();
        matrix_->remove(j.id());
        ++completed_;
        mt_completed_->add(1);
      } else {
        running_.push_back(*it);
      }
      it = launching_.erase(it);
    } else {
      ++it;
    }
  }

  for (auto it = transferring_.begin(); it != transferring_.end();) {
    Job& j = job(*it);
    if (transfer_flag_[j.id()]) {
      j.set_state(JobState::Ready);
      j.times().transfer_done = now;
      ready_.push_back(*it);
      it = transferring_.erase(it);
    } else {
      ++it;
    }
  }
  co_return;
}

void MachineManager::allocate_queued() {
  const auto& cfg = cluster_.config();
  const StormParams& sp = cfg.storm;
  if (queue_.empty()) return;

  // Which queued jobs should start now?
  std::vector<JobId> to_start;
  if (sp.scheduler == SchedulerKind::Gang ||
      is_locally_scheduled(sp.scheduler)) {
    // Greedy in submission order: any job the matrix can host starts.
    for (const JobId id : queue_) {
      const Job& j = job(id);
      const int nodes_needed = (j.spec().npes + cfg.app_cpus_per_node - 1) /
                               cfg.app_cpus_per_node;
      // Try every row via the matrix; placement happens below, so here
      // we optimistically select and let placement filter.
      (void)nodes_needed;
      to_start.push_back(id);
    }
  } else {
    std::vector<QueuedJobInfo> q;
    for (const JobId id : queue_) {
      const Job& j = job(id);
      const int nodes_needed = (j.spec().npes + cfg.app_cpus_per_node - 1) /
                               cfg.app_cpus_per_node;
      q.push_back(QueuedJobInfo{id, BuddyAllocator::round_up_pow2(nodes_needed),
                                j.spec().estimated_runtime});
    }
    const SimTime now = cluster_.sim().now();
    auto make_running_info = [&](JobId id) {
      const Job& j = job(id);
      const SimTime base = j.state() == JobState::Running &&
                                   j.times().started > SimTime::zero()
                               ? j.times().started
                               : now;
      return RunningJobInfo{j.nodes().count, base + j.spec().estimated_runtime};
    };
    std::vector<RunningJobInfo> r;
    for (const JobId id : transferring_) r.push_back(make_running_info(id));
    for (const JobId id : ready_) r.push_back(make_running_info(id));
    for (const JobId id : launching_) r.push_back(make_running_info(id));
    for (const JobId id : running_) r.push_back(make_running_info(id));
    int free_nodes = cfg.nodes;
    for (const auto& ri : r) free_nodes -= ri.nodes;
    BatchPolicy policy = BatchPolicy::Fcfs;
    if (sp.scheduler == SchedulerKind::BatchEasy) policy = BatchPolicy::Easy;
    if (sp.scheduler == SchedulerKind::BatchConservative) {
      policy = BatchPolicy::Conservative;
    }
    to_start = batch_pick(q, std::move(r), free_nodes, cfg.nodes,
                          cluster_.sim().now(), policy);
  }

  for (const JobId id : to_start) {
    Job& j = job(id);
    const int nodes_needed = (j.spec().npes + cfg.app_cpus_per_node - 1) /
                             cfg.app_cpus_per_node;
    auto placed = matrix_->place(id, nodes_needed);
    if (!placed) continue;  // fragmentation or full matrix: stay queued
    j.set_allocation(placed->second, placed->first);
    j.set_pes_per_node(std::min(cfg.app_cpus_per_node, j.spec().npes));
    j.set_state(JobState::Transferring);
    j.times().transfer_start = cluster_.sim().now();
    cluster_.fabric().note(Component::MM, cluster_.mm_node(),
                           ControlMessage::prepare_transfer(
                               id, placed->second.count, placed->first));
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
    transferring_.push_back(id);
    cluster_.sim().spawn(transfer_binary(j));
  }
}

Task<> MachineManager::transfer_binary(Job& job_) {
  (void)co_await FileTransfer::send(cluster_, job_);
  transfer_flag_[job_.id()] = true;
}

Task<> MachineManager::issue_launches() {
  for (const JobId id : ready_) {
    Job& j = job(id);
    j.times().launch_issued = cluster_.sim().now();
    j.set_state(JobState::Launching);
    mt_launches_->add(1);
    co_await cluster_.multicast_command(Component::MM, j.nodes(),
                                        ControlMessage::launch(id));
    launching_.push_back(id);
  }
  ready_.clear();
}

Task<> MachineManager::strobe() {
  if (cluster_.config().storm.scheduler != SchedulerKind::Gang) co_return;
  const std::vector<int> rows = matrix_->active_rows();
  if (rows.empty()) co_return;
  const int row = rows[static_cast<std::size_t>(slice_) % rows.size()];
  ++strobes_;
  mt_strobes_->add(1);
  co_await cluster_.multicast_command(Component::MM, compute_nodes(),
                                      ControlMessage::strobe(row));
}

Task<> MachineManager::heartbeat_round() {
  auto& fab = cluster_.fabric();
  const int mm = cluster_.mm_node();
  const NodeRange all = compute_nodes();
  mt_heartbeats_->add(1);

  // Check the previous epoch before advancing: every live node must
  // have acknowledged it (COMPARE-AND-WRITE over the whole machine).
  if (hb_epoch_ > 0) {
    const bool ok = co_await fab.compare_and_write(
        Component::MM, ControlMessage::heartbeat(hb_epoch_), mm, all,
        kHeartbeatAddr, Compare::GE, hb_epoch_, kNoWrite, 0);
    if (!ok) {
      // Isolate the failed slave(s) node by node.
      for (int n = all.first; n <= all.last(); ++n) {
        if (std::find(failed_.begin(), failed_.end(), n) != failed_.end()) {
          continue;
        }
        const bool alive = co_await fab.compare_and_write(
            Component::MM, ControlMessage::heartbeat(hb_epoch_), mm,
            NodeRange{n, 1}, kHeartbeatAddr, Compare::GE, hb_epoch_, kNoWrite,
            0);
        if (!alive) {
          failed_.push_back(n);
          if (on_failure_) on_failure_(n, cluster_.sim().now());
        }
      }
    }
  }

  ++hb_epoch_;
  co_await cluster_.multicast_command(Component::MM, all,
                                      ControlMessage::heartbeat(hb_epoch_));
}

}  // namespace storm::core
