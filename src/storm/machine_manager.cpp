#include "storm/machine_manager.hpp"

#include <algorithm>
#include <cassert>

#include "storm/batch_scheduler.hpp"
#include "storm/cluster.hpp"
#include "storm/file_transfer.hpp"
#include "storm/node_manager.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace storm::core {

using fabric::Component;
using fabric::ControlMessage;
using mech::kNoWrite;
using net::Compare;
using net::NodeRange;
using sim::SimTime;
using sim::Task;
using telemetry::SpanKind;
using telemetry::TraceSpan;

MachineManager::MachineManager(Cluster& cluster, int node, bool standby)
    : cluster_(cluster), node_(node), standby_(standby), active_(!standby) {
  const auto& cfg = cluster_.config();
  assert(node >= 0 && node < cfg.nodes);
  assert(BuddyAllocator::is_pow2(cfg.nodes) &&
         "the buddy allocator requires a power-of-two node count");
  const bool time_shared = cfg.storm.scheduler == SchedulerKind::Gang ||
                           is_locally_scheduled(cfg.storm.scheduler);
  const int rows = time_shared ? cfg.storm.max_mpl : 1;
  matrix_ = std::make_unique<OusterhoutMatrix>(cfg.nodes, rows);

  // The MM's host helper: the "lightweight process running on the
  // host, which services TLB misses and performs file accesses on
  // behalf of the NIC" (Section 3.3.1). It gets its own CPU where the
  // node has more than one, so that under normal conditions it only
  // contends with co-located application PEs (the NM on the last CPU
  // is busy writing fragments during a transfer).
  const int helper_cpu = cfg.cpus_per_node >= 2 ? cfg.cpus_per_node - 2 : 0;
  auto& os = cluster_.machine(node_).os();
  helper_ = &os.create(standby ? "mm-helper.standby" : "mm-helper", helper_cpu);
  proc_ = &os.create(standby ? "mm.standby" : "mm", cfg.cpus_per_node - 1);

  telemetry::MetricsRegistry& m = cluster_.metrics();
  mt_boundary_ = &m.histogram("mm.boundary_ns");
  mt_strobes_ = &m.counter("mm.strobes");
  mt_launches_ = &m.counter("mm.launches");
  mt_completed_ = &m.counter("mm.jobs.completed");
  mt_heartbeats_ = &m.counter("mm.heartbeat.rounds");
  mt_occupancy_ = &m.gauge("mm.matrix.occupancy");
  mt_free_slots_ = &m.gauge("mm.matrix.free_node_slots");
  mt_kills_ = &m.counter("mm.recovery.kills");
  mt_requeues_ = &m.counter("mm.recovery.requeues");
  mt_aborts_ = &m.counter("mm.recovery.aborts");
  mt_evictions_ = &m.counter("mm.recovery.evictions");
  mt_rejoins_ = &m.counter("mm.recovery.rejoins");
  mt_requeue_run_ = &m.histogram("mm.recovery.requeue_to_run_ns");
  mt_fo_count_ = &m.counter("mm.failover.count");
  mt_fo_gap_ = &m.histogram("mm.failover.gap_ns");
  mt_fo_resume_ = &m.histogram("mm.failover.resume_ns");
}

void MachineManager::start() { cluster_.sim().spawn(run()); }

void MachineManager::enqueue(JobId id) {
  if (static_cast<std::size_t>(id) >= transfer_flag_.size()) {
    transfer_flag_.resize(static_cast<std::size_t>(id) + 1, false);
  }
  queue_.push_back(id);
}

Job& MachineManager::job(JobId id) { return cluster_.job(id); }
const Job& MachineManager::job(JobId id) const { return cluster_.job(id); }
std::size_t MachineManager::job_count() const { return cluster_.job_count(); }

bool MachineManager::all_done() const { return cluster_.all_jobs_terminal(); }

void MachineManager::crash() {
  if (crashed_) return;
  crashed_ = true;
  proc_->cancel_work();
  helper_->cancel_work();
}

NodeRange MachineManager::compute_nodes() const {
  return NodeRange{0, cluster_.config().nodes};
}

Task<> MachineManager::run() {
  const SimTime q = cluster_.config().storm.quantum;
  if (standby_) {
    if (repl_ != nullptr) {
      // Quorum failover: adopt the instant this rank wins its
      // term-bumped election, not after a silence timeout.
      co_await repl_->takeover(repl_rank_).wait();
      if (crashed_) co_return;
      co_await failover();
    } else {
      co_await standby_watch();
      if (crashed_) co_return;
      co_await failover();
    }
  }
  for (;;) {
    if (crashed_) co_return;
    // A replica without the lease issues nothing: a deposed or
    // partitioned leader falls silent here while the quorum side
    // carries on.
    if (repl_ == nullptr || repl_->may_lead(repl_rank_)) {
      co_await boundary_work();
      if (crashed_) co_return;
    }
    // Sleep to the next boundary on the absolute quantum grid (the
    // boundary work itself takes time; never drift).
    const SimTime now = cluster_.sim().now();
    const std::int64_t k = now / q + 1;
    co_await cluster_.sim().delay(q * k - now);
  }
}

Task<bool> MachineManager::commit_command(EntryKind kind, JobId job_id,
                                          std::int64_t args) {
  co_return co_await repl_->replicate(repl_rank_, kind, job_id, args);
}

Task<> MachineManager::standby_watch() {
  const StormParams& sp = cluster_.config().storm;
  const SimTime q = sp.quantum;
  // The liveness signal is the primary's command stream into our own
  // node's NM (heartbeats reach every node even when the machine is
  // idle). Silence past this threshold means the primary is gone.
  const SimTime threshold =
      q * (sp.heartbeat_period_quanta * sp.standby_miss_periods);
  // Sample mid-quantum so the observation never races the primary's
  // own boundary work on the grid. One periodic cohort member replaces
  // the re-armed delay chain: same drift-free sample instants
  // (q*k + q/2), but the heap sees one shared event per period.
  sim::Simulator& sim = cluster_.sim();
  const std::int64_t k = sim.now() / q + 1;
  sim::Trigger done(sim);
  const sim::PeriodicId id =
      sim.schedule_periodic(q, q * k + q / 2, [this, &done, threshold] {
        if (crashed_) {
          done.fire();
          return;
        }
        const SimTime last = cluster_.nm(node_).last_cmd_time();
        if (cluster_.sim().now() - last > threshold) done.fire();
      });
  co_await done.wait();
  sim.cancel_periodic(id);
}

void MachineManager::mark_terminal(Job& j, JobState st) {
  j.set_state(st);
  j.times().finished = cluster_.sim().now();
  if (telemetry::CausalTracer* tr = cluster_.tracer()) {
    tr->close_job(j.id(), j.incarnation());
  }
  ++completed_;
}

Task<> MachineManager::failover() {
  const SimTime t_detect = cluster_.sim().now();
  // Quorum mode measures the gap from the old leader's last renewal
  // the group heard to the election win; hot-standby from the last
  // command our NM saw to the silence-threshold trip.
  const SimTime gap = repl_ != nullptr
                          ? repl_->last_failover_gap()
                          : t_detect - cluster_.nm(node_).last_cmd_time();
  active_ = true;
  mt_fo_count_->add(1);
  mt_fo_gap_->record(gap);
  TraceSpan fo_span;
  if (telemetry::CausalTracer* tr = cluster_.tracer()) {
    fo_span = tr->begin(SpanKind::MmFailover, node_, {});
  }
  cluster_.fabric().note(Component::MM, node_, ControlMessage::generic(),
                         fo_span.context());

  // Rebuild the scheduling state from the cluster-owned job table:
  // adopt Running jobs at their recorded allocation, requeue Queued
  // ones, and kill anything whose in-flight protocol state (transfer
  // pipeline, launch conditionals) died with the primary.
  co_await proc_->compute(cluster_.config().storm.mm_boundary_cost);
  transfer_flag_.assign(cluster_.job_count(), false);
  // The rebuild below re-adds every Queued job from the job table; any
  // submission that raced into our queue while we were passive would
  // otherwise be allocated twice.
  queue_.clear();
  for (JobId id = 0; id < static_cast<JobId>(cluster_.job_count()); ++id) {
    Job& j = cluster_.job(id);
    switch (j.state()) {
      case JobState::Completed:
      case JobState::Aborted:
        ++completed_;
        break;
      case JobState::Queued:
        queue_.push_back(id);
        break;
      case JobState::Running:
        if (matrix_->place_at(id, j.row(), j.nodes())) {
          running_.push_back(id);
        } else {
          co_await kill_job(j);
        }
        break;
      default:  // Transferring / Ready / Launching
        co_await kill_job(j);
        break;
    }
  }
  if (repl_ != nullptr) {
    // Log the adoption itself: followers learn the schedule changed
    // hands, and the entry's commit proves this replica still holds
    // the lease it won.
    (void)co_await commit_command(EntryKind::Sched, 0, slice_);
    if (crashed_) co_return;
  }
  co_await strobe(fo_span.context());
  mt_fo_resume_->record(cluster_.sim().now() - t_detect);
}

Task<> MachineManager::boundary_work() {
  const StormParams& sp = cluster_.config().storm;
  telemetry::Span span(cluster_.sim(), *mt_boundary_);
  TraceSpan tspan;
  if (telemetry::CausalTracer* tr = cluster_.tracer()) {
    tspan = tr->begin(SpanKind::MmBoundary, node_, {}, slice_);
  }
  co_await proc_->compute(sp.mm_boundary_cost);
  if (crashed_) co_return;
  co_await observe_jobs(tspan.context());
  if (crashed_) co_return;
  co_await allocate_queued();
  if (crashed_) co_return;
  co_await issue_launches(tspan.context());
  if (crashed_) co_return;
  co_await strobe(tspan.context());
  if (crashed_) co_return;
  if (sp.heartbeat_enabled && slice_ % sp.heartbeat_period_quanta == 0) {
    co_await heartbeat_round(tspan.context());
  }
  ++slice_;
  mt_occupancy_->set(matrix_->occupancy());
  mt_free_slots_->set(static_cast<double>(matrix_->free_node_slots()));
}

Task<> MachineManager::observe_jobs(fabric::TraceContext ctx) {
  (void)ctx;  // observation spans live in each job's own trace
  auto& fab = cluster_.fabric();
  telemetry::CausalTracer* tr = cluster_.tracer();
  const SimTime now = cluster_.sim().now();

  auto observe_running = [&](Job& j) {
    j.set_state(JobState::Running);
    j.times().started = cluster_.sim().now();
    if (j.times().last_requeue != SimTime::zero()) {
      // The replacement incarnation of a killed-and-requeued job is
      // back on CPUs: close the recovery-latency measurement.
      mt_requeue_run_->record(cluster_.sim().now() - j.times().last_requeue);
      j.times().last_requeue = SimTime::zero();
    }
  };

  // Terminations first: they free resources for this boundary's
  // allocation pass.
  for (auto it = running_.begin(); it != running_.end();) {
    if (crashed_) co_return;
    Job& j = job(*it);
    TraceSpan span;
    if (tr != nullptr) {
      span = tr->begin(SpanKind::MmObserve, node_,
                       tr->job_root(j.id(), j.incarnation(), node_), j.id());
    }
    const bool done = co_await fab.compare_and_write(
        Component::MM, ControlMessage::termination_report(j.id()), node_,
        j.nodes(), addr_done(j.id(), j.incarnation()), Compare::EQ, 1,
        kNoWrite, 0, span.context());
    if (done) {
      mark_terminal(j, JobState::Completed);
      matrix_->remove(j.id());
      mt_completed_->add(1);
      fab.note(Component::MM, node_,
               ControlMessage::termination_report(j.id()), span.context());
      it = running_.erase(it);
    } else {
      ++it;
    }
  }

  for (auto it = launching_.begin(); it != launching_.end();) {
    if (crashed_) co_return;
    Job& j = job(*it);
    TraceSpan span;
    if (tr != nullptr) {
      span = tr->begin(SpanKind::MmObserve, node_,
                       tr->job_root(j.id(), j.incarnation(), node_), j.id());
    }
    const bool started = co_await fab.compare_and_write(
        Component::MM, ControlMessage::launch_report(j.id()), node_, j.nodes(),
        addr_launched(j.id(), j.incarnation()), Compare::EQ, 1, kNoWrite, 0,
        span.context());
    if (started) {
      observe_running(j);
      // A short job may have forked *and* exited inside one quantum
      // (the do-nothing launch benchmarks always do): check
      // termination in the same boundary rather than waiting another
      // full timeslice.
      const bool done = co_await fab.compare_and_write(
          Component::MM, ControlMessage::termination_report(j.id()), node_,
          j.nodes(), addr_done(j.id(), j.incarnation()), Compare::EQ, 1,
          kNoWrite, 0, span.context());
      if (done) {
        mark_terminal(j, JobState::Completed);
        matrix_->remove(j.id());
        mt_completed_->add(1);
      } else {
        running_.push_back(*it);
      }
      it = launching_.erase(it);
    } else {
      ++it;
    }
  }

  for (auto it = transferring_.begin(); it != transferring_.end();) {
    Job& j = job(*it);
    if (transfer_flag_[j.id()]) {
      j.set_state(JobState::Ready);
      j.times().transfer_done = now;
      ready_.push_back(*it);
      it = transferring_.erase(it);
    } else {
      ++it;
    }
  }
  co_return;
}

Task<> MachineManager::allocate_queued() {
  const auto& cfg = cluster_.config();
  const StormParams& sp = cfg.storm;
  if (queue_.empty()) co_return;

  // Which queued jobs should start now?
  std::vector<JobId> to_start;
  if (sp.scheduler == SchedulerKind::Gang ||
      is_locally_scheduled(sp.scheduler)) {
    // Greedy in submission order: any job the matrix can host starts.
    for (const JobId id : queue_) {
      to_start.push_back(id);
    }
  } else {
    std::vector<QueuedJobInfo> q;
    for (const JobId id : queue_) {
      const Job& j = job(id);
      const int nodes_needed = (j.spec().npes + cfg.app_cpus_per_node - 1) /
                               cfg.app_cpus_per_node;
      q.push_back(QueuedJobInfo{id, BuddyAllocator::round_up_pow2(nodes_needed),
                                j.spec().estimated_runtime});
    }
    const SimTime now = cluster_.sim().now();
    auto make_running_info = [&](JobId id) {
      const Job& j = job(id);
      const SimTime base = j.state() == JobState::Running &&
                                   j.times().started > SimTime::zero()
                               ? j.times().started
                               : now;
      return RunningJobInfo{j.nodes().count, base + j.spec().estimated_runtime};
    };
    std::vector<RunningJobInfo> r;
    for (const JobId id : transferring_) r.push_back(make_running_info(id));
    for (const JobId id : ready_) r.push_back(make_running_info(id));
    for (const JobId id : launching_) r.push_back(make_running_info(id));
    for (const JobId id : running_) r.push_back(make_running_info(id));
    int free_nodes = cfg.nodes;
    for (const auto& ri : r) free_nodes -= ri.nodes;
    BatchPolicy policy = BatchPolicy::Fcfs;
    if (sp.scheduler == SchedulerKind::BatchEasy) policy = BatchPolicy::Easy;
    if (sp.scheduler == SchedulerKind::BatchConservative) {
      policy = BatchPolicy::Conservative;
    }
    to_start = batch_pick(q, std::move(r), free_nodes, cfg.nodes,
                          cluster_.sim().now(), policy);
  }

  for (const JobId id : to_start) {
    Job& j = job(id);
    const int nodes_needed = (j.spec().npes + cfg.app_cpus_per_node - 1) /
                             cfg.app_cpus_per_node;
    auto placed = matrix_->place(id, nodes_needed);
    if (!placed) continue;  // fragmentation or full matrix: stay queued
    if (repl_ != nullptr) {
      // Commit the placement before any of its effects become visible
      // (matrix slot is tentative until then). A failed commit means
      // we lost the lease mid-boundary: undo and stop issuing.
      const std::int64_t args = static_cast<std::int64_t>(placed->first) |
                                (static_cast<std::int64_t>(placed->second.first)
                                 << 16) |
                                (static_cast<std::int64_t>(placed->second.count)
                                 << 40);
      const bool ok = co_await commit_command(EntryKind::Place, id, args);
      if (crashed_) co_return;
      if (!ok) {
        matrix_->remove(id);
        co_return;
      }
    }
    j.set_allocation(placed->second, placed->first);
    j.set_pes_per_node(std::min(cfg.app_cpus_per_node, j.spec().npes));
    j.set_state(JobState::Transferring);
    j.times().transfer_start = cluster_.sim().now();
    transfer_flag_[id] = false;
    fabric::TraceContext root{};
    if (telemetry::CausalTracer* tr = cluster_.tracer()) {
      // Placement is the birth of the launch: open the job's trace.
      root = tr->job_root(id, j.incarnation(), node_);
    }
    cluster_.fabric().note(
        Component::MM, node_,
        ControlMessage::prepare_transfer(id, placed->second.count,
                                         placed->first, j.incarnation()),
        root);
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
    transferring_.push_back(id);
    cluster_.sim().spawn(transfer_binary(j));
  }
}

Task<> MachineManager::transfer_binary(Job& job_) {
  const int inc = job_.incarnation();
  (void)co_await FileTransfer::send(cluster_, *this, job_);
  // The result only matters if nothing was killed under us meanwhile.
  if (!crashed_ && job_.incarnation() == inc &&
      static_cast<std::size_t>(job_.id()) < transfer_flag_.size()) {
    transfer_flag_[job_.id()] = true;
  }
}

Task<> MachineManager::issue_launches(fabric::TraceContext ctx) {
  (void)ctx;  // launch-issue spans live in each job's own trace
  telemetry::CausalTracer* tr = cluster_.tracer();
  for (const JobId id : ready_) {
    if (crashed_) co_return;
    Job& j = job(id);
    j.times().launch_issued = cluster_.sim().now();
    j.set_state(JobState::Launching);
    mt_launches_->add(1);
    TraceSpan span;
    if (tr != nullptr) {
      span = tr->begin(SpanKind::MmLaunchIssue, node_,
                       tr->job_root(id, j.incarnation(), node_), id,
                       j.incarnation());
    }
    co_await cluster_.multicast_command(
        Component::MM, node_, j.nodes(),
        ControlMessage::launch(id, j.incarnation()), span.context());
    launching_.push_back(id);
  }
  ready_.clear();
}

Task<> MachineManager::strobe(fabric::TraceContext ctx) {
  if (cluster_.config().storm.scheduler != SchedulerKind::Gang) co_return;
  const int nrows = matrix_->active_row_count();
  if (nrows == 0) co_return;
  const int row = matrix_->nth_active_row(static_cast<int>(slice_ % nrows));
  ++strobes_;
  mt_strobes_->add(1);
  TraceSpan span;
  if (telemetry::CausalTracer* tr = cluster_.tracer()) {
    span = tr->begin(SpanKind::MmStrobe, node_, ctx, row);
  }
  co_await cluster_.multicast_command(Component::MM, node_, compute_nodes(),
                                      ControlMessage::strobe(row),
                                      span.context());
}

Task<> MachineManager::kill_job(Job& j) {
  const StormParams& sp = cluster_.config().storm;
  const JobId id = j.id();
  const int inc = j.incarnation();
  const NodeRange alloc = j.nodes();

  if (repl_ != nullptr) {
    // Commit the kill before touching any scheduler state: a deposed
    // leader must not bump incarnations or wake channels.
    const bool ok = co_await commit_command(EntryKind::Kill, id, inc);
    if (crashed_ || !ok) co_return;
  }
  if (matrix_->contains(id)) matrix_->remove(id);
  std::erase(transferring_, id);
  std::erase(ready_, id);
  std::erase(launching_, id);
  std::erase(running_, id);
  if (static_cast<std::size_t>(id) < transfer_flag_.size()) {
    transfer_flag_[id] = false;
  }

  telemetry::CausalTracer* tr = cluster_.tracer();
  TraceSpan span;
  if (tr != nullptr) {
    span = tr->begin(SpanKind::MmKill, node_, tr->job_root(id, inc, node_),
                     id, inc);
  }

  // Bump first, then wake: every coroutine of the old incarnation —
  // PEs blocked in recv, the transfer pipeline, in-flight launches —
  // observes the stale incarnation on its next step and fast-forwards
  // to exit, releasing its flow-control slots and PL with it.
  j.bump_incarnation();
  mt_kills_->add(1);
  cluster_.wake_job_channels(id, inc);
  if (!alloc.empty()) {
    // Tell the surviving NMs to cancel their local PEs of the old
    // incarnation (the dead node's NM is gone; delivery skips it).
    co_await cluster_.multicast_command(Component::MM, node_, alloc,
                                       ControlMessage::kill(id, inc),
                                       span.context());
  }
  span.end();
  if (tr != nullptr) tr->close_job(id, inc);  // the incarnation's trace ends

  const bool requeue = sp.failure_policy == FailurePolicy::Requeue &&
                       j.incarnation() < kMaxIncarnations &&
                       j.restarts() <= sp.max_job_restarts;
  if (requeue) {
    j.set_state(JobState::Queued);
    j.times().last_requeue = cluster_.sim().now();
    queue_.push_back(id);
    mt_requeues_->add(1);
  } else {
    mark_terminal(j, JobState::Aborted);
    mt_aborts_->add(1);
  }
}

Task<> MachineManager::handle_node_failures(const std::vector<int>& fresh) {
  for (const int n : fresh) {
    // Kill (and per policy requeue) every job spanning the dead node.
    for (JobId id = 0; id < static_cast<JobId>(cluster_.job_count()); ++id) {
      Job& j = cluster_.job(id);
      const JobState st = j.state();
      if (st == JobState::Queued || st == JobState::Completed ||
          st == JobState::Aborted) {
        continue;
      }
      if (j.nodes().contains(n)) co_await kill_job(j);
    }
    // Take the node out of every buddy tree so no future placement
    // touches it.
    if (repl_ != nullptr) {
      const bool ok = co_await commit_command(EntryKind::Evict, 0, n);
      if (crashed_ || !ok) co_return;
    }
    if (matrix_->evict_node(n)) mt_evictions_->add(1);
  }
  // Resynchronise the survivors: the next timeslot switch must not
  // wait for acknowledgement state the dead nodes will never produce.
  co_await strobe();
}

void MachineManager::handle_node_recovered(int node) {
  cluster_.sim().spawn(node_rejoin(node));
}

Task<> MachineManager::node_rejoin(int node) {
  co_await proc_->compute(cluster_.config().storm.mm_boundary_cost);
  if (crashed_) co_return;
  const auto it = std::find(failed_.begin(), failed_.end(), node);
  if (it != failed_.end()) {
    // The death had been detected and handled: re-admit the node with
    // its clean slate.
    if (repl_ != nullptr) {
      const bool ok = co_await commit_command(EntryKind::Rejoin, 0, node);
      if (crashed_ || !ok) co_return;
    }
    failed_.erase(it);
    matrix_->restore_node(node);
    mt_rejoins_->add(1);
    // Re-registration handshake: seed the recovered node's heartbeat
    // word with the current epoch so the next detection round does not
    // immediately re-declare it dead (the NM itself only writes the
    // word when the *next* heartbeat command arrives).
    cluster_.mech().write_local(node, kHeartbeatAddr, hb_epoch_);
  } else {
    // The outage was shorter than a heartbeat period and never
    // detected — but the node's dæmon state and NIC words are gone,
    // so every job spanning it is suspect and must be restarted.
    for (JobId id = 0; id < static_cast<JobId>(cluster_.job_count()); ++id) {
      Job& j = cluster_.job(id);
      const JobState st = j.state();
      if (st == JobState::Queued || st == JobState::Completed ||
          st == JobState::Aborted) {
        continue;
      }
      if (j.nodes().contains(node)) co_await kill_job(j);
    }
  }
}

Task<> MachineManager::heartbeat_round(fabric::TraceContext ctx) {
  auto& fab = cluster_.fabric();
  const auto& sp = cluster_.config().storm;
  const NodeRange all = compute_nodes();
  mt_heartbeats_->add(1);
  TraceSpan span;
  if (telemetry::CausalTracer* tr = cluster_.tracer()) {
    span = tr->begin(SpanKind::MmHeartbeat, node_, ctx, hb_epoch_);
  }

  // Check a *lagged* epoch before advancing: a node is dead only once
  // its word trails heartbeat_miss_periods epochs (COMPARE-AND-WRITE
  // over the whole machine). The NM shares its CPU with application
  // PEs, so one late ack on a loaded node is not a death.
  const std::int64_t floor_epoch =
      hb_epoch_ - (std::max(sp.heartbeat_miss_periods, 1) - 1);
  if (floor_epoch > 0) {
    if (mt_hb_sweeps_ == nullptr) {
      mt_hb_sweeps_ = &cluster_.metrics().counter("mm.heartbeat.sweeps");
    }
    mt_hb_sweeps_->add(1);
    const bool ok = co_await fab.compare_and_write(
        Component::MM, ControlMessage::heartbeat(hb_epoch_), node_, all,
        kHeartbeatAddr, Compare::GE, floor_epoch, kNoWrite, 0,
        span.context());
    if (!ok) {
      // Isolate the failed slave(s). One masked pass over the plane's
      // flat heartbeat column picks the suspects (word trailing the
      // lagged floor, or already net-failed); each suspect is then
      // confirmed with the same single-node COMPARE-AND-WRITE the
      // per-node loop used, so the declared set and its slack
      // semantics are unchanged. The (usually long) runs of
      // non-suspect nodes are re-verified with one range CAW each —
      // a node whose *word* is fresh but whose NIC the middleware has
      // cut off (fault-injected silence) fails its run's CAW, and a
      // recursive bisect narrows the run to the node(s) the old loop
      // would have caught, still in ascending declaration order.
      const std::int64_t* hb =
          cluster_.network().plane().column(kHeartbeatAddr);
      std::vector<int> fresh;
      int run_first = -1;
      for (int n = all.first; n <= all.last() + 1; ++n) {
        const bool in_range = n <= all.last();
        bool skip = false;
        bool suspect = false;
        if (in_range) {
          skip = std::binary_search(failed_.begin(), failed_.end(), n);
          suspect =
              !skip && (cluster_.network().node_failed(n) ||
                        hb[n] < floor_epoch);
        }
        if (in_range && !skip && !suspect) {
          if (run_first < 0) run_first = n;
          continue;
        }
        if (run_first >= 0) {
          co_await verify_alive(NodeRange{run_first, n - run_first},
                                floor_epoch, span.context(), fresh);
          run_first = -1;
        }
        if (in_range && suspect) {
          co_await verify_alive(NodeRange{n, 1}, floor_epoch, span.context(),
                                fresh);
        }
      }
      if (!fresh.empty()) co_await handle_node_failures(fresh);
    }
  }

  ++hb_epoch_;
  co_await cluster_.multicast_command(Component::MM, node_, all,
                                      ControlMessage::heartbeat(hb_epoch_),
                                      span.context());
}

Task<> MachineManager::verify_alive(NodeRange range, std::int64_t floor_epoch,
                                    fabric::TraceContext ctx,
                                    std::vector<int>& fresh) {
  auto& fab = cluster_.fabric();
  const bool ok = co_await fab.compare_and_write(
      Component::MM, ControlMessage::heartbeat(hb_epoch_), node_, range,
      kHeartbeatAddr, Compare::GE, floor_epoch, kNoWrite, 0, ctx);
  if (ok) co_return;
  if (range.count == 1) {
    const int n = range.first;
    failed_.insert(std::lower_bound(failed_.begin(), failed_.end(), n), n);
    fresh.push_back(n);
    if (on_failure_) on_failure_(n, cluster_.sim().now());
    co_return;
  }
  const int half = range.count / 2;
  co_await verify_alive(NodeRange{range.first, half}, floor_epoch, ctx, fresh);
  co_await verify_alive(NodeRange{range.first + half, range.count - half},
                        floor_epoch, ctx, fresh);
}

}  // namespace storm::core
