#include "storm/batch_scheduler.hpp"

#include <algorithm>

#include "storm/reservation_profile.hpp"

namespace storm::core {

namespace {

/// Earliest time at which `needed` nodes will be free, given the
/// currently-free count and running jobs' estimated ends. Also
/// reports how many nodes will be free beyond `needed` at that time.
struct Shadow {
  sim::SimTime when;
  int spare;
};

Shadow compute_shadow(const std::vector<RunningJobInfo>& running,
                      int free_nodes, int needed, sim::SimTime now) {
  if (free_nodes >= needed) return {now, free_nodes - needed};
  std::vector<RunningJobInfo> sorted = running;
  std::sort(sorted.begin(), sorted.end(),
            [](const RunningJobInfo& a, const RunningJobInfo& b) {
              return a.est_end < b.est_end;
            });
  int avail = free_nodes;
  for (const auto& r : sorted) {
    avail += r.nodes;
    if (avail >= needed) return {std::max(r.est_end, now), avail - needed};
  }
  // Even a drained machine cannot host it (should not happen: requests
  // are validated against the machine size).
  return {sim::SimTime::max(), 0};
}

}  // namespace

namespace {

/// Conservative backfilling: carve a reservation for every queued job
/// in order; whoever's reservation begins right now may start.
std::vector<JobId> conservative_pick(const std::vector<QueuedJobInfo>& queue,
                                     const std::vector<RunningJobInfo>& running,
                                     int free_nodes, sim::SimTime now) {
  ReservationProfile profile(now, free_nodes);
  for (const auto& r : running) profile.add_release(r.est_end, r.nodes);
  std::vector<JobId> start;
  for (const auto& job : queue) {
    const sim::SimTime at = profile.earliest_fit(job.nodes, job.est_runtime);
    if (at == sim::SimTime::max()) continue;  // can never fit (oversize)
    profile.reserve(at, job.est_runtime, job.nodes);
    if (at == now) start.push_back(job.id);
  }
  return start;
}

}  // namespace

std::vector<JobId> batch_pick(const std::vector<QueuedJobInfo>& queue,
                              std::vector<RunningJobInfo> running,
                              int free_nodes, int total_nodes,
                              sim::SimTime now, BatchPolicy policy) {
  (void)total_nodes;
  if (policy == BatchPolicy::Conservative) {
    return conservative_pick(queue, running, free_nodes, now);
  }
  const bool backfill = policy == BatchPolicy::Easy;
  std::vector<JobId> start;
  std::size_t i = 0;

  // Phase 1 (both policies): start in strict order while jobs fit.
  for (; i < queue.size(); ++i) {
    if (queue[i].nodes > free_nodes) break;
    start.push_back(queue[i].id);
    free_nodes -= queue[i].nodes;
    running.push_back({queue[i].nodes, now + queue[i].est_runtime});
  }
  if (!backfill || i >= queue.size()) return start;

  // Phase 2 (EASY): reserve for the blocked head, backfill the rest.
  const QueuedJobInfo& head = queue[i];
  Shadow shadow = compute_shadow(running, free_nodes, head.nodes, now);
  for (std::size_t k = i + 1; k < queue.size(); ++k) {
    const QueuedJobInfo& cand = queue[k];
    if (cand.nodes > free_nodes) continue;
    const bool finishes_before_reservation =
        now + cand.est_runtime <= shadow.when;
    const bool fits_in_spare = cand.nodes <= shadow.spare;
    if (finishes_before_reservation || fits_in_spare) {
      start.push_back(cand.id);
      free_nodes -= cand.nodes;
      running.push_back({cand.nodes, now + cand.est_runtime});
      // The reservation must be honoured against the new state.
      shadow = compute_shadow(running, free_nodes, head.nodes, now);
    }
  }
  return start;
}

}  // namespace storm::core
