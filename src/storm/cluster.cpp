#include "storm/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "storm/machine_manager.hpp"
#include "storm/node_manager.hpp"
#include "storm/plane_runtime.hpp"
#include "storm/replication/replication.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/tracing.hpp"

namespace storm::core {

using sim::SimTime;
using sim::Task;

Cluster::Cluster(sim::Simulator& sim, ClusterConfig config)
    : sim_(sim), config_(config) {
  // Surface the engine's periodic-cohort coalescing in this cluster's
  // metrics. The counter is resolved on the first coalesced fire, so
  // runs that never coalesce (every pinned figure today) serialise an
  // unchanged registry.
  sim_.set_periodic_observer(
      [](void* opaque, std::uint64_t saved) {
        auto* self = static_cast<Cluster*>(opaque);
        if (self->mt_timer_coalesced_ == nullptr) {
          self->mt_timer_coalesced_ =
              &self->metrics_.counter("sim.timer.coalesced");
        }
        self->mt_timer_coalesced_->add(static_cast<std::int64_t>(saved));
      },
      this);
  assert(config_.nodes >= 1);
  assert(config_.app_cpus_per_node >= 1 &&
         config_.app_cpus_per_node <= config_.cpus_per_node);
  config_.machine.os.cpus = config_.cpus_per_node;

  net_ = std::make_unique<net::QsNet>(sim_, config_.nodes, config_.net,
                                      config_.cable_m);
  mech_ = std::make_unique<mech::QsNetMechanisms>(*net_);
  fabric_ = std::make_unique<fabric::MechanismFabric>(sim_, *mech_);
  nfs_ = std::make_unique<node::NfsServer>(sim_);

  node_crashed_.assign(config_.nodes, false);
  node_epoch_.assign(config_.nodes, 0);

  // Plane mode: only the MM's node gets a real Machine; every other
  // node exists solely as contiguous slots in the node-state plane,
  // serviced by the PlaneRuntime below.
  const int machine_count = config_.plane_mode ? 1 : config_.nodes;
  machines_.reserve(machine_count);
  for (int n = 0; n < machine_count; ++n) {
    machines_.push_back(std::make_unique<node::Machine>(
        sim_, n, config_.machine, net_.get(), nfs_.get()));
  }

  // Per-node dæmons: one NM plus app_cpus x max_mpl PLs.
  const int mpl = std::max(1, config_.storm.max_mpl);
  assert(config_.app_cpus_per_node * mpl <= net::NodeStatePlane::kMaxPlSlots &&
         "PL pool exceeds the plane's per-node occupancy mask");
  if (config_.plane_mode) {
    assert(!config_.storm.standby_mm_enabled &&
           "plane mode hosts dæmons only on the MM's node; a standby MM "
           "needs a real NM on its own node");
    plane_rt_ = std::make_unique<PlaneRuntime>(*this);
    net_->set_range_signal_hook(
        [this](int src, net::NodeRange dsts, net::EventAddr ev) {
          return plane_rt_->on_remote_signal(src, dsts, ev);
        });
    mm_ = std::make_unique<MachineManager>(*this, 0);
    mm_->start();
    return;
  }
  nms_.reserve(config_.nodes);
  pls_.resize(config_.nodes);
  for (int n = 0; n < config_.nodes; ++n) {
    nms_.push_back(std::make_unique<NodeManager>(*this, n));
    for (int cpu = 0; cpu < config_.app_cpus_per_node; ++cpu) {
      for (int s = 0; s < mpl; ++s) {
        pls_[n].push_back(std::make_unique<ProgramLauncher>(
            *this, n, cpu, s, static_cast<int>(pls_[n].size())));
      }
    }
  }

  mm_ = std::make_unique<MachineManager>(*this, 0);
  if (config_.storm.standby_mm_enabled) {
    assert(config_.storm.heartbeat_enabled &&
           "the standby MM needs the heartbeat multicast as its liveness "
           "signal on an idle machine");
    const int sn = config_.storm.standby_node >= 0 ? config_.storm.standby_node
                                                   : config_.nodes - 1;
    assert(sn != mm_->node() && "standby MM must live on a different node");
    standby_mm_ = std::make_unique<MachineManager>(*this, sn, /*standby=*/true);
  }
  if (config_.storm.replication_enabled) {
    assert(!config_.storm.standby_mm_enabled &&
           "quorum replication and the hot standby are alternative failover "
           "schemes; enable one");
    repl_ = std::make_unique<ReplicationGroup>(*this,
                                               config_.storm.repl_replicas);
    mm_->attach_replication(repl_.get(), 0);
    repl_mm_by_rank_.push_back(mm_.get());
    for (int r = 1; r < repl_->replicas(); ++r) {
      repl_mms_.push_back(std::make_unique<MachineManager>(
          *this, repl_->node_of_rank(r), /*standby=*/true));
      repl_mms_.back()->attach_replication(repl_.get(), r);
      repl_mm_by_rank_.push_back(repl_mms_.back().get());
    }
  }

  for (auto& nm : nms_) nm->start();
  mm_->start();
  if (standby_mm_) standby_mm_->start();
  for (auto& fmm : repl_mms_) fmm->start();
  if (repl_) repl_->start();
}

Cluster::~Cluster() { sim_.set_periodic_observer(nullptr, nullptr); }

void Cluster::enable_fabric_metrics() {
  if (fabric_metrics_) return;
  fabric_metrics_ =
      std::make_shared<telemetry::MetricsAggregator>(sim_, metrics_);
  fabric_->push(fabric_metrics_);
}

void Cluster::enable_tracing() {
  if (tracer_) return;
  tracer_ = std::make_shared<telemetry::CausalTracer>(sim_);
  fabric_->push(tracer_);
}

void Cluster::enable_timeseries(const telemetry::TimeSeriesOptions& opts) {
  if (ts_) return;
  ts_ = std::make_unique<telemetry::TimeSeriesRecorder>(sim_, metrics_, opts);
  ts_->arm();
}

MachineManager& Cluster::mm() {
  if (repl_) return *repl_mm_by_rank_[repl_->active_rank()];
  if (standby_mm_ && standby_mm_->active() && !standby_mm_->crashed()) {
    return *standby_mm_;
  }
  return *mm_;
}

void Cluster::deliver_repl(int node, const fabric::ControlMessage& msg) {
  if (!repl_) return;
  const int rank = repl_->rank_of_node(node);
  if (rank >= 0) repl_->receive(rank, msg);
}

int Cluster::mm_node() { return mm().node(); }
node::Proc& Cluster::mm_helper() { return mm().helper(); }

JobId Cluster::submit(JobSpec spec) {
  if (spec.npes < 1 ||
      spec.npes > config_.nodes * config_.app_cpus_per_node) {
    throw std::invalid_argument(
        "JobSpec.npes (" + std::to_string(spec.npes) +
        ") outside machine capacity (" +
        std::to_string(config_.nodes * config_.app_cpus_per_node) + " PEs)");
  }
  if (spec.binary_size <= 0) {
    throw std::invalid_argument("JobSpec.binary_size must be positive");
  }
  if (!spec.program) spec.program = do_nothing_program();
  const JobId id = static_cast<JobId>(jobs_.size());
  assert(id < (1 << 14) && "app-channel key layout caps the job table");
  jobs_.push_back(std::make_unique<Job>(id, std::move(spec)));
  jobs_.back()->times().submit = sim_.now();
  mm().enqueue(id);
  return id;
}

Job& Cluster::job(JobId id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < jobs_.size());
  return *jobs_[id];
}
const Job& Cluster::job(JobId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < jobs_.size());
  return *jobs_[id];
}

std::size_t Cluster::job_count() const { return jobs_.size(); }

bool Cluster::all_jobs_terminal() const {
  for (const auto& j : jobs_) {
    const JobState st = j->state();
    if (st != JobState::Completed && st != JobState::Aborted) return false;
  }
  return true;
}

ProgramLauncher& Cluster::pl(int node, int idx) { return *pls_[node][idx]; }

int Cluster::pls_per_node() const {
  return static_cast<int>(pls_.empty() ? 0 : pls_[0].size());
}

bool Cluster::run_until_all_complete(SimTime limit) {
  while (!all_jobs_terminal()) {
    if (sim_.now() > limit) return false;
    if (!sim_.step()) return false;
  }
  return true;
}

bool Cluster::run_until_complete(JobId id, SimTime limit) {
  while (job(id).state() != JobState::Completed &&
         job(id).state() != JobState::Aborted) {
    if (sim_.now() > limit) return false;
    if (!sim_.step()) return false;
  }
  return true;
}

void Cluster::start_cpu_load() {
  assert(!config_.plane_mode && "plane mode has no per-node CPUs to load");
  if (cpu_load_on_) return;
  cpu_load_on_ = true;
  if (spinners_.empty()) {
    for (int n = 0; n < config_.nodes; ++n) {
      for (int c = 0; c < config_.cpus_per_node; ++c) {
        spinners_.push_back(&machines_[n]->os().create(
            "spin." + std::to_string(n) + "." + std::to_string(c), c));
      }
    }
  }
  for (node::Proc* p : spinners_) {
    sim_.spawn(spin_loop(p));
  }
}

Task<> Cluster::spin_loop(node::Proc* p) {
  while (cpu_load_on_) {
    co_await p->compute(SimTime::ms(100));
  }
}

void Cluster::stop_cpu_load() { cpu_load_on_ = false; }

void Cluster::start_network_load(double fabric_weight, double pci_weight) {
  if (fabric_weight < 0) {
    // Calibrated to the paper's loader: one ping-pong process per CPU
    // on every node (256 processes on the testbed), which drags the
    // 12 MB / 64-node launch to ~1.5 s (Figure 3).
    fabric_weight =
        0.075 * static_cast<double>(config_.nodes * config_.cpus_per_node);
  }
  net_load_.push_back(net_->add_fabric_load(fabric_weight));
  if (pci_weight > 0) {
    for (int n = 0; n < config_.nodes; ++n) {
      net_load_.push_back(net_->pci(n).add_background_load(pci_weight));
    }
  }
}

void Cluster::stop_network_load() { net_load_.clear(); }

void Cluster::crash_node(int node) {
  assert(node >= 0 && node < config_.nodes);
  assert(!config_.plane_mode && "plane mode does not model node faults");
  if (node_crashed_[node]) return;
  node_crashed_[node] = true;
  ++node_epoch_[node];
  // The NIC dies first: no more CAW acks, dropped deliveries,
  // discarded local events.
  fabric_->set_node_failed(node, true);
  // Then the dæmons and any in-flight local work.
  nms_[node]->crash();
  for (auto& pl : pls_[node]) pl->cancel();
  // The PEs died with the node: clear the PL occupancy mask now rather
  // than when the cancelled launch coroutines notice (the plane must
  // never show busy launchers on a failed node).
  for (int slot = 0; slot < pls_per_node(); ++slot) {
    net_->plane().set_pl_busy(node, slot, false);
  }
  if (node == mm_->node()) mm_->crash();
  if (standby_mm_ && node == standby_mm_->node()) standby_mm_->crash();
  if (repl_) {
    const int rank = repl_->rank_of_node(node);
    if (rank >= 0) {
      repl_mm_by_rank_[rank]->crash();
      repl_->replica_crashed(rank);
    }
  }
}

void Cluster::recover_node(int node) {
  assert(node >= 0 && node < config_.nodes);
  if (!node_crashed_[node]) return;
  node_crashed_[node] = false;
  // NIC comes back with wiped global memory (clean re-registration
  // slate) and the NM restarts.
  fabric_->set_node_failed(node, false);
  nms_[node]->restart();
  // A crashed MM does not come back with its node, but a recovered
  // replica host's agent rejoins the quorum (acks and votes; the rank
  // never leads again).
  if (repl_) {
    const int rank = repl_->rank_of_node(node);
    if (rank >= 0) repl_->replica_recovered(rank);
  }
  // The surviving (active) MM re-admits the node, or kills suspect
  // jobs after an undetected outage.
  MachineManager& active = mm();
  if (!active.crashed()) active.handle_node_recovered(node);
}

void Cluster::crash_mm() {
  MachineManager& victim = mm();
  victim.crash();
  if (repl_) repl_->mm_crashed(repl_->rank_of_node(victim.node()));
}

Task<> Cluster::command_wire(int src, net::NodeRange dsts, sim::Bytes bytes) {
  co_await net_->broadcast(src, dsts, bytes, net::BufferPlace::NicMemory);
}

void Cluster::deliver_command(net::NodeRange dsts,
                              const fabric::ControlMessage& msg,
                              fabric::TraceContext ctx) {
  if (msg.cls == fabric::MsgClass::Repl) {
    // The replica agent taps the NIC delivery interrupt directly, like
    // the mech's remote ops — never the dæmon command queue. A busy
    // (or dead) dæmon must not delay votes, acks, or lease renewals:
    // the lease math assumes the only latency between replicas is the
    // wire.
    for (int n = dsts.first; n <= dsts.last(); ++n) {
      if (!net_->node_failed(n)) deliver_repl(n, msg);
    }
    return;
  }
  if (plane_rt_) {
    plane_rt_->deliver(dsts, msg, ctx);
    return;
  }
  const bool sweepable =
      config_.storm.batched_periodic_delivery &&
      (msg.cls == fabric::MsgClass::Strobe ||
       msg.cls == fabric::MsgClass::Heartbeat);
  if (!sweepable) {
    // Full simulation: fan the range out into the per-node NM
    // mailboxes in ascending order — the same put sequence the
    // per-node delivery path produced, so goldens are unchanged.
    for (int n = dsts.first; n <= dsts.last(); ++n) {
      if (!net_->node_failed(n) && !nms_[n]->stopped()) {
        nms_[n]->deliver(fabric::TracedCommand{msg, ctx});
      }
    }
    return;
  }
  // Periodic sweep: coalesce each maximal run of absorb-eligible nodes
  // into ONE zero-delay sweep event instead of a put/resume pair per
  // node. Events are emitted strictly in node order (a sweep is
  // flushed before the put of the first node after it), so zero-delay
  // sequence numbers — and with them span-begin order and per-machine
  // RNG draws — line up with the event-driven path.
  const int mm_node = mm_ ? mm_->node() : -1;
  const int standby_node = standby_mm_ ? standby_mm_->node() : -1;
  int seg_first = -1;
  auto flush = [&](int seg_last) {
    if (seg_first < 0) return;
    const fabric::TracedCommand tc{msg, ctx};
    sim_.schedule_after(sim::SimTime::zero(),
                        [this, tc, first = seg_first, seg_last] {
                          for (int n = first; n <= seg_last; ++n) {
                            NodeManager& nm = *nms_[n];
                            if (nm.can_absorb_periodic()) {
                              nm.absorb_periodic(tc);
                            } else {
                              // State moved between the walk and the
                              // sweep firing (possible only via an
                              // already-pending same-instant event):
                              // fall back to the mailbox.
                              nm.deliver(tc);
                            }
                          }
                        });
    seg_first = -1;
  };
  for (int n = dsts.first; n <= dsts.last(); ++n) {
    if (net_->node_failed(n) || nms_[n]->stopped()) {
      flush(n - 1);
      continue;
    }
    // MM hosts stay on the event-driven path: their dæmon CPUs run
    // coroutines whose wakeups draw from the OS RNG stream in ways the
    // quiescence test cannot bound. Replica hosts count as MM hosts.
    const bool excluded = n == mm_node || n == standby_node ||
                          (repl_ && repl_->rank_of_node(n) > 0);
    if (!excluded && nms_[n]->can_absorb_periodic()) {
      if (seg_first < 0) seg_first = n;
    } else {
      flush(n - 1);
      nms_[n]->deliver(fabric::TracedCommand{msg, ctx});
    }
  }
  flush(dsts.last());
}

Task<> Cluster::multicast_command(fabric::Component from, int src,
                                  net::NodeRange dsts,
                                  fabric::ControlMessage msg,
                                  fabric::TraceContext ctx) {
  co_await fabric_->multicast_command(
      from, msg, src, dsts, kCommandBytes,
      [this](int s, net::NodeRange d, sim::Bytes b) {
        return command_wire(s, d, b);
      },
      [this](net::NodeRange d, const fabric::ControlMessage& m,
             fabric::TraceContext c) { deliver_command(d, m, c); },
      ctx);
}

sim::Channel<int>& Cluster::app_channel(JobId job_id, int inc, int dst,
                                        int src) {
  assert(inc >= 0 && inc < kMaxIncarnations);
  const std::uint64_t key = (static_cast<std::uint64_t>(inc) << 54) |
                            (static_cast<std::uint64_t>(job_id) << 40) |
                            (static_cast<std::uint64_t>(dst) << 20) |
                            static_cast<std::uint64_t>(src);
  auto& slot = app_channels_[key];
  if (!slot) slot = std::make_unique<sim::Channel<int>>(sim_);
  return *slot;
}

void Cluster::wake_job_channels(JobId job_id, int inc) {
  const std::uint64_t hi = (static_cast<std::uint64_t>(inc) << 14) |
                           static_cast<std::uint64_t>(job_id);
  // Deterministic wake order: collect matching keys, then poison in
  // sorted order (the map iteration order is not reproducible).
  std::vector<std::uint64_t> keys;
  for (const auto& [key, ch] : app_channels_) {
    if ((key >> 40) == hi && ch->waiting() > 0) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    sim::Channel<int>& ch = *app_channels_[key];
    for (std::size_t k = ch.waiting(); k > 0; --k) ch.put(-1);
  }
}

Task<> Cluster::app_send(Job& job_, int inc, int src_rank, int dst_rank,
                         sim::Bytes bytes) {
  co_await net_->put(job_.node_of_rank(src_rank), job_.node_of_rank(dst_rank),
                     bytes, net::BufferPlace::MainMemory);
  app_channel(job_.id(), inc, dst_rank, src_rank).put(1);
}

Task<> Cluster::app_recv(Job& job_, int inc, int dst_rank, int src_rank) {
  (void)co_await app_channel(job_.id(), inc, dst_rank, src_rank).get();
}

bool Cluster::app_message_pending(Job& job_, int inc, int dst_rank,
                                  int src_rank) {
  return !app_channel(job_.id(), inc, dst_rank, src_rank).empty();
}

}  // namespace storm::core
