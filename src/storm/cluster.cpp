#include "storm/cluster.hpp"

#include <cassert>

#include "storm/machine_manager.hpp"
#include "storm/node_manager.hpp"
#include "telemetry/aggregator.hpp"

namespace storm::core {

using sim::SimTime;
using sim::Task;

Cluster::Cluster(sim::Simulator& sim, ClusterConfig config)
    : sim_(sim), config_(config) {
  assert(config_.nodes >= 1);
  assert(config_.app_cpus_per_node >= 1 &&
         config_.app_cpus_per_node <= config_.cpus_per_node);
  config_.machine.os.cpus = config_.cpus_per_node;

  net_ = std::make_unique<net::QsNet>(sim_, config_.nodes, config_.net,
                                      config_.cable_m);
  mech_ = std::make_unique<mech::QsNetMechanisms>(*net_);
  fabric_ = std::make_unique<fabric::MechanismFabric>(sim_, *mech_);
  nfs_ = std::make_unique<node::NfsServer>(sim_);

  machines_.reserve(config_.nodes);
  for (int n = 0; n < config_.nodes; ++n) {
    machines_.push_back(std::make_unique<node::Machine>(
        sim_, n, config_.machine, net_.get(), nfs_.get()));
  }

  // Per-node dæmons: one NM plus app_cpus x max_mpl PLs.
  const int mpl = std::max(1, config_.storm.max_mpl);
  nms_.reserve(config_.nodes);
  pls_.resize(config_.nodes);
  for (int n = 0; n < config_.nodes; ++n) {
    nms_.push_back(std::make_unique<NodeManager>(*this, n));
    for (int cpu = 0; cpu < config_.app_cpus_per_node; ++cpu) {
      for (int s = 0; s < mpl; ++s) {
        pls_[n].push_back(
            std::make_unique<ProgramLauncher>(*this, n, cpu, s));
      }
    }
  }

  // The MM's host helper: the "lightweight process running on the
  // host, which services TLB misses and performs file accesses on
  // behalf of the NIC" (Section 3.3.1). It gets its own CPU where the
  // node has more than one, so that under normal conditions it only
  // contends with co-located application PEs (the NM on the last CPU
  // is busy writing fragments during a transfer).
  const int helper_cpu =
      config_.cpus_per_node >= 2 ? config_.cpus_per_node - 2 : 0;
  mm_helper_ = &machines_[mm_node()]->os().create("mm-helper", helper_cpu);

  mm_ = std::make_unique<MachineManager>(*this);

  for (auto& nm : nms_) nm->start();
  mm_->start();
}

Cluster::~Cluster() = default;

void Cluster::enable_fabric_metrics() {
  if (fabric_metrics_) return;
  fabric_metrics_ =
      std::make_shared<telemetry::MetricsAggregator>(sim_, metrics_);
  fabric_->push(fabric_metrics_);
}

JobId Cluster::submit(JobSpec spec) { return mm_->submit(std::move(spec)); }

Job& Cluster::job(JobId id) { return mm_->job(id); }
const Job& Cluster::job(JobId id) const { return mm_->job(id); }

ProgramLauncher& Cluster::pl(int node, int idx) { return *pls_[node][idx]; }

int Cluster::pls_per_node() const {
  return static_cast<int>(pls_.empty() ? 0 : pls_[0].size());
}

bool Cluster::run_until_all_complete(SimTime limit) {
  while (!mm_->all_done()) {
    if (sim_.now() > limit) return false;
    if (!sim_.step()) return false;
  }
  return true;
}

bool Cluster::run_until_complete(JobId id, SimTime limit) {
  while (job(id).state() != JobState::Completed) {
    if (sim_.now() > limit) return false;
    if (!sim_.step()) return false;
  }
  return true;
}

void Cluster::start_cpu_load() {
  if (cpu_load_on_) return;
  cpu_load_on_ = true;
  if (spinners_.empty()) {
    for (int n = 0; n < config_.nodes; ++n) {
      for (int c = 0; c < config_.cpus_per_node; ++c) {
        spinners_.push_back(&machines_[n]->os().create(
            "spin." + std::to_string(n) + "." + std::to_string(c), c));
      }
    }
  }
  for (node::Proc* p : spinners_) {
    sim_.spawn(spin_loop(p));
  }
}

Task<> Cluster::spin_loop(node::Proc* p) {
  while (cpu_load_on_) {
    co_await p->compute(SimTime::ms(100));
  }
}

void Cluster::stop_cpu_load() { cpu_load_on_ = false; }

void Cluster::start_network_load(double fabric_weight, double pci_weight) {
  if (fabric_weight < 0) {
    // Calibrated to the paper's loader: one ping-pong process per CPU
    // on every node (256 processes on the testbed), which drags the
    // 12 MB / 64-node launch to ~1.5 s (Figure 3).
    fabric_weight =
        0.075 * static_cast<double>(config_.nodes * config_.cpus_per_node);
  }
  net_load_.push_back(net_->add_fabric_load(fabric_weight));
  if (pci_weight > 0) {
    for (int n = 0; n < config_.nodes; ++n) {
      net_load_.push_back(net_->pci(n).add_background_load(pci_weight));
    }
  }
}

void Cluster::stop_network_load() { net_load_.clear(); }

void Cluster::fail_node(int node) {
  net_->fail_node(node);
  nms_[node]->stop();
}

Task<> Cluster::command_wire(int src, net::NodeRange dsts, sim::Bytes bytes) {
  co_await net_->broadcast(src, dsts, bytes, net::BufferPlace::NicMemory);
}

void Cluster::deliver_command(int node, const fabric::ControlMessage& msg) {
  if (!net_->node_failed(node) && !nms_[node]->stopped()) {
    nms_[node]->mailbox().put(msg);
  }
}

Task<> Cluster::multicast_command(fabric::Component from, net::NodeRange dsts,
                                 fabric::ControlMessage msg) {
  co_await fabric_->multicast_command(
      from, msg, mm_node(), dsts, kCommandBytes,
      [this](int src, net::NodeRange d, sim::Bytes b) {
        return command_wire(src, d, b);
      },
      [this](int node, const fabric::ControlMessage& m) {
        deliver_command(node, m);
      });
}

sim::Channel<int>& Cluster::app_channel(JobId job_id, int dst, int src) {
  const std::uint64_t key = (static_cast<std::uint64_t>(job_id) << 40) |
                            (static_cast<std::uint64_t>(dst) << 20) |
                            static_cast<std::uint64_t>(src);
  auto& slot = app_channels_[key];
  if (!slot) slot = std::make_unique<sim::Channel<int>>(sim_);
  return *slot;
}

Task<> Cluster::app_send(Job& job_, int src_rank, int dst_rank,
                         sim::Bytes bytes) {
  co_await net_->put(job_.node_of_rank(src_rank), job_.node_of_rank(dst_rank),
                     bytes, net::BufferPlace::MainMemory);
  app_channel(job_.id(), dst_rank, src_rank).put(1);
}

Task<> Cluster::app_recv(Job& job_, int dst_rank, int src_rank) {
  (void)co_await app_channel(job_.id(), dst_rank, src_rank).get();
}

bool Cluster::app_message_pending(Job& job_, int dst_rank, int src_rank) {
  return !app_channel(job_.id(), dst_rank, src_rank).empty();
}

}  // namespace storm::core
