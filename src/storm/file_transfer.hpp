// STORM's pipelined binary-distribution protocol (Sections 2.3, 3.3.1).
//
// The MM reads the application image from the source filesystem in
// fixed-size chunks, XFER-AND-SIGNALs each chunk into a multi-buffered
// remote queue on every destination node, and the NMs write the
// fragments to their RAM disks. Global flow control is built from
// COMPARE-AND-WRITE: before reusing receive-queue slot (i mod slots),
// the sender verifies that every node has written chunk i - slots.
//
// Robustness: the destination set is re-derived from the owning MM's
// failure list whenever a flow-control poll stalls past the configured
// timeout, so a node that dies mid-transfer *shrinks* the multicast
// set instead of wedging the pipeline; polls back off exponentially
// (bounded) while a failure is suspected but not yet declared. If the
// job's incarnation is killed — or the owning MM crashes — the whole
// pipeline unwinds, releasing its flow-control slots.
//
// Pipeline stages and their calibrated costs for a 512 KB chunk on
// the unloaded ES40 testbed:
//   read (RAM disk -> main memory, NIC DMA + host assist)  ~2.4 ms
//   host lightweight process (NIC TLB + file service)      ~1.0 ms
//   hardware multicast (PCI-bound at 175 MB/s)             ~2.9 ms
//   NM write to RAM disk (overlapped, multi-buffered)      ~1.3 ms
// The host-assist stage serialises against the read assist on the same
// helper process, which reproduces the measured 131 MB/s protocol
// bandwidth (about 96 ms for 12 MB, Figure 2).
#pragma once

#include "storm/protocol.hpp"

namespace storm::core {

class Cluster;
class MachineManager;

struct TransferStats {
  int chunks = 0;  // chunks actually multicast (may be short on abort)
  bool aborted = false;
  sim::SimTime duration{};
  sim::Bandwidth protocol_bandwidth() const {
    return sim::Bandwidth::bytes_per_s(bytes / duration.to_seconds());
  }
  sim::Bytes bytes = 0;
};

class FileTransfer {
 public:
  /// Run the whole protocol for `job` on behalf of `owner` (the MM
  /// that placed it; the NM receive loops are armed through a
  /// PrepareTransfer command). Returns when every *surviving*
  /// destination node has written the complete image, or early (with
  /// stats.aborted) once the incarnation is killed or the owner dies.
  static sim::Task<TransferStats> send(Cluster& cluster, MachineManager& owner,
                                       Job& job);

  /// Host-assist CPU time for one outgoing chunk, including the NIC
  /// TLB-thrash penalty when the multi-buffering footprint exceeds the
  /// NIC's coverage (the Figure 8 slots effect).
  static sim::SimTime host_assist_cost(const Cluster& cluster,
                                       sim::Bytes chunk, int slots);
};

}  // namespace storm::core
