#include "storm/buddy_allocator.hpp"

#include <algorithm>
#include <cassert>

namespace storm::core {

BuddyAllocator::BuddyAllocator(int size) : size_(size), free_nodes_(size) {
  assert(is_pow2(size));
  orders_ = 1;
  for (int s = 1; s < size; s *= 2) ++orders_;
  free_.resize(orders_);
  free_[orders_ - 1].push_back(0);  // one block covering everything
}

int BuddyAllocator::round_up_pow2(int v) {
  assert(v >= 1);
  int p = 1;
  while (p < v) p *= 2;
  return p;
}

int BuddyAllocator::order_of(int block_size) const {
  int order = 0;
  for (int s = 1; s < block_size; s *= 2) ++order;
  return order;
}

std::optional<net::NodeRange> BuddyAllocator::allocate(int count) {
  if (count < 1 || count > size_) return std::nullopt;
  const int want = round_up_pow2(count);
  const int want_order = order_of(want);

  // Find the smallest free block that fits.
  int from_order = -1;
  for (int k = want_order; k < orders_; ++k) {
    if (!free_[k].empty()) {
      from_order = k;
      break;
    }
  }
  if (from_order < 0) return std::nullopt;

  // Take the lowest-addressed block and split down to the right size.
  int first = free_[from_order].front();
  free_[from_order].erase(free_[from_order].begin());
  for (int k = from_order; k > want_order; --k) {
    const int half = 1 << (k - 1);
    // Keep the low half, free the high half at order k-1.
    auto& fl = free_[k - 1];
    fl.insert(std::lower_bound(fl.begin(), fl.end(), first + half),
              first + half);
  }
  free_nodes_ -= want;
  return net::NodeRange{first, want};
}

void BuddyAllocator::release(net::NodeRange range) {
  assert(is_pow2(range.count));
  assert(range.first % range.count == 0 && "not a buddy-aligned block");
  int first = range.first;
  int order = order_of(range.count);
  free_nodes_ += range.count;

  // Coalesce with the buddy while possible.
  while (order < orders_ - 1) {
    const int block = 1 << order;
    const int buddy = first ^ block;
    auto& fl = free_[order];
    const auto it = std::lower_bound(fl.begin(), fl.end(), buddy);
    if (it == fl.end() || *it != buddy) break;
    fl.erase(it);
    first = std::min(first, buddy);
    ++order;
  }
  auto& fl = free_[order];
  fl.insert(std::lower_bound(fl.begin(), fl.end(), first), first);
}

bool BuddyAllocator::reserve_range(net::NodeRange range) {
  assert(is_pow2(range.count));
  assert(range.first % range.count == 0 && "not a buddy-aligned block");
  if (range.first < 0 || range.first + range.count > size_) return false;
  const int want_order = order_of(range.count);

  // Find the free block containing the range: walk up the orders from
  // the requested size, checking the enclosing aligned block at each.
  int from_order = -1;
  for (int k = want_order; k < orders_; ++k) {
    const int block = 1 << k;
    const int enclosing = range.first & ~(block - 1);
    const auto& fl = free_[k];
    const auto it = std::lower_bound(fl.begin(), fl.end(), enclosing);
    if (it != fl.end() && *it == enclosing) {
      from_order = k;
      break;
    }
  }
  if (from_order < 0) return false;

  // Remove the enclosing block and split down, keeping the half that
  // contains the range and freeing the other.
  int first = range.first & ~((1 << from_order) - 1);
  auto& src = free_[from_order];
  src.erase(std::lower_bound(src.begin(), src.end(), first));
  for (int k = from_order; k > want_order; --k) {
    const int half = 1 << (k - 1);
    const int low = first;
    const int high = first + half;
    const int keep = (range.first & half) != 0 ? high : low;
    const int give = keep == low ? high : low;
    auto& fl = free_[k - 1];
    fl.insert(std::lower_bound(fl.begin(), fl.end(), give), give);
    first = keep;
  }
  assert(first == range.first);
  free_nodes_ -= range.count;
  return true;
}

int BuddyAllocator::largest_free_block() const {
  for (int k = orders_ - 1; k >= 0; --k) {
    if (!free_[k].empty()) return 1 << k;
  }
  return 0;
}

}  // namespace storm::core
