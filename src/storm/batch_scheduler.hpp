// Batch scheduling policies: strict FCFS and EASY backfilling.
//
// STORM "currently supports batch scheduling with and without
// backfilling" (Section 4). The policy is a pure function from queue
// state to the set of jobs to start this timeslice, which keeps it
// unit-testable independently of the dæmons.
#pragma once

#include <vector>

#include "storm/job.hpp"

namespace storm::core {

struct QueuedJobInfo {
  JobId id;
  int nodes;  // buddy-rounded node count
  sim::SimTime est_runtime;
};

struct RunningJobInfo {
  int nodes;
  sim::SimTime est_end;
};

enum class BatchPolicy {
  Fcfs,          // strict order; head-of-line blocking
  Easy,          // one reservation (for the blocked head), aggressive
                 // backfilling behind it
  Conservative,  // profile-based: every queued job gets a reservation;
                 // backfills may never delay any earlier job
};

/// Decide which queued jobs to start now.
///
/// FCFS: start jobs strictly in order while they fit; the first job
/// that does not fit blocks everything behind it.
///
/// EASY: the head job that does not fit gets a reservation at the
/// earliest time enough running jobs will have released nodes (using
/// user estimates); later jobs may start now iff they fit in the
/// currently free nodes AND either (a) they are estimated to finish
/// before the reservation, or (b) they use only nodes that will still
/// be spare once the head job starts.
///
/// Conservative: a reservation profile is built in queue order; a job
/// starts now iff its earliest reservation begins now, so no backfill
/// can ever push an earlier arrival later than its estimate implies.
std::vector<JobId> batch_pick(const std::vector<QueuedJobInfo>& queue,
                              std::vector<RunningJobInfo> running,
                              int free_nodes, int total_nodes,
                              sim::SimTime now, BatchPolicy policy);

/// Back-compat convenience: false = Fcfs, true = Easy.
inline std::vector<JobId> batch_pick(const std::vector<QueuedJobInfo>& queue,
                                     std::vector<RunningJobInfo> running,
                                     int free_nodes, int total_nodes,
                                     sim::SimTime now, bool backfill) {
  return batch_pick(queue, std::move(running), free_nodes, total_nodes, now,
                    backfill ? BatchPolicy::Easy : BatchPolicy::Fcfs);
}

}  // namespace storm::core
