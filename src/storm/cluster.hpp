// The public face of the library: a simulated STORM-managed cluster.
//
//   sim::Simulator sim;
//   auto cfg = storm::core::ClusterConfig::es40(64);   // the paper's testbed
//   storm::core::Cluster cluster(sim, cfg);
//   auto id = cluster.submit({.name = "sweep3d", .binary_size = 12_MB,
//                             .npes = 256, .program = apps::sweep3d(...)});
//   cluster.run_until_all_complete();
//   auto& t = cluster.job(id).times();   // send/execute/launch times
//
// The Cluster owns the whole simulated machine: the QsNET fabric, one
// Machine (CPUs + OS + filesystems) per node, the per-node NM and PL
// dæmons, and the MM on node 0. Loads and faults can be injected to
// reproduce the paper's loaded-launch (Figure 3) and fault-detection
// (Section 4) scenarios.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "mech/qsnet_mechanisms.hpp"
#include "net/qsnet.hpp"
#include "node/machine.hpp"
#include "storm/job.hpp"
#include "storm/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace storm::telemetry {
class MetricsAggregator;
}

namespace storm::core {

class MachineManager;
class NodeManager;
class ProgramLauncher;

enum class SchedulerKind {
  Gang,       // coordinated time slicing (Ousterhout matrix)
  BatchFcfs,  // space sharing, strict FIFO
  BatchEasy,  // space sharing with EASY backfilling
  BatchConservative,  // space sharing with conservative (profile-based)
                      // backfilling: reservations for every queued job
  LocalOs,    // uncoordinated: co-located PEs timeshare under the node
              // OS alone (the foil that motivates gang scheduling)
  ImplicitCosched,  // Arpaci-Dusseau implicit coscheduling: local OS
                    // scheduling + two-phase spin-block receives (the
                    // paper lists ICS among STORM's supported
                    // algorithms, Section 4)
};

/// True for the policies that time-share PEs without MM coordination.
constexpr bool is_locally_scheduled(SchedulerKind k) {
  return k == SchedulerKind::LocalOs || k == SchedulerKind::ImplicitCosched;
}

/// How an application receive waits for its message. User-level
/// communication libraries of the paper's era (Elan/MPI) busy-polled
/// the NIC — which is precisely why uncoordinated scheduling wastes
/// quanta and gang coscheduling pays off. Implicit coscheduling's
/// contribution is the two-phase spin-block.
enum class RecvWait {
  Spin,       // busy-poll until the message lands (era-accurate default)
  Block,      // yield the CPU immediately (kernel-assisted messaging)
  SpinBlock,  // spin briefly, then yield (implicit coscheduling)
};

/// Knobs of the STORM management plane itself.
struct StormParams {
  SchedulerKind scheduler = SchedulerKind::Gang;
  sim::SimTime quantum = sim::SimTime::ms(50);  // timeslice & heartbeat
  int max_mpl = 2;                              // Ousterhout matrix rows

  // Dæmon service times (CPU work, not magic delays).
  sim::SimTime mm_boundary_cost = sim::SimTime::us(10);
  sim::SimTime nm_cmd_cost = sim::SimTime::us(30);
  sim::SimTime nm_strobe_switch_cost = sim::SimTime::us(220);
  sim::SimTime pl_notify_cost = sim::SimTime::us(30);

  // File-transfer protocol (Figure 8's knobs).
  sim::Bytes chunk_size = 512 * 1024;
  int slots = 4;
  node::FsKind source_fs = node::FsKind::RamDisk;
  net::BufferPlace buffers = net::BufferPlace::MainMemory;
  sim::SimTime flow_control_poll = sim::SimTime::us(25);

  // Heartbeat-based fault detection (Section 4).
  bool heartbeat_enabled = false;
  int heartbeat_period_quanta = 10;

  // Application receive-wait discipline. ImplicitCosched forces
  // SpinBlock regardless of this setting.
  RecvWait recv_wait = RecvWait::Spin;
  // SpinBlock: how long a receiver spins (in short CPU bursts) before
  // yielding. Two-ish context-switch costs, per the ICS literature.
  sim::SimTime ics_spin_limit = sim::SimTime::us(200);
  sim::SimTime ics_spin_granule = sim::SimTime::us(50);
};

struct ClusterConfig {
  int nodes = 64;
  int cpus_per_node = 4;
  /// CPUs per node usable by application PEs; the remainder host the
  /// NM/PL/helper dæmons (the paper's gang experiments run 2 PEs/node).
  int app_cpus_per_node = 4;
  std::uint64_t seed = 0x57'0F'4D'2002ULL;

  net::QsNetParams net{};
  double cable_m = -1.0;  // <0: the paper's floor-plan estimate
  node::MachineParams machine{};
  StormParams storm{};

  /// The paper's testbed: 64 AlphaServer ES40 nodes, 4 CPUs each,
  /// QsNET with QM-400 Elan3 NICs (Table 3).
  static ClusterConfig es40(int nodes = 64) {
    ClusterConfig c;
    c.nodes = nodes;
    return c;
  }
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- job control ------------------------------------------------------
  JobId submit(JobSpec spec);
  Job& job(JobId id);
  const Job& job(JobId id) const;

  /// Step the simulator until every submitted job completes (or the
  /// simulated-time limit passes). Returns true on completion.
  bool run_until_all_complete(
      sim::SimTime limit = sim::SimTime::sec(24 * 3600));

  /// Step until `job` completes (limit as above).
  bool run_until_complete(JobId id,
                          sim::SimTime limit = sim::SimTime::sec(24 * 3600));

  // --- load & fault injection -------------------------------------------
  /// The paper's CPU-loaded scenario: a tight spin loop on every CPU
  /// of every node.
  void start_cpu_load();
  void stop_cpu_load();
  /// The paper's network-loaded scenario: sustained pairwise traffic
  /// from every processor. Default weights are calibrated to its
  /// 256-process loader.
  void start_network_load(double fabric_weight = -1, double pci_weight = 1.0);
  void stop_network_load();
  /// Kill a node: its NIC stops acking and its NM stops serving.
  void fail_node(int node);

  // --- component access ---------------------------------------------------
  sim::Simulator& sim() { return sim_; }
  const ClusterConfig& config() const { return config_; }
  net::QsNet& network() { return *net_; }
  /// All mechanism traffic flows through the fabric; with an empty
  /// middleware chain this is a strict pass-through to the raw
  /// mechanisms (no added latency, no randomness consumed).
  mech::Mechanisms& mech() { return *fabric_; }
  fabric::MechanismFabric& fabric() { return *fabric_; }
  /// The cluster's metrics registry. The dæmons record stage timings
  /// and occupancy gauges here unconditionally (pure bookkeeping, no
  /// simulated time); fabric traffic is aggregated only after
  /// enable_fabric_metrics().
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  /// Push a MetricsAggregator onto the fabric chain (idempotent), so
  /// every control-plane envelope rolls into the registry.
  void enable_fabric_metrics();
  /// The unwrapped QsNET mechanisms beneath the fabric.
  mech::Mechanisms& raw_mechanisms() { return *mech_; }
  node::Machine& machine(int n) { return *machines_[n]; }
  node::NfsServer& nfs() { return *nfs_; }
  MachineManager& mm() { return *mm_; }
  NodeManager& nm(int n) { return *nms_[n]; }
  ProgramLauncher& pl(int node, int idx);
  int pls_per_node() const;

  int mm_node() const { return 0; }
  node::Proc& mm_helper() { return *mm_helper_; }

  // --- internal services used by the dæmons ------------------------------
  /// Remote-queue command delivery: a small XFER-AND-SIGNAL into each
  /// destination NM's NIC-resident queue (the paper's "queue
  /// management" helper layer). Routed through the fabric as one
  /// CommandMulticast envelope plus one CommandDeliver per node.
  sim::Task<> multicast_command(fabric::Component from, net::NodeRange dsts,
                                fabric::ControlMessage msg);

  /// Application-level messaging between ranks of a job.
  sim::Task<> app_send(Job& job, int src_rank, int dst_rank, sim::Bytes bytes);
  sim::Task<> app_recv(Job& job, int dst_rank, int src_rank);
  /// True if a message from src_rank to dst_rank is already queued.
  bool app_message_pending(Job& job, int dst_rank, int src_rank);

 private:
  friend class AppContext;

  sim::Task<> spin_loop(node::Proc* p);
  sim::Channel<int>& app_channel(JobId job, int dst, int src);
  sim::Task<> command_wire(int src, net::NodeRange dsts, sim::Bytes bytes);
  void deliver_command(int node, const fabric::ControlMessage& msg);

  sim::Simulator& sim_;
  ClusterConfig config_;
  telemetry::MetricsRegistry metrics_;  // before the dæmons: they
                                        // cache instrument references
  std::shared_ptr<telemetry::MetricsAggregator> fabric_metrics_;
  std::unique_ptr<net::QsNet> net_;
  std::unique_ptr<mech::QsNetMechanisms> mech_;
  std::unique_ptr<fabric::MechanismFabric> fabric_;
  std::unique_ptr<node::NfsServer> nfs_;
  std::vector<std::unique_ptr<node::Machine>> machines_;
  std::vector<std::unique_ptr<NodeManager>> nms_;
  std::vector<std::vector<std::unique_ptr<ProgramLauncher>>> pls_;
  std::unique_ptr<MachineManager> mm_;
  node::Proc* mm_helper_ = nullptr;

  // load injection state
  bool cpu_load_on_ = false;
  std::vector<node::Proc*> spinners_;
  std::vector<sim::SharedBandwidth::LoadHandle> net_load_;

  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Channel<int>>>
      app_channels_;
};

}  // namespace storm::core
