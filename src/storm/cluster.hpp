// The public face of the library: a simulated STORM-managed cluster.
//
//   sim::Simulator sim;
//   auto cfg = storm::core::ClusterConfig::es40(64);   // the paper's testbed
//   storm::core::Cluster cluster(sim, cfg);
//   auto id = cluster.submit({.name = "sweep3d", .binary_size = 12_MB,
//                             .npes = 256, .program = apps::sweep3d(...)});
//   cluster.run_until_all_complete();
//   auto& t = cluster.job(id).times();   // send/execute/launch times
//
// The Cluster owns the whole simulated machine: the QsNET fabric, one
// Machine (CPUs + OS + filesystems) per node, the per-node NM and PL
// dæmons, and the MM on node 0. Loads and faults can be injected to
// reproduce the paper's loaded-launch (Figure 3) and fault-detection
// (Section 4) scenarios.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "mech/qsnet_mechanisms.hpp"
#include "net/qsnet.hpp"
#include "node/machine.hpp"
#include "storm/job.hpp"
#include "storm/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace storm::telemetry {
class MetricsAggregator;
class CausalTracer;
class TimeSeriesRecorder;
struct TimeSeriesOptions;
}

namespace storm::core {

class MachineManager;
class NodeManager;
class PlaneRuntime;
class ProgramLauncher;
class ReplicationGroup;

enum class SchedulerKind {
  Gang,       // coordinated time slicing (Ousterhout matrix)
  BatchFcfs,  // space sharing, strict FIFO
  BatchEasy,  // space sharing with EASY backfilling
  BatchConservative,  // space sharing with conservative (profile-based)
                      // backfilling: reservations for every queued job
  LocalOs,    // uncoordinated: co-located PEs timeshare under the node
              // OS alone (the foil that motivates gang scheduling)
  ImplicitCosched,  // Arpaci-Dusseau implicit coscheduling: local OS
                    // scheduling + two-phase spin-block receives (the
                    // paper lists ICS among STORM's supported
                    // algorithms, Section 4)
};

/// True for the policies that time-share PEs without MM coordination.
constexpr bool is_locally_scheduled(SchedulerKind k) {
  return k == SchedulerKind::LocalOs || k == SchedulerKind::ImplicitCosched;
}

constexpr std::string_view to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::Gang: return "gang";
    case SchedulerKind::BatchFcfs: return "batch-fcfs";
    case SchedulerKind::BatchEasy: return "batch-easy";
    case SchedulerKind::BatchConservative: return "batch-conservative";
    case SchedulerKind::LocalOs: return "local-os";
    case SchedulerKind::ImplicitCosched: return "implicit-cosched";
  }
  return "?";
}

/// How an application receive waits for its message. User-level
/// communication libraries of the paper's era (Elan/MPI) busy-polled
/// the NIC — which is precisely why uncoordinated scheduling wastes
/// quanta and gang coscheduling pays off. Implicit coscheduling's
/// contribution is the two-phase spin-block.
enum class RecvWait {
  Spin,       // busy-poll until the message lands (era-accurate default)
  Block,      // yield the CPU immediately (kernel-assisted messaging)
  SpinBlock,  // spin briefly, then yield (implicit coscheduling)
};

/// What the MM does with jobs that span a node it has declared dead.
enum class FailurePolicy {
  Requeue,  // kill the incarnation, bump it, and put the job back in
            // the queue (bounded by max_job_restarts)
  Abort,    // kill the incarnation and mark the job Aborted
};

/// Knobs of the STORM management plane itself.
struct StormParams {
  SchedulerKind scheduler = SchedulerKind::Gang;
  sim::SimTime quantum = sim::SimTime::ms(50);  // timeslice & heartbeat
  int max_mpl = 2;                              // Ousterhout matrix rows

  // Dæmon service times (CPU work, not magic delays).
  sim::SimTime mm_boundary_cost = sim::SimTime::us(10);
  sim::SimTime nm_cmd_cost = sim::SimTime::us(30);
  sim::SimTime nm_strobe_switch_cost = sim::SimTime::us(220);
  sim::SimTime pl_notify_cost = sim::SimTime::us(30);

  // File-transfer protocol (Figure 8's knobs).
  sim::Bytes chunk_size = 512 * 1024;
  int slots = 4;
  node::FsKind source_fs = node::FsKind::RamDisk;
  net::BufferPlace buffers = net::BufferPlace::MainMemory;
  sim::SimTime flow_control_poll = sim::SimTime::us(25);

  // Heartbeat-based fault detection (Section 4). A node is declared
  // dead only once its heartbeat word lags heartbeat_miss_periods
  // consecutive epochs: the NM dæmon shares its CPU with application
  // PEs, so a loaded node can legitimately ack one period late.
  bool heartbeat_enabled = false;
  int heartbeat_period_quanta = 10;
  int heartbeat_miss_periods = 2;

  // Batched periodic delivery (DESIGN §2.3): strobe/heartbeat
  // multicasts land on idle nodes as one zero-delay sweep event per
  // contiguous run of quiescent dæmons instead of a put/resume/finish
  // event triple per node. Byte-identical to the event-driven path by
  // construction; the switch exists for A/B micro-benchmarks and as an
  // escape hatch.
  bool batched_periodic_delivery = true;

  // Failure recovery (builds on heartbeat detection). On a declared
  // node death the MM evicts the node from every buddy tree, kills and
  // (per policy) requeues the jobs spanning it, and re-strobes the
  // surviving partition.
  FailurePolicy failure_policy = FailurePolicy::Requeue;
  int max_job_restarts = 3;  // kill-and-requeue budget per job

  // In-flight binary transfers: when a flow-control poll stalls past
  // the timeout, the sender re-derives the live destination set from
  // the MM's failure list (a mid-transfer crash shrinks the multicast
  // set instead of wedging) and backs off exponentially, bounded by
  // transfer_max_backoff.
  sim::SimTime transfer_stall_timeout = sim::SimTime::ms(2);
  sim::SimTime transfer_max_backoff = sim::SimTime::ms(5);

  // Hot-standby MM failover. The standby shadows the primary through
  // the fabric (every MM command lands on its node's NM); when no
  // command has arrived for standby_miss_periods heartbeat periods it
  // declares the primary dead, rebuilds allocation state from the
  // cluster-owned job table and resumes time-slicing. Requires
  // heartbeat_enabled (the periodic multicast is the liveness signal
  // on an idle machine).
  bool standby_mm_enabled = false;
  int standby_node = -1;  // <0: the last node
  int standby_miss_periods = 3;

  // Quorum-replicated MM (DESIGN §3.6): every state-changing MM
  // command commits through a majority of repl_replicas MM replicas
  // before its effects are enacted, and leadership is a lease renewed
  // by majority ack — failover shrinks from a silence timeout to a
  // lease expiry, and two leaders per term are impossible by
  // construction. Mutually exclusive with standby_mm_enabled (pick a
  // failover scheme). The lease/election rule repl_election_base >
  // repl_lease is asserted: a voter withholds its grant while its
  // leader is fresher than repl_election_base, so every old lease has
  // expired before a new one can be issued.
  bool replication_enabled = false;
  int repl_replicas = 3;
  sim::SimTime repl_tick = sim::SimTime::ms(1);      // protocol scan
  sim::SimTime repl_renew = sim::SimTime::ms(5);     // renewal cadence
  sim::SimTime repl_lease = sim::SimTime::ms(20);    // lease length
  sim::SimTime repl_election_base = sim::SimTime::ms(25);
  sim::SimTime repl_election_stagger = sim::SimTime::ms(5);  // per rank

  // Application receive-wait discipline. ImplicitCosched forces
  // SpinBlock regardless of this setting.
  RecvWait recv_wait = RecvWait::Spin;
  // SpinBlock: how long a receiver spins (in short CPU bursts) before
  // yielding. Two-ish context-switch costs, per the ICS literature.
  sim::SimTime ics_spin_limit = sim::SimTime::us(200);
  sim::SimTime ics_spin_granule = sim::SimTime::us(50);
};

struct ClusterConfig {
  int nodes = 64;
  int cpus_per_node = 4;
  /// CPUs per node usable by application PEs; the remainder host the
  /// NM/PL/helper dæmons (the paper's gang experiments run 2 PEs/node).
  int app_cpus_per_node = 4;
  std::uint64_t seed = 0x57'0F'4D'2002ULL;

  /// Terascale plane mode: instead of one Machine + NM + PL pool per
  /// node (whose OS schedulers and dæmon coroutines dominate memory and
  /// event count beyond a few thousand nodes), only the MM's node gets
  /// real dæmons and a PlaneRuntime absorbs every MM→NM command as a
  /// single batched range event over the node-state plane. The MM, the
  /// Ousterhout matrix, the buddy allocator, the file-transfer pipeline
  /// and the QsNET model are the real ones — only the per-node dæmon
  /// microcosm is replaced by its aggregate effect on the plane words.
  /// Restrictions: no fault injection, no CPU/standby loads, and
  /// application programs are replaced by JobSpec::plane_work.
  bool plane_mode = false;

  net::QsNetParams net{};
  double cable_m = -1.0;  // <0: the paper's floor-plan estimate
  node::MachineParams machine{};
  StormParams storm{};

  /// The paper's testbed: 64 AlphaServer ES40 nodes, 4 CPUs each,
  /// QsNET with QM-400 Elan3 NICs (Table 3).
  static ClusterConfig es40(int nodes = 64) {
    ClusterConfig c;
    c.nodes = nodes;
    return c;
  }
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- job control ------------------------------------------------------
  JobId submit(JobSpec spec);
  Job& job(JobId id);
  const Job& job(JobId id) const;
  std::size_t job_count() const;
  /// True once every submitted job is Completed or Aborted.
  bool all_jobs_terminal() const;

  /// Step the simulator until every submitted job completes (or the
  /// simulated-time limit passes). Returns true on completion.
  bool run_until_all_complete(
      sim::SimTime limit = sim::SimTime::sec(24 * 3600));

  /// Step until `job` completes (limit as above).
  bool run_until_complete(JobId id,
                          sim::SimTime limit = sim::SimTime::sec(24 * 3600));

  // --- load & fault injection -------------------------------------------
  /// The paper's CPU-loaded scenario: a tight spin loop on every CPU
  /// of every node.
  void start_cpu_load();
  void stop_cpu_load();
  /// The paper's network-loaded scenario: sustained pairwise traffic
  /// from every processor. Default weights are calibrated to its
  /// 256-process loader.
  void start_network_load(double fabric_weight = -1, double pci_weight = 1.0);
  void stop_network_load();
  /// Crash a node: its NIC stops acking COMPARE-AND-WRITE, drops
  /// XFER-AND-SIGNAL deliveries, and discards local events; the NM
  /// dæmon dies and in-flight PE work on the node is cancelled. A
  /// co-located MM dies with its node.
  void crash_node(int node);
  /// Undo crash_node: the NIC comes back with wiped global memory and
  /// the NM restarts with a clean slate, re-registering with the
  /// active MM (which restores the node to the allocator if it had
  /// been evicted, or kills suspect jobs after an undetected outage).
  void recover_node(int node);
  /// Legacy name for crash_node.
  void fail_node(int node) { crash_node(node); }
  /// Crash the primary MM dæmon only (its node survives): the standby,
  /// when configured, detects the silence and takes over.
  void crash_mm();
  bool node_crashed(int node) const { return node_crashed_[node]; }
  /// Bumped on every crash of `node`; coroutines snapshot it to detect
  /// that their node died under them.
  int node_epoch(int node) const { return node_epoch_[node]; }

  // --- component access ---------------------------------------------------
  sim::Simulator& sim() { return sim_; }
  const ClusterConfig& config() const { return config_; }
  net::QsNet& network() { return *net_; }
  /// All mechanism traffic flows through the fabric; with an empty
  /// middleware chain this is a strict pass-through to the raw
  /// mechanisms (no added latency, no randomness consumed).
  mech::Mechanisms& mech() { return *fabric_; }
  fabric::MechanismFabric& fabric() { return *fabric_; }
  /// The cluster's metrics registry. The dæmons record stage timings
  /// and occupancy gauges here unconditionally (pure bookkeeping, no
  /// simulated time); fabric traffic is aggregated only after
  /// enable_fabric_metrics().
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  /// Push a MetricsAggregator onto the fabric chain (idempotent), so
  /// every control-plane envelope rolls into the registry.
  void enable_fabric_metrics();
  /// Push a CausalTracer onto the fabric chain (idempotent): the
  /// dæmons start opening spans and stamping trace contexts on their
  /// fabric operations. Off by default — with tracing disabled the
  /// dæmons' instrumentation is inert (tracer() is null).
  void enable_tracing();
  /// The causal tracer, or nullptr until enable_tracing().
  telemetry::CausalTracer* tracer() { return tracer_.get(); }
  /// Arm the windowed time-series recorder (DESIGN.md §3.7) over this
  /// cluster's registry (idempotent; call before the sim advances so
  /// windows align to t=0). Off by default — with the recorder off
  /// every exported artifact is byte-identical to pre-§3.7 builds.
  void enable_timeseries(const telemetry::TimeSeriesOptions& opts);
  /// The flight recorder, or nullptr until enable_timeseries().
  telemetry::TimeSeriesRecorder* timeseries() { return ts_.get(); }
  const telemetry::TimeSeriesRecorder* timeseries() const {
    return ts_.get();
  }
  /// The unwrapped QsNET mechanisms beneath the fabric.
  mech::Mechanisms& raw_mechanisms() { return *mech_; }
  node::Machine& machine(int n) { return *machines_[n]; }
  node::NfsServer& nfs() { return *nfs_; }
  /// The currently ACTIVE Machine Manager: the primary until a
  /// configured standby has taken over, the standby afterwards.
  MachineManager& mm();
  MachineManager& mm_primary() { return *mm_; }
  /// nullptr unless standby_mm_enabled.
  MachineManager* mm_standby() { return standby_mm_.get(); }
  NodeManager& nm(int n) { return *nms_[n]; }
  /// The quorum-replication group, or nullptr unless
  /// replication_enabled.
  ReplicationGroup* replication() { return repl_.get(); }
  /// MsgClass::Repl delivery from the NM command loop into the local
  /// replica agent (no-op when `node` hosts no replica).
  void deliver_repl(int node, const fabric::ControlMessage& msg);
  ProgramLauncher& pl(int node, int idx);
  int pls_per_node() const;
  /// The lean per-node runtime, or nullptr unless plane_mode.
  PlaneRuntime* plane_runtime() { return plane_rt_.get(); }

  /// Node hosting the active MM.
  int mm_node();
  node::Proc& mm_helper();

  // --- internal services used by the dæmons ------------------------------
  /// Remote-queue command delivery: a small XFER-AND-SIGNAL into each
  /// destination NM's NIC-resident queue (the paper's "queue
  /// management" helper layer). Routed through the fabric as one
  /// CommandMulticast envelope plus one CommandDeliver per node.
  sim::Task<> multicast_command(fabric::Component from, int src,
                                net::NodeRange dsts,
                                fabric::ControlMessage msg,
                                fabric::TraceContext ctx = {});

  /// Application-level messaging between ranks of a job. Channels are
  /// scoped to the incarnation the sending/receiving PE belongs to, so
  /// a requeued incarnation starts with virgin channels and stragglers
  /// from the killed one cannot cross-talk.
  sim::Task<> app_send(Job& job, int incarnation, int src_rank, int dst_rank,
                       sim::Bytes bytes);
  sim::Task<> app_recv(Job& job, int incarnation, int dst_rank, int src_rank);
  /// True if a message from src_rank to dst_rank is already queued.
  bool app_message_pending(Job& job, int incarnation, int dst_rank,
                           int src_rank);
  /// Recovery: wake every PE of (job, incarnation) blocked in recv()
  /// by poisoning its channels with sentinel messages. The woken PEs
  /// observe cancelled() and fast-forward to exit.
  void wake_job_channels(JobId job, int incarnation);

 private:
  friend class AppContext;

  sim::Task<> spin_loop(node::Proc* p);
  sim::Channel<int>& app_channel(JobId job, int inc, int dst, int src);
  sim::Task<> command_wire(int src, net::NodeRange dsts, sim::Bytes bytes);
  void deliver_command(net::NodeRange dsts, const fabric::ControlMessage& msg,
                       fabric::TraceContext ctx);

  sim::Simulator& sim_;
  ClusterConfig config_;
  telemetry::MetricsRegistry metrics_;  // before the dæmons: they
                                        // cache instrument references
  std::shared_ptr<telemetry::MetricsAggregator> fabric_metrics_;
  std::shared_ptr<telemetry::CausalTracer> tracer_;
  std::unique_ptr<telemetry::TimeSeriesRecorder> ts_;
  std::unique_ptr<net::QsNet> net_;
  std::unique_ptr<mech::QsNetMechanisms> mech_;
  std::unique_ptr<fabric::MechanismFabric> fabric_;
  std::unique_ptr<node::NfsServer> nfs_;
  std::vector<std::unique_ptr<node::Machine>> machines_;
  std::vector<std::unique_ptr<NodeManager>> nms_;
  std::vector<std::vector<std::unique_ptr<ProgramLauncher>>> pls_;
  std::unique_ptr<MachineManager> mm_;
  std::unique_ptr<MachineManager> standby_mm_;
  std::unique_ptr<ReplicationGroup> repl_;
  std::vector<std::unique_ptr<MachineManager>> repl_mms_;  // ranks 1..
  std::vector<MachineManager*> repl_mm_by_rank_;
  std::unique_ptr<PlaneRuntime> plane_rt_;

  // The job table is cluster state, not MM state: a failover standby
  // rebuilds its scheduling structures from here.
  std::vector<std::unique_ptr<Job>> jobs_;

  // crash/recovery state
  std::vector<bool> node_crashed_;
  std::vector<int> node_epoch_;

  // load injection state
  bool cpu_load_on_ = false;
  std::vector<node::Proc*> spinners_;
  std::vector<sim::SharedBandwidth::LoadHandle> net_load_;

  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Channel<int>>>
      app_channels_;

  // Lazily resolved on the first coalesced cohort fire so the series
  // never appears in runs that exercise no periodic cohorts (keeps
  // pinned-figure --metrics output stable).
  telemetry::Counter* mt_timer_coalesced_ = nullptr;
};

}  // namespace storm::core
