#include "storm/job.hpp"

#include "storm/cluster.hpp"

namespace storm::core {

AppContext::AppContext(Cluster& cluster, Job& job, int rank, node::Proc* proc)
    : cluster_(cluster),
      job_(job),
      rank_(rank),
      proc_(proc),
      node_(job.node_of_rank(rank)),
      incarnation_(job.incarnation()),
      node_epoch_(cluster.node_epoch(node_)) {}

int AppContext::npes() const { return job_.spec().npes; }

bool AppContext::cancelled() const {
  return job_.incarnation() != incarnation_ ||
         cluster_.node_epoch(node_) != node_epoch_;
}

sim::Task<> AppContext::compute(sim::SimTime work) {
  if (cancelled()) co_return;
  co_await proc_->compute(work);
}

sim::Task<> AppContext::send(int dst_rank, sim::Bytes bytes) {
  if (cancelled()) co_return;
  // Message injection costs a little user-space CPU (which requires
  // the PE to be scheduled — a descheduled process cannot communicate).
  co_await proc_->compute(sim::SimTime::us(2));
  if (cancelled()) co_return;
  co_await cluster_.app_send(job_, incarnation_, rank_, dst_rank, bytes);
}

sim::Task<> AppContext::recv(int src_rank) {
  if (cancelled()) co_return;
  const StormParams& sp = cluster_.config().storm;
  RecvWait mode = sp.recv_wait;
  if (sp.scheduler == SchedulerKind::ImplicitCosched) mode = RecvWait::SpinBlock;

  if (mode == RecvWait::Spin) {
    // User-level communication busy-polls the NIC: the PE holds its
    // processor (burning cycles, preemptible only by the OS) until
    // the message lands. This is what Elan-era MPI did, and why
    // descheduled partners are so costly without coscheduling.
    proc_->begin_busy();
    co_await cluster_.app_recv(job_, incarnation_, rank_, src_rank);
    proc_->end_busy();
    if (cancelled()) co_return;  // woken by recovery's channel poison
    co_await proc_->compute(sim::SimTime::us(2));
    co_return;
  }
  if (mode == RecvWait::SpinBlock) {
    // Two-phase spin-block (implicit coscheduling): keep the CPU for
    // a couple of context-switch times in the hope the partner — very
    // likely coscheduled if communication is flowing — delivers
    // without a costly yield/wakeup cycle; otherwise yield.
    for (sim::SimTime spun = sim::SimTime::zero();
         spun < sp.ics_spin_limit && !cancelled() &&
         !cluster_.app_message_pending(job_, incarnation_, rank_, src_rank);
         spun += sp.ics_spin_granule) {
      co_await proc_->compute(sp.ics_spin_granule);
    }
    if (cancelled()) co_return;
  }
  co_await cluster_.app_recv(job_, incarnation_, rank_, src_rank);
  if (cancelled()) co_return;  // woken by recovery's channel poison
  co_await proc_->compute(sim::SimTime::us(2));
}

AppProgram do_nothing_program() {
  return [](AppContext&) -> sim::Task<> { co_return; };
}

std::string to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Transferring: return "transferring";
    case JobState::Ready: return "ready";
    case JobState::Launching: return "launching";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Aborted: return "aborted";
  }
  return "?";
}

}  // namespace storm::core
