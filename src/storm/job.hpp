// Jobs: what users submit to STORM, and what the Machine Manager
// tracks through the transfer -> launch -> run -> terminate lifecycle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include <algorithm>

#include "net/topology.hpp"
#include "node/os_scheduler.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace storm::core {

class Cluster;
class Job;

using JobId = int;
inline constexpr JobId kInvalidJob = -1;

/// Execution context handed to each application process (one per PE).
/// Programs are coroutines: CPU work via compute(), blocking
/// point-to-point messaging via send()/recv(). While blocked in
/// recv(), the process consumes no CPU (it has yielded to the OS).
class AppContext {
 public:
  AppContext(Cluster& cluster, Job& job, int rank, node::Proc* proc);

  int rank() const { return rank_; }
  int npes() const;
  Job& job() { return job_; }
  Cluster& cluster() { return cluster_; }

  /// True once this PE's incarnation was killed (job requeued or
  /// aborted) or its node crashed. Programs fast-forward: compute/
  /// send/recv become no-ops so the coroutine rushes to exit in zero
  /// simulated time — the cancellation analogue in an exception-free
  /// coroutine world.
  bool cancelled() const;

  /// Consume `work` of CPU time on this PE (preemptible, gang-scheduled).
  sim::Task<> compute(sim::SimTime work);

  /// Blocking message-passing between ranks of the same job.
  sim::Task<> send(int dst_rank, sim::Bytes bytes);
  sim::Task<> recv(int src_rank);

  /// Per-rank deterministic random stream.
  sim::Rng& rng() { return rng_; }
  void seed_rng(sim::Rng rng) { rng_ = rng; }

  node::Proc* proc() { return proc_; }

 private:
  Cluster& cluster_;
  Job& job_;
  int rank_;
  node::Proc* proc_;  // the simulated OS process backing this PE
  int node_;          // snapshot: allocation may move on requeue
  int incarnation_;   // snapshot: bumped by kill-and-requeue
  int node_epoch_;    // snapshot: bumped by each crash of node_
  sim::Rng rng_{0};
};

/// A parallel program: invoked once per PE with that PE's context.
using AppProgram = std::function<sim::Task<>(AppContext&)>;

/// The canonical do-nothing program used by the paper's job-launching
/// experiments ("a do-nothing program ... that terminates immediately").
AppProgram do_nothing_program();

struct JobSpec {
  std::string name = "job";
  sim::Bytes binary_size = 4 * 1024 * 1024;
  int npes = 1;
  AppProgram program;  // defaults to do_nothing_program()
  /// User runtime estimate — consulted only by EASY backfilling.
  sim::SimTime estimated_runtime = sim::SimTime::sec(3600);
  /// Per-PE synthetic CPU work for plane-mode clusters
  /// (ClusterConfig::plane_mode): the lean runtime charges this much
  /// gang-scheduled compute per PE instead of running `program`.
  /// Ignored (and `program` runs) in full-simulation mode.
  sim::SimTime plane_work{};
};

enum class JobState {
  Queued,        // submitted, awaiting allocation
  Transferring,  // binary en route to the partition's RAM disks
  Ready,         // transfer complete, awaiting a launch timeslot
  Launching,     // launch command issued, PLs forking
  Running,       // every PE has started
  Completed,     // every PE has exited and the MM has observed it
  Aborted,       // killed by recovery policy and not requeued
};

std::string to_string(JobState s);

/// Timestamps observed by the Machine Manager (all aligned to its
/// timeslice boundaries, as in the paper: "the MM can issue commands
/// and receive the notification of events only at the beginning of a
/// timeslice").
struct JobTimes {
  sim::SimTime submit{};
  sim::SimTime transfer_start{};
  sim::SimTime transfer_done{};
  sim::SimTime launch_issued{};
  sim::SimTime started{};
  sim::SimTime finished{};  // MM observes termination

  // Recovery bookkeeping: when this job was last killed-and-requeued
  // (zero if never). The requeue-to-run latency histogram measures
  // last_requeue -> started of the replacement incarnation.
  sim::SimTime last_requeue{};

  // Application-side ground truth (what a self-timing benchmark such
  // as SWEEP3D would report), free of the MM's boundary rounding.
  sim::SimTime first_proc_started{};
  sim::SimTime last_proc_exited{};
  sim::SimTime app_runtime() const {
    return last_proc_exited - first_proc_started;
  }

  /// The paper's "send time": read + broadcast + write + notify MM.
  sim::SimTime send_time() const { return transfer_done - transfer_start; }
  /// The paper's "execute time": launch command to observed exit.
  sim::SimTime execute_time() const { return finished - launch_issued; }
  /// Total launch cost as reported in Figure 2.
  sim::SimTime launch_time() const { return send_time() + execute_time(); }
  /// Wall-clock from submission to observed completion.
  sim::SimTime turnaround() const { return finished - submit; }
};

class Job {
 public:
  Job(JobId id, JobSpec spec) : id_(id), spec_(std::move(spec)) {}

  JobId id() const { return id_; }
  const JobSpec& spec() const { return spec_; }
  JobState state() const { return state_; }
  void set_state(JobState s) { state_ = s; }

  /// Allocation: contiguous node range and the matrix row (timeslot).
  net::NodeRange nodes() const { return nodes_; }
  int row() const { return row_; }
  void set_allocation(net::NodeRange nodes, int row) {
    nodes_ = nodes;
    row_ = row;
  }

  /// PEs are dealt round-robin-free: rank r lives on allocated node
  /// nodes().first + r / pes_per_node, CPU r % pes_per_node.
  int pes_per_node() const { return pes_per_node_; }
  void set_pes_per_node(int v) { pes_per_node_ = v; }
  int node_of_rank(int rank) const {
    return nodes_.first + rank / pes_per_node_;
  }
  int cpu_of_rank(int rank) const { return rank % pes_per_node_; }
  int ranks_on_node(int node) const {
    const int base = (node - nodes_.first) * pes_per_node_;
    if (base >= spec_.npes) return 0;
    return std::min(pes_per_node_, spec_.npes - base);
  }
  int first_rank_on_node(int node) const {
    return (node - nodes_.first) * pes_per_node_;
  }

  JobTimes& times() { return times_; }
  const JobTimes& times() const { return times_; }

  /// Recovery lifecycle: each kill-and-requeue bumps the incarnation.
  /// Stale coroutines (PEs, transfers, launches) compare their
  /// snapshot against the current value and fast-forward to exit.
  int incarnation() const { return incarnation_; }
  void bump_incarnation() { ++incarnation_; }
  /// Times this job was killed and requeued (== incarnation).
  int restarts() const { return incarnation_; }

 private:
  JobId id_;
  JobSpec spec_;
  JobState state_ = JobState::Queued;
  net::NodeRange nodes_{};
  int row_ = 0;
  int pes_per_node_ = 1;
  int incarnation_ = 0;
  JobTimes times_;
};

}  // namespace storm::core
