#include "storm/ousterhout_matrix.hpp"

#include <algorithm>
#include <cassert>

namespace storm::core {

OusterhoutMatrix::OusterhoutMatrix(int nodes, int rows)
    : nodes_(nodes),
      evicted_(nodes),
      cell_job_(static_cast<std::size_t>(rows) * nodes, kInvalidJob),
      row_jobs_(rows) {
  assert(rows >= 1);
  rows_.reserve(rows);
  for (int r = 0; r < rows; ++r) {
    rows_.push_back(std::make_unique<BuddyAllocator>(nodes));
  }
}

void OusterhoutMatrix::fill_cells(int row, net::NodeRange range, JobId job) {
  JobId* cells = cell_job_.data() + static_cast<std::size_t>(row) * nodes_;
  for (int n = range.first; n <= range.last(); ++n) cells[n] = job;
}

void OusterhoutMatrix::add_row_job(int row, JobId job) {
  auto& jobs = row_jobs_[row];
  if (jobs.empty()) ++active_row_count_;
  jobs.insert(std::lower_bound(jobs.begin(), jobs.end(), job), job);
}

void OusterhoutMatrix::drop_row_job(int row, JobId job) {
  auto& jobs = row_jobs_[row];
  const auto it = std::lower_bound(jobs.begin(), jobs.end(), job);
  assert(it != jobs.end() && *it == job);
  jobs.erase(it);
  if (jobs.empty()) --active_row_count_;
}

std::optional<std::pair<int, net::NodeRange>> OusterhoutMatrix::place(
    JobId job, int count) {
  assert(!placements_.contains(job));
  for (int r = 0; r < rows(); ++r) {
    if (auto range = rows_[r]->allocate(count)) {
      placements_.emplace(job, Placement{r, *range});
      fill_cells(r, *range, job);
      add_row_job(r, job);
      return std::make_pair(r, *range);
    }
  }
  return std::nullopt;
}

void OusterhoutMatrix::remove(JobId job) {
  const auto it = placements_.find(job);
  assert(it != placements_.end());
  rows_[it->second.row]->release(it->second.range);
  fill_cells(it->second.row, it->second.range, kInvalidJob);
  drop_row_job(it->second.row, job);
  placements_.erase(it);
}

std::optional<std::pair<int, net::NodeRange>> OusterhoutMatrix::placement(
    JobId job) const {
  const auto it = placements_.find(job);
  if (it == placements_.end()) return std::nullopt;
  return std::make_pair(it->second.row, it->second.range);
}

bool OusterhoutMatrix::evict_node(int node) {
  assert(node >= 0 && node < nodes_);
  if (evicted_.test(node)) return true;
  const net::NodeRange cell{node, 1};
  // All-or-nothing: probe every row before committing so a half-evicted
  // node can't exist.
  for (int r = 0; r < rows(); ++r) {
    if (!rows_[r]->reserve_range(cell)) {
      for (int u = 0; u < r; ++u) rows_[u]->release(cell);
      return false;
    }
  }
  evicted_.set(node, true);
  return true;
}

void OusterhoutMatrix::restore_node(int node) {
  assert(node >= 0 && node < nodes_);
  if (!evicted_.test(node)) return;
  const net::NodeRange cell{node, 1};
  for (auto& row : rows_) row->release(cell);
  evicted_.set(node, false);
}

bool OusterhoutMatrix::evicted(int node) const {
  return node >= 0 && node < nodes_ && evicted_.test(node);
}

bool OusterhoutMatrix::place_at(JobId job, int row, net::NodeRange range) {
  assert(!placements_.contains(job));
  assert(row >= 0 && row < rows());
  if (!rows_[row]->reserve_range(range)) return false;
  placements_.emplace(job, Placement{row, range});
  fill_cells(row, range, job);
  add_row_job(row, job);
  return true;
}

std::vector<int> OusterhoutMatrix::active_rows() const {
  std::vector<int> out;
  out.reserve(active_row_count_);
  for (int r = 0; r < rows(); ++r) {
    if (!row_jobs_[r].empty()) out.push_back(r);
  }
  return out;
}

std::vector<JobId> OusterhoutMatrix::jobs_in_row(int row) const {
  return row_jobs_[row];
}

int OusterhoutMatrix::nth_active_row(int k) const {
  for (int r = 0; r < rows(); ++r) {
    if (!row_jobs_[r].empty() && k-- == 0) return r;
  }
  assert(false && "nth_active_row: k out of range");
  return -1;
}

int OusterhoutMatrix::free_node_slots() const {
  int free = 0;
  for (const auto& row : rows_) free += row->free_nodes();
  return free;
}

double OusterhoutMatrix::occupancy() const {
  std::int64_t used = 0;
  for (const auto& [job, p] : placements_) used += p.range.count;
  return static_cast<double>(used) /
         (static_cast<double>(nodes_) * static_cast<double>(rows()));
}

}  // namespace storm::core
