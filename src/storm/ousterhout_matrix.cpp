#include "storm/ousterhout_matrix.hpp"

#include <algorithm>
#include <cassert>

namespace storm::core {

OusterhoutMatrix::OusterhoutMatrix(int nodes, int rows)
    : nodes_(nodes), evicted_(nodes, false) {
  assert(rows >= 1);
  rows_.reserve(rows);
  for (int r = 0; r < rows; ++r) {
    rows_.push_back(std::make_unique<BuddyAllocator>(nodes));
  }
}

std::optional<std::pair<int, net::NodeRange>> OusterhoutMatrix::place(
    JobId job, int count) {
  assert(!placements_.contains(job));
  for (int r = 0; r < rows(); ++r) {
    if (auto range = rows_[r]->allocate(count)) {
      placements_.emplace(job, Placement{r, *range});
      return std::make_pair(r, *range);
    }
  }
  return std::nullopt;
}

void OusterhoutMatrix::remove(JobId job) {
  const auto it = placements_.find(job);
  assert(it != placements_.end());
  rows_[it->second.row]->release(it->second.range);
  placements_.erase(it);
}

std::optional<std::pair<int, net::NodeRange>> OusterhoutMatrix::placement(
    JobId job) const {
  const auto it = placements_.find(job);
  if (it == placements_.end()) return std::nullopt;
  return std::make_pair(it->second.row, it->second.range);
}

bool OusterhoutMatrix::evict_node(int node) {
  assert(node >= 0 && node < nodes_);
  if (evicted_[node]) return true;
  const net::NodeRange cell{node, 1};
  // All-or-nothing: probe every row before committing so a half-evicted
  // node can't exist.
  for (int r = 0; r < rows(); ++r) {
    if (!rows_[r]->reserve_range(cell)) {
      for (int u = 0; u < r; ++u) rows_[u]->release(cell);
      return false;
    }
  }
  evicted_[node] = true;
  return true;
}

void OusterhoutMatrix::restore_node(int node) {
  assert(node >= 0 && node < nodes_);
  if (!evicted_[node]) return;
  const net::NodeRange cell{node, 1};
  for (auto& row : rows_) row->release(cell);
  evicted_[node] = false;
}

bool OusterhoutMatrix::evicted(int node) const {
  return node >= 0 && node < nodes_ && evicted_[node];
}

bool OusterhoutMatrix::place_at(JobId job, int row, net::NodeRange range) {
  assert(!placements_.contains(job));
  assert(row >= 0 && row < rows());
  if (!rows_[row]->reserve_range(range)) return false;
  placements_.emplace(job, Placement{row, range});
  return true;
}

std::vector<int> OusterhoutMatrix::active_rows() const {
  std::vector<bool> seen(rows_.size(), false);
  for (const auto& [job, p] : placements_) seen[p.row] = true;
  std::vector<int> out;
  for (int r = 0; r < rows(); ++r) {
    if (seen[r]) out.push_back(r);
  }
  return out;
}

std::vector<JobId> OusterhoutMatrix::jobs_in_row(int row) const {
  std::vector<JobId> out;
  for (const auto& [job, p] : placements_) {
    if (p.row == row) out.push_back(job);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int OusterhoutMatrix::free_node_slots() const {
  int free = 0;
  for (const auto& row : rows_) free += row->free_nodes();
  return free;
}

double OusterhoutMatrix::occupancy() const {
  std::int64_t used = 0;
  for (const auto& [job, p] : placements_) used += p.range.count;
  return static_cast<double>(used) /
         (static_cast<double>(nodes_) * static_cast<double>(rows()));
}

}  // namespace storm::core
