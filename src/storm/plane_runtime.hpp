// The terascale plane runtime: the lean stand-in for 64k nodes' worth
// of NM/PL dæmons (ClusterConfig::plane_mode).
//
// In full simulation every MM→NM multicast fans out into N mailbox
// puts, N dæmon wakeups and N per-node coroutine steps. Beyond a few
// thousand nodes those dæmons dominate both memory (one OS scheduler
// and proc table per node) and event count. The plane runtime replaces
// them with their aggregate effect on the node-state plane:
//
//   Heartbeat   one event at t+5µs fills every destination's
//               kHeartbeatAddr slot with the new epoch.
//   Strobe      one event at t + (switch | idle cost) publishes the row
//               in kStrobeRowAddr across the range and re-points the
//               gang-work accounting (below).
//   Launch      fork costs are sampled per (job, incarnation, node,
//               rank) from a deterministic stream; addr_launched fills
//               once at the *latest* fork completion. The MM only ever
//               observes the range through all-of conditionals, so the
//               single fill is indistinguishable from N per-node
//               writes. Zero-rank tail nodes (buddy rounding) report
//               launched+done immediately, as real NMs do.
//   Prepare     a per-(job, incarnation) transfer sink models each
//               destination's sequential RAM-disk write pipe and fills
//               addr_written chunk by chunk — the real flow-control
//               CAW polls and the XFER pipeline above it are untouched.
//   Kill        drops the runtime state of the incarnation.
//
// Gang work accounting: plane-mode jobs carry JobSpec::plane_work of
// per-PE compute instead of a program. Strobes are global and the work
// is uniform, so one scalar `remaining` per job suffices: it drains
// while the job's row is the enacted row, pays the OS switch penalty on
// each reactivation, and completion fires through an epoch-guarded
// event (deactivation invalidates a pending completion).
//
// Everything above the plane — MM boundary loop, Ousterhout matrix,
// buddy allocator, file-transfer protocol, QsNET latency/bandwidth —
// is the real implementation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fabric/message.hpp"
#include "net/node_state_plane.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"
#include "storm/job.hpp"

namespace storm::core {

class Cluster;

class PlaneRuntime {
 public:
  explicit PlaneRuntime(Cluster& cluster);

  /// Batched range delivery of one MM command (the fabric's DeliverFn
  /// end point in plane mode).
  void deliver(net::NodeRange dsts, const fabric::ControlMessage& msg,
               fabric::TraceContext ctx);

  /// QsNet range-signal hook: absorbs the per-destination ev_chunk
  /// fan-out of a file-transfer XFER-AND-SIGNAL into the transfer
  /// sink. Returns false for signals the runtime does not model (the
  /// net layer then falls back to per-node event delivery).
  bool on_remote_signal(int src, net::NodeRange dsts, net::EventAddr ev);

  /// The row currently enacted across the plane-managed nodes.
  int current_row() const { return current_row_; }

 private:
  // One gang's scalar work accounting (plane_work > 0 jobs only).
  struct GangJob {
    int inc = 0;
    int row = 0;
    net::NodeRange span{};  // nodes that host ranks (fills addr_done)
    sim::SimTime remaining{};
    sim::SimTime activated_at{};
    bool started = false;  // forks done, work accounting live
    bool active = false;   // row currently enacted
    bool ever_suspended = false;
    std::uint64_t epoch = 0;  // invalidates stale completion events
  };

  // One destination subrange's sequential RAM-disk write pipe.
  struct SinkSub {
    net::NodeRange range{};
    int next_chunk = 0;
    sim::SimTime pipe_free{};
  };
  struct Sink {
    JobId job = kInvalidJob;
    int inc = 0;
    sim::SimTime write_cost{};  // RAM-disk op setup + memcpy per chunk
    std::vector<SinkSub> subs;
  };

  void handle_launch(net::NodeRange dsts, JobId id, int inc);
  void handle_strobe(net::NodeRange dsts, int row);
  void enact(net::NodeRange dsts, int row);
  void activate(JobId id, GangJob& g, sim::SimTime t);
  void deactivate(GangJob& g, sim::SimTime t);
  void schedule_completion(JobId id, GangJob& g);
  void complete(JobId id, std::uint64_t epoch);
  sim::SimTime sample_fork(JobId job, int inc, int node, int k) const;

  Cluster& cluster_;
  int current_row_ = 0;
  std::unordered_map<JobId, GangJob> gangs_;
  // Keyed by job * kMaxIncarnations + incarnation.
  std::unordered_map<int, Sink> sinks_;
};

}  // namespace storm::core
