#include "storm/replication/replication.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "storm/cluster.hpp"
#include "telemetry/metrics.hpp"

namespace storm::core {

using fabric::Component;
using fabric::ControlMessage;
using net::NodeRange;
using sim::SimTime;
using sim::Task;

ReplicationGroup::ReplicationGroup(Cluster& cluster, int replicas)
    : cluster_(cluster) {
  const StormParams& sp = cluster_.config().storm;
  assert(replicas >= 2 && replicas <= cluster_.config().nodes);
  // The lease must expire before any follower can be granted a new
  // one: a voter withholds its grant for repl_election_base of leader
  // freshness, so base > lease makes overlapping leases impossible.
  assert(sp.repl_election_base > sp.repl_lease &&
         "lease/election rule: repl_election_base must exceed repl_lease");
  (void)sp;
  reps_.resize(static_cast<std::size_t>(replicas));
  // Rank 0 rides the primary MM's node; ranks 1.. take the top nodes
  // (mirroring the hot-standby's default placement on the last node).
  reps_[0].node = 0;
  for (int r = 1; r < replicas; ++r) {
    reps_[static_cast<std::size_t>(r)].node =
        cluster_.config().nodes - replicas + r;
    assert(reps_[static_cast<std::size_t>(r)].node > 0);
  }
  for (auto& rep : reps_) {
    rep.takeover = std::make_unique<sim::Trigger>(sim());
  }

  telemetry::MetricsRegistry& m = cluster_.metrics();
  mt_commits_ = &m.counter("mm.repl.commits");
  mt_appends_ = &m.counter("mm.repl.appends");
  mt_acks_ = &m.counter("mm.repl.acks");
  mt_renews_ = &m.counter("mm.repl.lease.renewals");
  mt_elections_ = &m.counter("mm.repl.elections");
  mt_takeovers_ = &m.counter("mm.repl.takeovers");
  mt_stale_ = &m.counter("mm.repl.stale_aborts");
  mt_commit_ns_ = &m.histogram("mm.repl.commit_ns");
}

sim::Simulator& ReplicationGroup::sim() const { return cluster_.sim(); }
SimTime ReplicationGroup::now() const { return cluster_.sim().now(); }

SimTime ReplicationGroup::election_timeout(int rank) const {
  const StormParams& sp = cluster_.config().storm;
  return sp.repl_election_base + sp.repl_election_stagger * rank;
}

int ReplicationGroup::rank_of_node(int node) const {
  for (std::size_t r = 0; r < reps_.size(); ++r) {
    if (reps_[r].node == node) return static_cast<int>(r);
  }
  return -1;
}

void ReplicationGroup::start() {
  const StormParams& sp = cluster_.config().storm;
  const SimTime t = now();
  Rep& r0 = reps_[0];
  r0.role = ReplRole::Leader;
  r0.next.assign(reps_.size(), 0);
  r0.match.assign(reps_.size(), 0);
  r0.lease_until = t + sp.repl_lease;
  for (auto& rep : reps_) rep.last_heard = t;
  sim().schedule_periodic(sp.repl_tick, t + sp.repl_tick,
                          [this] { tick(); });
}

bool ReplicationGroup::may_lead(int rank) const {
  const Rep& r = reps_[static_cast<std::size_t>(rank)];
  return r.role == ReplRole::Leader && !r.down && !r.mm_dead &&
         now() <= r.lease_until;
}

// ---------------------------------------------------------------------------
// The protocol tick: lease renewal (leaders) + staggered elections
// (followers). One shared periodic event; everything it does is a
// pure function of replica state and the clock — no randomness.
// ---------------------------------------------------------------------------

void ReplicationGroup::tick() {
  const StormParams& sp = cluster_.config().storm;
  const SimTime t = now();
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    Rep& r = reps_[i];
    if (r.down) continue;
    if (r.role == ReplRole::Leader) {
      if (t > r.lease_until) {
        // Could not renew within one lease (dead majority, or an
        // asymmetric partition eating our acks): abdicate on the spot.
        // The silence that follows is what lets the majority side
        // elect a successor.
        step_down(r, r.term, r.lease_until);
        continue;
      }
      if (t >= r.round_time + sp.repl_renew) renew_round(static_cast<int>(i));
      continue;
    }
    if (r.mm_dead) continue;  // votes, never leads
    const SimTime timeout = election_timeout(static_cast<int>(i));
    if (t - r.last_heard < timeout) continue;
    if (r.role == ReplRole::Candidate && t - r.last_candidacy < timeout) {
      continue;  // an election is already in flight; wait it out
    }
    // Leader silence past this rank's staggered threshold: run a
    // term-bumped election. The stagger (not randomness) is what
    // prevents split votes.
    if (r.role != ReplRole::Candidate) r.candidacy_heard = r.last_heard;
    r.role = ReplRole::Candidate;
    r.term = std::max(r.term, r.voted_term) + 1;
    r.voted_term = r.term;
    r.grants = 1;  // own vote
    r.last_candidacy = t;
    ++elections_;
    mt_elections_->add(1);
    const int last_term = r.log.empty() ? 0 : r.log.back().term;
    const ControlMessage steal = ControlMessage::repl(
        repl_pack_verb(ReplVerb::LeaseSteal, static_cast<int>(i), 0), r.term,
        static_cast<std::int32_t>(r.log.size()),
        repl_pack_entry(EntryKind::NoOp, 0, last_term), 0);
    for (std::size_t j = 0; j < reps_.size(); ++j) {
      if (j != i) send(static_cast<int>(i), static_cast<int>(j), steal);
    }
    if (r.grants >= majority()) become_leader(static_cast<int>(i));
  }
}

void ReplicationGroup::renew_round(int rank) {
  Rep& r = reps_[static_cast<std::size_t>(rank)];
  ++r.round;
  r.round_time = now();
  r.round_sent[r.round & (Rep::kRounds - 1)] = now();
  r.round_ackers[r.round & (Rep::kRounds - 1)] = 0;
  for (std::size_t f = 0; f < reps_.size(); ++f) {
    if (static_cast<int>(f) == rank) continue;
    if (r.next[f] < static_cast<std::int64_t>(r.log.size())) {
      const LogEntry& e = r.log[static_cast<std::size_t>(r.next[f])];
      mt_appends_->add(1);
      send(rank, static_cast<int>(f),
           ControlMessage::repl(
               repl_pack_verb(ReplVerb::Append, rank, r.round), r.term,
               static_cast<std::int32_t>(r.next[f]),
               repl_pack_entry(e.kind, e.job, e.term), e.args));
    } else {
      send(rank, static_cast<int>(f),
           ControlMessage::repl(repl_pack_verb(ReplVerb::Renew, rank, r.round),
                                r.term, 0, 0, r.commit));
    }
  }
}

void ReplicationGroup::send_next(int leader, int follower) {
  Rep& r = reps_[static_cast<std::size_t>(leader)];
  const std::int64_t idx = r.next[static_cast<std::size_t>(follower)];
  if (idx >= static_cast<std::int64_t>(r.log.size())) return;
  const LogEntry& e = r.log[static_cast<std::size_t>(idx)];
  mt_appends_->add(1);
  send(leader, follower,
       ControlMessage::repl(repl_pack_verb(ReplVerb::Append, leader, r.round),
                            r.term, static_cast<std::int32_t>(idx),
                            repl_pack_entry(e.kind, e.job, e.term), e.args));
}

void ReplicationGroup::send(int from, int to, const ControlMessage& m) {
  if (reps_[static_cast<std::size_t>(from)].down) return;
  sim().spawn(send_task(reps_[static_cast<std::size_t>(from)].node,
                        reps_[static_cast<std::size_t>(to)].node, m));
}

Task<> ReplicationGroup::send_task(int from_node, int to_node,
                                   ControlMessage m) {
  co_await cluster_.multicast_command(Component::MM, from_node,
                                      NodeRange{to_node, 1}, m);
}

// ---------------------------------------------------------------------------
// Replication (leader side)
// ---------------------------------------------------------------------------

Task<bool> ReplicationGroup::replicate(int rank, EntryKind kind, JobId job,
                                       std::int64_t args) {
  Rep& r = reps_[static_cast<std::size_t>(rank)];
  if (!may_lead(rank)) {
    ++stale_aborts_;
    mt_stale_->add(1);
    co_return false;
  }
  const SimTime t0 = now();
  const std::int64_t idx = static_cast<std::int64_t>(r.log.size());
  const int term = r.term;
  r.log.push_back(LogEntry{kind, term, job, args});
  for (std::size_t f = 0; f < reps_.size(); ++f) {
    if (static_cast<int>(f) != rank && r.next[f] == idx) {
      send_next(rank, static_cast<int>(f));
    }
  }
  if (majority() == 1) advance_commit(rank);  // degenerate single-replica
  auto w = std::make_shared<CommitWaiter>();
  w->rank = rank;
  w->index = idx;
  w->term = term;
  w->trigger = std::make_unique<sim::Trigger>(sim());
  waiters_.push_back(w);
  co_await w->trigger->wait();
  if (w->ok) {
    ++commits_;
    mt_commits_->add(1);
    mt_commit_ns_->record(now() - t0);
  } else {
    ++stale_aborts_;
    mt_stale_->add(1);
  }
  co_return w->ok;
}

void ReplicationGroup::advance_commit(int rank) {
  Rep& r = reps_[static_cast<std::size_t>(rank)];
  std::vector<std::int64_t> idxs;
  idxs.reserve(reps_.size());
  idxs.push_back(static_cast<std::int64_t>(r.log.size()));  // self
  for (std::size_t f = 0; f < reps_.size(); ++f) {
    if (static_cast<int>(f) != rank) idxs.push_back(r.match[f]);
  }
  std::sort(idxs.begin(), idxs.end(), std::greater<>());
  const std::int64_t m = idxs[static_cast<std::size_t>(majority() - 1)];
  // Raft's commit rule: a leader only commits entries of its own term
  // (older-term entries ride along) — required for the committed
  // prefix to survive leader changes.
  if (m > r.commit && m >= 1 &&
      r.log[static_cast<std::size_t>(m - 1)].term == r.term) {
    apply_to(r, m);
    resolve_waiters();
  }
}

void ReplicationGroup::apply_to(Rep& r, std::int64_t new_commit) {
  while (r.commit < new_commit) {
    r.sm.apply(r.log[static_cast<std::size_t>(r.commit)]);
    ++r.commit;
  }
}

void ReplicationGroup::resolve_waiters() {
  // Fire outside the scan: a resumed waiter may replicate again and
  // push onto waiters_.
  std::vector<std::shared_ptr<CommitWaiter>> fire;
  for (auto it = waiters_.begin(); it != waiters_.end();) {
    CommitWaiter& w = **it;
    const Rep& r = reps_[static_cast<std::size_t>(w.rank)];
    const bool intact =
        w.index < static_cast<std::int64_t>(r.log.size()) &&
        r.log[static_cast<std::size_t>(w.index)].term == w.term;
    if (intact && r.commit > w.index) {
      w.resolved = true;
      w.ok = true;
    } else if (!intact || r.role != ReplRole::Leader || r.down || r.mm_dead) {
      w.resolved = true;
      w.ok = false;
    }
    if (w.resolved) {
      fire.push_back(*it);
      it = waiters_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& w : fire) w->trigger->fire();
}

// ---------------------------------------------------------------------------
// Role transitions
// ---------------------------------------------------------------------------

void ReplicationGroup::become_leader(int rank) {
  const StormParams& sp = cluster_.config().storm;
  Rep& r = reps_[static_cast<std::size_t>(rank)];
  r.role = ReplRole::Leader;
  r.leader_term = r.term;
  r.next.assign(reps_.size(), static_cast<std::int64_t>(r.log.size()));
  r.match.assign(reps_.size(), 0);
  r.round_time = now();
  r.round_sent.fill(SimTime{});
  r.round_ackers.fill(0);
  // Every granter withheld its vote for longer than the old lease
  // could outlive, so an immediate lease is safe (see header).
  r.lease_until = now() + sp.repl_lease;
  failover_gap_ = now() - r.candidacy_heard;
  active_rank_ = rank;
  mt_takeovers_->add(1);
  // Commit the term with a NoOp (a fresh leader cannot commit
  // older-term entries directly).
  r.log.push_back(LogEntry{EntryKind::NoOp, r.term, 0, 0});
  for (std::size_t f = 0; f < reps_.size(); ++f) {
    if (static_cast<int>(f) != rank) send_next(rank, static_cast<int>(f));
  }
  r.takeover->fire();
}

void ReplicationGroup::step_down(Rep& r, int new_term, SimTime heard) {
  r.role = ReplRole::Follower;
  r.term = std::max(r.term, new_term);
  r.grants = 0;
  r.lease_until = SimTime{};
  r.last_heard = heard;
  resolve_waiters();
}

void ReplicationGroup::follow(Rep& r, int term) {
  if (term > r.leader_term || r.role != ReplRole::Follower) {
    // First contact with this term's leader: everything past our own
    // commit is unverified against the new leader's log — discard it
    // and let in-order appends rebuild the suffix. Committed entries
    // are never discarded.
    r.role = ReplRole::Follower;
    r.grants = 0;
    r.lease_until = SimTime{};
    r.leader_term = term;
    r.log.resize(static_cast<std::size_t>(r.commit));
  }
  r.term = std::max(r.term, term);
  r.last_heard = now();
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void ReplicationGroup::receive(int rank, const ControlMessage& msg) {
  assert(msg.cls == fabric::MsgClass::Repl);
  Rep& me = reps_[static_cast<std::size_t>(rank)];
  if (me.down) return;
  const fabric::ReplPayload& p = msg.u.repl;
  const ReplVerb verb = repl_verb(p.verb_from);
  const int from = repl_from(p.verb_from);
  const int round = repl_round(p.verb_from);

  switch (verb) {
    case ReplVerb::Append: {
      if (p.term < me.term) {
        // Stale leader: the ack's term tells it to step down.
        send(rank, from,
             ControlMessage::repl(repl_pack_verb(ReplVerb::Ack, rank, round),
                                  me.term,
                                  static_cast<std::int32_t>(me.log.size()), 0,
                                  0));
        return;
      }
      follow(me, p.term);
      const std::int64_t idx = p.index;
      const EntryKind kind = repl_entry_kind(p.kind_job);
      const int et = repl_entry_term(p.kind_job);
      if (idx < static_cast<std::int64_t>(me.log.size()) &&
          me.log[static_cast<std::size_t>(idx)].term != et) {
        assert(idx >= me.commit && "a committed entry can never conflict");
        me.log.resize(static_cast<std::size_t>(idx));
      }
      if (idx == static_cast<std::int64_t>(me.log.size())) {
        me.log.push_back(
            LogEntry{kind, et, repl_entry_job(p.kind_job), p.args});
      }
      // idx beyond our tail is a gap (lost ack backed the leader off
      // less than it thought): the match index below corrects it.
      send(rank, from,
           ControlMessage::repl(repl_pack_verb(ReplVerb::Ack, rank, round),
                                me.term,
                                static_cast<std::int32_t>(me.log.size()), 0,
                                0));
      return;
    }
    case ReplVerb::Renew: {
      if (p.term < me.term) {
        send(rank, from,
             ControlMessage::repl(repl_pack_verb(ReplVerb::Ack, rank, round),
                                  me.term,
                                  static_cast<std::int32_t>(me.log.size()), 0,
                                  0));
        return;
      }
      follow(me, p.term);
      // The leader's commit index rides the renewal; our log is an
      // in-order prefix of the leader's (follow() truncated anything
      // unverified), so committing min(leader commit, our tail) is
      // safe.
      const std::int64_t c =
          std::min(p.args, static_cast<std::int64_t>(me.log.size()));
      if (c > me.commit) apply_to(me, c);
      send(rank, from,
           ControlMessage::repl(repl_pack_verb(ReplVerb::Ack, rank, round),
                                me.term,
                                static_cast<std::int32_t>(me.log.size()), 0,
                                0));
      return;
    }
    case ReplVerb::Ack: {
      mt_acks_->add(1);
      if (me.role != ReplRole::Leader) return;
      if (p.term > me.term) {
        step_down(me, p.term, now());
        return;
      }
      Rep& r = me;
      r.match[static_cast<std::size_t>(from)] = p.index;
      r.next[static_cast<std::size_t>(from)] = p.index;
      // Lease renewal: the lease extends from the instant the acked
      // round was SENT (the classic lease-clock rule), so any ack that
      // returns within one lease keeps the leadership alive — even
      // when the round trip outlasts the 5 ms renew cadence.
      const int delta = (r.round - round) & 0x7FFF;
      if (delta < Rep::kRounds) {
        const int slot = (r.round - delta) & (Rep::kRounds - 1);
        const std::uint32_t bit = std::uint32_t{1} << from;
        if (!(r.round_ackers[slot] & bit)) {
          r.round_ackers[slot] |= bit;
          const SimTime sent = r.round_sent[slot];
          if (std::popcount(r.round_ackers[slot]) >= majority() - 1 &&
              sent + cluster_.config().storm.repl_lease > r.lease_until) {
            r.lease_until = sent + cluster_.config().storm.repl_lease;
            mt_renews_->add(1);
          }
        }
      }
      advance_commit(rank);
      send_next(rank, from);  // pipeline the follower's next entry
      return;
    }
    case ReplVerb::LeaseSteal: {
      // Vote withholding: while our leader is fresh (or we ARE the
      // leaseholder) no grant leaves this node — the rule that makes
      // leases non-overlapping.
      if (me.role == ReplRole::Leader && now() <= me.lease_until) return;
      if (now() - me.last_heard <
          cluster_.config().storm.repl_election_base) {
        return;
      }
      if (p.term <= me.voted_term) return;
      // Completeness: the candidate's (last term, length) must not
      // trail ours, or committed entries could be lost.
      const int cand_last = repl_entry_term(p.kind_job);
      const int my_last = me.log.empty() ? 0 : me.log.back().term;
      const std::int64_t cand_len = p.index;
      if (cand_last < my_last ||
          (cand_last == my_last &&
           cand_len < static_cast<std::int64_t>(me.log.size()))) {
        return;
      }
      me.voted_term = p.term;
      send(rank, from,
           ControlMessage::repl(repl_pack_verb(ReplVerb::LeaseGrant, rank, 0),
                                p.term, 0, 0, 0));
      return;
    }
    case ReplVerb::LeaseGrant: {
      if (me.role != ReplRole::Candidate || p.term != me.term) return;
      if (++me.grants >= majority()) become_leader(rank);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault hooks
// ---------------------------------------------------------------------------

void ReplicationGroup::replica_crashed(int rank) {
  Rep& r = reps_[static_cast<std::size_t>(rank)];
  r.down = true;
  r.mm_dead = true;
  r.lease_until = SimTime{};
  if (r.role == ReplRole::Leader) r.role = ReplRole::Follower;
  resolve_waiters();
}

void ReplicationGroup::replica_recovered(int rank) {
  Rep& r = reps_[static_cast<std::size_t>(rank)];
  r.down = false;
  r.last_heard = now();  // grace period before it could vote again
}

void ReplicationGroup::mm_crashed(int rank) {
  Rep& r = reps_[static_cast<std::size_t>(rank)];
  r.mm_dead = true;
  if (r.role == ReplRole::Leader) {
    step_down(r, r.term, now());
  } else {
    resolve_waiters();
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<ReplicaStatus> ReplicationGroup::status() const {
  std::int64_t floor = reps_.empty() ? 0 : reps_[0].commit;
  for (const Rep& r : reps_) floor = std::min(floor, r.commit);
  std::vector<ReplicaStatus> out;
  out.reserve(reps_.size());
  const SimTime t = now();
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    const Rep& r = reps_[i];
    ReplicaStatus s;
    s.rank = static_cast<int>(i);
    s.node = r.node;
    s.role = r.role;
    s.term = r.term;
    s.commit = r.commit;
    s.applied = r.sm.applied();
    s.log_size = static_cast<std::int64_t>(r.log.size());
    s.lease_ns = r.role == ReplRole::Leader && r.lease_until > t
                     ? (r.lease_until - t).raw_ns()
                     : 0;
    s.floor_index = floor;
    s.floor_digest = r.sm.digest_at(floor);
    out.push_back(s);
  }
  return out;
}

}  // namespace storm::core
