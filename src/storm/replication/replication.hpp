// Quorum-replicated Machine Manager state (DESIGN §3.6).
//
// A ReplicationGroup spans N (default 3) MM replicas: the primary on
// node 0 plus followers on the machine's top nodes. Every
// state-changing MM command (placement, kill, eviction, rejoin,
// schedule change) is serialized as a typed log entry, shipped to the
// followers as MsgClass::Repl control messages over the ordinary
// command fabric (wire leg + per-node NM mailbox delivery, so fault
// middleware sees and can drop every message), and acknowledged;
// commitment is majority ack. Committed entries fold into each
// replica's MmStateMachine through the single apply() choke point, so
// two replicas that have committed the same prefix carry the same
// rolling digest — the committed-prefix-agreement invariant checks
// exactly that.
//
// Leadership is a lease, not a silence timeout: the leader renews by
// round-tagged Append/Renew messages every repl_renew and extends its
// lease to round_start + repl_lease only when a majority acks that
// round. A leader whose lease expires abdicates on the spot and
// replicate() refuses (stale aborts) — so an asymmetrically
// partitioned leader that can send but not hear acks stops committing
// within one lease, long before any follower notices. Followers run a
// deterministically staggered election (repl_election_base +
// rank * repl_election_stagger of leader silence) with term-bumped
// LeaseSteal/LeaseGrant voting; a grant is withheld while the voter's
// current leader is fresh and requires the candidate's log to be at
// least as complete, and since repl_election_base > repl_lease every
// granter's old lease has provably expired before a new one is issued
// — two valid leaders cannot coexist, by construction.
//
// Everything is deterministic: no randomness is consumed anywhere in
// the protocol (timeouts are staggered by rank, not jittered), so two
// same-seed campaign runs replay byte-identically.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "fabric/message.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "storm/protocol.hpp"

namespace storm::telemetry {
class Counter;
class Histogram;
}

namespace storm::core {

class Cluster;

enum class ReplVerb : std::uint8_t {
  Append = 0,  // one log entry at `index` (doubles as lease renewal)
  Ack,         // follower match index, echoing the lease round
  Renew,       // heartbeat-only renewal carrying the leader commit
  LeaseSteal,  // term-bumped election request
  LeaseGrant,  // vote for the requesting candidate's term
};

enum class ReplRole : std::uint8_t { Follower = 0, Candidate, Leader };

constexpr std::string_view to_string(ReplRole r) {
  switch (r) {
    case ReplRole::Follower: return "follower";
    case ReplRole::Candidate: return "candidate";
    case ReplRole::Leader: return "leader";
  }
  return "?";
}

/// What kind of MM command a log entry carries. The entry is the
/// *decision*; the leader enacts its effects only after commit.
enum class EntryKind : std::uint8_t {
  NoOp = 0,  // appended by a fresh leader to commit its term
  Place,     // job placement (matrix row + node range)
  Kill,      // kill/requeue of one incarnation
  Evict,     // node eviction from the buddy trees
  Rejoin,    // node re-admission
  Sched,     // strobe-schedule change (failover rebuild)
};

constexpr std::string_view to_string(EntryKind k) {
  switch (k) {
    case EntryKind::NoOp: return "noop";
    case EntryKind::Place: return "place";
    case EntryKind::Kill: return "kill";
    case EntryKind::Evict: return "evict";
    case EntryKind::Rejoin: return "rejoin";
    case EntryKind::Sched: return "sched";
  }
  return "?";
}

struct LogEntry {
  EntryKind kind = EntryKind::NoOp;
  int term = 0;
  JobId job = 0;
  std::int64_t args = 0;
};

/// The replicas' replay target: committed entries fold into a rolling
/// FNV-1a digest through the one apply() choke point. The full digest
/// history is kept so any committed prefix can be compared across
/// replicas (committed-prefix-agreement).
class MmStateMachine {
 public:
  MmStateMachine() { digests_.push_back(kOffset); }

  void apply(const LogEntry& e) {
    std::uint64_t h = digests_.back();
    h = fold(h, static_cast<std::uint64_t>(e.kind));
    h = fold(h, static_cast<std::uint64_t>(e.term));
    h = fold(h, static_cast<std::uint64_t>(e.job));
    h = fold(h, static_cast<std::uint64_t>(e.args));
    digests_.push_back(h);
  }

  /// Entries applied so far (== the replica's commit index).
  std::int64_t applied() const {
    return static_cast<std::int64_t>(digests_.size()) - 1;
  }

  /// Digest after applying entries [0, idx). idx must be <= applied().
  std::uint64_t digest_at(std::int64_t idx) const {
    return digests_[static_cast<std::size_t>(idx)];
  }

 private:
  static constexpr std::uint64_t kOffset = 0xCBF29CE484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  static std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xFF)) * kPrime;
    }
    return h;
  }

  std::vector<std::uint64_t> digests_;
};

/// One row of the query layer's `replicas` table.
struct ReplicaStatus {
  int rank = 0;
  int node = 0;
  ReplRole role = ReplRole::Follower;
  std::int64_t term = 0;
  std::int64_t commit = 0;
  std::int64_t applied = 0;
  std::int64_t log_size = 0;
  std::int64_t lease_ns = 0;       // remaining lease (leaders only)
  std::int64_t floor_index = 0;    // group-min commit at sample time
  std::uint64_t floor_digest = 0;  // this replica's digest at the floor
};

class ReplicationGroup {
 public:
  ReplicationGroup(Cluster& cluster, int replicas);

  /// Bootstrap: rank 0 is the leader of term 1 with an initial lease,
  /// and the protocol tick (elections + lease renewal) starts running.
  void start();

  int replicas() const { return static_cast<int>(reps_.size()); }
  int node_of_rank(int rank) const { return reps_[rank].node; }
  /// The replica rank hosted on `node`, or -1.
  int rank_of_node(int node) const;
  /// The rank whose MM currently owns the cluster (the bootstrap
  /// leader until an election moves it).
  int active_rank() const { return active_rank_; }

  /// True iff `rank` is the leader and its lease has not expired — the
  /// MM's gate for issuing any command.
  bool may_lead(int rank) const;

  /// Commit one command through the quorum. Returns true once the
  /// entry is committed (majority-acked); false when this replica is
  /// not the leaseholder or loses leadership before commit — the
  /// caller must not enact the command's effects then.
  sim::Task<bool> replicate(int rank, EntryKind kind, JobId job,
                            std::int64_t args);

  /// Protocol input: one MsgClass::Repl message delivered to the
  /// replica agent on `rank`'s node (called by the Cluster from the NM
  /// command loop).
  void receive(int rank, const fabric::ControlMessage& msg);

  /// Fired when `rank` wins an election; the standby MM parks on this
  /// instead of the silence-based standby_watch.
  sim::Trigger& takeover(int rank) { return *reps_[rank].takeover; }

  // --- fault hooks (called by the Cluster) -------------------------------
  /// Host node crashed: the replica is gone (no acks, no votes) and
  /// its MM is dead for good.
  void replica_crashed(int rank);
  /// Host node recovered: the replica agent acks and votes again, but
  /// the MM dæmon does not come back — the rank never leads again.
  void replica_recovered(int rank);
  /// MM dæmon crashed, node alive: the replication agent (hosted by
  /// the node's dæmon layer, like the NIC heartbeat word) keeps
  /// acking and voting, but the rank abdicates and never leads again.
  void mm_crashed(int rank);

  // --- introspection -----------------------------------------------------
  std::vector<ReplicaStatus> status() const;
  std::int64_t stale_aborts() const { return stale_aborts_; }
  std::int64_t commits() const { return commits_; }
  std::int64_t elections() const { return elections_; }
  /// Commit index of `rank` (entries [0, commit) are durable there).
  std::int64_t commit_index(int rank) const { return reps_[rank].commit; }
  /// Leader-loss-to-election-win gap of the most recent takeover.
  sim::SimTime last_failover_gap() const { return failover_gap_; }

 private:
  struct Rep {
    int node = -1;
    ReplRole role = ReplRole::Follower;
    int term = 1;
    int leader_term = 1;  // last term whose leader we synced with
    int voted_term = 0;   // highest term granted (or self-voted)
    int grants = 0;
    std::vector<LogEntry> log;
    std::int64_t commit = 0;
    MmStateMachine sm;
    sim::SimTime lease_until{};
    sim::SimTime last_heard{};
    sim::SimTime last_candidacy{};
    sim::SimTime candidacy_heard{};  // last_heard stashed at candidacy
    bool down = false;     // host node crashed
    bool mm_dead = false;  // MM dæmon gone; agent still acks/votes
    // leader bookkeeping
    std::vector<std::int64_t> next, match;
    int round = 0;
    sim::SimTime round_time{};
    // Rounds in flight: an ack extends the lease from the *send* time
    // of the round it answers, so renewal tolerates round-trip times
    // up to a full lease rather than one renew period. Ring of the
    // last kRounds rounds' send instants and acker bitmasks.
    static constexpr int kRounds = 64;
    std::array<sim::SimTime, kRounds> round_sent{};
    std::array<std::uint32_t, kRounds> round_ackers{};
    std::unique_ptr<sim::Trigger> takeover;
  };

  struct CommitWaiter {
    int rank = 0;
    std::int64_t index = 0;
    int term = 0;
    bool resolved = false;
    bool ok = false;
    std::unique_ptr<sim::Trigger> trigger;
  };

  sim::Simulator& sim() const;
  sim::SimTime now() const;
  int majority() const { return replicas() / 2 + 1; }
  sim::SimTime election_timeout(int rank) const;

  void tick();
  void become_leader(int rank);
  void step_down(Rep& r, int new_term, sim::SimTime heard);
  void follow(Rep& r, int term);
  void send(int from, int to, const fabric::ControlMessage& m);
  sim::Task<> send_task(int from_node, int to_node, fabric::ControlMessage m);
  /// Ship Append (if behind) or Renew to every live follower, tagged
  /// with the leader's current lease round.
  void renew_round(int rank);
  /// Ship the follower's next entry when one is pending.
  void send_next(int leader, int follower);
  void advance_commit(int rank);
  void apply_to(Rep& r, std::int64_t new_commit);
  void resolve_waiters();

  Cluster& cluster_;
  std::vector<Rep> reps_;
  std::vector<std::shared_ptr<CommitWaiter>> waiters_;
  int active_rank_ = 0;
  std::int64_t stale_aborts_ = 0;
  std::int64_t commits_ = 0;
  std::int64_t elections_ = 0;
  sim::SimTime failover_gap_{};

  telemetry::Counter* mt_commits_ = nullptr;       // mm.repl.commits
  telemetry::Counter* mt_appends_ = nullptr;       // mm.repl.appends
  telemetry::Counter* mt_acks_ = nullptr;          // mm.repl.acks
  telemetry::Counter* mt_renews_ = nullptr;        // mm.repl.lease.renewals
  telemetry::Counter* mt_elections_ = nullptr;     // mm.repl.elections
  telemetry::Counter* mt_takeovers_ = nullptr;     // mm.repl.takeovers
  telemetry::Counter* mt_stale_ = nullptr;         // mm.repl.stale_aborts
  telemetry::Histogram* mt_commit_ns_ = nullptr;   // mm.repl.commit_ns
};

// --- wire packing ----------------------------------------------------------
// ReplPayload.verb_from: verb | sender rank << 8 | lease round << 16.
// ReplPayload.kind_job:  entry kind | job << 4 | entry term << 18
//                        (LeaseSteal reuses it for the candidate's
//                        last-entry term).
constexpr std::int32_t repl_pack_verb(ReplVerb v, int from, int round) {
  return static_cast<std::int32_t>(v) | from << 8 | (round & 0x7FFF) << 16;
}
constexpr ReplVerb repl_verb(std::int32_t vf) {
  return static_cast<ReplVerb>(vf & 0xFF);
}
constexpr int repl_from(std::int32_t vf) { return (vf >> 8) & 0xFF; }
constexpr int repl_round(std::int32_t vf) { return (vf >> 16) & 0x7FFF; }

constexpr std::int32_t repl_pack_entry(EntryKind k, JobId job, int term) {
  return static_cast<std::int32_t>(k) | (job & 0x3FFF) << 4 |
         (term & 0x1FFF) << 18;
}
constexpr EntryKind repl_entry_kind(std::int32_t kj) {
  return static_cast<EntryKind>(kj & 0xF);
}
constexpr JobId repl_entry_job(std::int32_t kj) { return (kj >> 4) & 0x3FFF; }
constexpr int repl_entry_term(std::int32_t kj) { return (kj >> 18) & 0x1FFF; }

}  // namespace storm::core
