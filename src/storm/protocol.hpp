// Wire-level conventions shared by the STORM dæmons: the global-memory
// address map used by COMPARE-AND-WRITE and the NIC event numbering
// used by XFER-AND-SIGNAL/TEST-EVENT. The command descriptors the MM
// multicasts into each NM's remote queue are the typed control-plane
// messages of fabric/message.hpp (Strobe, Heartbeat, PrepareTransfer,
// Launch), carried over the interposable fabric.
#pragma once

#include <cstdint>

#include "fabric/message.hpp"
#include "mech/mechanisms.hpp"
#include "storm/job.hpp"

namespace storm::core {

// ---------------------------------------------------------------------------
// Global-memory address map (one small block of NIC memory per job).
// All STORM state the MM needs to observe lives at the same virtual
// address on every node, so one COMPARE-AND-WRITE inspects the whole
// partition.
// ---------------------------------------------------------------------------

inline constexpr int kWordsPerJob = 4;
inline constexpr mech::GlobalAddr kHeartbeatAddr = 0;
/// The row last enacted by the node's NM — a well-known plane slot so
/// diagnostics (and the terascale plane runtime) can read the whole
/// machine's strobe state with one linear scan.
inline constexpr mech::GlobalAddr kStrobeRowAddr = 1;
inline constexpr mech::GlobalAddr kJobAddrBase = 16;

/// A killed-and-requeued job gets a fresh *incarnation*; each
/// incarnation owns its own NIC words and events so a restart starts
/// from a clean slate and stragglers from the old incarnation can
/// never be mistaken for progress of the new one.
inline constexpr int kMaxIncarnations = 8;

/// Chunks of the binary image written to the local RAM disk.
inline constexpr mech::GlobalAddr addr_written(JobId j, int inc = 0) {
  return kJobAddrBase + (j * kMaxIncarnations + inc) * kWordsPerJob + 0;
}
/// 1 once every local PE of the job has been forked.
inline constexpr mech::GlobalAddr addr_launched(JobId j, int inc = 0) {
  return kJobAddrBase + (j * kMaxIncarnations + inc) * kWordsPerJob + 1;
}
/// 1 once every local PE of the job has exited.
inline constexpr mech::GlobalAddr addr_done(JobId j, int inc = 0) {
  return kJobAddrBase + (j * kMaxIncarnations + inc) * kWordsPerJob + 2;
}

// ---------------------------------------------------------------------------
// NIC events
// ---------------------------------------------------------------------------

inline constexpr int kEventsPerJob = 2;
inline constexpr mech::EventAddr kJobEventBase = 8;

/// Signalled on each destination when a file chunk lands in its
/// receive-queue slot.
inline constexpr mech::EventAddr ev_chunk(JobId j, int inc = 0) {
  return kJobEventBase + (j * kMaxIncarnations + inc) * kEventsPerJob + 0;
}
/// Signalled locally on the MM node when a chunk multicast completes.
inline constexpr mech::EventAddr ev_chunk_sent(JobId j, int inc = 0) {
  return kJobEventBase + (j * kMaxIncarnations + inc) * kEventsPerJob + 1;
}

// ---------------------------------------------------------------------------
// MM -> NM commands (delivered through per-NM remote queues: a small
// XFER-AND-SIGNAL into NIC memory plus a queue slot; modelled by
// Cluster::multicast_command over the fabric)
// ---------------------------------------------------------------------------

/// Size of a command descriptor on the wire (one cache line; the
/// compact encoding of any fabric::ControlMessage fits with room to
/// spare — see fabric::ControlMessage::wire_size).
inline constexpr sim::Bytes kCommandBytes = 64;
static_assert(fabric::ControlMessage::kMaxWireBytes <=
                  static_cast<std::size_t>(kCommandBytes),
              "command descriptors must fit one cache line");

}  // namespace storm::core
