#include "storm/node_manager.hpp"

#include <algorithm>
#include <cassert>

#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"
#include "telemetry/metrics.hpp"

namespace storm::core {

using fabric::Component;
using fabric::ControlMessage;
using fabric::MsgClass;
using sim::SimTime;
using sim::Task;

NodeManager::NodeManager(Cluster& cluster, int node)
    : cluster_(cluster), node_(node), mailbox_(cluster.sim()) {
  const int daemon_cpu = cluster_.config().cpus_per_node - 1;
  proc_ = &cluster_.machine(node_).os().create(
      "nm." + std::to_string(node_), daemon_cpu);

  telemetry::MetricsRegistry& m = cluster_.metrics();
  mt_cmds_ = &m.counter("nm.cmds");
  mt_strobe_switch_ = &m.counter("nm.strobe.switches");
  mt_strobe_idle_ = &m.counter("nm.strobe.idle");
  mt_chunks_ = &m.counter("nm.chunks");
  mt_chunk_wait_ = &m.histogram("nm.chunk.wait_ns");
  mt_chunk_write_ = &m.histogram("nm.chunk.write_ns");
  mt_mailbox_depth_ = &m.gauge("nm.mailbox.max_depth");
}

void NodeManager::start() { cluster_.sim().spawn(run()); }

Task<> NodeManager::run() {
  const StormParams& sp = cluster_.config().storm;
  for (;;) {
    const ControlMessage cmd = co_await mailbox_.get();
    if (stopped_) co_return;
    max_depth_ = std::max(max_depth_, mailbox_.size() + 1);
    mt_cmds_->add(1);
    mt_mailbox_depth_->set_max(static_cast<double>(max_depth_));
    switch (cmd.cls) {
      case MsgClass::PrepareTransfer:
        co_await proc_->compute(sp.nm_cmd_cost);
        cluster_.sim().spawn(receive_file(cmd.u.prepare.job,
                                          cmd.u.prepare.chunks,
                                          cmd.u.prepare.chunk_bytes));
        break;
      case MsgClass::Launch:
        co_await proc_->compute(sp.nm_cmd_cost);
        co_await handle_launch(cluster_.mm().job(cmd.u.launch.job));
        break;
      case MsgClass::Strobe: {
        // A timeslot switch walks the local run lists and performs the
        // coordinated multi-context-switch; an idle strobe just costs
        // the bookkeeping.
        const int row = cmd.u.strobe.row;
        const bool has_switchable =
            std::any_of(pes_.begin(), pes_.end(),
                        [](const LocalPe& pe) { return !pe.exited; });
        const bool switching = has_switchable && row != current_row_;
        (switching ? mt_strobe_switch_ : mt_strobe_idle_)->add(1);
        co_await proc_->compute(switching ? sp.nm_strobe_switch_cost
                                          : sp.nm_cmd_cost);
        enact_row(row);
        break;
      }
      case MsgClass::Heartbeat:
        co_await proc_->compute(SimTime::us(5));
        cluster_.mech().write_local(node_, kHeartbeatAddr,
                                    cmd.u.heartbeat.epoch);
        break;
      default:
        // Not an NM command class; nothing to enact.
        break;
    }
  }
}

Task<> NodeManager::receive_file(JobId job, int chunks, sim::Bytes chunk_size) {
  auto& mech = cluster_.mech();
  auto& sim = cluster_.sim();
  auto& ram = cluster_.machine(node_).fs(node::FsKind::RamDisk);
  for (int i = 0; i < chunks; ++i) {
    const SimTime t_wait = sim.now();
    co_await mech.wait_event(node_, ev_chunk(job));
    mt_chunk_wait_->record(sim.now() - t_wait);
    // Write the fragment out of the receive-queue slot into the RAM
    // disk — NM CPU work, overlapped with subsequent chunks thanks to
    // the multi-buffering.
    const SimTime t_write = sim.now();
    co_await ram.write(chunk_size, *proc_);
    mt_chunk_write_->record(sim.now() - t_write);
    mt_chunks_->add(1);
    mech.write_local(node_, addr_written(job), i + 1);
  }
}

Task<> NodeManager::handle_launch(Job& job) {
  cluster_.fabric().note(Component::NM, node_,
                         ControlMessage::launch(job.id()));
  const int nranks = job.ranks_on_node(node_);
  if (nranks == 0) {
    // Allocated (buddy rounding) but unused by this job: report
    // trivially so partition-wide conditionals can close.
    cluster_.mech().write_local(node_, addr_launched(job.id()), 1);
    cluster_.mech().write_local(node_, addr_done(job.id()), 1);
    co_return;
  }
  const int first = job.first_rank_on_node(node_);
  const int per_node = cluster_.pls_per_node();
  for (int k = 0; k < nranks; ++k) {
    const int rank = first + k;
    const int cpu = job.cpu_of_rank(rank);
    // Find an available PL pinned to this PE's CPU.
    ProgramLauncher* pl = nullptr;
    for (int p = 0; p < per_node; ++p) {
      ProgramLauncher& cand = cluster_.pl(node_, p);
      if (!cand.busy() && cand.cpu() == cpu) {
        pl = &cand;
        break;
      }
    }
    assert(pl != nullptr && "PL pool exhausted: MPL exceeds configuration");
    cluster_.sim().spawn(pl->launch(job, rank));
  }
  co_return;
}

void NodeManager::register_pe(Job& job, int rank, node::Proc* proc) {
  const bool gang =
      cluster_.config().storm.scheduler == SchedulerKind::Gang;
  pes_.push_back(LocalPe{&job, rank, job.cpu_of_rank(rank), job.row(), proc});
  if (gang && job.row() != current_row_) {
    proc->set_suspended(true);
  }
}

void NodeManager::on_forked(Job& job) {
  if (++forked_[job.id()] == job.ranks_on_node(node_)) {
    cluster_.mech().write_local(node_, addr_launched(job.id()), 1);
  }
}

void NodeManager::on_exit(Job& job, int rank) {
  for (auto& pe : pes_) {
    if (pe.job == &job && pe.rank == rank) {
      pe.exited = true;
      break;
    }
  }
  if (++exited_[job.id()] == job.ranks_on_node(node_)) {
    cluster_.mech().write_local(node_, addr_done(job.id()), 1);
    // Retire this job's PEs from the local run lists.
    std::erase_if(pes_, [&](const LocalPe& pe) { return pe.job == &job; });
  }
}

void NodeManager::enact_row(int row) {
  current_row_ = row;
  if (cluster_.config().storm.scheduler != SchedulerKind::Gang) return;
  const auto& mp = cluster_.machine(node_).params();
  const int app_cpus = cluster_.config().app_cpus_per_node;
  for (int cpu = 0; cpu < app_cpus; ++cpu) {
    // Prefer the PE assigned to this timeslot; otherwise fill the slot
    // with any runnable PE (slot filling keeps CPUs busy when a gang
    // has exited or a row is sparse).
    LocalPe* chosen = nullptr;
    for (auto& pe : pes_) {
      if (pe.cpu == cpu && !pe.exited && pe.row == row) {
        chosen = &pe;
        break;
      }
    }
    if (chosen == nullptr) {
      for (auto& pe : pes_) {
        if (pe.cpu == cpu && !pe.exited) {
          chosen = &pe;
          break;
        }
      }
    }
    for (auto& pe : pes_) {
      if (pe.cpu != cpu || pe.exited || &pe == chosen) continue;
      pe.proc->set_suspended(true);
    }
    if (chosen != nullptr && chosen->proc->suspended()) {
      chosen->proc->add_penalty(mp.switch_penalty);
      chosen->proc->set_suspended(false);
    }
  }
}

// ---------------------------------------------------------------------------
// ProgramLauncher
// ---------------------------------------------------------------------------

ProgramLauncher::ProgramLauncher(Cluster& cluster, int node, int cpu, int slot)
    : cluster_(cluster), node_(node), cpu_(cpu) {
  proc_ = &cluster_.machine(node_).os().create(
      "pl." + std::to_string(node_) + "." + std::to_string(cpu) + "." +
          std::to_string(slot),
      cpu);
}

Task<> ProgramLauncher::launch(Job& job, int rank) {
  assert(!busy_);
  busy_ = true;
  auto& machine = cluster_.machine(node_);

  // fork() + exec() of the image from the local RAM disk. A do-nothing
  // binary demand-pages only a handful of pages, so this cost is
  // independent of the image size (Figure 2's observation).
  co_await proc_->compute(machine.sample_fork_cost());

  node::Proc& app = machine.os().create(
      job.spec().name + "." + std::to_string(rank), cpu_);
  NodeManager& nm = cluster_.nm(node_);
  nm.register_pe(job, rank, &app);
  nm.on_forked(job);

  auto& times = job.times();
  if (times.first_proc_started == sim::SimTime::zero()) {
    times.first_proc_started = cluster_.sim().now();
  }

  AppContext ctx(cluster_, job, rank, &app);
  ctx.seed_rng(machine.rng().fork(
      0xA999'0000ULL + static_cast<std::uint64_t>(job.id()) * 4096 +
      static_cast<std::uint64_t>(rank)));
  co_await job.spec().program(ctx);
  job.times().last_proc_exited =
      std::max(job.times().last_proc_exited, cluster_.sim().now());

  // The PL detects its child's termination and reports to the NM.
  co_await proc_->compute(cluster_.config().storm.pl_notify_cost);
  nm.on_exit(job, rank);
  busy_ = false;
}

}  // namespace storm::core
