#include "storm/node_manager.hpp"

#include <algorithm>
#include <cassert>

#include "storm/cluster.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace storm::core {

using fabric::Component;
using fabric::ControlMessage;
using fabric::MsgClass;
using sim::SimTime;
using sim::Task;
using telemetry::SpanKind;
using telemetry::TraceSpan;

NodeManager::NodeManager(Cluster& cluster, int node)
    : cluster_(cluster), node_(node), mailbox_(cluster.sim()) {
  const int daemon_cpu = cluster_.config().cpus_per_node - 1;
  proc_ = &cluster_.machine(node_).os().create(
      "nm." + std::to_string(node_), daemon_cpu);

  telemetry::MetricsRegistry& m = cluster_.metrics();
  mt_cmds_ = &m.counter("nm.cmds");
  mt_strobe_switch_ = &m.counter("nm.strobe.switches");
  mt_strobe_idle_ = &m.counter("nm.strobe.idle");
  mt_chunks_ = &m.counter("nm.chunks");
  mt_kills_ = &m.counter("nm.kills");
  mt_chunk_wait_ = &m.histogram("nm.chunk.wait_ns");
  mt_chunk_write_ = &m.histogram("nm.chunk.write_ns");
  mt_mailbox_depth_ = &m.gauge("nm.mailbox.max_depth");
}

void NodeManager::start() { cluster_.sim().spawn(run()); }

void NodeManager::crash() {
  if (stopped_) return;
  stopped_ = true;
  ++crash_epoch_;
  proc_->cancel_work();
  // A dead node's processes stop mid-instruction: abort the PEs'
  // in-flight CPU work. Their coroutines finish fast-forwarding once
  // the MM kills the incarnation and poisons its channels.
  for (auto& pe : pes_) {
    if (!pe.exited) pe.proc->cancel_work();
  }
  pes_.clear();
  forked_.clear();
  exited_.clear();
  current_row_ = 0;
  if (windowed_) {
    // Crash mid-absorb-window: the dæmon dies mid-instruction. Charge
    // the partial slice (exactly what preempting the event-driven
    // compute would have charged), end the command span at the crash
    // instant, and drop the held deliveries — the event-driven mailbox
    // is drained below for the same reason.
    cluster_.sim().cancel(window_ev_);
    window_ev_ = sim::kInvalidEvent;
    proc_->charge_batched_slice(cluster_.sim().now() - window_start_);
    window_span_.end();
    windowed_ = false;
    window_pending_.clear();
  }
  while (mailbox_.try_get()) {
  }
}

void NodeManager::restart() {
  if (!stopped_) return;
  stopped_ = false;
  while (mailbox_.try_get()) {
  }
  last_cmd_time_ = cluster_.sim().now();
}

Task<> NodeManager::run() {
  const StormParams& sp = cluster_.config().storm;
  // The loop never exits: a crashed dæmon simply ignores its mailbox
  // until restart() clears the flag.
  for (;;) {
    const fabric::TracedCommand tc = co_await mailbox_.get();
    const ControlMessage& cmd = tc.msg;
    if (stopped_) continue;
    last_cmd_time_ = cluster_.sim().now();
    max_depth_ = std::max(max_depth_, mailbox_.size() + 1);
    mt_cmds_->add(1);
    mt_mailbox_depth_->set_max(static_cast<double>(max_depth_));
    telemetry::CausalTracer* tr = cluster_.tracer();
    switch (cmd.cls) {
      case MsgClass::PrepareTransfer: {
        TraceSpan span;
        if (tr != nullptr) {
          span = tr->begin_flow(SpanKind::NmPrepare, node_, tc.ctx,
                                cmd.u.prepare.job, cmd.u.prepare.incarnation);
        }
        co_await proc_->compute(sp.nm_cmd_cost);
        if (stopped_) continue;
        cluster_.sim().spawn(receive_file(cmd.u.prepare.job,
                                          cmd.u.prepare.incarnation,
                                          cmd.u.prepare.chunks,
                                          cmd.u.prepare.chunk_bytes));
        break;
      }
      case MsgClass::Launch: {
        TraceSpan span;
        if (tr != nullptr) {
          span = tr->begin_flow(SpanKind::NmLaunch, node_, tc.ctx,
                                cmd.u.launch.job, cmd.u.launch.incarnation);
        }
        co_await proc_->compute(sp.nm_cmd_cost);
        if (stopped_) continue;
        co_await handle_launch(cluster_.job(cmd.u.launch.job),
                               cmd.u.launch.incarnation, span.context());
        break;
      }
      case MsgClass::Kill: {
        TraceSpan span;
        if (tr != nullptr) {
          span = tr->begin_flow(SpanKind::NmKill, node_, tc.ctx,
                                cmd.u.kill.job, cmd.u.kill.incarnation);
        }
        co_await proc_->compute(sp.nm_cmd_cost);
        if (stopped_) continue;
        handle_kill(cmd.u.kill.job, cmd.u.kill.incarnation);
        break;
      }
      case MsgClass::Strobe: {
        // A timeslot switch walks the local run lists and performs the
        // coordinated multi-context-switch; an idle strobe just costs
        // the bookkeeping.
        const int row = cmd.u.strobe.row;
        const bool has_switchable =
            std::any_of(pes_.begin(), pes_.end(),
                        [](const LocalPe& pe) { return !pe.exited; });
        const bool switching = has_switchable && row != current_row_;
        (switching ? mt_strobe_switch_ : mt_strobe_idle_)->add(1);
        TraceSpan span;
        if (tr != nullptr) {
          span = tr->begin_flow(SpanKind::NmStrobe, node_, tc.ctx, row,
                                switching ? 1 : 0);
        }
        co_await proc_->compute(switching ? sp.nm_strobe_switch_cost
                                          : sp.nm_cmd_cost);
        if (stopped_) continue;
        enact_row(row);
        break;
      }
      case MsgClass::Heartbeat: {
        TraceSpan span;
        if (tr != nullptr) {
          span = tr->begin_flow(SpanKind::NmHeartbeat, node_, tc.ctx,
                                cmd.u.heartbeat.epoch);
        }
        co_await proc_->compute(SimTime::us(5));
        if (stopped_) continue;
        cluster_.mech().write_local(node_, kHeartbeatAddr,
                                    cmd.u.heartbeat.epoch);
        break;
      }
      case MsgClass::Repl: {
        // Unreachable in practice: MM replication traffic is tapped at
        // NIC delivery (Cluster::deliver_command) so a busy dæmon
        // cannot delay votes or lease renewals. Kept as a route for
        // robustness should a Repl message ever reach a mailbox.
        cluster_.deliver_repl(node_, cmd);
        break;
      }
      default:
        // Not an NM command class; nothing to enact.
        break;
    }
  }
}

Task<> NodeManager::receive_file(JobId job, int inc, int chunks,
                                 sim::Bytes chunk_size) {
  // An in-flight receive loop pins the dæmon out of the absorb fast
  // path: its chunk writes claim the dæmon CPU at DMA-completion
  // times the sweep cannot see. Balanced on frame destruction.
  ++active_receives_;
  struct ReceiveGuard {
    int* n;
    ~ReceiveGuard() { --*n; }
  } guard{&active_receives_};
  auto& mech = cluster_.mech();
  auto& sim = cluster_.sim();
  auto& ram = cluster_.machine(node_).fs(node::FsKind::RamDisk);
  const int epoch = crash_epoch_;
  for (int i = 0; i < chunks; ++i) {
    const SimTime t_wait = sim.now();
    co_await mech.wait_event(node_, ev_chunk(job, inc));
    if (crash_epoch_ != epoch || stopped_) co_return;
    mt_chunk_wait_->record(sim.now() - t_wait);
    // Write the fragment out of the receive-queue slot into the RAM
    // disk — NM CPU work, overlapped with subsequent chunks thanks to
    // the multi-buffering. The span parents on the sender's broadcast
    // of exactly this chunk (harvested by the CausalTracer), drawing
    // the cause→effect arrow across nodes.
    TraceSpan span;
    if (telemetry::CausalTracer* tr = cluster_.tracer()) {
      span = tr->begin_flow(SpanKind::NmChunk, node_, tr->chunk_cause(job, i),
                            job, i);
    }
    const SimTime t_write = sim.now();
    co_await ram.write(chunk_size, *proc_);
    if (crash_epoch_ != epoch || stopped_) co_return;
    span.end();
    mt_chunk_write_->record(sim.now() - t_write);
    mt_chunks_->add(1);
    mech.write_local(node_, addr_written(job, inc), i + 1);
  }
}

Task<> NodeManager::handle_launch(Job& job, int inc,
                                  fabric::TraceContext ctx) {
  if (inc != job.incarnation()) co_return;  // stale: killed in flight
  cluster_.fabric().note(Component::NM, node_,
                         ControlMessage::launch(job.id(), inc), ctx);
  // Fresh incarnation, fresh counters (a requeued job may land on the
  // same node again).
  forked_[job.id()] = 0;
  exited_[job.id()] = 0;
  const int nranks = job.ranks_on_node(node_);
  if (nranks == 0) {
    // Allocated (buddy rounding) but unused by this job: report
    // trivially so partition-wide conditionals can close.
    cluster_.mech().write_local(node_, addr_launched(job.id(), inc), 1);
    cluster_.mech().write_local(node_, addr_done(job.id(), inc), 1);
    co_return;
  }
  const int first = job.first_rank_on_node(node_);
  const int per_node = cluster_.pls_per_node();
  for (int k = 0; k < nranks; ++k) {
    const int rank = first + k;
    const int cpu = job.cpu_of_rank(rank);
    // Find an available PL pinned to this PE's CPU.
    ProgramLauncher* pl = nullptr;
    for (int p = 0; p < per_node; ++p) {
      ProgramLauncher& cand = cluster_.pl(node_, p);
      if (!cand.busy() && cand.cpu() == cpu) {
        pl = &cand;
        break;
      }
    }
    assert(pl != nullptr && "PL pool exhausted: MPL exceeds configuration");
    cluster_.sim().spawn(pl->launch(job, rank, ctx));
  }
  co_return;
}

void NodeManager::handle_kill(JobId job, int inc) {
  mt_kills_->add(1);
  for (auto& pe : pes_) {
    if (pe.job->id() != job || pe.incarnation != inc || pe.exited) continue;
    // Abort in-flight CPU work; a PE blocked in recv() is woken by the
    // MM's channel poison and fast-forwards on its own.
    pe.proc->cancel_work();
  }
  std::erase_if(pes_, [&](const LocalPe& pe) {
    return pe.job->id() == job && pe.incarnation == inc;
  });
  forked_.erase(job);
  exited_.erase(job);
}

void NodeManager::register_pe(Job& job, int inc, int rank, node::Proc* proc) {
  const bool gang =
      cluster_.config().storm.scheduler == SchedulerKind::Gang;
  pes_.push_back(
      LocalPe{&job, inc, rank, job.cpu_of_rank(rank), job.row(), proc});
  if (gang && job.row() != current_row_) {
    proc->set_suspended(true);
  }
}

void NodeManager::on_forked(Job& job, int inc) {
  if (inc != job.incarnation()) return;  // stale fork: incarnation killed
  if (++forked_[job.id()] == job.ranks_on_node(node_)) {
    cluster_.mech().write_local(node_, addr_launched(job.id(), inc), 1);
  }
}

void NodeManager::on_exit(Job& job, int inc, int rank) {
  if (inc != job.incarnation()) return;  // stale exit: already cleaned up
  for (auto& pe : pes_) {
    if (pe.job == &job && pe.incarnation == inc && pe.rank == rank) {
      pe.exited = true;
      break;
    }
  }
  if (++exited_[job.id()] == job.ranks_on_node(node_)) {
    cluster_.mech().write_local(node_, addr_done(job.id(), inc), 1);
    // Retire this job's PEs from the local run lists.
    std::erase_if(pes_, [&](const LocalPe& pe) { return pe.job == &job; });
  }
}

void NodeManager::enact_row(int row) {
  current_row_ = row;
  // Publish the enacted row in the node's well-known plane slot — NIC
  // bookkeeping, not a fabric operation (no time, no middleware).
  cluster_.network().plane().set_word(node_, kStrobeRowAddr, row);
  if (cluster_.config().storm.scheduler != SchedulerKind::Gang) return;
  const auto& mp = cluster_.machine(node_).params();
  const int app_cpus = cluster_.config().app_cpus_per_node;
  for (int cpu = 0; cpu < app_cpus; ++cpu) {
    // Prefer the PE assigned to this timeslot; otherwise fill the slot
    // with any runnable PE (slot filling keeps CPUs busy when a gang
    // has exited or a row is sparse).
    LocalPe* chosen = nullptr;
    for (auto& pe : pes_) {
      if (pe.cpu == cpu && !pe.exited && pe.row == row) {
        chosen = &pe;
        break;
      }
    }
    if (chosen == nullptr) {
      for (auto& pe : pes_) {
        if (pe.cpu == cpu && !pe.exited) {
          chosen = &pe;
          break;
        }
      }
    }
    for (auto& pe : pes_) {
      if (pe.cpu != cpu || pe.exited || &pe == chosen) continue;
      pe.proc->set_suspended(true);
    }
    if (chosen != nullptr && chosen->proc->suspended()) {
      chosen->proc->add_penalty(mp.switch_penalty);
      chosen->proc->set_suspended(false);
    }
  }
}

// ---------------------------------------------------------------------------
// Batched periodic sweep (DESIGN §2.3)
// ---------------------------------------------------------------------------

void NodeManager::deliver(fabric::TracedCommand tc) {
  if (windowed_) {
    // The event-driven dæmon would have been mid-compute: the command
    // would sit in the mailbox unobserved until the compute finished.
    // Holding it here and flushing at window close reproduces exactly
    // that — the first *look* at the command happens at the same
    // instant on both paths.
    window_pending_.push_back(std::move(tc));
    return;
  }
  mailbox_.put(std::move(tc));
}

bool NodeManager::can_absorb_periodic() {
  if (stopped_ || windowed_) return false;
  // Parked on an empty mailbox — the put would wake the get() awaiter
  // and nothing else is queued ahead of this command.
  if (!mailbox_.empty() || mailbox_.waiting() != 1) return false;
  // No local PEs, no PL mid-fork, no receive loop that could claim the
  // dæmon CPU (or draw from the OS RNG stream) inside the window.
  if (!pes_.empty() || active_receives_ != 0) return false;
  if (cluster_.network().plane().pl_mask(node_) != 0) return false;
  const int daemon_cpu = cluster_.config().cpus_per_node - 1;
  return cluster_.machine(node_).os().cpu_quiescent(daemon_cpu);
}

void NodeManager::absorb_periodic(const fabric::TracedCommand& tc) {
  assert(can_absorb_periodic());
  const ControlMessage& cmd = tc.msg;
  const StormParams& sp = cluster_.config().storm;
  // Bookkeeping the run() loop would have done on wakeup. The mailbox
  // is empty (absorb precondition), so the depth sample is 1.
  last_cmd_time_ = cluster_.sim().now();
  max_depth_ = std::max(max_depth_, std::size_t{1});
  mt_cmds_->add(1);
  mt_mailbox_depth_->set_max(static_cast<double>(max_depth_));
  telemetry::CausalTracer* tr = cluster_.tracer();
  SimTime cost;
  if (cmd.cls == MsgClass::Strobe) {
    // No local PEs (absorb precondition) => never a timeslot switch.
    mt_strobe_idle_->add(1);
    if (tr != nullptr) {
      window_span_ = tr->begin_flow(SpanKind::NmStrobe, node_, tc.ctx,
                                    cmd.u.strobe.row, 0);
    }
    cost = sp.nm_cmd_cost;
  } else {
    assert(cmd.cls == MsgClass::Heartbeat);
    if (tr != nullptr) {
      window_span_ = tr->begin_flow(SpanKind::NmHeartbeat, node_, tc.ctx,
                                    cmd.u.heartbeat.epoch);
    }
    cost = SimTime::us(5);
    if (mt_hb_batched_ == nullptr) {
      mt_hb_batched_ = &cluster_.metrics().counter("nm.heartbeat.batched");
    }
    mt_hb_batched_->add(1);
  }
  // One dispatch-overhead draw from the node's OS stream — the same
  // draw, in the same per-machine order, that dispatch() would have
  // made when the woken dæmon claimed its idle CPU.
  const SimTime overhead =
      cluster_.machine(node_).os().sample_dispatch_overhead(*proc_);
  windowed_ = true;
  window_cmd_ = cmd;
  window_start_ = cluster_.sim().now();
  window_ev_ = cluster_.sim().schedule_after(cost + overhead,
                                             [this] { complete_window(); });
}

void NodeManager::complete_window() {
  window_ev_ = sim::kInvalidEvent;
  proc_->charge_batched_slice(cluster_.sim().now() - window_start_);
  windowed_ = false;
  if (window_cmd_.cls == MsgClass::Strobe) {
    enact_row(window_cmd_.u.strobe.row);
  } else {
    cluster_.mech().write_local(node_, kHeartbeatAddr,
                                window_cmd_.u.heartbeat.epoch);
  }
  window_span_.end();
  // Commands held during the window reach the mailbox now; the first
  // put wakes the parked dæmon through the normal channel machinery.
  for (auto& tc : window_pending_) {
    mailbox_.put(std::move(tc));
  }
  window_pending_.clear();
}

// ---------------------------------------------------------------------------
// ProgramLauncher
// ---------------------------------------------------------------------------

ProgramLauncher::ProgramLauncher(Cluster& cluster, int node, int cpu, int slot,
                                 int index)
    : cluster_(cluster), node_(node), cpu_(cpu), index_(index) {
  assert(index_ >= 0 && index_ < net::NodeStatePlane::kMaxPlSlots);
  proc_ = &cluster_.machine(node_).os().create(
      "pl." + std::to_string(node_) + "." + std::to_string(cpu) + "." +
          std::to_string(slot),
      cpu);
}

// PL occupancy lives in the node-state plane's per-node bitmask, not a
// per-object bool, so the NM's free-slot scan touches one word per node.
bool ProgramLauncher::busy() const {
  return cluster_.network().plane().pl_busy(node_, index_);
}

void ProgramLauncher::set_busy(bool v) {
  cluster_.network().plane().set_pl_busy(node_, index_, v);
}

void ProgramLauncher::cancel() { proc_->cancel_work(); }

Task<> ProgramLauncher::launch(Job& job, int rank, fabric::TraceContext tctx) {
  assert(!busy());
  set_busy(true);
  auto& machine = cluster_.machine(node_);
  const int inc = job.incarnation();
  const int epoch = cluster_.node_epoch(node_);
  auto stale = [&] {
    return job.incarnation() != inc || cluster_.node_epoch(node_) != epoch;
  };

  // fork() + exec() of the image from the local RAM disk. A do-nothing
  // binary demand-pages only a handful of pages, so this cost is
  // independent of the image size (Figure 2's observation).
  TraceSpan fork_span;
  if (telemetry::CausalTracer* tr = cluster_.tracer()) {
    fork_span = tr->begin_flow(SpanKind::PlFork, node_, tctx, job.id(), rank);
  }
  co_await proc_->compute(machine.sample_fork_cost());
  if (stale()) {
    set_busy(false);
    co_return;
  }

  node::Proc& app = machine.os().create(
      job.spec().name + "." + std::to_string(rank), cpu_);
  NodeManager& nm = cluster_.nm(node_);
  nm.register_pe(job, inc, rank, &app);
  nm.on_forked(job, inc);
  fork_span.end();

  auto& times = job.times();
  if (times.first_proc_started == sim::SimTime::zero()) {
    times.first_proc_started = cluster_.sim().now();
  }

  AppContext ctx(cluster_, job, rank, &app);
  ctx.seed_rng(machine.rng().fork(
      0xA999'0000ULL + static_cast<std::uint64_t>(job.id()) * 4096 +
      static_cast<std::uint64_t>(rank)));
  co_await job.spec().program(ctx);
  if (stale()) {
    set_busy(false);
    co_return;
  }
  job.times().last_proc_exited =
      std::max(job.times().last_proc_exited, cluster_.sim().now());

  // The PL detects its child's termination and reports to the NM.
  co_await proc_->compute(cluster_.config().storm.pl_notify_cost);
  if (!stale()) nm.on_exit(job, inc, rank);
  set_busy(false);
}

}  // namespace storm::core
