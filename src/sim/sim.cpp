#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace storm::sim {

std::string SimTime::to_string() const {
  char buf[64];
  const double a = static_cast<double>(ns_ < 0 ? -ns_ : ns_);
  if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns_));
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(ns_) * 1e-3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ns_) * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(ns_) * 1e-9);
  }
  return buf;
}

[[noreturn]] void detached_task_terminate(std::exception_ptr error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "storm: fatal: exception escaped a detached simulation "
                 "task: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr,
                 "storm: fatal: non-std exception escaped a detached "
                 "simulation task\n");
  }
  std::abort();
}

}  // namespace storm::sim
