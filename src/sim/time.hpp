// Simulated-time representation for the STORM discrete-event engine.
//
// Simulated time is held as a signed 64-bit count of nanoseconds, which
// gives ~292 years of range — far beyond any experiment in the paper —
// while keeping arithmetic exact and the simulation bit-reproducible
// across platforms (no floating-point clock drift).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>
#include <type_traits>

namespace storm::sim {

/// A point in simulated time, or a duration between two such points.
/// The two concepts are deliberately merged (as in many DES kernels):
/// the engine only ever adds durations to points and compares points.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Prefer these to the raw-ns constructor.
  static constexpr SimTime ns(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime us(std::int64_t v) { return SimTime{v * 1'000}; }
  static constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1'000'000}; }
  static constexpr SimTime sec(std::int64_t v) { return SimTime{v * 1'000'000'000}; }

  /// Construct from a floating-point number of seconds (rounded to ns).
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr SimTime micros(double us_) { return seconds(us_ * 1e-6); }
  static constexpr SimTime millis(double ms_) { return seconds(ms_ * 1e-3); }

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t raw_ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimTime d) { ns_ += d.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime d) { ns_ -= d.ns_; return *this; }
  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
  template <typename Int>
    requires std::is_integral_v<Int>
  friend constexpr SimTime operator*(SimTime a, Int k) {
    return SimTime{a.ns_ * static_cast<std::int64_t>(k)};
  }
  template <typename Int>
    requires std::is_integral_v<Int>
  friend constexpr SimTime operator*(Int k, SimTime a) {
    return a * k;
  }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k + 0.5)};
  }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.ns_ / b.ns_; }
  template <typename Int>
    requires std::is_integral_v<Int>
  friend constexpr SimTime operator/(SimTime a, Int k) {
    return SimTime{a.ns_ / static_cast<std::int64_t>(k)};
  }

  /// Human-readable rendering with an auto-selected unit ("12.5 ms").
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

namespace time_literals {
constexpr SimTime operator""_ns(unsigned long long v) { return SimTime::ns(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_us(unsigned long long v) { return SimTime::us(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_ms(unsigned long long v) { return SimTime::ms(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_sec(unsigned long long v) { return SimTime::sec(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_us(long double v) { return SimTime::micros(static_cast<double>(v)); }
constexpr SimTime operator""_ms(long double v) { return SimTime::millis(static_cast<double>(v)); }
constexpr SimTime operator""_sec(long double v) { return SimTime::seconds(static_cast<double>(v)); }
}  // namespace time_literals

}  // namespace storm::sim
