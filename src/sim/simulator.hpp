// The discrete-event simulation kernel.
//
// Single-threaded, deterministic: events fire in (time, insertion
// sequence) order, so two runs with the same seed produce identical
// traces. Cancellation is lazy — a cancelled id is dropped when it
// reaches the top of the heap — which keeps schedule/cancel O(log n).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace storm::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 0x57'0F'4D'2002ULL) : rng_(seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Master RNG; model components should `fork()` their own streams.
  Rng& rng() { return rng_; }

  /// Schedule `fn` at absolute time `t` (>= now). Returns a handle
  /// usable with cancel().
  EventId schedule_at(SimTime t, std::function<void()> fn) {
    assert(t >= now_ && "cannot schedule into the past");
    const EventId id = next_id_++;
    callbacks_.emplace(id, std::move(fn));
    heap_.push(Entry{t, id});
    return id;
  }

  EventId schedule_after(SimTime d, std::function<void()> fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancel a pending event. Returns true if it was still pending.
  bool cancel(EventId id) { return callbacks_.erase(id) > 0; }

  bool pending(EventId id) const { return callbacks_.contains(id); }

  /// Launch a task as a detached root process. It starts running
  /// immediately (at the current simulated time).
  void spawn(Task<> t) {
    auto h = t.release();
    if (!h) return;
    h.promise().detached = true;
    h.resume();
  }

  /// Execute a single event. Returns false if the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      const Entry e = heap_.top();
      auto it = callbacks_.find(e.id);
      if (it == callbacks_.end()) {  // cancelled — lazy removal
        heap_.pop();
        continue;
      }
      assert(e.time >= now_);
      now_ = e.time;
      auto fn = std::move(it->second);
      callbacks_.erase(it);
      heap_.pop();
      ++executed_;
      fn();
      return true;
    }
    return false;
  }

  /// Run until the event queue drains or simulated time would exceed
  /// `until`. Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max()) {
    std::uint64_t n = 0;
    while (!heap_.empty()) {
      // Peek past cancelled entries to honour the time bound exactly.
      const Entry e = heap_.top();
      if (!callbacks_.contains(e.id)) {
        heap_.pop();
        continue;
      }
      if (e.time > until) break;
      step();
      ++n;
    }
    if (now_ < until && until < SimTime::max()) now_ = until;
    return n;
  }

  std::uint64_t run_for(SimTime d) { return run(now_ + d); }

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return callbacks_.size(); }

  /// Awaitable pause: `co_await sim.delay(SimTime::ms(5));`
  auto delay(SimTime d) {
    struct Awaiter {
      Simulator& sim;
      SimTime dur;
      bool await_ready() const noexcept { return dur <= SimTime::zero(); }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable that re-queues the current task at the current time,
  /// behind every event already scheduled for `now()` — a cooperative
  /// yield used to serialise same-timestamp interactions.
  auto yield() {
    struct Awaiter {
      Simulator& sim;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(SimTime::zero(), [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Min-heap by (time, id): id grows monotonically, giving FIFO
    // order among same-time events.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = SimTime::zero();
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  Rng rng_;
};

}  // namespace storm::sim
