// The discrete-event simulation kernel.
//
// Single-threaded, deterministic: events fire in (time, insertion
// sequence) order, so two runs with the same seed produce identical
// traces. Cancellation is lazy — a cancelled entry is dropped when it
// reaches the top of the heap — which keeps schedule/cancel O(log n).
//
// Hot-path layout (see DESIGN.md §2.1): callbacks live in a chunked,
// free-listed slot arena addressed by index (chunks never move, so
// callbacks are built and invoked in place), and an EventId encodes
// (generation, slot), so cancel()/pending() are O(1) array probes
// with no hashing and a recycled slot can never be cancelled through
// a stale handle.
// The ready queue is an implicit 4-ary min-heap of POD entries keyed
// (time, seq) — shallower than a binary heap and cache-friendlier
// than a node-based map. Callback captures up to 48 bytes (coroutine
// resumes, dæmon timer lambdas) are stored inline in the slot via
// InlineCallback, so scheduling does not touch the allocator once the
// arena has warmed up.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace storm::sim {

/// Opaque event handle: (generation << 32) | slot. Generations are odd
/// while the slot is live and even while it is free, so a handle from
/// a previous occupancy of the same slot never matches again.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Handle for a coalesced periodic timer registered with
/// Simulator::schedule_periodic (see below). Encodes
/// (cohort, cohort-epoch, member); a handle from a retired cohort can
/// never match again.
using PeriodicId = std::uint64_t;
inline constexpr PeriodicId kInvalidPeriodic = 0;

/// Aggregate firing statistics of the periodic wheel — how much heap
/// churn the coalescing saved.
struct PeriodicStats {
  std::uint64_t cohort_fires = 0;  // engine events actually executed
  std::uint64_t member_fires = 0;  // member callbacks delivered
  /// member_fires minus cohort_fires: heap events that individual
  /// schedule_after chains would have paid but the wheel did not.
  std::uint64_t coalesced = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 0x57'0F'4D'2002ULL) : rng_(seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Master RNG; model components should `fork()` their own streams.
  Rng& rng() { return rng_; }

  /// Schedule `fn` at absolute time `t` (>= now). Returns a handle
  /// usable with cancel(). The capture is constructed directly into
  /// the event's arena slot — no intermediate moves, and no heap
  /// traffic at all for captures up to InlineCallback::kInlineBytes.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    assert(t >= now_ && "cannot schedule into the past");
    const std::uint32_t s = alloc_slot();
    Slot& slot = slot_ref(s);
    slot.cb.emplace(std::forward<F>(fn));
    heap_push(Entry{t, next_seq_++, s, slot.gen});
    return make_id(s, slot.gen);
  }

  template <typename F>
  EventId schedule_after(SimTime d, F&& fn) {
    return schedule_at(now_ + d, std::forward<F>(fn));
  }

  /// Cancel a pending event. Returns true if it was still pending.
  /// O(1): the heap entry is left behind and dropped lazily when it
  /// surfaces; only the slot (and its callback) is released now.
  bool cancel(EventId id) {
    const std::uint32_t s = slot_of(id);
    if (s >= slot_count_ || slot_ref(s).gen != gen_of(id)) return false;
    Slot& slot = slot_ref(s);
    slot.cb.reset();
    release_slot(slot, s);
    return true;
  }

  bool pending(EventId id) const {
    const std::uint32_t s = slot_of(id);
    return s < slot_count_ && slot_ref(s).gen == gen_of(id);
  }

  /// Launch a task as a detached root process. It starts running
  /// immediately (at the current simulated time).
  void spawn(Task<> t) {
    auto h = t.release();
    if (!h) return;
    h.promise().detached = true;
    h.resume();
  }

  /// Execute a single event. Returns false if the queue is empty.
  bool step() {
    const Entry* e = peek_live();
    if (e == nullptr) return false;
    execute_top(*e);
    return true;
  }

  /// Run until the event queue drains or simulated time would exceed
  /// `until`. Returns the number of events executed (cancelled entries
  /// skimmed off the heap are not counted).
  std::uint64_t run(SimTime until = SimTime::max()) {
    [[maybe_unused]] const std::uint64_t before = executed_;
    std::uint64_t n = 0;
    while (const Entry* e = peek_live()) {
      if (e->time > until) break;
      execute_top(*e);
      ++n;
    }
    assert(executed_ - before == n &&
           "run() return value out of sync with events_executed()");
    if (now_ < until && until < SimTime::max()) now_ = until;
    return n;
  }

  std::uint64_t run_for(SimTime d) { return run(now_ + d); }

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return live_; }

  /// Awaitable pause: `co_await sim.delay(SimTime::ms(5));`
  auto delay(SimTime d) {
    struct Awaiter {
      Simulator& sim;
      SimTime dur;
      bool await_ready() const noexcept { return dur <= SimTime::zero(); }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable that re-queues the current task at the current time,
  /// behind every event already scheduled for `now()` — a cooperative
  /// yield used to serialise same-timestamp interactions.
  auto yield() {
    struct Awaiter {
      Simulator& sim;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(SimTime::zero(), [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  // ---- coalesced periodic timers ("timer wheel") -----------------------
  //
  // A population of fixed-period timers sharing (period, phase) is one
  // *cohort*: one heap event per period fires every live member in
  // registration order, instead of N re-armed one-shot events churning
  // the 4-ary heap. Fire times are computed by exact integer
  // `next_due += period` arithmetic, so a cohort never drifts no matter
  // how long it runs. Cohort events go through schedule_at like any
  // other event, so the (time, seq) determinism contract is untouched —
  // members of one cohort fire inside a single engine event, back to
  // back, in the order they registered.

  /// Register `fn` to fire at `first`, `first + period`,
  /// `first + 2*period`, ... Joins an existing armed cohort when one
  /// matches (same period, same next fire time); otherwise arms a new
  /// one. O(1) amortised; cancellation is O(1).
  template <typename F>
  PeriodicId schedule_periodic(SimTime period, SimTime first, F&& fn) {
    assert(period > SimTime::zero() && "periodic timers need a period");
    assert(first >= now_ && "cannot schedule into the past");
    std::uint32_t ci = kNoCohort;
    for (std::uint32_t i = 0; i < cohorts_.size(); ++i) {
      const PeriodicCohort& c = cohorts_[i];
      if (c.armed && !c.firing && c.period == period && c.next_due == first) {
        ci = i;
        break;
      }
    }
    if (ci == kNoCohort) {
      if (cohort_free_ != kNoCohort) {
        ci = cohort_free_;
        cohort_free_ = cohorts_[ci].next_free;
      } else {
        ci = static_cast<std::uint32_t>(cohorts_.size());
        cohorts_.emplace_back();
      }
      PeriodicCohort& c = cohorts_[ci];
      c.armed = true;
      c.period = period;
      c.next_due = first;
      c.ev = schedule_at(first, [this, ci] { fire_cohort(ci); });
    }
    PeriodicCohort& c = cohorts_[ci];
    const std::uint32_t mi = static_cast<std::uint32_t>(c.members.size());
    c.members.emplace_back();
    c.members.back().fn.emplace(std::forward<F>(fn));
    c.members.back().live = true;
    ++c.live;
    return make_periodic_id(ci, c.epoch, mi);
  }

  /// Cancel a periodic timer. Safe to call from inside a cohort fire
  /// (including against a member of the firing cohort that has not run
  /// yet this period — it will not run). Returns true if the timer was
  /// still registered.
  bool cancel_periodic(PeriodicId id) {
    if (id == kInvalidPeriodic) return false;
    const std::uint32_t ci = periodic_cohort(id);
    if (ci >= cohorts_.size()) return false;
    PeriodicCohort& c = cohorts_[ci];
    const std::uint32_t mi = periodic_member(id);
    if (!c.armed || c.epoch != periodic_epoch(id) || mi >= c.members.size() ||
        !c.members[mi].live) {
      return false;
    }
    c.members[mi].live = false;
    c.members[mi].fn.reset();
    if (--c.live == 0 && !c.firing) {
      cancel(c.ev);
      retire_cohort(ci);
    }
    return true;
  }

  const PeriodicStats& periodic_stats() const { return periodic_stats_; }

  /// Observe coalesced cohort fires: called once per cohort event with
  /// the number of heap events the batching saved (members - 1; only
  /// invoked when positive). Raw function pointer + context keeps the
  /// engine free of <functional>. One observer per simulator.
  using PeriodicObserver = void (*)(void* ctx, std::uint64_t saved);
  void set_periodic_observer(PeriodicObserver fn, void* ctx) {
    periodic_obs_ = fn;
    periodic_obs_ctx_ = ctx;
  }

 private:
  // POD heap entry; `seq` grows monotonically, giving FIFO order among
  // same-time events. Carries (slot, gen) so liveness is one probe.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  struct Slot {
    InlineCallback cb;
    std::uint32_t gen = 0;        // odd = live, even = free
    std::uint32_t next_free = 0;  // intrusive free list link (fits padding)
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFF;
  // Slots live in fixed-size chunks so their addresses are stable:
  // callbacks are constructed into and invoked from their slot with
  // no relocation, even while the callback itself schedules (which
  // may append a chunk, but never moves existing ones).
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots / chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Slot& slot_ref(std::uint32_t s) {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }
  const Slot& slot_ref(std::uint32_t s) const {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    // gen is odd (>= 1) for a live slot, so the id is never 0.
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// Claim a slot (free list first, fresh chunk when exhausted) and
  /// mark it live. The caller emplaces the callback.
  std::uint32_t alloc_slot() {
    std::uint32_t s;
    if (free_head_ != kNoSlot) {
      s = free_head_;
      free_head_ = slot_ref(s).next_free;
    } else {
      s = slot_count_++;
      if ((s >> kChunkShift) == chunks_.size()) {
        chunks_.emplace_back(std::make_unique<Slot[]>(kChunkSize));
      }
    }
    slot_ref(s).gen += 1;  // even -> odd: live
    ++live_;
    return s;
  }

  /// Retire a live slot: stale ids can never match again, and the
  /// slot becomes claimable. The callback must already be destroyed
  /// (or still running from its storage — see execute_top).
  void release_slot(Slot& slot, std::uint32_t s) {
    slot.gen += 1;  // odd -> even: free
    slot.next_free = free_head_;
    free_head_ = s;
    --live_;
  }

  /// Skim cancelled entries off the heap top; returns the live minimum
  /// or nullptr when drained. Shared by step() and run() so the two
  /// agree exactly on what the next event is.
  const Entry* peek_live() {
    while (!heap_.empty()) {
      const Entry& e = heap_.front();
      if (slot_ref(e.slot).gen == e.gen) return &e;
      heap_pop();
    }
    return nullptr;
  }

  /// Fire the event `e` (must be the live heap top). Takes a copy of
  /// the entry: heap_pop() moves heap elements. The callback runs in
  /// place from its chunk-stable slot; the slot is marked dead first
  /// (so pending()/cancel() on the firing event's id report false
  /// during the callback, as with the old erase-then-call kernel) but
  /// is linked into the free list only after the call returns, so
  /// events the callback schedules cannot overwrite the running
  /// capture. If the callback throws, the slot is abandoned rather
  /// than corrupted.
  void execute_top(Entry e) {
    assert(e.time >= now_);
    now_ = e.time;
    heap_pop();
    ++executed_;
    Slot& slot = slot_ref(e.slot);
    slot.gen += 1;  // odd -> even: dead, but storage still ours
    --live_;
    slot.cb();
    slot.cb.reset();
    slot.next_free = free_head_;
    free_head_ = e.slot;
  }

  // ---- implicit 4-ary min-heap over (time, seq) ------------------------

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void heap_push(Entry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);  // placeholder; hole-insertion below
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!entry_less(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heap_pop() {
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
      std::size_t min_child = first_child;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (entry_less(heap_[c], heap_[min_child])) min_child = c;
      }
      if (!entry_less(heap_[min_child], last)) break;
      heap_[i] = heap_[min_child];
      i = min_child;
    }
    heap_[i] = last;
  }

  // ---- periodic wheel internals ----------------------------------------

  struct PeriodicMember {
    InlineCallback fn;
    bool live = false;
  };

  struct PeriodicCohort {
    SimTime period{};
    SimTime next_due{};
    EventId ev = kInvalidEvent;
    std::vector<PeriodicMember> members;
    std::size_t live = 0;
    std::uint32_t epoch = 0;  // bumped on retire: stale PeriodicIds miss
    std::uint32_t next_free = kNoCohort;
    bool armed = false;
    bool firing = false;
  };

  static constexpr std::uint32_t kNoCohort = 0xFFFF'FFFF;

  // id layout: [tag:1 | cohort:19 | epoch:20 | member:24]; the tag bit
  // keeps every valid id distinct from kInvalidPeriodic (= 0).
  static PeriodicId make_periodic_id(std::uint32_t ci, std::uint32_t epoch,
                                     std::uint32_t mi) {
    return ((static_cast<PeriodicId>(ci) & 0x7'FFFF) << 44) |
           ((static_cast<PeriodicId>(epoch) & 0xF'FFFF) << 24) |
           (static_cast<PeriodicId>(mi) & 0xFF'FFFF) | (1ULL << 63);
  }
  static std::uint32_t periodic_cohort(PeriodicId id) {
    return static_cast<std::uint32_t>((id >> 44) & 0x7'FFFF);
  }
  static std::uint32_t periodic_epoch(PeriodicId id) {
    return static_cast<std::uint32_t>((id >> 24) & 0xF'FFFF);
  }
  static std::uint32_t periodic_member(PeriodicId id) {
    return static_cast<std::uint32_t>(id & 0xFF'FFFF);
  }

  void fire_cohort(std::uint32_t ci) {
    PeriodicCohort& c = cohorts_[ci];
    c.ev = kInvalidEvent;
    c.firing = true;
    // Advance before invoking members: a schedule_periodic() from
    // inside a member callback joins the *next* due time, never the
    // fire in progress.
    c.next_due = c.next_due + c.period;
    std::uint64_t fired = 0;
    // Index loop: member callbacks may register new members (growing
    // the vector); those start firing next period.
    const std::size_t n = c.members.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!c.members[i].live) continue;
      ++fired;
      c.members[i].fn();
    }
    c.firing = false;
    periodic_stats_.cohort_fires += 1;
    periodic_stats_.member_fires += fired;
    if (fired > 1) {
      periodic_stats_.coalesced += fired - 1;
      if (periodic_obs_ != nullptr) periodic_obs_(periodic_obs_ctx_, fired - 1);
    }
    if (c.live == 0) {
      retire_cohort(ci);
    } else {
      c.ev = schedule_at(c.next_due, [this, ci] { fire_cohort(ci); });
    }
  }

  void retire_cohort(std::uint32_t ci) {
    PeriodicCohort& c = cohorts_[ci];
    c.armed = false;
    c.ev = kInvalidEvent;
    c.members.clear();
    c.live = 0;
    c.epoch += 1;
    c.next_free = cohort_free_;
    cohort_free_ = ci;
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<Entry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  // Deque, not vector: a member callback may register a new cohort
  // mid-fire; growth must not relocate the cohort (or the inline
  // callback bytes) currently executing.
  std::deque<PeriodicCohort> cohorts_;
  std::uint32_t cohort_free_ = kNoCohort;
  PeriodicStats periodic_stats_;
  PeriodicObserver periodic_obs_ = nullptr;
  void* periodic_obs_ctx_ = nullptr;
  Rng rng_;
};

}  // namespace storm::sim
