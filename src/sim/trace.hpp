// Lightweight component-tagged tracing.
//
// Disabled by default; experiments enable it per component
// ("mm", "nm", "net", "fs", ...) to get a readable timeline. Trace
// output is diagnostic only — no experiment parses it.
//
// Thread-safety: the singleton is shared by every Simulator in the
// process, and the bench SweepRunner (bench/runner.hpp) runs
// independent sweep points on worker threads. The common case —
// tracing entirely off — is a single relaxed atomic load with no
// lock; enable/disable, the line observer, and log() itself
// serialise on one mutex, so observer callbacks (telemetry counters)
// never race and interleaved lines are never torn. Observers must not
// re-enter the Tracer (the lock is held while they run).
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

#include "sim/time.hpp"

namespace storm::sim {

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }

  void enable(std::string_view component) {
    const std::lock_guard<std::mutex> lock(mu_);
    enabled_.emplace(component);
    any_.store(true, std::memory_order_release);
  }
  void enable_all() {
    const std::lock_guard<std::mutex> lock(mu_);
    all_ = true;
    any_.store(true, std::memory_order_release);
  }
  void disable_all() {
    const std::lock_guard<std::mutex> lock(mu_);
    all_ = false;
    enabled_.clear();
    any_.store(false, std::memory_order_release);
  }

  bool is_enabled(std::string_view component) const {
    // Fast path: nothing enabled anywhere — one atomic load, no lock.
    if (!any_.load(std::memory_order_acquire)) return false;
    const std::lock_guard<std::mutex> lock(mu_);
    return all_ || enabled_.contains(component);
  }

  /// Observer invoked once per emitted line (after the enabled check),
  /// with the component tag. Lets telemetry count trace volume per
  /// component without parsing stderr; pass {} to detach.
  using LineObserver = std::function<void(std::string_view component)>;
  void set_line_observer(LineObserver obs) {
    const std::lock_guard<std::mutex> lock(mu_);
    line_observer_ = std::move(obs);
  }

  void log(SimTime now, std::string_view component, const std::string& msg) {
    if (!any_.load(std::memory_order_acquire)) return;
    const std::lock_guard<std::mutex> lock(mu_);
    if (!(all_ || enabled_.contains(component))) return;
    if (line_observer_) line_observer_(component);
    std::fprintf(stderr, "[%12.6f ms] %-6.*s %s\n", now.to_millis(),
                 static_cast<int>(component.size()), component.data(),
                 msg.c_str());
  }

 private:
  /// Transparent hash so string_view probes hit the std::string keys
  /// without allocating.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::mutex mu_;
  std::atomic<bool> any_{false};  // true iff all_ || !enabled_.empty()
  bool all_ = false;              // guarded by mu_
  std::unordered_set<std::string, StringHash, std::equal_to<>> enabled_;
  LineObserver line_observer_;    // guarded by mu_
};

}  // namespace storm::sim

/// STORM_TRACE(sim, "nm", "launching pid " + std::to_string(pid));
#define STORM_TRACE(sim_, comp_, msg_)                                     \
  do {                                                                     \
    if (::storm::sim::Tracer::instance().is_enabled(comp_)) {              \
      ::storm::sim::Tracer::instance().log((sim_).now(), (comp_), (msg_)); \
    }                                                                      \
  } while (0)
