// Lightweight component-tagged tracing.
//
// Disabled by default; experiments enable it per component
// ("mm", "nm", "net", "fs", ...) to get a readable timeline. Trace
// output is diagnostic only — no experiment parses it.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_set>

#include "sim/time.hpp"

namespace storm::sim {

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }

  void enable(std::string_view component) { enabled_.emplace(component); }
  void enable_all() { all_ = true; }
  void disable_all() {
    all_ = false;
    enabled_.clear();
  }

  bool is_enabled(std::string_view component) const {
    // Heterogeneous lookup: no std::string temporary on the hot path.
    return all_ || enabled_.contains(component);
  }

  /// Observer invoked once per emitted line (after the enabled check),
  /// with the component tag. Lets telemetry count trace volume per
  /// component without parsing stderr; pass {} to detach.
  using LineObserver = std::function<void(std::string_view component)>;
  void set_line_observer(LineObserver obs) { line_observer_ = std::move(obs); }

  void log(SimTime now, std::string_view component, const std::string& msg) {
    if (!is_enabled(component)) return;
    if (line_observer_) line_observer_(component);
    std::fprintf(stderr, "[%12.6f ms] %-6.*s %s\n", now.to_millis(),
                 static_cast<int>(component.size()), component.data(),
                 msg.c_str());
  }

 private:
  /// Transparent hash so string_view probes hit the std::string keys
  /// without allocating.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  bool all_ = false;
  std::unordered_set<std::string, StringHash, std::equal_to<>> enabled_;
  LineObserver line_observer_;
};

}  // namespace storm::sim

/// STORM_TRACE(sim, "nm", "launching pid " + std::to_string(pid));
#define STORM_TRACE(sim_, comp_, msg_)                                     \
  do {                                                                     \
    if (::storm::sim::Tracer::instance().is_enabled(comp_)) {              \
      ::storm::sim::Tracer::instance().log((sim_).now(), (comp_), (msg_)); \
    }                                                                      \
  } while (0)
