// Small-buffer-optimized `void()` callable for the event engine.
//
// `std::function` heap-allocates for any capture larger than two
// pointers (libstdc++), which made every `schedule_at` on the hot path
// pay an allocation. The dominant callbacks in this codebase — the
// coroutine-handle resume from `delay()`/`yield()` (8 bytes) and the
// NM/MM timer lambdas (`this` plus a few ints) — are tiny, so
// InlineCallback stores up to kInlineBytes of capture in place and
// only falls back to the heap beyond that. Move-only: the engine
// never copies callbacks, and move-only captures (std::unique_ptr,
// coroutine ownership) are first-class.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace storm::sim {

class InlineCallback {
 public:
  /// Captures up to this size (and max_align_t alignment, and nothrow
  /// move) are stored inline; larger ones go through one heap node.
  static constexpr std::size_t kInlineBytes = 48;

  InlineCallback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineModel<Fn>::kOps;
      trivial_ = std::is_trivially_copyable_v<Fn> &&
                 std::is_trivially_destructible_v<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapModel<Fn>::kOps;
    }
  }

  /// Destroy the current target (if any) and construct `f`'s capture
  /// directly in this object's storage — the zero-move path used by
  /// the simulator to build callbacks straight into their arena slot.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    reset();
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineModel<Fn>::kOps;
      trivial_ = std::is_trivially_copyable_v<Fn> &&
                 std::is_trivially_destructible_v<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapModel<Fn>::kOps;
      trivial_ = false;
    }
  }

  void emplace(InlineCallback&& o) noexcept {
    reset();
    steal(o);
  }

  InlineCallback(InlineCallback&& o) noexcept { steal(o); }
  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineCallback");
    ops_->invoke(buf_);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!trivial_) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the capture lives in the inline buffer (no allocation).
  /// Empty callbacks report true. Exposed for tests and benchmarks.
  bool is_inline() const noexcept {
    return ops_ == nullptr || ops_->inline_storage;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct the capture from `src` into `dst`, then destroy
    // the `src` capture (a "relocate": src storage becomes dead).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineBytes &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  struct InlineModel {
    static Fn& get(void* p) { return *std::launder(reinterpret_cast<Fn*>(p)); }
    static void invoke(void* p) { get(p)(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(get(src)));
      get(src).~Fn();
    }
    static void destroy(void* p) noexcept { get(p).~Fn(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy, true};
  };

  template <typename Fn>
  struct HeapModel {
    static Fn*& ptr(void* p) { return *std::launder(reinterpret_cast<Fn**>(p)); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(ptr(src));  // steal the heap node
    }
    static void destroy(void* p) noexcept { delete ptr(p); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy, false};
  };

  void steal(InlineCallback& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      trivial_ = o.trivial_;
      if (trivial_) {
        // Relocation of a trivially-copyable capture is a straight
        // buffer copy — no indirect call. This is the engine's
        // dominant case (coroutine handles, `this`+ints timer
        // lambdas), so it is worth the branch.
        std::memcpy(buf_, o.buf_, kInlineBytes);
      } else {
        ops_->relocate(buf_, o.buf_);
      }
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
  bool trivial_ = false;
};

}  // namespace storm::sim
