// Coroutine synchronisation primitives for simulated processes.
//
// All primitives resume waiters through zero-delay scheduled events
// rather than inline, so a notifier never re-enters arbitrary model
// code in the middle of its own critical section; every handoff is a
// distinct event in the deterministic (time, seq) order.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"

namespace storm::sim {

/// One-shot broadcast event ("latch"). Once fired, all current and
/// future waiters proceed immediately. This is the natural building
/// block for TEST-EVENT-style completion notification.
class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) sim_.schedule_after(SimTime::zero(), [h] { h.resume(); });
    waiters_.clear();
  }

  /// Re-arm a fired trigger (no waiters may be pending).
  void reset() { fired_ = false; }

  auto wait() {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired_; }
      void await_suspend(std::coroutine_handle<> h) { t.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Repeatable condition: `notify_all()` wakes exactly the waiters
/// registered at that moment; later waiters block until the next
/// notification.
class Signal {
 public:
  explicit Signal(Simulator& sim) : sim_(sim) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  void notify_all() {
    for (auto h : waiters_) sim_.schedule_after(SimTime::zero(), [h] { h.resume(); });
    waiters_.clear();
  }

  void notify_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.erase(waiters_.begin());
    sim_.schedule_after(SimTime::zero(), [h] { h.resume(); });
  }

  std::size_t waiting() const { return waiters_.size(); }

  auto wait() {
    struct Awaiter {
      Signal& s;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t initial) : sim_(sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::size_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() const noexcept {
        if (s.count_ > 0 && s.waiters_.empty()) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  bool try_acquire() {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }

  void release(std::size_t n = 1) {
    count_ += n;
    while (count_ > 0 && !waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      --count_;
      sim_.schedule_after(SimTime::zero(), [h] { h.resume(); });
    }
  }

 private:
  Simulator& sim_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// FIFO message channel. `put()` never blocks (unbounded); `get()`
/// suspends until an item is available. This models hardware remote
/// queues and dæmon mailboxes.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void put(T item) {
    items_.push_back(std::move(item));
    if (!getters_.empty()) {
      auto h = getters_.front();
      getters_.pop_front();
      ++reserved_;  // the item now belongs to the woken getter
      sim_.schedule_after(SimTime::zero(), [h] { h.resume(); });
    }
  }

  bool empty() const { return items_.size() <= reserved_; }
  std::size_t size() const { return items_.size() - reserved_; }

  /// Getters currently suspended and not yet promised an item. Used by
  /// recovery code to poison a channel with exactly enough sentinel
  /// values to wake every blocked receiver.
  std::size_t waiting() const { return getters_.size(); }

  /// Non-blocking get; never steals an item already promised to a
  /// suspended getter that has been scheduled for wakeup.
  std::optional<T> try_get() {
    if (items_.size() <= reserved_) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  auto get() {
    struct Awaiter {
      Channel& c;
      bool suspended = false;
      bool await_ready() const noexcept {
        return c.items_.size() > c.reserved_ && c.getters_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        c.getters_.push_back(h);
      }
      T await_resume() {
        if (suspended) --c.reserved_;
        T v = std::move(c.items_.front());
        c.items_.pop_front();
        return v;
      }
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  std::deque<T> items_;
  std::size_t reserved_ = 0;  // items promised to already-woken getters
  std::deque<std::coroutine_handle<>> getters_;
};

/// Join-counter for fan-out/fan-in: add() per spawned child,
/// done() in each child, wait() resumes when the count reaches zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : all_done_(sim) {}

  void add(std::size_t n = 1) {
    pending_ += n;
    if (pending_ > 0 && all_done_.fired()) all_done_.reset();
  }

  void done() {
    if (pending_ > 0 && --pending_ == 0) all_done_.fire();
  }

  auto wait() { return all_done_.wait(); }
  std::size_t pending() const { return pending_; }

 private:
  std::size_t pending_ = 0;
  Trigger all_done_;
};

}  // namespace storm::sim
