// Deterministic pseudo-random number generation for the simulator.
//
// We deliberately avoid <random>'s distribution objects: the standard
// leaves their algorithms implementation-defined, which would make
// experiment output differ between libstdc++/libc++ builds. The
// xoshiro256** generator plus hand-rolled transforms below are exact
// and reproducible everywhere.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace storm::sim {

/// SplitMix64 — used to expand a single seed into generator state and
/// to derive independent child streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), a fast all-purpose generator
/// with a 2^256-1 period; one instance per independent model component
/// keeps perturbing one part of the simulation from rippling into the
/// random streams of unrelated parts.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDC0DEULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Derive an independent child stream (for per-node / per-component use).
  Rng fork(std::uint64_t salt) {
    std::uint64_t mix = next() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng{mix ^ 0xA3EC647659359ACDULL};
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential with the given mean (rate = 1/mean).
  double exponential(double mean) {
    double u;
    do { u = uniform01(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps the stream
  /// consumption rate deterministic per call site).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do { u1 = uniform01(); } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  /// Log-normal parameterised by its *median* and the sigma of the
  /// underlying normal — convenient for OS-noise models where the
  /// typical value is known and the tail weight is tuned separately.
  double lognormal_median(double median, double sigma) {
    return median * std::exp(sigma * normal());
  }

  /// Pareto (heavy-tailed) with minimum xm and shape alpha > 0.
  double pareto(double xm, double alpha) {
    double u;
    do { u = uniform01(); } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  explicit Rng(std::uint64_t seed, int) : Rng(seed) {}
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace storm::sim
