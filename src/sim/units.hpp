// Strongly-typed data-size and bandwidth units.
//
// The paper mixes MB/s (decimal, 1e6 bytes) bandwidths with KB/MB
// (binary) buffer sizes; we follow the same convention: `Bytes` helpers
// are binary (KiB-style, as "512 KB chunks" in the paper means 512*1024)
// while `Bandwidth::mb_per_s` is decimal, matching "175 MB/s" etc.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace storm::sim {

using Bytes = std::int64_t;

inline namespace byte_literals {
constexpr Bytes operator""_B(unsigned long long v) { return static_cast<Bytes>(v); }
constexpr Bytes operator""_KB(unsigned long long v) { return static_cast<Bytes>(v) * 1024; }
constexpr Bytes operator""_MB(unsigned long long v) { return static_cast<Bytes>(v) * 1024 * 1024; }
constexpr Bytes operator""_GB(unsigned long long v) { return static_cast<Bytes>(v) * 1024 * 1024 * 1024; }
}  // namespace byte_literals

/// Transfer rate in bytes per (simulated) second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth bytes_per_s(double v) { return Bandwidth{v}; }
  static constexpr Bandwidth mb_per_s(double v) { return Bandwidth{v * 1e6}; }
  static constexpr Bandwidth gb_per_s(double v) { return Bandwidth{v * 1e9}; }
  static constexpr Bandwidth unlimited() { return Bandwidth{1e300}; }

  constexpr double to_bytes_per_s() const { return bps_; }
  constexpr double to_mb_per_s() const { return bps_ * 1e-6; }

  /// Time to push `n` bytes through this rate.
  constexpr SimTime time_for(Bytes n) const {
    return SimTime::seconds(static_cast<double>(n) / bps_);
  }

  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;
  friend constexpr Bandwidth operator*(Bandwidth b, double k) { return Bandwidth{b.bps_ * k}; }
  friend constexpr Bandwidth operator/(Bandwidth b, double k) { return Bandwidth{b.bps_ / k}; }

 private:
  constexpr explicit Bandwidth(double v) : bps_(v) {}
  double bps_ = 0.0;
};

constexpr Bandwidth min(Bandwidth a, Bandwidth b) { return a < b ? a : b; }

}  // namespace storm::sim
