// Statistics accumulators used by experiments and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace storm::sim {

/// Streaming mean/variance/min/max (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0;
};

/// Value-retaining series for percentiles/medians (experiments repeat
/// runs a handful of times, as in the paper's 3–20 repetitions).
class Series {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_valid_ = false;
  }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const {
    double s = 0;
    for (double v : values_) s += v;
    return values_.empty() ? 0 : s / static_cast<double>(values_.size());
  }

  double min() const {
    return values_.empty() ? 0 : *std::min_element(values_.begin(), values_.end());
  }

  double max() const {
    return values_.empty() ? 0 : *std::max_element(values_.begin(), values_.end());
  }

  /// p in [0,100]; linear interpolation between order statistics.
  /// The sorted order is cached across calls and invalidated by add(),
  /// so sweeping many percentiles over one series sorts once.
  double percentile(double p) const {
    if (values_.empty()) return 0;
    if (!sorted_valid_) {
      sorted_ = values_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    const auto& v = sorted_;
    const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  }

  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace storm::sim
